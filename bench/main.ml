(* The benchmark harness: one entry per figure of the paper's evaluation
   (Figures 4-16), plus the ablations DESIGN.md calls out and Bechamel
   micro-benchmarks of the system's hot paths.

   Every figure prints the same rows/series the paper reports, with the
   paper's own headline numbers alongside for comparison.  The GP scale is
   controlled by environment variables so the shipped default finishes on
   one machine in minutes (the paper used 15-20 machines for a day):

     METAOPT_POP    population size   (default 40; paper 400)
     METAOPT_GENS   generations       (default 10; paper 50)
     METAOPT_SEED   GP random seed    (default 42)
     METAOPT_JOBS   evaluation workers (default 1; the paper's cluster)

   Usage:
     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe -- fig4 fig5    # specific figures
     dune exec bench/main.exe -- par          # parallel-engine comparison
     dune exec bench/main.exe -- sim          # simulation fast paths
     dune exec bench/main.exe -- evalc        # compiled eval + pool backends
     dune exec bench/main.exe -- report       # BENCH_metaopt.json report
     dune exec bench/main.exe -- micro        # Bechamel micro-benches
*)

let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> (try int_of_string s with _ -> default)
  | None -> default

let params =
  {
    Gp.Params.scaled with
    Gp.Params.population_size = env_int "METAOPT_POP" 40;
    generations = env_int "METAOPT_GENS" 10;
    rng_seed = env_int "METAOPT_SEED" 42;
  }

let jobs = env_int "METAOPT_JOBS" 1

let hr title =
  Fmt.pr "@.%s@.%s@." title (String.make (String.length title) '=')

let mean sel rows =
  match rows with
  | [] -> 0.0
  | _ ->
    List.fold_left (fun a r -> a +. sel r) 0.0 rows
    /. float_of_int (List.length rows)

let print_rows ~paper_train ~paper_novel rows =
  Fmt.pr "%-16s %10s %10s@." "benchmark" "train" "novel";
  List.iter
    (fun (name, train, novel) -> Fmt.pr "%-16s %10.3f %10.3f@." name train novel)
    rows;
  Fmt.pr "%-16s %10.3f %10.3f    (paper: %.2f / %.2f)@." "average"
    (mean (fun (_, t, _) -> t) rows)
    (mean (fun (_, _, n) -> n) rows)
    paper_train paper_novel

let print_history title history =
  Fmt.pr "%s@." title;
  List.iter
    (fun (s : Gp.Evolve.generation_stats) ->
      Fmt.pr "  gen %2d   best %.4f   mean %.4f   size %d@." s.Gp.Evolve.gen
        s.Gp.Evolve.best_fitness s.Gp.Evolve.mean_fitness s.Gp.Evolve.best_size)
    history

(* Specialization figures (4, 9, 13): one GP run per benchmark; report
   train-data and novel-data speedups of the evolved heuristic. *)
let specialization_figure kind benches =
  List.map
    (fun bench ->
      let r = Driver.Study.specialize ~params ~jobs kind bench in
      Fmt.pr "%-16s %10.3f %10.3f   %s@." bench r.Driver.Study.train_speedup
        r.Driver.Study.novel_speedup
        (if String.length r.Driver.Study.best_expr > 48 then
           String.sub r.Driver.Study.best_expr 0 48 ^ "..."
         else r.Driver.Study.best_expr);
      (bench, r.Driver.Study.train_speedup, r.Driver.Study.novel_speedup))
    benches

(* Shared general-purpose runs: Figures 6-8, 11-12, 15-16 reuse the DSS
   evolutions. *)
let general_hb = lazy
  (Driver.Study.evolve_general ~params ~jobs Driver.Study.Hyperblock_study
     Benchmarks.Registry.hyperblock_train)

let general_ra = lazy
  (Driver.Study.evolve_general ~params ~jobs Driver.Study.Regalloc_study
     Benchmarks.Registry.regalloc_train)

let general_pf = lazy
  (Driver.Study.evolve_general ~params ~jobs Driver.Study.Prefetch_study
     Benchmarks.Registry.prefetch_train)

(* ------------------------------------------------------------------ *)

let fig4 () =
  hr "Figure 4: hyperblock specialization (per-benchmark evolution)";
  Fmt.pr "paper: avg 1.54 on training data, 1.23 on novel data@.@.";
  let rows =
    specialization_figure Driver.Study.Hyperblock_study
      Benchmarks.Registry.hyperblock_specialize
  in
  print_rows ~paper_train:1.54 ~paper_novel:1.23 rows

let fig5 () =
  hr "Figure 5: hyperblock evolution (best fitness over generations)";
  Fmt.pr
    "paper shape: a big early jump, then a plateau; random initial@.\
     expressions already beat the baseline@.@.";
  let r = Driver.Study.specialize ~params ~jobs Driver.Study.Hyperblock_study
      "rawcaudio" in
  print_history "rawcaudio:" r.Driver.Study.history

let fig6 () =
  hr "Figure 6: general-purpose hyperblock heuristic (DSS training set)";
  Fmt.pr "paper: avg 1.44 on training data, 1.25 on novel data@.@.";
  let g = Lazy.force general_hb in
  print_rows ~paper_train:1.44 ~paper_novel:1.25 g.Driver.Study.train_rows

let fig7 () =
  hr "Figure 7: hyperblock cross-validation (unrelated test set)";
  Fmt.pr "paper: avg 1.09; a few benchmarks slightly below 1.0@.@.";
  let g = Lazy.force general_hb in
  let rows =
    Driver.Study.cross_validate ~jobs Driver.Study.Hyperblock_study
      g.Driver.Study.best Benchmarks.Registry.hyperblock_test
  in
  print_rows ~paper_train:1.09 ~paper_novel:1.09 rows

let fig8 () =
  hr "Figure 8: the best general-purpose hyperblock priority function";
  Fmt.pr
    "paper shape: a readable expression that penalizes pointer@.\
     dereferences and unsafe calls@.@.";
  let g = Lazy.force general_hb in
  Fmt.pr "evolved : %s@." g.Driver.Study.best_expr;
  Fmt.pr "baseline: %s@." Hyperblock.Baseline.source

let fig9 () =
  hr "Figure 9: register allocation specialization";
  Fmt.pr "paper: improvements up to 1.11; train and novel data close@.@.";
  let rows =
    specialization_figure Driver.Study.Regalloc_study
      Benchmarks.Registry.regalloc_specialize
  in
  print_rows ~paper_train:1.08 ~paper_novel:1.06 rows

let fig10 () =
  hr "Figure 10: register allocation evolution";
  Fmt.pr
    "paper shape: gradual improvement; the baseline heuristic survives@.\
     in the population for several generations@.@.";
  let r =
    Driver.Study.specialize ~params ~jobs Driver.Study.Regalloc_study "djpeg"
  in
  print_history "djpeg:" r.Driver.Study.history

let fig11 () =
  hr "Figure 11: general-purpose register allocation heuristic (DSS)";
  Fmt.pr "paper: avg 1.03 on both training and novel data@.@.";
  let g = Lazy.force general_ra in
  print_rows ~paper_train:1.03 ~paper_novel:1.03 g.Driver.Study.train_rows

let fig12 () =
  hr "Figure 12: register allocation cross-validation (two machines)";
  Fmt.pr "paper: avg 1.03; a couple of benchmarks below 1.0@.@.";
  let g = Lazy.force general_ra in
  Fmt.pr "--- 32-register machine@.";
  let rows32 =
    Driver.Study.cross_validate ~jobs Driver.Study.Regalloc_study
      g.Driver.Study.best Benchmarks.Registry.regalloc_test
  in
  print_rows ~paper_train:1.03 ~paper_novel:1.03 rows32;
  Fmt.pr "--- 48-register machine@.";
  let machine48 =
    { Machine.Config.table3 with Machine.Config.gpr = 48;
      name = "table3-48reg" }
  in
  let rows48 =
    Driver.Study.cross_validate ~jobs ~machine:machine48 Driver.Study.Regalloc_study
      g.Driver.Study.best Benchmarks.Registry.regalloc_test
  in
  print_rows ~paper_train:1.03 ~paper_novel:1.03 rows48

let fig13 () =
  hr "Figure 13: prefetching specialization (Itanium-like, noisy fitness)";
  Fmt.pr
    "paper: avg 1.35 train / 1.40 novel; GP solutions rarely prefetch;@.\
     no-prefetch lands within ~7%% of the specialized functions@.@.";
  let rows =
    specialization_figure Driver.Study.Prefetch_study
      Benchmarks.Registry.prefetch_specialize
  in
  print_rows ~paper_train:1.35 ~paper_novel:1.40 rows;
  (* The paper's "shutting off prefetching altogether" comparison. *)
  let off =
    Gp.Expr.Bool (Gp.Sexp.parse_bool Prefetch.Features.feature_set "false")
  in
  let off_rows =
    Driver.Study.cross_validate ~jobs Driver.Study.Prefetch_study off
      Benchmarks.Registry.prefetch_specialize
  in
  Fmt.pr "@.no-prefetch-at-all speedups over the ORC baseline:@.";
  print_rows ~paper_train:1.25 ~paper_novel:1.25 off_rows

let fig14 () =
  hr "Figure 14: prefetching evolution";
  Fmt.pr "paper shape: baseline quickly weeded out; early plateau@.@.";
  let r =
    Driver.Study.specialize ~params ~jobs Driver.Study.Prefetch_study "103.su2cor"
  in
  print_history "103.su2cor:" r.Driver.Study.history

let fig15 () =
  hr "Figure 15: general-purpose prefetching heuristic (DSS)";
  Fmt.pr "paper: avg 1.31 train data / 1.36 novel data@.@.";
  let g = Lazy.force general_pf in
  print_rows ~paper_train:1.31 ~paper_novel:1.36 g.Driver.Study.train_rows;
  Fmt.pr "@.evolved confidence function: %s@." g.Driver.Study.best_expr

let fig16 () =
  hr "Figure 16: prefetching cross-validation on SPEC2000 (two machines)";
  Fmt.pr
    "paper: mostly above 1.0, but a couple of SPEC2000 benchmarks want@.\
     aggressive prefetching and fall below — the training-coverage caveat@.@.";
  let g = Lazy.force general_pf in
  Fmt.pr "--- itanium1@.";
  let rows =
    Driver.Study.cross_validate ~jobs Driver.Study.Prefetch_study
      g.Driver.Study.best Benchmarks.Registry.prefetch_test
  in
  print_rows ~paper_train:1.1 ~paper_novel:1.1 rows;
  Fmt.pr "--- itanium with a small L2@.";
  let rows2 =
    Driver.Study.cross_validate ~jobs ~machine:Machine.Config.itanium_small_l2
      Driver.Study.Prefetch_study g.Driver.Study.best
      Benchmarks.Registry.prefetch_test
  in
  print_rows ~paper_train:1.1 ~paper_novel:1.1 rows2

(* ------------------------------------------------------------------ *)

(* Extension beyond the paper's three case studies: the list scheduler's
   ranking function, the canonical priority-function example of the
   paper's Section 2. *)
let ext_sched () =
  hr "Extension: evolving the list-scheduling priority (paper Section 2)";
  Fmt.pr
    "no paper reference — Section 2 motivates scheduling priorities but@.     the paper's case studies stop at three; expected shape: small,@.     benchmark-dependent wins over latency-weighted depth@.@.";
  let rows =
    specialization_figure Driver.Study.Sched_study
      [ "rawcaudio"; "huff_enc"; "djpeg"; "129.compress"; "023.eqntott";
        "mpeg2dec" ]
  in
  print_rows ~paper_train:1.0 ~paper_novel:1.0 rows

let ablations () =
  hr "Ablations: GP design choices (hyperblock study on rawcaudio)";
  let run name p =
    let r = Driver.Study.specialize ~params:p ~jobs Driver.Study.Hyperblock_study
        "rawcaudio" in
    let last_size =
      match List.rev r.Driver.Study.history with
      | s :: _ -> s.Gp.Evolve.best_size
      | [] -> 0
    in
    Fmt.pr "  %-28s train %.3f   novel %.3f   best size %d@." name
      r.Driver.Study.train_speedup r.Driver.Study.novel_speedup last_size
  in
  run "defaults" params;
  run "no parsimony pressure" { params with Gp.Params.parsimony_eps = 0.0 };
  run "no elitism" { params with Gp.Params.elitism = false };
  run "tournament size 2" { params with Gp.Params.tournament_size = 2 };
  run "no baseline seed" { params with Gp.Params.seed_baseline = false };
  run "high mutation (25%)" { params with Gp.Params.mutation_rate = 0.25 }

(* ------------------------------------------------------------------ *)

let detected_cores () =
  try
    let ic = Unix.open_process_in "getconf _NPROCESSORS_ONLN" in
    let n = int_of_string (String.trim (input_line ic)) in
    ignore (Unix.close_process_in ic);
    max 1 n
  with _ -> 1

(* Wall clock of bringing up a warm pool: spawn [jobs] resident fork
   workers through a persistent handle (spawn happens lazily, inside the
   first batch) and run one trivial task per worker. *)
let pool_startup_s jobs =
  if not (List.mem `Fork (Gp.Parmap.capabilities ())) then 0.0
  else begin
    let pool = Gp.Parmap.pool ~backend:`Fork ~jobs () in
    let h = Gp.Parmap.create pool ~f:Fun.id in
    let t = Unix.gettimeofday () in
    ignore (Gp.Parmap.run_batch h (Array.init jobs Fun.id));
    let dt = Unix.gettimeofday () -. t in
    Gp.Parmap.shutdown h;
    dt
  end

(* Chunked dispatch vs the pre-chunking one-task protocol: the same
   micro-task batch through a warm fork pool with adaptive chunking
   (the default) and with the chunk pinned to 1.  The tasks cost tens
   of microseconds — the regime where the per-dispatch Marshal
   round-trip dominated before chunking — so this is the figure the
   adaptive dispatcher exists to move, and it does not need spare
   cores: fewer round-trips win even on one.  Returns (chunked seconds,
   single-task seconds, bit-identical results). *)
let chunked_dispatch_s () =
  if not (List.mem `Fork (Gp.Parmap.capabilities ())) then (0.0, 0.0, true)
  else begin
    let n = 2048 in
    let tasks = Array.init n (fun i -> float_of_int i /. float_of_int n) in
    let f x =
      let acc = ref x in
      for _ = 1 to 400 do
        acc := sin !acc +. x
      done;
      !acc
    in
    let time pool =
      let h = Gp.Parmap.create pool ~f in
      (* warm the workers and the cost estimate before timing *)
      ignore (Gp.Parmap.run_batch h (Array.sub tasks 0 64));
      let t = Unix.gettimeofday () in
      let outcomes, _ = Gp.Parmap.run_batch h tasks in
      let dt = Unix.gettimeofday () -. t in
      Gp.Parmap.shutdown h;
      let bits =
        Array.map
          (function
            | Gp.Parmap.Ok v -> Int64.bits_of_float v
            | _ -> Int64.zero)
          outcomes
      in
      (dt, bits)
    in
    let single_s, single_bits =
      time
        (Gp.Parmap.pool ~backend:`Fork ~jobs:2 ~chunk_min:1 ~chunk_max:1 ())
    in
    let chunked_s, chunked_bits =
      time (Gp.Parmap.pool ~backend:`Fork ~jobs:2 ())
    in
    (chunked_s, single_s, chunked_bits = single_bits)
  end

(* Mean steady-state seconds per generation from a run's generation
   completion stamps: the first generation — which pays the one-time
   pool spawn and the initial population's compiles — is excluded, so
   the figure reflects the warm-pool regime a long campaign lives in. *)
let steady_gen_s stamps =
  let a = Array.of_list (List.rev stamps) in
  let n = Array.length a in
  if n >= 2 then (a.(n - 1) -. a.(0)) /. float_of_int (n - 1) else 0.0

(* The parallel, cached fitness engine: the same small evolve_general run
   at -j 1 and -j 4 must produce identical evolved results for the same
   seed.  The headline figure is the steady-state per-generation ratio —
   generations on the resident warm pool, excluding the first — next to
   the one-time pool startup cost; it scales with the core count (the
   container running this may be single-core, in which case forking buys
   nothing and the steady ratio honestly reports ~1x). *)
let par () =
  hr "Parallel fitness engine: evolve_general at -j 1 vs -j 4";
  Fmt.pr "same seed, identical results required; steady-state speedup \
          scales with cores@.";
  Fmt.pr "(detected cores: %d)@.@." (detected_cores ());
  let p =
    { params with Gp.Params.population_size = min 24 params.Gp.Params.population_size;
      generations = min 6 params.Gp.Params.generations }
  in
  let benches = [ "codrle4"; "decodrle4"; "rawcaudio"; "huff_enc" ] in
  let timed j =
    let stamps = ref [] in
    let t0 = Unix.gettimeofday () in
    let g =
      Driver.Study.evolve_general ~params:p ~jobs:j
        ~on_generation:(fun _ -> stamps := Unix.gettimeofday () :: !stamps)
        Driver.Study.Hyperblock_study benches
    in
    let total = Unix.gettimeofday () -. t0 in
    (total, steady_gen_s !stamps, g)
  in
  let t1, s1, g1 = timed 1 in
  let t4, s4, g4 = timed 4 in
  let same =
    g1.Driver.Study.best_expr = g4.Driver.Study.best_expr
    && List.for_all2
         (fun (n1, tr1, no1) (n2, tr2, no2) ->
           n1 = n2 && tr1 = tr2 && no1 = no2)
         g1.Driver.Study.train_rows g4.Driver.Study.train_rows
  in
  Fmt.pr "-j 1: %6.2fs total, %6.3fs/gen steady@." t1 s1;
  Fmt.pr "-j 4: %6.2fs total, %6.3fs/gen steady   steady speedup %.2fx@." t4
    s4
    (if s4 > 0.0 then s1 /. s4 else 0.0);
  Fmt.pr "pool startup (4 warm fork workers, one-time): %.3fs@."
    (pool_startup_s 4);
  Fmt.pr "identical evolved results: %s@." (if same then "yes" else "NO!");
  Fmt.pr "best: %s@." g1.Driver.Study.best_expr

(* Checkpoint/resume smoke: run a small specialization with a checkpoint
   directory, kill it mid-run (an on_generation callback that raises),
   resume from the newest checkpoint, and require the resumed result to be
   identical to an uninterrupted run with the same seed.  Also reports the
   per-generation checkpoint write cost. *)
let ckpt () =
  hr "Checkpoint/resume: interrupted specialization must resume identically";
  let p =
    { params with Gp.Params.population_size = min 24 params.Gp.Params.population_size;
      generations = min 6 params.Gp.Params.generations }
  in
  let fresh_dir tag =
    let d =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "metaopt-bench-%s-%d" tag (Unix.getpid ()))
    in
    (try
       if Sys.file_exists d then
         Array.iter (fun f -> Sys.remove (Filename.concat d f)) (Sys.readdir d)
     with Sys_error _ -> ());
    d
  in
  let t0 = Unix.gettimeofday () in
  let straight =
    Driver.Study.specialize ~params:p ~jobs Driver.Study.Hyperblock_study
      "rawcaudio"
  in
  let t_straight = Unix.gettimeofday () -. t0 in
  let dir = fresh_dir "ckpt" in
  let halfway = p.Gp.Params.generations / 2 in
  let t1 = Unix.gettimeofday () in
  (try
     ignore
       (Driver.Study.specialize ~params:p ~jobs ~checkpoint_dir:dir
          ~on_generation:(fun (s : Gp.Evolve.generation_stats) ->
            if s.Gp.Evolve.gen = halfway then failwith "simulated crash")
          Driver.Study.Hyperblock_study "rawcaudio")
   with Failure _ -> ());
  let resumed =
    Driver.Study.specialize ~params:p ~jobs ~checkpoint_dir:dir
      Driver.Study.Hyperblock_study "rawcaudio"
  in
  let t_ckpt = Unix.gettimeofday () -. t1 in
  let same =
    straight.Driver.Study.best_expr = resumed.Driver.Study.best_expr
    && straight.Driver.Study.train_speedup = resumed.Driver.Study.train_speedup
    && straight.Driver.Study.novel_speedup = resumed.Driver.Study.novel_speedup
  in
  Fmt.pr "uninterrupted run       : %6.2fs@." t_straight;
  Fmt.pr "killed at gen %d + resume: %6.2fs@." halfway t_ckpt;
  Fmt.pr "identical evolved result : %s@." (if same then "yes" else "NO!");
  Fmt.pr "best: %s@." straight.Driver.Study.best_expr

(* Simulation fast paths (DESIGN.md §10): interpreter throughput of the
   reference vs the pre-decoded engine, trace-replay speedup over a full
   simulation, the end-to-end effect of the fast paths on a sched-study
   smoke evolution (identical evolved results required), and the
   artifact-cache hit rate of a hyperblock smoke run.  Returns the
   telemetry JSON embedded in the report target. *)
let sim_measurements p =
  let best_of n f =
    let rec go best i =
      if i >= n then best
      else begin
        let t = Unix.gettimeofday () in
        f ();
        go (min best (Unix.gettimeofday () -. t)) (i + 1)
      end
    in
    go infinity 0
  in
  (* Interpreter throughput on the largest dynamic footprint in the
     suite. *)
  let tp_bench = "023.eqntott" in
  let prep = Driver.Compiler.prepare (Benchmarks.Registry.find tp_bench) in
  let machine = Driver.Study.machine_of Driver.Study.Sched_study in
  let heuristics =
    Driver.Study.heuristics_with Driver.Study.Sched_study
      (Driver.Study.baseline_genome_of Driver.Study.Sched_study)
  in
  let c = Driver.Compiler.compile ~machine ~heuristics prep in
  let overrides =
    Benchmarks.Bench.overrides prep.Driver.Compiler.bench
      Benchmarks.Bench.Train
  in
  let run engine () =
    ignore
      (Machine.Simulate.run ~engine ~config:machine
         ~schedule_cycles:c.Driver.Compiler.schedule_cycles ~overrides
         c.Driver.Compiler.layout)
  in
  let res, tr =
    Machine.Simulate.run_traced ~config:machine
      ~schedule_cycles:c.Driver.Compiler.schedule_cycles ~overrides
      c.Driver.Compiler.layout
  in
  let dyn = float_of_int res.Machine.Simulate.dynamic_instrs in
  let t_ref = best_of 3 (run `Reference) in
  let t_fast = best_of 3 (run `Fast) in
  let t_replay =
    match tr with
    | None -> infinity
    | Some tr ->
      best_of 5 (fun () ->
          ignore
            (Machine.Simulate.replay ~config:machine
               ~schedule_cycles:c.Driver.Compiler.schedule_cycles tr))
  in
  (* End-to-end: the sched-study smoke evolution with the fast paths on
     vs off must produce identical results, faster. *)
  let evo_bench = "129.compress" in
  let timed f =
    let t = Unix.gettimeofday () in
    let v = f () in
    (Unix.gettimeofday () -. t, v)
  in
  let t_on, r_on =
    timed (fun () ->
        Driver.Study.specialize ~params:p ~jobs ~fast_sim:true
          Driver.Study.Sched_study evo_bench)
  in
  let t_off, r_off =
    timed (fun () ->
        Driver.Study.specialize ~params:p ~jobs ~fast_sim:false
          Driver.Study.Sched_study evo_bench)
  in
  let identical =
    r_on.Driver.Study.train_speedup = r_off.Driver.Study.train_speedup
    && r_on.Driver.Study.novel_speedup = r_off.Driver.Study.novel_speedup
    && r_on.Driver.Study.best_expr = r_off.Driver.Study.best_expr
  in
  (* Artifact-cache behaviour of a hyperblock smoke evolution. *)
  let ctx = Driver.Study.create Driver.Study.Hyperblock_study [ "codrle4" ] in
  ignore (Gp.Evolve.run ~params:p (Driver.Study.problem_of ctx));
  let st = Driver.Simcache.stats ctx.Driver.Study.sim in
  let lookups =
    st.Driver.Simcache.artifact_hits + st.Driver.Simcache.replays
    + st.Driver.Simcache.simulations
  in
  let hit_rate =
    float_of_int st.Driver.Simcache.artifact_hits
    /. float_of_int (max 1 lookups)
  in
  Fmt.pr "  interpreter  : reference %.1f Minstr/s, pre-decoded %.1f (%.2fx)@."
    (dyn /. t_ref /. 1e6) (dyn /. t_fast /. 1e6) (t_ref /. t_fast);
  Fmt.pr "  trace replay : %.2fx over a full fast-engine simulation@."
    (t_fast /. t_replay);
  Fmt.pr "  sched smoke  : fast %.2fs, slow %.2fs (%.2fx), identical: %s@."
    t_on t_off (t_off /. t_on) (if identical then "yes" else "NO!");
  Fmt.pr
    "  artifact cache: %d hits / %d replays / %d simulations (hit rate %.2f)@."
    st.Driver.Simcache.artifact_hits st.Driver.Simcache.replays
    st.Driver.Simcache.simulations hit_rate;
  Gp.Telemetry.Obj
    [
      ("throughput_bench", Gp.Telemetry.String tp_bench);
      ("reference_minstr_s", Gp.Telemetry.Float (dyn /. t_ref /. 1e6));
      ("fast_minstr_s", Gp.Telemetry.Float (dyn /. t_fast /. 1e6));
      ("engine_speedup", Gp.Telemetry.Float (t_ref /. t_fast));
      ("replay_speedup", Gp.Telemetry.Float (t_fast /. t_replay));
      ("evolution_bench", Gp.Telemetry.String evo_bench);
      ("evolution_fast_s", Gp.Telemetry.Float t_on);
      ("evolution_slow_s", Gp.Telemetry.Float t_off);
      ("evolution_speedup", Gp.Telemetry.Float (t_off /. t_on));
      ("evolution_identical", Gp.Telemetry.Bool identical);
      ("artifact_hits", Gp.Telemetry.Int st.Driver.Simcache.artifact_hits);
      ("replays", Gp.Telemetry.Int st.Driver.Simcache.replays);
      ("simulations", Gp.Telemetry.Int st.Driver.Simcache.simulations);
      ("artifact_hit_rate", Gp.Telemetry.Float hit_rate);
    ]

(* Compiled genome evaluation (DESIGN.md §12): batch throughput of the
   Evalc bytecode against the Eval tree-walker on a deep expression, and
   the domains pool against the fork pool on a heavy pure workload.  The
   fork pool is measured FIRST: the OCaml 5 runtime forbids Unix.fork in
   any process that ever spawned a domain, so the domains measurement
   retires the fork backend for the rest of this process — which is also
   why the report target runs this section last.  Returns the telemetry
   JSON embedded in the report target. *)
let evalc_measurements () =
  let best_of n f =
    let rec go best i =
      if i >= n then best
      else begin
        let t = Unix.gettimeofday () in
        f ();
        go (min best (Unix.gettimeofday () -. t)) (i + 1)
      end
    in
    go infinity 0
  in
  let fs = Fuzz.Genome_gen.fs in
  let rng = Random.State.make [| 0xeca1c; 7 |] in
  (* Main workload: a deep arithmetic priority function over the feature
     set — the shape evolved heuristics actually take (Table 1 of the
     paper: add/sub/mul/div/sqrt over features with a handful of
     constants).  Both evaluators visit every node, so this measures the
     engines head to head.  A random tree full of conditionals is the
     adversarial case for the strict batch engine (the walker skips
     untaken arms, the batch engine computes them), recorded separately
     as [branchy_speedup] — it is a stress figure, not the gated one. *)
  let n_real =
    Array.length (Gp.Feature_set.empty_env fs).Gp.Feature_set.real_values
  in
  let rec mk depth i =
    if depth = 0 then
      if i mod 3 = 2 then Gp.Expr.Rconst (float_of_int (i mod 5) +. 0.5)
      else Gp.Expr.Rarg (i mod n_real)
    else
      let l = mk (depth - 1) (2 * i) and r = mk (depth - 1) ((2 * i) + 1) in
      match i mod 4 with
      | 0 -> Gp.Expr.Radd (l, r)
      | 1 -> Gp.Expr.Rsub (l, r)
      | 2 -> Gp.Expr.Rmul (l, r)
      | _ -> Gp.Expr.Rdiv (l, r)
  in
  let expr = mk 8 0 in
  let branchy = Gp.Gen.gen_real (Gp.Gen.default_config fs) rng ~full:true 8 in
  let envs = Array.of_list (Fuzz.Genome_gen.envs rng ~n:1024) in
  let n_env = Array.length envs in
  let prog = Gp.Evalc.compile_real expr in
  let branchy_prog = Gp.Evalc.compile_real branchy in
  (* identical bits first: throughput numbers mean nothing otherwise *)
  let identical e p =
    let batch = Gp.Evalc.run_batch p envs in
    let walk =
      Array.map (fun env -> Int64.bits_of_float (Gp.Eval.real env e)) envs
    in
    Array.map Int64.bits_of_float batch = walk
  in
  let bit_identical = identical expr prog && identical branchy branchy_prog in
  let reps = 20 in
  let throughput e p =
    let t_walk =
      best_of 5 (fun () ->
          for _ = 1 to reps do
            Array.iter (fun env -> ignore (Gp.Eval.real env e)) envs
          done)
    in
    let t_compiled =
      best_of 5 (fun () ->
          for _ = 1 to reps do
            ignore (Gp.Evalc.run_batch p envs)
          done)
    in
    (t_walk, t_compiled)
  in
  let t_walk, t_compiled = throughput expr prog in
  let tb_walk, tb_compiled = throughput branchy branchy_prog in
  let evals = float_of_int (n_env * reps) in
  let compiled_speedup = t_walk /. t_compiled in
  let branchy_speedup = tb_walk /. tb_compiled in
  (* pool comparison, in the regime evolution actually runs in: one
     batch per generation against a long-lived warm pool.  Each backend
     gets a persistent handle, pays its spawn once in an untimed warm-up
     batch, then times steady-state batches of 512 small pure tasks —
     small enough that per-task dispatch cost (the transports' real
     difference: pipe syscalls and Marshal framing for fork, an
     in-process queue for domains) is visible next to the work.  Fork
     first: the domains leg retires the fork backend for this process. *)
  let tasks = Array.init 512 Fun.id in
  let pool_envs = Array.sub envs 0 32 in
  let task i =
    let acc = ref (float_of_int i) in
    Array.iter
      (fun v -> acc := !acc +. v)
      (Gp.Evalc.run_batch prog pool_envs);
    !acc
  in
  let seq_bits = Array.map (fun i -> Int64.bits_of_float (task i)) tasks in
  let warm_pool_bits backend =
    let pool = Gp.Parmap.pool ~backend ~jobs:4 () in
    let h = Gp.Parmap.create pool ~f:task in
    let bits = ref [||] in
    let batch () =
      let outcomes, _ = Gp.Parmap.run_batch h tasks in
      bits :=
        Array.map
          (function
            | Gp.Parmap.Ok v -> Int64.bits_of_float v
            | _ -> Int64.bits_of_float Float.nan)
          outcomes
    in
    batch () (* untimed warm-up: spawns the resident workers *);
    let t = best_of 3 batch in
    Gp.Parmap.shutdown h;
    (t, !bits)
  in
  let t_fork = ref infinity and fork_bits = ref seq_bits in
  if List.mem `Fork (Gp.Parmap.capabilities ()) then begin
    let t, b = warm_pool_bits `Fork in
    t_fork := t;
    fork_bits := b
  end;
  let t_domains, domains_bits = warm_pool_bits `Domains in
  let pools_identical = !fork_bits = seq_bits && domains_bits = seq_bits in
  let domains_over_fork =
    if Float.is_finite !t_fork then !t_fork /. t_domains else 0.0
  in
  Fmt.pr "  bytecode     : walker %.2f Meval/s, compiled %.2f (%.2fx)@."
    (evals /. t_walk /. 1e6)
    (evals /. t_compiled /. 1e6)
    compiled_speedup;
  Fmt.pr "  branchy      : walker %.2f Meval/s, compiled %.2f (%.2fx)@."
    (evals /. tb_walk /. 1e6)
    (evals /. tb_compiled /. 1e6)
    branchy_speedup;
  Fmt.pr "  bit-identical: %s@." (if bit_identical then "yes" else "NO!");
  if Float.is_finite !t_fork then
    Fmt.pr
      "  pools (warm) : fork %.3fs/batch, domains %.3fs/batch (domains \
       %.2fx)@."
      !t_fork t_domains domains_over_fork
  else
    Fmt.pr "  pools (warm) : fork unavailable, domains %.3fs/batch@."
      t_domains;
  Fmt.pr "  pool results : %s@."
    (if pools_identical then "identical across backends" else "DIVERGENT!");
  Gp.Telemetry.Obj
    [
      ("envs", Gp.Telemetry.Int n_env);
      ("walk_meval_s", Gp.Telemetry.Float (evals /. t_walk /. 1e6));
      ("compiled_meval_s", Gp.Telemetry.Float (evals /. t_compiled /. 1e6));
      ("compiled_speedup", Gp.Telemetry.Float compiled_speedup);
      ("branchy_speedup", Gp.Telemetry.Float branchy_speedup);
      ("bit_identical", Gp.Telemetry.Bool bit_identical);
      ( "fork_s",
        Gp.Telemetry.Float (if Float.is_finite !t_fork then !t_fork else 0.0)
      );
      ("domains_s", Gp.Telemetry.Float t_domains);
      ("domains_over_fork", Gp.Telemetry.Float domains_over_fork);
      ("pools_identical", Gp.Telemetry.Bool pools_identical);
    ]

let evalc () =
  hr "Compiled genome evaluation: Evalc bytecode + domains/fork pools";
  ignore (evalc_measurements ())

let sim () =
  hr "Simulation fast paths: pre-decoded interpreter, replay, artifact cache";
  let p =
    { params with
      Gp.Params.population_size = min 16 params.Gp.Params.population_size;
      generations = min 4 params.Gp.Params.generations }
  in
  ignore (sim_measurements p)

(* The observability report: run a small evolve twice (cold and warm
   cache) at -j 1 and once at -j 4 with telemetry capturing every record,
   then write BENCH_metaopt.json — per-phase wall-clock timings,
   end-to-end speedups (steady-state parallel over sequential, warm cache
   over cold, warm domains pool over warm fork pool), the one-time pool
   startup cost, the full metric registry, and record counts.  The
   parallel figure is steady-state on purpose: generations against the
   resident warm pool, excluding the first generation's pool spawn, which
   is reported separately as pool_startup_s.  The file is re-read and
   schema-validated — including core-count-aware speedup gates — before
   the target reports success, so CI can fail on a malformed or regressed
   report rather than archiving garbage. *)
let report () =
  hr "Observability report: phase timings + speedups -> BENCH_metaopt.json";
  let out =
    Option.value ~default:"BENCH_metaopt.json"
      (Sys.getenv_opt "METAOPT_BENCH_OUT")
  in
  let p =
    { params with
      Gp.Params.population_size = min 16 params.Gp.Params.population_size;
      generations = min 4 params.Gp.Params.generations }
  in
  let benches = [ "codrle4"; "decodrle4" ] in
  let sink, records = Gp.Telemetry.memory_sink () in
  Gp.Telemetry.set_sink (Some sink);
  let phase name f =
    let t = Unix.gettimeofday () in
    let v = f () in
    let dt = Unix.gettimeofday () -. t in
    Fmt.pr "  %-24s %8.2fs@." name dt;
    ((name, dt), v)
  in
  let run_on ctx =
    let stamps = ref [] in
    let r =
      Gp.Evolve.run ~params:p
        ~on_generation:(fun _ -> stamps := Unix.gettimeofday () :: !stamps)
        (Driver.Study.problem_of ctx)
    in
    (r, steady_gen_s !stamps)
  in
  let ctx1 = Driver.Study.create ~jobs:1 Driver.Study.Hyperblock_study benches in
  let ph_cold, (r_cold, steady_j1) =
    phase "evolve -j1 (cold)" (fun () -> run_on ctx1)
  in
  (* Same engine, same params: every request is a memo hit. *)
  let ph_warm, (r_warm, _) =
    phase "evolve -j1 (warm cache)" (fun () -> run_on ctx1)
  in
  let ctx4 = Driver.Study.create ~jobs:4 Driver.Study.Hyperblock_study benches in
  let ph_par, (r_par, steady_j4) =
    phase "evolve -j4 (cold)" (fun () -> run_on ctx4)
  in
  Driver.Study.close ctx1;
  Driver.Study.close ctx4;
  (* Fork must still be available here: the evalc phase below retires it. *)
  let startup_s = pool_startup_s 4 in
  Fmt.pr "  %-24s %8.3fs@." "pool startup (4 workers)" startup_s;
  let chunked_s, single_s, chunk_identical = chunked_dispatch_s () in
  if not chunk_identical then
    failwith "chunked dispatch diverged from the single-task protocol";
  Fmt.pr "  %-24s %8.3fs (single-task protocol: %.3fs)@." "chunked dispatch"
    chunked_s single_s;
  Fmt.pr "  simulation fast paths:@.";
  let ph_sim, sim_doc =
    phase "sim fast paths" (fun () -> sim_measurements p)
  in
  (* last on purpose: the domains measurement retires the fork backend
     for this process, and every phase above relies on fork pools *)
  Fmt.pr "  compiled evaluation:@.";
  let ph_evalc, evalc_doc =
    phase "compiled eval" (fun () -> evalc_measurements ())
  in
  let registry = Gp.Telemetry.registry_json () in
  let recs = records () in
  Gp.Telemetry.set_sink None;
  let identical =
    r_cold.Gp.Evolve.best_fitness = r_warm.Gp.Evolve.best_fitness
    && r_cold.Gp.Evolve.best_fitness = r_par.Gp.Evolve.best_fitness
  in
  let count kind =
    List.length
      (List.filter
         (fun r ->
           Gp.Telemetry.member "kind" r = Some (Gp.Telemetry.String kind))
         recs)
  in
  let seconds (_, s) = s in
  let speedup num den = if den > 0.0 then num /. den else 0.0 in
  let cores = detected_cores () in
  let domains_over_fork =
    match Gp.Telemetry.member "domains_over_fork" evalc_doc with
    | Some (Gp.Telemetry.Float f) -> f
    | _ -> 0.0
  in
  let doc =
    Gp.Telemetry.Obj
      [
        ("schema_version", Gp.Telemetry.Int 1);
        ( "config",
          Gp.Telemetry.Obj
            [
              ("population", Gp.Telemetry.Int p.Gp.Params.population_size);
              ("generations", Gp.Telemetry.Int p.Gp.Params.generations);
              ("seed", Gp.Telemetry.Int p.Gp.Params.rng_seed);
              ("detected_cores", Gp.Telemetry.Int cores);
              ( "benches",
                Gp.Telemetry.List
                  (List.map (fun b -> Gp.Telemetry.String b) benches) );
            ] );
        ( "phases",
          Gp.Telemetry.List
            (List.map
               (fun (name, s) ->
                 Gp.Telemetry.Obj
                   [
                     ("name", Gp.Telemetry.String name);
                     ("seconds", Gp.Telemetry.Float s);
                   ])
               [ ph_cold; ph_warm; ph_par; ph_sim; ph_evalc ]) );
        ( "speedups",
          Gp.Telemetry.Obj
            [
              (* steady-state per-generation ratio on the resident warm
                 pool; the first generation's one-time spawn cost is
                 pool_startup_s, not folded into the speedup.  On a
                 machine with fewer than two cores the ratio measures
                 nothing but scheduling noise, so it is reported as the
                 honest string "insufficient_cores" instead of a
                 number. *)
              ( "parallel_j4_over_j1",
                if cores < 2 then Gp.Telemetry.String "insufficient_cores"
                else Gp.Telemetry.Float (speedup steady_j1 steady_j4) );
              ( "warm_cache_over_cold",
                Gp.Telemetry.Float (speedup (seconds ph_cold) (seconds ph_warm))
              );
              ("domains_over_fork", Gp.Telemetry.Float domains_over_fork);
              ("pool_startup_s", Gp.Telemetry.Float startup_s);
              (* adaptive chunked dispatch over the chunk = 1 reference
                 protocol, warm fork pool, micro-scale tasks — the
                 dispatch-overhead figure, meaningful at any core
                 count *)
              ( "chunked_over_single",
                Gp.Telemetry.Float (speedup single_s chunked_s) );
            ] );
        ("identical_results", Gp.Telemetry.Bool identical);
        ("sim", sim_doc);
        ("evalc", evalc_doc);
        ( "records",
          Gp.Telemetry.Obj
            [
              ("generation", Gp.Telemetry.Int (count "generation"));
              ("pool", Gp.Telemetry.Int (count "pool"));
              ("cache", Gp.Telemetry.Int (count "cache"));
            ] );
        ("telemetry", registry);
      ]
  in
  let oc = open_out out in
  output_string oc (Gp.Telemetry.json_to_string doc);
  output_char oc '\n';
  close_out oc;
  (* Validate what actually landed on disk. *)
  let ic = open_in out in
  let len = in_channel_length ic in
  let body = really_input_string ic len in
  close_in ic;
  let fail msg = failwith ("BENCH_metaopt.json schema invalid: " ^ msg) in
  (match Gp.Telemetry.json_of_string (String.trim body) with
  | Error e -> fail e
  | Ok j ->
    let require k =
      match Gp.Telemetry.member k j with
      | Some v -> v
      | None -> fail ("missing key " ^ k)
    in
    (match require "schema_version" with
    | Gp.Telemetry.Int 1 -> ()
    | _ -> fail "schema_version <> 1");
    (match require "phases" with
    | Gp.Telemetry.List (_ :: _ as ps) ->
      List.iter
        (fun ph ->
          match
            (Gp.Telemetry.member "name" ph, Gp.Telemetry.member "seconds" ph)
          with
          | Some (Gp.Telemetry.String _), Some (Gp.Telemetry.Float _) -> ()
          | _ -> fail "phase entry without name/seconds")
        ps
    | _ -> fail "phases missing or empty");
    (match require "speedups" with
    | Gp.Telemetry.Obj _ as s ->
      let fnum k =
        match Gp.Telemetry.member k s with
        | Some (Gp.Telemetry.Float f) -> f
        | _ -> fail ("speedups." ^ k ^ " missing or not a float")
      in
      let par =
        match Gp.Telemetry.member "parallel_j4_over_j1" s with
        | Some (Gp.Telemetry.Float f) when cores >= 2 -> Some f
        | Some (Gp.Telemetry.String "insufficient_cores") when cores < 2 ->
          None
        | _ ->
          fail
            "speedups.parallel_j4_over_j1 must be a float (>= 2 cores) or \
             \"insufficient_cores\" (< 2 cores)"
      in
      let dof = fnum "domains_over_fork" in
      let cos = fnum "chunked_over_single" in
      ignore (fnum "warm_cache_over_cold");
      ignore (fnum "pool_startup_s");
      (* Speedup gates, scaled to the cores this container actually has:
         the full 1.5x CI gate applies from 4 cores up (the hosted CI
         runners); between 2 and 3 cores the gate is 0.4x per core.  On
         fewer than 2 cores there is no parallel figure at all — the
         field is the "insufficient_cores" marker, checked above —
         because a single-core ratio would only report scheduling
         noise.  domains_over_fork is 0 when fork is unavailable. *)
      (match par with
      | None -> ()
      | Some par ->
        let par_gate =
          if cores >= 4 then 1.5 else Float.min 1.5 (0.4 *. float_of_int cores)
        in
        if par < par_gate then
          fail
            (Printf.sprintf
               "parallel_j4_over_j1 %.2f below gate %.2f (%d cores)" par
               par_gate cores));
      if dof > 0.0 && dof < 1.0 then
        fail
          (Printf.sprintf
             "domains_over_fork %.2f below gate 1.00: warm domains pool \
              slower than warm fork pool"
             dof);
      (* Chunked dispatch must beat the one-task protocol on the CI
         runners; elsewhere it only has to be a real measurement (0 is
         the fork-unavailable sentinel). *)
      if cores >= 4 && cos > 0.0 && cos < 1.0 then
        fail
          (Printf.sprintf
             "chunked_over_single %.2f below gate 1.00: adaptive chunking \
              slower than single-task dispatch"
             cos)
    | _ -> fail "speedups not an object");
    (match require "config" with
    | Gp.Telemetry.Obj _ as c ->
      (match Gp.Telemetry.member "detected_cores" c with
      | Some (Gp.Telemetry.Int n) when n >= 1 -> ()
      | _ -> fail "config.detected_cores missing or < 1")
    | _ -> fail "config not an object");
    ignore (require "records");
    (* The chunked-dispatch instrumentation must have registered: chunk
       sizes and per-batch dispatch spans as histograms, steals as a
       counter (0 is fine — unregistered is not). *)
    (match require "telemetry" with
    | Gp.Telemetry.Obj _ as t ->
      (match Gp.Telemetry.member "histograms" t with
      | Some (Gp.Telemetry.Obj _ as h) ->
        List.iter
          (fun k ->
            if Gp.Telemetry.member k h = None then
              fail ("telemetry.histograms missing " ^ k))
          [ "parmap.chunk_size"; "parmap.dispatch_s"; "parmap.queue_wait_s" ]
      | _ -> fail "telemetry.histograms missing");
      (match Gp.Telemetry.member "counters" t with
      | Some (Gp.Telemetry.Obj _ as c) ->
        if Gp.Telemetry.member "parmap.steals" c = None then
          fail "telemetry.counters missing parmap.steals"
      | _ -> fail "telemetry.counters missing")
    | _ -> fail "telemetry not an object");
    (match require "sim" with
    | Gp.Telemetry.Obj _ as s ->
      List.iter
        (fun k ->
          match Gp.Telemetry.member k s with
          | Some _ -> ()
          | None -> fail ("sim section missing key " ^ k))
        [
          "engine_speedup"; "replay_speedup"; "evolution_speedup";
          "evolution_identical"; "artifact_hit_rate";
        ]
    | _ -> fail "sim not an object");
    (match require "evalc" with
    | Gp.Telemetry.Obj _ as e ->
      List.iter
        (fun k ->
          match Gp.Telemetry.member k e with
          | Some _ -> ()
          | None -> fail ("evalc section missing key " ^ k))
        [
          "compiled_speedup"; "branchy_speedup"; "bit_identical"; "fork_s";
          "domains_s"; "domains_over_fork"; "pools_identical";
        ]
    | _ -> fail "evalc not an object"));
  Fmt.pr
    "@.speedups: parallel %s steady (%d cores), warm cache %.2fx, \
     domains/fork %.2fx, chunked dispatch %.2fx, pool startup %.3fs@."
    (if cores < 2 then "n/a (insufficient cores)"
     else Printf.sprintf "%.2fx" (speedup steady_j1 steady_j4))
    cores
    (speedup (seconds ph_cold) (seconds ph_warm))
    domains_over_fork
    (speedup single_s chunked_s)
    startup_s;
  Fmt.pr "identical evolved results across engines: %s@."
    (if identical then "yes" else "NO!");
  Fmt.pr "records: %d generation, %d pool, %d cache@." (count "generation")
    (count "pool") (count "cache");
  Fmt.pr "wrote %s (schema ok)@." out

(* Bechamel micro-benchmarks of the hot paths: expression evaluation,
   genetic operators, dependence-graph construction and scheduling, cache
   simulation and whole-program interpretation. *)
let micro () =
  hr "Micro-benchmarks (Bechamel)";
  let open Bechamel in
  let fs = Hyperblock.Features.feature_set in
  let env = Gp.Feature_set.empty_env fs in
  let expr = Hyperblock.Baseline.expr in
  let rng0 = Random.State.make [| 9 |] in
  let big_expr = Gp.Gen.gen_real (Gp.Gen.default_config fs) rng0 ~full:true 8 in
  let rng = Random.State.make [| 17 |] in
  let genome_a =
    Gp.Gen.genome (Gp.Gen.default_config fs) rng ~sort:`Real ~full:false 6
  in
  let genome_b =
    Gp.Gen.genome (Gp.Gen.default_config fs) rng ~sort:`Real ~full:false 6
  in
  let bench_block =
    let b = Benchmarks.Registry.find "rawcaudio" in
    let prog = Frontend.Minic.compile b.Benchmarks.Bench.source in
    Opt.Pipeline.run prog;
    let f = Ir.Func.find_func prog "main" in
    let biggest =
      List.fold_left
        (fun (acc : Ir.Func.block) (blk : Ir.Func.block) ->
          if List.length blk.Ir.Func.instrs > List.length acc.Ir.Func.instrs
          then blk
          else acc)
        (List.hd f.Ir.Func.blocks) f.Ir.Func.blocks
    in
    Array.of_list biggest.Ir.Func.instrs
  in
  let quick_prog =
    let b = Benchmarks.Registry.find "codrle4" in
    let prog = Frontend.Minic.compile b.Benchmarks.Bench.source in
    Opt.Pipeline.run prog;
    let layout = Profile.Layout.prepare prog in
    (layout, b.Benchmarks.Bench.train)
  in
  let cache = Machine.Cache.create Machine.Config.table3 in
  let counter = ref 0 in
  let tests =
    [
      Test.make ~name:"eval-eq1-priority"
        (Staged.stage (fun () -> ignore (Gp.Eval.real env expr)));
      Test.make ~name:"eval-depth8-expr"
        (Staged.stage (fun () -> ignore (Gp.Eval.real env big_expr)));
      Test.make ~name:"depth-fair-crossover"
        (Staged.stage (fun () ->
             ignore (Gp.Genetic_ops.crossover rng genome_a genome_b)));
      Test.make ~name:"depgraph-hot-block"
        (Staged.stage (fun () -> ignore (Sched.Depgraph.build bench_block)));
      Test.make ~name:"list-schedule-hot-block"
        (Staged.stage (fun () ->
             ignore
               (Sched.List_sched.schedule_instrs
                  ~config:Machine.Config.table3 bench_block)));
      Test.make ~name:"cache-load-stream"
        (Staged.stage (fun () ->
             incr counter;
             ignore (Machine.Cache.load cache (!counter * 3 land 0xFFFF))));
      Test.make ~name:"interp-codrle4-run"
        (Staged.stage (fun () ->
             let layout, overrides = quick_prog in
             ignore (Profile.Interp.run ~overrides layout)));
    ]
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let ols =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false
             ~predictors:[| Measure.run |])
          Toolkit.Instance.monotonic_clock results
      in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Fmt.pr "  %-36s %12.1f ns/run@." name est
          | _ -> Fmt.pr "  %-36s (no estimate)@." name)
        ols)
    tests

(* --- fuzz: differential-oracle campaign as a bench target ---------- *)

let fuzz_target () =
  let count =
    match Sys.getenv_opt "METAOPT_FUZZ_COUNT" with
    | Some s -> (try int_of_string s with _ -> 100)
    | None -> 100
  in
  let seed =
    match Sys.getenv_opt "METAOPT_FUZZ_SEED" with
    | Some s -> (try int_of_string s with _ -> 0)
    | None -> 0
  in
  Fmt.pr "differential fuzzing campaign (seed %d, count %d)@." seed count;
  let summary = Fuzz.run ~seed ~count () in
  Fmt.pr "%a" Fuzz.pp_summary summary;
  if Fuzz.divergences summary > 0 then exit 1

(* ------------------------------------------------------------------ *)

let all_figures =
  [
    ("fig4", fig4); ("fig5", fig5); ("fig6", fig6); ("fig7", fig7);
    ("fig8", fig8); ("fig9", fig9); ("fig10", fig10); ("fig11", fig11);
    ("fig12", fig12); ("fig13", fig13); ("fig14", fig14); ("fig15", fig15);
    ("fig16", fig16); ("ext-sched", ext_sched); ("ablations", ablations);
    ("par", par); ("ckpt", ckpt); ("sim", sim); ("evalc", evalc);
    ("report", report); ("micro", micro); ("fuzz", fuzz_target);
  ]

let () =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some Logs.Error);
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ -> List.map fst all_figures
  in
  Fmt.pr "Meta Optimization benchmark harness@.";
  Fmt.pr
    "GP scale: population %d, generations %d, %d evaluation worker(s)@.\
     (env METAOPT_POP/GENS/JOBS)@."
    params.Gp.Params.population_size params.Gp.Params.generations jobs;
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun name ->
      match List.assoc_opt name all_figures with
      | Some f ->
        let t = Unix.gettimeofday () in
        f ();
        Fmt.pr "@.[%s took %.1fs]@." name (Unix.gettimeofday () -. t)
      | None ->
        Fmt.pr "unknown target %s (try fig4..fig16, ablations, micro)@." name)
    requested;
  Fmt.pr "@.total: %.1fs@." (Unix.gettimeofday () -. t0)
