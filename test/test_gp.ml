(* Tests for the GP engine: expressions, evaluation, syntax, tree
   navigation, genetic operators, DSS and the evolution driver. *)

let fs =
  Gp.Feature_set.make
    ~reals:[ "x"; "y"; "z" ]
    ~bools:[ "p"; "q" ]

let env_with ?(x = 0.0) ?(y = 0.0) ?(z = 0.0) ?(p = false) ?(q = false) () =
  let env = Gp.Feature_set.empty_env fs in
  Gp.Feature_set.set_real fs env "x" x;
  Gp.Feature_set.set_real fs env "y" y;
  Gp.Feature_set.set_real fs env "z" z;
  Gp.Feature_set.set_bool fs env "p" p;
  Gp.Feature_set.set_bool fs env "q" q;
  env

let parse_r s = Gp.Sexp.parse_real fs s
let parse_b s = Gp.Sexp.parse_bool fs s

let check_eval name src env expected =
  Alcotest.(check (float 1e-9)) name expected (Gp.Eval.real env (parse_r src))

(* --- Evaluation semantics (Table 1) ------------------------------------- *)

let test_eval_arith () =
  let env = env_with ~x:3.0 ~y:4.0 () in
  check_eval "add" "(add x y)" env 7.0;
  check_eval "sub" "(sub x y)" env (-1.0);
  check_eval "mul" "(mul x y)" env 12.0;
  check_eval "div" "(div y x)" env (4.0 /. 3.0);
  check_eval "sqrt" "(sqrt (mul x x))" env 3.0;
  check_eval "nested" "(add (mul x x) (mul y y))" env 25.0

let test_eval_protected () =
  let env = env_with ~x:5.0 () in
  (* Protected division returns the numerator when dividing by ~0. *)
  check_eval "div by zero" "(div x 0.0)" env 5.0;
  check_eval "div by tiny" "(div x 1e-30)" env 5.0;
  (* Protected sqrt takes the absolute value. *)
  check_eval "sqrt of negative" "(sqrt (sub 0.0 9.0))" env 3.0

let test_eval_conditionals () =
  let env_t = env_with ~x:2.0 ~y:10.0 ~p:true () in
  let env_f = env_with ~x:2.0 ~y:10.0 ~p:false () in
  check_eval "tern true" "(tern p x y)" env_t 2.0;
  check_eval "tern false" "(tern p x y)" env_f 10.0;
  (* cmul: Real1 * Real2 if Bool1, else Real2 (Table 1). *)
  check_eval "cmul true" "(cmul p x y)" env_t 20.0;
  check_eval "cmul false" "(cmul p x y)" env_f 10.0

let test_eval_bool () =
  let ev src env = Gp.Eval.bool env (parse_b src) in
  let env = env_with ~x:1.0 ~y:2.0 ~p:true ~q:false () in
  Alcotest.(check bool) "and" false (ev "(and p q)" env);
  Alcotest.(check bool) "or" true (ev "(or p q)" env);
  Alcotest.(check bool) "not" true (ev "(not q)" env);
  Alcotest.(check bool) "lt" true (ev "(lt x y)" env);
  Alcotest.(check bool) "gt" false (ev "(gt x y)" env);
  Alcotest.(check bool) "eq" true (ev "(eq x 1.0)" env);
  Alcotest.(check bool) "bconst" true (ev "(bconst true)" env);
  Alcotest.(check bool) "barg" false (ev "(barg q)" env)

(* The baseline hyperblock priority function (Equation 1) evaluates to the
   paper's values on hand-computed feature settings. *)
let test_equation_1 () =
  let hb_fs = Hyperblock.Features.feature_set in
  let env = Gp.Feature_set.empty_env hb_fs in
  Gp.Feature_set.set_real hb_fs env "exec_ratio" 0.5;
  Gp.Feature_set.set_real hb_fs env "d_ratio" 0.6;
  Gp.Feature_set.set_real hb_fs env "o_ratio" 0.4;
  Gp.Feature_set.set_bool hb_fs env "has_pointer_deref" false;
  Gp.Feature_set.set_bool hb_fs env "has_unsafe_jsr" false;
  Alcotest.(check (float 1e-9)) "hazard-free"
    (0.5 *. 1.0 *. (2.1 -. 0.6 -. 0.4))
    (Gp.Eval.real env Hyperblock.Baseline.expr);
  Gp.Feature_set.set_bool hb_fs env "has_pointer_deref" true;
  Alcotest.(check (float 1e-9)) "with hazard"
    (0.5 *. 0.25 *. (2.1 -. 0.6 -. 0.4))
    (Gp.Eval.real env Hyperblock.Baseline.expr)

(* --- Parsing / printing -------------------------------------------------- *)

let test_parse_errors () =
  let fails s =
    Alcotest.check_raises ("reject " ^ s) (Gp.Sexp.Parse_error "")
      (fun () ->
        try ignore (parse_r s)
        with Gp.Sexp.Parse_error _ -> raise (Gp.Sexp.Parse_error ""))
  in
  fails "(add x)";
  fails "(add x y z)";
  fails "(unknown x y)";
  fails "(add x unknown_feature)";
  fails "(add x y";
  fails ""

let test_parse_forms () =
  (* rconst / rarg / barg explicit forms, plus bare atoms. *)
  let env = env_with ~x:7.0 () in
  check_eval "rconst form" "(rconst 2.5)" env 2.5;
  check_eval "rarg form" "(rarg x)" env 7.0;
  check_eval "bare float" "3.25" env 3.25;
  check_eval "bare feature" "x" env 7.0;
  Alcotest.(check bool) "barg form" false
    (Gp.Eval.bool env (parse_b "(barg q)"))

let genome_gen =
  let cfg = Gp.Gen.default_config fs in
  QCheck.Gen.(
    map
      (fun (seed, sort, depth) ->
        let rng = Random.State.make [| seed |] in
        Gp.Gen.genome cfg rng
          ~sort:(if sort then `Real else `Bool)
          ~full:false
          (2 + (depth mod 5)))
      (triple int bool int))

let arbitrary_genome =
  QCheck.make
    ~print:(fun g -> Gp.Sexp.to_string fs g)
    genome_gen

let qcheck_roundtrip =
  QCheck.Test.make ~name:"sexp print/parse round-trips" ~count:300
    arbitrary_genome (fun g ->
      let s = Gp.Sexp.to_string fs g in
      let sort = match g with Gp.Expr.Real _ -> `Real | Gp.Expr.Bool _ -> `Bool in
      let g' = Gp.Sexp.parse_genome fs ~sort s in
      Gp.Sexp.to_string fs g' = s)

let qcheck_eval_total =
  QCheck.Test.make ~name:"evaluation is total and finite" ~count:300
    QCheck.(pair arbitrary_genome (triple float float float))
    (fun (g, (x, y, z)) ->
      let clean v = if Float.is_nan v then 0.0 else v in
      let env = env_with ~x:(clean x) ~y:(clean y) ~z:(clean z) () in
      match Gp.Eval.genome env g with
      | `Real v -> Float.is_finite v
      | `Bool _ -> true)

(* --- Tree navigation & genetic operators --------------------------------- *)

let test_tree_nodes () =
  let g = Gp.Expr.Real (parse_r "(add (mul x y) (tern p z 1.0))") in
  let nodes = Gp.Tree.nodes g in
  (* add, mul, x, y, tern, p, z, 1.0 *)
  Alcotest.(check int) "node count" 8 (List.length nodes);
  Alcotest.(check int) "size agrees" (Gp.Expr.size g) (List.length nodes);
  let root = List.hd nodes in
  Alcotest.(check bool) "root is real" true (root.Gp.Tree.sort = Gp.Tree.S_real)

let test_tree_replace () =
  let g = Gp.Expr.Real (parse_r "(add x y)") in
  let g' = Gp.Tree.replace g [ 1 ] (Gp.Expr.Real (parse_r "z")) in
  Alcotest.(check string) "replaced right child" "(add x z)"
    (Gp.Sexp.to_string fs g')

let qcheck_crossover_wellformed =
  QCheck.Test.make ~name:"crossover produces same-sort printable offspring"
    ~count:300
    QCheck.(triple arbitrary_genome arbitrary_genome small_int)
    (fun (a, b, seed) ->
      let rng = Random.State.make [| seed |] in
      match (a, b) with
      | Gp.Expr.Real _, Gp.Expr.Real _ | Gp.Expr.Bool _, Gp.Expr.Bool _ ->
        let child = Gp.Genetic_ops.crossover rng a b in
        let same_sort =
          match (a, child) with
          | Gp.Expr.Real _, Gp.Expr.Real _ | Gp.Expr.Bool _, Gp.Expr.Bool _ ->
            true
          | _ -> false
        in
        same_sort && String.length (Gp.Sexp.to_string fs child) > 0
      | _ -> QCheck.assume_fail ())

let qcheck_crossover_depth_bound =
  QCheck.Test.make ~name:"bounded crossover respects the depth cap" ~count:300
    QCheck.(triple arbitrary_genome arbitrary_genome small_int)
    (fun (a, b, seed) ->
      let rng = Random.State.make [| seed |] in
      match (a, b) with
      | Gp.Expr.Real _, Gp.Expr.Real _ | Gp.Expr.Bool _, Gp.Expr.Bool _ ->
        let child = Gp.Genetic_ops.crossover_bounded rng ~max_depth:9 a b in
        Gp.Expr.depth child <= max 9 (Gp.Expr.depth a)
      | _ -> QCheck.assume_fail ())

let qcheck_mutation_wellformed =
  QCheck.Test.make ~name:"mutation keeps sort and depth cap" ~count:300
    QCheck.(pair arbitrary_genome small_int)
    (fun (g, seed) ->
      let rng = Random.State.make [| seed |] in
      let cfg = Gp.Gen.default_config fs in
      let m = Gp.Genetic_ops.mutate cfg rng ~max_depth:12 g in
      let same_sort =
        match (g, m) with
        | Gp.Expr.Real _, Gp.Expr.Real _ | Gp.Expr.Bool _, Gp.Expr.Bool _ ->
          true
        | _ -> false
      in
      same_sort && Gp.Expr.depth m <= max 12 (Gp.Expr.depth g))

(* --- Ramped initialization ------------------------------------------------ *)

let test_ramped () =
  let cfg = Gp.Gen.default_config fs in
  let rng = Random.State.make [| 7 |] in
  let pop = Gp.Gen.ramped cfg rng ~sort:`Real ~count:100 in
  Alcotest.(check int) "population size" 100 (List.length pop);
  List.iter
    (fun g ->
      Alcotest.(check bool) "depth within ramp" true
        (Gp.Expr.depth g <= cfg.Gp.Gen.max_depth))
    pop;
  (* Some diversity is expected. *)
  let distinct =
    List.sort_uniq compare (List.map (Gp.Sexp.to_string fs) pop)
  in
  Alcotest.(check bool) "diverse initial population" true
    (List.length distinct > 30)

(* --- DSS ------------------------------------------------------------------ *)

let test_dss_subset () =
  let d = Gp.Dss.create ~n_cases:10 ~subset_size:4 () in
  let rng = Random.State.make [| 3 |] in
  let subset = Gp.Dss.select d rng in
  Alcotest.(check int) "subset size" 4 (List.length subset);
  Alcotest.(check int) "no duplicates" 4
    (List.length (List.sort_uniq compare subset));
  List.iter
    (fun i -> Alcotest.(check bool) "in range" true (i >= 0 && i < 10))
    subset

let test_dss_difficulty_bias () =
  (* A case that always fails should be selected far more often than one
     that always succeeds. *)
  let d = Gp.Dss.create ~n_cases:2 ~subset_size:1 () in
  let rng = Random.State.make [| 5 |] in
  let hard_picks = ref 0 in
  for _ = 1 to 200 do
    let subset = Gp.Dss.select d rng in
    if List.mem 0 subset then incr hard_picks;
    Gp.Dss.update d ~subset ~failure_rate:(fun i ->
        if i = 0 then 1.0 else 0.0)
  done;
  Alcotest.(check bool)
    (Printf.sprintf "hard case dominates selection (%d/200)" !hard_picks)
    true (!hard_picks > 120)

(* --- Evolution on a synthetic problem ------------------------------------- *)

(* Fitness: how well the expression approximates x*y + 1 over sample
   points; the optimum is reachable and random search plus crossover finds
   a good approximation quickly. *)
let synthetic_eval g _case =
  let samples =
    List.init 16 (fun i ->
        let x = float_of_int (i mod 4) and y = float_of_int (i / 4) in
        (x, y, (x *. y) +. 1.0))
  in
  match g with
  | Gp.Expr.Bool _ -> 0.0
  | Gp.Expr.Real e ->
    let err =
      List.fold_left
        (fun acc (x, y, want) ->
          let env = env_with ~x ~y () in
          acc +. Float.abs (Gp.Eval.real env e -. want))
        0.0 samples
    in
    1.0 /. (1.0 +. err)

let synthetic_problem_of eval =
  {
    Gp.Evolve.fs;
    sort = `Real;
    baseline = Some (Gp.Expr.Real (parse_r "(add x y)"));
    n_cases = 1;
    case_name = (fun _ -> "synthetic");
    evaluator = Gp.Evolve.evaluator_of_fn eval;
  }

let synthetic_problem () = synthetic_problem_of synthetic_eval

let test_evolve_improves () =
  let p = synthetic_problem () in
  let params = { Gp.Params.tiny with Gp.Params.population_size = 60;
                 generations = 15 } in
  let r = Gp.Evolve.run ~params p in
  let baseline_fitness = synthetic_eval (Option.get p.Gp.Evolve.baseline) 0 in
  Alcotest.(check bool)
    (Printf.sprintf "evolved (%.3f) beats seed (%.3f)" r.Gp.Evolve.best_fitness
       baseline_fitness)
    true
    (r.Gp.Evolve.best_fitness >= baseline_fitness);
  Alcotest.(check int) "history has one entry per generation" 15
    (List.length r.Gp.Evolve.history);
  (* Best-of-generation fitness never decreases with elitism on a single
     static case. *)
  let rec monotone : Gp.Evolve.generation_stats list -> bool = function
    | a :: (b :: _ as rest) ->
      a.Gp.Evolve.best_fitness <= b.Gp.Evolve.best_fitness +. 1e-9
      && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "elitist best fitness is monotone" true
    (monotone r.Gp.Evolve.history)

let test_evolve_memoizes () =
  let count = ref 0 in
  let p =
    synthetic_problem_of (fun g _ ->
        incr count;
        match g with
        | Gp.Expr.Real e ->
          let env = env_with ~x:2.0 ~y:3.0 () in
          1.0 /. (1.0 +. Float.abs (Gp.Eval.real env e -. 7.0))
        | Gp.Expr.Bool _ -> 0.0)
  in
  let params = Gp.Params.tiny in
  let r = Gp.Evolve.run ~params p in
  (* result.evaluations counts exactly the non-memoized evaluations, and
     those are bounded by distinct genomes, far fewer than generations *
     population re-evaluations. *)
  Alcotest.(check int) "evaluations counts only non-memoized calls" !count
    r.Gp.Evolve.evaluations;
  Alcotest.(check bool)
    (Printf.sprintf "memoized (%d calls)" !count)
    true
    (!count
    <= params.Gp.Params.population_size
       * (params.Gp.Params.generations + 2))

(* The bugfix satellite: memoization is keyed on the *simplified* genome,
   so a crossover product that reduces to an already-seen expression is a
   cache hit, not a recompile. *)
let test_batch_memo_on_simplified_genome () =
  let count = ref 0 in
  let ev =
    Gp.Evolve.evaluator_of_fn (fun g _ ->
        incr count;
        match g with
        | Gp.Expr.Real e -> Gp.Eval.real (env_with ~x:4.0 ()) e
        | Gp.Expr.Bool _ -> 0.0)
  in
  let plain = Gp.Expr.Real (parse_r "x") in
  (* -0.0 * sqrt(y) is provably -0.0, and -0.0 + x = x bit-exactly for
     every finite x — so this intron soundly reduces to plain [x]. *)
  let intron = Gp.Expr.Real (parse_r "(add (mul -0.0 (sqrt y)) x)") in
  let m = ev.Gp.Evolve.evaluate_batch [| intron; plain |] ~cases:[ 0 ] in
  Alcotest.(check int) "rows" 2 (Array.length m);
  Alcotest.(check (float 1e-9)) "intron row" 4.0 m.(0).(0);
  Alcotest.(check (float 1e-9)) "plain row" 4.0 m.(1).(0);
  Alcotest.(check int) "one evaluation for both" 1 !count;
  Alcotest.(check int) "evaluations() agrees" 1 (ev.Gp.Evolve.evaluations ());
  (* A second batch over the same semantics costs nothing. *)
  let m2 = ev.Gp.Evolve.evaluate_batch [| plain |] ~cases:[ 0 ] in
  Alcotest.(check (float 1e-9)) "cache hit" 4.0 m2.(0).(0);
  Alcotest.(check int) "still one evaluation" 1 !count

let test_batch_shape () =
  let ev =
    Gp.Evolve.evaluator_of_fn (fun g c ->
        match g with
        | Gp.Expr.Real e ->
          Gp.Eval.real (env_with ~x:(float_of_int c) ()) e +. 1.0
        | Gp.Expr.Bool _ -> 0.0)
  in
  let m =
    ev.Gp.Evolve.evaluate_batch
      [| Gp.Expr.Real (parse_r "x"); Gp.Expr.Real (parse_r "(mul x 2.0)") |]
      ~cases:[ 2; 0; 1 ]
  in
  (* Row per genome, column per case, in the order given. *)
  Alcotest.(check (float 1e-9)) "row0 case2" 3.0 m.(0).(0);
  Alcotest.(check (float 1e-9)) "row0 case0" 1.0 m.(0).(1);
  Alcotest.(check (float 1e-9)) "row0 case1" 2.0 m.(0).(2);
  Alcotest.(check (float 1e-9)) "row1 case2" 5.0 m.(1).(0);
  Alcotest.(check (float 1e-9)) "row1 case1" 3.0 m.(1).(2)

(* The paper: "GP can handle noisy environments, as long as the level of
   noise is smaller than attainable speedups" — verify on the synthetic
   problem with multiplicative noise injected into fitness. *)
let test_evolve_under_noise () =
  let noise_rng = Random.State.make [| 99 |] in
  let noisy =
    synthetic_problem_of (fun g c ->
        let v = synthetic_eval g c in
        v *. (1.0 +. (0.02 *. (Random.State.float noise_rng 2.0 -. 1.0))))
  in
  let params =
    { Gp.Params.tiny with Gp.Params.population_size = 40; generations = 10 }
  in
  let r = Gp.Evolve.run ~params noisy in
  let baseline_clean =
    synthetic_eval (Option.get noisy.Gp.Evolve.baseline) 0
  in
  let best_clean = synthetic_eval r.Gp.Evolve.best 0 in
  Alcotest.(check bool)
    (Printf.sprintf "evolved under noise still good (%.3f vs seed %.3f)"
       best_clean baseline_clean)
    true
    (best_clean >= baseline_clean -. 0.02)

let test_parsimony_prefers_small () =
  (* Two expressions with equal fitness: tournament must prefer smaller. *)
  let a = { Gp.Evolve.genome = Gp.Expr.Real (parse_r "x"); fitness = 1.0;
            size = 1 } in
  let b =
    { Gp.Evolve.genome = Gp.Expr.Real (parse_r "(add x 0.0)"); fitness = 1.0;
      size = 3 }
  in
  Alcotest.(check bool) "smaller wins tie" true
    (Gp.Evolve.better ~eps:1e-4 a b);
  Alcotest.(check bool) "bigger loses tie" false
    (Gp.Evolve.better ~eps:1e-4 b a);
  Alcotest.(check bool) "fitness dominates size" true
    (Gp.Evolve.better ~eps:1e-4 { b with Gp.Evolve.fitness = 1.1 } a)

(* The tiny-population bugfix: population_size = 1 used to ask Gen.ramped
   for a negative number of random individuals (the baseline seed alone
   already filled the population) and die in List.init.  The seed list is
   now truncated and the random count clamped to 0. *)
let test_population_of_one () =
  let params =
    { Gp.Params.tiny with Gp.Params.population_size = 1; generations = 2 }
  in
  let r = Gp.Evolve.run ~params (synthetic_problem ()) in
  Alcotest.(check int) "one stats entry per generation" 2
    (List.length r.Gp.Evolve.history);
  (* The only individual is the baseline seed, so the champion is at least
     as fit as the baseline (mutation may improve it). *)
  let baseline_fitness =
    synthetic_eval (Option.get (synthetic_problem ()).Gp.Evolve.baseline) 0
  in
  Alcotest.(check bool) "champion no worse than the seed" true
    (r.Gp.Evolve.best_fitness >= baseline_fitness -. 1e-9);
  (* Without the baseline seed the single slot is a random individual. *)
  let unseeded =
    { params with Gp.Params.seed_baseline = false; rng_seed = 5 }
  in
  let r2 = Gp.Evolve.run ~params:unseeded (synthetic_problem ()) in
  Alcotest.(check bool) "unseeded run completes" true
    (Float.is_finite r2.Gp.Evolve.best_fitness)

(* The tournament sampler: distinct contestants whenever the population
   can supply them. *)
let test_sample_distinct () =
  let rng = Random.State.make [| 1234 |] in
  for _ = 1 to 200 do
    let n = 1 + Random.State.int rng 20 in
    let k = Random.State.int rng (n + 1) in
    let out = Gp.Evolve.sample_distinct rng ~n ~k in
    Alcotest.(check int) "length" k (Array.length out);
    let seen = Hashtbl.create 8 in
    Array.iter
      (fun i ->
        Alcotest.(check bool) "in range" true (i >= 0 && i < n);
        if Hashtbl.mem seen i then Alcotest.failf "duplicate index %d" i;
        Hashtbl.add seen i ())
      out
  done;
  Alcotest.(check (array int)) "k = 0" [||]
    (Gp.Evolve.sample_distinct rng ~n:5 ~k:0);
  let perm = Gp.Evolve.sample_distinct rng ~n:6 ~k:6 in
  let sorted = Array.copy perm in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "k = n is a permutation" (Array.init 6 Fun.id)
    sorted;
  (* The first draw of each slot is the with-replacement sampler's draw,
     so collision-free tournaments consume the RNG identically to the old
     code. *)
  let r1 = Random.State.make [| 7 |] and r2 = Random.State.make [| 7 |] in
  let one = Gp.Evolve.sample_distinct r1 ~n:50 ~k:1 in
  Alcotest.(check int) "first draw matches a plain draw"
    (Random.State.int r2 50) one.(0);
  Alcotest.check_raises "k > n" (Invalid_argument "Evolve.sample_distinct: k > n")
    (fun () -> ignore (Gp.Evolve.sample_distinct rng ~n:3 ~k:4));
  Alcotest.check_raises "k < 0"
    (Invalid_argument "Evolve.sample_distinct: negative k") (fun () ->
      ignore (Gp.Evolve.sample_distinct rng ~n:3 ~k:(-1)))

(* Golden determinism: the tournament rework must not make runs depend on
   anything but the seed — two identical runs produce identical output,
   including when the tournament is larger than the population (the
   with-replacement path). *)
let test_evolve_reproducible () =
  let check_twice params =
    let run () = Gp.Evolve.run ~params (synthetic_problem ()) in
    let a = run () and b = run () in
    Alcotest.(check (float 0.0)) "same best fitness" a.Gp.Evolve.best_fitness
      b.Gp.Evolve.best_fitness;
    Alcotest.(check int) "same evaluation count" a.Gp.Evolve.evaluations
      b.Gp.Evolve.evaluations;
    List.iter2
      (fun (x : Gp.Evolve.generation_stats) (y : Gp.Evolve.generation_stats) ->
        Alcotest.(check string) "same champion" x.Gp.Evolve.best_expr
          y.Gp.Evolve.best_expr;
        Alcotest.(check (float 0.0)) "same mean" x.Gp.Evolve.mean_fitness
          y.Gp.Evolve.mean_fitness)
      a.Gp.Evolve.history b.Gp.Evolve.history
  in
  check_twice Gp.Params.tiny;
  (* Tournament larger than the population: sampling falls back to
     with-replacement draws. *)
  check_twice
    { Gp.Params.tiny with Gp.Params.population_size = 4; tournament_size = 9 }

(* --- Simplification ------------------------------------------------------ *)

let test_simplify_rules () =
  let simp src = Gp.Sexp.real_to_string fs (Gp.Simplify.rexpr (parse_r src)) in
  (* x can evaluate to -0.0, so +0.0 may neither be dropped from x+0
     (+0 + -0 = +0) nor absorb x*0 (0 * -1 = -0): bit-exactness keeps
     both.  Subtraction of +0.0 is the always-sound direction. *)
  Alcotest.(check string) "x+0 stays" "(add x 0.0000)" (simp "(add x 0.0)");
  Alcotest.(check string) "x-0" "x" (simp "(sub x 0.0)");
  Alcotest.(check string) "x*1" "x" (simp "(mul x 1.0)");
  Alcotest.(check string) "x*0 stays" "(mul x 0.0000)" (simp "(mul x 0.0)");
  Alcotest.(check string) "x-x" "0.0000" (simp "(sub x x)");
  Alcotest.(check string) "const fold" "7.0000" (simp "(add 3.0 4.0)");
  Alcotest.(check string) "tern true" "x" (simp "(tern (bconst true) x y)");
  Alcotest.(check string) "tern same" "x" (simp "(tern p x x)");
  Alcotest.(check string) "cmul false" "y" (simp "(cmul (bconst false) x y)");
  (* sqrt is provably >= 0 and never -0.0, so the zero rules fire. *)
  Alcotest.(check string) "0*sqrt" "0.0000" (simp "(mul 0.0 (sqrt y))");
  Alcotest.(check string) "nested intron"
    "1.0000" (simp "(add (mul 0.0 (sqrt y)) 1.0)");
  (* x/x must NOT fold to 1 (protected semantics). *)
  Alcotest.(check string) "x/x stays" "(div x x)" (simp "(div x x)");
  let simpb src = Gp.Sexp.bool_to_string fs (Gp.Simplify.bexpr (parse_b src)) in
  Alcotest.(check string) "not not" "p" (simpb "(not (not p))");
  Alcotest.(check string) "and false" "false" (simpb "(and p (bconst false))");
  Alcotest.(check string) "or true" "true" (simpb "(or (bconst true) q)");
  Alcotest.(check string) "x<x" "false" (simpb "(lt x x)")

(* Regression: the old [Rconst 0.0] patterns also matched -0.0, so
   simplification could flip the sign bit of a zero result vs [Eval] —
   breaking the [Int64.bits_of_float] equivalence the evaluator cache
   key relies on.  Each case pins the exact bits on a witness env. *)
let test_simplify_signed_zero () =
  let bits = Int64.bits_of_float in
  let check_case name src ~x =
    let e = parse_r src in
    let env = env_with ~x () in
    let raw = Gp.Eval.real env e in
    let simplified = Gp.Eval.real env (Gp.Simplify.rexpr e) in
    Alcotest.(check int64)
      (name ^ " bits")
      (bits raw) (bits simplified)
  in
  (* -0 + x: always droppable; must still yield -0.0 when x = -0.0. *)
  check_case "-0+x" "(add -0.0 x)" ~x:(-0.0);
  (* +0 + x is NOT droppable: +0 + -0 = +0 but x alone is -0. *)
  check_case "+0+x" "(add 0.0 x)" ~x:(-0.0);
  (* 0 * x would flip the zero's sign for negative x. *)
  check_case "0*x" "(mul 0.0 x)" ~x:(-1.0);
  check_case "-0*x" "(mul -0.0 x)" ~x:(2.0);
  (* x - -0.0 normalizes a -0.0 minuend to +0.0. *)
  check_case "x--0" "(sub x -0.0)" ~x:(-0.0);
  (* a - b with trees equal up to a zero's sign must not fold to 0.0:
     (x + -0) - (x + +0) = -0.0 when x = -0.0. *)
  check_case "sub of sign-twins" "(sub (add x -0.0) (add x 0.0))" ~x:(-0.0);
  (* The sound directions must still fire (and still be bit-right). *)
  let shows src expect =
    Alcotest.(check string) src expect
      (Gp.Sexp.real_to_string fs (Gp.Simplify.rexpr (parse_r src)))
  in
  shows "(add -0.0 x)" "x";
  shows "(sub x 0.0)" "x";
  shows "(mul 0.0 (sqrt x))" "0.0000";
  shows "(mul -0.0 (sqrt x))" "-0.0000";
  shows "(add 0.0 (sqrt x))" "(sqrt x)"

let qcheck_simplify_preserves_value =
  QCheck.Test.make ~name:"simplification preserves evaluation" ~count:500
    QCheck.(pair arbitrary_genome (triple (float_range (-100.) 100.)
                                     (float_range (-100.) 100.)
                                     (float_range (-100.) 100.)))
    (fun (g, (x, y, z)) ->
      let env = env_with ~x ~y ~z ~p:true ~q:false () in
      let s = Gp.Simplify.genome g in
      match (Gp.Eval.genome env g, Gp.Eval.genome env s) with
      | `Real a, `Real b ->
        a = b || Float.abs (a -. b) <= 1e-9 *. Float.max 1.0 (Float.abs a)
      | `Bool a, `Bool b -> a = b
      | _ -> false)

let qcheck_simplify_never_grows =
  QCheck.Test.make ~name:"simplification never grows expressions" ~count:500
    arbitrary_genome (fun g ->
      Gp.Expr.size (Gp.Simplify.genome g) <= Gp.Expr.size g)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      qcheck_roundtrip;
      qcheck_eval_total;
      qcheck_crossover_wellformed;
      qcheck_crossover_depth_bound;
      qcheck_mutation_wellformed;
      qcheck_simplify_preserves_value;
      qcheck_simplify_never_grows;
    ]

let suite =
  [
    Alcotest.test_case "arith evaluation" `Quick test_eval_arith;
    Alcotest.test_case "protected operators" `Quick test_eval_protected;
    Alcotest.test_case "tern and cmul" `Quick test_eval_conditionals;
    Alcotest.test_case "boolean operators" `Quick test_eval_bool;
    Alcotest.test_case "equation 1 baseline" `Quick test_equation_1;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "parse explicit forms" `Quick test_parse_forms;
    Alcotest.test_case "tree node enumeration" `Quick test_tree_nodes;
    Alcotest.test_case "tree replace" `Quick test_tree_replace;
    Alcotest.test_case "ramped half-and-half" `Quick test_ramped;
    Alcotest.test_case "dss subset selection" `Quick test_dss_subset;
    Alcotest.test_case "dss difficulty bias" `Quick test_dss_difficulty_bias;
    Alcotest.test_case "evolution improves fitness" `Slow test_evolve_improves;
    Alcotest.test_case "fitness memoization" `Quick test_evolve_memoizes;
    Alcotest.test_case "batch memo keys on simplified genome" `Quick
      test_batch_memo_on_simplified_genome;
    Alcotest.test_case "batch evaluator shape" `Quick test_batch_shape;
    Alcotest.test_case "parsimony pressure" `Quick test_parsimony_prefers_small;
    Alcotest.test_case "population of one" `Quick test_population_of_one;
    Alcotest.test_case "tournament sampling without replacement" `Quick
      test_sample_distinct;
    Alcotest.test_case "evolution reproducible" `Quick test_evolve_reproducible;
    Alcotest.test_case "simplification rules" `Quick test_simplify_rules;
    Alcotest.test_case "simplification signed zeros" `Quick
      test_simplify_signed_zero;
    Alcotest.test_case "evolution under noise" `Slow test_evolve_under_noise;
  ]
  @ qcheck_tests
