(* Deterministic fault injection for the supervised pool and the
   evaluator's fault accounting.  Injected tasks run in forked workers,
   where in-memory counters are invisible to the parent, so attempts are
   counted through the filesystem: every attempt appends one byte to a
   per-task file, and that file's size is the attempt count — visible
   from any process, and still there after the run. *)

type fault =
  | Hang  (* never return; must be killed by the deadline *)
  | Raise of string  (* the task raises inside the worker *)
  | Exit of int  (* the worker exits without replying *)
  | Kill of int  (* the worker kills itself with this signal *)

let fresh_dir tag =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "metaopt-test-%s-%d" tag (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  dir

let cleanup dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  end

let attempt_file dir task = Filename.concat dir (Printf.sprintf "task-%d" task)

(* Record one attempt of [task]; returns this attempt's 1-based number.
   Only one attempt of a given task is ever in flight, so the append
   needs no locking. *)
let record_attempt dir task =
  let fd =
    Unix.openfile (attempt_file dir task)
      [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ]
      0o644
  in
  ignore (Unix.write fd (Bytes.make 1 '.') 0 1);
  let n = (Unix.fstat fd).Unix.st_size in
  Unix.close fd;
  n

(* How many attempts [task] has made so far (parent-side inspection). *)
let attempts dir task =
  try (Unix.stat (attempt_file dir task)).Unix.st_size
  with Unix.Unix_error _ -> 0

let trigger = function
  | Hang ->
    while true do
      Unix.sleepf 60.0
    done
  | Raise msg -> failwith msg
  | Exit code -> Unix._exit code
  | Kill signal ->
    Unix.kill (Unix.getpid ()) signal;
    Unix.sleepf 60.0 (* a catchable signal may take a moment to land *)

(* [wrap ~dir ~plan f] records an attempt for every integer task, injects
   [plan task attempt] when it yields a fault (the attempt number is
   1-based, so "fail the first two times" is
   [fun _ n -> if n <= 2 then Some fault else None]), and otherwise
   computes [f task]. *)
let wrap ~dir ~plan f task =
  let n = record_attempt dir task in
  (match plan task n with Some fault -> trigger fault | None -> ());
  f task
