(* Chaos-injection tests: the plan language round-trips, the supervised
   domains pool survives slow, raising and hanging tasks under its
   cooperative deadline model, the evaluator's disk cache degrades to
   memo-only instead of dying, and a damaged checkpoint directory still
   resumes bit-identically.

   Ordering matters: this suite is registered LAST in test_main, and
   within it every test that needs [Unix.fork] (the chaos_vs_clean
   trial runs in a forked child) comes before the in-process domains
   tests, because the first [Domain.spawn] retires fork for the rest of
   the process. *)

module C = Gp.Chaos

let bits = Int64.bits_of_float

let with_dir tag f =
  let dir = C.Ledger.fresh_dir tag in
  Fun.protect ~finally:(fun () -> C.Ledger.cleanup dir) (fun () -> f dir)

let outcome_label = function
  | Gp.Parmap.Ok _ -> "Ok"
  | Gp.Parmap.Crashed _ -> "Crashed"
  | Gp.Parmap.Timed_out -> "Timed_out"
  | Gp.Parmap.Gave_up -> "Gave_up"

(* --- the plan language ---------------------------------------------------- *)

let test_plan_round_trip () =
  let spec =
    "parmap.task:3@1=hang,parmap.task=slow:0.5,evaluator.cache_write:2=torn,"
    ^ "evolve.checkpoint_write@2=truncate,parmap.task:0=raise:boom"
  in
  (match C.plan_of_string ~seed:7 spec with
  | Error e -> Alcotest.failf "spec rejected: %s" e
  | Ok p ->
    Alcotest.(check int) "seed carried" 7 p.C.seed;
    Alcotest.(check int) "five rules" 5 (List.length p.C.rules);
    Alcotest.(check string) "round trip" spec (C.plan_to_string p);
    (match C.plan_of_string ~seed:7 (C.plan_to_string p) with
    | Ok p2 -> Alcotest.(check string) "idempotent"
                 (C.plan_to_string p) (C.plan_to_string p2)
    | Error e -> Alcotest.failf "re-parse rejected: %s" e));
  List.iter
    (fun bad ->
      match C.plan_of_string bad with
      | Ok _ -> Alcotest.failf "accepted bad spec %S" bad
      | Error _ -> ())
    [ "nosuchsite=hang"; "parmap.task=frobnicate"; "parmap.task:x=hang";
      "parmap.task"; "" ]

let test_seeded_plans_deterministic () =
  let a = C.seeded ~seed:42 and b = C.seeded ~seed:42 in
  Alcotest.(check string) "same seed, same plan" (C.plan_to_string a)
    (C.plan_to_string b);
  (* every seeded rule is first-attempt-only and recoverable: a pool with
     retries >= 1 must absorb all of it *)
  List.iter
    (fun seed ->
      List.iter
        (fun r ->
          if r.C.r_site = C.site_parmap_task then
            Alcotest.(check (option int))
              "seeded task rules are attempt-1 only" (Some 1) r.C.r_attempt;
          match r.C.r_fault with
          | C.Hang | C.Exit _ | C.Kill _ ->
            Alcotest.failf "seeded plan %d injects unrecoverable %s" seed
              (C.fault_to_string r.C.r_fault)
          | C.Slow _ | C.Raise _ | C.Torn_write | C.Truncated -> ())
        (C.seeded ~seed).C.rules)
    [ 0; 1; 2; 17; 123 ]

let test_fire_matching () =
  let p =
    match C.plan_of_string "parmap.task:3@1=hang,parmap.task=slow:0.1" with
    | Ok p -> p
    | Error e -> Alcotest.failf "spec: %s" e
  in
  C.arm p;
  Fun.protect ~finally:C.disarm (fun () ->
      C.reset_counts ();
      (match C.fire ~site:C.site_parmap_task ~key:3 ~attempt:1 with
      | Some C.Hang -> ()
      | f ->
        Alcotest.failf "expected hang, got %s"
          (match f with None -> "none" | Some f -> C.fault_to_string f));
      (* attempt 2 falls through the keyed rule to the catch-all *)
      (match C.fire ~site:C.site_parmap_task ~key:3 ~attempt:2 with
      | Some (C.Slow _) -> ()
      | _ -> Alcotest.fail "catch-all should match attempt 2");
      Alcotest.(check (option string)) "other sites untouched" None
        (Option.map C.fault_to_string
           (C.fire ~site:C.site_cache_write ~key:1 ~attempt:1));
      Alcotest.(check int) "hits counted" 2
        (C.fired ~site:C.site_parmap_task ~key:3));
  Alcotest.(check bool) "disarmed" true (C.armed () = None);
  Alcotest.(check (option string)) "nothing fires disarmed" None
    (Option.map C.fault_to_string
       (C.fire ~site:C.site_parmap_task ~key:3 ~attempt:1))

(* --- satellite: pools announce the limits they cannot honor --------------- *)

let test_pool_ignored_limits () =
  let p = Gp.Parmap.pool ~backend:`Seq ~timeout_s:1.0 ~retries:3 () in
  Alcotest.(check (list string))
    "seq cannot honor deadlines or retries" [ "retries"; "timeout_s" ]
    (List.sort compare p.Gp.Parmap.ignored_limits);
  let q = Gp.Parmap.pool ~backend:`Domains ~timeout_s:1.0 ~retries:3 () in
  Alcotest.(check (list string)) "domains honors both" []
    q.Gp.Parmap.ignored_limits;
  let r = Gp.Parmap.pool ~backend:`Seq () in
  Alcotest.(check (list string)) "defaults are clean" []
    r.Gp.Parmap.ignored_limits

(* --- study-level bit-identity under seeded chaos (forks first) ------------ *)

let test_chaos_vs_clean () =
  match Fuzz.Oracle.chaos_trial 1 with
  | None -> ()
  | Some why -> Alcotest.failf "chaos run diverged from clean run: %s" why

(* --- satellite: cache write degradation ----------------------------------- *)

let with_cache_dir tag f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "metaopt-chaoscache-%s-%d" tag (Unix.getpid ()))
  in
  let rec rm_rf path =
    match Unix.lstat path with
    | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun x -> rm_rf (Filename.concat path x)) (Sys.readdir path);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
    | _ -> ( try Sys.remove path with Sys_error _ -> ())
    | exception Unix.Unix_error _ -> ()
  in
  rm_rf dir;
  Unix.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let count_lines path =
  if not (Sys.file_exists path) then 0
  else begin
    let ic = open_in path in
    let n = ref 0 in
    (try
       while true do
         ignore (input_line ic);
         incr n
       done
     with End_of_file -> ());
    close_in ic;
    !n
  end

let mk_cache_evaluator ?(eval = fun _ case -> float_of_int (case + 1)) dir =
  Driver.Evaluator.create ~backend:`Seq ~cache_dir:dir
    ~fs:Fuzz.Genome_gen.fs ~scope:"chaos/cache"
    ~case_name:(fun i -> "case" ^ string_of_int i)
    ~eval ()

let genome = Gp.Expr.Real (Gp.Expr.Rarg 0)

let test_cache_degrades_on_enospc () =
  with_cache_dir "enospc" @@ fun dir ->
  let sink, records = Gp.Telemetry.memory_sink () in
  Gp.Telemetry.set_sink (Some sink);
  Fun.protect
    ~finally:(fun () -> Gp.Telemetry.set_sink None)
    (fun () ->
      (* Mirror the evaluator's content addressing so cases can be placed
         in chosen shards: an entry's shard is a pure function of the
         digest of (scope, case name, canonical expression). *)
      let store = Driver.Shardstore.open_store dir in
      let key =
        Gp.Sexp.to_string Fuzz.Genome_gen.fs (Gp.Simplify.genome genome)
      in
      let shard case =
        Driver.Shardstore.shard_of store
          (Digest.to_hex
             (Digest.string
                (Printf.sprintf "chaos/cache\x00case%d\x00%s" case key)))
      in
      let rec pick p c = if p c then c else pick p (c + 1) in
      (* case 0 seeds its shard; [bad] lives in a different shard (the
         one the injected ENOSPC kills); [good] shares case 0's shard. *)
      let bad = pick (fun c -> shard c <> shard 0) 1 in
      let good = pick (fun c -> shard c = shard 0) 1 in
      let p =
        match C.plan_of_string "evaluator.cache_write:2=raise:enospc" with
        | Ok p -> p
        | Error e -> Alcotest.failf "spec: %s" e
      in
      C.arm p;
      Fun.protect ~finally:C.disarm (fun () ->
          let e = mk_cache_evaluator dir in
          Alcotest.(check bool) "healthy at birth" false
            (Driver.Evaluator.disk_degraded e);
          (* one shard write per batch here: the first lands in case 0's
             shard, the second hits the injected ENOSPC in [bad]'s *)
          let row0 =
            (Driver.Evaluator.evaluate_batch e [| genome |] ~cases:[ 0 ]).(0)
          in
          Alcotest.(check (array (float 0.0))) "first batch" [| 1.0 |] row0;
          let row =
            (Driver.Evaluator.evaluate_batch e [| genome |] ~cases:[ bad ]).(0)
          in
          Alcotest.(check (array (float 0.0)))
            "results unaffected by the dead shard"
            [| float_of_int (bad + 1) |] row;
          Alcotest.(check bool) "degraded to memo-only" true
            (Driver.Evaluator.disk_degraded e);
          Alcotest.(check int) "error counted once" 1
            (Gp.Telemetry.Counter.value
               (Gp.Telemetry.counter "evaluator.cache_write_errors"));
          (* one dead shard must not disable the other fifteen: a case
             addressed to case 0's shard still persists... *)
          let row_good =
            (Driver.Evaluator.evaluate_batch e [| genome |] ~cases:[ good ]).(0)
          in
          Alcotest.(check (array (float 0.0))) "healthy shard still serves"
            [| float_of_int (good + 1) |] row_good;
          Alcotest.(check int) "healthy shard kept persisting" 2
            (count_lines (Driver.Shardstore.shard_file store (shard 0)));
          (* ...while the degraded shard dropped its append silently *)
          Alcotest.(check int) "degraded shard persisted nothing" 0
            (count_lines (Driver.Shardstore.shard_file store (shard bad)));
          Alcotest.(check int) "still only one write error" 1
            (Gp.Telemetry.Counter.value
               (Gp.Telemetry.counter "evaluator.cache_write_errors"));
          ignore (records ());
          (* memoization still works in the degraded engine *)
          let row2 =
            (Driver.Evaluator.evaluate_batch e [| genome |]
               ~cases:[ 0; bad; good ]).(0)
          in
          Alcotest.(check (array (float 0.0))) "memo intact"
            [| 1.0; float_of_int (bad + 1); float_of_int (good + 1) |] row2))

let test_cache_survives_torn_append () =
  with_cache_dir "torn" @@ fun dir ->
  let p =
    match C.plan_of_string "evaluator.cache_write:1=torn" with
    | Ok p -> p
    | Error e -> Alcotest.failf "spec: %s" e
  in
  C.arm p;
  let row =
    Fun.protect ~finally:C.disarm (fun () ->
        let e = mk_cache_evaluator dir in
        (Driver.Evaluator.evaluate_batch e [| genome |] ~cases:[ 0; 1; 2 ]).(0))
  in
  Alcotest.(check (array (float 0.0))) "faulted run correct"
    [| 1.0; 2.0; 3.0 |] row;
  (* a fresh engine over the damaged cache skips the torn line, serves
     what survived, and recomputes the rest *)
  let recomputed = ref 0 in
  let e2 =
    mk_cache_evaluator
      ~eval:(fun _ case ->
        incr recomputed;
        float_of_int (case + 1))
      dir
  in
  let row2 =
    (Driver.Evaluator.evaluate_batch e2 [| genome |] ~cases:[ 0; 1; 2 ]).(0)
  in
  Alcotest.(check (array (float 0.0))) "reload bit-identical" row row2;
  Alcotest.(check bool)
    (Printf.sprintf "torn line recomputed (%d)" !recomputed)
    true
    (!recomputed >= 1 && !recomputed <= 3)

(* --- satellite: checkpoint integrity -------------------------------------- *)

let check_same_result name (a : Gp.Evolve.result) (b : Gp.Evolve.result) =
  Alcotest.(check string)
    (name ^ ": best genome")
    (Gp.Sexp.to_string Test_gp.fs a.Gp.Evolve.best)
    (Gp.Sexp.to_string Test_gp.fs b.Gp.Evolve.best);
  Alcotest.(check int64)
    (name ^ ": best fitness bits")
    (bits a.Gp.Evolve.best_fitness)
    (bits b.Gp.Evolve.best_fitness);
  Array.iter2
    (fun (ca, va) (cb, vb) ->
      Alcotest.(check string) (name ^ ": case") ca cb;
      Alcotest.(check int64) (name ^ ": case bits") (bits va) (bits vb))
    a.Gp.Evolve.per_case b.Gp.Evolve.per_case

let newest_checkpoints dir n =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".ckpt")
  |> List.sort (fun a b -> compare b a)
  |> List.filteri (fun i _ -> i < n)
  |> List.map (Filename.concat dir)

let test_damaged_checkpoints_resume () =
  with_dir "ckpt-damage" @@ fun dir ->
  let params = Gp.Params.tiny in
  let straight = Gp.Evolve.run ~params (Test_gp.synthetic_problem ()) in
  let first =
    Gp.Evolve.run ~params ~checkpoint_dir:dir (Test_gp.synthetic_problem ())
  in
  check_same_result "checkpointed = straight" straight first;
  (* damage the two newest checkpoints two different ways: truncate one
     (a crash mid-write) and bit-flip the other (rot under the digest) *)
  (match newest_checkpoints dir 2 with
  | [ newest; second ] ->
    let sz = (Unix.stat newest).Unix.st_size in
    let fd = Unix.openfile newest [ Unix.O_WRONLY ] 0o644 in
    Unix.ftruncate fd (sz / 2);
    Unix.close fd;
    let fd = Unix.openfile second [ Unix.O_WRONLY ] 0o644 in
    ignore (Unix.lseek fd 2 Unix.SEEK_SET);
    ignore (Unix.write fd (Bytes.of_string "\xff") 0 1);
    Unix.close fd
  | l -> Alcotest.failf "expected >= 2 checkpoints, found %d" (List.length l));
  let sink, _ = Gp.Telemetry.memory_sink () in
  Gp.Telemetry.set_sink (Some sink);
  Fun.protect
    ~finally:(fun () -> Gp.Telemetry.set_sink None)
    (fun () ->
      let resumed =
        Gp.Evolve.run ~params ~checkpoint_dir:dir
          (Test_gp.synthetic_problem ())
      in
      check_same_result "resumed over damage = straight" straight resumed;
      Alcotest.(check int) "both damaged files counted" 2
        (Gp.Telemetry.Counter.value
           (Gp.Telemetry.counter "evolve.checkpoints_skipped")))

(* --- the supervised domains pool (retires fork: keep these last) ---------- *)

let domains_pool ?timeout_s ?(retries = 0) ?(jobs = 2) () =
  Gp.Parmap.pool ~backend:`Domains ~jobs ?timeout_s ~retries ~backoff_s:0.01 ()

let test_domains_slow_times_out () =
  with_dir "dom-slow" @@ fun dir ->
  let plan t n = if t = 1 && n = 1 then Some (C.Slow 30.0) else None in
  let f = C.Ledger.wrap ~isolated:false ~dir ~plan (fun x -> x * 10) in
  let t0 = Unix.gettimeofday () in
  let outcomes, stats =
    Gp.Parmap.run_supervised (domains_pool ~timeout_s:0.3 ()) f
      (Array.init 4 Fun.id)
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  Alcotest.(check string) "cooperative deadline fired" "Timed_out"
    (outcome_label outcomes.(1));
  Array.iteri
    (fun i o ->
      if i <> 1 then
        match o with
        | Gp.Parmap.Ok v -> Alcotest.(check int) "neighbour value" (i * 10) v
        | o -> Alcotest.failf "task %d: %s" i (outcome_label o))
    outcomes;
  Alcotest.(check int) "one timeout" 1 stats.Gp.Parmap.timeouts;
  Alcotest.(check int) "no quarantine: the nap polled its token" 0
    stats.Gp.Parmap.quarantined;
  Alcotest.(check int) "single attempt" 1 (C.Ledger.attempts dir 1);
  Alcotest.(check bool)
    (Printf.sprintf "cut off within 2x the deadline (%.2fs)" elapsed)
    true (elapsed < 1.5)

let test_domains_slow_retry_recovers () =
  with_dir "dom-retry" @@ fun dir ->
  let plan t n = if t = 2 && n = 1 then Some (C.Slow 30.0) else None in
  let f = C.Ledger.wrap ~isolated:false ~dir ~plan (fun x -> x + 100) in
  let outcomes, stats =
    Gp.Parmap.run_supervised
      (domains_pool ~timeout_s:0.25 ~retries:2 ())
      f (Array.init 5 Fun.id)
  in
  Array.iteri
    (fun i o ->
      match o with
      | Gp.Parmap.Ok v -> Alcotest.(check int) "value" (i + 100) v
      | o -> Alcotest.failf "task %d: %s" i (outcome_label o))
    outcomes;
  Alcotest.(check int) "one timed-out attempt" 1 stats.Gp.Parmap.timeouts;
  Alcotest.(check int) "one retry" 1 stats.Gp.Parmap.retries;
  Alcotest.(check int) "task 2 took two attempts" 2 (C.Ledger.attempts dir 2);
  Alcotest.(check int) "task 0 took one attempt" 1 (C.Ledger.attempts dir 0)

let test_domains_raise_retries () =
  with_dir "dom-raise" @@ fun dir ->
  let plan _ n = if n = 1 then Some (C.Raise "flaky") else None in
  let f = C.Ledger.wrap ~isolated:false ~dir ~plan (fun x -> x * x) in
  let outcomes, stats =
    Gp.Parmap.run_supervised
      (domains_pool ~retries:1 ())
      f (Array.init 3 Fun.id)
  in
  Array.iteri
    (fun i o ->
      match o with
      | Gp.Parmap.Ok v -> Alcotest.(check int) "value" (i * i) v
      | o -> Alcotest.failf "task %d: %s" i (outcome_label o))
    outcomes;
  Alcotest.(check int) "three crashed attempts" 3 stats.Gp.Parmap.crashes;
  Alcotest.(check int) "three retries" 3 stats.Gp.Parmap.retries;
  Alcotest.(check int) "no timeouts" 0 stats.Gp.Parmap.timeouts

let test_domains_raise_exhausts () =
  let outcomes, stats =
    Gp.Parmap.run_supervised
      (domains_pool ~retries:1 ())
      (fun _ -> failwith "always")
      [| 0 |]
  in
  Alcotest.(check string) "gave up" "Gave_up" (outcome_label outcomes.(0));
  Alcotest.(check int) "both attempts crashed" 2 stats.Gp.Parmap.crashes;
  Alcotest.(check int) "one retry" 1 stats.Gp.Parmap.retries

(* A hanging task never reaches a safepoint: the supervisor must
   quarantine its worker, respawn the slot, and still finish every other
   task — at one job, completion is itself the proof of respawn. *)
let test_domains_hang_quarantined () =
  with_dir "dom-hang" @@ fun dir ->
  let plan t n = if t = 0 && n = 1 then Some C.Hang else None in
  let f = C.Ledger.wrap ~isolated:false ~dir ~plan (fun x -> x + 1) in
  let t0 = Unix.gettimeofday () in
  let outcomes, stats =
    Gp.Parmap.run_supervised
      (domains_pool ~jobs:1 ~timeout_s:0.2 ~retries:1 ())
      f (Array.init 3 Fun.id)
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  Array.iteri
    (fun i o ->
      match o with
      | Gp.Parmap.Ok v -> Alcotest.(check int) "value" (i + 1) v
      | o -> Alcotest.failf "task %d: %s" i (outcome_label o))
    outcomes;
  Alcotest.(check int) "one worker quarantined" 1 stats.Gp.Parmap.quarantined;
  Alcotest.(check int) "the hung attempt counts as a timeout" 1
    stats.Gp.Parmap.timeouts;
  Alcotest.(check int) "one retry" 1 stats.Gp.Parmap.retries;
  Alcotest.(check int) "hung task took two attempts" 2
    (C.Ledger.attempts dir 0);
  Alcotest.(check bool)
    (Printf.sprintf "hang cut off promptly (%.2fs)" elapsed)
    true (elapsed < 2.0)

let suite =
  [
    Alcotest.test_case "plan language round-trips" `Quick test_plan_round_trip;
    Alcotest.test_case "seeded plans deterministic and recoverable" `Quick
      test_seeded_plans_deterministic;
    Alcotest.test_case "fire: first match wins, counted" `Quick
      test_fire_matching;
    Alcotest.test_case "pool records ignored limits" `Quick
      test_pool_ignored_limits;
    Alcotest.test_case "chaos run bit-identical to clean run" `Slow
      test_chaos_vs_clean;
    Alcotest.test_case "cache degrades to memo-only on ENOSPC" `Quick
      test_cache_degrades_on_enospc;
    Alcotest.test_case "cache survives a torn append" `Quick
      test_cache_survives_torn_append;
    Alcotest.test_case "damaged checkpoints skipped, resume identical" `Quick
      test_damaged_checkpoints_resume;
    (* domains from here on: fork is retired for the rest of the run *)
    Alcotest.test_case "domains: slow task times out cooperatively" `Quick
      test_domains_slow_times_out;
    Alcotest.test_case "domains: slow first attempt recovers" `Quick
      test_domains_slow_retry_recovers;
    Alcotest.test_case "domains: raising attempts retried" `Quick
      test_domains_raise_retries;
    Alcotest.test_case "domains: persistent failure gives up" `Quick
      test_domains_raise_exhausts;
    Alcotest.test_case "domains: hang quarantined, slot respawned" `Quick
      test_domains_hang_quarantined;
  ]
