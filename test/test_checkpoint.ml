(* Checkpoint/resume tests: an evolution run killed mid-flight must
   resume from the newest valid checkpoint and finish bit-identically to
   an uninterrupted run with the same seed.  Interruption is simulated by
   an [on_generation] callback that raises — equivalent to the process
   dying between generations, since checkpoints are written after each
   completed generation. *)

exception Abort

let with_dir tag f =
  let dir = Gp.Chaos.Ledger.fresh_dir tag in
  Fun.protect ~finally:(fun () -> Gp.Chaos.Ledger.cleanup dir) (fun () -> f dir)

let params =
  { Gp.Params.tiny with Gp.Params.population_size = 20; generations = 6 }

let expr_of g = Gp.Sexp.to_string Test_gp.fs g

let check_same_result name (a : Gp.Evolve.result) (b : Gp.Evolve.result) =
  Alcotest.(check string)
    (name ^ ": best genome")
    (expr_of a.Gp.Evolve.best) (expr_of b.Gp.Evolve.best);
  Alcotest.(check (float 0.0))
    (name ^ ": best fitness")
    a.Gp.Evolve.best_fitness b.Gp.Evolve.best_fitness;
  Alcotest.(check (array (pair string (float 0.0))))
    (name ^ ": per-case") a.Gp.Evolve.per_case b.Gp.Evolve.per_case;
  Alcotest.(check int)
    (name ^ ": history length")
    (List.length a.Gp.Evolve.history)
    (List.length b.Gp.Evolve.history);
  List.iter2
    (fun (x : Gp.Evolve.generation_stats) (y : Gp.Evolve.generation_stats) ->
      Alcotest.(check int) (name ^ ": gen") x.Gp.Evolve.gen y.Gp.Evolve.gen;
      Alcotest.(check (float 0.0))
        (name ^ ": gen best")
        x.Gp.Evolve.best_fitness y.Gp.Evolve.best_fitness;
      Alcotest.(check (float 0.0))
        (name ^ ": gen mean")
        x.Gp.Evolve.mean_fitness y.Gp.Evolve.mean_fitness;
      Alcotest.(check (list int))
        (name ^ ": gen subset")
        x.Gp.Evolve.subset y.Gp.Evolve.subset;
      Alcotest.(check string)
        (name ^ ": gen expr")
        x.Gp.Evolve.best_expr y.Gp.Evolve.best_expr)
    a.Gp.Evolve.history b.Gp.Evolve.history

let abort_at gen (s : Gp.Evolve.generation_stats) =
  if s.Gp.Evolve.gen = gen then raise Abort

let test_interrupted_resume_identical () =
  with_dir "resume" (fun dir ->
      let straight = Gp.Evolve.run ~params (Test_gp.synthetic_problem ()) in
      (try
         ignore
           (Gp.Evolve.run ~params ~checkpoint_dir:dir
              ~on_generation:(abort_at 3)
              (Test_gp.synthetic_problem ()))
       with Abort -> ());
      Alcotest.(check bool) "checkpoints were written" true
        (Array.exists
           (fun f -> Filename.check_suffix f ".ckpt")
           (Sys.readdir dir));
      let resumed =
        Gp.Evolve.run ~params ~checkpoint_dir:dir (Test_gp.synthetic_problem ())
      in
      check_same_result "interrupted + resumed == uninterrupted" straight
        resumed)

(* Re-running over a directory whose run already finished skips every
   generation and just re-scores the final population. *)
let test_resume_after_complete () =
  with_dir "rerun" (fun dir ->
      let first =
        Gp.Evolve.run ~params ~checkpoint_dir:dir (Test_gp.synthetic_problem ())
      in
      let second =
        Gp.Evolve.run ~params ~checkpoint_dir:dir (Test_gp.synthetic_problem ())
      in
      check_same_result "re-run over finished checkpoints" first second;
      Alcotest.(check bool) "the re-run evaluated less" true
        (second.Gp.Evolve.evaluations <= first.Gp.Evolve.evaluations))

(* The loader walks newest-first: trashing the newest checkpoint costs
   at most one generation of recomputation, never the run. *)
let test_corrupt_checkpoint_skipped () =
  with_dir "corrupt" (fun dir ->
      let straight = Gp.Evolve.run ~params (Test_gp.synthetic_problem ()) in
      (try
         ignore
           (Gp.Evolve.run ~params ~checkpoint_dir:dir
              ~on_generation:(abort_at 4)
              (Test_gp.synthetic_problem ()))
       with Abort -> ());
      let newest =
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun f -> Filename.check_suffix f ".ckpt")
        |> List.sort (fun a b -> compare b a)
        |> List.hd
      in
      let oc = open_out (Filename.concat dir newest) in
      output_string oc "not a checkpoint";
      close_out oc;
      let resumed =
        Gp.Evolve.run ~params ~checkpoint_dir:dir (Test_gp.synthetic_problem ())
      in
      check_same_result "fell back past the corrupt file" straight resumed)

(* Checkpoints are fingerprinted over (params, n_cases, sort): a
   directory holding another configuration's files is ignored, and the
   run starts fresh instead of resuming into the wrong state. *)
let test_mismatched_config_starts_fresh () =
  with_dir "mismatch" (fun dir ->
      ignore
        (Gp.Evolve.run ~params ~checkpoint_dir:dir
           (Test_gp.synthetic_problem ()));
      let params' = { params with Gp.Params.population_size = 24 } in
      let fresh = Gp.Evolve.run ~params:params' (Test_gp.synthetic_problem ()) in
      let over =
        Gp.Evolve.run ~params:params' ~checkpoint_dir:dir
          (Test_gp.synthetic_problem ())
      in
      check_same_result "old-config checkpoints ignored" fresh over)

(* DSS state rides the checkpoint too: with >= 4 cases the driver picks
   per-generation subsets and updates per-case difficulty, all of which
   must resume exactly for the remaining subsets to match. *)
let test_dss_state_checkpointed () =
  let problem () =
    let eval g case =
      match g with
      | Gp.Expr.Bool _ -> 0.0
      | Gp.Expr.Real e ->
        let target = float_of_int (case + 1) in
        let err = ref 0.0 in
        for i = 0 to 7 do
          let x = float_of_int i and y = float_of_int (i mod 3) in
          let env = Test_gp.env_with ~x ~y () in
          err := !err +. Float.abs (Gp.Eval.real env e -. ((x *. y) +. target))
        done;
        1.0 /. (1.0 +. !err)
    in
    {
      (Test_gp.synthetic_problem_of eval) with
      Gp.Evolve.n_cases = 6;
      case_name = (fun i -> "case" ^ string_of_int i);
    }
  in
  with_dir "dss" (fun dir ->
      let straight = Gp.Evolve.run ~params (problem ()) in
      (try
         ignore
           (Gp.Evolve.run ~params ~checkpoint_dir:dir
              ~on_generation:(abort_at 3) (problem ()))
       with Abort -> ());
      let resumed = Gp.Evolve.run ~params ~checkpoint_dir:dir (problem ()) in
      check_same_result "dss run resumes identically" straight resumed)

(* End-to-end through the study driver: a specialization killed between
   generations resumes to the same evolved heuristic and speedups. *)
let test_study_checkpoint_resume () =
  let tiny =
    { Gp.Params.tiny with Gp.Params.population_size = 8; generations = 4 }
  in
  with_dir "study" (fun dir ->
      let straight =
        Driver.Study.specialize ~params:tiny Driver.Study.Hyperblock_study
          "codrle4"
      in
      (try
         ignore
           (Driver.Study.specialize ~params:tiny ~checkpoint_dir:dir
              ~on_generation:(abort_at 2) Driver.Study.Hyperblock_study
              "codrle4")
       with Abort -> ());
      let resumed =
        Driver.Study.specialize ~params:tiny ~checkpoint_dir:dir
          Driver.Study.Hyperblock_study "codrle4"
      in
      Alcotest.(check string) "best expr" straight.Driver.Study.best_expr
        resumed.Driver.Study.best_expr;
      Alcotest.(check (float 0.0)) "train speedup"
        straight.Driver.Study.train_speedup resumed.Driver.Study.train_speedup;
      Alcotest.(check (float 0.0)) "novel speedup"
        straight.Driver.Study.novel_speedup resumed.Driver.Study.novel_speedup)

let suite =
  [
    Alcotest.test_case "interrupted run resumes identically" `Quick
      test_interrupted_resume_identical;
    Alcotest.test_case "re-run after completion" `Quick
      test_resume_after_complete;
    Alcotest.test_case "corrupt newest checkpoint skipped" `Quick
      test_corrupt_checkpoint_skipped;
    Alcotest.test_case "mismatched config starts fresh" `Quick
      test_mismatched_config_starts_fresh;
    Alcotest.test_case "dss state checkpointed" `Quick
      test_dss_state_checkpointed;
    Alcotest.test_case "study-level checkpoint resume" `Slow
      test_study_checkpoint_resume;
  ]
