(* Tests for the MiniC frontend: parsing, typechecking, and end-to-end
   semantics of lowered programs via the interpreter. *)

let run_src ?(overrides = []) src : float list =
  let prog = Frontend.Minic.compile src in
  let layout = Profile.Layout.prepare prog in
  (Profile.Interp.run ~overrides layout).Profile.Interp.output

let check_output name src expected =
  Alcotest.(check (list (float 1e-6))) name expected (run_src src)

let test_arith_and_precedence () =
  check_output "precedence"
    {| int main() { emit(2 + 3 * 4); emit((2 + 3) * 4); emit(10 - 4 - 3);
         emit(17 % 5); emit(7 / 2); emit(1 << 4); emit(256 >> 3); return 0; } |}
    [ 14.0; 20.0; 3.0; 2.0; 3.0; 16.0; 32.0 ]

let test_comparisons_and_logic () =
  check_output "comparisons"
    {| int main() {
         emit(3 < 4); emit(4 <= 4); emit(5 > 6); emit(5 >= 6);
         emit(5 == 5); emit(5 != 5);
         emit(1 && 0); emit(1 || 0); emit(!3); emit(!0);
         emit(6 & 3); emit(6 | 3); emit(6 ^ 3);
         return 0; } |}
    [ 1.; 1.; 0.; 0.; 1.; 0.; 0.; 1.; 0.; 1.; 2.; 7.; 5. ]

let test_float_ops () =
  check_output "floats"
    {| int main() {
         float x = 1.5; float y = 2.0;
         emit(x + y); emit(x * y); emit(y / 4.0);
         emit(sqrt(16.0)); emit(fabs(0.0 - 3.5));
         emit(fmin(x, y)); emit(fmax(x, y));
         emit(int(2.9)); emit(float(3) * 0.5);
         return 0; } |}
    [ 3.5; 3.0; 0.5; 4.0; 3.5; 1.5; 2.0; 2.0; 1.5 ]

let test_control_flow () =
  check_output "loops and branches"
    {| int main() {
         int s = 0; int i;
         for (i = 0; i < 10; i = i + 1) {
           if (i % 2 == 0) { s = s + i; } else { s = s - 1; }
         }
         emit(s);
         int j = 0;
         while (j < 100) {
           j = j + 7;
           if (j > 50) { break; }
         }
         emit(j);
         int k; int c = 0;
         for (k = 0; k < 10; k = k + 1) {
           if (k % 3 != 0) { continue; }
           c = c + 1;
         }
         emit(c);
         return 0; } |}
    [ 15.0; 56.0; 4.0 ]

let test_functions_and_calls () =
  check_output "calls"
    {| int gcd_iter(int a, int b) {
         while (b != 0) { int t = a % b; a = b; b = t; }
         return a;
       }
       float mix(float x, int k) { return x * float(k); }
       void poke(int v) { emit(v * 2); }
       int main() {
         emit(gcd_iter(48, 36));
         emit(mix(2.5, 4));
         poke(21);
         return 0; } |}
    [ 12.0; 10.0; 42.0 ]

let test_arrays_and_globals () =
  check_output "arrays"
    {| global int a[8];
       global float w[4] = { 0.5, 1.5, 2.5, 3.5 };
       int main() {
         int i;
         for (i = 0; i < 8; i = i + 1) { a[i] = i * i; }
         emit(a[0] + a[7]);
         emit(w[0] + w[3]);
         a[a[2]] = 99;       /* data-dependent index */
         emit(a[4]);
         return 0; } |}
    [ 49.0; 4.0; 99.0 ]

let test_division_semantics () =
  (* Division / remainder by zero yield zero (documented IR semantics). *)
  check_output "div by zero"
    {| int main() {
         int z = 0;
         emit(7 / z); emit(7 % z);
         emit((0 - 7) / 2);       /* truncation toward zero */
         emit((0 - 7) % 2);
         float f = 0.0;
         emit(3.5 / f);
         return 0; } |}
    [ 0.0; 0.0; -3.0; -1.0; 0.0 ]

let test_dataset_overrides () =
  let out =
    run_src
      ~overrides:[ ("a", [| 5.0; 6.0; 7.0 |]) ]
      {| global int a[4] = { 1, 2, 3, 4 };
         int main() { emit(a[0] + a[1] + a[2] + a[3]); return 0; } |}
  in
  (* Overrides replace the prefix; the last element keeps its initializer. *)
  Alcotest.(check (list (float 0.0))) "override applied" [ 22.0 ] out

let expect_error name src =
  Alcotest.test_case name `Quick (fun () ->
      match Frontend.Minic.compile src with
      | exception Frontend.Minic.Compile_error _ -> ()
      | _ -> Alcotest.fail "expected a compile error")

let error_cases =
  [
    expect_error "unknown variable" {| int main() { emit(nope); return 0; } |};
    expect_error "unknown function" {| int main() { emit(f(1)); return 0; } |};
    expect_error "float to int assignment"
      {| int main() { int x = 1.5; emit(x); return 0; } |};
    expect_error "float condition"
      {| int main() { if (1.5) { emit(1); } return 0; } |};
    expect_error "float array index"
      {| global int a[4];
         int main() { emit(a[1.5]); return 0; } |};
    expect_error "arity mismatch"
      {| int f(int a, int b) { return a + b; }
         int main() { emit(f(1)); return 0; } |};
    expect_error "missing main" {| int helper() { return 1; } |};
    expect_error "recursion rejected"
      {| int fact(int n) { if (n <= 1) { return 1; } return n * fact(n - 1); }
         int main() { emit(fact(5)); return 0; } |};
    expect_error "break outside loop" {| int main() { break; return 0; } |};
    expect_error "redeclared with different type"
      {| int main() { int x = 1; float x = 2.0; return 0; } |};
    expect_error "unterminated comment" {| int main() { /* oops return 0; } |};
    expect_error "void in expression"
      {| void f() { emit(1); }
         int main() { emit(f()); return 0; } |};
  ]

let test_redeclare_same_type () =
  (* The C block-scope idiom: `int i;` in several loop bodies. *)
  check_output "local redeclaration"
    {| int main() {
         int k;
         for (k = 0; k < 2; k = k + 1) { int i = k * 10; emit(i); }
         for (k = 0; k < 2; k = k + 1) { int i = k + 100; emit(i); }
         return 0; } |}
    [ 0.0; 10.0; 100.0; 101.0 ]

let test_hazard_marking () =
  (* a[b[i]] must mark the outer access as a hazard; a[i] must not. *)
  let prog =
    Frontend.Minic.compile
      {| global int a[8];
         global int b[8];
         int main() {
           int i = 3;
           emit(a[i]);
           emit(a[b[i]]);
           return 0; } |}
  in
  let hazards = ref 0 and loads = ref 0 in
  List.iter
    (fun (f : Ir.Func.t) ->
      Ir.Func.iter_instrs f (fun _ (i : Ir.Instr.t) ->
          match i.Ir.Instr.kind with
          | Ir.Instr.Load (_, a) ->
            incr loads;
            if a.Ir.Instr.hazard then incr hazards
          | _ -> ()))
    prog.Ir.Func.funcs;
  Alcotest.(check int) "three loads" 3 !loads;
  Alcotest.(check int) "one hazardous load" 1 !hazards

let test_all_benchmarks_compile () =
  List.iter
    (fun (b : Benchmarks.Bench.t) ->
      match Frontend.Minic.compile b.Benchmarks.Bench.source with
      | p ->
        Alcotest.(check int)
          (b.Benchmarks.Bench.name ^ " validates")
          0
          (List.length (Ir.Validate.check_program p))
      | exception Frontend.Minic.Compile_error m ->
        Alcotest.fail (b.Benchmarks.Bench.name ^ ": " ^ m))
    Benchmarks.Registry.all

let suite =
  [
    Alcotest.test_case "arithmetic and precedence" `Quick
      test_arith_and_precedence;
    Alcotest.test_case "comparisons and logic" `Quick
      test_comparisons_and_logic;
    Alcotest.test_case "float operations" `Quick test_float_ops;
    Alcotest.test_case "control flow" `Quick test_control_flow;
    Alcotest.test_case "functions and calls" `Quick test_functions_and_calls;
    Alcotest.test_case "arrays and globals" `Quick test_arrays_and_globals;
    Alcotest.test_case "division semantics" `Quick test_division_semantics;
    Alcotest.test_case "dataset overrides" `Quick test_dataset_overrides;
    Alcotest.test_case "same-type local redeclaration" `Quick
      test_redeclare_same_type;
    Alcotest.test_case "hazard marking" `Quick test_hazard_marking;
    Alcotest.test_case "all benchmarks compile and validate" `Slow
      test_all_benchmarks_compile;
  ]
  @ error_cases
