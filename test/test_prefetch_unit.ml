(* Focused unit tests for the prefetching analysis: induction variables,
   affine strides, constant-bound trip estimation, and insertion
   mechanics. *)

let candidates_of src =
  let prog = Frontend.Minic.compile src in
  Opt.Pipeline.run ~config:Opt.Pipeline.no_unroll prog;
  (prog, Prefetch.Analysis.candidates (Ir.Func.find_func prog "main"))

let test_unit_stride () =
  let _, cands =
    candidates_of
      {| global float v[8192];
         int main() {
           int i; float s = 0.0;
           for (i = 0; i < 8192; i = i + 1) { s = s + v[i]; }
           emit(s);
           return 0; } |}
  in
  match cands with
  | [ c ] ->
    Alcotest.(check (option int)) "stride 1" (Some 1) c.Prefetch.Analysis.stride;
    Alcotest.(check (option string)) "array v" (Some "v")
      c.Prefetch.Analysis.array;
    (match c.Prefetch.Analysis.trip_estimate with
    | Some t -> Alcotest.(check (float 1.0)) "trips ~8192" 8192.0 t
    | None -> Alcotest.fail "trip count should be known")
  | l -> Alcotest.failf "expected one candidate, got %d" (List.length l)

let test_strided_and_offset () =
  let _, cands =
    candidates_of
      {| global float m[8192];
         int main() {
           int i; float s = 0.0;
           for (i = 1; i < 60; i = i + 1) {
             s = s + m[i * 128 + 7] + m[i * 128 - 1];
           }
           emit(s);
           return 0; } |}
  in
  Alcotest.(check int) "two candidates" 2 (List.length cands);
  List.iter
    (fun (c : Prefetch.Analysis.candidate) ->
      Alcotest.(check (option int)) "stride 128" (Some 128)
        c.Prefetch.Analysis.stride)
    cands

let test_row_major_inner_stride () =
  let _, cands =
    candidates_of
      {| global float g[4096];
         int main() {
           int i; int j; float s = 0.0;
           for (i = 0; i < 64; i = i + 1) {
             for (j = 0; j < 64; j = j + 1) {
               s = s + g[i * 64 + j];
             }
           }
           emit(s);
           return 0; } |}
  in
  (* The load is analyzed in its innermost loop (over j): stride 1. *)
  Alcotest.(check bool) "unit stride in inner loop" true
    (List.exists
       (fun (c : Prefetch.Analysis.candidate) ->
         c.Prefetch.Analysis.stride = Some 1)
       cands)

let test_down_counting_loop () =
  let _, cands =
    candidates_of
      {| global float v[2048];
         int main() {
           int i; float s = 0.0;
           for (i = 2047; i >= 0; i = i - 1) { s = s + v[i]; }
           emit(s);
           return 0; } |}
  in
  Alcotest.(check bool) "negative stride found" true
    (List.exists
       (fun (c : Prefetch.Analysis.candidate) ->
         c.Prefetch.Analysis.stride = Some (-1))
       cands)

let test_indirect_access_has_no_stride () =
  let _, cands =
    candidates_of
      {| global int idx[1024];
         global float v[1024];
         int main() {
           int i; float s = 0.0;
           for (i = 0; i < 1024; i = i + 1) { s = s + v[idx[i]]; }
           emit(s);
           return 0; } |}
  in
  (* idx[i] is affine; v[idx[i]] is not. *)
  let v_cand =
    List.find_opt
      (fun (c : Prefetch.Analysis.candidate) ->
        c.Prefetch.Analysis.array = Some "v")
      cands
  in
  match v_cand with
  | Some c ->
    Alcotest.(check (option int)) "gather has no stride" None
      c.Prefetch.Analysis.stride
  | None -> Alcotest.fail "v load should be a candidate"

let test_insertion_adds_prefetch_instrs () =
  let prog, _ =
    candidates_of
      {| global float v[8192];
         int main() {
           int i; float s = 0.0;
           for (i = 0; i < 8192; i = i + 1) { s = s + v[i]; }
           emit(s);
           return 0; } |}
  in
  let stats = Prefetch.Insert.run ~decision:(fun _ -> true) prog in
  Alcotest.(check int) "one insertion" 1 stats.Prefetch.Insert.inserted;
  let prefetches = ref 0 in
  Ir.Func.iter_instrs (Ir.Func.find_func prog "main") (fun _ i ->
      match i.Ir.Instr.kind with
      | Ir.Instr.Prefetch _ -> incr prefetches
      | _ -> ());
  Alcotest.(check int) "prefetch instruction present" 1 !prefetches;
  Alcotest.(check int) "program still valid" 0
    (List.length (Ir.Validate.check_program prog))

let test_insertion_distance () =
  (* The inserted prefetch targets stride * prefetch_iters words ahead. *)
  let prog, _ =
    candidates_of
      {| global float v[8192];
         int main() {
           int i; float s = 0.0;
           for (i = 0; i < 8192; i = i + 1) { s = s + v[i]; }
           emit(s);
           return 0; } |}
  in
  ignore
    (Prefetch.Insert.run
       ~config:{ Prefetch.Insert.prefetch_iters = 6 }
       ~decision:(fun _ -> true) prog);
  let found = ref false in
  Ir.Func.iter_instrs (Ir.Func.find_func prog "main") (fun _ i ->
      match i.Ir.Instr.kind with
      | Ir.Instr.Ibin (Ir.Types.Add, _, _, Ir.Types.Imm 6) -> found := true
      | _ -> ());
  Alcotest.(check bool) "offset 6 = stride 1 * 6 iterations" true !found

let test_prefetch_improves_streaming () =
  (* End-to-end: on a long unit-stride stream larger than L3, a single
     prefetched stream must not pay more than it saves — and under the
     deliberately primitive memory-queue model (see DESIGN.md) it must
     also not beat the no-prefetch build by more than the raw stall
     total. *)
  let b_like_src =
    {| global float v[32768];
       int main() {
         int i; float s = 0.0;
         for (i = 0; i < 32768; i = i + 1) { s = s + v[i]; }
         emit(s);
         return 0; } |}
  in
  let config = Machine.Config.itanium1 in
  let run_with decision =
    let prog = Frontend.Minic.compile b_like_src in
    Opt.Pipeline.run ~config:Opt.Pipeline.no_unroll prog;
    ignore (Prefetch.Insert.run ~decision prog);
    let lens = Sched.List_sched.schedule_program ~config prog in
    let layout = Profile.Layout.prepare prog in
    let sc =
      Array.map (fun (f, l) -> Hashtbl.find lens (f, l))
        layout.Profile.Layout.block_name
    in
    (Machine.Simulate.run ~config ~schedule_cycles:sc layout).Machine.Simulate.cycles
  in
  let off = run_with (fun _ -> false) in
  let on = run_with (fun _ -> true) in
  Alcotest.(check bool)
    (Printf.sprintf "single-stream prefetch within +/-10%% (%.0f vs %.0f)" on
       off)
    true
    (Float.abs (on -. off) /. off < 0.10)

let suite =
  [
    Alcotest.test_case "unit stride" `Quick test_unit_stride;
    Alcotest.test_case "strided with offsets" `Quick test_strided_and_offset;
    Alcotest.test_case "row-major inner stride" `Quick
      test_row_major_inner_stride;
    Alcotest.test_case "down-counting loop" `Quick test_down_counting_loop;
    Alcotest.test_case "indirect gather has no stride" `Quick
      test_indirect_access_has_no_stride;
    Alcotest.test_case "insertion mechanics" `Quick
      test_insertion_adds_prefetch_instrs;
    Alcotest.test_case "insertion distance" `Quick test_insertion_distance;
    Alcotest.test_case "prefetch helps a single stream" `Quick
      test_prefetch_improves_streaming;
  ]
