(* Tests for the scalar optimization pipeline: unit behaviour of each pass
   and semantics preservation over the benchmark suite. *)

let compile src = Frontend.Minic.compile src

let outputs prog overrides =
  let layout = Profile.Layout.prepare prog in
  (Profile.Interp.run ~overrides layout).Profile.Interp.output

(* A small but branchy program exercised by several pass tests. *)
let sample_src =
  {| global int a[16];
     int main() {
       int i;
       for (i = 0; i < 16; i = i + 1) { a[i] = (i * 7 + 3) % 16; }
       int s = 0;
       for (i = 0; i < 16; i = i + 1) {
         int v = a[i] * 2 + 0;         /* foldable */
         int dead = v * 31;            /* dead if s doesn't use it */
         if (v > 8) { s = s + v; } else { s = s - 1; }
       }
       emit(s);
       return 0; } |}

let test_constfold_units () =
  let fold k = Opt.Constfold.fold_kind k in
  (match fold (Ir.Instr.Ibin (Ir.Types.Add, 1, Ir.Types.Imm 2, Ir.Types.Imm 3)) with
  | Ir.Instr.Mov (1, Ir.Types.Imm 5) -> ()
  | _ -> Alcotest.fail "2+3 should fold to 5");
  (match fold (Ir.Instr.Ibin (Ir.Types.Div, 1, Ir.Types.Imm 7, Ir.Types.Imm 0)) with
  | Ir.Instr.Mov (1, Ir.Types.Imm 0) -> ()
  | _ -> Alcotest.fail "7/0 should fold to 0 (interpreter semantics)");
  (match fold (Ir.Instr.Icmp (Ir.Types.Clt, 1, Ir.Types.Imm 2, Ir.Types.Imm 3)) with
  | Ir.Instr.Mov (1, Ir.Types.Imm 1) -> ()
  | _ -> Alcotest.fail "2<3 should fold to 1");
  (match fold (Ir.Instr.Ibin (Ir.Types.Shl, 1, Ir.Types.Imm 1, Ir.Types.Imm 5)) with
  | Ir.Instr.Mov (1, Ir.Types.Imm 32) -> ()
  | _ -> Alcotest.fail "1<<5 should fold to 32");
  (* Algebraic identities. *)
  (match
     Opt.Constfold.simplify_kind
       (Ir.Instr.Ibin (Ir.Types.Mul, 1, Ir.Types.Reg 2, Ir.Types.Imm 1))
   with
  | Ir.Instr.Mov (1, Ir.Types.Reg 2) -> ()
  | _ -> Alcotest.fail "x*1 should simplify to x");
  match
    Opt.Constfold.simplify_kind
      (Ir.Instr.Ibin (Ir.Types.Mul, 1, Ir.Types.Reg 2, Ir.Types.Imm 0))
  with
  | Ir.Instr.Mov (1, Ir.Types.Imm 0) -> ()
  | _ -> Alcotest.fail "x*0 should simplify to 0"

let test_dce_removes_dead () =
  let prog = compile sample_src in
  let count_instrs p =
    List.fold_left (fun acc f -> acc + Ir.Func.instr_count f) 0 p.Ir.Func.funcs
  in
  let before_out = outputs prog [] in
  let before = count_instrs prog in
  Opt.Constfold.run prog;
  Opt.Copyprop.run prog;
  Opt.Dce.run prog;
  let after = count_instrs prog in
  Alcotest.(check bool)
    (Printf.sprintf "instructions removed (%d -> %d)" before after)
    true (after < before);
  Alcotest.(check (list (float 0.0))) "semantics preserved" before_out
    (outputs prog [])

let test_simplify_cfg_merges () =
  let prog = compile sample_src in
  let count_blocks p =
    List.fold_left
      (fun acc (f : Ir.Func.t) -> acc + List.length f.Ir.Func.blocks)
      0 p.Ir.Func.funcs
  in
  let before_out = outputs prog [] in
  let before = count_blocks prog in
  Opt.Simplify_cfg.run prog;
  Alcotest.(check bool) "blocks merged" true (count_blocks prog < before);
  Alcotest.(check (list (float 0.0))) "semantics preserved" before_out
    (outputs prog [])

let test_unroll_duplicates_loops () =
  let prog = compile sample_src in
  let before_out = outputs prog [] in
  let f = Ir.Func.find_func prog "main" in
  let before = List.length f.Ir.Func.blocks in
  Opt.Unroll.run prog;
  Alcotest.(check bool) "blocks duplicated" true
    (List.length f.Ir.Func.blocks > before);
  Alcotest.(check (list (float 0.0))) "semantics preserved" before_out
    (outputs prog []);
  Alcotest.(check int) "still valid" 0
    (List.length (Ir.Validate.check_program prog))

let test_unroll_factor_4 () =
  let prog = compile sample_src in
  let before_out = outputs prog [] in
  Opt.Unroll.run
    ~config:{ Opt.Unroll.factor = 4; max_blocks = 8; max_instrs = 64 }
    prog;
  Alcotest.(check (list (float 0.0))) "semantics preserved at factor 4"
    before_out (outputs prog [])

(* Non-divisible trip counts are the classic unrolling bug. *)
let test_unroll_odd_trip_count () =
  let src =
    {| int main() {
         int s = 0; int i;
         for (i = 0; i < 7; i = i + 1) { s = s + i * i; }
         emit(s);
         return 0; } |}
  in
  let prog = compile src in
  let before = outputs prog [] in
  Opt.Unroll.run prog;
  Alcotest.(check (list (float 0.0))) "odd trip count" before (outputs prog [])

let test_copyprop_rewrites () =
  (* After r2 = mov r1, uses of r2 read r1 until either is clobbered. *)
  let b =
    {
      Ir.Func.blabel = "b";
      instrs =
        [
          Ir.Instr.make ~id:0 (Ir.Instr.Mov (2, Ir.Types.Reg 1));
          Ir.Instr.make ~id:1
            (Ir.Instr.Ibin (Ir.Types.Add, 3, Ir.Types.Reg 2, Ir.Types.Reg 2));
          Ir.Instr.make ~id:2 (Ir.Instr.Mov (1, Ir.Types.Imm 9));
          (* r1 clobbered: r2's copy relation is dead now. *)
          Ir.Instr.make ~id:3
            (Ir.Instr.Ibin (Ir.Types.Add, 4, Ir.Types.Reg 2, Ir.Types.Imm 0));
        ];
      term = Ir.Func.Ret None;
    }
  in
  Opt.Copyprop.run_block b;
  (match (List.nth b.Ir.Func.instrs 1).Ir.Instr.kind with
  | Ir.Instr.Ibin (Ir.Types.Add, 3, Ir.Types.Reg 1, Ir.Types.Reg 1) -> ()
  | k -> Alcotest.failf "expected propagated add, got %a" Ir.Instr.pp_kind k);
  match (List.nth b.Ir.Func.instrs 3).Ir.Instr.kind with
  | Ir.Instr.Ibin (Ir.Types.Add, 4, Ir.Types.Reg 2, Ir.Types.Imm 0) -> ()
  | k ->
    Alcotest.failf "copy must be killed by clobber of source, got %a"
      Ir.Instr.pp_kind k

let test_inline_small_functions () =
  let src =
    {| global int out[4];
       int clampit(int v) {
         if (v > 9) { return 9; }
         if (v < 0) { return 0; }
         return v;
       }
       int twice(int v) { return clampit(v) * 2; }
       int main() {
         int i; int s = 0;
         for (i = 0 - 5; i < 15; i = i + 1) { s = s + twice(i); }
         emit(s);
         return 0; } |}
  in
  let reference = compile src in
  let want = outputs reference [] in
  let prog = compile src in
  let inlined = Opt.Inline.run prog in
  Alcotest.(check bool)
    (Printf.sprintf "sites inlined (%d)" inlined)
    true (inlined >= 2);
  Alcotest.(check int) "valid after inlining" 0
    (List.length (Ir.Validate.check_program prog));
  Alcotest.(check (list (float 0.0))) "semantics preserved" want (outputs prog []);
  (* No calls remain in main. *)
  let calls = ref 0 in
  Ir.Func.iter_instrs (Ir.Func.find_func prog "main") (fun _ i ->
      if Ir.Instr.is_call i.Ir.Instr.kind then incr calls);
  Alcotest.(check int) "main is call-free" 0 !calls

let test_inline_respects_size_limit () =
  let src =
    {| global int big[64];
       int huge(int v) {
         int i; int s = v;
         for (i = 0; i < 64; i = i + 1) { s = s + big[i] * i + s / 3 - i; }
         return s;
       }
       int main() { emit(huge(3)); return 0; } |}
  in
  let prog = compile src in
  let inlined =
    Opt.Inline.run
      ~config:{ Opt.Inline.default_config with Opt.Inline.max_callee_instrs = 10 }
      prog
  in
  Alcotest.(check int) "oversized callee kept as a call" 0 inlined

let test_inline_void_functions () =
  let src =
    {| global int log_[64];
       void log_it(int v) { log_[v % 64] = v; emit(v); }
       int main() {
         int i;
         for (i = 0; i < 5; i = i + 1) { log_it(i * 7); }
         emit(log_[0]);
         return 0; } |}
  in
  let reference = compile src in
  let want = outputs reference [] in
  let prog = compile src in
  let inlined = Opt.Inline.run prog in
  Alcotest.(check bool) "void call inlined" true (inlined >= 1);
  Alcotest.(check (list (float 0.0))) "emit order preserved" want
    (outputs prog [])

let test_peephole_rewrites () =
  (match
     Opt.Peephole.rewrite
       (Ir.Instr.Ibin (Ir.Types.Mul, 1, Ir.Types.Reg 2, Ir.Types.Imm 8))
   with
  | Ir.Instr.Ibin (Ir.Types.Shl, 1, Ir.Types.Reg 2, Ir.Types.Imm 3) -> ()
  | k -> Alcotest.failf "x*8 should become x<<3, got %a" Ir.Instr.pp_kind k);
  (match
     Opt.Peephole.rewrite
       (Ir.Instr.Ibin (Ir.Types.Mul, 1, Ir.Types.Reg 2, Ir.Types.Imm 12))
   with
  | Ir.Instr.Ibin (Ir.Types.Mul, _, _, _) -> ()
  | k -> Alcotest.failf "x*12 must stay a multiply, got %a" Ir.Instr.pp_kind k);
  (match
     Opt.Peephole.rewrite
       (Ir.Instr.Ibin (Ir.Types.Add, 1, Ir.Types.Reg 2, Ir.Types.Reg 2))
   with
  | Ir.Instr.Ibin (Ir.Types.Shl, 1, Ir.Types.Reg 2, Ir.Types.Imm 1) -> ()
  | k -> Alcotest.failf "x+x should become x<<1, got %a" Ir.Instr.pp_kind k);
  (* Division must never be strength-reduced (negative truncation). *)
  match
    Opt.Peephole.rewrite
      (Ir.Instr.Ibin (Ir.Types.Div, 1, Ir.Types.Reg 2, Ir.Types.Imm 4))
  with
  | Ir.Instr.Ibin (Ir.Types.Div, _, _, _) -> ()
  | k -> Alcotest.failf "x/4 must stay a divide, got %a" Ir.Instr.pp_kind k

let test_peephole_log2 () =
  Alcotest.(check (option int)) "log2 8" (Some 3) (Opt.Peephole.log2_exact 8);
  Alcotest.(check (option int)) "log2 1" (Some 0) (Opt.Peephole.log2_exact 1);
  Alcotest.(check (option int)) "log2 12" None (Opt.Peephole.log2_exact 12);
  Alcotest.(check (option int)) "log2 0" None (Opt.Peephole.log2_exact 0);
  Alcotest.(check (option int)) "log2 negative" None
    (Opt.Peephole.log2_exact (-8))

let test_globprop_across_blocks () =
  (* dim = 128 in the entry feeds a loop bound in another block; after
     global propagation + folding, the bound becomes an immediate. *)
  let src =
    {| global int a[200];
       int main() {
         int dim = 128;
         int i; int s = 0;
         for (i = 0; i < dim - 1; i = i + 1) { s = s + a[i]; }
         emit(s);
         return 0; } |}
  in
  let prog = compile src in
  let want = outputs prog [] in
  (* Two rounds: the first turns [dim - 1] into [mov 127], the second
     pushes 127 into the comparison. *)
  Opt.Globprop.run prog;
  Opt.Constfold.run prog;
  Opt.Globprop.run prog;
  Alcotest.(check (list (float 0.0))) "semantics preserved" want
    (outputs prog []);
  (* Some use of the literal 128 (or the folded 127) must now appear as an
     immediate operand in the loop header's comparison. *)
  let found = ref false in
  Ir.Func.iter_instrs (Ir.Func.find_func prog "main") (fun _ i ->
      match i.Ir.Instr.kind with
      | Ir.Instr.Icmp (Ir.Types.Clt, _, _, Ir.Types.Imm 127)
      | Ir.Instr.Ibin (Ir.Types.Sub, _, Ir.Types.Imm 128, _) ->
        found := true
      | Ir.Instr.Ibin (Ir.Types.Sub, _, _, _) -> ()
      | _ -> ());
  Alcotest.(check bool) "bound propagated to an immediate" true !found

(* The full pipeline preserves the output of every benchmark. *)
let test_pipeline_preserves_benchmarks () =
  List.iter
    (fun (b : Benchmarks.Bench.t) ->
      let reference = compile b.Benchmarks.Bench.source in
      let before = outputs reference b.Benchmarks.Bench.train in
      let optimized = compile b.Benchmarks.Bench.source in
      Opt.Pipeline.run optimized;
      Alcotest.(check (list (float 0.0)))
        (b.Benchmarks.Bench.name ^ " output preserved")
        before
        (outputs optimized b.Benchmarks.Bench.train);
      Alcotest.(check int)
        (b.Benchmarks.Bench.name ^ " still valid")
        0
        (List.length (Ir.Validate.check_program optimized)))
    Benchmarks.Registry.all

let suite =
  [
    Alcotest.test_case "constant folding units" `Quick test_constfold_units;
    Alcotest.test_case "dce removes dead code" `Quick test_dce_removes_dead;
    Alcotest.test_case "cfg simplification merges blocks" `Quick
      test_simplify_cfg_merges;
    Alcotest.test_case "unrolling duplicates loops" `Quick
      test_unroll_duplicates_loops;
    Alcotest.test_case "unrolling by 4" `Quick test_unroll_factor_4;
    Alcotest.test_case "unrolling odd trip counts" `Quick
      test_unroll_odd_trip_count;
    Alcotest.test_case "copy propagation" `Quick test_copyprop_rewrites;
    Alcotest.test_case "inline small functions" `Quick
      test_inline_small_functions;
    Alcotest.test_case "inline size limit" `Quick
      test_inline_respects_size_limit;
    Alcotest.test_case "inline void functions" `Quick
      test_inline_void_functions;
    Alcotest.test_case "peephole rewrites" `Quick test_peephole_rewrites;
    Alcotest.test_case "peephole log2" `Quick test_peephole_log2;
    Alcotest.test_case "global constant propagation" `Quick
      test_globprop_across_blocks;
    Alcotest.test_case "pipeline preserves all benchmarks" `Slow
      test_pipeline_preserves_benchmarks;
  ]
