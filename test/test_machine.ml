(* Tests for the machine model: cache hierarchy, branch predictor and the
   trace-driven simulator. *)

let cfg = Machine.Config.table3

(* --- Cache ----------------------------------------------------------------- *)

let test_cache_cold_miss_then_hit () =
  let c = Machine.Cache.create cfg in
  let first = Machine.Cache.load c 0 in
  Alcotest.(check int) "cold miss pays memory latency"
    cfg.Machine.Config.memory_extra_latency first;
  Alcotest.(check int) "second access hits L1" 0 (Machine.Cache.load c 0);
  (* Same cache line: free. *)
  Alcotest.(check int) "same line hits" 0 (Machine.Cache.load c 3)

let test_cache_line_granularity () =
  let c = Machine.Cache.create cfg in
  ignore (Machine.Cache.load c 0);
  let line = cfg.Machine.Config.l1.Machine.Config.line_words in
  Alcotest.(check bool) "next line misses" true
    (Machine.Cache.load c line > 0)

let test_cache_l2_hit_after_l1_eviction () =
  let c = Machine.Cache.create cfg in
  let l1 = cfg.Machine.Config.l1 in
  let sets = l1.Machine.Config.size_words
             / (l1.Machine.Config.line_words * l1.Machine.Config.assoc) in
  let way_stride = sets * l1.Machine.Config.line_words in
  (* Touch assoc+1 lines mapping to the same L1 set: the first is evicted
     from L1 but still resident in L2. *)
  for i = 0 to l1.Machine.Config.assoc do
    ignore (Machine.Cache.load c (i * way_stride))
  done;
  let stall = Machine.Cache.load c 0 in
  Alcotest.(check int) "evicted line found in L2"
    cfg.Machine.Config.l2.Machine.Config.extra_latency stall

let test_cache_lru () =
  let c = Machine.Cache.create cfg in
  let l1 = cfg.Machine.Config.l1 in
  let sets = l1.Machine.Config.size_words
             / (l1.Machine.Config.line_words * l1.Machine.Config.assoc) in
  let way_stride = sets * l1.Machine.Config.line_words in
  (* Fill all ways of set 0, re-touch line 0 to make it MRU, then load one
     more conflicting line: line 0 must survive. *)
  for i = 0 to l1.Machine.Config.assoc - 1 do
    ignore (Machine.Cache.load c (i * way_stride))
  done;
  ignore (Machine.Cache.load c 0);
  ignore (Machine.Cache.load c (l1.Machine.Config.assoc * way_stride));
  Alcotest.(check int) "MRU line survived" 0 (Machine.Cache.load c 0)

let test_prefetch_hides_latency () =
  let c = Machine.Cache.create cfg in
  ignore (Machine.Cache.prefetch c 64);
  Alcotest.(check int) "prefetched line hits" 0 (Machine.Cache.load c 64)

let test_prefetch_queue_saturates () =
  let c = Machine.Cache.create cfg in
  (* Issue more prefetches (to distinct lines) than the queue can hold,
     with no intervening demand misses to drain it. *)
  let costs =
    List.init (cfg.Machine.Config.prefetch_queue + 3) (fun i ->
        Machine.Cache.prefetch c (i * 64))
  in
  let dropped = List.length (List.filter (fun s -> s > 0) costs) in
  Alcotest.(check int) "overflow prefetches dropped with backpressure" 3
    dropped;
  let stats = Machine.Cache.stats c in
  Alcotest.(check int) "drop statistic" 3
    stats.Machine.Cache.prefetches_dropped

let test_redundant_prefetch_free () =
  let c = Machine.Cache.create cfg in
  ignore (Machine.Cache.load c 0);
  (* Prefetching a resident line consumes no queue entry. *)
  for _ = 1 to 50 do
    Alcotest.(check int) "redundant prefetch is free" 0
      (Machine.Cache.prefetch c 0)
  done;
  Alcotest.(check int) "no drops from redundant prefetches" 0
    (Machine.Cache.stats c).Machine.Cache.prefetches_dropped

(* --- Branch predictor ------------------------------------------------------ *)

let test_predictor_learns_bias () =
  let p = Profile.Predictor.create ~n_sites:1 in
  let mispredicts = ref 0 in
  for _ = 1 to 100 do
    if Profile.Predictor.observe p ~site:0 ~taken:true then incr mispredicts
  done;
  Alcotest.(check bool)
    (Printf.sprintf "always-taken learned (%d mispredicts)" !mispredicts)
    true (!mispredicts <= 1)

let test_predictor_2bit_hysteresis () =
  let p = Profile.Predictor.create ~n_sites:1 in
  (* Saturate taken. *)
  for _ = 1 to 10 do
    ignore (Profile.Predictor.observe p ~site:0 ~taken:true)
  done;
  (* One not-taken blip must not flip the prediction (2-bit hysteresis). *)
  ignore (Profile.Predictor.observe p ~site:0 ~taken:false);
  Alcotest.(check bool) "still predicts taken after one blip" false
    (Profile.Predictor.observe p ~site:0 ~taken:true)

let test_predictor_alternating_is_hard () =
  let p = Profile.Predictor.create ~n_sites:1 in
  let mispredicts = ref 0 in
  for i = 1 to 100 do
    if Profile.Predictor.observe p ~site:0 ~taken:(i mod 2 = 0) then
      incr mispredicts
  done;
  Alcotest.(check bool)
    (Printf.sprintf "alternating defeats 2-bit counters (%d/100)" !mispredicts)
    true
    (!mispredicts >= 40)

(* --- Simulator ------------------------------------------------------------- *)

let simulate_src ?(config = cfg) src =
  let prog = Frontend.Minic.compile src in
  let lens = Sched.List_sched.schedule_program ~config prog in
  let layout = Profile.Layout.prepare prog in
  let sc =
    Array.map
      (fun (f, l) -> Hashtbl.find lens (f, l))
      layout.Profile.Layout.block_name
  in
  Machine.Simulate.run ~config ~schedule_cycles:sc layout

let test_simulate_deterministic () =
  let src =
    {| global int a[64];
       int main() {
         int i; int s = 0;
         for (i = 0; i < 64; i = i + 1) { a[i] = i; s = s + a[i / 2]; }
         emit(s);
         return 0; } |}
  in
  let r1 = simulate_src src and r2 = simulate_src src in
  Alcotest.(check (float 0.0)) "cycles deterministic"
    r1.Machine.Simulate.cycles r2.Machine.Simulate.cycles;
  Alcotest.(check int) "checksum deterministic" r1.Machine.Simulate.checksum
    r2.Machine.Simulate.checksum

let test_simulate_charges_mispredicts () =
  (* A data-dependent unpredictable branch must cost more than a
     perfectly biased one, all else equal. *)
  let template pattern =
    Printf.sprintf
      {| global int a[256];
         int main() {
           int i; int s = 0;
           for (i = 0; i < 256; i = i + 1) { a[i] = %s; }
           for (i = 0; i < 256; i = i + 1) {
             if (a[i]) { s = s + 3; } else { s = s - 1; }
           }
           emit(s);
           return 0; } |}
      pattern
  in
  (* Hyperblock formation is not applied here, so the branch survives. *)
  let biased = simulate_src (template "1") in
  let alternating = simulate_src (template "i % 2") in
  Alcotest.(check bool)
    (Printf.sprintf "alternating (%.0f) slower than biased (%.0f)"
       alternating.Machine.Simulate.cycles biased.Machine.Simulate.cycles)
    true
    (alternating.Machine.Simulate.cycles
    > biased.Machine.Simulate.cycles +. 500.0)

let test_simulate_charges_cache_misses () =
  let template stride n =
    Printf.sprintf
      {| global float big[65536];
         int main() {
           int i; float s = 0.0;
           for (i = 0; i < %d; i = i + 1) { s = s + big[i * %d %% 65536]; }
           emit(s);
           return 0; } |}
      n stride
  in
  let sequential = simulate_src (template 1 4096) in
  let strided = simulate_src (template 257 4096) in
  Alcotest.(check bool)
    (Printf.sprintf "strided (%.0f) slower than sequential (%.0f)"
       strided.Machine.Simulate.cycles sequential.Machine.Simulate.cycles)
    true
    (strided.Machine.Simulate.cycles > sequential.Machine.Simulate.cycles);
  Alcotest.(check bool) "strided misses more" true
    (strided.Machine.Simulate.cache.Machine.Cache.memory_accesses
     + strided.Machine.Simulate.cache.Machine.Cache.l3_hits
    > sequential.Machine.Simulate.cache.Machine.Cache.memory_accesses
      + sequential.Machine.Simulate.cache.Machine.Cache.l3_hits)

let test_simulate_noise () =
  let src = {| int main() { emit(1); return 0; } |} in
  let prog = Frontend.Minic.compile src in
  let lens = Sched.List_sched.schedule_program ~config:cfg prog in
  let layout = Profile.Layout.prepare prog in
  let sc =
    Array.map (fun (f, l) -> Hashtbl.find lens (f, l))
      layout.Profile.Layout.block_name
  in
  let base =
    Machine.Simulate.run ~config:cfg ~schedule_cycles:sc layout
  in
  let noisy =
    Machine.Simulate.run
      ~noise:(Random.State.make [| 1 |], 0.05)
      ~config:cfg ~schedule_cycles:sc layout
  in
  Alcotest.(check bool) "noise within amplitude" true
    (Float.abs ((noisy.Machine.Simulate.cycles /. base.Machine.Simulate.cycles) -. 1.0)
    <= 0.05 +. 1e-9)

let suite =
  [
    Alcotest.test_case "cache cold miss then hit" `Quick
      test_cache_cold_miss_then_hit;
    Alcotest.test_case "cache line granularity" `Quick
      test_cache_line_granularity;
    Alcotest.test_case "L2 catches L1 evictions" `Quick
      test_cache_l2_hit_after_l1_eviction;
    Alcotest.test_case "LRU replacement" `Quick test_cache_lru;
    Alcotest.test_case "prefetch hides latency" `Quick
      test_prefetch_hides_latency;
    Alcotest.test_case "prefetch queue saturates" `Quick
      test_prefetch_queue_saturates;
    Alcotest.test_case "redundant prefetches are free" `Quick
      test_redundant_prefetch_free;
    Alcotest.test_case "predictor learns bias" `Quick test_predictor_learns_bias;
    Alcotest.test_case "predictor hysteresis" `Quick
      test_predictor_2bit_hysteresis;
    Alcotest.test_case "alternating branches mispredict" `Quick
      test_predictor_alternating_is_hard;
    Alcotest.test_case "simulation is deterministic" `Quick
      test_simulate_deterministic;
    Alcotest.test_case "mispredicts cost cycles" `Quick
      test_simulate_charges_mispredicts;
    Alcotest.test_case "cache misses cost cycles" `Quick
      test_simulate_charges_cache_misses;
    Alcotest.test_case "measurement noise injection" `Quick test_simulate_noise;
  ]
