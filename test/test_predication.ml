(* Direct tests of predicated execution semantics: hand-built IR using
   the cmpp / cmp.unc / cmp.or / side-exit instructions, executed by the
   interpreter.  These are the building blocks if-conversion emits; their
   semantics must match IA-64's. *)

let mk ?(guard = Ir.Types.p_true) id kind = Ir.Instr.make ~id ~guard kind

let run_main blocks ~next_reg ~next_pred =
  let f =
    {
      Ir.Func.fname = "main";
      params = [];
      blocks;
      next_reg;
      next_pred;
      next_instr = 100;
      frame_size = 0;
    }
  in
  let prog = { Ir.Func.funcs = [ f ]; globals = []; main = "main" } in
  Ir.Validate.check_exn prog;
  (Profile.Interp.run (Profile.Layout.prepare prog)).Profile.Interp.output

(* cmpp sets both targets; the guarded consumer sees exactly one side. *)
let test_pdef_both_sides () =
  let block v =
    {
      Ir.Func.blabel = "entry";
      instrs =
        [
          mk 0 (Ir.Instr.Mov (1, Ir.Types.Imm v));
          mk 1 (Ir.Instr.Pdef (Ir.Types.Cgt, 1, 2, Ir.Types.Reg 1, Ir.Types.Imm 10));
          mk 2 ~guard:1 (Ir.Instr.Emit (Ir.Types.Imm 111));
          mk 3 ~guard:2 (Ir.Instr.Emit (Ir.Types.Imm 222));
        ];
      term = Ir.Func.Ret None;
    }
  in
  Alcotest.(check (list (float 0.0))) "taken side" [ 111.0 ]
    (run_main [ block 50 ] ~next_reg:2 ~next_pred:3);
  Alcotest.(check (list (float 0.0))) "fallthrough side" [ 222.0 ]
    (run_main [ block 5 ] ~next_reg:2 ~next_pred:3)

(* cmp.unc clears its target when nullified — no stale state across
   iterations of a self-looping hyperblock. *)
let test_pset_clears_when_nullified () =
  let blocks =
    [
      {
        Ir.Func.blabel = "entry";
        instrs =
          [
            (* p1 = true initially; p2 = (1 > 0) under p1 -> true. *)
            mk 0 (Ir.Instr.Pdef (Ir.Types.Ceq, 1, 2, Ir.Types.Imm 0, Ir.Types.Imm 0));
            mk 1 ~guard:1
              (Ir.Instr.Pset (Ir.Types.Cgt, 3, Ir.Types.Imm 1, Ir.Types.Imm 0));
            mk 2 ~guard:3 (Ir.Instr.Emit (Ir.Types.Imm 1));
            (* Now nullify the Pset: guard p2 is false; p3 MUST clear. *)
            mk 3 ~guard:2
              (Ir.Instr.Pset (Ir.Types.Cgt, 3, Ir.Types.Imm 1, Ir.Types.Imm 0));
            mk 4 ~guard:3 (Ir.Instr.Emit (Ir.Types.Imm 2));
          ];
        term = Ir.Func.Ret None;
      };
    ]
  in
  Alcotest.(check (list (float 0.0)))
    "nullified cmp.unc clears its target" [ 1.0 ]
    (run_main blocks ~next_reg:1 ~next_pred:4)

(* cmp.or only ever sets; accumulation over two edges. *)
let test_por_accumulates () =
  let blocks v1 v2 =
    [
      {
        Ir.Func.blabel = "entry";
        instrs =
          [
            mk 0 (Ir.Instr.Pclear 1);
            mk 1 (Ir.Instr.Por (Ir.Types.Cgt, 1, Ir.Types.Imm v1, Ir.Types.Imm 0));
            mk 2 (Ir.Instr.Por (Ir.Types.Cgt, 1, Ir.Types.Imm v2, Ir.Types.Imm 0));
            mk 3 ~guard:1 (Ir.Instr.Emit (Ir.Types.Imm 7));
            mk 4 (Ir.Instr.Emit (Ir.Types.Imm 9));
          ];
        term = Ir.Func.Ret None;
      };
    ]
  in
  Alcotest.(check (list (float 0.0))) "first edge fires" [ 7.0; 9.0 ]
    (run_main (blocks 1 0) ~next_reg:1 ~next_pred:2);
  Alcotest.(check (list (float 0.0))) "second edge fires" [ 7.0; 9.0 ]
    (run_main (blocks 0 1) ~next_reg:1 ~next_pred:2);
  Alcotest.(check (list (float 0.0))) "no edge fires" [ 9.0 ]
    (run_main (blocks 0 0) ~next_reg:1 ~next_pred:2)

(* A taken side exit leaves mid-block; a nullified one falls through. *)
let test_side_exit () =
  let blocks taken =
    [
      {
        Ir.Func.blabel = "entry";
        instrs =
          [
            mk 0
              (Ir.Instr.Pset
                 (Ir.Types.Cgt, 1, Ir.Types.Imm taken, Ir.Types.Imm 0));
            mk 1 (Ir.Instr.Emit (Ir.Types.Imm 1));
            mk 2 ~guard:1 (Ir.Instr.Exit "out");
            mk 3 (Ir.Instr.Emit (Ir.Types.Imm 2));
          ];
        term = Ir.Func.Jmp "tail";
      };
      {
        Ir.Func.blabel = "tail";
        instrs = [ mk 4 (Ir.Instr.Emit (Ir.Types.Imm 3)) ];
        term = Ir.Func.Ret None;
      };
      {
        Ir.Func.blabel = "out";
        instrs = [ mk 5 (Ir.Instr.Emit (Ir.Types.Imm 99)) ];
        term = Ir.Func.Ret None;
      };
    ]
  in
  Alcotest.(check (list (float 0.0))) "exit taken" [ 1.0; 99.0 ]
    (run_main (blocks 1) ~next_reg:1 ~next_pred:2);
  Alcotest.(check (list (float 0.0))) "exit not taken" [ 1.0; 2.0; 3.0 ]
    (run_main (blocks 0) ~next_reg:1 ~next_pred:2)

(* A nullified store must not modify memory; a nullified load must not
   clobber its destination. *)
let test_nullified_memory_ops () =
  let f =
    {
      Ir.Func.fname = "main";
      params = [];
      blocks =
        [
          {
            Ir.Func.blabel = "entry";
            instrs =
              [
                mk 0 (Ir.Instr.Gaddr (1, "g"));
                mk 1
                  (Ir.Instr.Store
                     ( { Ir.Instr.base = Ir.Types.Reg 1;
                         offset = Ir.Types.Imm 0; space = Ir.Instr.Global "g";
                         hazard = false },
                       Ir.Types.Imm 42 ));
                (* p1 stays false: the guarded store below must not run. *)
                mk 2 (Ir.Instr.Pclear 1);
                mk 3 ~guard:1
                  (Ir.Instr.Store
                     ( { Ir.Instr.base = Ir.Types.Reg 1;
                         offset = Ir.Types.Imm 0; space = Ir.Instr.Global "g";
                         hazard = false },
                       Ir.Types.Imm 7 ));
                mk 4 (Ir.Instr.Mov (2, Ir.Types.Imm 5));
                mk 5 ~guard:1
                  (Ir.Instr.Load
                     ( 2,
                       { Ir.Instr.base = Ir.Types.Reg 1;
                         offset = Ir.Types.Imm 0; space = Ir.Instr.Global "g";
                         hazard = false } ));
                mk 6
                  (Ir.Instr.Load
                     ( 3,
                       { Ir.Instr.base = Ir.Types.Reg 1;
                         offset = Ir.Types.Imm 0; space = Ir.Instr.Global "g";
                         hazard = false } ));
                mk 7 (Ir.Instr.Emit (Ir.Types.Reg 2));
                mk 8 (Ir.Instr.Emit (Ir.Types.Reg 3));
              ];
            term = Ir.Func.Ret None;
          };
        ];
      next_reg = 4;
      next_pred = 2;
      next_instr = 100;
      frame_size = 0;
    }
  in
  let prog =
    { Ir.Func.funcs = [ f ];
      globals = [ { Ir.Func.gname = "g"; gsize = 4; ginit = [||] } ];
      main = "main" }
  in
  Ir.Validate.check_exn prog;
  let out = (Profile.Interp.run (Profile.Layout.prepare prog)).Profile.Interp.output in
  Alcotest.(check (list (float 0.0)))
    "nullified load keeps r2; memory keeps 42" [ 5.0; 42.0 ] out

let suite =
  [
    Alcotest.test_case "cmpp defines both sides" `Quick test_pdef_both_sides;
    Alcotest.test_case "cmp.unc clears when nullified" `Quick
      test_pset_clears_when_nullified;
    Alcotest.test_case "cmp.or accumulates" `Quick test_por_accumulates;
    Alcotest.test_case "predicated side exits" `Quick test_side_exit;
    Alcotest.test_case "nullified memory operations" `Quick
      test_nullified_memory_ops;
  ]
