(* Remaining cross-cutting checks: end-to-end determinism under a fixed
   seed, memory layout addressing, numeric values of extracted hyperblock
   features on a hand-analyzed region, and feature-set error behaviour. *)

let test_evolution_deterministic () =
  let params = { Gp.Params.tiny with Gp.Params.rng_seed = 1234 } in
  let run () =
    Driver.Study.specialize ~params Driver.Study.Hyperblock_study "codrle4"
  in
  let a = run () and b = run () in
  Alcotest.(check string) "same best expression" a.Driver.Study.best_expr
    b.Driver.Study.best_expr;
  Alcotest.(check (float 0.0)) "same speedup" a.Driver.Study.train_speedup
    b.Driver.Study.train_speedup

let test_seed_changes_search () =
  let run seed =
    let params = { Gp.Params.tiny with Gp.Params.rng_seed = seed } in
    (Driver.Study.specialize ~params Driver.Study.Hyperblock_study "rawcaudio")
      .Driver.Study.best_expr
  in
  (* Not guaranteed in principle, but with this population it holds and
     guards against accidentally ignoring the seed. *)
  Alcotest.(check bool) "different seeds explore differently" true
    (run 1 <> run 7 || run 1 <> run 13)

let test_layout_addressing () =
  let prog =
    Frontend.Minic.compile
      {| global int a[10];
         global float b[6];
         int main() { emit(a[0] + int(b[0])); return 0; } |}
  in
  let layout = Profile.Layout.prepare prog in
  let base g = Hashtbl.find layout.Profile.Layout.global_base g in
  Alcotest.(check int) "a at 0" 0 (base "a");
  Alcotest.(check int) "b after a" 10 (base "b");
  Alcotest.(check int) "memory covers globals" 16
    layout.Profile.Layout.memory_words;
  Alcotest.(check int) "block uid resolves" 0
    (Profile.Layout.block_uid_of layout "main" "entry")

let test_layout_frames_after_spills () =
  let prog =
    Frontend.Minic.compile
      {| global int a[8];
         int helper(int x) { return x * 3 + 1; }
         int main() {
           int i; int s = 0;
           for (i = 0; i < 8; i = i + 1) { s = s + helper(a[i]); }
           emit(s);
           return 0; } |}
  in
  (* Give each function a frame and check they are disjoint. *)
  List.iter (fun (f : Ir.Func.t) -> f.Ir.Func.frame_size <- 4)
    prog.Ir.Func.funcs;
  let layout = Profile.Layout.prepare prog in
  let frames =
    List.map
      (fun (f : Ir.Func.t) ->
        (Profile.Layout.func layout f.Ir.Func.fname).Profile.Layout.frame_base)
      prog.Ir.Func.funcs
  in
  Alcotest.(check int) "distinct frame bases" (List.length frames)
    (List.length (List.sort_uniq compare frames));
  List.iter
    (fun base ->
      Alcotest.(check bool) "frames after globals" true (base >= 8))
    frames

(* Hand-check Table 4 features on a fully understood diamond. *)
let test_hyperblock_feature_values () =
  let src =
    {| global int a[1000];
       int main() {
         int i; int s = 0;
         for (i = 0; i < 1000; i = i + 1) {
           if (a[i] > 0) { s = s + a[i]; } else { s = s - 1; }
         }
         emit(s);
         return 0; } |}
  in
  let prog = Frontend.Minic.compile src in
  Opt.Pipeline.run ~config:Opt.Pipeline.no_unroll prog;
  let layout = Profile.Layout.prepare prog in
  (* Every fourth element positive: then-path ratio 0.25. *)
  let data = Array.init 1000 (fun i -> if i mod 4 = 0 then 1.0 else 0.0) in
  let prof = Profile.Prof.collect ~overrides:[ ("a", data) ] layout in
  let f = Ir.Func.find_func prog "main" in
  let regions = Hyperblock.Region.discover f in
  let loop_region =
    List.find
      (fun (r : Hyperblock.Region.t) -> r.Hyperblock.Region.kind = `Loop_body)
      regions
  in
  let scored =
    Hyperblock.Form.score_region f prof Hyperblock.Baseline.expr loop_region
  in
  Alcotest.(check int) "two loop paths" 2 (List.length scored);
  let ratios =
    List.sort compare
      (List.map
         (fun (s : Hyperblock.Form.scored_path) ->
           s.Hyperblock.Form.feats.Hyperblock.Features.exec_ratio)
         scored)
  in
  (match ratios with
  | [ lo; hi ] ->
    Alcotest.(check (float 0.02)) "cold path ~25%" 0.25 lo;
    Alcotest.(check (float 0.02)) "hot path ~75%" 0.75 hi
  | _ -> Alcotest.fail "expected two ratios");
  List.iter
    (fun (s : Hyperblock.Form.scored_path) ->
      let fe = s.Hyperblock.Form.feats in
      Alcotest.(check bool) "no hazards in this loop" false
        fe.Hyperblock.Features.mem_hazard;
      Alcotest.(check bool) "positive ops" true
        (fe.Hyperblock.Features.num_ops > 0.0);
      Alcotest.(check bool) "height <= ops * max latency" true
        (fe.Hyperblock.Features.dep_height
        <= fe.Hyperblock.Features.num_ops *. 12.0))
    scored

let test_feature_set_errors () =
  let fs = Gp.Feature_set.make ~reals:[ "x" ] ~bools:[] in
  let env = Gp.Feature_set.empty_env fs in
  Alcotest.check_raises "unknown real"
    (Invalid_argument "Feature_set.set_real: unknown feature nope") (fun () ->
      Gp.Feature_set.set_real fs env "nope" 1.0);
  Alcotest.check_raises "duplicate name"
    (Invalid_argument "Feature_set.make: duplicate feature x") (fun () ->
      ignore (Gp.Feature_set.make ~reals:[ "x"; "x" ] ~bools:[]))

let test_expr_features_listing () =
  let fs = Hyperblock.Features.feature_set in
  let g = Gp.Expr.Real (Gp.Sexp.parse_real fs
      "(cmul mem_hazard exec_ratio (add num_ops exec_ratio))") in
  let feats = Gp.Expr.features g in
  let real_name i = Gp.Feature_set.real_name fs i in
  let names =
    List.map
      (function
        | `Real i -> "r:" ^ real_name i
        | `Bool i -> "b:" ^ Gp.Feature_set.bool_name fs i)
      feats
  in
  Alcotest.(check (list string)) "referenced features, deduplicated"
    [ "b:mem_hazard"; "r:exec_ratio"; "r:num_ops" ]
    (List.sort compare names)

let test_instr_count_and_renumber () =
  let prog =
    Frontend.Minic.compile
      {| int main() { int x = 1; emit(x + 2); return 0; } |}
  in
  let f = Ir.Func.find_func prog "main" in
  let n = Ir.Func.instr_count f in
  Ir.Func.renumber f;
  let ids = ref [] in
  Ir.Func.iter_instrs f (fun _ i -> ids := i.Ir.Instr.id :: !ids);
  Alcotest.(check (list int)) "ids are 0..n-1 after renumber"
    (List.init n Fun.id)
    (List.sort compare !ids)

let suite =
  [
    Alcotest.test_case "evolution deterministic per seed" `Slow
      test_evolution_deterministic;
    Alcotest.test_case "seed changes the search" `Slow test_seed_changes_search;
    Alcotest.test_case "memory layout addressing" `Quick test_layout_addressing;
    Alcotest.test_case "frames disjoint after globals" `Quick
      test_layout_frames_after_spills;
    Alcotest.test_case "hyperblock feature values" `Quick
      test_hyperblock_feature_values;
    Alcotest.test_case "feature set errors" `Quick test_feature_set_errors;
    Alcotest.test_case "expression feature listing" `Quick
      test_expr_features_listing;
    Alcotest.test_case "renumbering" `Quick test_instr_count_and_renumber;
  ]
