(* Fault-injection tests for the supervised pool and the evaluator's
   infrastructure-vs-candidate failure split.  Workers really fork, hang,
   die and get SIGKILLed here; deadlines are kept short so the suite
   stays fast.  All injections are deterministic: a plan decides per
   (task, attempt), and attempts are counted through the filesystem (see
   Gp.Chaos.Ledger). *)

module FI = struct
  include Gp.Chaos
  include Gp.Chaos.Ledger
end

let jobs =
  match Sys.getenv_opt "METAOPT_TEST_JOBS" with
  | Some s -> ( try max 1 (int_of_string s) with _ -> 2)
  | None -> 2

let outcome_label = function
  | Gp.Parmap.Ok _ -> "Ok"
  | Gp.Parmap.Crashed _ -> "Crashed"
  | Gp.Parmap.Timed_out -> "Timed_out"
  | Gp.Parmap.Gave_up -> "Gave_up"

let check_outcome name want got =
  Alcotest.(check string) name want (outcome_label got)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let with_dir tag f =
  let dir = FI.fresh_dir tag in
  Fun.protect ~finally:(fun () -> FI.cleanup dir) (fun () -> f dir)

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
      close_in ic;
      List.rev acc
  in
  go []

(* --- The supervised pool -------------------------------------------------- *)

let test_all_ok () =
  let outcomes, stats =
    Gp.Parmap.supervised ~jobs ~timeout_s:10.0
      (fun x -> x * x)
      (Array.init 20 Fun.id)
  in
  Array.iteri
    (fun i o ->
      match o with
      | Gp.Parmap.Ok v -> Alcotest.(check int) "value in order" (i * i) v
      | o -> Alcotest.failf "task %d: %s" i (outcome_label o))
    outcomes;
  Alcotest.(check int) "all completed" 20 stats.Gp.Parmap.completed;
  Alcotest.(check int) "no crashes" 0 stats.Gp.Parmap.crashes;
  Alcotest.(check int) "no timeouts" 0 stats.Gp.Parmap.timeouts;
  Alcotest.(check int) "no retries" 0 stats.Gp.Parmap.retries

(* A task that hangs on its first attempt only: the parent kills it at
   the deadline and the retry succeeds, so the caller still sees [Ok]. *)
let test_hang_retry_recovers () =
  with_dir "hang-retry" (fun dir ->
      let plan t n = if t = 3 && n = 1 then Some FI.Hang else None in
      let f = FI.wrap ~dir ~plan (fun x -> x + 100) in
      let outcomes, stats =
        Gp.Parmap.supervised ~jobs ~timeout_s:0.3 ~retries:2 ~backoff_s:0.01 f
          (Array.init 6 Fun.id)
      in
      Array.iteri
        (fun i o ->
          match o with
          | Gp.Parmap.Ok v -> Alcotest.(check int) "value" (i + 100) v
          | o -> Alcotest.failf "task %d: %s" i (outcome_label o))
        outcomes;
      Alcotest.(check int) "one timed-out attempt" 1 stats.Gp.Parmap.timeouts;
      Alcotest.(check int) "one retry" 1 stats.Gp.Parmap.retries;
      Alcotest.(check int) "task 3 took two attempts" 2 (FI.attempts dir 3);
      Alcotest.(check int) "task 0 took one attempt" 1 (FI.attempts dir 0))

let test_hang_exhausts_retries () =
  with_dir "hang-always" (fun dir ->
      let f = FI.wrap ~dir ~plan:(fun _ _ -> Some FI.Hang) (fun x -> x) in
      let outcomes, stats =
        Gp.Parmap.supervised ~jobs:1 ~timeout_s:0.2 ~retries:1 ~backoff_s:0.01
          f [| 0 |]
      in
      check_outcome "abandoned" "Gave_up" outcomes.(0);
      Alcotest.(check int) "both attempts timed out" 2 stats.Gp.Parmap.timeouts;
      Alcotest.(check int) "both attempts were made" 2 (FI.attempts dir 0))

(* With [retries = 0] the single attempt's failure mode is reported
   as-is, not collapsed into [Gave_up]. *)
let test_no_retry_times_out () =
  with_dir "no-retry-hang" (fun dir ->
      let f = FI.wrap ~dir ~plan:(fun _ _ -> Some FI.Hang) (fun x -> x) in
      let outcomes, stats =
        Gp.Parmap.supervised ~jobs:1 ~timeout_s:0.2 ~retries:0 f [| 0 |]
      in
      check_outcome "single attempt" "Timed_out" outcomes.(0);
      Alcotest.(check int) "exactly one attempt" 1 (FI.attempts dir 0);
      Alcotest.(check int) "nothing retried" 0 stats.Gp.Parmap.retries)

let test_no_retry_crashes () =
  with_dir "no-retry-crash" (fun dir ->
      let plan t _ =
        match t with
        | 0 -> Some (FI.Kill Sys.sigkill)
        | 1 -> Some (FI.Exit 3)
        | 2 -> Some (FI.Raise "boom")
        | _ -> None
      in
      let f = FI.wrap ~dir ~plan (fun x -> x * 10) in
      let outcomes, stats =
        Gp.Parmap.supervised ~jobs ~timeout_s:10.0 ~retries:0 f
          (Array.init 4 Fun.id)
      in
      (match outcomes.(0) with
      | Gp.Parmap.Crashed msg ->
        Alcotest.(check bool) "kill-by-signal described" true
          (contains msg "signal")
      | o -> Alcotest.failf "killed task: %s" (outcome_label o));
      (match outcomes.(1) with
      | Gp.Parmap.Crashed msg ->
        Alcotest.(check bool) "silent exit described" true
          (contains msg "exited")
      | o -> Alcotest.failf "exiting task: %s" (outcome_label o));
      (match outcomes.(2) with
      | Gp.Parmap.Crashed msg ->
        Alcotest.(check bool) "exception message survives" true
          (contains msg "boom")
      | o -> Alcotest.failf "raising task: %s" (outcome_label o));
      (match outcomes.(3) with
      | Gp.Parmap.Ok v -> Alcotest.(check int) "healthy neighbour" 30 v
      | o -> Alcotest.failf "healthy task: %s" (outcome_label o));
      Alcotest.(check int) "three crashed attempts" 3 stats.Gp.Parmap.crashes)

(* A flaky task that dies on its first two attempts and then succeeds:
   with [retries = 2] the caller sees only the recovery. *)
let test_fail_first_n_then_ok () =
  with_dir "flaky" (fun dir ->
      let plan _ n = if n <= 2 then Some (FI.Kill Sys.sigkill) else None in
      let f = FI.wrap ~dir ~plan (fun x -> x + 7) in
      let outcomes, stats =
        Gp.Parmap.supervised ~jobs:1 ~timeout_s:10.0 ~retries:2 ~backoff_s:0.01
          f [| 5 |]
      in
      (match outcomes.(0) with
      | Gp.Parmap.Ok v -> Alcotest.(check int) "recovered value" 12 v
      | o -> Alcotest.failf "flaky task: %s" (outcome_label o));
      Alcotest.(check int) "two crashed attempts" 2 stats.Gp.Parmap.crashes;
      Alcotest.(check int) "two retries" 2 stats.Gp.Parmap.retries;
      Alcotest.(check int) "three attempts in total" 3 (FI.attempts dir 5))

(* --- The evaluator's fault split ------------------------------------------ *)

(* One genome over four cases: a genuine speedup, a genuinely-bad 0, a
   hang that exhausts its retries, and another genuine result.  The two
   kinds of zero must part ways: the candidate's 0 is a real, persisted
   evaluation; the infrastructure's 0 is a counted fault that never
   reaches the disk cache. *)
let test_evaluator_fault_split () =
  let fault_dir = FI.fresh_dir "eval-faults" in
  let cache_dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "metaopt-faultcache-%d" (Unix.getpid ()))
  in
  (* Persisted results are sharded over shard-NN.tsv files under the
     cache dir; read and clean the whole store. *)
  let store_lines () =
    Sys.readdir cache_dir |> Array.to_list
    |> List.filter (fun f ->
           String.length f > 6 && String.sub f 0 6 = "shard-")
    |> List.concat_map (fun f -> read_lines (Filename.concat cache_dir f))
  in
  Fun.protect
    ~finally:(fun () ->
      FI.cleanup fault_dir;
      if Sys.file_exists cache_dir then begin
        Array.iter
          (fun f -> Sys.remove (Filename.concat cache_dir f))
          (Sys.readdir cache_dir);
        Unix.rmdir cache_dir
      end)
    (fun () ->
      let g = Hyperblock.Baseline.genome in
      let plan c _ = if c = 2 then Some FI.Hang else None in
      let eval _ case =
        FI.wrap ~dir:fault_dir ~plan
          (fun c -> match c with 0 -> 2.0 | 1 -> 0.0 | 3 -> 5.0 | _ -> 1.0)
          case
      in
      let e =
        Driver.Evaluator.create ~cache_dir ~timeout_s:0.25 ~retries:1
          ~fs:Hyperblock.Features.feature_set ~scope:"faults/scope"
          ~case_name:(fun i -> "case" ^ string_of_int i)
          ~eval ()
      in
      let row =
        (Driver.Evaluator.evaluate_batch e [| g |] ~cases:[ 0; 1; 2; 3 ]).(0)
      in
      Alcotest.(check (array (float 0.0)))
        "faulted case scores 0 like a bad candidate"
        [| 2.0; 0.0; 0.0; 5.0 |] row;
      Alcotest.(check int) "only real results are evaluations" 3
        (Driver.Evaluator.evaluations e);
      let f = Driver.Evaluator.faults e in
      Alcotest.(check int) "gave up once" 1 f.Driver.Evaluator.gave_up;
      Alcotest.(check int) "retried once" 1 f.Driver.Evaluator.retried;
      Alcotest.(check int) "no crash faults" 0 f.Driver.Evaluator.crashed;
      Alcotest.(check int) "hung case took two attempts" 2
        (FI.attempts fault_dir 2);
      (* The fault is memoized for this run: a second batch re-attempts
         nothing and counts nothing new. *)
      let row2 =
        (Driver.Evaluator.evaluate_batch e [| g |] ~cases:[ 0; 1; 2; 3 ]).(0)
      in
      Alcotest.(check (array (float 0.0))) "memoized row"
        [| 2.0; 0.0; 0.0; 5.0 |] row2;
      Alcotest.(check int) "no new attempts" 2 (FI.attempts fault_dir 2);
      Alcotest.(check int) "fault counters unchanged" 1
        (Driver.Evaluator.faults e).Driver.Evaluator.gave_up;
      (* Disk: exactly the three real results, including the genuine 0. *)
      let lines = store_lines () in
      Alcotest.(check int) "three persisted results" 3 (List.length lines);
      Alcotest.(check int) "the genuine zero is persisted" 1
        (List.length
           (List.filter (String.ends_with ~suffix:" 0x0p+0") lines));
      (* A fresh engine over the same cache recomputes only the faulted
         case — proof the Gave_up never poisoned the persistent cache. *)
      let recomputed = ref 0 in
      let e2 =
        Driver.Evaluator.create ~cache_dir
          ~fs:Hyperblock.Features.feature_set ~scope:"faults/scope"
          ~case_name:(fun i -> "case" ^ string_of_int i)
          ~eval:(fun _ _ ->
            incr recomputed;
            9.0)
          ()
      in
      let row3 =
        (Driver.Evaluator.evaluate_batch e2 [| g |] ~cases:[ 0; 1; 2; 3 ]).(0)
      in
      Alcotest.(check (array (float 0.0))) "disk hits plus one recompute"
        [| 2.0; 0.0; 9.0; 5.0 |] row3;
      Alcotest.(check int) "only the faulted case recomputed" 1 !recomputed)

let suite =
  if not Gp.Parmap.available then []
  else
    [
      Alcotest.test_case "supervised: all ok" `Quick test_all_ok;
      Alcotest.test_case "hang, retry, recover" `Quick test_hang_retry_recovers;
      Alcotest.test_case "hang exhausts retries -> Gave_up" `Quick
        test_hang_exhausts_retries;
      Alcotest.test_case "no retries: hang -> Timed_out" `Quick
        test_no_retry_times_out;
      Alcotest.test_case "no retries: death -> Crashed" `Quick
        test_no_retry_crashes;
      Alcotest.test_case "fail first N, then ok" `Quick
        test_fail_first_n_then_ok;
      Alcotest.test_case "evaluator fault split" `Quick
        test_evaluator_fault_split;
    ]
