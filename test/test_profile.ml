(* Tests for the profiler: block counts, edge probabilities, branch bias
   and 2-bit predictability statistics. *)

let profile_src ?(overrides = []) src =
  let prog = Frontend.Minic.compile src in
  let layout = Profile.Layout.prepare prog in
  Profile.Prof.collect ~overrides layout

let loop_src =
  {| global int a[100];
     int main() {
       int i; int s = 0;
       for (i = 0; i < 100; i = i + 1) {
         if (a[i] > 0) { s = s + 1; } else { s = s - 1; }
       }
       emit(s);
       return 0; } |}

let test_block_counts () =
  let p = profile_src loop_src in
  Alcotest.(check int) "entry executed once" 1
    (Profile.Prof.block_count p ~fname:"main" ~label:"entry");
  (* The for-loop header runs trip count + 1 times. *)
  Alcotest.(check int) "header runs 101 times" 101
    (Profile.Prof.block_count p ~fname:"main" ~label:"for0");
  Alcotest.(check int) "body runs 100 times" 100
    (Profile.Prof.block_count p ~fname:"main" ~label:"fbody1")

let test_edge_probabilities () =
  let p = profile_src loop_src in
  let prob = Profile.Prof.edge_prob p ~fname:"main" ~from_label:"for0" in
  Alcotest.(check (float 1e-9)) "body edge" (100.0 /. 101.0)
    (prob ~to_label:"fbody1");
  Alcotest.(check (float 1e-9)) "exit edge" (1.0 /. 101.0)
    (prob ~to_label:"fexit3")

let test_branch_bias_all_zero_data () =
  (* With a[i] = 0 everywhere, the then-branch is never taken. *)
  let p = profile_src loop_src in
  match Profile.Prof.term_branch_stats p ~fname:"main" ~label:"fbody1" with
  | None -> Alcotest.fail "body should end in a conditional branch"
  | Some bs ->
    Alcotest.(check int) "executed 100 times" 100 bs.Profile.Prof.executions;
    Alcotest.(check (float 1e-9)) "never taken" 0.0
      (Profile.Prof.taken_bias bs);
    Alcotest.(check bool) "highly predictable" true
      (Profile.Prof.predictability bs > 0.95)

let test_branch_predictability_alternating () =
  let p =
    profile_src
      ~overrides:
        [ ("a", Array.init 100 (fun i -> if i mod 2 = 0 then 1.0 else 0.0)) ]
      loop_src
  in
  match Profile.Prof.term_branch_stats p ~fname:"main" ~label:"fbody1" with
  | None -> Alcotest.fail "body should end in a conditional branch"
  | Some bs ->
    Alcotest.(check (float 0.02)) "half taken" 0.5
      (Profile.Prof.taken_bias bs);
    Alcotest.(check bool)
      (Printf.sprintf "alternating is unpredictable (%.2f)"
         (Profile.Prof.predictability bs))
      true
      (Profile.Prof.predictability bs <= 0.6)

let test_interp_fuel () =
  let src = {| int main() { while (1) { } return 0; } |} in
  let prog = Frontend.Minic.compile src in
  let layout = Profile.Layout.prepare prog in
  Alcotest.check_raises "fuel exhausted" Profile.Interp.Out_of_fuel (fun () ->
      ignore (Profile.Interp.run ~fuel:1000 layout))

let test_interp_traps_oob () =
  let src =
    {| global int a[4];
       int main() { emit(a[100]); return 0; } |}
  in
  let prog = Frontend.Minic.compile src in
  let layout = Profile.Layout.prepare prog in
  match Profile.Interp.run layout with
  | exception Profile.Interp.Trap _ -> ()
  | _ -> Alcotest.fail "expected an out-of-bounds trap"

let test_checksum_order_sensitive () =
  Alcotest.(check bool) "order matters" true
    (Profile.Interp.checksum [ 1.0; 2.0 ]
    <> Profile.Interp.checksum [ 2.0; 1.0 ]);
  Alcotest.(check bool) "value matters" true
    (Profile.Interp.checksum [ 1.0 ] <> Profile.Interp.checksum [ 1.5 ]);
  Alcotest.(check int) "deterministic"
    (Profile.Interp.checksum [ 3.25; -1.0 ])
    (Profile.Interp.checksum [ 3.25; -1.0 ])

let suite =
  [
    Alcotest.test_case "block execution counts" `Quick test_block_counts;
    Alcotest.test_case "edge probabilities" `Quick test_edge_probabilities;
    Alcotest.test_case "branch bias" `Quick test_branch_bias_all_zero_data;
    Alcotest.test_case "predictability of alternation" `Quick
      test_branch_predictability_alternating;
    Alcotest.test_case "interpreter fuel" `Quick test_interp_fuel;
    Alcotest.test_case "interpreter bounds check" `Quick test_interp_traps_oob;
    Alcotest.test_case "output checksum" `Quick test_checksum_order_sensitive;
  ]
