(* Focused unit tests for the register allocator's internals: live-range
   construction, interference, Equation (2)/(3) arithmetic, and spill-code
   shape. *)

let machine = Machine.Config.table3

let simple_prog () =
  Frontend.Minic.compile
    {| global int a[32];
       int main() {
         int x = 3; int y = 4; int i;
         for (i = 0; i < 32; i = i + 1) {
           a[i] = x * i + y;
         }
         emit(a[31]);
         return 0; } |}

let test_live_ranges_exist () =
  let prog = simple_prog () in
  let f = Ir.Func.find_func prog "main" in
  let g = Ir.Cfg.build f in
  let live = Regalloc.Liveness.compute f g in
  let ranges = Regalloc.Alloc.build_ranges f g live in
  (* x, y, i plus temporaries. *)
  Alcotest.(check bool)
    (Printf.sprintf "several ranges (%d)" (List.length ranges))
    true
    (List.length ranges >= 3);
  (* Loop-carried registers live in several blocks; temporaries in one. *)
  let multi =
    List.filter
      (fun (r : Regalloc.Alloc.live_range) ->
        List.length r.Regalloc.Alloc.blocks > 1)
      ranges
  in
  Alcotest.(check bool) "loop-carried ranges span blocks" true
    (List.length multi >= 3)

let test_interference_is_symmetric_overlap () =
  let a =
    { Regalloc.Alloc.reg = 1; blocks = [ 0; 1; 2 ];
      uses_per_block = [||]; defs_per_block = [||]; total_uses = 0;
      total_defs = 0; is_param = false; spans_call = false; degree = 0;
      priority = 0.0; color = -1 }
  in
  let b = { a with Regalloc.Alloc.reg = 2; blocks = [ 2; 3 ] } in
  let c = { a with Regalloc.Alloc.reg = 3; blocks = [ 4 ] } in
  Alcotest.(check bool) "overlap interferes" true
    (Regalloc.Alloc.interferes a b);
  Alcotest.(check bool) "symmetric" true (Regalloc.Alloc.interferes b a);
  Alcotest.(check bool) "disjoint does not" false
    (Regalloc.Alloc.interferes a c)

let test_equation_2_values () =
  (* savings = w * (LDsave * uses + STsave * defs) with LDsave=2,
     STsave=1. *)
  let fs = Regalloc.Features.feature_set in
  let env = Gp.Feature_set.empty_env fs in
  Gp.Feature_set.set_real fs env "w" 10.0;
  Gp.Feature_set.set_real fs env "uses" 3.0;
  Gp.Feature_set.set_real fs env "defs" 2.0;
  Alcotest.(check (float 1e-9)) "eq 2" 80.0
    (Regalloc.Alloc.baseline_savings env)

let test_block_weight () =
  Alcotest.(check (float 1e-9)) "depth 0" 1.0 (Regalloc.Alloc.block_weight 0);
  Alcotest.(check (float 1e-9)) "depth 2" 100.0
    (Regalloc.Alloc.block_weight 2);
  Alcotest.(check (float 1e-9)) "depth capped" 1000.0
    (Regalloc.Alloc.block_weight 9)

let test_no_spills_with_enough_registers () =
  let prog = simple_prog () in
  let spills = Regalloc.Alloc.run ~machine prog in
  Alcotest.(check int) "64 registers suffice" 0 spills

let test_spill_code_shape () =
  (* Force heavy spilling and inspect the generated code: spilled defs are
     followed by frame stores, spilled uses preceded by frame loads, and
     the frame grows accordingly. *)
  let prog = simple_prog () in
  let tiny = { machine with Machine.Config.gpr = 2 } in
  let f = Ir.Func.find_func prog "main" in
  let result = Regalloc.Alloc.run_func ~machine:tiny f in
  Alcotest.(check bool) "something spilled" true
    (List.length result.Regalloc.Alloc.spilled > 0);
  Alcotest.(check int) "frame sized to spills"
    (List.length result.Regalloc.Alloc.spilled)
    f.Ir.Func.frame_size;
  let frame_loads = ref 0 and frame_stores = ref 0 in
  Ir.Func.iter_instrs f (fun _ (i : Ir.Instr.t) ->
      match i.Ir.Instr.kind with
      | Ir.Instr.Load (_, { Ir.Instr.space = Ir.Instr.Frame _; _ }) ->
        incr frame_loads
      | Ir.Instr.Store ({ Ir.Instr.space = Ir.Instr.Frame _; _ }, _) ->
        incr frame_stores
      | _ -> ());
  Alcotest.(check bool) "frame loads inserted" true (!frame_loads > 0);
  Alcotest.(check bool) "frame stores inserted" true (!frame_stores > 0);
  (* And the program still runs correctly. *)
  let out =
    (Profile.Interp.run (Profile.Layout.prepare prog)).Profile.Interp.output
  in
  Alcotest.(check (list (float 0.0))) "spilled program correct"
    [ 3.0 *. 31.0 +. 4.0 ]
    out

let test_priority_orders_allocation () =
  (* Two ranges, one register: the higher-priority one gets it.  Build a
     function where x is used heavily in a loop and y once. *)
  let prog =
    Frontend.Minic.compile
      {| global int a[64];
         int main() {
           int hot = 7; int cold = 9;
           int i;
           for (i = 0; i < 64; i = i + 1) {
             a[i] = hot * hot + hot * i;
           }
           emit(a[63] + cold);
           return 0; } |}
  in
  let f = Ir.Func.find_func prog "main" in
  let result =
    Regalloc.Alloc.run_func
      ~machine:{ machine with Machine.Config.gpr = 3 }
      f
  in
  (* The 'hot' range (many weighted uses) must be colored, not spilled. *)
  let hot_range =
    List.fold_left
      (fun acc (r : Regalloc.Alloc.live_range) ->
        match acc with
        | Some (best : Regalloc.Alloc.live_range) ->
          if r.Regalloc.Alloc.priority > best.Regalloc.Alloc.priority then
            Some r
          else acc
        | None -> Some r)
      None result.Regalloc.Alloc.ranges
  in
  match hot_range with
  | Some r ->
    Alcotest.(check bool) "highest-priority range is colored" true
      (r.Regalloc.Alloc.color >= 0)
  | None -> Alcotest.fail "no ranges"

let test_spills_with_real_calls () =
  (* 072.sc keeps a real (non-inlined) callee; spilling both caller and
     callee under extreme pressure must preserve output, exercising
     per-function static frames. *)
  let b = Benchmarks.Registry.find "072.sc" in
  let prog = Frontend.Minic.compile b.Benchmarks.Bench.source in
  Opt.Pipeline.run prog;
  let want =
    (Profile.Interp.run ~overrides:b.Benchmarks.Bench.train
       (Profile.Layout.prepare prog)).Profile.Interp.output
  in
  let tiny = { machine with Machine.Config.gpr = 6 } in
  let spills = Regalloc.Alloc.run ~machine:tiny prog in
  Alcotest.(check bool) "both functions spill" true (spills > 4);
  Alcotest.(check int) "still valid" 0
    (List.length (Ir.Validate.check_program prog));
  let out =
    (Profile.Interp.run ~overrides:b.Benchmarks.Bench.train
       (Profile.Layout.prepare prog)).Profile.Interp.output
  in
  Alcotest.(check (list (float 0.0))) "output preserved across frames" want out

let suite =
  [
    Alcotest.test_case "live ranges exist" `Quick test_live_ranges_exist;
    Alcotest.test_case "interference = block overlap" `Quick
      test_interference_is_symmetric_overlap;
    Alcotest.test_case "equation 2 arithmetic" `Quick test_equation_2_values;
    Alcotest.test_case "block weight estimate" `Quick test_block_weight;
    Alcotest.test_case "no spills with enough registers" `Quick
      test_no_spills_with_enough_registers;
    Alcotest.test_case "spill code shape" `Quick test_spill_code_shape;
    Alcotest.test_case "priority orders allocation" `Quick
      test_priority_orders_allocation;
    Alcotest.test_case "spills with real calls" `Quick
      test_spills_with_real_calls;
  ]
