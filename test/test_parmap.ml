(* Tests for the task pool (fork and domains backends behind the pool
   API) and the parallel fitness engine: result ordering, the j=1
   fallback, failure isolation (both raising tasks and hard worker
   crashes), pool validation and capabilities, domains bit-identity
   against the sequential reference, the persistent cache, and
   bit-identical determinism of a parallel evolution run against a
   sequential one. *)

let squares n = Array.init n (fun i -> i * i)

let test_ordering () =
  let xs = Array.init 100 Fun.id in
  let out = Gp.Parmap.map ~jobs:3 ~fallback:(-1) (fun x -> x * x) xs in
  Alcotest.(check (array int)) "ordered results at j=3" (squares 100) out;
  let out7 = Gp.Parmap.map ~jobs:7 ~fallback:(-1) (fun x -> x * x) xs in
  Alcotest.(check (array int)) "ordered results at j=7" (squares 100) out7

let test_sequential_fallback () =
  let xs = Array.init 10 Fun.id in
  let out = Gp.Parmap.map ~jobs:1 ~fallback:(-1) (fun x -> x + 1) xs in
  Alcotest.(check (array int)) "j=1 maps in-process"
    (Array.init 10 (fun i -> i + 1)) out;
  let out0 = Gp.Parmap.map ~fallback:(-1) (fun x -> x + 1) xs in
  Alcotest.(check (array int)) "default is sequential"
    (Array.init 10 (fun i -> i + 1)) out0

let test_empty_and_oversubscribed () =
  Alcotest.(check (array int)) "empty input" [||]
    (Gp.Parmap.map ~jobs:4 ~fallback:0 (fun x -> x) [||]);
  let out = Gp.Parmap.map ~jobs:64 ~fallback:(-1) (fun x -> x * 2) [| 1; 2 |] in
  Alcotest.(check (array int)) "more jobs than tasks" [| 2; 4 |] out

let test_exception_isolation () =
  let f x = if x mod 3 = 0 then failwith "boom" else x in
  let want = Array.init 12 (fun x -> if x mod 3 = 0 then -7 else x) in
  Alcotest.(check (array int)) "raise -> fallback at j=1" want
    (Gp.Parmap.map ~jobs:1 ~fallback:(-7) f (Array.init 12 Fun.id));
  Alcotest.(check (array int)) "raise -> fallback at j=4" want
    (Gp.Parmap.map ~jobs:4 ~fallback:(-7) f (Array.init 12 Fun.id))

(* A worker that dies outright (SIGKILL mid-task) loses its unflushed
   tail; every result it already flushed survives, the rest fall back.
   With round-robin dealing at j=2, worker 1 owns 1,3,5,7,9 and dies at
   5, so 5, 7 and 9 score the fallback — the paper's "crashed compile
   gets fitness 0" rule at the process level. *)
let test_worker_crash () =
  let f x =
    if x = 5 then Unix.kill (Unix.getpid ()) Sys.sigkill;
    x + 1
  in
  let out = Gp.Parmap.map ~jobs:2 ~fallback:0 f (Array.init 10 Fun.id) in
  Alcotest.(check (array int)) "crash loses only the unflushed tail"
    [| 1; 2; 3; 4; 5; 0; 7; 0; 9; 0 |] out

(* The EINTR bugfix: a signal delivered while the parent blocks in
   waitpid/read used to bubble up as Unix_error (EINTR, ...) and could
   misreport a healthy worker as lost.  Drive both pools under a SIGALRM
   storm (an interval timer firing every 2ms into a no-op handler — the
   timer is not inherited across fork, so only the parent is stormed) and
   require every result to come back clean. *)
let test_eintr_storm () =
  if Gp.Parmap.available then begin
    (* retry_eintr itself: restarts on EINTR, returns the first value. *)
    let attempts = ref 0 in
    let flaky () =
      incr attempts;
      if !attempts < 3 then raise (Unix.Unix_error (Unix.EINTR, "test", ""))
      else !attempts
    in
    Alcotest.(check int) "retry_eintr restarts" 3 (Gp.Parmap.retry_eintr flaky);
    let old_handler =
      Sys.signal Sys.sigalrm (Sys.Signal_handle (fun _ -> ()))
    in
    let storm = { Unix.it_interval = 0.002; it_value = 0.002 } in
    ignore (Unix.setitimer Unix.ITIMER_REAL storm);
    Fun.protect
      ~finally:(fun () ->
        ignore
          (Unix.setitimer Unix.ITIMER_REAL
             { Unix.it_interval = 0.0; it_value = 0.0 });
        Sys.set_signal Sys.sigalrm old_handler)
      (fun () ->
        let xs = Array.init 12 Fun.id in
        let slow x =
          ignore (Unix.select [] [] [] 0.01);
          x * x
        in
        let out = Gp.Parmap.map ~jobs:3 ~fallback:(-1) slow xs in
        Alcotest.(check (array int)) "map survives the storm" (squares 12) out;
        let outcomes, stats =
          Gp.Parmap.supervised ~jobs:3 ~timeout_s:10.0 slow xs
        in
        Array.iteri
          (fun i o ->
            match o with
            | Gp.Parmap.Ok v ->
              Alcotest.(check int) (Printf.sprintf "task %d value" i) (i * i) v
            | Gp.Parmap.Crashed m ->
              Alcotest.failf "task %d misreported as crashed: %s" i m
            | Gp.Parmap.Timed_out -> Alcotest.failf "task %d misreported as timeout" i
            | Gp.Parmap.Gave_up -> Alcotest.failf "task %d gave up" i)
          outcomes;
        Alcotest.(check int) "no spurious crashes" 0 stats.Gp.Parmap.crashes;
        Alcotest.(check int) "no spurious timeouts" 0 stats.Gp.Parmap.timeouts)
  end

(* --- The backend/pool API ------------------------------------------------- *)

let test_pool_validation () =
  let expect_invalid name f =
    match f () with
    | _ -> Alcotest.failf "%s was accepted" name
    | exception Invalid_argument _ -> ()
  in
  expect_invalid "jobs = 0" (fun () -> Gp.Parmap.pool ~jobs:0 ());
  expect_invalid "jobs = -3" (fun () -> Gp.Parmap.pool ~jobs:(-3) ());
  expect_invalid "timeout_s = 0" (fun () -> Gp.Parmap.pool ~timeout_s:0.0 ());
  expect_invalid "timeout_s < 0" (fun () ->
      Gp.Parmap.pool ~timeout_s:(-1.0) ());
  expect_invalid "retries < 0" (fun () -> Gp.Parmap.pool ~retries:(-1) ());
  expect_invalid "backoff_s < 0" (fun () -> Gp.Parmap.pool ~backoff_s:(-0.1) ());
  expect_invalid "chunk_min = 0" (fun () -> Gp.Parmap.pool ~chunk_min:0 ());
  expect_invalid "chunk_min < 0" (fun () -> Gp.Parmap.pool ~chunk_min:(-2) ());
  expect_invalid "chunk_max < chunk_min" (fun () ->
      Gp.Parmap.pool ~chunk_min:4 ~chunk_max:2 ());
  expect_invalid "chunk_target_ms = 0" (fun () ->
      Gp.Parmap.pool ~chunk_target_ms:0.0 ());
  expect_invalid "chunk_target_ms < 0" (fun () ->
      Gp.Parmap.pool ~chunk_target_ms:(-1.0) ());
  expect_invalid "chunk_target_ms nan" (fun () ->
      Gp.Parmap.pool ~chunk_target_ms:nan ());
  (* the legacy wrappers and the evaluator validate too — a zero worker
     count is a configuration error, not a request for sequential runs *)
  expect_invalid "map ~jobs:0" (fun () ->
      Gp.Parmap.map ~jobs:0 ~fallback:0 Fun.id [| 1 |]);
  expect_invalid "supervised ~jobs:0" (fun () ->
      Gp.Parmap.supervised ~jobs:0 Fun.id [| 1 |]);
  expect_invalid "Evaluator.create ~jobs:0" (fun () ->
      Driver.Evaluator.create ~jobs:0 ~fs:Hyperblock.Features.feature_set
        ~scope:"invalid" ~case_name:string_of_int
        ~eval:(fun _ _ -> 0.0)
        ());
  let p =
    Gp.Parmap.pool ~backend:`Seq ~jobs:3 ~retries:2 ~chunk_target_ms:5.0
      ~chunk_min:2 ~chunk_max:32 ()
  in
  Alcotest.(check int) "valid pool keeps jobs" 3 p.Gp.Parmap.jobs;
  Alcotest.(check int) "valid pool keeps retries" 2 p.Gp.Parmap.retries;
  Alcotest.(check (float 0.0)) "valid pool keeps chunk target" 5.0
    p.Gp.Parmap.chunk_target_ms;
  Alcotest.(check int) "valid pool keeps chunk floor" 2 p.Gp.Parmap.chunk_min;
  Alcotest.(check int) "valid pool keeps chunk ceiling" 32
    p.Gp.Parmap.chunk_max;
  (* a pinned chunk of one is the pre-chunking reference protocol and
     must be accepted *)
  ignore (Gp.Parmap.pool ~chunk_min:1 ~chunk_max:1 ())

let test_capabilities () =
  let caps = Gp.Parmap.capabilities () in
  Alcotest.(check bool) "seq always present" true (List.mem `Seq caps);
  Alcotest.(check bool) "domains always present" true (List.mem `Domains caps);
  (* this process never spawns a domain directly (the domains tests fork
     first), so fork capability tracks the platform probe *)
  Alcotest.(check bool) "fork tracks availability" Gp.Parmap.available
    (List.mem `Fork caps);
  List.iter
    (fun b ->
      Alcotest.(check bool)
        (Gp.Parmap.backend_name b ^ " name round-trips")
        true
        (Gp.Parmap.backend_of_name (Gp.Parmap.backend_name b) = Some b))
    [ `Seq; `Fork; `Domains ];
  Alcotest.(check bool) "unknown backend name rejected" true
    (Gp.Parmap.backend_of_name "threads" = None)

(* The domains-backend comparison, shared by the forked-child and inline
   paths below: [`Domains] at several widths must match the sequential
   reference bit-for-bit, plain and supervised, and once domains have
   run, [`Fork] must be retired from [capabilities] yet still answer
   correctly through its degraded in-process path. *)
let domains_identity_check () : (unit, string) result =
  let rng = Random.State.make [| 0xd0a1 |] in
  let tasks = Array.init 64 (fun _ -> Random.State.float rng 2.0 -. 1.0) in
  let f x = sin (x *. 12.9898) *. 43758.5453 in
  let seq =
    Array.map Int64.bits_of_float
      (Gp.Parmap.run (Gp.Parmap.pool ~backend:`Seq ()) ~fallback:nan f tasks)
  in
  let check_width jobs =
    let pool = Gp.Parmap.pool ~backend:`Domains ~jobs () in
    let par =
      Array.map Int64.bits_of_float (Gp.Parmap.run pool ~fallback:nan f tasks)
    in
    if par <> seq then Error (Printf.sprintf "domains run -j%d diverges" jobs)
    else
      let outcomes, stats = Gp.Parmap.run_supervised pool f tasks in
      let sup =
        Array.map
          (function Gp.Parmap.Ok v -> Int64.bits_of_float v | _ -> Int64.zero)
          outcomes
      in
      if sup <> seq then
        Error (Printf.sprintf "domains supervised -j%d diverges" jobs)
      else if stats.Gp.Parmap.completed <> Array.length tasks then
        Error (Printf.sprintf "domains -j%d lost tasks" jobs)
      else Ok ()
  in
  let rec widths = function
    | [] -> Ok ()
    | j :: rest -> ( match check_width j with Ok () -> widths rest | e -> e)
  in
  match widths [ 1; 2; 3; 8 ] with
  | Error _ as e -> e
  | Ok () ->
    (* domains exception isolation: a raising task is Crashed (at
       retries = 0; the default single retry would report Gave_up, as
       on the fork backend), others Ok *)
    let boom = Gp.Parmap.pool ~backend:`Domains ~jobs:2 ~retries:0 () in
    let outcomes, _ =
      Gp.Parmap.run_supervised boom
        (fun x -> if x = 3 then failwith "boom" else x)
        (Array.init 6 Fun.id)
    in
    let isolated =
      Array.for_all2
        (fun i o ->
          match o with
          | Gp.Parmap.Ok v -> i <> 3 && v = i
          | Gp.Parmap.Crashed _ -> i = 3
          | _ -> false)
        (Array.init 6 Fun.id) outcomes
    in
    if not isolated then Error "domains supervised isolation broken"
    else if List.mem `Fork (Gp.Parmap.capabilities ()) then
      Error "fork still advertised after domains ran"
    else
      let degraded =
        Array.map Int64.bits_of_float
          (Gp.Parmap.run
             (Gp.Parmap.pool ~backend:`Fork ~jobs:4 ())
             ~fallback:nan f tasks)
      in
      if degraded <> seq then Error "retired fork backend diverges"
      else begin
        (* a persistent domains handle over several batches must match
           the sequential reference bit-for-bit too — the workers stay
           warm between batches but the results must not know it *)
        let pool = Gp.Parmap.pool ~backend:`Domains ~jobs:3 () in
        let h = Gp.Parmap.create pool ~f in
        let warm =
          List.concat_map
            (fun b ->
              let outcomes, _ = Gp.Parmap.run_batch h b in
              Array.to_list
                (Array.map
                   (function
                     | Gp.Parmap.Ok v -> Int64.bits_of_float v
                     | _ -> Int64.zero)
                   outcomes))
            [ Array.sub tasks 0 20; Array.sub tasks 20 20;
              Array.sub tasks 40 24 ]
        in
        Gp.Parmap.shutdown h;
        if Array.of_list warm <> seq then
          Error "warm domains handle diverges from the sequential reference"
        else Ok ()
      end

(* The check spawns domains, and the OCaml 5 runtime forbids Unix.fork
   in any process that ever did — so where fork works, run it inside a
   forked child to keep the fork backend alive for every later suite. *)
let test_domains_bit_identity () =
  if not Gp.Parmap.available then
    match domains_identity_check () with
    | Ok () -> ()
    | Error msg -> Alcotest.fail msg
  else begin
    flush stdout;
    flush stderr;
    let r, w = Unix.pipe () in
    match Unix.fork () with
    | 0 ->
      Unix.close r;
      let result =
        try domains_identity_check ()
        with e -> Error ("exception: " ^ Printexc.to_string e)
      in
      let oc = Unix.out_channel_of_descr w in
      Marshal.to_channel oc result [];
      flush oc;
      Unix._exit 0
    | pid ->
      Unix.close w;
      let ic = Unix.in_channel_of_descr r in
      let result =
        match (Marshal.from_channel ic : (unit, string) result) with
        | r -> r
        | exception _ -> Error "domains child died before reporting"
      in
      close_in_noerr ic;
      ignore (Gp.Parmap.retry_eintr (fun () -> Unix.waitpid [] pid));
      (match result with Ok () -> () | Error msg -> Alcotest.fail msg)
  end

(* --- The driver-level engine --------------------------------------------- *)

let tiny_params =
  { Gp.Params.tiny with Gp.Params.population_size = 8; generations = 3 }

(* The determinism satellite: a parallel run must be bit-identical to a
   sequential run with the same seed — same best fitness, same per-case
   speedups, same history. *)
let test_parallel_run_is_deterministic () =
  let run jobs =
    let ctx =
      Driver.Study.create ~jobs Driver.Study.Hyperblock_study
        [ "codrle4"; "decodrle4" ]
    in
    Gp.Evolve.run ~params:tiny_params (Driver.Study.problem_of ctx)
  in
  let seq = run 1 and par = run 4 in
  Alcotest.(check (float 0.0)) "best_fitness identical"
    seq.Gp.Evolve.best_fitness par.Gp.Evolve.best_fitness;
  Alcotest.(check (array (pair string (float 0.0)))) "per_case identical"
    seq.Gp.Evolve.per_case par.Gp.Evolve.per_case;
  Alcotest.(check int) "same evaluation count" seq.Gp.Evolve.evaluations
    par.Gp.Evolve.evaluations;
  List.iter2
    (fun (a : Gp.Evolve.generation_stats) (b : Gp.Evolve.generation_stats) ->
      Alcotest.(check (float 0.0)) "history best" a.Gp.Evolve.best_fitness
        b.Gp.Evolve.best_fitness;
      Alcotest.(check (float 0.0)) "history mean" a.Gp.Evolve.mean_fitness
        b.Gp.Evolve.mean_fitness;
      Alcotest.(check string) "history expr" a.Gp.Evolve.best_expr
        b.Gp.Evolve.best_expr)
    seq.Gp.Evolve.history par.Gp.Evolve.history

(* The noisy prefetch study draws its noise from the canonical genome, so
   it is order- and worker-independent too. *)
let test_parallel_noisy_study_deterministic () =
  let measure jobs =
    let ctx =
      Driver.Study.create ~jobs Driver.Study.Prefetch_study [ "015.doduc" ]
    in
    Driver.Evaluator.evaluate ctx.Driver.Study.eval_train
      Prefetch.Features.baseline_genome 0
  in
  Alcotest.(check (float 0.0)) "noise independent of jobs" (measure 1)
    (measure 3)

(* The persistent cache is a {!Driver.Shardstore}: entries land in
   shard-NN.tsv files under [dir].  These helpers clean up and read the
   whole store regardless of which shards a test's digests landed in. *)
let rm_cache_dir dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> Sys.remove (Filename.concat dir f))
      (Sys.readdir dir);
    Unix.rmdir dir
  end

let store_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f ->
         String.length f > 6 && String.sub f 0 6 = "shard-")
  |> List.sort compare
  |> List.map (Filename.concat dir)

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
      close_in ic;
      List.rev acc
  in
  go []

let store_lines dir = List.concat_map read_lines (store_files dir)

let test_disk_cache_roundtrip () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "metaopt-cache-%d" (Unix.getpid ()))
  in
  let count = ref 0 in
  let mk () =
    Driver.Evaluator.create ~cache_dir:dir
      ~fs:Hyperblock.Features.feature_set ~scope:"test/scope"
      ~case_name:(fun i -> "case" ^ string_of_int i)
      ~eval:(fun _ c ->
        incr count;
        2.0 +. float_of_int c)
      ()
  in
  Fun.protect
    ~finally:(fun () -> rm_cache_dir dir)
    (fun () ->
      let g = Hyperblock.Baseline.genome in
      let e1 = mk () in
      let m =
        Driver.Evaluator.evaluate_batch e1 [| g |] ~cases:[ 0; 1 ]
      in
      Alcotest.(check (float 0.0)) "computed" 2.0 m.(0).(0);
      Alcotest.(check int) "two compiles" 2 !count;
      Alcotest.(check int) "evaluations counted" 2
        (Driver.Evaluator.evaluations e1);
      (* A fresh engine over the same cache dir answers from disk. *)
      let e2 = mk () in
      let m2 = Driver.Evaluator.evaluate_batch e2 [| g |] ~cases:[ 0; 1 ] in
      Alcotest.(check (float 0.0)) "disk hit value" 3.0 m2.(0).(1);
      Alcotest.(check int) "no new compiles" 2 !count;
      Alcotest.(check int) "disk hits are not evaluations" 0
        (Driver.Evaluator.evaluations e2);
      Alcotest.(check int) "entries persisted in shard files" 2
        (List.length (store_lines dir));
      Alcotest.(check bool) "legacy single file never written" false
        (Sys.file_exists (Driver.Shardstore.legacy_file dir));
      (* A different scope misses. *)
      let e3 =
        Driver.Evaluator.create ~cache_dir:dir
          ~fs:Hyperblock.Features.feature_set ~scope:"other/scope"
          ~case_name:(fun i -> "case" ^ string_of_int i)
          ~eval:(fun _ c ->
            incr count;
            9.0 +. float_of_int c)
          ()
      in
      let m3 = Driver.Evaluator.evaluate_batch e3 [| g |] ~cases:[ 0 ] in
      Alcotest.(check (float 0.0)) "scoped apart" 9.0 m3.(0).(0);
      Alcotest.(check int) "recompiled under new scope" 3 !count)

(* The cache-reader bugfix: a torn or garbage line in the persistent cache
   — a half-written final line from a killed run, an editor accident, a
   file written before the lockf discipline — must not take the run down.
   The loader skips every malformed flavour with a warning and still
   answers the intact entries from disk. *)
let test_corrupted_cache_lines () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "metaopt-corrupt-cache-%d" (Unix.getpid ()))
  in
  let count = ref 0 in
  let mk () =
    Driver.Evaluator.create ~cache_dir:dir
      ~fs:Hyperblock.Features.feature_set ~scope:"corrupt/scope"
      ~case_name:(fun i -> "case" ^ string_of_int i)
      ~eval:(fun _ c ->
        incr count;
        4.0 +. float_of_int c)
      ()
  in
  Fun.protect
    ~finally:(fun () -> rm_cache_dir dir)
    (fun () ->
      let g = Hyperblock.Baseline.genome in
      let e1 = mk () in
      ignore (Driver.Evaluator.evaluate_batch e1 [| g |] ~cases:[ 0; 1 ]);
      Alcotest.(check int) "two computed" 2 !count;
      (* Corrupt every shard file holding an entry with every malformed
         flavour the reader must survive: free text, a short digest,
         non-hex, a non-finite value, an unparsable value, binary junk,
         an empty line, and a truncated final line with no newline.  Also
         drop in a legacy single-file cache of pure garbage — it must be
         skipped (with a warning), never compacted. *)
      let damage file =
        let oc = open_out_gen [ Open_append; Open_creat ] 0o644 file in
        output_string oc "this is not a cache line\n";
        output_string oc "0123456789abcdef 1.5\n";
        output_string oc "XYZJKLMNOPQRSTUVWXYZ0123456789ab 2.0\n";
        output_string oc "00112233445566778899aabbccddeeff nan\n";
        output_string oc "00112233445566778899aabbccddeeff not-a-float\n";
        output_string oc "\x00\x01\x7f binary junk\n";
        output_string oc "\n";
        output_string oc "00112233445566778899aabbccddeef";
        close_out oc
      in
      let damaged = store_files dir in
      Alcotest.(check bool) "entries were persisted" true (damaged <> []);
      List.iter damage damaged;
      let legacy = Driver.Shardstore.legacy_file dir in
      damage legacy;
      let legacy_size = (Unix.stat legacy).Unix.st_size in
      (* A fresh engine over the damaged store loads without raising and
         still serves the two intact entries from disk. *)
      let e2 = mk () in
      let m = Driver.Evaluator.evaluate_batch e2 [| g |] ~cases:[ 0; 1 ] in
      Alcotest.(check (float 0.0)) "case 0 from disk" 4.0 m.(0).(0);
      Alcotest.(check (float 0.0)) "case 1 from disk" 5.0 m.(0).(1);
      Alcotest.(check int) "nothing recomputed" 2 !count;
      Alcotest.(check int) "no evaluations on the fresh engine" 0
        (Driver.Evaluator.evaluations e2);
      let cs = Driver.Evaluator.cache_stats e2 in
      Alcotest.(check int) "both were disk hits" 2 cs.Driver.Evaluator.disk_hits;
      Alcotest.(check int) "no misses" 0 cs.Driver.Evaluator.misses;
      (* Loading compacted each damaged shard in place: only whole,
         parseable lines remain, and the intact entries survived. *)
      List.iter
        (fun file ->
          List.iter
            (fun line ->
              match String.index_opt line ' ' with
              | Some 32
                when float_of_string_opt
                       (String.sub line 33 (String.length line - 33))
                     <> None ->
                ()
              | _ -> Alcotest.failf "uncompacted line %S in %s" line file)
            (read_lines file))
        damaged;
      Alcotest.(check int) "compacted shards hold the intact entries" 2
        (List.length (store_lines dir));
      Alcotest.(check int) "legacy file untouched" legacy_size
        (Unix.stat legacy).Unix.st_size)

(* Two concurrent runs appending to one shared --cache-dir: the advisory
   [lockf] plus single-write appends must keep every line whole.  Each
   forked child writes 50 single-entry batches under its own scope; the
   parent then checks the file line by line and round-trips both scopes
   through fresh engines without recomputing anything. *)
let test_concurrent_cache_writers () =
  if Gp.Parmap.available then begin
    let dir =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "metaopt-shared-cache-%d" (Unix.getpid ()))
    in
    Fun.protect
      ~finally:(fun () -> rm_cache_dir dir)
      (fun () ->
        let g = Hyperblock.Baseline.genome in
        let engine scope eval =
          Driver.Evaluator.create ~cache_dir:dir
            ~fs:Hyperblock.Features.feature_set ~scope
            ~case_name:(fun i -> "case" ^ string_of_int i)
            ~eval ()
        in
        flush stdout;
        flush stderr;
        let writer scope base =
          match Unix.fork () with
          | 0 ->
            (try
               let e = engine scope (fun _ c -> base +. float_of_int c) in
               for c = 0 to 49 do
                 ignore (Driver.Evaluator.evaluate_batch e [| g |] ~cases:[ c ])
               done;
               Unix._exit 0
             with _ -> Unix._exit 1)
          | pid -> pid
        in
        let p1 = writer "w1/scope" 100.0 in
        let p2 = writer "w2/scope" 200.0 in
        let clean pid =
          match Unix.waitpid [] pid with
          | _, Unix.WEXITED 0 -> true
          | _ -> false
        in
        Alcotest.(check bool) "writer 1 exited cleanly" true (clean p1);
        Alcotest.(check bool) "writer 2 exited cleanly" true (clean p2);
        (* Every line, across every shard the two writers' digests landed
           in, survived whole: 32-hex digest, one space, a float.  100
           digests spread over 16 shards, so the writers collided on most
           shards and wrote others alone — both interleavings are
           exercised in one run. *)
        let lines = store_lines dir in
        Alcotest.(check int) "one line per evaluation" 100 (List.length lines);
        List.iter
          (fun line ->
            match String.index_opt line ' ' with
            | Some 32 -> (
              match
                float_of_string_opt
                  (String.sub line 33 (String.length line - 33))
              with
              | Some _ -> ()
              | None -> Alcotest.failf "torn value in %S" line)
            | _ -> Alcotest.failf "torn line %S" line)
          lines;
        (* Fresh engines answer both scopes purely from disk. *)
        let check_scope scope base =
          let e = engine scope (fun _ _ -> 999.0) in
          let row =
            (Driver.Evaluator.evaluate_batch e [| g |]
               ~cases:(List.init 50 Fun.id)).(0)
          in
          Array.iteri
            (fun c v ->
              Alcotest.(check (float 0.0))
                (Printf.sprintf "%s case %d from disk" scope c)
                (base +. float_of_int c) v)
            row;
          Alcotest.(check int) "nothing recomputed" 0
            (Driver.Evaluator.evaluations e)
        in
        check_scope "w1/scope" 100.0;
        check_scope "w2/scope" 200.0)
  end

(* --- Persistent warm pools ------------------------------------------------ *)

(* A handle keeps its forked workers alive between batches: worker-local
   state written during batch 1 is still there for batch 3.  With one
   slot the counter is deterministic — and the parent's copy of the ref
   must stay untouched, proving the work ran in the resident child. *)
let test_handle_keeps_workers_warm () =
  if Gp.Parmap.available then begin
    let pool = Gp.Parmap.pool ~backend:`Fork ~jobs:1 () in
    let warmth = ref 0 in
    let h =
      Gp.Parmap.create pool ~f:(fun x ->
          incr warmth;
          (x, !warmth))
    in
    Fun.protect
      ~finally:(fun () -> Gp.Parmap.shutdown h)
      (fun () ->
        let o1, s1 = Gp.Parmap.run_batch h [| 10; 20 |] in
        let o2, _ = Gp.Parmap.run_batch h [| 30 |] in
        let get = function Gp.Parmap.Ok v -> v | _ -> (-1, -1) in
        Alcotest.(check (list (pair int int)))
          "worker state persists across batches"
          [ (10, 1); (20, 2); (30, 3) ]
          (List.map get (Array.to_list o1 @ Array.to_list o2));
        Alcotest.(check int) "first batch complete" 2 s1.Gp.Parmap.completed;
        Alcotest.(check int) "parent state untouched" 0 !warmth)
  end

(* A worker death mid-batch respawns only that slot: the rest of the
   batch completes, and the same handle serves later batches cleanly. *)
let test_handle_survives_worker_death () =
  if Gp.Parmap.available then begin
    let pool = Gp.Parmap.pool ~backend:`Fork ~jobs:2 ~retries:0 () in
    let h =
      Gp.Parmap.create pool ~f:(fun x ->
          if x < 0 then Unix._exit 3;
          x * 2)
    in
    Fun.protect
      ~finally:(fun () -> Gp.Parmap.shutdown h)
      (fun () ->
        let o1, s1 = Gp.Parmap.run_batch h [| 1; -1; 2; 3 |] in
        Alcotest.(check int) "crash counted" 1 s1.Gp.Parmap.crashes;
        (match o1.(1) with
        | Gp.Parmap.Crashed _ -> ()
        | _ -> Alcotest.fail "dead worker not reported as a crash");
        List.iter
          (fun (i, want) ->
            match o1.(i) with
            | Gp.Parmap.Ok v -> Alcotest.(check int) "survivor" want v
            | _ -> Alcotest.failf "task %d lost to the crash" i)
          [ (0, 2); (2, 4); (3, 6) ];
        let o2, s2 = Gp.Parmap.run_batch h [| 5; 6; 7 |] in
        Alcotest.(check int) "second batch complete" 3 s2.Gp.Parmap.completed;
        Alcotest.(check int) "no stale crashes" 0 s2.Gp.Parmap.crashes;
        Array.iteri
          (fun i o ->
            match o with
            | Gp.Parmap.Ok v ->
              Alcotest.(check int) "second batch value" ((i + 5) * 2) v
            | _ -> Alcotest.failf "second batch lost task %d" i)
          o2)
  end

let test_handle_shutdown_semantics () =
  let pool = Gp.Parmap.pool ~backend:`Seq () in
  let h = Gp.Parmap.create pool ~f:(fun x -> x + 1) in
  let o, _ = Gp.Parmap.run_batch h [| 41 |] in
  (match o.(0) with
  | Gp.Parmap.Ok 42 -> ()
  | _ -> Alcotest.fail "seq handle miscomputed");
  let empty, _ = Gp.Parmap.run_batch h [||] in
  Alcotest.(check int) "empty batch on a live handle" 0 (Array.length empty);
  Gp.Parmap.shutdown h;
  Gp.Parmap.shutdown h;
  (* idempotent *)
  match Gp.Parmap.run_batch h [| 1 |] with
  | _ -> Alcotest.fail "run_batch after shutdown must raise"
  | exception Invalid_argument _ -> ()

(* --- Chunked dispatch ----------------------------------------------------- *)

(* Chunk-geometry edge cases: a pinned chunk of 1 (the pre-chunking
   reference protocol), a chunk longer than the whole batch, an uneven
   remainder, and an oversubscribed pool must all return every result,
   in canonical order, exactly once. *)
let test_chunk_boundaries () =
  if Gp.Parmap.available then begin
    let f x = (x * 3) + 1 in
    let check name ~jobs ~cmin ~cmax n =
      let pool =
        Gp.Parmap.pool ~backend:`Fork ~jobs ~retries:0 ~chunk_min:cmin
          ~chunk_max:cmax ()
      in
      let xs = Array.init n Fun.id in
      let h = Gp.Parmap.create pool ~f in
      Fun.protect
        ~finally:(fun () -> Gp.Parmap.shutdown h)
        (fun () ->
          let outcomes, stats = Gp.Parmap.run_batch h xs in
          Alcotest.(check int)
            (name ^ ": every task completed exactly once")
            n stats.Gp.Parmap.completed;
          Array.iteri
            (fun i o ->
              match o with
              | Gp.Parmap.Ok v ->
                Alcotest.(check int) (Printf.sprintf "%s: task %d" name i)
                  (f i) v
              | _ -> Alcotest.failf "%s: task %d not Ok" name i)
            outcomes)
    in
    check "chunk pinned to 1" ~jobs:2 ~cmin:1 ~cmax:1 10;
    check "chunk longer than the batch" ~jobs:2 ~cmin:16 ~cmax:16 5;
    check "uneven remainder" ~jobs:3 ~cmin:4 ~cmax:4 10;
    check "oversubscribed" ~jobs:8 ~cmin:2 ~cmax:8 3
  end

(* A straggler napping mid-batch must not stall it: the parent reassigns
   the slow worker's unacked chunk members to idle workers, every task
   still completes exactly once (first reply wins, so the duplicate
   copies cannot double-report), and the wall clock is bounded by one
   nap, not the nap times the chunk length. *)
let test_straggler_slow () =
  if Gp.Parmap.available then begin
    let n = 24 in
    let plan =
      {
        Gp.Chaos.seed = 0;
        rules =
          [
            {
              Gp.Chaos.r_site = Gp.Chaos.site_parmap_task;
              r_key = Some 3;
              r_attempt = Some 1;
              r_fault = Gp.Chaos.Slow 0.3;
            };
          ];
      }
    in
    let pool =
      Gp.Parmap.pool ~backend:`Fork ~jobs:2 ~retries:0 ~chunk_min:4
        ~chunk_max:8 ()
    in
    let h = Gp.Parmap.create pool ~f:(fun x -> x * x) in
    Fun.protect
      ~finally:(fun () ->
        Gp.Chaos.disarm ();
        Gp.Parmap.shutdown h)
      (fun () ->
        Gp.Chaos.arm plan;
        let t0 = Unix.gettimeofday () in
        let outcomes, stats = Gp.Parmap.run_batch h (Array.init n Fun.id) in
        let wall = Unix.gettimeofday () -. t0 in
        Alcotest.(check int) "every task completed exactly once" n
          stats.Gp.Parmap.completed;
        Array.iteri
          (fun i o ->
            match o with
            | Gp.Parmap.Ok v ->
              Alcotest.(check int) (Printf.sprintf "task %d" i) (i * i) v
            | _ -> Alcotest.failf "task %d lost to the straggler" i)
          outcomes;
        Alcotest.(check bool)
          (Printf.sprintf "bounded wall clock (%.2fs)" wall)
          true (wall < 10.0))
  end

(* A worker hanging mid-chunk is killed at the deadline: only the hung
   task times out, the rest of its chunk is re-run elsewhere, and the
   batch ends in bounded time with no task lost or duplicated. *)
let test_straggler_hang () =
  if Gp.Parmap.available then begin
    let n = 12 in
    let plan =
      {
        Gp.Chaos.seed = 0;
        rules =
          [
            {
              Gp.Chaos.r_site = Gp.Chaos.site_parmap_task;
              r_key = Some 5;
              r_attempt = None;
              r_fault = Gp.Chaos.Hang;
            };
          ];
      }
    in
    let pool =
      Gp.Parmap.pool ~backend:`Fork ~jobs:2 ~timeout_s:0.4 ~retries:0
        ~chunk_min:3 ~chunk_max:6 ()
    in
    let h = Gp.Parmap.create pool ~f:(fun x -> x + 100) in
    Fun.protect
      ~finally:(fun () ->
        Gp.Chaos.disarm ();
        Gp.Parmap.shutdown h)
      (fun () ->
        Gp.Chaos.arm plan;
        let t0 = Unix.gettimeofday () in
        let outcomes, stats = Gp.Parmap.run_batch h (Array.init n Fun.id) in
        let wall = Unix.gettimeofday () -. t0 in
        Array.iteri
          (fun i o ->
            match (i, o) with
            | 5, Gp.Parmap.Timed_out -> ()
            | 5, _ -> Alcotest.fail "hung task not reported as a timeout"
            | _, Gp.Parmap.Ok v ->
              Alcotest.(check int) (Printf.sprintf "task %d" i) (i + 100) v
            | _, _ -> Alcotest.failf "task %d lost to the hang" i)
          outcomes;
        Alcotest.(check int) "exactly one timeout" 1 stats.Gp.Parmap.timeouts;
        Alcotest.(check bool)
          (Printf.sprintf "bounded wall clock (%.2fs)" wall)
          true (wall < 10.0))
  end

let suite =
  [
    Alcotest.test_case "ordered results" `Quick test_ordering;
    Alcotest.test_case "sequential fallback" `Quick test_sequential_fallback;
    Alcotest.test_case "empty / oversubscribed" `Quick
      test_empty_and_oversubscribed;
    Alcotest.test_case "exception isolation" `Quick test_exception_isolation;
    Alcotest.test_case "worker crash -> fallback" `Quick test_worker_crash;
    Alcotest.test_case "EINTR storm" `Quick test_eintr_storm;
    Alcotest.test_case "pool validation" `Quick test_pool_validation;
    Alcotest.test_case "capabilities" `Quick test_capabilities;
    Alcotest.test_case "domains bit-identity" `Quick test_domains_bit_identity;
    Alcotest.test_case "parallel run deterministic" `Slow
      test_parallel_run_is_deterministic;
    Alcotest.test_case "noisy study deterministic" `Quick
      test_parallel_noisy_study_deterministic;
    Alcotest.test_case "disk cache round-trip" `Quick test_disk_cache_roundtrip;
    Alcotest.test_case "corrupted cache lines skipped" `Quick
      test_corrupted_cache_lines;
    Alcotest.test_case "concurrent cache writers" `Quick
      test_concurrent_cache_writers;
    Alcotest.test_case "warm pool: state persists" `Quick
      test_handle_keeps_workers_warm;
    Alcotest.test_case "warm pool: survives worker death" `Quick
      test_handle_survives_worker_death;
    Alcotest.test_case "warm pool: shutdown semantics" `Quick
      test_handle_shutdown_semantics;
    Alcotest.test_case "chunk boundaries" `Quick test_chunk_boundaries;
    Alcotest.test_case "straggler: slow worker" `Quick test_straggler_slow;
    Alcotest.test_case "straggler: hang mid-chunk" `Quick test_straggler_hang;
  ]
