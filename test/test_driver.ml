(* Tests for the study driver: fitness definition, baseline identity,
   correctness guard and end-to-end miniature evolutions. *)

let test_baseline_speedup_is_one () =
  let ctx = Driver.Study.create Driver.Study.Hyperblock_study [ "codrle4" ] in
  let s =
    Driver.Study.speedup ctx Hyperblock.Baseline.genome ~case:0
      ~dataset:Benchmarks.Bench.Train
  in
  Alcotest.(check (float 1e-9)) "baseline vs itself" 1.0 s

let test_speedup_definition () =
  (* "Merge nothing" on codrle4 must give speedup = baseline_cycles /
     candidate_cycles, computed independently here. *)
  let bench = Benchmarks.Registry.find "codrle4" in
  let machine = Machine.Config.table3 in
  let prepared = Driver.Compiler.prepare bench in
  let cycles_of heuristics =
    let c = Driver.Compiler.compile ~machine ~heuristics prepared in
    (Driver.Compiler.simulate ~machine ~dataset:Benchmarks.Bench.Train prepared
       c).Machine.Simulate.cycles
  in
  let neg =
    Gp.Sexp.parse_real Hyperblock.Features.feature_set "(sub 0.0 1.0)"
  in
  let base_cycles = cycles_of (Driver.Compiler.baseline ()) in
  let cand_cycles =
    cycles_of
      { (Driver.Compiler.baseline ()) with Driver.Compiler.hb_priority = neg }
  in
  let ctx = Driver.Study.create Driver.Study.Hyperblock_study [ "codrle4" ] in
  let s =
    Driver.Study.speedup ctx (Gp.Expr.Real neg) ~case:0
      ~dataset:Benchmarks.Bench.Train
  in
  Alcotest.(check (float 1e-6)) "speedup = base/cand"
    (base_cycles /. cand_cycles) s

let test_sort_mismatch_rejected () =
  let bool_genome = Gp.Expr.Bool (Gp.Expr.Bconst true) in
  Alcotest.check_raises "bool genome in hyperblock study"
    (Invalid_argument "Study.heuristics_with: genome sort mismatch")
    (fun () ->
      ignore (Driver.Study.heuristics_with Driver.Study.Hyperblock_study bool_genome))

let test_prefetch_noise_is_deterministic_per_genome () =
  let ctx = Driver.Study.create Driver.Study.Prefetch_study [ "015.doduc" ] in
  let g = Prefetch.Features.baseline_genome in
  let s1 = Driver.Study.speedup ctx g ~case:0 ~dataset:Benchmarks.Bench.Train in
  let s2 = Driver.Study.speedup ctx g ~case:0 ~dataset:Benchmarks.Bench.Train in
  Alcotest.(check (float 1e-12)) "same genome, same noise draw" s1 s2;
  (* The noisy fitness of the baseline against itself is near, but not
     exactly, 1. *)
  Alcotest.(check bool) "noise is bounded" true (Float.abs (s1 -. 1.0) < 0.05)

let test_sched_study () =
  let ctx = Driver.Study.create Driver.Study.Sched_study [ "codrle4" ] in
  let s =
    Driver.Study.speedup ctx Sched.Priority.baseline_genome ~case:0
      ~dataset:Benchmarks.Bench.Train
  in
  Alcotest.(check (float 1e-9)) "sched baseline vs itself" 1.0 s;
  (* An inverted ranking must not be faster than the baseline. *)
  let inverse =
    Gp.Expr.Real
      (Gp.Sexp.parse_real Sched.Priority.feature_set "(sub 0.0 lwd)")
  in
  let s' =
    Driver.Study.speedup ctx inverse ~case:0 ~dataset:Benchmarks.Bench.Train
  in
  Alcotest.(check bool)
    (Printf.sprintf "inverse ranking not faster (%.4f)" s')
    true (s' <= 1.0 +. 1e-9)

let test_study_machines () =
  Alcotest.(check int) "regalloc study uses 32 registers" 32
    (Driver.Study.machine_of Driver.Study.Regalloc_study).Machine.Config.gpr;
  Alcotest.(check string) "prefetch study targets itanium" "itanium1"
    (Driver.Study.machine_of Driver.Study.Prefetch_study).Machine.Config.name

let test_tiny_specialization () =
  (* A miniature end-to-end run of the paper's Figure 4 protocol on one
     benchmark: the evolved heuristic must never lose to the baseline on
     the training input (the baseline is in the initial population). *)
  let params =
    { Gp.Params.tiny with Gp.Params.population_size = 10; generations = 3 }
  in
  let r =
    Driver.Study.specialize ~params Driver.Study.Hyperblock_study "codrle4"
  in
  Alcotest.(check bool)
    (Printf.sprintf "train speedup %.3f >= 1" r.Driver.Study.train_speedup)
    true
    (r.Driver.Study.train_speedup >= 0.999);
  Alcotest.(check int) "history recorded" 3
    (List.length r.Driver.Study.history);
  Alcotest.(check bool) "expression printable" true
    (String.length r.Driver.Study.best_expr > 0)

let test_tiny_general_purpose () =
  let params =
    { Gp.Params.tiny with Gp.Params.population_size = 8; generations = 2 }
  in
  let g =
    Driver.Study.evolve_general ~params Driver.Study.Regalloc_study
      [ "huff_enc"; "129.compress" ]
  in
  Alcotest.(check int) "row per training benchmark" 2
    (List.length g.Driver.Study.train_rows);
  List.iter
    (fun (_, train, novel) ->
      Alcotest.(check bool) "speedups positive" true
        (train > 0.0 && novel > 0.0))
    g.Driver.Study.train_rows

let test_cross_validation () =
  let g = Hyperblock.Baseline.genome in
  let rows =
    Driver.Study.cross_validate Driver.Study.Hyperblock_study g
      [ "codrle4"; "decodrle4" ]
  in
  Alcotest.(check int) "row per test benchmark" 2 (List.length rows);
  List.iter
    (fun (_, train, _) ->
      Alcotest.(check (float 1e-9)) "baseline cross-validates to 1.0" 1.0 train)
    rows

let test_heuristics_file_roundtrip () =
  let h =
    {
      Driver.Compiler.hb_priority =
        Gp.Sexp.parse_real Hyperblock.Features.feature_set
          "(mul exec_ratio predict_product)";
      ra_savings =
        Gp.Sexp.parse_real Regalloc.Features.feature_set "(add uses defs)";
      pf_confidence =
        Some (Gp.Sexp.parse_bool Prefetch.Features.feature_set
                "(gt abs_stride 4.0)");
      sched_priority =
        Gp.Sexp.parse_real Sched.Priority.feature_set "(add lwd n_succs)";
    }
  in
  let path = Filename.temp_file "metaopt" ".heur" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Driver.Heuristics_file.save path h;
      let h' = Driver.Heuristics_file.load path in
      Alcotest.(check bool) "hyperblock slot" true
        (h'.Driver.Compiler.hb_priority = h.Driver.Compiler.hb_priority);
      Alcotest.(check bool) "regalloc slot" true
        (h'.Driver.Compiler.ra_savings = h.Driver.Compiler.ra_savings);
      Alcotest.(check bool) "prefetch slot" true
        (h'.Driver.Compiler.pf_confidence = h.Driver.Compiler.pf_confidence);
      Alcotest.(check bool) "sched slot" true
        (h'.Driver.Compiler.sched_priority = h.Driver.Compiler.sched_priority))

let test_heuristics_file_partial_and_off () =
  let path = Filename.temp_file "metaopt" ".heur" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "# only override one slot\nhyperblock: exec_ratio\nprefetch: off\n";
      close_out oc;
      let h = Driver.Heuristics_file.load path in
      Alcotest.(check bool) "hyperblock overridden" true
        (h.Driver.Compiler.hb_priority
        = Gp.Sexp.parse_real Hyperblock.Features.feature_set "exec_ratio");
      Alcotest.(check bool) "regalloc keeps baseline" true
        (h.Driver.Compiler.ra_savings = Regalloc.Features.baseline_expr);
      Alcotest.(check bool) "prefetch off" true
        (h.Driver.Compiler.pf_confidence = None))

let test_heuristics_file_rejects_garbage () =
  let path = Filename.temp_file "metaopt" ".heur" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "hyperblock: (frobnicate x)\n";
      close_out oc;
      match Driver.Heuristics_file.load path with
      | _ -> Alcotest.fail "expected Bad_file"
      | exception Driver.Heuristics_file.Bad_file _ -> ())

let suite =
  [
    Alcotest.test_case "baseline speedup is 1.0" `Quick
      test_baseline_speedup_is_one;
    Alcotest.test_case "speedup definition" `Quick test_speedup_definition;
    Alcotest.test_case "genome sort mismatch rejected" `Quick
      test_sort_mismatch_rejected;
    Alcotest.test_case "prefetch noise determinism" `Quick
      test_prefetch_noise_is_deterministic_per_genome;
    Alcotest.test_case "study machine models" `Quick test_study_machines;
    Alcotest.test_case "scheduling study (extension)" `Quick test_sched_study;
    Alcotest.test_case "miniature specialization" `Slow
      test_tiny_specialization;
    Alcotest.test_case "miniature DSS evolution" `Slow
      test_tiny_general_purpose;
    Alcotest.test_case "cross validation" `Slow test_cross_validation;
    Alcotest.test_case "heuristics file round-trip" `Quick
      test_heuristics_file_roundtrip;
    Alcotest.test_case "heuristics file partial/off" `Quick
      test_heuristics_file_partial_and_off;
    Alcotest.test_case "heuristics file rejects garbage" `Quick
      test_heuristics_file_rejects_garbage;
  ]
