(* Sanity tests over the benchmark suite itself: registry consistency,
   dataset shapes, train/novel distinctness, and dynamic size bounds. *)

let test_names_unique () =
  let names = Benchmarks.Registry.names in
  Alcotest.(check int) "no duplicate names"
    (List.length names)
    (List.length (List.sort_uniq compare names))

let test_suite_lists_resolve () =
  List.iter
    (fun (tag, l) ->
      List.iter
        (fun n ->
          match Benchmarks.Registry.find n with
          | _ -> ()
          | exception Invalid_argument _ ->
            Alcotest.failf "%s references unknown benchmark %s" tag n)
        l)
    [
      ("hb-spec", Benchmarks.Registry.hyperblock_specialize);
      ("hb-train", Benchmarks.Registry.hyperblock_train);
      ("hb-test", Benchmarks.Registry.hyperblock_test);
      ("ra-spec", Benchmarks.Registry.regalloc_specialize);
      ("ra-train", Benchmarks.Registry.regalloc_train);
      ("ra-test", Benchmarks.Registry.regalloc_test);
      ("pf-spec", Benchmarks.Registry.prefetch_specialize);
      ("pf-train", Benchmarks.Registry.prefetch_train);
      ("pf-test", Benchmarks.Registry.prefetch_test);
    ]

(* The paper's protocol needs disjoint training and test sets. *)
let test_train_test_disjoint () =
  let disjoint tag a b =
    List.iter
      (fun n ->
        if List.mem n b then
          Alcotest.failf "%s: %s appears in both train and test" tag n)
      a
  in
  disjoint "hyperblock" Benchmarks.Registry.hyperblock_train
    Benchmarks.Registry.hyperblock_test;
  disjoint "regalloc" Benchmarks.Registry.regalloc_train
    Benchmarks.Registry.regalloc_test;
  disjoint "prefetch" Benchmarks.Registry.prefetch_train
    Benchmarks.Registry.prefetch_test

let test_datasets_fit_globals () =
  List.iter
    (fun (b : Benchmarks.Bench.t) ->
      let prog = Frontend.Minic.compile b.Benchmarks.Bench.source in
      List.iter
        (fun dataset ->
          List.iter
            (fun (gname, data) ->
              match Ir.Func.find_global prog gname with
              | g ->
                if Array.length data > g.Ir.Func.gsize then
                  Alcotest.failf "%s: dataset %s (%d) exceeds global size %d"
                    b.Benchmarks.Bench.name gname (Array.length data)
                    g.Ir.Func.gsize
              | exception Invalid_argument _ ->
                Alcotest.failf "%s: dataset names unknown global %s"
                  b.Benchmarks.Bench.name gname)
            (Benchmarks.Bench.overrides b dataset))
        [ Benchmarks.Bench.Train; Benchmarks.Bench.Novel ])
    Benchmarks.Registry.all

let test_train_novel_differ () =
  (* The figures compare train-data vs novel-data runs, so the datasets
     must actually differ. *)
  List.iter
    (fun (b : Benchmarks.Bench.t) ->
      Alcotest.(check bool)
        (b.Benchmarks.Bench.name ^ " train <> novel")
        true
        (b.Benchmarks.Bench.train <> b.Benchmarks.Bench.novel))
    Benchmarks.Registry.all

let test_dynamic_sizes_bounded () =
  (* Every benchmark must fit comfortably in the interpreter's fuel budget
     on both datasets, and be big enough for profiles to mean anything. *)
  List.iter
    (fun (b : Benchmarks.Bench.t) ->
      let prog = Frontend.Minic.compile b.Benchmarks.Bench.source in
      let layout = Profile.Layout.prepare prog in
      List.iter
        (fun dataset ->
          let r =
            Profile.Interp.run
              ~overrides:(Benchmarks.Bench.overrides b dataset)
              layout
          in
          let steps = r.Profile.Interp.steps in
          if steps < 10_000 || steps > 25_000_000 then
            Alcotest.failf "%s: %d dynamic instructions out of range"
              b.Benchmarks.Bench.name steps)
        [ Benchmarks.Bench.Train; Benchmarks.Bench.Novel ])
    Benchmarks.Registry.all

let test_data_generators_deterministic () =
  Alcotest.(check bool) "ints deterministic" true
    (Benchmarks.Data.ints ~seed:5 ~n:64 ~bound:100
    = Benchmarks.Data.ints ~seed:5 ~n:64 ~bound:100);
  Alcotest.(check bool) "seeds matter" true
    (Benchmarks.Data.ints ~seed:5 ~n:64 ~bound:100
    <> Benchmarks.Data.ints ~seed:6 ~n:64 ~bound:100);
  Array.iter
    (fun v ->
      Alcotest.(check bool) "within bound" true (v >= 0.0 && v < 100.0))
    (Benchmarks.Data.ints ~seed:7 ~n:256 ~bound:100);
  Array.iter
    (fun v ->
      Alcotest.(check bool) "floats within range" true (v >= -2.0 && v < 3.0))
    (Benchmarks.Data.floats ~seed:8 ~n:256 ~lo:(-2.0) ~hi:3.0)

let test_runs_generator_has_runs () =
  let a = Benchmarks.Data.runs ~seed:9 ~n:1000 ~bound:50 ~max_run:8 in
  let repeats = ref 0 in
  for i = 1 to 999 do
    if a.(i) = a.(i - 1) then incr repeats
  done;
  Alcotest.(check bool)
    (Printf.sprintf "adjacent repeats common (%d/999)" !repeats)
    true
    (!repeats > 300)

let test_skewed_generator_is_skewed () =
  let a = Benchmarks.Data.skewed ~seed:10 ~n:4000 ~bound:100 in
  let below = Array.fold_left (fun acc v -> if v < 50.0 then acc + 1 else acc) 0 a in
  Alcotest.(check bool)
    (Printf.sprintf "small values dominate (%d/4000 below median)" below)
    true
    (below > 2600)

let suite =
  [
    Alcotest.test_case "names unique" `Quick test_names_unique;
    Alcotest.test_case "suite lists resolve" `Quick test_suite_lists_resolve;
    Alcotest.test_case "train/test sets disjoint" `Quick
      test_train_test_disjoint;
    Alcotest.test_case "datasets fit their globals" `Slow
      test_datasets_fit_globals;
    Alcotest.test_case "train and novel datasets differ" `Quick
      test_train_novel_differ;
    Alcotest.test_case "dynamic sizes bounded" `Slow
      test_dynamic_sizes_bounded;
    Alcotest.test_case "data generators deterministic" `Quick
      test_data_generators_deterministic;
    Alcotest.test_case "runs generator" `Quick test_runs_generator_has_runs;
    Alcotest.test_case "skewed generator" `Quick test_skewed_generator_is_skewed;
  ]
