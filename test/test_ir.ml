(* Tests for the IR: CFG analyses (dominators, postdominators, loops) and
   the validator. *)

(* Build a function from a list of (label, instr-count, terminator). *)
let mk_func blocks : Ir.Func.t =
  let f =
    {
      Ir.Func.fname = "f";
      params = [];
      blocks = [];
      next_reg = 64;
      next_pred = 1;
      next_instr = 0;
      frame_size = 0;
    }
  in
  f.Ir.Func.blocks <-
    List.map
      (fun (label, term) -> { Ir.Func.blabel = label; instrs = []; term })
      blocks;
  f

let diamond () =
  (* entry -> (a | b) -> join -> exit *)
  mk_func
    [
      ("entry", Ir.Func.Br (Ir.Types.Reg 1, "a", "b"));
      ("a", Ir.Func.Jmp "join");
      ("b", Ir.Func.Jmp "join");
      ("join", Ir.Func.Jmp "exit");
      ("exit", Ir.Func.Ret None);
    ]

let test_dominators () =
  let g = Ir.Cfg.build (diamond ()) in
  let idom = Ir.Cfg.dominators g in
  let i l = Ir.Cfg.index_of g l in
  Alcotest.(check int) "entry has no idom" (-1) idom.(i "entry");
  Alcotest.(check int) "a dominated by entry" (i "entry") idom.(i "a");
  Alcotest.(check int) "b dominated by entry" (i "entry") idom.(i "b");
  Alcotest.(check int) "join dominated by entry" (i "entry") idom.(i "join");
  Alcotest.(check int) "exit dominated by join" (i "join") idom.(i "exit")

let test_postdominators () =
  let g = Ir.Cfg.build (diamond ()) in
  let ipdom = Ir.Cfg.postdominators g in
  let i l = Ir.Cfg.index_of g l in
  Alcotest.(check int) "entry postdominated by join" (i "join")
    ipdom.(i "entry");
  Alcotest.(check int) "a postdominated by join" (i "join") ipdom.(i "a");
  Alcotest.(check int) "join postdominated by exit" (i "exit")
    ipdom.(i "join");
  Alcotest.(check int) "exit has no ipdom" (-1) ipdom.(i "exit")

(* Multiple rets: the exact failure shape that used to hang the
   Cooper-Harvey-Kennedy intersection before the virtual exit node. *)
let test_postdominators_multi_exit () =
  let f =
    mk_func
      [
        ("entry", Ir.Func.Br (Ir.Types.Reg 1, "a", "b"));
        ("a", Ir.Func.Ret None);
        ("b", Ir.Func.Br (Ir.Types.Reg 2, "c", "d"));
        ("c", Ir.Func.Ret None);
        ("d", Ir.Func.Ret None);
      ]
  in
  let g = Ir.Cfg.build f in
  let ipdom = Ir.Cfg.postdominators g in
  let i l = Ir.Cfg.index_of g l in
  (* No single block postdominates entry; each Ret is an exit. *)
  Alcotest.(check int) "entry ipdom is virtual (-1)" (-1) ipdom.(i "entry");
  Alcotest.(check int) "b ipdom is virtual (-1)" (-1) ipdom.(i "b");
  Alcotest.(check int) "a is an exit" (-1) ipdom.(i "a")

let test_postdominators_self_loop () =
  (* A self-looping block with a side exit, the hyperblock shape. *)
  let f =
    mk_func
      [
        ("entry", Ir.Func.Jmp "loop");
        ("loop", Ir.Func.Br (Ir.Types.Reg 1, "loop", "done"));
        ("done", Ir.Func.Ret None);
      ]
  in
  let g = Ir.Cfg.build f in
  let ipdom = Ir.Cfg.postdominators g in
  let i l = Ir.Cfg.index_of g l in
  Alcotest.(check int) "loop postdominated by done" (i "done")
    ipdom.(i "loop")

let test_loops () =
  let f =
    mk_func
      [
        ("entry", Ir.Func.Jmp "header");
        ("header", Ir.Func.Br (Ir.Types.Reg 1, "body", "exit"));
        ("body", Ir.Func.Br (Ir.Types.Reg 2, "inner", "latch"));
        ("inner", Ir.Func.Br (Ir.Types.Reg 3, "inner", "latch"));
        ("latch", Ir.Func.Jmp "header");
        ("exit", Ir.Func.Ret None);
      ]
  in
  let g = Ir.Cfg.build f in
  let loops = Ir.Cfg.loops g in
  Alcotest.(check int) "two loops" 2 (List.length loops);
  let depth = Ir.Cfg.loop_depth g in
  let i l = Ir.Cfg.index_of g l in
  Alcotest.(check int) "entry depth 0" 0 depth.(i "entry");
  Alcotest.(check int) "header depth 1" 1 depth.(i "header");
  Alcotest.(check int) "inner depth 2" 2 depth.(i "inner");
  Alcotest.(check int) "exit depth 0" 0 depth.(i "exit")

let test_successors_with_exits () =
  let f = diamond () in
  let entry = Ir.Func.find_block f "entry" in
  entry.Ir.Func.instrs <-
    [ Ir.Instr.make ~id:0 ~guard:1 (Ir.Instr.Exit "exit") ];
  Alcotest.(check (list string)) "exit targets included"
    [ "exit"; "a"; "b" ]
    (Ir.Func.successors entry)

(* --- Validator ------------------------------------------------------------ *)

let valid_program () : Ir.Func.program =
  let f = diamond () in
  { Ir.Func.funcs = [ f ]; globals = []; main = "f" }

let test_validate_accepts () =
  Alcotest.(check int) "no errors" 0
    (List.length (Ir.Validate.check_program (valid_program ())))

let test_validate_catches () =
  let errors p = List.length (Ir.Validate.check_program p) in
  (* Unknown branch target. *)
  let p1 = valid_program () in
  (Ir.Func.find_block (List.hd p1.Ir.Func.funcs) "a").Ir.Func.term <-
    Ir.Func.Jmp "nowhere";
  Alcotest.(check bool) "unknown label" true (errors p1 > 0);
  (* Out-of-range register. *)
  let p2 = valid_program () in
  (Ir.Func.find_block (List.hd p2.Ir.Func.funcs) "a").Ir.Func.instrs <-
    [ Ir.Instr.make ~id:0 (Ir.Instr.Mov (9999, Ir.Types.Imm 1)) ];
  Alcotest.(check bool) "register out of range" true (errors p2 > 0);
  (* Call to an unknown function. *)
  let p3 = valid_program () in
  (Ir.Func.find_block (List.hd p3.Ir.Func.funcs) "a").Ir.Func.instrs <-
    [ Ir.Instr.make ~id:0 (Ir.Instr.Call (None, "ghost", [], Ir.Instr.Impure)) ];
  Alcotest.(check bool) "unknown callee" true (errors p3 > 0);
  (* Missing main. *)
  let p4 = { (valid_program ()) with Ir.Func.main = "nope" } in
  Alcotest.(check bool) "missing main" true (errors p4 > 0)

let test_validate_rejects_recursion () =
  let f = mk_func [ ("entry", Ir.Func.Ret None) ] in
  (Ir.Func.find_block f "entry").Ir.Func.instrs <-
    [ Ir.Instr.make ~id:0 (Ir.Instr.Call (None, "f", [], Ir.Instr.Impure)) ];
  let p = { Ir.Func.funcs = [ f ]; globals = []; main = "f" } in
  Alcotest.(check bool) "self-recursion rejected" true
    (List.length (Ir.Validate.check_program p) > 0)

(* --- Instruction metadata -------------------------------------------------- *)

let test_defs_uses () =
  let k = Ir.Instr.Ibin (Ir.Types.Add, 3, Ir.Types.Reg 1, Ir.Types.Reg 2) in
  Alcotest.(check (option int)) "def" (Some 3) (Ir.Instr.def k);
  Alcotest.(check (list int)) "uses" [ 1; 2 ] (Ir.Instr.uses k);
  let store =
    Ir.Instr.Store
      ( { Ir.Instr.base = Ir.Types.Reg 4; offset = Ir.Types.Reg 5;
          space = Ir.Instr.Global "g"; hazard = false },
        Ir.Types.Reg 6 )
  in
  Alcotest.(check (option int)) "store defs nothing" None (Ir.Instr.def store);
  Alcotest.(check (list int)) "store uses value+addr" [ 6; 4; 5 ]
    (Ir.Instr.uses store);
  let pdef = Ir.Instr.Pdef (Ir.Types.Ceq, 2, 3, Ir.Types.Reg 1, Ir.Types.Imm 0) in
  Alcotest.(check (list int)) "pdef pred defs" [ 2; 3 ] (Ir.Instr.pred_defs pdef);
  let guarded = Ir.Instr.make ~id:0 ~guard:5 (Ir.Instr.Mov (1, Ir.Types.Imm 0)) in
  Alcotest.(check (list int)) "guard is a pred use" [ 5 ]
    (Ir.Instr.pred_uses guarded)

let test_latencies_table3 () =
  (* Table 3: multiplies 3 cycles, divides 8, loads 2, fp 3. *)
  let lat k = Ir.Instr.latency k in
  Alcotest.(check int) "imul" 3
    (lat (Ir.Instr.Ibin (Ir.Types.Mul, 1, Ir.Types.Reg 2, Ir.Types.Reg 3)));
  Alcotest.(check int) "idiv" 8
    (lat (Ir.Instr.Ibin (Ir.Types.Div, 1, Ir.Types.Reg 2, Ir.Types.Reg 3)));
  Alcotest.(check int) "iadd" 1
    (lat (Ir.Instr.Ibin (Ir.Types.Add, 1, Ir.Types.Reg 2, Ir.Types.Reg 3)));
  Alcotest.(check int) "fadd" 3
    (lat (Ir.Instr.Fbin (Ir.Types.Fadd, 1, Ir.Types.Reg 2, Ir.Types.Reg 3)));
  Alcotest.(check int) "fdiv" 8
    (lat (Ir.Instr.Fbin (Ir.Types.Fdiv, 1, Ir.Types.Reg 2, Ir.Types.Reg 3)))

let suite =
  [
    Alcotest.test_case "dominators on a diamond" `Quick test_dominators;
    Alcotest.test_case "postdominators on a diamond" `Quick test_postdominators;
    Alcotest.test_case "postdominators with several rets" `Quick
      test_postdominators_multi_exit;
    Alcotest.test_case "postdominators on a self loop" `Quick
      test_postdominators_self_loop;
    Alcotest.test_case "natural loops and depth" `Quick test_loops;
    Alcotest.test_case "successors include side exits" `Quick
      test_successors_with_exits;
    Alcotest.test_case "validator accepts valid IR" `Quick test_validate_accepts;
    Alcotest.test_case "validator rejects broken IR" `Quick test_validate_catches;
    Alcotest.test_case "validator rejects recursion" `Quick
      test_validate_rejects_recursion;
    Alcotest.test_case "instruction defs/uses" `Quick test_defs_uses;
    Alcotest.test_case "table 3 latencies" `Quick test_latencies_table3;
  ]
