(* Tests for the sharded fitness store underneath the evaluator's disk
   cache: digest addressing, per-shard locking under concurrent writers
   (on disjoint shards and on one colliding shard), compaction of
   damaged shards and its idempotence, legacy single-file reading, and
   parameter validation. *)

module S = Driver.Shardstore

let with_dir tag f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "metaopt-shardstore-%s-%d" tag (Unix.getpid ()))
  in
  let rec rm_rf path =
    match Unix.lstat path with
    | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun x -> rm_rf (Filename.concat path x)) (Sys.readdir path);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
    | _ -> ( try Sys.remove path with Sys_error _ -> ())
    | exception Unix.Unix_error _ -> ()
  in
  rm_rf dir;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* A crafted 32-hex-char digest whose first byte — and so, at 16 shards,
   whose shard — is [prefix]. *)
let digest_in prefix n = Printf.sprintf "%02x%030x" prefix n

let read_lines path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in path in
    let rec go acc =
      match input_line ic with
      | line -> go (line :: acc)
      | exception End_of_file ->
        close_in ic;
        List.rev acc
    in
    go []
  end

let whole_line line =
  match String.index_opt line ' ' with
  | Some 32 ->
    float_of_string_opt (String.sub line 33 (String.length line - 33)) <> None
  | _ -> false

let test_addressing () =
  with_dir "addr" @@ fun dir ->
  let s = S.open_store dir in
  Alcotest.(check int) "default shard count" 16 (S.shards s);
  (* first-byte addressing: at 16 shards, prefix i lands in shard i *)
  for i = 0 to 15 do
    Alcotest.(check int)
      (Printf.sprintf "prefix %02x" i)
      i
      (S.shard_of s (digest_in i 7))
  done;
  Alcotest.(check int) "prefix wraps mod shards" 0 (S.shard_of s (digest_in 16 7));
  (* one entry per shard: each shard file holds exactly its line, and
     awkward values round-trip exactly through the hex-float rendering *)
  let value i = 1.0 +. (Float.of_int i /. 3.0) in
  S.append s (List.init 16 (fun i -> (digest_in i i, value i)));
  for i = 0 to 15 do
    let lines = read_lines (S.shard_file s i) in
    Alcotest.(check int) (Printf.sprintf "shard %d holds one line" i) 1
      (List.length lines)
  done;
  let s2 = S.open_store dir in
  for i = 0 to 15 do
    Alcotest.(check (float 0.0))
      (Printf.sprintf "entry %d round-trips" i)
      (value i)
      (Option.get (S.find s2 (digest_in i i)))
  done;
  (* a different shard count moves entries but still finds them on load
     (load reads every shard file) *)
  let s4 = S.open_store ~shards:4 dir in
  Alcotest.(check int) "ff at 4 shards" 3 (S.shard_of s4 (digest_in 0xff 0));
  Alcotest.(check (float 0.0)) "entries survive a count change" (value 9)
    (Option.get (S.find s4 (digest_in 9 9)))

(* Two forked writers on the same store.  [spread = false] sends both
   writers to one shard (every append contends on that shard's lock);
   [spread = true] gives each writer its own shard (appends never
   contend).  Either way every line must survive whole and every value
   must round-trip. *)
let concurrent_writers ~spread () =
  if Gp.Parmap.available then begin
    let tag = if spread then "disjoint" else "colliding" in
    with_dir tag @@ fun dir ->
    let n = 40 in
    let prefix_of w = if spread then w else 0 in
    let value w i = Float.of_int ((w * 1000) + i) /. 7.0 in
    flush stdout;
    flush stderr;
    let writer w =
      match Unix.fork () with
      | 0 ->
        (try
           let s = S.open_store dir in
           (* one append call per entry, to maximize interleaving *)
           for i = 0 to n - 1 do
             S.append s [ (digest_in (prefix_of w) ((w * 1000) + i), value w i) ]
           done;
           Unix._exit (if S.write_errors s = 0 then 0 else 1)
         with _ -> Unix._exit 1)
      | pid -> pid
    in
    let p1 = writer 1 in
    let p2 = writer 2 in
    let clean pid =
      match Unix.waitpid [] pid with
      | _, Unix.WEXITED 0 -> true
      | _ -> false
    in
    Alcotest.(check bool) "writer 1 exited cleanly" true (clean p1);
    Alcotest.(check bool) "writer 2 exited cleanly" true (clean p2);
    let s = S.open_store dir in
    (if spread then begin
       Alcotest.(check int) "writer 1's shard complete" n
         (List.length (read_lines (S.shard_file s 1)));
       Alcotest.(check int) "writer 2's shard complete" n
         (List.length (read_lines (S.shard_file s 2)))
     end
     else
       Alcotest.(check int) "both writers' lines in the one shard" (2 * n)
         (List.length (read_lines (S.shard_file s 0))));
    List.iter
      (fun w ->
        let file = S.shard_file s (prefix_of w) in
        List.iter
          (fun line ->
            if not (whole_line line) then
              Alcotest.failf "torn line %S in %s" line file)
          (read_lines file);
        for i = 0 to n - 1 do
          Alcotest.(check (float 0.0))
            (Printf.sprintf "writer %d entry %d round-trips" w i)
            (value w i)
            (Option.get (S.find s (digest_in (prefix_of w) ((w * 1000) + i))))
        done)
      [ 1; 2 ];
    Alcotest.(check int) "no compaction was needed" 0 (S.evictions s)
  end

let test_concurrent_disjoint () = concurrent_writers ~spread:true ()
let test_concurrent_colliding () = concurrent_writers ~spread:false ()

let test_compaction_idempotent () =
  with_dir "compact" @@ fun dir ->
  (* seed one shard with a keeper, a superseded duplicate, and a torn
     final line (a killed writer's half-append) *)
  let s = S.open_store dir in
  let d_keep = digest_in 5 1 and d_dup = digest_in 5 2 in
  let oc = open_out (S.shard_file s 5) in
  Printf.fprintf oc "%s %h\n" d_keep 2.5;
  Printf.fprintf oc "%s %h\n" d_dup 1.0;
  Printf.fprintf oc "%s %h\n" d_dup 9.0;
  output_string oc "00112233445566778899aabbccddeef";
  close_out oc;
  (* first open: the dup and the torn line are evicted, last write wins,
     and the shard is rewritten with only whole lines *)
  let s1 = S.open_store dir in
  Alcotest.(check int) "two lines evicted" 2 (S.evictions s1);
  Alcotest.(check (float 0.0)) "keeper served" 2.5
    (Option.get (S.find s1 d_keep));
  Alcotest.(check (float 0.0)) "last write wins for the dup" 9.0
    (Option.get (S.find s1 d_dup));
  let compacted = read_lines (S.shard_file s1 5) in
  Alcotest.(check int) "compacted to the survivors" 2 (List.length compacted);
  List.iter
    (fun l ->
      if not (whole_line l) then Alcotest.failf "uncompacted line %S" l)
    compacted;
  (* second open: nothing left to evict and the file is untouched —
     compaction is idempotent *)
  let s2 = S.open_store dir in
  Alcotest.(check int) "clean reload evicts nothing" 0 (S.evictions s2);
  Alcotest.(check (list string)) "file byte-stable" compacted
    (read_lines (S.shard_file s2 5));
  Alcotest.(check (float 0.0)) "still served after reload" 9.0
    (Option.get (S.find s2 d_dup))

let test_legacy_read () =
  with_dir "legacy" @@ fun dir ->
  Unix.mkdir dir 0o755;
  let legacy = S.legacy_file dir in
  let d_old = digest_in 3 42 in
  let oc = open_out legacy in
  Printf.fprintf oc "%s %h\n" d_old 4.25;
  output_string oc "not a cache line\n";
  close_out oc;
  let before = read_lines legacy in
  let s = S.open_store dir in
  Alcotest.(check (float 0.0)) "legacy entry served" 4.25
    (Option.get (S.find s d_old));
  (* legacy damage is skipped, never compacted, and appends go to the
     shards — the legacy file stays byte-identical *)
  Alcotest.(check int) "legacy damage is not an eviction" 0 (S.evictions s);
  S.append s [ (digest_in 3 43, 1.5) ];
  Alcotest.(check (list string)) "legacy file untouched" before
    (read_lines legacy);
  Alcotest.(check int) "append went to the shard" 1
    (List.length (read_lines (S.shard_file s 3)))

(* Regression: a signal landing while an append blocks in lockf (or
   mid-write) used to raise Unix_error (EINTR, ...) out of the append
   path and permanently degrade the shard — or, worse, the swallowed
   lockf failure let the append proceed unlocked.  Here a forked child
   holds the shard's lock while the parent appends under a SIGALRM storm
   (interval timer into a no-op handler; timers are not inherited across
   fork, so only the parent is stormed): the parent's lock wait is
   interrupted over and over and must be restarted, never abandoned and
   never bypassed. *)
let test_eintr_storm_append () =
  if Gp.Parmap.available then begin
    with_dir "eintr" @@ fun dir ->
    let s = S.open_store dir in
    (* materialize the shard file so the child can lock it *)
    S.append s [ (digest_in 4 0, 0.5) ];
    let path = S.shard_file s 4 in
    let r, w = Unix.pipe () in
    flush stdout;
    flush stderr;
    match Unix.fork () with
    | 0 ->
      (try
         Unix.close r;
         let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
         Unix.lockf fd Unix.F_LOCK 0;
         (* tell the parent the lock is held, then sit on it *)
         ignore (Unix.write w (Bytes.of_string "k") 0 1);
         ignore (Unix.select [] [] [] 0.4);
         Unix._exit 0
       with _ -> Unix._exit 1)
    | pid ->
      Unix.close w;
      ignore (Unix.read r (Bytes.create 1) 0 1);
      Unix.close r;
      let old_handler =
        Sys.signal Sys.sigalrm (Sys.Signal_handle (fun _ -> ()))
      in
      let storm = { Unix.it_interval = 0.002; it_value = 0.002 } in
      ignore (Unix.setitimer Unix.ITIMER_REAL storm);
      Fun.protect
        ~finally:(fun () ->
          ignore
            (Unix.setitimer Unix.ITIMER_REAL
               { Unix.it_interval = 0.0; it_value = 0.0 });
          Sys.set_signal Sys.sigalrm old_handler)
        (fun () ->
          (* blocks on the child's lock; the storm interrupts the wait *)
          for i = 1 to 8 do
            S.append s [ (digest_in 4 i, Float.of_int i /. 3.0) ]
          done);
      ignore (Unix.waitpid [] pid);
      Alcotest.(check int) "no write errors under the storm" 0
        (S.write_errors s);
      Alcotest.(check bool) "no shard degraded" false (S.mem_any_degraded s);
      List.iter
        (fun line ->
          if not (whole_line line) then Alcotest.failf "torn line %S" line)
        (read_lines path);
      let s2 = S.open_store dir in
      Alcotest.(check int) "every append persisted whole" 9
        (List.length (read_lines path));
      Alcotest.(check int) "reload evicts nothing" 0 (S.evictions s2);
      for i = 0 to 8 do
        Alcotest.(check (float 0.0))
          (Printf.sprintf "entry %d round-trips" i)
          (if i = 0 then 0.5 else Float.of_int i /. 3.0)
          (Option.get (S.find s2 (digest_in 4 i)))
      done
  end

let arm_plan spec =
  match Gp.Chaos.plan_of_string ~seed:0 spec with
  | Ok plan -> Gp.Chaos.arm plan
  | Error e -> Alcotest.failf "bad chaos plan %S: %s" spec e

(* Regression: a persistent lockf failure used to be swallowed and the
   group written unlocked.  Now the one append is skipped (counted,
   memo keeps the value), the file never sees an unlocked write, and the
   shard is not degraded — the next append takes the lock again. *)
let test_lock_failure_skips_append () =
  with_dir "lockfail" @@ fun dir ->
  Fun.protect ~finally:Gp.Chaos.disarm @@ fun () ->
  (* the second store-wide append's lock fails persistently *)
  arm_plan "evaluator.cache_lock:2@1=raise:enolck";
  let s = S.open_store dir in
  let d1 = digest_in 7 1 and d2 = digest_in 7 2 and d3 = digest_in 7 3 in
  S.append s [ (d1, 1.5) ];
  S.append s [ (d2, 2.5) ];
  (* skipped, not written unlocked *)
  S.append s [ (d3, 3.5) ];
  Alcotest.(check int) "the skipped append is counted" 1 (S.write_errors s);
  Alcotest.(check bool) "shard not degraded" false (S.mem_any_degraded s);
  Alcotest.(check (float 0.0)) "memo still serves the skipped value" 2.5
    (Option.get (S.find s d2));
  let lines = read_lines (S.shard_file s 7) in
  Alcotest.(check int) "only the locked appends reached disk" 2
    (List.length lines);
  List.iter
    (fun l -> if not (whole_line l) then Alcotest.failf "torn line %S" l)
    lines;
  Gp.Chaos.disarm ();
  let s2 = S.open_store dir in
  Alcotest.(check (float 0.0)) "first append persisted" 1.5
    (Option.get (S.find s2 d1));
  Alcotest.(check (float 0.0)) "post-failure append persisted" 3.5
    (Option.get (S.find s2 d3));
  Alcotest.(check bool) "skipped value is gone after reopen" true
    (S.find s2 d2 = None)

(* An injected EINTR out of the first lock wait on every append: the
   retry discipline must reacquire and write locked, with no errors. *)
let test_lock_eintr_injected () =
  with_dir "lockeintr" @@ fun dir ->
  Fun.protect ~finally:Gp.Chaos.disarm @@ fun () ->
  arm_plan "evaluator.cache_lock@1=raise:eintr";
  let s = S.open_store dir in
  for i = 1 to 5 do
    S.append s [ (digest_in 9 i, Float.of_int i) ]
  done;
  Alcotest.(check int) "interrupted locks retried, not failed" 0
    (S.write_errors s);
  Alcotest.(check int) "every append landed" 5
    (List.length (read_lines (S.shard_file s 9)));
  Gp.Chaos.disarm ();
  let s2 = S.open_store dir in
  Alcotest.(check int) "reload evicts nothing" 0 (S.evictions s2)

let test_validation () =
  with_dir "valid" @@ fun dir ->
  let expect_invalid name f =
    match f () with
    | (_ : S.t) -> Alcotest.failf "%s: expected Invalid_argument" name
    | exception Invalid_argument _ -> ()
  in
  expect_invalid "shards = 0" (fun () -> S.open_store ~shards:0 dir);
  expect_invalid "shards = 257" (fun () -> S.open_store ~shards:257 dir);
  let s = S.open_store ~shards:256 dir in
  Alcotest.(check int) "256 shards accepted" 256 (S.shards s);
  Alcotest.(check bool) "healthy" false (S.mem_any_degraded s)

let suite =
  [
    Alcotest.test_case "digest addressing" `Quick test_addressing;
    Alcotest.test_case "concurrent writers, disjoint shards" `Quick
      test_concurrent_disjoint;
    Alcotest.test_case "concurrent writers, colliding shard" `Quick
      test_concurrent_colliding;
    Alcotest.test_case "compaction idempotent" `Quick
      test_compaction_idempotent;
    Alcotest.test_case "legacy single-file read" `Quick test_legacy_read;
    Alcotest.test_case "EINTR storm during contended append" `Quick
      test_eintr_storm_append;
    Alcotest.test_case "persistent lock failure skips the append" `Quick
      test_lock_failure_skips_append;
    Alcotest.test_case "injected lock EINTR is retried" `Quick
      test_lock_eintr_injected;
    Alcotest.test_case "validation" `Quick test_validation;
  ]
