(* Test aggregator: one alcotest binary covering every library. *)

let () =
  Alcotest.run "metaopt"
    [
      ("gp", Test_gp.suite);
      ("telemetry", Test_telemetry.suite);
      ("parmap", Test_parmap.suite);
      ("shardstore", Test_shardstore.suite);
      ("faults", Test_faults.suite);
      ("checkpoint", Test_checkpoint.suite);
      ("ir", Test_ir.suite);
      ("frontend", Test_frontend.suite);
      ("opt", Test_opt.suite);
      ("profile", Test_profile.suite);
      ("predication", Test_predication.suite);
      ("machine", Test_machine.suite);
      ("sched", Test_sched.suite);
      ("passes", Test_passes.suite);
      ("driver", Test_driver.suite);
      ("properties", Test_properties.suite);
      ("benchmarks", Test_benchmarks.suite);
      ("regalloc-unit", Test_regalloc_unit.suite);
      ("prefetch-unit", Test_prefetch_unit.suite);
      ("misc", Test_misc.suite);
      ("fastpath", Test_fastpath.suite);
      ("fuzz", Test_fuzz.suite);
      ("serve", Test_serve.suite);
      (* last: its domains tests retire the fork backend for the process *)
      ("chaos", Test_chaos.suite);
    ]
