(* Tests for the telemetry core and its instrumentation hooks: the
   disabled path must be a strict no-op, JSONL records must round-trip
   through the bundled JSON codec, histogram percentiles are exact, and
   the records emitted by the evolution/pool/evaluator layers must agree
   with what those layers report in-process. *)

module T = Gp.Telemetry

(* Every test leaves the process with no sink installed — the sink is
   global state shared with every other suite in this binary. *)
let with_memory_sink f =
  let sink, records = T.memory_sink () in
  T.set_sink (Some sink);
  Fun.protect ~finally:(fun () -> T.set_sink None) (fun () -> f records)

(* --- Disabled path ------------------------------------------------------- *)

let test_disabled_is_noop () =
  T.set_sink None;
  Alcotest.(check bool) "disabled without a sink" false (T.enabled ());
  (* Entry points must not touch the registry when disabled. *)
  T.reset ();
  T.incr "noop.counter";
  T.observe "noop.hist" 1.0;
  Alcotest.(check int) "incr is a no-op" 0
    (T.Counter.value (T.counter "noop.counter"));
  Alcotest.(check int) "observe is a no-op" 0
    (T.Histogram.count (T.histogram "noop.hist"));
  (* span is exactly [f ()]: value, exceptions, no histogram sample. *)
  Alcotest.(check int) "span returns f's value" 41 (T.span "noop.span" (fun () -> 41));
  Alcotest.check_raises "span propagates" (Failure "boom") (fun () ->
      T.span "noop.span" (fun () -> failwith "boom"));
  Alcotest.(check int) "span recorded nothing" 0
    (T.Histogram.count (T.histogram "noop.span"))

let test_enabled_records () =
  with_memory_sink (fun records ->
      Alcotest.(check bool) "enabled with a sink" true (T.enabled ());
      T.incr ~by:3 "on.counter";
      T.observe "on.hist" 2.5;
      Alcotest.(check int) "counter bumped" 3
        (T.Counter.value (T.counter "on.counter"));
      Alcotest.(check int) "histogram fed" 1
        (T.Histogram.count (T.histogram "on.hist"));
      ignore (T.span "on.span" (fun () -> ()));
      Alcotest.(check int) "span feeds its histogram" 1
        (T.Histogram.count (T.histogram "on.span"));
      T.emit ~kind:"probe" [ ("answer", T.Int 42) ];
      match records () with
      | [ r ] ->
        Alcotest.(check bool) "kind stamped" true
          (T.member "kind" r = Some (T.String "probe"));
        Alcotest.(check bool) "payload kept" true
          (T.member "answer" r = Some (T.Int 42));
        (match T.member "ts" r with
        | Some (T.Float ts) ->
          Alcotest.(check bool) "ts is a small offset" true (ts >= 0.0 && ts < 60.0)
        | _ -> Alcotest.fail "ts missing")
      | rs -> Alcotest.failf "expected 1 record, got %d" (List.length rs))

(* --- JSON codec ---------------------------------------------------------- *)

let test_json_roundtrip () =
  let doc =
    T.Obj
      [
        ("null", T.Null);
        ("t", T.Bool true);
        ("f", T.Bool false);
        ("int", T.Int (-42));
        ("float", T.Float 1.5);
        ("tiny", T.Float 1e-17);
        ("str", T.String "quotes \" backslash \\ newline \n tab \t");
        ("list", T.List [ T.Int 1; T.String "two"; T.List []; T.Obj [] ]);
        ("nested", T.Obj [ ("k", T.List [ T.Bool false; T.Null ]) ]);
      ]
  in
  (match T.json_of_string (T.json_to_string doc) with
  | Ok got -> Alcotest.(check bool) "round-trips structurally" true (got = doc)
  | Error e -> Alcotest.failf "re-parse failed: %s" e);
  (* Non-finite floats have no JSON form and serialize as null. *)
  Alcotest.(check string) "nan -> null" "null" (T.json_to_string (T.Float Float.nan));
  Alcotest.(check string) "inf -> null" "null"
    (T.json_to_string (T.Float Float.infinity));
  (* Malformed inputs are errors, not exceptions. *)
  List.iter
    (fun s ->
      match T.json_of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "parsed garbage %S" s)
    [ ""; "{"; "{\"a\":}"; "[1,]"; "tru"; "\"unterminated"; "{} trailing" ]

let test_jsonl_sink_file () =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "metaopt-telemetry-%d.jsonl" (Unix.getpid ()))
  in
  Fun.protect
    ~finally:(fun () ->
      T.set_sink None;
      if Sys.file_exists path then Sys.remove path)
    (fun () ->
      T.set_sink (Some (T.jsonl_sink path));
      T.emit ~kind:"a" [ ("v", T.Int 1) ];
      T.emit ~kind:"b" [ ("v", T.Float 2.0) ];
      T.set_sink None;
      let ic = open_in path in
      let rec lines acc =
        match input_line ic with
        | l -> lines (l :: acc)
        | exception End_of_file ->
          close_in ic;
          List.rev acc
      in
      let ls = lines [] in
      Alcotest.(check int) "one line per record" 2 (List.length ls);
      List.iter
        (fun l ->
          match T.json_of_string l with
          | Ok (T.Obj _) -> ()
          | Ok _ -> Alcotest.failf "non-object line %S" l
          | Error e -> Alcotest.failf "invalid JSONL line %S: %s" l e)
        ls)

(* --- Histogram ----------------------------------------------------------- *)

let test_histogram_percentiles () =
  let h = T.Histogram.create () in
  Alcotest.(check int) "empty count" 0 (T.Histogram.count h);
  Alcotest.(check (float 0.0)) "empty percentile" 0.0 (T.Histogram.percentile h 50.0);
  (* Insert out of order: percentiles must sort. *)
  List.iter (T.Histogram.add h) [ 3.0; 1.0; 4.0; 2.0 ];
  Alcotest.(check int) "count" 4 (T.Histogram.count h);
  Alcotest.(check (float 1e-9)) "sum" 10.0 (T.Histogram.sum h);
  Alcotest.(check (float 1e-9)) "mean" 2.5 (T.Histogram.mean h);
  Alcotest.(check (float 0.0)) "min" 1.0 (T.Histogram.min h);
  Alcotest.(check (float 0.0)) "max" 4.0 (T.Histogram.max h);
  Alcotest.(check (float 1e-9)) "p0" 1.0 (T.Histogram.percentile h 0.0);
  Alcotest.(check (float 1e-9)) "p50 interpolates" 2.5 (T.Histogram.percentile h 50.0);
  Alcotest.(check (float 1e-9)) "p100" 4.0 (T.Histogram.percentile h 100.0);
  (* Closest-rank interpolation at p95 over 4 samples: rank 2.85. *)
  Alcotest.(check (float 1e-9)) "p95" 3.85 (T.Histogram.percentile h 95.0);
  (* Growth past the initial capacity keeps everything. *)
  let big = T.Histogram.create () in
  for i = 1 to 10_000 do
    T.Histogram.add big (float_of_int i)
  done;
  Alcotest.(check int) "big count" 10_000 (T.Histogram.count big);
  Alcotest.(check (float 1e-6)) "big median" 5000.5
    (T.Histogram.percentile big 50.0)

(* --- Instrumented layers ------------------------------------------------- *)

let fs =
  Gp.Feature_set.make ~reals:[ "x"; "y"; "z" ] ~bools:[ "p"; "q" ]

let synthetic_eval g _case =
  match g with
  | Gp.Expr.Bool _ -> 0.0
  | Gp.Expr.Real e ->
    let env = Gp.Feature_set.empty_env fs in
    Gp.Feature_set.set_real fs env "x" 2.0;
    Gp.Feature_set.set_real fs env "y" 3.0;
    1.0 /. (1.0 +. Float.abs (Gp.Eval.real env e -. 7.0))

let synthetic_problem () =
  {
    Gp.Evolve.fs;
    sort = `Real;
    baseline = Some (Gp.Expr.Real (Gp.Sexp.parse_real fs "(add x y)"));
    n_cases = 1;
    case_name = (fun _ -> "synthetic");
    evaluator = Gp.Evolve.evaluator_of_fn synthetic_eval;
  }

(* The evolution loop emits one "generation" record per generation, and
   those records agree with result.history. *)
let test_generation_records_match_history () =
  with_memory_sink (fun records ->
      let r = Gp.Evolve.run ~params:Gp.Params.tiny (synthetic_problem ()) in
      let gens =
        List.filter
          (fun j -> T.member "kind" j = Some (T.String "generation"))
          (records ())
      in
      Alcotest.(check int) "one record per generation"
        (List.length r.Gp.Evolve.history)
        (List.length gens);
      List.iter2
        (fun (s : Gp.Evolve.generation_stats) j ->
          Alcotest.(check bool) "gen matches" true
            (T.member "gen" j = Some (T.Int s.Gp.Evolve.gen));
          Alcotest.(check bool) "best_fitness matches" true
            (T.member "best_fitness" j = Some (T.Float s.Gp.Evolve.best_fitness));
          Alcotest.(check bool) "best_expr matches" true
            (T.member "best_expr" j = Some (T.String s.Gp.Evolve.best_expr));
          match T.member "population" j with
          | Some (T.Int n) ->
            Alcotest.(check int) "population"
              Gp.Params.tiny.Gp.Params.population_size n
          | _ -> Alcotest.fail "population missing")
        r.Gp.Evolve.history gens)

(* Instrumentation must not perturb the run: a telemetered evolution is
   bit-identical to a silent one with the same seed. *)
let test_telemetry_does_not_perturb () =
  T.set_sink None;
  let silent = Gp.Evolve.run ~params:Gp.Params.tiny (synthetic_problem ()) in
  let loud =
    with_memory_sink (fun _ ->
        Gp.Evolve.run ~params:Gp.Params.tiny (synthetic_problem ()))
  in
  Alcotest.(check (float 0.0)) "same best fitness" silent.Gp.Evolve.best_fitness
    loud.Gp.Evolve.best_fitness;
  Alcotest.(check int) "same evaluation count" silent.Gp.Evolve.evaluations
    loud.Gp.Evolve.evaluations;
  List.iter2
    (fun (a : Gp.Evolve.generation_stats) (b : Gp.Evolve.generation_stats) ->
      Alcotest.(check string) "same champions" a.Gp.Evolve.best_expr
        b.Gp.Evolve.best_expr)
    silent.Gp.Evolve.history loud.Gp.Evolve.history

let test_pool_record () =
  if Gp.Parmap.available then
    with_memory_sink (fun records ->
        let outcomes, _ =
          Gp.Parmap.supervised ~jobs:2 (fun x -> x + 1) (Array.init 6 Fun.id)
        in
        Array.iteri
          (fun i o ->
            match o with
            | Gp.Parmap.Ok v -> Alcotest.(check int) "task value" (i + 1) v
            | _ -> Alcotest.failf "task %d failed" i)
          outcomes;
        let pools =
          List.filter
            (fun j -> T.member "kind" j = Some (T.String "pool"))
            (records ())
        in
        match pools with
        | [ p ] ->
          Alcotest.(check bool) "mode" true
            (T.member "mode" p = Some (T.String "supervised"));
          Alcotest.(check bool) "tasks" true
            (T.member "tasks" p = Some (T.Int 6));
          Alcotest.(check bool) "completed" true
            (T.member "completed" p = Some (T.Int 6));
          (match T.member "utilization" p with
          | Some (T.Float u) ->
            Alcotest.(check bool) "utilization in [0,1]" true (u >= 0.0 && u <= 1.0)
          | _ -> Alcotest.fail "utilization missing")
        | ps -> Alcotest.failf "expected 1 pool record, got %d" (List.length ps))

let test_cache_record () =
  with_memory_sink (fun records ->
      let e =
        Driver.Evaluator.create ~fs:Hyperblock.Features.feature_set
          ~scope:"telemetry/scope"
          ~case_name:(fun i -> "case" ^ string_of_int i)
          ~eval:(fun _ c -> 1.0 +. float_of_int c)
          ()
      in
      let g = Hyperblock.Baseline.genome in
      ignore (Driver.Evaluator.evaluate_batch e [| g |] ~cases:[ 0; 1 ]);
      ignore (Driver.Evaluator.evaluate_batch e [| g |] ~cases:[ 0; 1 ]);
      let caches =
        List.filter
          (fun j -> T.member "kind" j = Some (T.String "cache"))
          (records ())
      in
      Alcotest.(check int) "one record per batch" 2 (List.length caches);
      (match caches with
      | [ cold; warm ] ->
        Alcotest.(check bool) "cold misses" true
          (T.member "misses" cold = Some (T.Int 2));
        Alcotest.(check bool) "warm memo hits" true
          (T.member "memo_hits" warm = Some (T.Int 2));
        Alcotest.(check bool) "warm hit rate" true
          (T.member "hit_rate" warm = Some (T.Float 1.0))
      | _ -> assert false);
      (* The in-process classification agrees with the records. *)
      let cs = Driver.Evaluator.cache_stats e in
      Alcotest.(check int) "stats memo hits" 2 cs.Driver.Evaluator.memo_hits;
      Alcotest.(check int) "stats misses" 2 cs.Driver.Evaluator.misses)

let suite =
  [
    Alcotest.test_case "disabled sink is a no-op" `Quick test_disabled_is_noop;
    Alcotest.test_case "enabled sink records" `Quick test_enabled_records;
    Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "jsonl file sink" `Quick test_jsonl_sink_file;
    Alcotest.test_case "histogram percentiles" `Quick test_histogram_percentiles;
    Alcotest.test_case "generation records match history" `Quick
      test_generation_records_match_history;
    Alcotest.test_case "telemetry does not perturb runs" `Quick
      test_telemetry_does_not_perturb;
    Alcotest.test_case "pool record" `Quick test_pool_record;
    Alcotest.test_case "cache record" `Quick test_cache_record;
  ]
