(* Tests for the three heuristic-driven passes — hyperblock formation,
   register allocation and prefetch insertion — centred on the property
   that matters most: for ANY priority function, the compiled program
   computes exactly the output of the unoptimized reference.  Candidate
   heuristics may only change speed, never semantics. *)

let machine = Machine.Config.table3

let reference_output (b : Benchmarks.Bench.t) dataset =
  let prog = Frontend.Minic.compile b.Benchmarks.Bench.source in
  let layout = Profile.Layout.prepare prog in
  (Profile.Interp.run
     ~overrides:(Benchmarks.Bench.overrides b dataset)
     layout).Profile.Interp.output

(* A small set of benchmarks with diverse region shapes, kept cheap enough
   to compile under many candidate heuristics. *)
let subjects = [ "codrle4"; "rawcaudio"; "mpeg2dec"; "unepic"; "osdemo" ]

(* --- Hyperblock formation -------------------------------------------------- *)

let hb_fs = Hyperblock.Features.feature_set

(* A deliberately adversarial set of priority functions. *)
let adversarial_priorities =
  [
    "1.0";                                   (* merge everything *)
    "(sub 0.0 1.0)";                         (* merge nothing *)
    "exec_ratio";
    "(sub 0.0 num_ops)";
    "(div 1.0 dep_height)";
    "(tern mem_hazard (sub 0.0 5.0) num_paths)";
    "(mul predict_product exec_ratio)";
    "(sub num_branches num_ops_mean)";
  ]

let compile_with_priority (b : Benchmarks.Bench.t) pri_src =
  let prepared = Driver.Compiler.prepare b in
  let pri = Gp.Sexp.parse_real hb_fs pri_src in
  let heuristics =
    { (Driver.Compiler.baseline ()) with Driver.Compiler.hb_priority = pri }
  in
  Driver.Compiler.compile ~machine ~heuristics prepared

let test_hyperblock_semantics () =
  List.iter
    (fun name ->
      let b = Benchmarks.Registry.find name in
      let want = reference_output b Benchmarks.Bench.Train in
      List.iter
        (fun pri ->
          let prepared = Driver.Compiler.prepare b in
          let c = compile_with_priority b pri in
          Alcotest.(check int)
            (Printf.sprintf "%s / %s valid" name pri)
            0
            (List.length (Ir.Validate.check_program c.Driver.Compiler.prog));
          let r =
            Driver.Compiler.simulate ~machine ~dataset:Benchmarks.Bench.Train
              prepared c
          in
          Alcotest.(check int)
            (Printf.sprintf "%s under %s" name pri)
            (Profile.Interp.checksum want)
            r.Machine.Simulate.checksum)
        adversarial_priorities)
    subjects

let test_hyperblock_negative_priority_forms_nothing () =
  let b = Benchmarks.Registry.find "rawcaudio" in
  let c = compile_with_priority b "(sub 0.0 1.0)" in
  Alcotest.(check int) "no regions formed" 0
    c.Driver.Compiler.hb_stats.Hyperblock.Form.regions_formed

let test_hyperblock_merges_diamond () =
  (* A hand-built unpredictable diamond must be merged by the baseline and
     produce predicated code. *)
  let src =
    {| global int a[256];
       int main() {
         int i; int s = 0;
         for (i = 0; i < 256; i = i + 1) { a[i] = i * 37 % 2; }
         for (i = 0; i < 256; i = i + 1) {
           if (a[i]) { s = s + 3; } else { s = s - 1; }
         }
         emit(s);
         return 0; } |}
  in
  let prog = Frontend.Minic.compile src in
  Opt.Pipeline.run ~config:Opt.Pipeline.no_unroll prog;
  let layout = Profile.Layout.prepare prog in
  let prof = Profile.Prof.collect layout in
  let before = Profile.Interp.run layout in
  let stats =
    Hyperblock.Form.run ~machine ~prof ~priority:Hyperblock.Baseline.expr prog
  in
  Alcotest.(check bool) "merged at least one region" true
    (stats.Hyperblock.Form.regions_formed >= 1);
  (* The result contains predicated instructions. *)
  let predicated = ref 0 in
  List.iter
    (fun (f : Ir.Func.t) ->
      Ir.Func.iter_instrs f (fun _ i ->
          if i.Ir.Instr.guard <> Ir.Types.p_true then incr predicated))
    prog.Ir.Func.funcs;
  Alcotest.(check bool) "predicated instructions present" true (!predicated > 0);
  let after = Profile.Interp.run (Profile.Layout.prepare prog) in
  Alcotest.(check (list (float 0.0))) "semantics preserved"
    before.Profile.Interp.output after.Profile.Interp.output

let test_region_discovery_diamond () =
  let src =
    {| int main() {
         int x = 1;
         if (x > 0) { emit(1); } else { emit(2); }
         emit(3);
         return 0; } |}
  in
  let prog = Frontend.Minic.compile src in
  let f = Ir.Func.find_func prog "main" in
  let regions = Hyperblock.Region.discover f in
  Alcotest.(check int) "one hammock" 1 (List.length regions);
  let r = List.hd regions in
  Alcotest.(check int) "two paths" 2 (List.length r.Hyperblock.Region.paths);
  Alcotest.(check bool) "hammock kind" true
    (r.Hyperblock.Region.kind = `Hammock)

(* Random real-valued genomes as priorities: any expression the GP can
   construct must compile correctly. *)
let qcheck_hyperblock_random_priorities =
  let bench = Benchmarks.Registry.find "rawcaudio" in
  let want =
    Profile.Interp.checksum (reference_output bench Benchmarks.Bench.Train)
  in
  let prepared = Driver.Compiler.prepare bench in
  let gen =
    QCheck.Gen.map
      (fun seed ->
        let rng = Random.State.make [| seed |] in
        Gp.Gen.gen_real (Gp.Gen.default_config hb_fs) rng ~full:false 5)
      QCheck.Gen.int
  in
  let arb =
    QCheck.make ~print:(fun e -> Gp.Sexp.real_to_string hb_fs e) gen
  in
  QCheck.Test.make ~name:"random hyperblock priorities preserve semantics"
    ~count:25 arb (fun pri ->
      let heuristics =
        { (Driver.Compiler.baseline ()) with Driver.Compiler.hb_priority = pri }
      in
      let c = Driver.Compiler.compile ~machine ~heuristics prepared in
      let r =
        Driver.Compiler.simulate ~machine ~dataset:Benchmarks.Bench.Train
          prepared c
      in
      r.Machine.Simulate.checksum = want)

let test_loop_body_hyperblock_self_loop () =
  (* Merging an innermost loop body produces a single self-looping block
     with a predicated side exit — the shape Trimaran derives from
     unrolled loops. *)
  let src =
    {| global int a[128];
       int main() {
         int i; int s = 0;
         for (i = 0; i < 128; i = i + 1) {
           if (a[i] & 1) { s = s + a[i]; } else { s = s - 1; }
         }
         emit(s);
         return 0; } |}
  in
  let prog = Frontend.Minic.compile src in
  Opt.Pipeline.run ~config:Opt.Pipeline.no_unroll prog;
  let layout = Profile.Layout.prepare prog in
  let prof = Profile.Prof.collect layout in
  let before = Profile.Interp.run layout in
  let stats =
    Hyperblock.Form.run ~machine ~prof
      ~priority:(Gp.Sexp.parse_real hb_fs "1.0")
      prog
  in
  Alcotest.(check bool) "merged" true (stats.Hyperblock.Form.blocks_merged > 0);
  let f = Ir.Func.find_func prog "main" in
  let self_loops =
    List.filter
      (fun (b : Ir.Func.block) ->
        List.mem b.Ir.Func.blabel (Ir.Func.successors b))
      f.Ir.Func.blocks
  in
  Alcotest.(check bool) "a self-looping hyperblock exists" true
    (self_loops <> []);
  let hb = List.hd self_loops in
  Alcotest.(check bool) "with a predicated side exit" true
    (List.exists
       (fun (i : Ir.Instr.t) ->
         match i.Ir.Instr.kind with Ir.Instr.Exit _ -> true | _ -> false)
       hb.Ir.Func.instrs);
  let after = Profile.Interp.run (Profile.Layout.prepare prog) in
  Alcotest.(check (list (float 0.0))) "semantics preserved"
    before.Profile.Interp.output after.Profile.Interp.output

let test_tail_duplication_keeps_targeted_blocks () =
  (* Form hyperblocks over a benchmark with many overlapping regions and
     verify every Exit / terminator target still exists (tail duplication
     keeps blocks that remain targeted from outside the merged set). *)
  List.iter
    (fun name ->
      let b = Benchmarks.Registry.find name in
      let prepared = Driver.Compiler.prepare b in
      let prog = Ir.Func.copy_program prepared.Driver.Compiler.optimized in
      ignore
        (Hyperblock.Form.run ~machine ~prof:prepared.Driver.Compiler.prof
           ~priority:(Gp.Sexp.parse_real hb_fs "(div 1.0 num_ops)")
           prog);
      Alcotest.(check int) (name ^ " all targets resolve") 0
        (List.length (Ir.Validate.check_program prog)))
    [ "rawdaudio"; "mipmap"; "085.cc1"; "124.m88ksim" ]

let test_priority_cutoff_controls_inclusion () =
  (* With a high cutoff only the top path family joins; with zero cutoff
     anything positive joins.  Inclusion must be monotone in the cutoff. *)
  let b = Benchmarks.Registry.find "rawcaudio" in
  let prepared = Driver.Compiler.prepare b in
  let merged_with cutoff =
    let prog = Ir.Func.copy_program prepared.Driver.Compiler.optimized in
    let stats =
      Hyperblock.Form.run
        ~config:{ Hyperblock.Form.default_config with
                  Hyperblock.Form.priority_cutoff = cutoff }
        ~machine ~prof:prepared.Driver.Compiler.prof
        ~priority:(Gp.Sexp.parse_real hb_fs "exec_ratio") prog
    in
    stats.Hyperblock.Form.paths_selected
  in
  let lax = merged_with 0.0 in
  let strict = merged_with 0.95 in
  Alcotest.(check bool)
    (Printf.sprintf "stricter cutoff selects fewer paths (%d vs %d)" strict lax)
    true (strict <= lax)

(* --- Register allocation ---------------------------------------------------- *)

let test_liveness () =
  let src =
    {| int main() {
         int x = 1; int y = 2; int i;
         for (i = 0; i < 4; i = i + 1) { x = x + y; }
         emit(x);
         return 0; } |}
  in
  let prog = Frontend.Minic.compile src in
  let f = Ir.Func.find_func prog "main" in
  let g = Ir.Cfg.build f in
  let live = Regalloc.Liveness.compute f g in
  (* Find the registers holding x and y: both must be live in the loop
     body block. *)
  let body = Ir.Cfg.index_of g "fbody1" in
  let live_regs =
    List.filter
      (fun r -> Regalloc.Liveness.live_in_block live body r)
      (List.init live.Regalloc.Liveness.n_regs Fun.id)
  in
  Alcotest.(check bool) "several registers live in loop" true
    (List.length live_regs >= 3)

let spill_under_pressure k =
  let b = Benchmarks.Registry.find "djpeg" in
  let prepared = Driver.Compiler.prepare b in
  let prog = Ir.Func.copy_program prepared.Driver.Compiler.optimized in
  let tiny = { machine with Machine.Config.gpr = k } in
  let spills = Regalloc.Alloc.run ~machine:tiny prog in
  (prog, spills, prepared)

let test_regalloc_spills_under_pressure () =
  let _, spills64, _ = spill_under_pressure 64 in
  let _, spills8, _ = spill_under_pressure 8 in
  Alcotest.(check bool)
    (Printf.sprintf "more spills with 8 regs (%d) than 64 (%d)" spills8
       spills64)
    true (spills8 > spills64)

let test_regalloc_spill_semantics () =
  let b = Benchmarks.Registry.find "djpeg" in
  let want = reference_output b Benchmarks.Bench.Train in
  List.iter
    (fun k ->
      let prog, spills, _ = spill_under_pressure k in
      Alcotest.(check int)
        (Printf.sprintf "valid with %d regs" k)
        0
        (List.length (Ir.Validate.check_program prog));
      let out =
        (Profile.Interp.run ~overrides:b.Benchmarks.Bench.train
           (Profile.Layout.prepare prog)).Profile.Interp.output
      in
      Alcotest.(check (list (float 0.0)))
        (Printf.sprintf "correct with %d regs (%d spills)" k spills)
        want out)
    [ 4; 8; 16; 32 ]

let qcheck_regalloc_random_savings =
  let bench = Benchmarks.Registry.find "djpeg" in
  let want =
    Profile.Interp.checksum (reference_output bench Benchmarks.Bench.Train)
  in
  let prepared = Driver.Compiler.prepare bench in
  let ra_machine = Machine.Config.table3_regalloc in
  let gen =
    QCheck.Gen.map
      (fun seed ->
        let rng = Random.State.make [| seed |] in
        Gp.Gen.gen_real
          (Gp.Gen.default_config Regalloc.Features.feature_set)
          rng ~full:false 5)
      QCheck.Gen.int
  in
  let arb =
    QCheck.make
      ~print:(fun e -> Gp.Sexp.real_to_string Regalloc.Features.feature_set e)
      gen
  in
  QCheck.Test.make ~name:"random regalloc savings preserve semantics"
    ~count:25 arb (fun savings ->
      let heuristics =
        { (Driver.Compiler.baseline ()) with Driver.Compiler.ra_savings = savings }
      in
      let c = Driver.Compiler.compile ~machine:ra_machine ~heuristics prepared in
      let r =
        Driver.Compiler.simulate ~machine:ra_machine
          ~dataset:Benchmarks.Bench.Train prepared c
      in
      r.Machine.Simulate.checksum = want)

(* --- Prefetching ------------------------------------------------------------- *)

let test_prefetch_analysis_finds_streams () =
  let b = Benchmarks.Registry.find "101.tomcatv" in
  let prog = Frontend.Minic.compile b.Benchmarks.Bench.source in
  Opt.Pipeline.run ~config:Opt.Pipeline.no_unroll prog;
  let f = Ir.Func.find_func prog "main" in
  let cands = Prefetch.Analysis.candidates f in
  Alcotest.(check bool)
    (Printf.sprintf "several candidates (%d)" (List.length cands))
    true
    (List.length cands >= 8);
  let with_stride =
    List.filter (fun c -> c.Prefetch.Analysis.stride <> None) cands
  in
  Alcotest.(check bool) "strides recovered" true
    (List.length with_stride >= 8);
  (* The row-major stencil has unit-stride streams in the inner loop. *)
  Alcotest.(check bool) "unit strides present" true
    (List.exists (fun c -> c.Prefetch.Analysis.stride = Some 1) cands);
  let with_trip =
    List.filter (fun c -> c.Prefetch.Analysis.trip_estimate <> None) cands
  in
  Alcotest.(check bool) "trip counts estimated through dim-1 bounds" true
    (List.length with_trip >= 8)

let test_prefetch_strided_analysis () =
  let b = Benchmarks.Registry.find "125.turb3d" in
  let prog = Frontend.Minic.compile b.Benchmarks.Bench.source in
  Opt.Pipeline.run ~config:Opt.Pipeline.no_unroll prog;
  let f = Ir.Func.find_func prog "main" in
  let cands = Prefetch.Analysis.candidates f in
  (* The z-sweep reads field[o +/- 625] with stride dim*dim = 625. *)
  Alcotest.(check bool) "large stride detected" true
    (List.exists
       (fun c ->
         match c.Prefetch.Analysis.stride with
         | Some s -> abs s = 625
         | None -> false)
       cands)

let qcheck_prefetch_random_confidences =
  let bench = Benchmarks.Registry.find "103.su2cor" in
  let want =
    Profile.Interp.checksum (reference_output bench Benchmarks.Bench.Train)
  in
  let prepared =
    Driver.Compiler.prepare ~opt_config:Opt.Pipeline.no_unroll bench
  in
  let pf_machine = Machine.Config.itanium1 in
  let gen =
    QCheck.Gen.map
      (fun seed ->
        let rng = Random.State.make [| seed |] in
        Gp.Gen.gen_bool
          (Gp.Gen.default_config Prefetch.Features.feature_set)
          rng ~full:false 5)
      QCheck.Gen.int
  in
  let arb =
    QCheck.make
      ~print:(fun e -> Gp.Sexp.bool_to_string Prefetch.Features.feature_set e)
      gen
  in
  QCheck.Test.make ~name:"random prefetch confidences preserve semantics"
    ~count:25 arb (fun conf ->
      let heuristics =
        { (Driver.Compiler.baseline ()) with
          Driver.Compiler.pf_confidence = Some conf }
      in
      let c =
        Driver.Compiler.compile ~machine:pf_machine ~heuristics prepared
      in
      let r =
        Driver.Compiler.simulate ~machine:pf_machine
          ~dataset:Benchmarks.Bench.Train prepared c
      in
      r.Machine.Simulate.checksum = want)

let test_prefetch_insertion_counts () =
  let b = Benchmarks.Registry.find "101.tomcatv" in
  let prepared =
    Driver.Compiler.prepare ~opt_config:Opt.Pipeline.no_unroll b
  in
  let pf_machine = Machine.Config.itanium1 in
  let all =
    Driver.Compiler.compile ~machine:pf_machine
      ~heuristics:
        { (Driver.Compiler.baseline ()) with
          Driver.Compiler.pf_confidence =
            Some (Gp.Sexp.parse_bool Prefetch.Features.feature_set "true") }
      prepared
  in
  let none =
    Driver.Compiler.compile ~machine:pf_machine
      ~heuristics:
        { (Driver.Compiler.baseline ()) with
          Driver.Compiler.pf_confidence =
            Some (Gp.Sexp.parse_bool Prefetch.Features.feature_set "false") }
      prepared
  in
  Alcotest.(check bool) "true inserts" true
    (all.Driver.Compiler.prefetches.Prefetch.Insert.inserted > 0);
  Alcotest.(check int) "false inserts nothing" 0
    none.Driver.Compiler.prefetches.Prefetch.Insert.inserted

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      qcheck_hyperblock_random_priorities;
      qcheck_regalloc_random_savings;
      qcheck_prefetch_random_confidences;
    ]

let suite =
  [
    Alcotest.test_case "hyperblocks preserve semantics (adversarial)" `Slow
      test_hyperblock_semantics;
    Alcotest.test_case "negative priority forms nothing" `Quick
      test_hyperblock_negative_priority_forms_nothing;
    Alcotest.test_case "unpredictable diamond is merged" `Quick
      test_hyperblock_merges_diamond;
    Alcotest.test_case "region discovery on a diamond" `Quick
      test_region_discovery_diamond;
    Alcotest.test_case "loop-body hyperblock self-loop" `Quick
      test_loop_body_hyperblock_self_loop;
    Alcotest.test_case "tail duplication keeps targets" `Quick
      test_tail_duplication_keeps_targeted_blocks;
    Alcotest.test_case "priority cutoff monotone" `Quick
      test_priority_cutoff_controls_inclusion;
    Alcotest.test_case "liveness in loops" `Quick test_liveness;
    Alcotest.test_case "spills grow under pressure" `Quick
      test_regalloc_spills_under_pressure;
    Alcotest.test_case "spill code is correct" `Slow
      test_regalloc_spill_semantics;
    Alcotest.test_case "prefetch analysis finds streams" `Quick
      test_prefetch_analysis_finds_streams;
    Alcotest.test_case "prefetch strided analysis" `Quick
      test_prefetch_strided_analysis;
    Alcotest.test_case "prefetch insertion counts" `Quick
      test_prefetch_insertion_counts;
  ]
  @ qcheck_tests
