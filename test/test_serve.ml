(* Tests for the [metaopt serve] daemon and its protocol: shared work
   across clients (colliding digests evaluated once, everyone gets the
   same bits), typed backpressure (queue-full and in-flight-cap
   rejections), graceful SIGTERM drain (an outstanding request is still
   answered, the socket is unlinked, the store reopens clean),
   stale-socket recovery at bind time, and the served_vs_local oracle's
   registration.  The daemon runs in a forked child per test; everything
   here needs the fork backend and is skipped without it. *)

module P = Serve.Protocol

let with_dir tag f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "metaopt-serve-%s-%d" tag (Unix.getpid ()))
  in
  let rec rm_rf path =
    match Unix.lstat path with
    | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun x -> rm_rf (Filename.concat path x)) (Sys.readdir path);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
    | _ -> ( try Sys.remove path with Sys_error _ -> ())
    | exception Unix.Unix_error _ -> ()
  in
  rm_rf dir;
  Unix.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let have_fork = List.mem `Fork (Gp.Parmap.capabilities ())

(* The study shape every test serves: cheap, deterministic, real. *)
let desc =
  {
    Driver.Study.rd_kind = Driver.Study.Hyperblock_study;
    rd_benches = [ "codrle4" ];
    rd_machine = Machine.Config.table3;
    rd_fast_sim = true;
    rd_compiled_eval = true;
  }

let genome = Driver.Study.baseline_genome_of Driver.Study.Hyperblock_study

let task digest = { P.t_digest = digest; t_genome = genome; t_case = 0 }

(* The store's strict loader only accepts 32-hex-char digest keys;
   anything else would be evicted on reload. *)
let dg n = Printf.sprintf "%032x" n

(* --- daemon child + raw client plumbing --------------------------------- *)

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let fork_daemon ~dir ?(configure = fun c -> c) ?chaos_plan () =
  let socket = Filename.concat dir "sock" in
  match Unix.fork () with
  | 0 ->
    (try
       (match chaos_plan with
       | Some spec -> (
         match Gp.Chaos.plan_of_string ~seed:0 spec with
         | Ok p -> Gp.Chaos.arm p
         | Error msg -> failwith msg)
       | None -> ());
       Serve.Server.run (configure (Serve.Server.default_config ~socket));
       Unix._exit 0
     with e ->
       (* Leave the reason where the parent's failure message points. *)
       (try
          let oc = open_out (Filename.concat dir "daemon-error") in
          output_string oc (Printexc.to_string e);
          close_out oc
        with _ -> ());
       Unix._exit 1)
  | pid -> (socket, pid)

let wait_for_daemon ~socket ~pid =
  let deadline = Unix.gettimeofday () +. 30.0 in
  let rec poll () =
    let up =
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          match
            Gp.Parmap.retry_eintr (fun () ->
                Unix.connect fd (Unix.ADDR_UNIX socket))
          with
          | () -> true
          | exception Unix.Unix_error _ -> false)
    in
    if not up then begin
      (match Unix.waitpid [ Unix.WNOHANG ] pid with
      | 0, _ -> ()
      | _, status ->
        let err = Filename.concat (Filename.dirname socket) "daemon-error" in
        let reason =
          if Sys.file_exists err then read_file err else "no reason recorded"
        in
        Alcotest.fail
          (Printf.sprintf "daemon child died before listening (%s): %s"
             (match status with
             | Unix.WEXITED n -> Printf.sprintf "exit %d" n
             | Unix.WSIGNALED n -> Printf.sprintf "signal %d" n
             | Unix.WSTOPPED n -> Printf.sprintf "stopped %d" n)
             reason));
      if Unix.gettimeofday () > deadline then
        Alcotest.fail "daemon did not come up within 30s";
      ignore (Unix.select [] [] [] 0.05);
      poll ()
    end
  in
  poll ()

let stop_daemon ~socket ~pid =
  (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
  let status =
    try snd (Gp.Parmap.retry_eintr (fun () -> Unix.waitpid [] pid))
    with Unix.Unix_error _ -> Unix.WEXITED 0
  in
  Alcotest.(check bool)
    "daemon exits cleanly on SIGTERM" true
    (status = Unix.WEXITED 0);
  Alcotest.(check bool) "socket unlinked on exit" false (Sys.file_exists socket)

let with_daemon ~dir ?configure ?chaos_plan f =
  let socket, pid = fork_daemon ~dir ?configure ?chaos_plan () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
      try ignore (Gp.Parmap.retry_eintr (fun () -> Unix.waitpid [] pid))
      with Unix.Unix_error _ -> ())
  @@ fun () ->
  wait_for_daemon ~socket ~pid;
  f ~socket ~pid

let connect socket =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Gp.Parmap.retry_eintr (fun () -> Unix.connect fd (Unix.ADDR_UNIX socket));
  P.client_handshake fd;
  fd

let open_study fd =
  P.send_request fd (P.Open_study desc);
  match P.read_response fd with
  | P.Study_opened { study } -> study
  | _ -> Alcotest.fail "expected Study_opened"

let eval_ok fd ~req ~study digests =
  P.send_request fd
    (P.Eval
       {
         req;
         study;
         dataset = Benchmarks.Bench.Train;
         tasks = Array.of_list (List.map task digests);
       });
  match P.read_response fd with
  | P.Eval_result { req = r; outcomes } ->
    Alcotest.(check int) "response correlates to the request" req r;
    Array.map
      (function
        | Gp.Parmap.Ok v -> v
        | _ -> Alcotest.fail "expected an Ok outcome")
      outcomes
  | P.Rejected _ -> Alcotest.fail "unexpected rejection"
  | _ -> Alcotest.fail "expected Eval_result"

(* Pull one integer counter out of the daemon's one-line JSON metrics
   summary. *)
let metric json key =
  let pat = Printf.sprintf "\"%s\": " key in
  let rec find i =
    if i + String.length pat > String.length json then
      Alcotest.fail (Printf.sprintf "metric %s not in %s" key json)
    else if String.sub json i (String.length pat) = pat then begin
      let j = ref (i + String.length pat) in
      let start = !j in
      while
        !j < String.length json
        && json.[!j] >= '0'
        && json.[!j] <= '9'
      do
        incr j
      done;
      int_of_string (String.sub json start (!j - start))
    end
    else find (i + 1)
  in
  find 0

let bits = Int64.bits_of_float

(* --- shared work across clients ------------------------------------------ *)

(* Two clients whose batches collide on a digest: the daemon evaluates
   each distinct digest exactly once (the second client is served from
   memory, the store, or a coalesced queue entry — which one depends on
   arrival timing, but the sum is invariant), both see bit-identical
   values, and after a SIGTERM drain the store holds exactly the union. *)
let test_shared_work () =
  if have_fork then
    with_dir "shared" @@ fun dir ->
    let cache = Filename.concat dir "cache" in
    let metrics = Filename.concat dir "metrics.json" in
    let da = dg 0xa and db = dg 0xb and dc = dg 0xc in
    let va, vb, va', vc =
      with_daemon ~dir
        ~configure:(fun c ->
          { c with Serve.Server.cache_dir = Some cache;
            metrics_out = Some metrics })
        (fun ~socket ~pid ->
          let a = connect socket in
          let b = connect socket in
          Fun.protect
            ~finally:(fun () ->
              List.iter
                (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
                [ a; b ])
          @@ fun () ->
          let sa = open_study a in
          let sb = open_study b in
          Alcotest.(check int) "same description, same study id" sa sb;
          let ra = eval_ok a ~req:1 ~study:sa [ da; db ] in
          let rb = eval_ok b ~req:1 ~study:sb [ da; dc ] in
          stop_daemon ~socket ~pid;
          (ra.(0), ra.(1), rb.(0), rb.(1)))
    in
    Alcotest.(check bool) "speedups are positive" true (va > 0.0 && vb > 0.0);
    Alcotest.(check int64) "colliding digest: identical bits" (bits va)
      (bits va');
    let json = read_file metrics in
    Alcotest.(check int) "both requests counted" 2 (metric json "requests");
    Alcotest.(check int) "three distinct digests evaluated once each" 3
      (metric json "evaluated");
    Alcotest.(check int) "the collision was shared, not recomputed" 1
      (metric json "store_hits" + metric json "coalesced");
    Alcotest.(check int) "nothing rejected" 0 (metric json "rejected");
    (* The drained store holds exactly the union of both clients' work
       and reopens without a single eviction. *)
    let s = Driver.Shardstore.open_store cache in
    Alcotest.(check int) "no evictions on reload" 0
      (Driver.Shardstore.evictions s);
    List.iter
      (fun (d, v) ->
        match Driver.Shardstore.find s d with
        | Some got ->
          Alcotest.(check int64)
            (Printf.sprintf "store holds %s" d)
            (bits v) (bits got)
        | None -> Alcotest.fail (Printf.sprintf "store lost %s" d))
      [ (da, va); (db, vb); (dc, vc) ]

(* --- typed backpressure --------------------------------------------------- *)

(* A batch whose fresh digests cannot fit is rejected whole — before
   anything is enqueued — and a batch that fits still succeeds
   afterwards. *)
let test_queue_full () =
  if have_fork then
    with_dir "qfull" @@ fun dir ->
    with_daemon ~dir
      ~configure:(fun c -> { c with Serve.Server.queue_cap = 2 })
      (fun ~socket ~pid:_ ->
        let fd = connect socket in
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        @@ fun () ->
        let study = open_study fd in
        P.send_request fd
          (P.Eval
             {
               req = 7;
               study;
               dataset = Benchmarks.Bench.Train;
               tasks = Array.of_list (List.map task [ dg 0x11; dg 0x12; dg 0x13 ]);
             });
        (match P.read_response fd with
        | P.Rejected { req; reason = P.Queue_full } ->
          Alcotest.(check int) "rejection correlates to the request" 7 req
        | _ -> Alcotest.fail "expected Rejected Queue_full");
        (* Nothing was half-enqueued: a batch that fits runs fine. *)
        let r = eval_ok fd ~req:8 ~study [ dg 0x11; dg 0x12 ] in
        Alcotest.(check int) "full batch answered" 2 (Array.length r))

(* A second request pipelined past the in-flight cap is rejected while
   the first still completes.  Both frames go out in one write so the
   daemon reads them in one pass, before any dispatch. *)
let test_inflight_cap () =
  if have_fork then
    with_dir "inflight" @@ fun dir ->
    with_daemon ~dir
      ~configure:(fun c -> { c with Serve.Server.inflight_cap = 1 })
      (fun ~socket ~pid:_ ->
        let fd = connect socket in
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        @@ fun () ->
        let study = open_study fd in
        let frame_of req digest =
          Bytes.to_string
            (P.frame
               (P.encode_request
                  (P.Eval
                     {
                       req;
                       study;
                       dataset = Benchmarks.Bench.Train;
                       tasks = [| task digest |];
                     })))
        in
        let both = frame_of 1 (dg 0x21) ^ frame_of 2 (dg 0x22) in
        let b = Bytes.of_string both in
        let off = ref 0 in
        while !off < Bytes.length b do
          off :=
            !off
            + Gp.Parmap.retry_eintr (fun () ->
                  Unix.write fd b !off (Bytes.length b - !off))
        done;
        let r1 = P.read_response fd in
        let r2 = P.read_response fd in
        let rejected, answered =
          match (r1, r2) with
          | P.Rejected _, _ -> (r1, r2)
          | _, P.Rejected _ -> (r2, r1)
          | _ -> Alcotest.fail "expected one Rejected response"
        in
        (match rejected with
        | P.Rejected { req; reason = P.Inflight_cap } ->
          Alcotest.(check int) "the pipelined request was rejected" 2 req
        | _ -> Alcotest.fail "expected Rejected Inflight_cap");
        match answered with
        | P.Eval_result { req; outcomes } ->
          Alcotest.(check int) "the first request was answered" 1 req;
          Alcotest.(check int) "with its one outcome" 1 (Array.length outcomes)
        | _ -> Alcotest.fail "expected Eval_result for the first request")

(* --- graceful drain -------------------------------------------------------- *)

(* SIGTERM while a request is mid-evaluation (a chaos nap keeps the
   worker busy well past the signal): the daemon finishes the batch,
   answers, persists, unlinks the socket and exits 0. *)
let test_sigterm_drains () =
  if have_fork then
    with_dir "drain" @@ fun dir ->
    let cache = Filename.concat dir "cache" in
    let v =
      with_daemon ~dir
        ~configure:(fun c -> { c with Serve.Server.cache_dir = Some cache })
        ~chaos_plan:"parmap.task:0@1=slow:0.3"
        (fun ~socket ~pid ->
          let fd = connect socket in
          Fun.protect
            ~finally:(fun () ->
              try Unix.close fd with Unix.Unix_error _ -> ())
          @@ fun () ->
          let study = open_study fd in
          P.send_request fd
            (P.Eval
               {
                 req = 1;
                 study;
                 dataset = Benchmarks.Bench.Train;
                 tasks = [| task (dg 0x31) |];
               });
          (* Give the daemon one loop pass to accept the request, then
             signal while the napping worker still holds the batch. *)
          ignore (Unix.select [] [] [] 0.15);
          Unix.kill pid Sys.sigterm;
          let v =
            match P.read_response fd with
            | P.Eval_result { req = 1; outcomes = [| Gp.Parmap.Ok v |] } -> v
            | _ -> Alcotest.fail "drain must answer the outstanding request"
          in
          let status =
            snd (Gp.Parmap.retry_eintr (fun () -> Unix.waitpid [] pid))
          in
          Alcotest.(check bool)
            "daemon exits cleanly after the drain" true
            (status = Unix.WEXITED 0);
          Alcotest.(check bool)
            "socket unlinked" false (Sys.file_exists socket);
          v)
    in
    let s = Driver.Shardstore.open_store cache in
    Alcotest.(check int) "drained store reopens clean" 0
      (Driver.Shardstore.evictions s);
    match Driver.Shardstore.find s (dg 0x31) with
    | Some got ->
      Alcotest.(check int64) "drained result persisted" (bits v) (bits got)
    | None -> Alcotest.fail "drained result missing from the store"

(* --- stale sockets ---------------------------------------------------------- *)

let test_stale_socket () =
  if have_fork then begin
    (* A leftover socket file with no listener: the daemon removes it,
       binds, and unlinks again on exit. *)
    with_dir "stale" @@ fun dir ->
    let socket = Filename.concat dir "sock" in
    let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX socket);
    Unix.close fd;
    Alcotest.(check bool) "stale socket file exists" true
      (Sys.file_exists socket);
    Serve.Server.run ~stop:(fun () -> true)
      (Serve.Server.default_config ~socket);
    Alcotest.(check bool) "stale socket replaced then unlinked" false
      (Sys.file_exists socket);
    (* A live daemon on the path: a second daemon must refuse, and must
       not unlink the live socket. *)
    with_daemon ~dir (fun ~socket ~pid:_ ->
        (match
           Serve.Server.run ~stop:(fun () -> true)
             (Serve.Server.default_config ~socket)
         with
        | () -> Alcotest.fail "second daemon must refuse a live socket"
        | exception Failure _ -> ());
        Alcotest.(check bool) "live socket left in place" true
          (Sys.file_exists socket);
        let fd = connect socket in
        Unix.close fd)
  end

(* --- oracle registration ---------------------------------------------------- *)

let test_oracle_registered () =
  Alcotest.(check bool)
    "served_vs_local is registered" true
    (Fuzz.Oracle.find "served_vs_local" <> None);
  Alcotest.(check int) "eleven oracles" 11 (List.length Fuzz.Oracle.names)

let suite =
  [
    Alcotest.test_case "shared work across clients" `Slow test_shared_work;
    Alcotest.test_case "queue-full rejection" `Slow test_queue_full;
    Alcotest.test_case "in-flight cap rejection" `Slow test_inflight_cap;
    Alcotest.test_case "SIGTERM drains and persists" `Slow test_sigterm_drains;
    Alcotest.test_case "stale and live sockets" `Slow test_stale_socket;
    Alcotest.test_case "served_vs_local oracle registered" `Quick
      test_oracle_registered;
  ]
