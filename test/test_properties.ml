(* Cross-cutting property tests: constant folding agrees with the
   interpreter on every operator, the cache agrees with a brute-force
   reference model, and dominator/postdominator invariants hold on random
   CFGs. *)

(* --- Constant folding == interpreter semantics --------------------------- *)

let all_ibinops =
  [ Ir.Types.Add; Ir.Types.Sub; Ir.Types.Mul; Ir.Types.Div; Ir.Types.Rem;
    Ir.Types.Band; Ir.Types.Bor; Ir.Types.Bxor; Ir.Types.Shl; Ir.Types.Shr ]

let qcheck_constfold_matches_interp =
  QCheck.Test.make ~name:"constant folding = interpreter arithmetic"
    ~count:500
    QCheck.(triple (int_range (-10000) 10000) (int_range (-64) 64) small_nat)
    (fun (a, b, opi) ->
      let op = List.nth all_ibinops (opi mod List.length all_ibinops) in
      (* Fold the operation... *)
      let folded =
        match
          Opt.Constfold.fold_kind
            (Ir.Instr.Ibin (op, 1, Ir.Types.Imm a, Ir.Types.Imm b))
        with
        | Ir.Instr.Mov (1, Ir.Types.Imm v) -> v
        | _ -> failwith "did not fold"
      in
      (* ... and execute it through the real interpreter. *)
      let fn =
        {
          Ir.Func.fname = "main";
          params = [];
          blocks =
            [
              {
                Ir.Func.blabel = "entry";
                instrs =
                  [
                    Ir.Instr.make ~id:0
                      (Ir.Instr.Ibin (op, 1, Ir.Types.Imm a, Ir.Types.Imm b));
                    Ir.Instr.make ~id:1 (Ir.Instr.Emit (Ir.Types.Reg 1));
                  ];
                term = Ir.Func.Ret None;
              };
            ];
          next_reg = 2;
          next_pred = 1;
          next_instr = 2;
          frame_size = 0;
        }
      in
      let prog = { Ir.Func.funcs = [ fn ]; globals = []; main = "main" } in
      let r = Profile.Interp.run (Profile.Layout.prepare prog) in
      match r.Profile.Interp.output with
      | [ v ] -> int_of_float v = folded
      | _ -> false)

(* --- Cache vs. a brute-force reference model ----------------------------- *)

(* Reference: per-set lists of lines in most-recently-used order. *)
module Ref_cache = struct
  type level = {
    sets : int;
    assoc : int;
    line_words : int;
    mutable contents : int list array;   (* MRU first *)
  }

  let make (cfg : Machine.Config.cache_level) =
    let sets =
      max 1
        (cfg.Machine.Config.size_words
        / (cfg.Machine.Config.line_words * cfg.Machine.Config.assoc))
    in
    {
      sets;
      assoc = cfg.Machine.Config.assoc;
      line_words = cfg.Machine.Config.line_words;
      contents = Array.make sets [];
    }

  let probe l addr =
    let line = addr / l.line_words in
    let set = line mod l.sets in
    if List.mem line l.contents.(set) then begin
      l.contents.(set) <-
        line :: List.filter (fun x -> x <> line) l.contents.(set);
      true
    end
    else false

  let fill l addr =
    let line = addr / l.line_words in
    let set = line mod l.sets in
    let kept =
      List.filteri (fun i _ -> i < l.assoc - 1)
        (List.filter (fun x -> x <> line) l.contents.(set))
    in
    l.contents.(set) <- line :: kept
end

let qcheck_cache_matches_reference =
  QCheck.Test.make ~name:"L1 behaviour = reference MRU-list model" ~count:60
    QCheck.(pair small_int (list (int_range 0 4096)))
    (fun (salt, addrs) ->
      let cfg = Machine.Config.table3 in
      let cache = Machine.Cache.create cfg in
      let l1ref = Ref_cache.make cfg.Machine.Config.l1 in
      let l2ref = Ref_cache.make cfg.Machine.Config.l2 in
      let l3ref = Ref_cache.make cfg.Machine.Config.l3 in
      List.for_all
        (fun a ->
          let addr = (a * (1 + (salt mod 7))) land 0xFFFF in
          let stall = Machine.Cache.load cache addr in
          let expected =
            if Ref_cache.probe l1ref addr then
              cfg.Machine.Config.l1.Machine.Config.extra_latency
            else if Ref_cache.probe l2ref addr then begin
              Ref_cache.fill l1ref addr;
              cfg.Machine.Config.l2.Machine.Config.extra_latency
            end
            else if Ref_cache.probe l3ref addr then begin
              Ref_cache.fill l1ref addr;
              Ref_cache.fill l2ref addr;
              cfg.Machine.Config.l3.Machine.Config.extra_latency
            end
            else begin
              Ref_cache.fill l1ref addr;
              Ref_cache.fill l2ref addr;
              Ref_cache.fill l3ref addr;
              cfg.Machine.Config.memory_extra_latency
            end
          in
          stall = expected)
        addrs)

(* --- Dominators on random CFGs ------------------------------------------- *)

(* Random function shape: n blocks; block i branches to one or two random
   higher-or-lower blocks (yielding loops), last block returns. *)
let random_func seed n : Ir.Func.t =
  let rng = Random.State.make [| seed |] in
  let label i = Printf.sprintf "b%d" i in
  let blocks =
    List.init n (fun i ->
        let term =
          if i = n - 1 then Ir.Func.Ret None
          else
            let t1 = Random.State.int rng n in
            if Random.State.bool rng then
              Ir.Func.Br (Ir.Types.Reg 1, label t1, label (i + 1))
            else Ir.Func.Jmp (label (min (n - 1) (i + 1 + Random.State.int rng 2)))
        in
        { Ir.Func.blabel = label i; instrs = []; term })
  in
  {
    Ir.Func.fname = "f";
    params = [ 1 ];
    blocks;
    next_reg = 2;
    next_pred = 1;
    next_instr = 0;
    frame_size = 0;
  }

(* Reference dominator check: a dominates b iff removing a disconnects b
   from the entry. *)
let reachable_without (g : Ir.Cfg.t) ~(removed : int) : bool array =
  let n = Ir.Cfg.n_blocks g in
  let seen = Array.make n false in
  let rec dfs i =
    if (not seen.(i)) && i <> removed then begin
      seen.(i) <- true;
      List.iter dfs g.Ir.Cfg.succ.(i)
    end
  in
  if removed <> 0 then dfs 0;
  seen

let qcheck_idom_is_a_dominator =
  QCheck.Test.make ~name:"immediate dominators really dominate" ~count:150
    QCheck.(pair small_int (int_range 3 12))
    (fun (seed, n) ->
      let f = random_func seed n in
      let g = Ir.Cfg.build f in
      let idom = Ir.Cfg.dominators g in
      (* For every reachable block b with idom d: removing d must make b
         unreachable from the entry. *)
      let ok = ref true in
      for b = 1 to Ir.Cfg.n_blocks g - 1 do
        let d = idom.(b) in
        if d >= 0 then begin
          let reach = reachable_without g ~removed:d in
          if reach.(b) then ok := false
        end
      done;
      !ok)

let qcheck_postdom_reaches_exit =
  QCheck.Test.make ~name:"postdominators block all paths to the exit"
    ~count:150
    QCheck.(pair small_int (int_range 3 12))
    (fun (seed, n) ->
      let f = random_func seed n in
      let g = Ir.Cfg.build f in
      let ipdom = Ir.Cfg.postdominators g in
      (* For any block b with immediate postdominator d: no path from b to
         an exit may avoid d.  Check by DFS from b with d removed. *)
      let nb = Ir.Cfg.n_blocks g in
      let ok = ref true in
      for b = 0 to nb - 1 do
        let d = ipdom.(b) in
        if d >= 0 && b <> d then begin
          let seen = Array.make nb false in
          let rec dfs i =
            if (not seen.(i)) && i <> d then begin
              seen.(i) <- true;
              List.iter dfs g.Ir.Cfg.succ.(i)
            end
          in
          dfs b;
          for e = 0 to nb - 1 do
            if seen.(e) && g.Ir.Cfg.succ.(e) = [] then ok := false
          done
        end
      done;
      !ok)

(* --- Random MiniC expression programs: optimizer equivalence -------------- *)

(* Generate small random arithmetic programs and require the full pipeline
   to preserve their outputs exactly. *)
let random_minic_program seed : string =
  let rng = Random.State.make [| seed |] in
  let rec expr depth =
    if depth <= 0 then
      match Random.State.int rng 3 with
      | 0 -> string_of_int (Random.State.int rng 100)
      | 1 -> "x"
      | _ -> "i"
    else
      let a = expr (depth - 1) and b = expr (depth - 1) in
      let op =
        List.nth [ "+"; "-"; "*"; "/"; "%"; "&"; "|"; "^" ]
          (Random.State.int rng 8)
      in
      Printf.sprintf "(%s %s %s)" a op b
  in
  let body =
    List.init 4 (fun k ->
        Printf.sprintf "x = x + %s; if (x > %d) { x = x - %d; }"
          (expr (2 + (k mod 3)))
          (1000 + (100 * k))
          (Random.State.int rng 2000))
    |> String.concat "\n         "
  in
  Printf.sprintf
    {| int main() {
         int x = 1; int i;
         for (i = 0; i < 40; i = i + 1) {
           %s
         }
         emit(x);
         return 0; } |}
    body

let qcheck_pipeline_on_random_programs =
  QCheck.Test.make ~name:"pipeline preserves random MiniC programs" ~count:60
    QCheck.small_int
    (fun seed ->
      let src = random_minic_program seed in
      let reference = Frontend.Minic.compile src in
      let out p =
        (Profile.Interp.run (Profile.Layout.prepare p)).Profile.Interp.output
      in
      let want = out reference in
      let prog = Frontend.Minic.compile src in
      Opt.Pipeline.run prog;
      out prog = want)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      qcheck_constfold_matches_interp;
      qcheck_cache_matches_reference;
      qcheck_idom_is_a_dominator;
      qcheck_postdom_reaches_exit;
      qcheck_pipeline_on_random_programs;
    ]
