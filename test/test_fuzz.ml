(* The fuzzing subsystem's own tests, plus the regression tests for the
   engine-equivalence soft spots the fuzzer targets: trace-overflow
   handling, evaluator disk-cache hygiene, and the
   [Eval = Eval . Simplify = Evalc] property at scale. *)

let bits = Int64.bits_of_float

(* --- generator validity -------------------------------------------------- *)

(* Every generated program must compile and terminate; its semantics are
   whatever the printed source means, so compilation is the contract. *)
let test_generator_validity () =
  for seed = 0 to 149 do
    let p = Fuzz.Minic_gen.generate seed in
    let src = Fuzz.Minic_gen.source p in
    (match Frontend.Minic.compile src with
    | _ -> ()
    | exception e ->
      Alcotest.failf "seed %d does not compile: %s\n%s" seed
        (Printexc.to_string e) src);
    let layout = Profile.Layout.prepare (Frontend.Minic.compile src) in
    (match Profile.Interp.run ~overrides:p.Fuzz.Minic_gen.train layout with
    | _ -> ()
    | exception e ->
      Alcotest.failf "seed %d does not run: %s\n%s" seed
        (Printexc.to_string e) src)
  done

(* Shrink candidates must stay compilable: the shrinker's contract is
   well-typedness, divergence-preservation is re-checked by the oracle. *)
let test_shrink_candidates_compile () =
  for seed = 0 to 19 do
    let p = Fuzz.Minic_gen.generate seed in
    List.iter
      (fun c ->
        match Frontend.Minic.compile (Fuzz.Minic_gen.source c) with
        | _ -> ()
        | exception e ->
          Alcotest.failf "seed %d shrink candidate does not compile: %s\n%s"
            seed (Printexc.to_string e)
            (Fuzz.Minic_gen.source c))
      (Fuzz.Minic_gen.candidates p)
  done

(* --- greedy shrinker ----------------------------------------------------- *)

let test_shrinker_minimizes () =
  (* ints shrink by halving or decrement (greedy takes the first failing
     candidate); failure = "n >= 5": greedy must land exactly on 5 *)
  let candidates n = List.filter (fun c -> c >= 0) [ n / 2; n - 1 ] in
  let fails n = n >= 5 in
  let small, steps = Fuzz.Shrink.greedy ~candidates ~fails 1000 in
  Alcotest.(check int) "local minimum" 5 small;
  Alcotest.(check bool) "made progress" true (steps > 0);
  (* a raising predicate counts as not failing — shrinking must not
     escape into the raising region *)
  let fails n = if n < 100 then failwith "boom" else true in
  let small, _ = Fuzz.Shrink.greedy ~candidates ~fails 1000 in
  Alcotest.(check bool) "stays in non-raising region" true (small >= 100)

(* --- oracle smoke -------------------------------------------------------- *)

let test_oracles_pass_on_seeds () =
  List.iter
    (fun (o : Fuzz.Oracle.t) ->
      for seed = 0 to 2 do
        match o.Fuzz.Oracle.check seed with
        | Fuzz.Oracle.Pass | Fuzz.Oracle.Skip _ -> ()
        | Fuzz.Oracle.Fail report ->
          Alcotest.failf "oracle %s diverges at seed %d:\n%s"
            o.Fuzz.Oracle.name seed report
      done)
    Fuzz.Oracle.all

let test_campaign_summary () =
  let s = Fuzz.run ~oracles:[ Fuzz.Oracle.all |> List.hd ] ~seed:0 ~count:2 () in
  Alcotest.(check int) "no divergences" 0 (Fuzz.divergences s);
  Alcotest.(check bool) "summary renders" true
    (String.length (Fuzz.to_string s) > 0)

(* --- satellite: trace overflow never accepted ---------------------------- *)

let compiled_probe () =
  (* a program long enough that a 64-event budget overflows *)
  let p = Fuzz.Minic_gen.generate 0 in
  let bench =
    {
      Benchmarks.Bench.name = "trace-overflow-probe";
      suite = Benchmarks.Bench.Misc;
      fp = true;
      description = "";
      source = Fuzz.Minic_gen.source p;
      train = p.Fuzz.Minic_gen.train;
      novel = p.Fuzz.Minic_gen.novel;
    }
  in
  let machine = Machine.Config.table3 in
  let prepared = Driver.Compiler.prepare bench in
  let heuristics = Driver.Compiler.baseline () in
  let c = Driver.Compiler.compile ~machine ~heuristics prepared in
  (bench, machine, prepared, c)

let sim_sig (r : Machine.Simulate.result) =
  ( bits r.Machine.Simulate.cycles,
    List.map bits r.Machine.Simulate.output,
    r.Machine.Simulate.checksum,
    r.Machine.Simulate.dynamic_instrs )

let test_trace_overflow_rejected () =
  let bench, machine, prepared, c = compiled_probe () in
  let overrides = Benchmarks.Bench.overrides bench Benchmarks.Bench.Train in
  let sched = c.Driver.Compiler.schedule_cycles in
  let layout = c.Driver.Compiler.layout in
  (* overflowing budget: exact result, no trace *)
  let res, tr =
    Machine.Simulate.run_traced ~overrides ~max_trace_events:4 ~config:machine
      ~schedule_cycles:sched layout
  in
  Alcotest.(check bool) "overflowed run yields no trace" true (tr = None);
  let fresh =
    Machine.Simulate.run ~engine:`Fast ~overrides ~config:machine
      ~schedule_cycles:sched layout
  in
  Alcotest.(check bool) "overflowed run still measured exactly" true
    (sim_sig res = sim_sig fresh);
  (* an incomplete trace object is rejected by replay and by the cache *)
  let incomplete =
    Machine.Trace.create ~max_events:4
      ~n_blocks:(Array.length sched)
      ~n_branch_sites:1 ()
  in
  Alcotest.check_raises "replay rejects incomplete trace"
    (Invalid_argument
       "Simulate.replay: incomplete trace (event budget overflowed)")
    (fun () ->
      ignore
        (Machine.Simulate.replay ~config:machine ~schedule_cycles:sched
           incomplete));
  (match
     Driver.Simcache.store_trace (Driver.Simcache.create ()) "key" incomplete
   with
  | () -> Alcotest.fail "store_trace accepted an incomplete trace"
  | exception Invalid_argument _ -> ());
  (* a cache forced into overflow still answers bit-identically, serving
     fresh simulations instead of replays *)
  let sim = Driver.Simcache.create ~max_trace_events:4 () in
  let via_cache () =
    Driver.Simcache.simulate sim ~machine ~dataset:Benchmarks.Bench.Train
      prepared c
  in
  Alcotest.(check bool) "overflowing cache, first call exact" true
    (sim_sig (via_cache ()) = sim_sig fresh);
  Alcotest.(check bool) "overflowing cache, second call exact" true
    (sim_sig (via_cache ()) = sim_sig fresh);
  Alcotest.(check int) "no trace replays happened" 0
    (Driver.Simcache.stats sim).Driver.Simcache.replays

(* --- satellite: evaluator disk cache vs non-finite values ---------------- *)

let with_temp_dir f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "metaopt-test-evcache-%d" (Unix.getpid ()))
  in
  let rec rm_rf path =
    match Unix.lstat path with
    | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun x -> rm_rf (Filename.concat path x)) (Sys.readdir path);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
    | _ -> ( try Sys.remove path with Sys_error _ -> ())
    | exception Unix.Unix_error _ -> ()
  in
  rm_rf dir;
  Unix.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let test_evaluator_nonfinite_roundtrip () =
  with_temp_dir @@ fun dir ->
  let fs = Fuzz.Genome_gen.fs in
  let genomes =
    Array.map
      (fun s -> Gp.Sexp.parse_genome fs ~sort:`Real s)
      [| "x"; "(add x 1.0)"; "(mul x 2.0)" |]
  in
  (* an eval whose raw values include NaN and infinities *)
  let eval g _case =
    let env = Gp.Feature_set.empty_env fs in
    env.Gp.Feature_set.real_values.(0) <- 3.0;
    match Gp.Eval.genome env g with
    | `Real 3.0 -> Float.nan
    | `Real 4.0 -> Float.infinity
    | `Real 6.0 -> Float.neg_infinity
    | `Real v -> v
    | `Bool _ -> 0.0
  in
  let mk () =
    Driver.Evaluator.create ~cache_dir:dir ~fs ~scope:"nonfinite-test"
      ~case_name:string_of_int ~eval ()
  in
  let a = Driver.Evaluator.evaluate_batch (mk ()) genomes ~cases:[ 0 ] in
  Array.iter
    (fun row ->
      Array.iter
        (fun v ->
          Alcotest.(check (float 0.0)) "sanitized to 0" 0.0 v;
          Alcotest.(check bool) "finite" true (Float.is_finite v))
        row)
    a;
  (* whatever was persisted must round-trip: a fresh engine over the same
     cache dir must serve the same sanitized values without choking *)
  let ev2 = mk () in
  let b = Driver.Evaluator.evaluate_batch ev2 genomes ~cases:[ 0 ] in
  Alcotest.(check bool) "disk round-trip identical" true (a = b);
  (* and the cache file itself contains only finite values *)
  Sys.readdir dir |> Array.iter (fun f ->
      let ic = open_in (Filename.concat dir f) in
      (try
         while true do
           let line = input_line ic in
           match String.index_opt line ' ' with
           | Some i ->
             let v =
               float_of_string_opt
                 (String.sub line (i + 1) (String.length line - i - 1))
             in
             (match v with
             | Some v ->
               Alcotest.(check bool) "persisted value finite" true
                 (Float.is_finite v)
             | None -> ())
           | None -> ()
         done
       with End_of_file -> ());
      close_in ic)

(* --- satellite: Eval = Eval . Simplify = Evalc at scale ------------------ *)

(* One rng-stream extension of the original 1000-genome Simplify suite:
   every genome is additionally compiled by Evalc and the bytecode must
   agree with the tree-walker bit-for-bit — on the raw genome and on its
   simplified form (exercising whatever shapes Simplify produces). *)
let test_eval_simplify_equivalence_1000 () =
  let rng = Random.State.make [| 0xe15e; 42 |] in
  let mismatches = ref [] in
  for i = 0 to 999 do
    let sort = if i mod 4 = 0 then `Bool else `Real in
    let g = Fuzz.Genome_gen.genome rng ~sort in
    let s = Gp.Simplify.genome g in
    let cg = Gp.Evalc.compile g and cs = Gp.Evalc.compile s in
    List.iter
      (fun env ->
        let show = function
          | `Real v -> Printf.sprintf "%Lx" (bits v)
          | `Bool b -> string_of_bool b
        in
        let record tag a b sub =
          if a <> b then
            mismatches :=
              Printf.sprintf "genome %d (%s): %s <> %s for %s" i tag a b
                (Gp.Sexp.to_string Fuzz.Genome_gen.fs sub)
              :: !mismatches
        in
        let a = show (Gp.Eval.genome env g) in
        record "simplify" a (show (Gp.Eval.genome env s)) s;
        record "evalc raw" a (show (Gp.Evalc.run cg env)) g;
        record "evalc simplified" a (show (Gp.Evalc.run cs env)) s)
      (Fuzz.Genome_gen.envs rng ~n:4)
  done;
  match !mismatches with
  | [] -> ()
  | ms ->
    Alcotest.failf "%d/12000 evaluations diverge across Simplify/Evalc:\n%s"
      (List.length ms)
      (String.concat "\n" (List.filteri (fun i _ -> i < 5) ms))

let suite =
  [
    Alcotest.test_case "generated programs compile and run" `Quick
      test_generator_validity;
    Alcotest.test_case "shrink candidates stay well-typed" `Quick
      test_shrink_candidates_compile;
    Alcotest.test_case "greedy shrinker minimizes" `Quick
      test_shrinker_minimizes;
    Alcotest.test_case "all oracles pass on seeds 0-2" `Slow
      test_oracles_pass_on_seeds;
    Alcotest.test_case "campaign summary" `Quick test_campaign_summary;
    Alcotest.test_case "overflowed traces never accepted" `Quick
      test_trace_overflow_rejected;
    Alcotest.test_case "evaluator non-finite round-trip" `Quick
      test_evaluator_nonfinite_roundtrip;
    Alcotest.test_case "eval = simplify = evalc on 1000 genomes" `Quick
      test_eval_simplify_equivalence_1000;
  ]
