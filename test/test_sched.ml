(* Tests for the dependence graph and the VLIW list scheduler. *)

let cfg = Machine.Config.table3

let mk id kind = Ir.Instr.make ~id kind

(* A dependent chain: r2 = r1+1; r3 = r2+1; r4 = r3+1 *)
let chain =
  [|
    mk 0 (Ir.Instr.Ibin (Ir.Types.Add, 2, Ir.Types.Reg 1, Ir.Types.Imm 1));
    mk 1 (Ir.Instr.Ibin (Ir.Types.Add, 3, Ir.Types.Reg 2, Ir.Types.Imm 1));
    mk 2 (Ir.Instr.Ibin (Ir.Types.Add, 4, Ir.Types.Reg 3, Ir.Types.Imm 1));
  |]

(* Three independent adds. *)
let independent =
  [|
    mk 0 (Ir.Instr.Ibin (Ir.Types.Add, 2, Ir.Types.Reg 1, Ir.Types.Imm 1));
    mk 1 (Ir.Instr.Ibin (Ir.Types.Add, 3, Ir.Types.Reg 1, Ir.Types.Imm 2));
    mk 2 (Ir.Instr.Ibin (Ir.Types.Add, 4, Ir.Types.Reg 1, Ir.Types.Imm 3));
  |]

let test_depgraph_chain () =
  let g = Sched.Depgraph.build chain in
  Alcotest.(check (list (pair int int))) "0 -> 1 with add latency"
    [ (1, 1) ] g.Sched.Depgraph.succs.(0);
  Alcotest.(check int) "critical path = 3" 3 (Sched.Depgraph.critical_path g)

let test_depgraph_independent () =
  let g = Sched.Depgraph.build independent in
  Array.iter
    (fun succs -> Alcotest.(check int) "no edges" 0 (List.length succs))
    g.Sched.Depgraph.succs;
  Alcotest.(check int) "critical path = 1" 1 (Sched.Depgraph.critical_path g)

let test_latency_weighted_depth () =
  (* Gibbons-Muchnick: priority of a node is its latency-weighted distance
     to the end; earlier chain nodes have higher priority. *)
  let g = Sched.Depgraph.build chain in
  let d = Sched.Depgraph.latency_weighted_depth g in
  Alcotest.(check (list int)) "descending along the chain" [ 3; 2; 1 ]
    (Array.to_list d)

let test_schedule_chain_vs_parallel () =
  let c = (Sched.List_sched.schedule_instrs ~config:cfg chain).Sched.List_sched.length in
  let p =
    (Sched.List_sched.schedule_instrs ~config:cfg independent).Sched.List_sched.length
  in
  Alcotest.(check int) "chain takes 3 cycles" 3 c;
  Alcotest.(check int) "independent ops take 1 cycle (4 int units)" 1 p

let test_resource_limits () =
  (* 8 independent int adds on 4 int units need 2 issue cycles. *)
  let adds =
    Array.init 8 (fun i ->
        mk i (Ir.Instr.Ibin (Ir.Types.Add, 10 + i, Ir.Types.Reg 1, Ir.Types.Imm i)))
  in
  let s = Sched.List_sched.schedule_instrs ~config:cfg adds in
  Alcotest.(check int) "two issue cycles" 2 s.Sched.List_sched.length;
  (* 4 independent loads on 2 memory units: issue over 2 cycles, last
     result at cycle 1 + latency 2 = 3. *)
  let loads =
    Array.init 4 (fun i ->
        mk i
          (Ir.Instr.Load
             ( 10 + i,
               { Ir.Instr.base = Ir.Types.Imm 0; offset = Ir.Types.Imm i;
                 space = Ir.Instr.Global "g"; hazard = false } )))
  in
  let s = Sched.List_sched.schedule_instrs ~config:cfg loads in
  Alcotest.(check int) "loads over 2 mem units" 3 s.Sched.List_sched.length

let test_memory_ordering () =
  (* store a[0]; load a[0]: must stay ordered; load from another array is
     independent. *)
  let addr name off =
    { Ir.Instr.base = Ir.Types.Imm 0; offset = Ir.Types.Imm off;
      space = Ir.Instr.Global name; hazard = false }
  in
  let instrs =
    [|
      mk 0 (Ir.Instr.Store (addr "a" 0, Ir.Types.Imm 7));
      mk 1 (Ir.Instr.Load (2, addr "a" 0));
      mk 2 (Ir.Instr.Load (3, addr "b" 0));
    |]
  in
  let g = Sched.Depgraph.build instrs in
  Alcotest.(check bool) "store -> aliasing load edge" true
    (List.mem_assoc 1 g.Sched.Depgraph.succs.(0));
  Alcotest.(check bool) "store -/-> distinct space" false
    (List.mem_assoc 2 g.Sched.Depgraph.succs.(0))

let test_scheduled_order_respects_deps () =
  (* After scheduling, every producer appears before its consumers. *)
  let progs =
    [ "rawcaudio"; "129.compress"; "101.tomcatv" ]
  in
  List.iter
    (fun name ->
      let b = Benchmarks.Registry.find name in
      let prog = Frontend.Minic.compile b.Benchmarks.Bench.source in
      Opt.Pipeline.run prog;
      ignore (Sched.List_sched.schedule_program ~config:cfg prog);
      List.iter
        (fun (f : Ir.Func.t) ->
          List.iter
            (fun (blk : Ir.Func.block) ->
              let seen_defs = Hashtbl.create 16 in
              let defined_before = Hashtbl.create 16 in
              (* A use of a register that is defined in this block must
                 come after its (last) prior definition; since the
                 scheduler preserves dependences, no use may precede the
                 first def when the original block defined it first. *)
              List.iter
                (fun (i : Ir.Instr.t) ->
                  List.iter
                    (fun u ->
                      if Hashtbl.mem seen_defs u then
                        Hashtbl.replace defined_before u ())
                    (Ir.Instr.uses i.Ir.Instr.kind);
                  match Ir.Instr.def i.Ir.Instr.kind with
                  | Some d -> Hashtbl.replace seen_defs d ()
                  | None -> ())
                blk.Ir.Func.instrs)
            f.Ir.Func.blocks)
        prog.Ir.Func.funcs;
      (* The real check: the scheduled program still computes the same
         output. *)
      let reference = Frontend.Minic.compile b.Benchmarks.Bench.source in
      let out p =
        (Profile.Interp.run ~overrides:b.Benchmarks.Bench.train
           (Profile.Layout.prepare p)).Profile.Interp.output
      in
      Alcotest.(check (list (float 0.0)))
        (name ^ " scheduled semantics")
        (out reference) (out prog))
    progs

let test_priority_features () =
  let g = Sched.Depgraph.build chain in
  let above = Sched.Priority.height_above g in
  Alcotest.(check (list int)) "height above along the chain" [ 0; 1; 2 ]
    (Array.to_list above);
  (* The baseline ranking equals latency-weighted depth. *)
  Alcotest.(check (list (float 0.0))) "baseline = lwd" [ 3.0; 2.0; 1.0 ]
    (Array.to_list (Sched.Priority.baseline g));
  (* The expression-driven instance of the same formula agrees. *)
  Alcotest.(check (list (float 0.0))) "of_expr lwd agrees" [ 3.0; 2.0; 1.0 ]
    (Array.to_list (Sched.Priority.of_expr Sched.Priority.baseline_expr g))

let test_custom_priority_changes_order_not_semantics () =
  (* An adversarial ranking (prefer shallow instructions) may produce a
     worse schedule but never an incorrect one. *)
  let b = Benchmarks.Registry.find "rawcaudio" in
  let prog = Frontend.Minic.compile b.Benchmarks.Bench.source in
  Opt.Pipeline.run prog;
  let reference = Frontend.Minic.compile b.Benchmarks.Bench.source in
  let inverse =
    Sched.Priority.of_expr
      (Gp.Sexp.parse_real Sched.Priority.feature_set "(sub 0.0 lwd)")
  in
  ignore (Sched.List_sched.schedule_program ~priority:inverse ~config:cfg prog);
  let out p =
    (Profile.Interp.run ~overrides:b.Benchmarks.Bench.train
       (Profile.Layout.prepare p)).Profile.Interp.output
  in
  Alcotest.(check (list (float 0.0))) "inverse priority still correct"
    (out reference) (out prog)

let test_empty_block () =
  let s = Sched.List_sched.schedule_instrs ~config:cfg [||] in
  Alcotest.(check int) "empty block costs one cycle" 1
    s.Sched.List_sched.length

let suite =
  [
    Alcotest.test_case "dependence chain edges" `Quick test_depgraph_chain;
    Alcotest.test_case "independent ops have no edges" `Quick
      test_depgraph_independent;
    Alcotest.test_case "latency-weighted depth" `Quick
      test_latency_weighted_depth;
    Alcotest.test_case "chain vs parallel schedules" `Quick
      test_schedule_chain_vs_parallel;
    Alcotest.test_case "functional unit limits" `Quick test_resource_limits;
    Alcotest.test_case "memory ordering by space" `Quick test_memory_ordering;
    Alcotest.test_case "scheduling preserves semantics" `Slow
      test_scheduled_order_respects_deps;
    Alcotest.test_case "priority features" `Quick test_priority_features;
    Alcotest.test_case "custom priority preserves semantics" `Quick
      test_custom_priority_changes_order_not_semantics;
    Alcotest.test_case "empty block" `Quick test_empty_block;
  ]
