(* Golden equivalence suite for the simulation fast paths.

   The invariant under test: the pre-decoded interpreter, trace replay
   and artifact-keyed result sharing produce bit-identical cycles,
   checksums and dynamic counts to the reference tree-walking
   interpreter, across all four studies. *)

let check_bits name a b =
  Alcotest.(check int64) name (Int64.bits_of_float a) (Int64.bits_of_float b)

let check_result name (a : Machine.Simulate.result)
    (b : Machine.Simulate.result) =
  check_bits (name ^ ": cycles") a.Machine.Simulate.cycles
    b.Machine.Simulate.cycles;
  Alcotest.(check int)
    (name ^ ": checksum")
    a.Machine.Simulate.checksum b.Machine.Simulate.checksum;
  Alcotest.(check int)
    (name ^ ": dynamic_instrs")
    a.Machine.Simulate.dynamic_instrs b.Machine.Simulate.dynamic_instrs;
  Alcotest.(check int)
    (name ^ ": branches")
    a.Machine.Simulate.branches b.Machine.Simulate.branches;
  Alcotest.(check int)
    (name ^ ": mispredicts")
    a.Machine.Simulate.mispredicts b.Machine.Simulate.mispredicts;
  Alcotest.(check (list (float 0.0)))
    (name ^ ": output")
    a.Machine.Simulate.output b.Machine.Simulate.output

(* Study kind -> (benches, machine, opt config) exactly as Study.create
   wires them. *)
let study_cases =
  [
    (Driver.Study.Hyperblock_study, [ "codrle4"; "rawcaudio" ]);
    (Driver.Study.Regalloc_study, [ "codrle4" ]);
    (Driver.Study.Prefetch_study, [ "015.doduc" ]);
    (Driver.Study.Sched_study, [ "codrle4" ]);
  ]

let prepare_for kind bench =
  let opt_config =
    match kind with
    | Driver.Study.Prefetch_study -> Opt.Pipeline.no_unroll
    | _ -> Opt.Pipeline.default
  in
  Driver.Compiler.prepare ~opt_config (Benchmarks.Registry.find bench)

let compile_for kind prepared =
  let machine = Driver.Study.machine_of kind in
  let heuristics =
    Driver.Study.heuristics_with kind (Driver.Study.baseline_genome_of kind)
  in
  (machine, Driver.Compiler.compile ~machine ~heuristics prepared)

(* Fast engine vs reference engine: bit-identical results and event
   effects on every study's machine, both datasets. *)
let test_fast_engine_equivalence () =
  List.iter
    (fun (kind, benches) ->
      List.iter
        (fun bench ->
          let p = prepare_for kind bench in
          let machine, c = compile_for kind p in
          List.iter
            (fun dataset ->
              let overrides =
                Benchmarks.Bench.overrides p.Driver.Compiler.bench dataset
              in
              let run engine =
                Machine.Simulate.run ~engine ~config:machine
                  ~schedule_cycles:c.Driver.Compiler.schedule_cycles ~overrides
                  c.Driver.Compiler.layout
              in
              check_result
                (Printf.sprintf "%s/%s" (Driver.Study.kind_name kind) bench)
                (run `Fast) (run `Reference))
            [ Benchmarks.Bench.Train; Benchmarks.Bench.Novel ])
        benches)
    study_cases

(* Both engines exhaust fuel at the same point. *)
let test_fast_engine_out_of_fuel () =
  let p = prepare_for Driver.Study.Hyperblock_study "codrle4" in
  let _, c = compile_for Driver.Study.Hyperblock_study p in
  let raises f =
    match f () with
    | exception Profile.Interp.Out_of_fuel -> true
    | _ -> false
  in
  Alcotest.(check bool)
    "fast raises" true
    (raises (fun () ->
         Profile.Interp.run ~fuel:1000 c.Driver.Compiler.layout));
  Alcotest.(check bool)
    "reference raises" true
    (raises (fun () ->
         Profile.Interp.run_reference ~fuel:1000 c.Driver.Compiler.layout))

(* Replaying a recorded trace reproduces the simulation bit-for-bit, both
   under the recorded schedule lengths and under perturbed ones (the
   sched-study situation: same events, different timing). *)
let test_replay_equivalence () =
  List.iter
    (fun (kind, benches) ->
      let bench = List.hd benches in
      let p = prepare_for kind bench in
      let machine, c = compile_for kind p in
      let overrides =
        Benchmarks.Bench.overrides p.Driver.Compiler.bench
          Benchmarks.Bench.Train
      in
      let res, tr =
        Machine.Simulate.run_traced ~config:machine
          ~schedule_cycles:c.Driver.Compiler.schedule_cycles ~overrides
          c.Driver.Compiler.layout
      in
      let tr =
        match tr with
        | Some tr -> tr
        | None -> Alcotest.fail "trace did not fit the event budget"
      in
      let name = Driver.Study.kind_name kind in
      check_result (name ^ ": traced = plain")
        (Machine.Simulate.run ~config:machine
           ~schedule_cycles:c.Driver.Compiler.schedule_cycles ~overrides
           c.Driver.Compiler.layout)
        res;
      check_result (name ^ ": replay same lengths")
        (Machine.Simulate.replay ~config:machine
           ~schedule_cycles:c.Driver.Compiler.schedule_cycles tr)
        res;
      let perturbed =
        Array.map (fun l -> l + 1) c.Driver.Compiler.schedule_cycles
      in
      check_result (name ^ ": replay perturbed lengths")
        (Machine.Simulate.replay ~config:machine ~schedule_cycles:perturbed tr)
        (Machine.Simulate.run ~config:machine ~schedule_cycles:perturbed
           ~overrides c.Driver.Compiler.layout))
    study_cases

(* A whole study context with fast paths on vs off: identical fitness for
   baseline and non-trivial candidates. *)
let test_study_fast_vs_slow () =
  let genomes =
    Driver.Study.baseline_genome_of Driver.Study.Sched_study
    :: List.map
         (fun s ->
           Gp.Expr.Real (Gp.Sexp.parse_real Sched.Priority.feature_set s))
         [ "(sub 0.0 lwd)"; "(add slack latency)"; "(mul critical_path 0.5)" ]
  in
  let measure ~fast_sim =
    let ctx =
      Driver.Study.create ~fast_sim Driver.Study.Sched_study [ "codrle4" ]
    in
    List.map
      (fun g ->
        Driver.Study.speedup ctx g ~case:0 ~dataset:Benchmarks.Bench.Train)
      genomes
  in
  let fast = measure ~fast_sim:true and slow = measure ~fast_sim:false in
  List.iteri
    (fun i (f, s) -> check_bits (Printf.sprintf "genome %d" i) f s)
    (List.combine fast slow)

(* The compiled-eval golden path: a study context with Evalc on vs off
   (the [--no-compiled-eval] tree-walker reference) must score every
   candidate bit-identically, across two studies whose decision sites
   route through different Evalc entry points — batch scoring in
   hyperblock formation, per-node priorities in scheduling. *)
let test_study_compiled_vs_walk () =
  let cases =
    [
      ( Driver.Study.Sched_study, "codrle4",
        [ "(sub 0.0 lwd)"; "(add slack latency)"; "(mul critical_path 0.5)" ] );
      ( Driver.Study.Hyperblock_study, "codrle4",
        [ "(mul exec_ratio 2.0)"; "(sub num_ops dep_height)" ] );
    ]
  in
  List.iter
    (fun (kind, bench, exprs) ->
      let fs = Driver.Study.feature_set_of kind in
      let genomes =
        Driver.Study.baseline_genome_of kind
        :: List.map (fun s -> Gp.Expr.Real (Gp.Sexp.parse_real fs s)) exprs
      in
      let measure ~compiled_eval =
        let cfg = { Driver.Study.default_config with compiled_eval } in
        let ctx = Driver.Study.create_with cfg kind [ bench ] in
        List.map
          (fun g ->
            Driver.Study.speedup ctx g ~case:0 ~dataset:Benchmarks.Bench.Train)
          genomes
      in
      let compiled = measure ~compiled_eval:true
      and walked = measure ~compiled_eval:false in
      List.iteri
        (fun i (c, w) ->
          check_bits
            (Printf.sprintf "%s genome %d" (Driver.Study.kind_name kind) i)
            c w)
        (List.combine compiled walked))
    cases

(* Two different genomes that induce the same compilation decisions must
   share one simulation (the artifact hit), and a genome whose decisions
   equal the baseline's scores speedup exactly 1.0 off the baseline's
   artifact without simulating. *)
let test_artifact_collision () =
  let ctx =
    Driver.Study.create Driver.Study.Hyperblock_study [ "codrle4" ]
  in
  let parse s =
    Gp.Expr.Real (Gp.Sexp.parse_real Hyperblock.Features.feature_set s)
  in
  let sims_before =
    (Driver.Simcache.stats ctx.Driver.Study.sim).Driver.Simcache.simulations
  in
  (* Positive scaling preserves the priority order, hence the decisions,
     hence the artifact. *)
  let s1 =
    Driver.Study.speedup ctx (parse "(mul exec_ratio 2.0)") ~case:0
      ~dataset:Benchmarks.Bench.Train
  in
  let s2 =
    Driver.Study.speedup ctx (parse "(mul exec_ratio 4.0)") ~case:0
      ~dataset:Benchmarks.Bench.Train
  in
  let st = Driver.Simcache.stats ctx.Driver.Study.sim in
  check_bits "same decisions, same fitness" s1 s2;
  Alcotest.(check bool)
    "one evaluation counted" true
    (st.Driver.Simcache.simulations - sims_before <= 1);
  Alcotest.(check bool)
    "artifact hits > 0" true
    (st.Driver.Simcache.artifact_hits > 0);
  (* Scaling the baseline ranking reproduces the baseline artifact. *)
  let ctx_sched =
    Driver.Study.create Driver.Study.Sched_study [ "codrle4" ]
  in
  let s_lwd =
    Driver.Study.speedup ctx_sched
      (Gp.Expr.Real (Gp.Sexp.parse_real Sched.Priority.feature_set "(mul lwd 2.0)"))
      ~case:0 ~dataset:Benchmarks.Bench.Train
  in
  check_bits "baseline-equal artifact scores exactly 1.0" 1.0 s_lwd

(* The uid-indexed scheduler output equals the (fname, label) hashtable
   lookup per block. *)
let test_uid_schedule_lengths () =
  let p = prepare_for Driver.Study.Hyperblock_study "codrle4" in
  let config = Machine.Config.table3 in
  let p1 = Ir.Func.copy_program p.Driver.Compiler.optimized in
  let p2 = Ir.Func.copy_program p.Driver.Compiler.optimized in
  let tbl = Sched.List_sched.schedule_program ~config p1 in
  let arr = Sched.List_sched.schedule_program_cycles ~config p2 in
  let layout = Profile.Layout.prepare p2 in
  Alcotest.(check int)
    "length = n_blocks"
    layout.Profile.Layout.n_blocks (Array.length arr);
  Array.iteri
    (fun uid (fname, label) ->
      Alcotest.(check int)
        (Printf.sprintf "uid %d (%s.%s)" uid fname label)
        (Option.value ~default:1 (Hashtbl.find_opt tbl (fname, label)))
        arr.(uid))
    layout.Profile.Layout.block_name

(* call_overhead_cycles charges exactly once per dynamic call, in both
   live simulation and replay. *)
let test_call_overhead () =
  let p = prepare_for Driver.Study.Hyperblock_study "072.sc" in
  let machine, c = compile_for Driver.Study.Hyperblock_study p in
  let overrides =
    Benchmarks.Bench.overrides p.Driver.Compiler.bench Benchmarks.Bench.Train
  in
  let res, tr =
    Machine.Simulate.run_traced ~config:machine
      ~schedule_cycles:c.Driver.Compiler.schedule_cycles ~overrides
      c.Driver.Compiler.layout
  in
  let tr = Option.get tr in
  let calls = Machine.Trace.calls tr in
  Alcotest.(check bool) "benchmark performs calls" true (calls > 0);
  let costly =
    { machine with Machine.Config.call_overhead_cycles = 5.0 }
  in
  (* Integer-valued cycle arithmetic stays exact, so the overhead adds up
     to precisely 5 * calls no matter where it lands in the sum. *)
  let live =
    Machine.Simulate.run ~config:costly
      ~schedule_cycles:c.Driver.Compiler.schedule_cycles ~overrides
      c.Driver.Compiler.layout
  in
  check_bits "live overhead = base + 5*calls"
    (res.Machine.Simulate.cycles +. (5.0 *. float_of_int calls))
    live.Machine.Simulate.cycles;
  let replayed =
    Machine.Simulate.replay ~config:costly
      ~schedule_cycles:c.Driver.Compiler.schedule_cycles tr
  in
  check_result "replay matches live under overhead" live replayed

let suite =
  [
    Alcotest.test_case "fast engine bit-identical across studies" `Slow
      test_fast_engine_equivalence;
    Alcotest.test_case "fast engine fuel accounting" `Quick
      test_fast_engine_out_of_fuel;
    Alcotest.test_case "trace replay bit-identical" `Slow
      test_replay_equivalence;
    Alcotest.test_case "study results identical fast vs slow" `Slow
      test_study_fast_vs_slow;
    Alcotest.test_case "study results identical compiled vs walk" `Slow
      test_study_compiled_vs_walk;
    Alcotest.test_case "artifact collision shares one simulation" `Slow
      test_artifact_collision;
    Alcotest.test_case "uid-indexed schedule lengths" `Quick
      test_uid_schedule_lengths;
    Alcotest.test_case "call overhead charged per dynamic call" `Slow
      test_call_overhead;
  ]
