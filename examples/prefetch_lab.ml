(* Data-prefetching laboratory: list the prefetch candidates the compiler
   analysis finds (array, stride, trip estimate), then compare confidence
   functions — from "never prefetch" to ORC-style "prefetch whenever the
   trip count is known" — on the Itanium-like machine with its bounded
   memory queue.

   Run with:  dune exec examples/prefetch_lab.exe  [benchmark] *)

let machine = Machine.Config.itanium1
let fs = Prefetch.Features.feature_set

let show_candidates (prepared : Driver.Compiler.prepared) =
  let prog = Ir.Func.copy_program prepared.Driver.Compiler.optimized in
  List.iter
    (fun (f : Ir.Func.t) ->
      let cands = Prefetch.Analysis.candidates f in
      if cands <> [] then begin
        Fmt.pr "@.function %s: %d candidate load(s) in loops@."
          f.Ir.Func.fname (List.length cands);
        List.iteri
          (fun i (c : Prefetch.Analysis.candidate) ->
            Fmt.pr
              "  %2d: array=%-10s stride=%-9s trips~%-8s depth=%d loads_in_loop=%d@."
              i
              (Option.value ~default:"?" c.Prefetch.Analysis.array)
              (match c.Prefetch.Analysis.stride with
              | Some s -> string_of_int s
              | None -> "unknown")
              (match c.Prefetch.Analysis.trip_estimate with
              | Some t -> Printf.sprintf "%.0f" t
              | None -> "unknown")
              c.Prefetch.Analysis.loop_depth c.Prefetch.Analysis.loads_in_loop)
          cands
      end)
    prog.Ir.Func.funcs

let measure (prepared : Driver.Compiler.prepared) name conf_src =
  let conf = Gp.Sexp.parse_bool fs conf_src in
  let heuristics =
    { (Driver.Compiler.baseline ()) with
      Driver.Compiler.pf_confidence = Some conf }
  in
  let c = Driver.Compiler.compile ~machine ~heuristics prepared in
  let r =
    Driver.Compiler.simulate ~machine ~dataset:Benchmarks.Bench.Train prepared c
  in
  let stats = r.Machine.Simulate.cache in
  Fmt.pr
    "  %-36s %10.0f cycles   pf %3d/%3d   %7d stall cycles, %5d dropped@."
    name r.Machine.Simulate.cycles
    c.Driver.Compiler.prefetches.Prefetch.Insert.inserted
    c.Driver.Compiler.prefetches.Prefetch.Insert.candidates
    stats.Machine.Cache.stall_cycles stats.Machine.Cache.prefetches_dropped

let () =
  let bench =
    if Array.length Sys.argv > 1 then Sys.argv.(1) else "101.tomcatv"
  in
  Fmt.pr "=== Prefetching lab: %s (machine %s, queue depth %d) ===@." bench
    machine.Machine.Config.name machine.Machine.Config.prefetch_queue;
  let b = Benchmarks.Registry.find bench in
  let prepared =
    Driver.Compiler.prepare ~opt_config:Opt.Pipeline.no_unroll b
  in
  show_candidates prepared;
  Fmt.pr "@.cycles under different confidence functions:@.";
  measure prepared "ORC baseline (trip-count driven)"
    Prefetch.Features.baseline_source;
  measure prepared "never prefetch" "false";
  measure prepared "always prefetch" "true";
  measure prepared "only sparse loops" "(lt loads_in_loop 8.0)";
  measure prepared "only long strides" "(gt abs_stride 7.0)";
  measure prepared "only cache-hostile arrays" "(gt cache_pressure 1.0)"
