(* Quickstart: evolve an application-specific hyperblock priority function
   for one benchmark, end to end, exactly the paper's Figure 4 protocol in
   miniature:

     1. pick a benchmark and a study (hyperblock formation),
     2. run the GP search — fitness of a candidate priority function is
        the speedup of the compiled benchmark over the baseline compiler,
     3. report the evolved expression and its speedup on the training and
        on the novel dataset.

   Run with:  dune exec examples/quickstart.exe  [benchmark] [jobs]

   The second argument fans candidate evaluation out over that many
   forked workers (the single-machine analogue of the paper's 15-20
   machine cluster); results are identical at any worker count. *)

let () =
  let bench = if Array.length Sys.argv > 1 then Sys.argv.(1) else "rawcaudio" in
  let jobs =
    if Array.length Sys.argv > 2 then
      try int_of_string Sys.argv.(2) with _ -> 1
    else 1
  in
  Fmt.pr "=== Meta Optimization quickstart: %s ===@.@." bench;
  let b = Benchmarks.Registry.find bench in
  Fmt.pr "benchmark : %s (%s, %s)@." b.Benchmarks.Bench.name
    (Benchmarks.Bench.string_of_suite b.Benchmarks.Bench.suite)
    b.Benchmarks.Bench.description;
  Fmt.pr "baseline  : %s@.@." Hyperblock.Baseline.source;
  (* A small GP run; raise these toward Table 2 (400 x 50) for real use. *)
  let params =
    {
      Gp.Params.scaled with
      Gp.Params.population_size = 24;
      generations = 8;
    }
  in
  Fmt.pr "evolving (population %d, %d generations, %d worker(s))...@."
    params.Gp.Params.population_size params.Gp.Params.generations jobs;
  let result =
    Driver.Study.specialize ~params ~jobs Driver.Study.Hyperblock_study bench
  in
  Fmt.pr "@.generation history (best fitness = speedup over baseline):@.";
  List.iter
    (fun (s : Gp.Evolve.generation_stats) ->
      Fmt.pr "  gen %2d   best %.3f   mean %.3f   best size %d@."
        s.Gp.Evolve.gen s.Gp.Evolve.best_fitness s.Gp.Evolve.mean_fitness
        s.Gp.Evolve.best_size)
    result.Driver.Study.history;
  Fmt.pr "@.best evolved priority function:@.  %s@.@."
    result.Driver.Study.best_expr;
  Fmt.pr "speedup on training data : %.3f@." result.Driver.Study.train_speedup;
  Fmt.pr "speedup on novel data    : %.3f@." result.Driver.Study.novel_speedup
