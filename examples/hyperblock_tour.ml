(* A tour of hyperblock formation: inspect the regions and paths the
   compiler sees on a benchmark, the Table 4 features of every path, the
   decisions the baseline (Equation 1) makes, and the effect of a few
   alternative priority functions on simulated cycles.

   Run with:  dune exec examples/hyperblock_tour.exe  [benchmark] *)

let machine = Machine.Config.table3
let fs = Hyperblock.Features.feature_set

let show_regions (prepared : Driver.Compiler.prepared) =
  let prog = Ir.Func.copy_program prepared.Driver.Compiler.optimized in
  List.iter
    (fun (f : Ir.Func.t) ->
      let regions = Hyperblock.Region.discover f in
      if regions <> [] then begin
        Fmt.pr "@.function %s: %d candidate region(s)@." f.Ir.Func.fname
          (List.length regions);
        List.iteri
          (fun i (r : Hyperblock.Region.t) ->
            Fmt.pr "  region %d: %s entry=%s stop=%s, %d mergeable blocks, %d paths@."
              i
              (match r.Hyperblock.Region.kind with
              | `Hammock -> "hammock"
              | `Loop_body -> "loop-body")
              r.Hyperblock.Region.entry r.Hyperblock.Region.stop
              (List.length r.Hyperblock.Region.mergeable)
              (List.length r.Hyperblock.Region.paths);
            let scored =
              Hyperblock.Form.score_region f prepared.Driver.Compiler.prof
                Hyperblock.Baseline.expr r
            in
            List.iteri
              (fun j (s : Hyperblock.Form.scored_path) ->
                let fe = s.Hyperblock.Form.feats in
                Fmt.pr
                  "    path %d: blocks=%d ops=%.0f height=%.0f exec=%.3f \
                   branches=%.0f predict=%.2f hazard=%b -> priority %.4f@."
                  j
                  (List.length s.Hyperblock.Form.path.Hyperblock.Region.labels)
                  fe.Hyperblock.Features.num_ops
                  fe.Hyperblock.Features.dep_height
                  fe.Hyperblock.Features.exec_ratio
                  fe.Hyperblock.Features.num_branches
                  fe.Hyperblock.Features.predict_product
                  fe.Hyperblock.Features.mem_hazard
                  s.Hyperblock.Form.priority)
              scored)
          regions
      end)
    prog.Ir.Func.funcs

let measure (prepared : Driver.Compiler.prepared) name pri_src =
  let pri = Gp.Sexp.parse_real fs pri_src in
  let heuristics =
    { (Driver.Compiler.baseline ()) with Driver.Compiler.hb_priority = pri }
  in
  let c = Driver.Compiler.compile ~machine ~heuristics prepared in
  let r =
    Driver.Compiler.simulate ~machine ~dataset:Benchmarks.Bench.Train prepared c
  in
  Fmt.pr "  %-28s %10.0f cycles   %2d regions formed, %2d blocks merged@."
    name r.Machine.Simulate.cycles
    c.Driver.Compiler.hb_stats.Hyperblock.Form.regions_formed
    c.Driver.Compiler.hb_stats.Hyperblock.Form.blocks_merged

let () =
  let bench = if Array.length Sys.argv > 1 then Sys.argv.(1) else "rawcaudio" in
  Fmt.pr "=== Hyperblock formation tour: %s ===@." bench;
  let b = Benchmarks.Registry.find bench in
  let prepared = Driver.Compiler.prepare b in
  show_regions prepared;
  Fmt.pr "@.cycles under different priority functions:@.";
  measure prepared "baseline (Equation 1)" Hyperblock.Baseline.source;
  measure prepared "merge everything" "1.0";
  measure prepared "merge nothing" "(sub 0.0 1.0)";
  measure prepared "hot paths only" "exec_ratio";
  measure prepared "predictable paths only" "(sub predict_product 0.9)";
  measure prepared "short paths first" "(div 1.0 num_ops)"
