(* Scheduling laboratory (extension): the list scheduler's priority
   function is the paper's canonical Section-2 example of a priority
   function.  This walkthrough shows the ranking features on a hot block,
   compares hand-written rankings, and runs a short evolution of the
   fourth heuristic slot.

   Run with:  dune exec examples/sched_lab.exe  [benchmark] *)

let machine = Machine.Config.table3_narrow
let fs = Sched.Priority.feature_set

let show_hot_block (prepared : Driver.Compiler.prepared) =
  let prog = Ir.Func.copy_program prepared.Driver.Compiler.optimized in
  let f = Ir.Func.find_func prog "main" in
  let hot =
    List.fold_left
      (fun (acc : Ir.Func.block) (b : Ir.Func.block) ->
        if List.length b.Ir.Func.instrs > List.length acc.Ir.Func.instrs then b
        else acc)
      (List.hd f.Ir.Func.blocks) f.Ir.Func.blocks
  in
  let instrs = Array.of_list hot.Ir.Func.instrs in
  let g = Sched.Depgraph.build instrs in
  let lwd = Sched.Depgraph.latency_weighted_depth g in
  let above = Sched.Priority.height_above g in
  Fmt.pr "hottest block %s: %d instructions, critical path %d cycles@.@."
    hot.Ir.Func.blabel (Array.length instrs) (Sched.Depgraph.critical_path g);
  Fmt.pr "%4s %5s %6s %6s %6s  instruction@." "#" "lwd" "above" "slack"
    "succs";
  let critical = Sched.Depgraph.critical_path g in
  Array.iteri
    (fun i (ins : Ir.Instr.t) ->
      if i < 18 then
        Fmt.pr "%4d %5d %6d %6d %6d  %a@." i lwd.(i) above.(i)
          (critical - above.(i) - lwd.(i))
          (List.length g.Sched.Depgraph.succs.(i))
          Ir.Instr.pp ins)
    instrs;
  if Array.length instrs > 18 then
    Fmt.pr "  ... (%d more)@." (Array.length instrs - 18)

let measure (prepared : Driver.Compiler.prepared) name src =
  let pri = Gp.Sexp.parse_real fs src in
  let heuristics =
    { (Driver.Compiler.baseline ()) with Driver.Compiler.sched_priority = pri }
  in
  let c = Driver.Compiler.compile ~machine ~heuristics prepared in
  let r =
    Driver.Compiler.simulate ~machine ~dataset:Benchmarks.Bench.Train prepared c
  in
  Fmt.pr "  %-40s %10.0f cycles@." name r.Machine.Simulate.cycles

let () =
  let bench = if Array.length Sys.argv > 1 then Sys.argv.(1) else "rawcaudio" in
  Fmt.pr "=== Scheduling lab (extension): %s on %s ===@.@." bench machine.Machine.Config.name;
  let b = Benchmarks.Registry.find bench in
  let prepared = Driver.Compiler.prepare b in
  show_hot_block prepared;
  Fmt.pr "@.cycles under different rankings:@.";
  measure prepared "latency-weighted depth (baseline)" "lwd";
  measure prepared "inverse (worst case)" "(sub 0.0 lwd)";
  measure prepared "critical-path slack" "(sub 0.0 slack)";
  measure prepared "memory first" "(tern is_mem 1000.0 lwd)";
  measure prepared "fan-out weighted" "(add lwd (mul 2.0 n_succs))";
  Fmt.pr "@.evolving the ranking (small run)...@.";
  let params =
    { Gp.Params.scaled with Gp.Params.population_size = 16; generations = 5 }
  in
  let r = Driver.Study.specialize ~params Driver.Study.Sched_study bench in
  Fmt.pr "best evolved ranking : %s@." r.Driver.Study.best_expr;
  Fmt.pr "speedup vs baseline  : %.4f train / %.4f novel@."
    r.Driver.Study.train_speedup r.Driver.Study.novel_speedup
