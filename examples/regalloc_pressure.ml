(* Register allocation under pressure: sweep the number of architectural
   registers and watch the priority-based allocator trade spills for
   cycles, then compare the baseline savings function (Equation 2) against
   a few hand-written alternatives on the paper's 32-register machine.

   Run with:  dune exec examples/regalloc_pressure.exe  [benchmark] *)

let fs = Regalloc.Features.feature_set

let compile_with (prepared : Driver.Compiler.prepared) machine savings_src =
  let savings = Gp.Sexp.parse_real fs savings_src in
  let heuristics =
    { (Driver.Compiler.baseline ()) with Driver.Compiler.ra_savings = savings }
  in
  let c = Driver.Compiler.compile ~machine ~heuristics prepared in
  let r =
    Driver.Compiler.simulate ~machine ~dataset:Benchmarks.Bench.Train prepared c
  in
  (c.Driver.Compiler.spills, r.Machine.Simulate.cycles)

let () =
  let bench = if Array.length Sys.argv > 1 then Sys.argv.(1) else "djpeg" in
  Fmt.pr "=== Register allocation under pressure: %s ===@.@." bench;
  let b = Benchmarks.Registry.find bench in
  let prepared = Driver.Compiler.prepare b in
  Fmt.pr "register file sweep (baseline savings, Equation 2):@.";
  List.iter
    (fun k ->
      let machine = { Machine.Config.table3 with Machine.Config.gpr = k } in
      let spills, cycles =
        compile_with prepared machine Regalloc.Features.baseline_source
      in
      Fmt.pr "  %3d registers: %3d spilled ranges, %10.0f cycles@." k spills
        cycles)
    [ 64; 48; 32; 24; 16; 12; 8 ];
  let machine = Machine.Config.table3_regalloc in
  Fmt.pr
    "@.savings functions on the paper's 32-register machine (Section 6):@.";
  List.iter
    (fun (name, src) ->
      let spills, cycles = compile_with prepared machine src in
      Fmt.pr "  %-34s %3d spills, %10.0f cycles@." name spills cycles)
    [
      ("baseline w*(2*uses+defs)", Regalloc.Features.baseline_source);
      ("uses only", "uses");
      ("frequency only", "w");
      ("inverse range size", "(div w range_blocks)");
      ("degree-penalized", "(div (mul w (add uses defs)) degree)");
      ("spill everything equally", "1.0");
    ]
