(* The metaopt command-line tool.

     metaopt list                       list benchmarks
     metaopt run BENCH                  compile + simulate with baselines
     metaopt ir BENCH                   dump optimized IR
     metaopt profile BENCH              show profile statistics
     metaopt specialize STUDY BENCH     evolve a specialized heuristic
     metaopt evolve STUDY               evolve a general-purpose heuristic
     metaopt serve SOCK                 run the shared evaluation daemon
*)

open Cmdliner

let setup_logs () =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some Logs.Warning)

let study_conv =
  let parse = function
    | "hyperblock" -> Ok Driver.Study.Hyperblock_study
    | "regalloc" -> Ok Driver.Study.Regalloc_study
    | "prefetch" -> Ok Driver.Study.Prefetch_study
    | "sched" -> Ok Driver.Study.Sched_study
    | s ->
      Error (`Msg ("unknown study " ^ s ^ " (hyperblock|regalloc|prefetch|sched)"))
  in
  let print ppf k = Fmt.string ppf (Driver.Study.kind_name k) in
  Arg.conv (parse, print)

let bench_arg =
  Arg.(required & pos 1 (some string) None & info [] ~docv:"BENCH")

let study_arg =
  Arg.(required & pos 0 (some study_conv) None & info [] ~docv:"STUDY")

let pop =
  Arg.(value & opt int Gp.Params.scaled.Gp.Params.population_size
       & info [ "population" ] ~doc:"GP population size")

let gens =
  Arg.(value & opt int Gp.Params.scaled.Gp.Params.generations
       & info [ "generations" ] ~doc:"GP generations")

let seed =
  Arg.(value & opt int 42 & info [ "seed" ] ~doc:"GP random seed")

(* Reject a zero or negative worker count at parse time: the old
   behaviour (silent clamping to sequential) hid misconfigured runs. *)
let jobs_conv =
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= 1 -> Ok n
    | Some n ->
      Error
        (`Msg (Printf.sprintf "jobs must be a positive worker count (got %d)" n))
    | None -> Error (`Msg (Printf.sprintf "expected an integer, got %S" s))
  in
  Arg.conv (parse, Fmt.int)

let jobs =
  Arg.(value & opt jobs_conv 1
       & info [ "j"; "jobs" ]
           ~doc:"Evaluate candidates on $(docv) parallel workers \
                 (1 = sequential); must be positive"
           ~docv:"N")

(* Pool backend, checked against this platform's capabilities at parse
   time so an unusable choice fails loudly instead of degrading. *)
let backend_conv =
  let parse s =
    match Gp.Parmap.backend_of_name s with
    | Some b ->
      if List.mem b (Gp.Parmap.capabilities ()) then Ok b
      else
        Error
          (`Msg
            (Printf.sprintf
               "backend %s is not available on this platform (available: %s)"
               s
               (String.concat ", "
                  (List.map Gp.Parmap.backend_name (Gp.Parmap.capabilities ())))))
    | None -> Error (`Msg ("unknown backend " ^ s ^ " (seq|fork|domains)"))
  in
  Arg.conv (parse, fun ppf b -> Fmt.string ppf (Gp.Parmap.backend_name b))

let backend =
  Arg.(value & opt backend_conv `Fork
       & info [ "backend" ]
           ~doc:"Worker-pool backend: $(b,fork) (processes; fault isolation \
                 and kill-based timeouts), $(b,domains) (OCaml 5 \
                 shared-memory domains; cooperative safepoint deadlines, \
                 with unresponsive workers quarantined), or $(b,seq) \
                 (sequential in-process reference; deadlines inert).  \
                 Fitness is bit-identical across all three"
           ~docv:"BACKEND")

let cache_dir =
  Arg.(value & opt (some string) None
       & info [ "cache-dir" ]
           ~doc:"Persist the fitness cache in $(docv) so identical \
                 (heuristic, benchmark, dataset) evaluations are reused \
                 across runs"
           ~docv:"DIR")

let cache_shards =
  Arg.(value & opt int Driver.Shardstore.default_shards
       & info [ "cache-shards" ]
           ~doc:"Spread the on-disk fitness cache over $(docv) append-only \
                 shard files (1-256), each under its own lock, so \
                 concurrent runs sharing a --cache-dir only contend when \
                 they write the same shard.  Use the same value for every \
                 run sharing a directory"
           ~docv:"N")

let checkpoint_dir =
  Arg.(value & opt (some string) None
       & info [ "checkpoint-dir" ]
           ~doc:"Write a checkpoint to $(docv) after every generation and \
                 resume from the newest valid one, so an interrupted run \
                 loses at most one generation"
           ~docv:"DIR")

let eval_timeout =
  Arg.(value & opt (some float) None
       & info [ "eval-timeout" ]
           ~doc:"Kill any single candidate evaluation after $(docv) \
                 seconds of wall clock (it is retried, then scored 0)"
           ~docv:"SECONDS")

let eval_retries =
  Arg.(value & opt int 1
       & info [ "eval-retries" ]
           ~doc:"Retry a crashed or hung candidate evaluation $(docv) \
                 times on a fresh worker before giving it fitness 0")

let chunk_target_ms =
  Arg.(value & opt (some float) None
       & info [ "chunk-target-ms" ]
           ~doc:"Aim each dispatched work chunk at $(docv) milliseconds \
                 of wall clock: chunk length adapts to the observed \
                 per-task cost (pool default: 2.0)"
           ~docv:"MS")

let chunk_min =
  Arg.(value & opt (some int) None
       & info [ "chunk-min" ]
           ~doc:"Floor on the adaptive chunk length (pool default: 1).  \
                 --chunk-min 1 --chunk-max 1 pins the one-task-per-\
                 dispatch reference protocol"
           ~docv:"N")

let chunk_max =
  Arg.(value & opt (some int) None
       & info [ "chunk-max" ]
           ~doc:"Ceiling on the adaptive chunk length (pool default: 64)"
           ~docv:"N")

let no_fast_sim =
  Arg.(value & flag
       & info [ "no-fast-sim" ]
           ~doc:"Disable the simulation fast paths (artifact-keyed result \
                 sharing, trace replay, pre-decoded interpreter) and \
                 measure every candidate with a fresh reference-engine \
                 simulation.  Results are bit-identical either way; this \
                 flag only trades speed for the golden slow path")

let no_compiled_eval =
  Arg.(value & flag
       & info [ "no-compiled-eval" ]
           ~doc:"Evaluate heuristic expressions with the reference tree \
                 walker instead of the compiled-bytecode evaluator.  \
                 Results are bit-identical either way; this flag only \
                 trades speed for the golden slow path")

let connect =
  Arg.(value & opt (some string) None
       & info [ "connect" ]
           ~doc:"Evaluate candidates against the shared $(b,metaopt serve) \
                 daemon listening on Unix-domain socket $(docv) instead of \
                 a local worker pool.  Fitness is bit-identical to local \
                 evaluation; the daemon owns the store and the pool, so \
                 --cache-dir, --backend and --jobs describe the daemon's \
                 configuration, not this process's"
           ~docv:"SOCK")

let metrics_out =
  Arg.(value & opt (some string) None
       & info [ "metrics-out" ]
           ~doc:"Append one JSONL telemetry record per line to $(docv): \
                 per-generation fitness/size statistics, worker-pool \
                 latency and utilization, cache hit rates, and a run \
                 summary"
           ~docv:"FILE")

let trace =
  Arg.(value & flag
       & info [ "trace" ]
           ~doc:"With --metrics-out, also emit one span record per timed \
                 section (compile, simulate), for fine-grained traces")

(* Install the sink for the rest of the process; [at_exit] closes it so
   the last record is flushed even on an exception path. *)
let setup_metrics study (cfg : Driver.Study.config) metrics_out trace =
  match metrics_out with
  | None -> ()
  | Some path ->
    Gp.Telemetry.set_sink (Some (Gp.Telemetry.jsonl_sink path));
    Gp.Telemetry.set_trace trace;
    at_exit (fun () -> Gp.Telemetry.set_sink None);
    Gp.Telemetry.emit ~kind:"run_start"
      [
        ("study", Gp.Telemetry.String (Driver.Study.kind_name study));
        ( "population",
          Gp.Telemetry.Int cfg.Driver.Study.params.Gp.Params.population_size );
        ( "generations",
          Gp.Telemetry.Int cfg.Driver.Study.params.Gp.Params.generations );
        ("seed", Gp.Telemetry.Int cfg.Driver.Study.params.Gp.Params.rng_seed);
        ( "backend",
          Gp.Telemetry.String
            (Gp.Parmap.backend_name cfg.Driver.Study.backend) );
        ("jobs", Gp.Telemetry.Int cfg.Driver.Study.jobs);
      ]

let print_faults (f : Driver.Evaluator.fault_stats) =
  Fmt.pr "faults         : %d crashed, %d timed out, %d gave up, %d retried@."
    f.Driver.Evaluator.crashed f.Driver.Evaluator.timed_out
    f.Driver.Evaluator.gave_up f.Driver.Evaluator.retried

(* The single place a run's Study.config is assembled: every experiment
   command composes [config_term] and hands the record to the [_with]
   drivers. *)
let config_of pop gens seed backend jobs cache_dir cache_shards
    checkpoint_dir eval_timeout eval_retries chunk_target_ms chunk_min
    chunk_max no_fast_sim no_compiled_eval connect : Driver.Study.config =
  {
    Driver.Study.default_config with
    Driver.Study.params =
      {
        Gp.Params.scaled with
        Gp.Params.population_size = pop;
        generations = gens;
        rng_seed = seed;
      };
    backend;
    jobs;
    cache_dir;
    cache_shards;
    checkpoint_dir;
    timeout_s = eval_timeout;
    retries = eval_retries;
    chunk_target_ms;
    chunk_min;
    chunk_max;
    fast_sim = not no_fast_sim;
    compiled_eval = not no_compiled_eval;
    remote = connect;
  }

let config_term =
  Term.(
    const config_of $ pop $ gens $ seed $ backend $ jobs $ cache_dir
    $ cache_shards $ checkpoint_dir $ eval_timeout $ eval_retries
    $ chunk_target_ms $ chunk_min $ chunk_max
    $ no_fast_sim $ no_compiled_eval $ connect)

(* --- list ---------------------------------------------------------------- *)

let list_cmd =
  let run () =
    List.iter
      (fun (b : Benchmarks.Bench.t) ->
        Fmt.pr "%-14s %-10s %-5s %s@." b.Benchmarks.Bench.name
          (Benchmarks.Bench.string_of_suite b.Benchmarks.Bench.suite)
          (if b.Benchmarks.Bench.fp then "fp" else "int")
          b.Benchmarks.Bench.description)
      Benchmarks.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List all benchmarks")
    Term.(const run $ const ())

(* --- run ----------------------------------------------------------------- *)

let run_bench name heuristics_file =
  setup_logs ();
  let b = Benchmarks.Registry.find name in
  let prepared = Driver.Compiler.prepare b in
  let machine =
    if b.Benchmarks.Bench.fp then Machine.Config.itanium1
    else Machine.Config.table3
  in
  let heuristics =
    match heuristics_file with
    | Some path ->
      Driver.Heuristics_file.load
        ~base:(Driver.Compiler.baseline ~prefetch:b.Benchmarks.Bench.fp ())
        path
    | None -> Driver.Compiler.baseline ~prefetch:b.Benchmarks.Bench.fp ()
  in
  let compiled = Driver.Compiler.compile ~machine ~heuristics prepared in
  let res =
    Driver.Compiler.simulate ~machine ~dataset:Benchmarks.Bench.Train prepared
      compiled
  in
  Fmt.pr "benchmark       : %s (%s)@." name b.Benchmarks.Bench.description;
  Fmt.pr "machine         : %s@." machine.Machine.Config.name;
  Fmt.pr "dynamic instrs  : %d@." res.Machine.Simulate.dynamic_instrs;
  Fmt.pr "cycles          : %.0f@." res.Machine.Simulate.cycles;
  Fmt.pr "branches        : %d (%d mispredicted)@." res.Machine.Simulate.branches
    res.Machine.Simulate.mispredicts;
  Fmt.pr "hyperblocks     : %d regions, %d blocks merged@."
    compiled.Driver.Compiler.hb_stats.Hyperblock.Form.regions_formed
    compiled.Driver.Compiler.hb_stats.Hyperblock.Form.blocks_merged;
  Fmt.pr "spills          : %d@." compiled.Driver.Compiler.spills;
  Fmt.pr "prefetches      : %d of %d candidates@."
    compiled.Driver.Compiler.prefetches.Prefetch.Insert.inserted
    compiled.Driver.Compiler.prefetches.Prefetch.Insert.candidates;
  let c = res.Machine.Simulate.cache in
  Fmt.pr "cache           : %d loads, %d/%d/%d L1/L2/L3 hits, %d mem, %d stall cycles@."
    c.Machine.Cache.loads c.Machine.Cache.l1_hits c.Machine.Cache.l2_hits
    c.Machine.Cache.l3_hits c.Machine.Cache.memory_accesses
    c.Machine.Cache.stall_cycles

let run_cmd =
  Cmd.v (Cmd.info "run" ~doc:"Compile and simulate one benchmark")
    Term.(
      const run_bench
      $ Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCH")
      $ Arg.(value & opt (some string) None
             & info [ "heuristics" ]
                 ~doc:"Apply heuristics from a saved file"))

(* --- ir ------------------------------------------------------------------ *)

let ir_bench name =
  let b = Benchmarks.Registry.find name in
  let prepared = Driver.Compiler.prepare b in
  Fmt.pr "%a@." Ir.Func.pp_program prepared.Driver.Compiler.optimized

let ir_cmd =
  Cmd.v (Cmd.info "ir" ~doc:"Dump a benchmark's optimized IR")
    Term.(
      const ir_bench
      $ Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCH"))

(* --- profile ---------------------------------------------------------------- *)

let profile_bench name =
  let b = Benchmarks.Registry.find name in
  let prepared = Driver.Compiler.prepare b in
  let prof = prepared.Driver.Compiler.prof in
  Fmt.pr "profile of %s on its training dataset (%d dynamic instructions)@.@."
    name prof.Profile.Prof.total_steps;
  List.iter
    (fun (f : Ir.Func.t) ->
      Fmt.pr "function %s:@." f.Ir.Func.fname;
      List.iter
        (fun (blk : Ir.Func.block) ->
          let count =
            Profile.Prof.block_count prof ~fname:f.Ir.Func.fname
              ~label:blk.Ir.Func.blabel
          in
          let branch =
            match
              Profile.Prof.term_branch_stats prof ~fname:f.Ir.Func.fname
                ~label:blk.Ir.Func.blabel
            with
            | Some bs ->
              Fmt.str "  branch: %.0f%% taken, %.0f%% predictable"
                (100.0 *. Profile.Prof.taken_bias bs)
                (100.0 *. Profile.Prof.predictability bs)
            | None -> ""
          in
          Fmt.pr "  %-12s %9d executions  %2d instrs%s@." blk.Ir.Func.blabel
            count
            (List.length blk.Ir.Func.instrs)
            branch)
        f.Ir.Func.blocks)
    prepared.Driver.Compiler.optimized.Ir.Func.funcs

let profile_cmd =
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Show block execution counts and branch statistics")
    Term.(
      const profile_bench
      $ Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCH"))

(* --- specialize ----------------------------------------------------------- *)

let specialize study bench cfg metrics_out trace save =
  setup_logs ();
  setup_metrics study cfg metrics_out trace;
  let r = Driver.Study.specialize_with cfg study bench in
  (match save with
  | Some path ->
    let fs = Driver.Study.feature_set_of study in
    let g =
      Gp.Sexp.parse_genome fs ~sort:(Driver.Study.sort_of study)
        r.Driver.Study.best_expr
    in
    Driver.Heuristics_file.save path (Driver.Study.heuristics_with study g);
    Fmt.pr "saved heuristics to %s@." path
  | None -> ());
  Fmt.pr "benchmark      : %s@." r.Driver.Study.bench;
  Fmt.pr "train speedup  : %.3f@." r.Driver.Study.train_speedup;
  Fmt.pr "novel speedup  : %.3f@." r.Driver.Study.novel_speedup;
  Fmt.pr "best heuristic : %s@." r.Driver.Study.best_expr;
  print_faults r.Driver.Study.faults;
  Fmt.pr "evolution      :@.";
  List.iter
    (fun (s : Gp.Evolve.generation_stats) ->
      Fmt.pr "  gen %2d  best %.3f  mean %.3f  size %d@." s.Gp.Evolve.gen
        s.Gp.Evolve.best_fitness s.Gp.Evolve.mean_fitness s.Gp.Evolve.best_size)
    r.Driver.Study.history

let specialize_cmd =
  Cmd.v
    (Cmd.info "specialize"
       ~doc:"Evolve an application-specific priority function")
    Term.(
      const specialize $ study_arg $ bench_arg $ config_term $ metrics_out
      $ trace
      $ Arg.(value & opt (some string) None
             & info [ "save" ] ~doc:"Write the evolved heuristics to a file"))

(* --- evolve (general-purpose) ---------------------------------------------- *)

let evolve study cfg metrics_out trace =
  setup_logs ();
  setup_metrics study cfg metrics_out trace;
  let benches =
    match study with
    | Driver.Study.Hyperblock_study -> Benchmarks.Registry.hyperblock_train
    | Driver.Study.Regalloc_study -> Benchmarks.Registry.regalloc_train
    | Driver.Study.Prefetch_study -> Benchmarks.Registry.prefetch_train
    | Driver.Study.Sched_study -> Benchmarks.Registry.hyperblock_train
  in
  let g = Driver.Study.evolve_general_with cfg study benches in
  Fmt.pr "best heuristic: %s@.@." g.Driver.Study.best_expr;
  print_faults g.Driver.Study.faults;
  Fmt.pr "%-16s %8s %8s@." "benchmark" "train" "novel";
  let avg sel rows =
    List.fold_left (fun a r -> a +. sel r) 0.0 rows
    /. float_of_int (List.length rows)
  in
  List.iter
    (fun (n, t, v) -> Fmt.pr "%-16s %8.3f %8.3f@." n t v)
    g.Driver.Study.train_rows;
  Fmt.pr "%-16s %8.3f %8.3f@." "average"
    (avg (fun (_, t, _) -> t) g.Driver.Study.train_rows)
    (avg (fun (_, _, v) -> v) g.Driver.Study.train_rows)

let evolve_cmd =
  Cmd.v
    (Cmd.info "evolve" ~doc:"Evolve a general-purpose priority function (DSS)")
    Term.(const evolve $ study_arg $ config_term $ metrics_out $ trace)

(* --- compare: one benchmark under explicit heuristic expressions ----------- *)

let compare_cmd =
  let run bench hb ra pf sp =
    setup_logs ();
    let b = Benchmarks.Registry.find bench in
    let machine =
      if b.Benchmarks.Bench.fp then Machine.Config.itanium1
      else Machine.Config.table3
    in
    let opt_config =
      if b.Benchmarks.Bench.fp then Opt.Pipeline.no_unroll
      else Opt.Pipeline.default
    in
    let prepared = Driver.Compiler.prepare ~opt_config b in
    let base = Driver.Compiler.baseline ~prefetch:b.Benchmarks.Bench.fp () in
    let heuristics =
      {
        Driver.Compiler.hb_priority =
          (match hb with
          | Some s -> Gp.Sexp.parse_real Hyperblock.Features.feature_set s
          | None -> base.Driver.Compiler.hb_priority);
        ra_savings =
          (match ra with
          | Some s -> Gp.Sexp.parse_real Regalloc.Features.feature_set s
          | None -> base.Driver.Compiler.ra_savings);
        pf_confidence =
          (match pf with
          | Some s -> Some (Gp.Sexp.parse_bool Prefetch.Features.feature_set s)
          | None -> base.Driver.Compiler.pf_confidence);
        sched_priority =
          (match sp with
          | Some s -> Gp.Sexp.parse_real Sched.Priority.feature_set s
          | None -> base.Driver.Compiler.sched_priority);
      }
    in
    let measure h =
      let c = Driver.Compiler.compile ~machine ~heuristics:h prepared in
      (Driver.Compiler.simulate ~machine ~dataset:Benchmarks.Bench.Train
         prepared c).Machine.Simulate.cycles
    in
    let base_cycles = measure base in
    let cand_cycles = measure heuristics in
    Fmt.pr "baseline  : %.0f cycles@." base_cycles;
    Fmt.pr "candidate : %.0f cycles@." cand_cycles;
    Fmt.pr "speedup   : %.4f@." (base_cycles /. cand_cycles)
  in
  let opt name doc =
    Arg.(value & opt (some string) None & info [ name ] ~doc)
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:
         "Compare explicit heuristic expressions against the baselines on           one benchmark")
    Term.(
      const run
      $ Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCH")
      $ opt "hyperblock" "hyperblock priority expression"
      $ opt "regalloc" "register-allocation savings expression"
      $ opt "prefetch" "prefetch confidence expression (Boolean)"
      $ opt "sched" "list-scheduling priority expression")

(* --- features: print a study's feature vocabulary --------------------------- *)

let features_cmd =
  let run study =
    let fs = Driver.Study.feature_set_of study in
    Fmt.pr "real-valued features:@.";
    for i = 0 to Gp.Feature_set.n_reals fs - 1 do
      Fmt.pr "  %s@." (Gp.Feature_set.real_name fs i)
    done;
    Fmt.pr "Boolean features:@.";
    for i = 0 to Gp.Feature_set.n_bools fs - 1 do
      Fmt.pr "  %s@." (Gp.Feature_set.bool_name fs i)
    done;
    Fmt.pr "baseline: %s@."
      (Gp.Sexp.to_string fs (Driver.Study.baseline_genome_of study))
  in
  Cmd.v
    (Cmd.info "features" ~doc:"Show a study's feature set and baseline")
    Term.(const run $ study_arg)

(* --- simplify: clean an expression for presentation ------------------------- *)

let simplify_cmd =
  let run study expr =
    let fs = Driver.Study.feature_set_of study in
    let g = Gp.Sexp.parse_genome fs ~sort:(Driver.Study.sort_of study) expr in
    Fmt.pr "%s@." (Gp.Sexp.to_string fs (Gp.Simplify.genome g))
  in
  Cmd.v
    (Cmd.info "simplify"
       ~doc:"Algebraically simplify a priority-function expression")
    Term.(
      const run $ study_arg
      $ Arg.(required & pos 1 (some string) None & info [] ~docv:"EXPR"))

(* --- fuzz: differential oracle campaigns ------------------------------------ *)

let fuzz_cmd =
  let run seed count oracle out =
    let oracles =
      match oracle with
      | None -> Fuzz.Oracle.all
      | Some name -> (
        match Fuzz.Oracle.find name with
        | Some o -> [ o ]
        | None ->
          Fmt.epr "unknown oracle %S (available: %s)@." name
            (String.concat ", " Fuzz.Oracle.names);
          exit 2)
    in
    let summary =
      Fuzz.run ~oracles ~progress:(fun m -> Fmt.epr "%s@." m) ~seed ~count ()
    in
    Fmt.pr "%a" Fuzz.pp_summary summary;
    let n = Fuzz.divergences summary in
    (match out with
    | Some path when n > 0 ->
      let oc = open_out path in
      output_string oc (Fuzz.to_string summary);
      close_out oc;
      Fmt.pr "counterexamples written to %s@." path
    | _ -> ());
    if n > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing: random programs and genomes through the           eleven redundancy oracles (engine, replay, cache, simplify,           checkpoint, parmap, compiled_vs_walk, chaos_vs_clean,           warm_vs_cold, chunked_vs_seq, served_vs_local)")
    Term.(
      const run
      $ Arg.(value & opt int 0 & info [ "seed" ] ~doc:"campaign base seed")
      $ Arg.(
          value & opt int 100
          & info [ "count" ] ~doc:"trial budget per unit-weight oracle")
      $ Arg.(
          value & opt (some string) None
          & info [ "oracle" ] ~doc:"run a single named oracle")
      $ Arg.(
          value & opt (some string) None
          & info [ "out" ]
              ~doc:"write counterexample reports to this file on failure"))

(* --- chaos: deterministic fault-injection trials ---------------------------- *)

let chaos_cmd =
  let run seed count plan =
    let plan =
      match plan with
      | None -> None
      | Some spec -> (
        match Gp.Chaos.plan_of_string ~seed spec with
        | Ok p -> Some p
        | Error msg ->
          Fmt.epr "bad --plan: %s@." msg;
          exit 2)
    in
    let failures = ref 0 in
    for i = 0 to count - 1 do
      let s = seed + i in
      let p =
        match plan with Some p -> p | None -> Gp.Chaos.seeded ~seed:s
      in
      Fmt.epr "chaos seed %d: %s@." s (Gp.Chaos.plan_to_string p);
      match Fuzz.Oracle.chaos_trial ?plan s with
      | None -> Fmt.pr "seed %d: ok@." s
      | Some why ->
        incr failures;
        Fmt.pr "seed %d: DIVERGED — %s@." s why;
        Fmt.pr "  replay: metaopt chaos --seed %d --count 1%s@." s
          (match plan with
          | None -> ""
          | Some p ->
            Printf.sprintf " --plan %S" (Gp.Chaos.plan_to_string p))
    done;
    Fmt.pr "%d/%d trials diverged@." !failures count;
    if !failures > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Deterministic fault injection: evolve a tiny study on the \
          supervised domains pool while a seeded plan injects hangs, \
          crashes, torn cache lines and truncated checkpoints, then \
          check the result is bit-identical to a fault-free sequential \
          run (including a resume over the damaged artifacts)")
    Term.(
      const run
      $ Arg.(value & opt int 0 & info [ "seed" ] ~doc:"base trial seed")
      $ Arg.(value & opt int 5 & info [ "count" ] ~doc:"number of trials")
      $ Arg.(
          value & opt (some string) None
          & info [ "plan" ]
              ~doc:
                "explicit fault plan \
                 ($(i,SITE)[:$(i,KEY)][@$(i,ATTEMPT)]=$(i,FAULT), \
                 comma-separated) instead of the seed-derived one"))

(* --- serve: the shared evaluation daemon ------------------------------------ *)

let serve_cmd =
  let run socket backend jobs eval_timeout eval_retries cache_dir cache_shards
      queue_cap inflight_cap idle_timeout metrics_out chaos_plan chaos_seed =
    setup_logs ();
    (match chaos_plan with
    | None -> ()
    | Some spec -> (
      match Gp.Chaos.plan_of_string ~seed:chaos_seed spec with
      | Ok p -> Gp.Chaos.arm p
      | Error msg ->
        Fmt.epr "bad --chaos-plan: %s@." msg;
        exit 2));
    let pool =
      Gp.Parmap.pool ~backend ~jobs ?timeout_s:eval_timeout
        ~retries:eval_retries ()
    in
    let cfg =
      {
        Serve.Server.socket;
        pool;
        cache_dir;
        cache_shards;
        queue_cap;
        inflight_cap;
        idle_timeout_s = idle_timeout;
        metrics_out;
      }
    in
    Fmt.epr "metaopt serve: listening on %s (%s backend, %d jobs)@." socket
      (Gp.Parmap.backend_name backend) jobs;
    Serve.Server.run cfg;
    Fmt.epr "metaopt serve: drained and stopped@."
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the shared evaluation daemon: studies started with \
          $(b,--connect) $(i,SOCK) evaluate candidates here, sharing one \
          persistent fitness store and one warm worker pool.  Misses from \
          all clients coalesce into single pool dispatches; identical \
          work is evaluated once.  SIGTERM drains queued work, flushes \
          the store and exits")
    Term.(
      const run
      $ Arg.(required & pos 0 (some string) None
             & info [] ~docv:"SOCK"
                 ~doc:"Unix-domain socket path to listen on")
      $ backend $ jobs $ eval_timeout $ eval_retries $ cache_dir
      $ cache_shards
      $ Arg.(value & opt int 4096
             & info [ "queue-cap" ]
                 ~doc:"Reject evaluation batches that would push the \
                       pending-work queue past $(docv) tasks"
                 ~docv:"N")
      $ Arg.(value & opt int 8
             & info [ "inflight-cap" ]
                 ~doc:"Reject a client's batch while it already has \
                       $(docv) unanswered requests"
                 ~docv:"N")
      $ Arg.(value & opt (some float) None
             & info [ "idle-timeout" ]
                 ~doc:"Disconnect a client quiet for $(docv) seconds \
                       with nothing in flight"
                 ~docv:"SECONDS")
      $ Arg.(value & opt (some string) None
             & info [ "metrics-out" ]
                 ~doc:"Write a one-line JSON counter summary (requests, \
                       batched, rejected, store hits, coalesced, \
                       evaluated) to $(docv) on shutdown"
                 ~docv:"FILE")
      $ Arg.(value & opt (some string) None
             & info [ "chaos-plan" ]
                 ~doc:"Arm a deterministic fault plan in the daemon \
                       (same syntax as $(b,metaopt chaos --plan)), for \
                       testing served evaluation under injected faults"
                 ~docv:"PLAN")
      $ Arg.(value & opt int 0
             & info [ "chaos-seed" ] ~doc:"seed for --chaos-plan"))

(* --------------------------------------------------------------------------- *)

let main =
  Cmd.group
    (Cmd.info "metaopt" ~version:"1.0.0"
       ~doc:"Meta Optimization: improving compiler heuristics with GP")
    [ list_cmd; run_cmd; ir_cmd; profile_cmd; specialize_cmd; evolve_cmd;
      compare_cmd; features_cmd; simplify_cmd; fuzz_cmd; chaos_cmd;
      serve_cmd ]

let () =
  (* Make --connect work: install the serve client as the study layer's
     remote dialer (the driver library cannot depend on serve). *)
  Serve.Client.register ();
  exit (Cmd.eval main)
