(* Prefetch insertion [Mowry 94, as adapted by ORC].

   For every candidate load whose Boolean confidence function says yes and
   whose stride is known and non-zero, a software prefetch for the address
   [prefetch_iters] iterations ahead is inserted immediately after the
   load: one add to compute the future offset and the prefetch itself.
   These instructions consume issue slots and memory-unit bandwidth, can
   evict useful lines, and are dropped past the machine's prefetch-queue
   depth — all the ways aggressive prefetching hurts, while timely
   prefetches convert load misses into hits. *)

type config = {
  prefetch_iters : int;       (* distance, in iterations *)
}

let default_config = { prefetch_iters = 4 }

type decision_fn = Analysis.candidate -> bool

let baseline_decision ~machine (p : Ir.Func.program) : decision_fn =
 fun c ->
  Gp.Eval.bool (Features.environment ~machine p c) Features.baseline_expr

(* Compiled once per [decision_of_expr]; evaluated per candidate load. *)
let decision_of_expr ?(compiled = true) ~machine (p : Ir.Func.program)
    (e : Gp.Expr.bexpr) : decision_fn =
  let eval =
    if compiled then Gp.Evalc.bool_fn e else fun env -> Gp.Eval.bool env e
  in
  fun c -> eval (Features.environment ~machine p c)

type stats = {
  candidates : int;
  inserted : int;
}

let run ?(config = default_config) ~(decision : decision_fn)
    (p : Ir.Func.program) : stats =
  let candidates = ref 0 and inserted = ref 0 in
  List.iter
    (fun (f : Ir.Func.t) ->
      let cands = Analysis.candidates f in
      candidates := !candidates + List.length cands;
      (* Group accepted candidates by (block, instr id). *)
      let accepted = Hashtbl.create 16 in
      List.iter
        (fun (c : Analysis.candidate) ->
          match c.Analysis.stride with
          | Some s when s <> 0 && decision c ->
            Hashtbl.replace accepted (c.Analysis.block_label, c.Analysis.instr_id) s
          | _ -> ())
        cands;
      if Hashtbl.length accepted > 0 then begin
        List.iter
          (fun (b : Ir.Func.block) ->
            let out = ref [] in
            List.iter
              (fun (i : Ir.Instr.t) ->
                out := i :: !out;
                match
                  ( i.Ir.Instr.kind,
                    Hashtbl.find_opt accepted
                      (b.Ir.Func.blabel, i.Ir.Instr.id) )
                with
                | Ir.Instr.Load (_, addr), Some stride ->
                  incr inserted;
                  let dist = stride * config.prefetch_iters in
                  let t = Ir.Func.fresh_reg f in
                  let guard = i.Ir.Instr.guard in
                  out :=
                    {
                      Ir.Instr.id = Ir.Func.fresh_instr_id f;
                      guard;
                      kind =
                        Ir.Instr.Ibin
                          (Ir.Types.Add, t, addr.Ir.Instr.offset,
                           Ir.Types.Imm dist);
                    }
                    :: !out;
                  out :=
                    {
                      Ir.Instr.id = Ir.Func.fresh_instr_id f;
                      guard;
                      kind =
                        Ir.Instr.Prefetch
                          { addr with
                            Ir.Instr.offset = Ir.Types.Reg t;
                            hazard = false };
                    }
                    :: !out
                | _ -> ())
              b.Ir.Func.instrs;
            b.Ir.Func.instrs <- List.rev !out)
          f.Ir.Func.blocks;
        Ir.Func.renumber f
      end)
    p.Ir.Func.funcs;
  { candidates = !candidates; inserted = !inserted }
