(* Prefetch insertion [Mowry 94, as adapted by ORC].

   For every candidate load whose Boolean confidence function says yes and
   whose stride is known and non-zero, a software prefetch for the address
   [prefetch_iters] iterations ahead is inserted immediately after the
   load: one add to compute the future offset and the prefetch itself.
   These instructions consume issue slots and memory-unit bandwidth, can
   evict useful lines, and are dropped past the machine's prefetch-queue
   depth — all the ways aggressive prefetching hurts, while timely
   prefetches convert load misses into hits. *)

type config = {
  prefetch_iters : int;       (* distance, in iterations *)
}

let default_config = { prefetch_iters = 4 }

type decision_fn = Analysis.candidate -> bool

let baseline_decision ~machine (p : Ir.Func.program) : decision_fn =
 fun c ->
  Gp.Eval.bool (Features.environment ~machine p c) Features.baseline_expr

(* Compiled once per [decision_of_expr]; evaluated per candidate load. *)
let decision_of_expr ?(compiled = true) ~machine (p : Ir.Func.program)
    (e : Gp.Expr.bexpr) : decision_fn =
  let eval =
    if compiled then Gp.Evalc.bool_fn e else fun env -> Gp.Eval.bool env e
  in
  fun c -> eval (Features.environment ~machine p c)

(* Vectorized form: all of a function's eligible candidates through one
   batch evaluation. *)
type decision_batch = Analysis.candidate array -> bool array

let decision_batch_of_expr ?(compiled = true) ~machine (p : Ir.Func.program)
    (e : Gp.Expr.bexpr) : decision_batch =
  if compiled then begin
    let prog = Gp.Evalc.compile_bool e in
    fun cs ->
      Gp.Evalc.run_batch_bool prog
        (Array.map (fun c -> Features.environment ~machine p c) cs)
  end
  else
    fun cs ->
      Array.map
        (fun c -> Gp.Eval.bool (Features.environment ~machine p c) e)
        cs

type stats = {
  candidates : int;
  inserted : int;
}

let run_with ?(config = default_config)
    ~(decide : Analysis.candidate array -> bool array) (p : Ir.Func.program) :
    stats =
  let candidates = ref 0 and inserted = ref 0 in
  List.iter
    (fun (f : Ir.Func.t) ->
      let cands = Analysis.candidates f in
      candidates := !candidates + List.length cands;
      (* Only candidates with a known non-zero stride can be prefetched:
         the confidence function is consulted for those alone, in
         candidate order, one batch per function.  Group the accepted
         ones by (block, instr id). *)
      let eligible =
        Array.of_list
          (List.filter
             (fun (c : Analysis.candidate) ->
               match c.Analysis.stride with Some s -> s <> 0 | None -> false)
             cands)
      in
      let verdicts =
        if Array.length eligible = 0 then [||] else decide eligible
      in
      let accepted = Hashtbl.create 16 in
      Array.iteri
        (fun k (c : Analysis.candidate) ->
          if verdicts.(k) then
            match c.Analysis.stride with
            | Some s ->
              Hashtbl.replace accepted
                (c.Analysis.block_label, c.Analysis.instr_id) s
            | None -> ())
        eligible;
      if Hashtbl.length accepted > 0 then begin
        List.iter
          (fun (b : Ir.Func.block) ->
            let out = ref [] in
            List.iter
              (fun (i : Ir.Instr.t) ->
                out := i :: !out;
                match
                  ( i.Ir.Instr.kind,
                    Hashtbl.find_opt accepted
                      (b.Ir.Func.blabel, i.Ir.Instr.id) )
                with
                | Ir.Instr.Load (_, addr), Some stride ->
                  incr inserted;
                  let dist = stride * config.prefetch_iters in
                  let t = Ir.Func.fresh_reg f in
                  let guard = i.Ir.Instr.guard in
                  out :=
                    {
                      Ir.Instr.id = Ir.Func.fresh_instr_id f;
                      guard;
                      kind =
                        Ir.Instr.Ibin
                          (Ir.Types.Add, t, addr.Ir.Instr.offset,
                           Ir.Types.Imm dist);
                    }
                    :: !out;
                  out :=
                    {
                      Ir.Instr.id = Ir.Func.fresh_instr_id f;
                      guard;
                      kind =
                        Ir.Instr.Prefetch
                          { addr with
                            Ir.Instr.offset = Ir.Types.Reg t;
                            hazard = false };
                    }
                    :: !out
                | _ -> ())
              b.Ir.Func.instrs;
            b.Ir.Func.instrs <- List.rev !out)
          f.Ir.Func.blocks;
        Ir.Func.renumber f
      end)
    p.Ir.Func.funcs;
  { candidates = !candidates; inserted = !inserted }

let run ?config ~(decision : decision_fn) (p : Ir.Func.program) : stats =
  run_with ?config ~decide:(fun cs -> Array.map decision cs) p

let run_batched ?config ~(decision_batch : decision_batch)
    (p : Ir.Func.program) : stats =
  run_with ?config ~decide:decision_batch p
