(** Loop and array-access analysis for software prefetching: the analysis
    half of Mowry's algorithm.

    Finds basic induction variables, classifies load addresses as affine
    in an induction variable (yielding a per-iteration word stride), and
    statically estimates loop trip counts by resolving compare bounds
    through function-wide constant definition chains. *)

type induction = {
  ivar : Ir.Types.reg;
  step : int;
}

type candidate = {
  fname : string;
  block_label : Ir.Types.label;
  instr_id : int;                (** the load's instruction id *)
  array : string option;         (** named global, if known *)
  stride : int option;           (** words per iteration *)
  loop_header : Ir.Types.label;
  loop_depth : int;
  trip_estimate : float option;
  loads_in_loop : int;           (** reference streams sharing the loop *)
  body_ops : int;
}

val candidates : Ir.Func.t -> candidate list
(** Every load inside a loop, analyzed in its innermost containing
    loop. *)
