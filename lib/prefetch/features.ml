(* Features for the Boolean prefetch-confidence priority function. *)

let feature_set : Gp.Feature_set.t =
  Gp.Feature_set.make
    ~reals:
      [
        "stride";            (* words per iteration, 0 when unknown *)
        "abs_stride";
        "trip_estimate";     (* static trip-count guess, 0 when unknown *)
        "loop_depth";
        "loads_in_loop";
        "body_ops";
        "array_size";        (* words; 0 when the array is unknown *)
        "line_reuse";        (* cache-line words / |stride| *)
        "cache_pressure";    (* array_size / L1 size *)
      ]
    ~bools:
      [ "stride_known"; "trip_known"; "is_nested"; "stride_lt_line";
        "large_array" ]

(* ORC's baseline confidence function "is simply based upon how well the
   compiler can estimate loop trip counts": prefetch whenever the trip
   count is statically known or looks substantial.  Deliberately
   aggressive, matching the paper's observation that ORC overzealously
   prefetches. *)
let baseline_source = "(or trip_known (gt trip_estimate 4.0))"

let baseline_expr : Gp.Expr.bexpr =
  Gp.Sexp.parse_bool feature_set baseline_source

let baseline_genome : Gp.Expr.genome = Gp.Expr.Bool baseline_expr

let environment ~(machine : Machine.Config.t) (p : Ir.Func.program)
    (c : Analysis.candidate) : Gp.Feature_set.env =
  let fs = feature_set in
  let env = Gp.Feature_set.empty_env fs in
  let set = Gp.Feature_set.set_real fs env in
  let setb = Gp.Feature_set.set_bool fs env in
  let stride = Option.value ~default:0 c.Analysis.stride in
  let line = machine.Machine.Config.l1.Machine.Config.line_words in
  let array_size =
    match c.Analysis.array with
    | Some g -> (Ir.Func.find_global p g).Ir.Func.gsize
    | None -> 0
  in
  set "stride" (float_of_int stride);
  set "abs_stride" (Float.abs (float_of_int stride));
  set "trip_estimate" (Option.value ~default:0.0 c.Analysis.trip_estimate);
  set "loop_depth" (float_of_int c.Analysis.loop_depth);
  set "loads_in_loop" (float_of_int c.Analysis.loads_in_loop);
  set "body_ops" (float_of_int c.Analysis.body_ops);
  set "array_size" (float_of_int array_size);
  set "line_reuse"
    (if stride = 0 then 0.0
     else float_of_int line /. Float.abs (float_of_int stride));
  set "cache_pressure"
    (float_of_int array_size
    /. float_of_int machine.Machine.Config.l1.Machine.Config.size_words);
  setb "stride_known" (c.Analysis.stride <> None);
  setb "trip_known" (c.Analysis.trip_estimate <> None);
  setb "is_nested" (c.Analysis.loop_depth > 1);
  setb "stride_lt_line" (stride <> 0 && abs stride < line);
  setb "large_array"
    (array_size > machine.Machine.Config.l1.Machine.Config.size_words);
  env
