(** Prefetch insertion [Mowry 94, as adapted by ORC].

    For every candidate load whose confidence function says yes and whose
    stride is known and non-zero, a software prefetch [prefetch_iters]
    iterations ahead is inserted after the load: one add for the future
    offset plus the prefetch itself.  These consume issue slots and
    memory-queue entries — all the ways aggressive prefetching hurts —
    while timely prefetches convert load misses into hits. *)

type config = { prefetch_iters : int }

val default_config : config

type decision_fn = Analysis.candidate -> bool

val baseline_decision :
  machine:Machine.Config.t -> Ir.Func.program -> decision_fn

val decision_of_expr :
  ?compiled:bool ->
  machine:Machine.Config.t -> Ir.Func.program -> Gp.Expr.bexpr -> decision_fn
(** Compiles the confidence function once through {!Gp.Evalc} (default);
    [~compiled:false] keeps the {!Gp.Eval} tree-walker, the bit-identical
    executable reference. *)

type decision_batch = Analysis.candidate array -> bool array
(** Vectorized confidence: one call judges many candidates.  With
    {!run_batched} the pass batches all of a function's eligible
    candidates (known non-zero stride) through a single evaluation —
    same verdicts, bit-identical insertions to {!decision_fn}. *)

val decision_batch_of_expr :
  ?compiled:bool ->
  machine:Machine.Config.t ->
  Ir.Func.program ->
  Gp.Expr.bexpr ->
  decision_batch
(** Batch counterpart of {!decision_of_expr}:
    {!Gp.Evalc.run_batch_bool} when [compiled] (default), a per-point
    tree walk otherwise. *)

type stats = {
  candidates : int;
  inserted : int;
}

val run : ?config:config -> decision:decision_fn -> Ir.Func.program -> stats

val run_batched :
  ?config:config -> decision_batch:decision_batch -> Ir.Func.program -> stats
(** {!run} with the confidence function consulted once per function
    over the eligible-candidate array instead of once per candidate. *)
