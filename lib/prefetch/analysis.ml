(* Loop and array-access analysis for software prefetching.

   Identifies basic induction variables (r = r + c per iteration, possibly
   through a move), then classifies the address of every load in a loop as
   affine in an induction variable where possible, yielding a per-iteration
   stride in words.  This is the analysis half of Mowry's algorithm; the
   insertion half lives in [Insert]. *)

type induction = {
  ivar : Ir.Types.reg;
  step : int;                    (* per-iteration increment *)
}

type candidate = {
  fname : string;
  block_label : Ir.Types.label;
  instr_id : int;                (* the Load's id *)
  array : string option;         (* named global, if known *)
  stride : int option;           (* words per iteration; None = unknown *)
  loop_header : Ir.Types.label;
  loop_depth : int;
  trip_estimate : float option;  (* static trip-count guess *)
  loads_in_loop : int;
  body_ops : int;
}

(* Definitions of each register inside the given blocks; registers defined
   more than once map to None. *)
let unique_defs (blocks : Ir.Func.block list) :
    (Ir.Types.reg, Ir.Instr.kind option) Hashtbl.t =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (b : Ir.Func.block) ->
      List.iter
        (fun (i : Ir.Instr.t) ->
          match Ir.Instr.def i.Ir.Instr.kind with
          | Some d ->
            if Hashtbl.mem tbl d then Hashtbl.replace tbl d None
            else Hashtbl.replace tbl d (Some i.Ir.Instr.kind)
          | None -> ())
        b.Ir.Func.instrs)
    blocks;
  tbl

(* Basic induction variables among the loop blocks. *)
let induction_vars (defs : (Ir.Types.reg, Ir.Instr.kind option) Hashtbl.t) :
    induction list =
  let direct r =
    match Hashtbl.find_opt defs r with
    | Some (Some (Ir.Instr.Ibin (Ir.Types.Add, _, Ir.Types.Reg a, Ir.Types.Imm c)))
      when a = r ->
      Some c
    | Some (Some (Ir.Instr.Ibin (Ir.Types.Add, _, Ir.Types.Imm c, Ir.Types.Reg a)))
      when a = r ->
      Some c
    | Some (Some (Ir.Instr.Ibin (Ir.Types.Sub, _, Ir.Types.Reg a, Ir.Types.Imm c)))
      when a = r ->
      Some (-c)
    | _ -> None
  in
  (* The step of a definition kind when it is a +/- constant update of
     register [r]. *)
  let step_of r = function
    | Ir.Instr.Ibin (Ir.Types.Add, _, Ir.Types.Reg a, Ir.Types.Imm c)
    | Ir.Instr.Ibin (Ir.Types.Add, _, Ir.Types.Imm c, Ir.Types.Reg a)
      when a = r ->
      Some c
    | Ir.Instr.Ibin (Ir.Types.Sub, _, Ir.Types.Reg a, Ir.Types.Imm c)
      when a = r ->
      Some (-c)
    | _ -> None
  in
  Hashtbl.fold
    (fun r def acc ->
      match def with
      | Some (Ir.Instr.Mov (_, Ir.Types.Reg src)) -> (
        (* r = mov src where src = r +/- c : the common lowering shape. *)
        match Hashtbl.find_opt defs src with
        | Some (Some k) -> (
          match step_of r k with
          | Some c -> { ivar = r; step = c } :: acc
          | None -> acc)
        | _ -> acc)
      | Some k -> (
        match step_of r k with
        | Some c -> { ivar = r; step = c } :: acc
        | None -> (
          match direct r with
          | Some c -> { ivar = r; step = c } :: acc
          | None -> acc))
      | None -> acc)
    defs []

(* Is the value of [op] invariant across iterations of the loop?  True for
   immediates, registers not defined in the loop, and registers whose
   in-loop definition chain only combines invariant values (e.g.
   [t = i * 128] inside the loop over [j]: recomputed each iteration, same
   value). *)
let rec invariant_in defs (ivs : induction list) depth (op : Ir.Types.operand)
    : bool =
  if depth <= 0 then false
  else
    match op with
    | Ir.Types.Imm _ | Ir.Types.Fimm _ -> true
    | Ir.Types.Reg r -> (
      if List.exists (fun iv -> iv.ivar = r) ivs then false
      else
        match Hashtbl.find_opt defs r with
        | None -> true   (* defined outside the loop *)
        | Some None -> false
        | Some (Some k) -> (
          match k with
          | Ir.Instr.Ibin (_, _, a, b) ->
            invariant_in defs ivs (depth - 1) a
            && invariant_in defs ivs (depth - 1) b
          | Ir.Instr.Mov (_, a) -> invariant_in defs ivs (depth - 1) a
          | Ir.Instr.Gaddr (_, _) -> true
          | _ -> false))

(* Affine form of [reg] in terms of an induction variable: coeff * ivar +
   invariant, traced through a bounded def chain.  Sums of an affine part
   and a loop-invariant part stay affine, which covers the ubiquitous
   [row * width + j] addressing shape. *)
let rec affine_of defs (ivs : induction list) depth (op : Ir.Types.operand) :
    (induction * int) option (* (iv, coeff) *) =
  if depth <= 0 then None
  else
    match op with
    | Ir.Types.Reg r -> (
      match List.find_opt (fun iv -> iv.ivar = r) ivs with
      | Some iv -> Some (iv, 1)
      | None -> (
        match Hashtbl.find_opt defs r with
        | Some (Some k) -> (
          match k with
          | Ir.Instr.Ibin ((Ir.Types.Add | Ir.Types.Sub), _, a, b) -> (
            let fa = affine_of defs ivs (depth - 1) a
            and fb = affine_of defs ivs (depth - 1) b in
            let neg =
              match k with
              | Ir.Instr.Ibin (Ir.Types.Sub, _, _, _) -> -1
              | _ -> 1
            in
            match (fa, fb) with
            | Some (iv, ca), None when invariant_in defs ivs depth b ->
              Some (iv, ca)
            | None, Some (iv, cb) when invariant_in defs ivs depth a ->
              Some (iv, neg * cb)
            | Some (iva, ca), Some (ivb, cb) when iva.ivar = ivb.ivar ->
              Some (iva, ca + (neg * cb))
            | _ -> None)
          | Ir.Instr.Ibin (Ir.Types.Mul, _, a, Ir.Types.Imm c)
          | Ir.Instr.Ibin (Ir.Types.Mul, _, Ir.Types.Imm c, a) -> (
            match affine_of defs ivs (depth - 1) a with
            | Some (iv, coeff) -> Some (iv, coeff * c)
            | None -> None)
          | Ir.Instr.Ibin (Ir.Types.Shl, _, a, Ir.Types.Imm c)
            when c >= 0 && c < 16 -> (
            match affine_of defs ivs (depth - 1) a with
            | Some (iv, coeff) -> Some (iv, coeff * (1 lsl c))
            | None -> None)
          | Ir.Instr.Mov (_, a) -> affine_of defs ivs (depth - 1) a
          | _ -> None)
        | _ -> None))
    | Ir.Types.Imm _ | Ir.Types.Fimm _ -> None

(* Resolve a register to a compile-time constant through the function-wide
   unique-definition chain (Mov of an immediate, or arithmetic over
   constants).  This recovers bounds like [dim - 1] where [dim] is a local
   assigned a literal once. *)
let rec const_of func_defs depth (op : Ir.Types.operand) : int option =
  if depth <= 0 then None
  else
    match op with
    | Ir.Types.Imm k -> Some k
    | Ir.Types.Fimm _ -> None
    | Ir.Types.Reg r -> (
      match Hashtbl.find_opt func_defs r with
      | Some (Some (Ir.Instr.Mov (_, a))) -> const_of func_defs (depth - 1) a
      | Some (Some (Ir.Instr.Ibin (bop, _, a, b))) -> (
        match
          ( const_of func_defs (depth - 1) a,
            const_of func_defs (depth - 1) b )
        with
        | Some x, Some y -> (
          match bop with
          | Ir.Types.Add -> Some (x + y)
          | Ir.Types.Sub -> Some (x - y)
          | Ir.Types.Mul -> Some (x * y)
          | Ir.Types.Div -> Some (if y = 0 then 0 else x / y)
          | Ir.Types.Shr -> Some (x asr (y land 63))
          | Ir.Types.Shl -> Some (x lsl (y land 63))
          | Ir.Types.Rem | Ir.Types.Band | Ir.Types.Bor | Ir.Types.Bxor ->
            None)
        | _ -> None)
      | _ -> None)

(* Static trip-count estimate: if the loop header compares the induction
   variable against a resolvable constant bound, trips ~ bound / step; the
   start value is unknown, so the bound/step ratio serves as the
   estimate. *)
let trip_estimate func_defs (header : Ir.Func.block) (ivs : induction list) :
    float option =
  let cond_reg =
    match header.Ir.Func.term with
    | Ir.Func.Br (Ir.Types.Reg c, _, _) -> Some c
    | _ -> None
  in
  match cond_reg with
  | None -> None
  | Some c ->
    List.find_map
      (fun (i : Ir.Instr.t) ->
        match i.Ir.Instr.kind with
        | Ir.Instr.Icmp ((Ir.Types.Clt | Ir.Types.Cle), d, Ir.Types.Reg r, b)
          when d = c -> (
          match
            (List.find_opt (fun iv -> iv.ivar = r) ivs,
             const_of func_defs 6 b)
          with
          | Some iv, Some bound when iv.step <> 0 ->
            Some (Float.abs (float_of_int bound /. float_of_int iv.step))
          | _ -> None)
        | Ir.Instr.Icmp ((Ir.Types.Cgt | Ir.Types.Cge), d, Ir.Types.Reg r, b)
          when d = c -> (
          (* Down-counting loops: i > bound / i >= bound. *)
          match
            (List.find_opt (fun iv -> iv.ivar = r) ivs,
             const_of func_defs 6 b)
          with
          | Some iv, Some _ when iv.step <> 0 ->
            (* Start value unknown; assume a modest trip count. *)
            Some 16.0
          | _ -> None)
        | _ -> None)
      header.Ir.Func.instrs

(* All prefetch candidates (loads inside loops) of a function. *)
let candidates (f : Ir.Func.t) : candidate list =
  let g = Ir.Cfg.build f in
  let loops = Ir.Cfg.loops g in
  let depth = Ir.Cfg.loop_depth g in
  let func_defs = unique_defs f.Ir.Func.blocks in
  List.concat_map
    (fun (l : Ir.Cfg.loop) ->
      (* Only analyze each load in its innermost containing loop. *)
      let body_blocks = List.map (Ir.Cfg.block_of g) l.Ir.Cfg.body in
      let header_depth = depth.(l.Ir.Cfg.header) in
      let inner_blocks =
        List.filter
          (fun bi -> depth.(bi) = header_depth)
          l.Ir.Cfg.body
      in
      let defs = unique_defs body_blocks in
      let ivs = induction_vars defs in
      let trip =
        trip_estimate func_defs (Ir.Cfg.block_of g l.Ir.Cfg.header) ivs
      in
      let body_ops =
        List.fold_left
          (fun acc (b : Ir.Func.block) -> acc + List.length b.Ir.Func.instrs)
          0 body_blocks
      in
      let loads_in_loop =
        List.fold_left
          (fun acc (b : Ir.Func.block) ->
            acc
            + List.length
                (List.filter
                   (fun (i : Ir.Instr.t) ->
                     match i.Ir.Instr.kind with
                     | Ir.Instr.Load _ -> true
                     | _ -> false)
                   b.Ir.Func.instrs))
          0 body_blocks
      in
      List.concat_map
        (fun bi ->
          let b = Ir.Cfg.block_of g bi in
          List.filter_map
            (fun (i : Ir.Instr.t) ->
              match i.Ir.Instr.kind with
              | Ir.Instr.Load (_, a) ->
                let stride =
                  match affine_of defs ivs 10 a.Ir.Instr.offset with
                  | Some (iv, coeff) -> Some (coeff * iv.step)
                  | None -> None
                in
                let array =
                  match a.Ir.Instr.space with
                  | Ir.Instr.Global gname -> Some gname
                  | Ir.Instr.Frame _ | Ir.Instr.Unknown -> None
                in
                Some
                  {
                    fname = f.Ir.Func.fname;
                    block_label = b.Ir.Func.blabel;
                    instr_id = i.Ir.Instr.id;
                    array;
                    stride;
                    loop_header = g.Ir.Cfg.labels.(l.Ir.Cfg.header);
                    loop_depth = header_depth;
                    trip_estimate = trip;
                    loads_in_loop;
                    body_ops;
                  }
              | _ -> None)
            b.Ir.Func.instrs)
        inner_blocks)
    loops
