(** Features for the Boolean prefetch-confidence priority function, and
    ORC's baseline ("simply based upon how well the compiler can estimate
    loop trip counts" — deliberately aggressive, matching the paper's
    observation that ORC overzealously prefetches). *)

val feature_set : Gp.Feature_set.t

val baseline_source : string
val baseline_expr : Gp.Expr.bexpr
val baseline_genome : Gp.Expr.genome

val environment :
  machine:Machine.Config.t -> Ir.Func.program -> Analysis.candidate ->
  Gp.Feature_set.env
