(** Random GP genomes (zero-enriched) and finite adversarial feature
    environments for the [Eval = Eval . Simplify] oracle. *)

val fs : Gp.Feature_set.t
(** Three reals (x, y, z), two bools (p, q). *)

val genome : Random.State.t -> sort:[ `Real | `Bool ] -> Gp.Expr.genome
(** A [Gp.Gen] tree with a few subtrees wrapped in algebraic-identity
    patterns (0 + e, e - 0, 0 * e, 1 * e — both zero signs), so the
    simplifier's rewrite rules actually fire on generated input. *)

val random_value : Random.State.t -> float
(** One finite value from the adversarial pool or a uniform range. *)

val env : Random.State.t -> Gp.Feature_set.env
(** Finite feature values only, biased to adversarial magnitudes
    (both zero signs, 1e-300, 1e300, ...). *)

val envs : Random.State.t -> n:int -> Gp.Feature_set.env list

val shrink : Gp.Expr.genome -> Gp.Expr.genome list
(** One-step shrink candidates: subtree hoists and leaf replacements. *)
