(** Seeded random well-typed MiniC programs for differential fuzzing.

    Generated programs always terminate (literal loop bounds, counters
    never reassigned), keep every array access in bounds (double-mod
    index wrap) and typecheck by construction.  The structured [prog]
    representation exists so the shrinker can minimize a failing program
    while preserving well-typedness; the program's semantics are defined
    by its printed {!source}. *)

type ty = Int | Flt

type expr =
  | Iconst of int
  | Fconst of float
  | Var of ty * string
  | Load of ty * string * expr
  | Bin of ty * string * expr * expr
  | Neg of ty * expr
  | Intrin of ty * string * expr list
  | CallH of ty * int * expr list
  | Cast of ty * expr

type stmt =
  | Assign of ty * string * expr
  | Store of ty * string * expr * expr
  | If of expr * stmt list * stmt list
  | For of int * int * stmt list
  | While of int * int * stmt list
  | Emit of expr

type helper = {
  h_ret : ty;
  h_params : (ty * string) list;
  h_body : stmt list;
  h_ret_expr : expr;
}

type prog = {
  seed : int;
  helpers : helper list;
  body : stmt list;
  train : (string * float array) list;   (** dataset overrides for "A" *)
  novel : (string * float array) list;
}

type config = { max_stmts : int; max_depth : int; max_helpers : int }

val default_config : config

val generate : ?cfg:config -> int -> prog
(** [generate seed]: deterministic in [seed]. *)

val source : prog -> string
(** MiniC program text; always compiles and terminates. *)

val candidates : prog -> prog list
(** One-change shrink candidates (still well-typed, not necessarily
    semantics-preserving — the shrinker re-checks the oracle). *)
