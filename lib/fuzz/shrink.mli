(** Greedy counterexample minimization over any candidate generator. *)

val default_max_steps : int

val greedy :
  ?max_steps:int -> candidates:('a -> 'a list) -> fails:('a -> bool) ->
  'a -> 'a * int
(** [greedy ~candidates ~fails x] with [fails x = true]: walk to a local
    minimum that still fails, returning it and the number of accepted
    shrink steps.  A raising predicate counts as not failing. *)
