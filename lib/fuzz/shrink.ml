(* Greedy counterexample minimization.

   [greedy ~candidates ~fails x] repeatedly replaces [x] with the first
   one-change candidate that still fails, until no candidate fails or
   the step budget runs out.  The predicate is re-run on every
   candidate, so candidate generators need not preserve semantics —
   only validity.  A predicate that raises counts as "does not fail":
   shrinking must never turn a divergence into a crash report. *)

let default_max_steps = 400

let greedy ?(max_steps = default_max_steps) ~(candidates : 'a -> 'a list)
    ~(fails : 'a -> bool) (x : 'a) : 'a * int =
  let check c = try fails c with _ -> false in
  let rec go x steps =
    if steps >= max_steps then (x, steps)
    else
      match List.find_opt check (candidates x) with
      | Some x' -> go x' (steps + 1)
      | None -> (x, steps)
  in
  go x 0
