(** Differential fuzzing campaigns over the {!Oracle} registry. *)

module Oracle = Oracle
module Minic_gen = Minic_gen
module Genome_gen = Genome_gen
module Shrink = Shrink

val max_failures_per_oracle : int

type oracle_summary = {
  oracle : string;
  trials : int;
  passed : int;
  skipped : int;
  failures : string list;  (** full shrunk counterexample reports *)
}

type summary = {
  seed : int;
  count : int;
  oracles : oracle_summary list;
}

val divergences : summary -> int

val run :
  ?oracles:Oracle.t list -> ?progress:(string -> unit) ->
  seed:int -> count:int -> unit -> summary
(** [run ~seed ~count ()] gives each oracle [count / weight] seeded
    trials ([seed], [seed + 1], ...), stopping an oracle early after
    {!max_failures_per_oracle} failures. *)

val pp_summary : Format.formatter -> summary -> unit
val to_string : summary -> string
