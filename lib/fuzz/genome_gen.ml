(* Random GP genomes and feature environments for the simplify oracle.

   Genomes come from the engine's own generator (Gp.Gen, ramped
   grow/full) and are then "zero-enriched": a few random subtrees are
   wrapped in, or replaced by, the algebraic-identity patterns the
   simplifier rewrites — 0 + e, e - 0, 0 * e, 1 * e, with both signs of
   zero.  Plain random constants almost never hit those patterns, so the
   enrichment is what gives the Eval = Eval . Simplify oracle its power:
   re-introducing an unsound zero rewrite must produce a counterexample
   within a few seeds.

   Environments are finite-only (the documented domain of the
   equivalence), drawn from a pool of adversarial values — both zero
   signs, huge, tiny and ordinary magnitudes. *)

let fs =
  Gp.Feature_set.make ~reals:[ "x"; "y"; "z" ] ~bools:[ "p"; "q" ]

let zero_patterns rng sub =
  let z = if Random.State.bool rng then 0.0 else -0.0 in
  match Random.State.int rng 6 with
  | 0 -> Gp.Expr.Rconst z
  | 1 -> Gp.Expr.Rconst 1.0
  | 2 -> Gp.Expr.Radd (Gp.Expr.Rconst z, sub)
  | 3 -> Gp.Expr.Rsub (sub, Gp.Expr.Rconst z)
  | 4 -> Gp.Expr.Rmul (Gp.Expr.Rconst z, sub)
  | _ -> Gp.Expr.Rmul (sub, Gp.Expr.Rconst 1.0)

let enrich rng (g : Gp.Expr.genome) : Gp.Expr.genome =
  let steps = 1 + Random.State.int rng 3 in
  let rec go g n =
    if n = 0 then g
    else
      match Gp.Tree.pick_depth_fair rng ~sort:Gp.Tree.S_real g with
      | None -> g
      | Some node ->
        let sub = Gp.Tree.subtree g node.Gp.Tree.path in
        let sub_r =
          match sub with Gp.Expr.Real e -> e | Gp.Expr.Bool _ -> assert false
        in
        let repl = Gp.Expr.Real (zero_patterns rng sub_r) in
        go (Gp.Tree.replace g node.Gp.Tree.path repl) (n - 1)
  in
  go g steps

let genome rng ~sort : Gp.Expr.genome =
  let cfg = Gp.Gen.default_config fs in
  let depth = 2 + Random.State.int rng 4 in
  let g = Gp.Gen.genome cfg rng ~sort ~full:(Random.State.bool rng) depth in
  enrich rng g

let value_pool =
  [|
    0.0; -0.0; 1.0; -1.0; 0.5; -2.0; 2.0; 1e-9; -1e-9; 1e-300; -1e-300;
    1e300; -1e300; 3.141592653589793; 42.0; -17.25;
  |]

let random_value rng =
  (* zeros get outsized weight: they are the values the simplifier's
     rewrite rules are judged against, and a uniform draw would almost
     never produce one *)
  match Random.State.int rng 6 with
  | 0 -> 0.0
  | 1 -> -0.0
  | 2 | 3 -> value_pool.(Random.State.int rng (Array.length value_pool))
  | _ -> Random.State.float rng 200.0 -. 100.0

let env rng : Gp.Feature_set.env =
  let e = Gp.Feature_set.empty_env fs in
  Array.iteri (fun i _ -> e.Gp.Feature_set.real_values.(i) <- random_value rng)
    e.Gp.Feature_set.real_values;
  Array.iteri (fun i _ -> e.Gp.Feature_set.bool_values.(i) <- Random.State.bool rng)
    e.Gp.Feature_set.bool_values;
  e

let envs rng ~n = List.init n (fun _ -> env rng)

(* Shrink candidates: hoist any same-sorted subtree to the root, or
   replace any node by a minimal leaf of its sort. *)
let shrink (g : Gp.Expr.genome) : Gp.Expr.genome list =
  let root_sort =
    match g with Gp.Expr.Real _ -> Gp.Tree.S_real | Gp.Expr.Bool _ -> Gp.Tree.S_bool
  in
  let nodes = Gp.Tree.nodes g in
  let hoists =
    List.filter_map
      (fun (n : Gp.Tree.node) ->
        if n.Gp.Tree.path <> [] && n.Gp.Tree.sort = root_sort then
          Some (Gp.Tree.subtree g n.Gp.Tree.path)
        else None)
      nodes
  in
  let leaves =
    List.filter_map
      (fun (n : Gp.Tree.node) ->
        if n.Gp.Tree.path = [] then None
        else
          let leaf =
            match n.Gp.Tree.sort with
            | Gp.Tree.S_real -> Gp.Expr.Real (Gp.Expr.Rconst 0.0)
            | Gp.Tree.S_bool -> Gp.Expr.Bool (Gp.Expr.Bconst false)
          in
          let sub = Gp.Tree.subtree g n.Gp.Tree.path in
          if sub = leaf then None
          else Some (Gp.Tree.replace g n.Gp.Tree.path leaf))
      nodes
  in
  hoists @ leaves
