(* Campaign driver: run each requested oracle for its share of the
   trial budget, collect failures (capped per oracle so one systematic
   bug doesn't flood the report), and render a summary. *)

(* [fuzz.ml] is the library's root module, so the submodules must be
   re-exported to be visible outside [lib/fuzz]. *)
module Oracle = Oracle
module Minic_gen = Minic_gen
module Genome_gen = Genome_gen
module Shrink = Shrink

let max_failures_per_oracle = 5

type oracle_summary = {
  oracle : string;
  trials : int;
  passed : int;
  skipped : int;
  failures : string list;  (* full reports, oldest first *)
}

type summary = {
  seed : int;
  count : int;
  oracles : oracle_summary list;
}

let divergences s =
  List.fold_left (fun n o -> n + List.length o.failures) 0 s.oracles

let run_oracle ~seed ~count (o : Oracle.t) : oracle_summary =
  let trials = max 1 (count / o.weight) in
  let passed = ref 0 and skipped = ref 0 and failures = ref [] in
  (try
     for i = 0 to trials - 1 do
       match o.Oracle.check (seed + i) with
       | Oracle.Pass -> incr passed
       | Oracle.Skip _ -> incr skipped
       | Oracle.Fail report ->
         failures := report :: !failures;
         if List.length !failures >= max_failures_per_oracle then
           raise Exit
     done
   with Exit -> ());
  {
    oracle = o.Oracle.name;
    trials = !passed + !skipped + List.length !failures;
    passed = !passed;
    skipped = !skipped;
    failures = List.rev !failures;
  }

let run ?(oracles = Oracle.all) ?(progress = fun _ -> ()) ~seed ~count () :
    summary =
  let oracles =
    List.map
      (fun o ->
        progress
          (Printf.sprintf "fuzzing oracle %s (%d trials)" o.Oracle.name
             (max 1 (count / o.Oracle.weight)));
        run_oracle ~seed ~count o)
      oracles
  in
  { seed; count; oracles }

let pp_summary ppf (s : summary) =
  Format.fprintf ppf "differential fuzzing: seed %d, budget %d@." s.seed
    s.count;
  List.iter
    (fun o ->
      Format.fprintf ppf "  %-10s %4d trials  %4d pass  %3d skip  %d fail@."
        o.oracle o.trials o.passed o.skipped
        (List.length o.failures))
    s.oracles;
  let n = divergences s in
  if n = 0 then Format.fprintf ppf "no divergences.@."
  else begin
    Format.fprintf ppf "%d divergence(s):@." n;
    List.iter
      (fun o ->
        List.iter
          (fun r -> Format.fprintf ppf "@.--- %s ---@.%s@." o.oracle r)
          o.failures)
      s.oracles
  end

let to_string s = Format.asprintf "%a" pp_summary s
