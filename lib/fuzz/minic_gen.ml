(* Random well-typed MiniC programs for differential fuzzing.

   Programs are generated into a small structured representation (not
   straight to text) so the shrinker can remove statements, collapse
   loops and replace expressions while staying well-typed by
   construction:

   - every loop has a literal trip count and loop counters are never
     assignment targets, so every program terminates;
   - every array access is bounded by a double-mod index wrap;
   - conditions, bitwise/modulo/shift/logical operands are int-typed and
     float-to-int conversions go through an explicit cast, matching the
     typechecker's rules;
   - shift amounts are small literals;
   - helpers never call other functions (no recursion).

   The fixed skeleton declares two 64-element globals (int A[], float
   B[]), three int and two float scalars and a pool of loop counters;
   generated statements read and write only those, so any statement can
   be deleted and the program stays closed. *)

let array_size = 64
let n_counters = 4 (* i0..i3, covering the nesting cap below *)

type ty = Int | Flt

type expr =
  | Iconst of int
  | Fconst of float
  | Var of ty * string
  | Load of ty * string * expr            (* array, raw index (wrapped at print) *)
  | Bin of ty * string * expr * expr      (* result type, op token *)
  | Neg of ty * expr
  | Intrin of ty * string * expr list
  | CallH of ty * int * expr list         (* return type, helper index *)
  | Cast of ty * expr                     (* int(e) / float(e) *)

type stmt =
  | Assign of ty * string * expr
  | Store of ty * string * expr * expr    (* element ty, array, index, value *)
  | If of expr * stmt list * stmt list
  | For of int * int * stmt list          (* counter level, trip count *)
  | While of int * int * stmt list        (* same loop, while-form *)
  | Emit of expr

type helper = {
  h_ret : ty;
  h_params : (ty * string) list;
  h_body : stmt list;                     (* assignments to t / tf only *)
  h_ret_expr : expr;
}

type prog = {
  seed : int;
  helpers : helper list;
  body : stmt list;
  train : (string * float array) list;
  novel : (string * float array) list;
}

(* --- Generation -------------------------------------------------------- *)

type config = {
  max_stmts : int;   (* top-level statements in main *)
  max_depth : int;   (* expression depth *)
  max_helpers : int;
}

let default_config = { max_stmts = 8; max_depth = 4; max_helpers = 2 }

type ctx = {
  ivars : string list;   (* int assignment targets *)
  fvars : string list;   (* float assignment targets *)
  rvars : string list;   (* read-only ints: enclosing loop counters *)
  helpers : helper list;
  allow_calls : bool;
}

let pick rng xs = List.nth xs (Random.State.int rng (List.length xs))

let float_pool =
  [ 0.0; -0.0; 1.0; -1.0; 0.5; -2.5; 3.1415; 1e-9; -1e-9; 1e9; 100.25 ]

let gen_iconst rng =
  match Random.State.int rng 4 with
  | 0 -> Random.State.int rng 8
  | 1 -> Random.State.int rng 1000
  | 2 -> -Random.State.int rng 100
  | _ -> pick rng [ 0; 1; -1; 63; 64; 255 ]

let gen_fconst rng =
  if Random.State.int rng 3 = 0 then
    Float.of_int (Random.State.int rng 200 - 100) /. 8.0
  else pick rng float_pool

let int_intrinsics = [ ("abs", 1); ("min", 2); ("max", 2) ]

let float_intrinsics =
  [ ("sqrt", 1); ("sin", 1); ("cos", 1); ("fabs", 1); ("exp", 1); ("log", 1);
    ("fmin", 2); ("fmax", 2) ]

let rec gen_expr cfg ctx rng ~(ty : ty) ~depth : expr =
  if depth <= 0 || Random.State.int rng 4 = 0 then gen_leaf ctx rng ~ty
  else
    let sub t = gen_expr cfg ctx rng ~ty:t ~depth:(depth - 1) in
    match ty with
    | Int -> (
      match Random.State.int rng 10 with
      | 0 | 1 -> Bin (Int, pick rng [ "+"; "-"; "*" ], sub Int, sub Int)
      | 2 -> Bin (Int, pick rng [ "/"; "%" ], sub Int, sub Int)
      | 3 -> Bin (Int, pick rng [ "&"; "|"; "^" ], sub Int, sub Int)
      | 4 ->
        (* shifts: small literal amounts only *)
        Bin (Int, pick rng [ "<<"; ">>" ], sub Int,
             Iconst (Random.State.int rng 8))
      | 5 ->
        let cty = if Random.State.bool rng then Int else Flt in
        Bin (Int, pick rng [ "<"; ">"; "<="; ">="; "=="; "!=" ],
             sub cty, sub cty)
      | 6 -> Load (Int, "A", sub Int)
      | 7 ->
        let name, arity = pick rng int_intrinsics in
        Intrin (Int, name, List.init arity (fun _ -> sub Int))
      | 8 -> gen_call cfg ctx rng ~ty ~depth
      | _ -> Cast (Int, sub Flt))
    | Flt -> (
      match Random.State.int rng 8 with
      | 0 | 1 | 2 ->
        Bin (Flt, pick rng [ "+"; "-"; "*"; "/" ],
             sub (if Random.State.int rng 4 = 0 then Int else Flt), sub Flt)
      | 3 -> Load (Flt, "B", sub Int)
      | 4 ->
        let name, arity = pick rng float_intrinsics in
        Intrin (Flt, name, List.init arity (fun _ -> sub Flt))
      | 5 -> gen_call cfg ctx rng ~ty ~depth
      | 6 -> Neg (Flt, sub Flt)
      | _ -> Cast (Flt, sub Int))

and gen_leaf ctx rng ~ty =
  match ty with
  | Int ->
    let reads = ctx.ivars @ ctx.rvars in
    if Random.State.bool rng || reads = [] then Iconst (gen_iconst rng)
    else Var (Int, pick rng reads)
  | Flt ->
    if Random.State.bool rng || ctx.fvars = [] then Fconst (gen_fconst rng)
    else Var (Flt, pick rng ctx.fvars)

and gen_call cfg ctx rng ~ty ~depth =
  let indexed =
    List.mapi (fun i h -> (i, h)) ctx.helpers
    |> List.filter (fun (_, h) -> ctx.allow_calls && h.h_ret = ty)
  in
  match indexed with
  | [] -> gen_leaf ctx rng ~ty
  | _ ->
    let i, h = pick rng indexed in
    CallH
      ( ty, i,
        List.map
          (fun (pty, _) -> gen_expr cfg ctx rng ~ty:pty ~depth:(depth - 1))
          h.h_params )

(* Statements.  [level] is the loop nesting depth: a loop at level l
   uses counter i<l>, so sequential loops share counters and nested
   loops never clash; bodies may *read* enclosing counters. *)
let rec gen_stmts cfg ctx rng ~level ~budget : stmt list =
  List.init budget (fun _ -> gen_stmt cfg ctx rng ~level)

and gen_stmt cfg ctx rng ~level : stmt =
  let expr ty = gen_expr cfg ctx rng ~ty ~depth:cfg.max_depth in
  match Random.State.int rng (if level >= 2 then 8 else 10) with
  | 0 | 1 | 2 ->
    if Random.State.bool rng then Assign (Int, pick rng ctx.ivars, expr Int)
    else Assign (Flt, pick rng ctx.fvars, expr Flt)
  | 3 ->
    if Random.State.bool rng then Store (Int, "A", expr Int, expr Int)
    else Store (Flt, "B", expr Int, expr Flt)
  | 4 | 5 ->
    let nthen = 1 + Random.State.int rng 2 in
    let nelse = Random.State.int rng 2 in
    If
      ( gen_expr cfg ctx rng ~ty:Int ~depth:(cfg.max_depth - 1),
        gen_stmts cfg ctx rng ~level ~budget:nthen,
        gen_stmts cfg ctx rng ~level ~budget:nelse )
  | 6 | 7 -> Emit (expr (if Random.State.bool rng then Int else Flt))
  | n ->
    let body_ctx =
      { ctx with rvars = Printf.sprintf "i%d" level :: ctx.rvars }
    in
    let body =
      gen_stmts cfg body_ctx rng ~level:(level + 1)
        ~budget:(1 + Random.State.int rng 3)
    in
    if n = 8 then For (level, 1 + Random.State.int rng 8, body)
    else While (level, 1 + Random.State.int rng 6, body)

let gen_helper cfg rng : helper =
  let h_ret = if Random.State.bool rng then Int else Flt in
  let n_params = 1 + Random.State.int rng 2 in
  let h_params =
    List.init n_params (fun i ->
        ((if Random.State.bool rng then Int else Flt),
         Printf.sprintf "a%d" i))
  in
  let ivars =
    "t"
    :: List.filter_map (fun (t, n) -> if t = Int then Some n else None)
         h_params
  and fvars =
    "tf"
    :: List.filter_map (fun (t, n) -> if t = Flt then Some n else None)
         h_params
  in
  let ctx = { ivars; fvars; rvars = []; helpers = []; allow_calls = false } in
  let h_body =
    List.init (Random.State.int rng 3) (fun _ ->
        if Random.State.bool rng then
          Assign (Int, "t", gen_expr cfg ctx rng ~ty:Int ~depth:2)
        else Assign (Flt, "tf", gen_expr cfg ctx rng ~ty:Flt ~depth:2))
  in
  let h_ret_expr = gen_expr cfg ctx rng ~ty:h_ret ~depth:3 in
  { h_ret; h_params; h_body; h_ret_expr }

let main_ivars = [ "v0"; "v1"; "v2" ]
let main_fvars = [ "f0"; "f1" ]

let gen_overrides rng =
  if Random.State.int rng 3 <> 0 then ([], [])
  else
    let arr () =
      Array.init array_size (fun _ ->
          Float.of_int (Random.State.int rng 200 - 100))
    in
    ([ ("A", arr ()) ], [ ("A", arr ()) ])

let generate ?(cfg = default_config) seed : prog =
  let rng = Random.State.make [| 0x5eed; seed |] in
  let n_helpers = Random.State.int rng (cfg.max_helpers + 1) in
  let helpers = List.init n_helpers (fun _ -> gen_helper cfg rng) in
  let ctx =
    {
      ivars = main_ivars;
      fvars = main_fvars;
      rvars = [];
      helpers;
      allow_calls = true;
    }
  in
  (* Seed the arrays with a deterministic init loop, then random
     statements, then emit every scalar so runs always produce output. *)
  let k1 = 1 + Random.State.int rng 13 and k2 = Random.State.int rng 29 in
  let init =
    For
      ( 0,
        array_size,
        [
          Store (Int, "A", Var (Int, "i0"),
                 Bin (Int, "-",
                      Bin (Int, "*", Var (Int, "i0"), Iconst k1),
                      Iconst k2));
          Store (Flt, "B", Var (Int, "i0"),
                 Bin (Flt, "*", Cast (Flt, Var (Int, "i0")),
                      Fconst (gen_fconst rng)));
        ] )
  in
  let n = 2 + Random.State.int rng (cfg.max_stmts - 1) in
  let stmts = gen_stmts cfg ctx rng ~level:0 ~budget:n in
  let emits =
    List.map (fun v -> Emit (Var (Int, v))) main_ivars
    @ List.map (fun v -> Emit (Var (Flt, v))) main_fvars
  in
  let train, novel = gen_overrides rng in
  { seed; helpers; body = (init :: stmts) @ emits; train; novel }

(* --- Printing ---------------------------------------------------------- *)

let counter l = Printf.sprintf "i%d" l
let ty_name = function Int -> "int" | Flt -> "float"

let rec print_expr buf = function
  | Iconst k ->
    if k < 0 then Buffer.add_string buf (Printf.sprintf "(-%d)" (-k))
    else Buffer.add_string buf (string_of_int k)
  | Fconst f ->
    (* Uneg lowers to a true float negation, so a leading '-' preserves
       the sign of zero.  The MiniC lexer only accepts decimal literals
       (digits [. digits] [e[+-]digits]), so fall back to %.17g — which
       round-trips every finite double — and force a '.' so the token
       can't collapse to an int literal. *)
    let mag = Printf.sprintf "%.6f" (Float.abs f) in
    let mag =
      if float_of_string mag = Float.abs f then mag
      else
        let g = Printf.sprintf "%.17g" (Float.abs f) in
        if String.contains g '.' || String.contains g 'e' then g
        else g ^ ".0"
    in
    if f < 0.0 || (f = 0.0 && 1.0 /. f < 0.0) then
      Buffer.add_string buf (Printf.sprintf "(-%s)" mag)
    else Buffer.add_string buf mag
  | Var (_, n) -> Buffer.add_string buf n
  | Load (_, a, i) ->
    Buffer.add_string buf (a ^ "[(((");
    print_expr buf i;
    Buffer.add_string buf
      (Printf.sprintf ") %% %d + %d) %% %d)]" array_size array_size array_size)
  | Bin (_, op, a, b) ->
    Buffer.add_char buf '(';
    print_expr buf a;
    Buffer.add_string buf (" " ^ op ^ " ");
    print_expr buf b;
    Buffer.add_char buf ')'
  | Neg (_, a) ->
    Buffer.add_string buf "(-";
    print_expr buf a;
    Buffer.add_char buf ')'
  | Intrin (_, n, args) ->
    Buffer.add_string buf (n ^ "(");
    List.iteri
      (fun i a ->
        if i > 0 then Buffer.add_string buf ", ";
        print_expr buf a)
      args;
    Buffer.add_char buf ')'
  | CallH (_, i, args) ->
    Buffer.add_string buf (Printf.sprintf "h%d(" i);
    List.iteri
      (fun j a ->
        if j > 0 then Buffer.add_string buf ", ";
        print_expr buf a)
      args;
    Buffer.add_char buf ')'
  | Cast (ty, a) ->
    Buffer.add_string buf (if ty = Int then "int(" else "float(");
    print_expr buf a;
    Buffer.add_char buf ')'

let pe e =
  let b = Buffer.create 64 in
  print_expr b e;
  Buffer.contents b

let rec print_stmt buf ~indent s =
  let pad = String.make indent ' ' in
  match s with
  | Assign (_, v, e) ->
    Buffer.add_string buf (Printf.sprintf "%s%s = %s;\n" pad v (pe e))
  | Store (_, a, i, e) ->
    Buffer.add_string buf
      (Printf.sprintf "%s%s[(((%s) %% %d + %d) %% %d)] = %s;\n" pad a (pe i)
         array_size array_size array_size (pe e))
  | Emit e -> Buffer.add_string buf (Printf.sprintf "%semit(%s);\n" pad (pe e))
  | If (c, t, e) ->
    Buffer.add_string buf (Printf.sprintf "%sif (%s) {\n" pad (pe c));
    List.iter (print_stmt buf ~indent:(indent + 2)) t;
    if e <> [] then begin
      Buffer.add_string buf (pad ^ "} else {\n");
      List.iter (print_stmt buf ~indent:(indent + 2)) e
    end;
    Buffer.add_string buf (pad ^ "}\n")
  | For (l, n, body) ->
    let i = counter l in
    Buffer.add_string buf
      (Printf.sprintf "%sfor (%s = 0; %s < %d; %s = %s + 1) {\n" pad i i n i i);
    List.iter (print_stmt buf ~indent:(indent + 2)) body;
    Buffer.add_string buf (pad ^ "}\n")
  | While (l, n, body) ->
    let i = counter l in
    Buffer.add_string buf (Printf.sprintf "%s%s = 0;\n" pad i);
    Buffer.add_string buf (Printf.sprintf "%swhile (%s < %d) {\n" pad i n);
    List.iter (print_stmt buf ~indent:(indent + 2)) body;
    Buffer.add_string buf (Printf.sprintf "%s  %s = %s + 1;\n" pad i i);
    Buffer.add_string buf (pad ^ "}\n")

let source (p : prog) : string =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "global int A[%d];\nglobal float B[%d];\n\n" array_size
       array_size);
  List.iteri
    (fun i (h : helper) ->
      Buffer.add_string buf
        (Printf.sprintf "%s h%d(%s) {\n" (ty_name h.h_ret) i
           (String.concat ", "
              (List.map (fun (t, n) -> ty_name t ^ " " ^ n) h.h_params)));
      Buffer.add_string buf "  int t = 0;\n  float tf = 0.0;\n";
      List.iter (print_stmt buf ~indent:2) h.h_body;
      Buffer.add_string buf (Printf.sprintf "  return %s;\n}\n\n" (pe h.h_ret_expr)))
    p.helpers;
  Buffer.add_string buf "int main() {\n";
  for l = 0 to n_counters - 1 do
    Buffer.add_string buf (Printf.sprintf "  int %s = 0;\n" (counter l))
  done;
  List.iter
    (fun v -> Buffer.add_string buf (Printf.sprintf "  int %s = 0;\n" v))
    main_ivars;
  List.iter
    (fun v -> Buffer.add_string buf (Printf.sprintf "  float %s = 0.0;\n" v))
    main_fvars;
  List.iter (print_stmt buf ~indent:2) p.body;
  Buffer.add_string buf "  return v0;\n}\n";
  Buffer.contents buf

(* --- Shrinking --------------------------------------------------------- *)

(* One-change candidate programs: drop a statement, inline a branch,
   collapse a loop to one trip, replace an expression by a leaf, drop
   the overrides.  [Shrink.greedy] keeps a candidate only if it still
   fails the oracle, so none of these need to preserve semantics — only
   well-typedness. *)

let leaf_of = function Int -> Iconst 1 | Flt -> Fconst 1.0

let ty_of = function
  | Iconst _ -> Int
  | Fconst _ -> Flt
  | Var (t, _) | Load (t, _, _) | Bin (t, _, _, _) | Neg (t, _)
  | Intrin (t, _, _) | CallH (t, _, _) | Cast (t, _) -> t

(* All variants of a statement list with exactly one change applied. *)
let rec stmts_variants (ss : stmt list) : stmt list list =
  match ss with
  | [] -> []
  | s :: rest ->
    let inlined =
      match s with
      | If (_, a, b) -> [ a @ rest; b @ rest ]
      | For (_, _, body) | While (_, _, body) -> [ body @ rest ]
      | _ -> []
    in
    ([ rest ] @ inlined)
    @ List.map (fun s' -> s' :: rest) (stmt_variants s)
    @ List.map (fun rest' -> s :: rest') (stmts_variants rest)

and stmt_variants (s : stmt) : stmt list =
  match s with
  | Assign (t, v, e) -> List.map (fun e' -> Assign (t, v, e')) (expr_variants e)
  | Store (t, a, i, e) ->
    List.map (fun i' -> Store (t, a, i', e)) (expr_variants i)
    @ List.map (fun e' -> Store (t, a, i, e')) (expr_variants e)
  | Emit e -> List.map (fun e' -> Emit e') (expr_variants e)
  | If (c, a, b) ->
    List.map (fun c' -> If (c', a, b)) (expr_variants c)
    @ List.map (fun a' -> If (c, a', b)) (stmts_variants a)
    @ List.map (fun b' -> If (c, a, b')) (stmts_variants b)
  | For (l, n, body) ->
    (if n > 1 then [ For (l, 1, body) ] else [])
    @ List.map (fun body' -> For (l, n, body')) (stmts_variants body)
  | While (l, n, body) ->
    [ For (l, n, body) ]
    @ (if n > 1 then [ While (l, 1, body) ] else [])
    @ List.map (fun body' -> While (l, n, body')) (stmts_variants body)

(* Expression shrinking is shallow — hoist a same-typed child or drop to
   a leaf; depth comes from iterating the whole candidate set. *)
and expr_variants (e : expr) : expr list =
  let t = ty_of e in
  let hoists =
    match e with
    | Bin (_, _, a, b) -> List.filter (fun s -> ty_of s = t) [ a; b ]
    | Neg (_, a) | Cast (_, a) -> List.filter (fun s -> ty_of s = t) [ a ]
    | Intrin (_, _, args) | CallH (_, _, args) ->
      List.filter (fun s -> ty_of s = t) args
    | Load _ | Iconst _ | Fconst _ | Var _ -> []
  in
  match e with
  | Iconst _ | Fconst _ | Var _ -> []
  | _ -> hoists @ (if e = leaf_of t then [] else [ leaf_of t ])

let rec expr_calls = function
  | CallH _ -> true
  | Iconst _ | Fconst _ | Var _ -> false
  | Load (_, _, i) -> expr_calls i
  | Bin (_, _, a, b) -> expr_calls a || expr_calls b
  | Neg (_, a) | Cast (_, a) -> expr_calls a
  | Intrin (_, _, args) -> List.exists expr_calls args

let rec stmt_calls = function
  | Assign (_, _, e) | Emit e -> expr_calls e
  | Store (_, _, i, e) -> expr_calls i || expr_calls e
  | If (c, a, b) ->
    expr_calls c || List.exists stmt_calls a || List.exists stmt_calls b
  | For (_, _, body) | While (_, _, body) -> List.exists stmt_calls body

let candidates (p : prog) : prog list =
  let no_overrides =
    if p.train <> [] || p.novel <> [] then [ { p with train = []; novel = [] } ]
    else []
  in
  let drop_helpers =
    (* sound only once the body no longer calls any helper (call sites
       shrink away first via [expr_variants] leaf replacement) *)
    if p.helpers <> [] && not (List.exists stmt_calls p.body) then
      [ { p with helpers = [] } ]
    else []
  in
  no_overrides @ drop_helpers
  @ List.map (fun body -> { p with body }) (stmts_variants p.body)
