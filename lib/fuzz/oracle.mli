(** The seven differential oracles.

    Each oracle runs one seeded trial of a redundancy the repo's results
    rest on — fast vs reference interpreter, trace replay vs fresh
    simulation, cache hit vs recomputation, [Eval] vs
    [Eval . Simplify], checkpoint-resume vs straight evolution,
    [Parmap] at one vs many jobs (fork and domains backends), and
    [Evalc] compiled bytecode vs the [Eval] tree-walker — comparing
    every float through [Int64.bits_of_float].  Failures come back as a
    replayable report with a greedily shrunk counterexample. *)

type verdict = Pass | Skip of string | Fail of string

type t = {
  name : string;
  weight : int;
      (** relative trial cost: a campaign of [count] runs
          [count / weight] trials of this oracle *)
  check : int -> verdict;  (** one seeded trial *)
}

val all : t list
(** engine, replay, cache, simplify, checkpoint, parmap,
    compiled_vs_walk. *)

val find : string -> t option
val names : string list
