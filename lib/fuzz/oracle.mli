(** The eleven differential oracles.

    Each oracle runs one seeded trial of a redundancy the repo's results
    rest on — fast vs reference interpreter, trace replay vs fresh
    simulation, cache hit vs recomputation, [Eval] vs
    [Eval . Simplify], checkpoint-resume vs straight evolution,
    [Parmap] at one vs many jobs (fork and domains backends),
    [Evalc] compiled bytecode vs the [Eval] tree-walker, a
    chaos-injected supervised run vs the fault-free [`Seq] -j1
    reference, a warm persistent worker pool over several batches
    vs a cold one-shot pool, chunked dispatch under a random
    chunk floor/ceiling with a napping straggler (steal/reassign
    exercised) vs the sequential reference, and a study evaluated
    against a [metaopt serve] daemon (with a worker kill injected in
    the daemon on odd seeds) vs the same study on a local pool —
    comparing every float through [Int64.bits_of_float].
    Failures come back as a replayable report with a greedily shrunk
    counterexample. *)

type verdict = Pass | Skip of string | Fail of string

type t = {
  name : string;
  weight : int;
      (** relative trial cost: a campaign of [count] runs
          [count / weight] trials of this oracle *)
  check : int -> verdict;  (** one seeded trial *)
}

val all : t list
(** engine, replay, cache, simplify, checkpoint, parmap,
    compiled_vs_walk, chaos_vs_clean, warm_vs_cold, chunked_vs_seq,
    served_vs_local. *)

val find : string -> t option
val names : string list

val chaos_trial : ?plan:Gp.Chaos.plan -> int -> string option
(** One chaos_vs_clean trial: evolve under [plan] (default
    [Gp.Chaos.seeded ~seed]) on the supervised [`Domains] pool, compare
    bit-for-bit against the fault-free [`Seq] -j1 run, then resume over
    the faulted run's cache and checkpoint artifacts and compare again.
    [None] on identity, [Some description] on divergence.  Runs in a
    forked child where possible so the domains it spawns do not retire
    the fork backend for the calling process.  Exposed for
    [metaopt chaos], which replays plans outside a fuzz campaign. *)
