(** Structural well-formedness checks for IR programs.  A transformation
    pass that produces ill-formed IR is a bug in the pass, never a
    candidate for "better fitness". *)

type error = {
  where : string;   (** function / block *)
  what : string;
}

val pp_error : Format.formatter -> error -> unit

val check_func : Func.program -> Func.t -> error list
(** Duplicate labels, dangling branch targets, out-of-range registers and
    predicates, bad call arities, unknown globals. *)

val check_no_recursion : Func.program -> error list
(** The interpreter and spill-frame model require a non-recursive call
    graph (each function owns one static frame). *)

val check_program : Func.program -> error list

val check_exn : Func.program -> unit
(** @raise Invalid_argument listing all errors, if any. *)
