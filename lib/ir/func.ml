(* Functions, basic blocks and whole programs. *)

open Types

type terminator =
  | Jmp of label
  | Br of operand * label * label   (* if op <> 0 then fst else snd *)
  | Ret of operand option

type block = {
  blabel : label;
  mutable instrs : Instr.t list;
  mutable term : terminator;
}

type t = {
  fname : string;
  params : reg list;
  mutable blocks : block list;          (* entry block first *)
  mutable next_reg : int;
  mutable next_pred : int;
  mutable next_instr : int;
  mutable frame_size : int;             (* spill slots, in words *)
}

type global = {
  gname : string;
  gsize : int;                          (* in words *)
  ginit : float array;                  (* prefix initialization *)
}

type program = {
  funcs : t list;
  globals : global list;
  main : string;
}

let entry f =
  match f.blocks with
  | b :: _ -> b
  | [] -> invalid_arg (Printf.sprintf "Func.entry: %s has no blocks" f.fname)

let find_block f l =
  match List.find_opt (fun b -> b.blabel = l) f.blocks with
  | Some b -> b
  | None ->
    invalid_arg (Printf.sprintf "Func.find_block: no block %s in %s" l f.fname)

let find_func p name =
  match List.find_opt (fun f -> f.fname = name) p.funcs with
  | Some f -> f
  | None -> invalid_arg (Printf.sprintf "Func.find_func: no function %s" name)

let find_global p name =
  match List.find_opt (fun g -> g.gname = name) p.globals with
  | Some g -> g
  | None -> invalid_arg (Printf.sprintf "Func.find_global: no global %s" name)

let fresh_reg f =
  let r = f.next_reg in
  f.next_reg <- r + 1;
  r

let fresh_pred f =
  let p = f.next_pred in
  f.next_pred <- p + 1;
  p

let fresh_instr_id f =
  let i = f.next_instr in
  f.next_instr <- i + 1;
  i

(* Successor labels of a block: terminator targets plus predicated side
   exits embedded in the instruction list. *)
let successors b =
  let exits =
    List.filter_map
      (fun (i : Instr.t) ->
        match i.kind with Instr.Exit l -> Some l | _ -> None)
      b.instrs
  in
  let term_succs =
    match b.term with
    | Jmp l -> [ l ]
    | Br (_, l1, l2) -> [ l1; l2 ]
    | Ret _ -> []
  in
  exits @ term_succs

(* Number of static branch instructions a block ends with or contains
   (conditional terminator + predicated side exits). *)
let branch_count b =
  let exits =
    List.length
      (List.filter
         (fun (i : Instr.t) ->
           match i.kind with Instr.Exit _ -> true | _ -> false)
         b.instrs)
  in
  match b.term with Br _ -> exits + 1 | Jmp _ | Ret _ -> exits

let iter_instrs f fn =
  List.iter (fun b -> List.iter (fun i -> fn b i) b.instrs) f.blocks

let instr_count f =
  List.fold_left (fun acc b -> acc + List.length b.instrs) 0 f.blocks

(* Renumber instruction ids across a function; used after transformations
   that synthesize many instructions. *)
let renumber f =
  f.next_instr <- 0;
  List.iter
    (fun b ->
      b.instrs <-
        List.map (fun (i : Instr.t) -> { i with Instr.id = fresh_instr_id f })
          b.instrs)
    f.blocks

(* Deep copies: transformation passes mutate blocks in place, so evaluating
   many candidate priority functions requires working on copies. *)
let copy_block b = { b with instrs = b.instrs }

let copy f = { f with blocks = List.map copy_block f.blocks }

let copy_program p = { p with funcs = List.map copy p.funcs }

let max_used_reg f =
  let m = ref 0 in
  List.iter (fun r -> if r > !m then m := r) f.params;
  iter_instrs f (fun _ (i : Instr.t) ->
      (match Instr.def i.kind with Some d -> if d > !m then m := d | None -> ());
      List.iter (fun r -> if r > !m then m := r) (Instr.uses i.kind));
  !m

let pp_terminator ppf = function
  | Jmp l -> Fmt.pf ppf "jmp %s" l
  | Br (c, l1, l2) -> Fmt.pf ppf "br %a, %s, %s" pp_operand c l1 l2
  | Ret None -> Fmt.pf ppf "ret"
  | Ret (Some v) -> Fmt.pf ppf "ret %a" pp_operand v

let pp_block ppf b =
  Fmt.pf ppf "@[<v 2>%s:@,%a%a@]" b.blabel
    Fmt.(list ~sep:nop (Instr.pp ++ cut))
    b.instrs pp_terminator b.term

let pp ppf f =
  Fmt.pf ppf "@[<v 2>func %s(%a):@,%a@]" f.fname
    Fmt.(list ~sep:comma (fun ppf r -> Fmt.pf ppf "r%d" r))
    f.params
    Fmt.(list ~sep:cut pp_block)
    f.blocks

let pp_program ppf p =
  List.iter (fun g -> Fmt.pf ppf "global %s[%d]@." g.gname g.gsize) p.globals;
  Fmt.pf ppf "%a@." Fmt.(list ~sep:cut pp) p.funcs
