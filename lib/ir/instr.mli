(** Predicated instructions.

    Every instruction carries a guard predicate; when the guard is false
    at run time the instruction is nullified.  [guard = Types.p_true]
    means unpredicated. *)

open Types

(** What the compiler statically knows about a memory location. *)
type space =
  | Global of string   (** a named global array *)
  | Frame of string    (** the spill frame of the named function *)
  | Unknown            (** unanalyzable; a hazard, aliases everything *)

(** Memory address [base + offset], in words.  [hazard] marks accesses
    whose index is data-dependent — the moral equivalent of the pointer
    dereferences the paper's hyperblock heuristic penalizes. *)
type address = {
  base : operand;
  offset : operand;
  space : space;
  hazard : bool;
}

type call_effect = Pure | Impure

type kind =
  | Ibin of ibinop * reg * operand * operand
  | Fbin of fbinop * reg * operand * operand
  | Funop of funop * reg * operand
  | Icmp of icmp * reg * operand * operand
  | Fcmp of icmp * reg * operand * operand
  | Mov of reg * operand
  | Itof of reg * operand
  | Ftoi of reg * operand
  | Intrin of intrinsic * reg * operand list
  | Gaddr of reg * string              (** base address of a global *)
  | Load of reg * address
  | Store of address * operand
  | Prefetch of address
  | Call of reg option * string * operand list * call_effect
  | Emit of operand                    (** append to program output *)
  | Pdef of icmp * pred * pred * operand * operand
      (** cmpp: under the guard, [pt := (a cmp b)], [pf := not pt];
          nullified, neither target changes. *)
  | Pclear of pred
      (** [p := false] under the guard. *)
  | Pset of icmp * pred * operand * operand
      (** cmp.unc: guard true -> [p := (a cmp b)]; guard false ->
          [p := false].  Needs no up-front clear. *)
  | Por of icmp * pred * operand * operand
      (** cmp.or: guard true and compare holds -> [p := true]; otherwise
          [p] unchanged.  Accumulates block predicates across the several
          in-edges of a reconvergent region block. *)
  | Exit of label
      (** Predicated side exit out of a hyperblock: taken when the guard
          is true.  Only appears in if-converted blocks. *)

type t = {
  id : int;       (** unique within a function *)
  guard : pred;
  kind : kind;
}

val make : id:int -> ?guard:pred -> kind -> t

val def : kind -> reg option
(** The register defined, if any. *)

val uses : kind -> reg list
(** Registers read (operands, addresses, call arguments). *)

val pred_defs : kind -> pred list
val pred_uses : t -> pred list
(** The guard, when the instruction is predicated. *)

val is_mem : kind -> bool
val is_store : kind -> bool
val is_call : kind -> bool
val is_impure_call : kind -> bool
val is_branch_like : kind -> bool

val is_hazard : kind -> bool
(** A compiler hazard in the paper's sense: a pointer-like dereference or
    a side-effecting call. *)

val latency : kind -> int
(** Latency in cycles per the paper's Table 3 machine; also used for
    dependence-height features. *)

val map_operands : (operand -> operand) -> kind -> kind
val map_def : (reg -> reg) -> kind -> kind

val pp_space : Format.formatter -> space -> unit
val pp_address : Format.formatter -> address -> unit
val pp_kind : Format.formatter -> kind -> unit
val pp : Format.formatter -> t -> unit
