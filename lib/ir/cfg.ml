(* Control-flow-graph analyses over a function: predecessor maps, reverse
   postorder, dominators and postdominators (Cooper–Harvey–Kennedy), natural
   loops and loop-nesting depth. *)

type t = {
  func : Func.t;
  labels : Types.label array;            (* index -> label, RPO order *)
  index : (Types.label, int) Hashtbl.t;  (* label -> index *)
  succ : int list array;
  pred : int list array;
}

let build (f : Func.t) : t =
  let n = List.length f.blocks in
  let tbl = Hashtbl.create n in
  List.iteri (fun i (b : Func.block) -> Hashtbl.replace tbl b.blabel i) f.blocks;
  let blocks = Array.of_list f.blocks in
  let succ_raw =
    Array.map
      (fun b ->
        List.filter_map (fun l -> Hashtbl.find_opt tbl l) (Func.successors b))
      blocks
  in
  (* Depth-first search from the entry to compute reverse postorder; blocks
     unreachable from the entry are appended at the end so every block has
     an index. *)
  let visited = Array.make n false in
  let post = ref [] in
  let rec dfs i =
    if not visited.(i) then begin
      visited.(i) <- true;
      List.iter dfs succ_raw.(i);
      post := i :: !post
    end
  in
  if n > 0 then dfs 0;
  let order = !post @ List.filter (fun i -> not visited.(i)) (List.init n Fun.id) in
  let order = Array.of_list order in
  (* order.(rpo_index) = original index *)
  let rpo_of_orig = Array.make n 0 in
  Array.iteri (fun rpo orig -> rpo_of_orig.(orig) <- rpo) order;
  let labels = Array.map (fun orig -> blocks.(orig).Func.blabel) order in
  let index = Hashtbl.create n in
  Array.iteri (fun i l -> Hashtbl.replace index l i) labels;
  let succ =
    Array.init n (fun i ->
        List.map (fun s -> rpo_of_orig.(s)) succ_raw.(order.(i)))
  in
  let pred = Array.make n [] in
  Array.iteri (fun i ss -> List.iter (fun s -> pred.(s) <- i :: pred.(s)) ss) succ;
  { func = f; labels; index; succ; pred }

let n_blocks g = Array.length g.labels

let block_of g i = Func.find_block g.func g.labels.(i)

let index_of g l =
  match Hashtbl.find_opt g.index l with
  | Some i -> i
  | None -> invalid_arg ("Cfg.index_of: unknown label " ^ l)

(* --- Dominators ------------------------------------------------------- *)

(* Iterative dominator computation over an explicit edge relation given in a
   traversal order; shared by dominators (RPO, preds) and postdominators
   (reverse, succs with virtual exit). Returns idom array with -1 for roots
   and unreachable nodes. *)
let idoms_generic ~n ~roots ~order ~preds =
  let idom = Array.make n (-1) in
  let rpo_num = Array.make n (-1) in
  List.iteri (fun i node -> rpo_num.(node) <- i) order;
  List.iter (fun r -> idom.(r) <- r) roots;
  let intersect a b =
    let a = ref a and b = ref b in
    while !a <> !b do
      while rpo_num.(!a) > rpo_num.(!b) do a := idom.(!a) done;
      while rpo_num.(!b) > rpo_num.(!a) do b := idom.(!b) done
    done;
    !a
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun b ->
        if not (List.mem b roots) then begin
          let processed = List.filter (fun p -> idom.(p) >= 0) (preds b) in
          match processed with
          | [] -> ()
          | first :: rest ->
            let new_idom = List.fold_left intersect first rest in
            if idom.(b) <> new_idom then begin
              idom.(b) <- new_idom;
              changed := true
            end
        end)
      order
  done;
  List.iter (fun r -> idom.(r) <- -1) roots;
  idom

(* Immediate dominators indexed by RPO index; entry (index 0) has idom -1. *)
let dominators g =
  let n = n_blocks g in
  if n = 0 then [||]
  else
    idoms_generic ~n ~roots:[ 0 ]
      ~order:(List.init n Fun.id)
      ~preds:(fun b -> g.pred.(b))

(* Immediate postdominators.  A virtual exit node is appended and every
   exit block (no successors) feeds it, so the reverse graph has a single
   root — with several roots the Cooper–Harvey–Kennedy intersection does
   not converge.  The result maps each block to its immediate
   postdominator, or -1 for exit blocks and blocks that cannot reach an
   exit. *)
let postdominators g =
  let n = n_blocks g in
  if n = 0 then [||]
  else begin
    let virtual_exit = n in
    let exits = List.filter (fun i -> g.succ.(i) = []) (List.init n Fun.id) in
    (* Reverse-graph edges: preds of b in the reverse graph are b's
       successors; exit blocks additionally point at the virtual exit. *)
    let rsucc b =
      (* predecessors in the reverse graph, i.e. where reverse edges come
         from: for node b these are its CFG successors, plus the virtual
         exit for exit blocks. *)
      if b = virtual_exit then []
      else if g.succ.(b) = [] then [ virtual_exit ]
      else g.succ.(b)
    in
    let rpred b =
      (* reverse-graph predecessors of b = CFG successors of b (edges b->s
         become s->b), used as "preds" by the dominator computation. *)
      rsucc b
    in
    (* DFS over the reverse graph from the virtual exit. *)
    let visited = Array.make (n + 1) false in
    let post = ref [] in
    let rec dfs i =
      if not visited.(i) then begin
        visited.(i) <- true;
        (if i = virtual_exit then exits
         else List.filter (fun p -> p < n) g.pred.(i))
        |> List.iter dfs;
        post := i :: !post
      end
    in
    dfs virtual_exit;
    let order =
      !post
      @ List.filter (fun i -> not visited.(i)) (List.init (n + 1) Fun.id)
    in
    let idom =
      idoms_generic ~n:(n + 1) ~roots:[ virtual_exit ] ~order ~preds:rpred
    in
    Array.init n (fun i ->
        let d = idom.(i) in
        if d = virtual_exit then -1 else d)
  end

let dominates idom a b =
  (* Does a dominate b (both RPO indices)? Walk b's idom chain. *)
  let rec up x = if x = a then true else if x <= 0 then a = 0 && x = 0 else
      let p = idom.(x) in
      if p < 0 then false else up p
  in
  up b

(* --- Loops ------------------------------------------------------------ *)

type loop = {
  header : int;
  body : int list;     (* includes header *)
  back_edges : (int * int) list;
}

(* Natural loops from back edges (edge t->h where h dominates t). *)
let loops g =
  let idom = dominators g in
  let n = n_blocks g in
  let backs = ref [] in
  for t = 0 to n - 1 do
    List.iter
      (fun h -> if dominates idom h t then backs := (t, h) :: !backs)
      g.succ.(t)
  done;
  (* Group back edges by header and flood backwards from each tail. *)
  let by_header = Hashtbl.create 8 in
  List.iter
    (fun (t, h) ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt by_header h) in
      Hashtbl.replace by_header h ((t, h) :: cur))
    !backs;
  Hashtbl.fold
    (fun h edges acc ->
      let in_loop = Array.make n false in
      in_loop.(h) <- true;
      let rec flood i =
        if not in_loop.(i) then begin
          in_loop.(i) <- true;
          List.iter flood g.pred.(i)
        end
      in
      List.iter (fun (t, _) -> flood t) edges;
      let body =
        List.filter (fun i -> in_loop.(i)) (List.init n Fun.id)
      in
      { header = h; body; back_edges = edges } :: acc)
    by_header []

(* Loop-nesting depth per block (0 = not in any loop). *)
let loop_depth g =
  let n = n_blocks g in
  let depth = Array.make n 0 in
  List.iter
    (fun l -> List.iter (fun b -> depth.(b) <- depth.(b) + 1) l.body)
    (loops g);
  depth
