(** Core IR types: a predicated three-address code over virtual
    registers. *)

type reg = int
(** Virtual register index; register 0 is never allocated. *)

type pred = int
(** Predicate register index. *)

type label = string
(** Basic-block label, unique within a function. *)

val p_true : pred
(** The always-true predicate guarding unpredicated instructions
    (p0 on IA-64). *)

type operand =
  | Reg of reg
  | Imm of int
  | Fimm of float

type icmp = Ceq | Cne | Clt | Cle | Cgt | Cge

type ibinop =
  | Add | Sub | Mul | Div | Rem
  | Band | Bor | Bxor | Shl | Shr

type fbinop = Fadd | Fsub | Fmul | Fdiv

type funop = Fneg | Fabs | Fsqrt

(** Intrinsic pure math functions with fixed latency (they model library
    routines without acting as call hazards). *)
type intrinsic = Isin | Icos | Iexp | Ilog | Imin | Imax | Ifmin | Ifmax

val string_of_icmp : icmp -> string
val string_of_ibinop : ibinop -> string
val string_of_fbinop : fbinop -> string
val string_of_funop : funop -> string
val string_of_intrinsic : intrinsic -> string
val pp_operand : Format.formatter -> operand -> unit
