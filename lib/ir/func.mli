(** Functions, basic blocks and whole programs. *)

open Types

type terminator =
  | Jmp of label
  | Br of operand * label * label  (** if operand <> 0 then fst else snd *)
  | Ret of operand option

type block = {
  blabel : label;
  mutable instrs : Instr.t list;
  mutable term : terminator;
}

type t = {
  fname : string;
  params : reg list;            (** registers 1..n hold the arguments *)
  mutable blocks : block list;  (** entry block first *)
  mutable next_reg : int;
  mutable next_pred : int;
  mutable next_instr : int;
  mutable frame_size : int;     (** spill slots, in words *)
}

type global = {
  gname : string;
  gsize : int;           (** in words *)
  ginit : float array;   (** initialization of a prefix of the array *)
}

type program = {
  funcs : t list;
  globals : global list;
  main : string;
}

val entry : t -> block
(** @raise Invalid_argument if the function has no blocks. *)

val find_block : t -> label -> block
(** @raise Invalid_argument on an unknown label. *)

val find_func : program -> string -> t
(** @raise Invalid_argument on an unknown function. *)

val find_global : program -> string -> global
(** @raise Invalid_argument on an unknown global. *)

val fresh_reg : t -> reg
val fresh_pred : t -> pred
val fresh_instr_id : t -> int

val successors : block -> label list
(** Terminator targets plus predicated side exits embedded in the
    instruction list. *)

val branch_count : block -> int
(** Static branch instructions: conditional terminator + side exits. *)

val iter_instrs : t -> (block -> Instr.t -> unit) -> unit
val instr_count : t -> int

val renumber : t -> unit
(** Reassign unique instruction ids across the function. *)

val copy : t -> t
(** Copy a function so transformation passes can mutate it without
    touching the original (blocks are fresh records; instruction lists are
    replaced wholesale by passes, never mutated in place). *)

val copy_program : program -> program

val max_used_reg : t -> reg

val pp_terminator : Format.formatter -> terminator -> unit
val pp_block : Format.formatter -> block -> unit
val pp : Format.formatter -> t -> unit
val pp_program : Format.formatter -> program -> unit
