(** Imperative construction of IR functions, used by the frontend lowering
    and by tests that build CFGs directly. *)

type t

val create : name:string -> params:string list -> t
(** A builder for a function whose parameters occupy registers 1..n. *)

val fresh_reg : t -> Types.reg

val fresh_label : t -> string -> Types.label
(** [fresh_label b prefix] returns a label unique to this builder. *)

val start_block : t -> Types.label -> unit
(** @raise Invalid_argument if the previous block was not terminated. *)

val in_block : t -> bool

val emit : t -> Instr.kind -> unit
(** Append an unpredicated instruction to the current block.
    @raise Invalid_argument outside a block. *)

val emit_r : t -> (Types.reg -> Instr.kind) -> Types.reg
(** Emit an instruction into a fresh destination register and return it. *)

val terminate : t -> Func.terminator -> unit
(** Close the current block. *)

val finish : t -> Func.t
(** @raise Invalid_argument if a block is still open. *)

val global_addr :
  base:Types.operand -> offset:Types.operand -> name:string -> hazard:bool ->
  Instr.address

val frame_addr : fname:string -> slot:int -> Instr.address
(** Address of a spill slot in the named function's frame. *)
