(** Control-flow-graph analyses over one function: predecessors, reverse
    postorder, dominators and postdominators (Cooper–Harvey–Kennedy),
    natural loops and loop-nesting depth.

    Blocks are identified by their reverse-postorder index; the entry
    block has index 0. *)

type t = {
  func : Func.t;
  labels : Types.label array;             (** index -> label *)
  index : (Types.label, int) Hashtbl.t;
  succ : int list array;
  pred : int list array;
}

val build : Func.t -> t
(** Snapshot of the function's CFG; invalidated by any transformation. *)

val n_blocks : t -> int
val block_of : t -> int -> Func.block
val index_of : t -> Types.label -> int

val dominators : t -> int array
(** Immediate dominators; the entry (and unreachable blocks) map to -1. *)

val postdominators : t -> int array
(** Immediate postdominators, computed through a single virtual exit node
    so functions with several [Ret] blocks converge.  Exit blocks and
    blocks that cannot reach an exit map to -1. *)

val dominates : int array -> int -> int -> bool
(** [dominates idom a b]: does [a] dominate [b]? *)

type loop = {
  header : int;
  body : int list;                 (** includes the header *)
  back_edges : (int * int) list;
}

val loops : t -> loop list
(** Natural loops derived from back edges, grouped by header. *)

val loop_depth : t -> int array
(** Nesting depth per block; 0 = not in any loop. *)
