(* Core IR types: a predicated three-address code over virtual registers.

   Registers are integers; register 0 is never allocated so it can serve as
   a sentinel.  Predicate register 0 is the always-true predicate, mirroring
   p0 on IA-64.  Labels are strings, unique within a function. *)

type reg = int
type pred = int
type label = string

(* The always-true predicate guarding unpredicated instructions. *)
let p_true : pred = 0

type operand =
  | Reg of reg
  | Imm of int
  | Fimm of float

type icmp = Ceq | Cne | Clt | Cle | Cgt | Cge

type ibinop =
  | Add | Sub | Mul | Div | Rem
  | Band | Bor | Bxor | Shl | Shr

type fbinop = Fadd | Fsub | Fmul | Fdiv

type funop = Fneg | Fabs | Fsqrt

(* Intrinsic pure functions evaluated by the interpreter; they model library
   math routines with a fixed latency instead of a call hazard. *)
type intrinsic = Isin | Icos | Iexp | Ilog | Imin | Imax | Ifmin | Ifmax

let string_of_icmp = function
  | Ceq -> "eq" | Cne -> "ne" | Clt -> "lt" | Cle -> "le"
  | Cgt -> "gt" | Cge -> "ge"

let string_of_ibinop = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "div" | Rem -> "rem"
  | Band -> "and" | Bor -> "or" | Bxor -> "xor" | Shl -> "shl" | Shr -> "shr"

let string_of_fbinop = function
  | Fadd -> "fadd" | Fsub -> "fsub" | Fmul -> "fmul" | Fdiv -> "fdiv"

let string_of_funop = function
  | Fneg -> "fneg" | Fabs -> "fabs" | Fsqrt -> "fsqrt"

let string_of_intrinsic = function
  | Isin -> "sin" | Icos -> "cos" | Iexp -> "exp" | Ilog -> "log"
  | Imin -> "min" | Imax -> "max" | Ifmin -> "fmin" | Ifmax -> "fmax"

let pp_operand ppf = function
  | Reg r -> Fmt.pf ppf "r%d" r
  | Imm i -> Fmt.pf ppf "%d" i
  | Fimm f -> Fmt.pf ppf "%g" f
