(* Imperative construction of IR functions, used by the frontend lowering
   and by tests that build CFGs directly. *)

open Types

type t = {
  func : Func.t;
  mutable current : Func.block option;
  mutable done_blocks : Func.block list;  (* reverse order *)
  mutable pending : Instr.t list;         (* reverse order *)
  mutable next_label : int;
}

let create ~name ~params =
  let nparams = List.length params in
  let func =
    {
      Func.fname = name;
      params = List.init nparams (fun i -> i + 1);
      blocks = [];
      next_reg = nparams + 1;
      next_pred = 1;
      next_instr = 0;
      frame_size = 0;
    }
  in
  { func; current = None; done_blocks = []; pending = []; next_label = 0 }

let fresh_reg b = Func.fresh_reg b.func

let fresh_label b prefix =
  let n = b.next_label in
  b.next_label <- n + 1;
  Printf.sprintf "%s%d" prefix n

(* Start a new block.  Any previous block must have been terminated. *)
let start_block b label =
  (match b.current with
  | Some blk ->
    invalid_arg
      (Printf.sprintf "Builder.start_block: block %s not terminated"
         blk.Func.blabel)
  | None -> ());
  b.current <- Some { Func.blabel = label; instrs = []; term = Func.Ret None };
  b.pending <- []

let in_block b = b.current <> None

let emit b kind =
  match b.current with
  | None -> invalid_arg "Builder.emit: no current block"
  | Some _ ->
    let i = Instr.make ~id:(Func.fresh_instr_id b.func) kind in
    b.pending <- i :: b.pending

(* Emit a binary op into a fresh register and return it. *)
let emit_r b mk =
  let r = fresh_reg b in
  emit b (mk r);
  r

let terminate b term =
  match b.current with
  | None -> invalid_arg "Builder.terminate: no current block"
  | Some blk ->
    blk.Func.instrs <- List.rev b.pending;
    blk.Func.term <- term;
    b.done_blocks <- blk :: b.done_blocks;
    b.current <- None;
    b.pending <- []

let finish b =
  (match b.current with
  | Some blk ->
    invalid_arg
      (Printf.sprintf "Builder.finish: block %s not terminated" blk.Func.blabel)
  | None -> ());
  b.func.Func.blocks <- List.rev b.done_blocks;
  b.func

(* Convenience: address of a global array element. *)
let global_addr ~base ~offset ~name ~hazard =
  { Instr.base; offset; space = Instr.Global name; hazard }

let frame_addr ~fname ~slot =
  { Instr.base = Imm 0; offset = Imm slot; space = Instr.Frame fname;
    hazard = false }
