(* Structural well-formedness checks for IR programs.  Run after the
   frontend and after every transformation pass in tests: a pass that
   produces an ill-formed function is a bug in the pass, not a candidate
   for "better fitness". *)

type error = {
  where : string;   (* function / block *)
  what : string;
}

let err where fmt = Printf.ksprintf (fun what -> { where; what }) fmt

let pp_error ppf e = Fmt.pf ppf "%s: %s" e.where e.what

let check_func (p : Func.program) (f : Func.t) : error list =
  let errors = ref [] in
  let add e = errors := e :: !errors in
  let labels = List.map (fun (b : Func.block) -> b.Func.blabel) f.blocks in
  let label_set = Hashtbl.create 16 in
  List.iter
    (fun l ->
      if Hashtbl.mem label_set l then
        add (err f.fname "duplicate label %s" l)
      else Hashtbl.replace label_set l ())
    labels;
  if f.blocks = [] then add (err f.fname "function has no blocks");
  let check_target where l =
    if not (Hashtbl.mem label_set l) then
      add (err where "branch to unknown label %s" l)
  in
  List.iter
    (fun (b : Func.block) ->
      let where = f.fname ^ ":" ^ b.Func.blabel in
      List.iter
        (fun (i : Instr.t) ->
          (match Instr.def i.kind with
          | Some d when d <= 0 || d >= f.next_reg ->
            add (err where "instruction defines out-of-range register r%d" d)
          | _ -> ());
          List.iter
            (fun u ->
              if u <= 0 || u >= f.next_reg then
                add (err where "instruction uses out-of-range register r%d" u))
            (Instr.uses i.kind);
          if i.guard < 0 || i.guard >= f.next_pred then
            add (err where "instruction guarded by out-of-range predicate p%d"
                   i.guard);
          (match i.kind with
          | Instr.Exit l -> check_target where l
          | Instr.Call (_, name, args, _) ->
            (match List.find_opt (fun g -> g.Func.fname = name) p.funcs with
            | Some callee ->
              if List.length callee.params <> List.length args then
                add (err where "call to %s with %d args, expected %d" name
                       (List.length args) (List.length callee.params))
            | None -> add (err where "call to unknown function %s" name))
          | Instr.Gaddr (_, g) ->
            if not (List.exists (fun gl -> gl.Func.gname = g) p.globals) then
              add (err where "gaddr of unknown global %s" g)
          | _ -> ()))
        b.instrs;
      match b.term with
      | Func.Jmp l -> check_target where l
      | Func.Br (_, l1, l2) ->
        check_target where l1;
        check_target where l2
      | Func.Ret _ -> ())
    f.blocks;
  List.rev !errors

(* Reject call-graph cycles: the interpreter and spill-frame model assume
   non-recursive programs (each function has a single static frame). *)
let check_no_recursion (p : Func.program) : error list =
  let callees f =
    let acc = ref [] in
    Func.iter_instrs f (fun _ (i : Instr.t) ->
        match i.Instr.kind with
        | Instr.Call (_, name, _, _) -> acc := name :: !acc
        | _ -> ());
    !acc
  in
  let visiting = Hashtbl.create 8 and done_ = Hashtbl.create 8 in
  let errors = ref [] in
  let rec visit name =
    if Hashtbl.mem done_ name then ()
    else if Hashtbl.mem visiting name then
      errors := err name "recursive call cycle detected" :: !errors
    else begin
      Hashtbl.replace visiting name ();
      (match List.find_opt (fun f -> f.Func.fname = name) p.funcs with
      | Some f -> List.iter visit (callees f)
      | None -> ());
      Hashtbl.remove visiting name;
      Hashtbl.replace done_ name ()
    end
  in
  List.iter (fun f -> visit f.Func.fname) p.funcs;
  List.rev !errors

let check_program (p : Func.program) : error list =
  let main_errs =
    if List.exists (fun f -> f.Func.fname = p.main) p.funcs then []
    else [ err "program" "missing main function %s" p.main ]
  in
  main_errs
  @ check_no_recursion p
  @ List.concat_map (check_func p) p.funcs

let check_exn p =
  match check_program p with
  | [] -> ()
  | errs ->
    let msg = String.concat "; " (List.map (fun e -> Fmt.str "%a" pp_error e) errs) in
    invalid_arg ("Validate.check_exn: " ^ msg)
