(* Predicated instructions.

   Every instruction carries a guard predicate; when the guard evaluates to
   false at run time the instruction is nullified (it must not change
   architectural state).  [guard = Types.p_true] means unpredicated. *)

open Types

(* Memory address: [base + offset], in words.  [space] records what the
   compiler statically knows about the location; [hazard] marks accesses the
   frontend could not analyze (data-dependent indices), which hyperblock
   formation treats as pointer-dereference hazards. *)
type space =
  | Global of string   (* a named global array *)
  | Frame of string    (* the spill/local frame of the named function *)
  | Unknown            (* unanalyzable; acts as a hazard and aliases all *)

type address = {
  base : operand;
  offset : operand;
  space : space;
  hazard : bool;
}

type call_effect = Pure | Impure

type kind =
  | Ibin of ibinop * reg * operand * operand
  | Fbin of fbinop * reg * operand * operand
  | Funop of funop * reg * operand
  | Icmp of icmp * reg * operand * operand
  | Fcmp of icmp * reg * operand * operand
  | Mov of reg * operand
  | Itof of reg * operand
  | Ftoi of reg * operand
  | Intrin of intrinsic * reg * operand list
  | Gaddr of reg * string              (* base address of a global *)
  | Load of reg * address
  | Store of address * operand
  | Prefetch of address
  | Call of reg option * string * operand list * call_effect
  | Emit of operand                    (* append a value to program output *)
  (* [Pdef (cmp, pt, pf, a, b)] is a cmpp: under the guard, sets predicate
     [pt] to (a cmp b) and [pf] to its complement.  When nullified neither
     target changes. *)
  | Pdef of icmp * pred * pred * operand * operand
  (* [Pclear p] sets predicate [p] to false (under the guard). *)
  | Pclear of pred
  (* [Pset (cmp, p, a, b)] is an unconditional-form compare (IA-64
     cmp.unc): when the guard is true, [p] := (a cmp b); when the guard is
     false, [p] := false.  Because it writes either way, its target needs
     no up-front clear. *)
  | Pset of icmp * pred * operand * operand
  (* [Por (cmp, p, a, b)] is an or-form compare (IA-64 cmp.or): when the
     guard is true and (a cmp b) holds, sets [p] to true; otherwise leaves
     [p] unchanged.  Used to accumulate block predicates over the multiple
     incoming edges of a DAG region during if-conversion. *)
  | Por of icmp * pred * operand * operand
  (* Predicated jump out of a hyperblock (side exit): taken when the guard
     is true.  Never appears in blocks that were not if-converted. *)
  | Exit of label

type t = {
  id : int;                (* unique within a function *)
  guard : pred;
  kind : kind;
}

let make ~id ?(guard = p_true) kind = { id; guard; kind }

(* --- Register defs and uses ---------------------------------------- *)

let def = function
  | Ibin (_, d, _, _) | Fbin (_, d, _, _) | Funop (_, d, _)
  | Icmp (_, d, _, _) | Fcmp (_, d, _, _) | Mov (d, _)
  | Itof (d, _) | Ftoi (d, _) | Intrin (_, d, _) | Gaddr (d, _)
  | Load (d, _) -> Some d
  | Call (d, _, _, _) -> d
  | Store _ | Prefetch _ | Emit _ | Pdef _ | Pclear _ | Por _ | Pset _
  | Exit _ ->
    None

let reg_of_operand = function Reg r -> Some r | Imm _ | Fimm _ -> None

let uses_of_address a =
  List.filter_map reg_of_operand [ a.base; a.offset ]

let uses kind =
  match kind with
  | Ibin (_, _, a, b) | Fbin (_, _, a, b)
  | Icmp (_, _, a, b) | Fcmp (_, _, a, b) | Pdef (_, _, _, a, b)
  | Por (_, _, a, b) | Pset (_, _, a, b) ->
    List.filter_map reg_of_operand [ a; b ]
  | Funop (_, _, a) | Mov (_, a) | Itof (_, a) | Ftoi (_, a) | Emit a ->
    List.filter_map reg_of_operand [ a ]
  | Intrin (_, _, args) | Call (_, _, args, _) ->
    List.filter_map reg_of_operand args
  | Gaddr _ | Exit _ | Pclear _ -> []
  | Load (_, a) | Prefetch a -> uses_of_address a
  | Store (a, v) -> List.filter_map reg_of_operand (v :: [ a.base; a.offset ])

(* Predicates defined / used.  The guard itself is a predicate use. *)
let pred_defs = function
  | Pdef (_, pt, pf, _, _) -> [ pt; pf ]
  | Pclear p | Por (_, p, _, _) | Pset (_, p, _, _) -> [ p ]
  | _ -> []

let pred_uses i = if i.guard = p_true then [] else [ i.guard ]

(* --- Classification -------------------------------------------------- *)

let is_mem = function
  | Load _ | Store _ | Prefetch _ -> true
  | _ -> false

let is_store = function Store _ -> true | _ -> false

let is_call = function Call _ -> true | _ -> false

let is_impure_call = function Call (_, _, _, Impure) -> true | _ -> false

let is_branch_like = function Exit _ -> true | _ -> false

(* Does this instruction constitute a compiler hazard in the sense of the
   paper (pointer dereference or side-effecting call)? *)
let is_hazard = function
  | Load (_, a) | Store (a, _) -> a.hazard || a.space = Unknown
  | Call (_, _, _, Impure) -> true
  | _ -> false

(* Generic latency in cycles, used for dependence-height features and as
   the default machine latency (Table 3 of the paper). *)
let latency = function
  | Ibin (Mul, _, _, _) -> 3
  | Ibin ((Div | Rem), _, _, _) -> 8
  | Ibin (_, _, _, _) -> 1
  | Fbin (Fdiv, _, _, _) -> 8
  | Fbin (_, _, _, _) -> 3
  | Funop (Fsqrt, _, _) -> 8
  | Funop (_, _, _) -> 1
  | Icmp _ | Fcmp _ | Pdef _ | Pclear _ | Por _ | Pset _ -> 1
  | Mov _ | Gaddr _ -> 1
  | Itof _ | Ftoi _ -> 2
  | Intrin (_, _, _) -> 6
  | Load _ -> 2         (* L1 hit; cache misses add stalls in the simulator *)
  | Store _ -> 1        (* stores are buffered *)
  | Prefetch _ -> 1
  | Call _ -> 12
  | Emit _ -> 1
  | Exit _ -> 1

(* --- Substitution helpers (used by copy propagation & regalloc) ------- *)

let map_operands f kind =
  let fa a = { a with base = f a.base; offset = f a.offset } in
  match kind with
  | Ibin (op, d, a, b) -> Ibin (op, d, f a, f b)
  | Fbin (op, d, a, b) -> Fbin (op, d, f a, f b)
  | Funop (op, d, a) -> Funop (op, d, f a)
  | Icmp (c, d, a, b) -> Icmp (c, d, f a, f b)
  | Fcmp (c, d, a, b) -> Fcmp (c, d, f a, f b)
  | Mov (d, a) -> Mov (d, f a)
  | Itof (d, a) -> Itof (d, f a)
  | Ftoi (d, a) -> Ftoi (d, f a)
  | Intrin (i, d, args) -> Intrin (i, d, List.map f args)
  | Gaddr (d, g) -> Gaddr (d, g)
  | Load (d, a) -> Load (d, fa a)
  | Store (a, v) -> Store (fa a, f v)
  | Prefetch a -> Prefetch (fa a)
  | Call (d, name, args, e) -> Call (d, name, List.map f args, e)
  | Emit a -> Emit (f a)
  | Pdef (c, pt, pf, a, b) -> Pdef (c, pt, pf, f a, f b)
  | Pclear p -> Pclear p
  | Por (c, p, a, b) -> Por (c, p, f a, f b)
  | Pset (c, p, a, b) -> Pset (c, p, f a, f b)
  | Exit l -> Exit l

let map_def f kind =
  match kind with
  | Ibin (op, d, a, b) -> Ibin (op, f d, a, b)
  | Fbin (op, d, a, b) -> Fbin (op, f d, a, b)
  | Funop (op, d, a) -> Funop (op, f d, a)
  | Icmp (c, d, a, b) -> Icmp (c, f d, a, b)
  | Fcmp (c, d, a, b) -> Fcmp (c, f d, a, b)
  | Mov (d, a) -> Mov (f d, a)
  | Itof (d, a) -> Itof (f d, a)
  | Ftoi (d, a) -> Ftoi (f d, a)
  | Intrin (i, d, args) -> Intrin (i, f d, args)
  | Gaddr (d, g) -> Gaddr (f d, g)
  | Load (d, a) -> Load (f d, a)
  | Call (Some d, name, args, e) -> Call (Some (f d), name, args, e)
  | Call (None, _, _, _) | Store _ | Prefetch _ | Emit _ | Pdef _ | Pclear _
  | Por _ | Pset _ | Exit _ ->
    kind

(* --- Printing --------------------------------------------------------- *)

let pp_space ppf = function
  | Global g -> Fmt.pf ppf "@%s" g
  | Frame f -> Fmt.pf ppf "frame(%s)" f
  | Unknown -> Fmt.pf ppf "?"

let pp_address ppf a =
  Fmt.pf ppf "[%a + %a : %a%s]" pp_operand a.base pp_operand a.offset
    pp_space a.space
    (if a.hazard then " !" else "")

let pp_kind ppf = function
  | Ibin (op, d, a, b) ->
    Fmt.pf ppf "r%d = %s %a, %a" d (string_of_ibinop op) pp_operand a
      pp_operand b
  | Fbin (op, d, a, b) ->
    Fmt.pf ppf "r%d = %s %a, %a" d (string_of_fbinop op) pp_operand a
      pp_operand b
  | Funop (op, d, a) ->
    Fmt.pf ppf "r%d = %s %a" d (string_of_funop op) pp_operand a
  | Icmp (c, d, a, b) ->
    Fmt.pf ppf "r%d = icmp.%s %a, %a" d (string_of_icmp c) pp_operand a
      pp_operand b
  | Fcmp (c, d, a, b) ->
    Fmt.pf ppf "r%d = fcmp.%s %a, %a" d (string_of_icmp c) pp_operand a
      pp_operand b
  | Mov (d, a) -> Fmt.pf ppf "r%d = mov %a" d pp_operand a
  | Itof (d, a) -> Fmt.pf ppf "r%d = itof %a" d pp_operand a
  | Ftoi (d, a) -> Fmt.pf ppf "r%d = ftoi %a" d pp_operand a
  | Intrin (i, d, args) ->
    Fmt.pf ppf "r%d = %s(%a)" d (string_of_intrinsic i)
      Fmt.(list ~sep:comma pp_operand) args
  | Gaddr (d, g) -> Fmt.pf ppf "r%d = gaddr @%s" d g
  | Load (d, a) -> Fmt.pf ppf "r%d = load %a" d pp_address a
  | Store (a, v) -> Fmt.pf ppf "store %a, %a" pp_address a pp_operand v
  | Prefetch a -> Fmt.pf ppf "prefetch %a" pp_address a
  | Call (d, name, args, e) ->
    Fmt.pf ppf "%scall %s(%a)%s"
      (match d with Some d -> Fmt.str "r%d = " d | None -> "")
      name
      Fmt.(list ~sep:comma pp_operand) args
      (match e with Pure -> " pure" | Impure -> "")
  | Emit a -> Fmt.pf ppf "emit %a" pp_operand a
  | Pdef (c, pt, pf, a, b) ->
    Fmt.pf ppf "p%d, p%d = cmpp.%s %a, %a" pt pf (string_of_icmp c)
      pp_operand a pp_operand b
  | Pclear p -> Fmt.pf ppf "p%d = false" p
  | Por (c, p, a, b) ->
    Fmt.pf ppf "p%d |= cmp.%s %a, %a" p (string_of_icmp c) pp_operand a
      pp_operand b
  | Pset (c, p, a, b) ->
    Fmt.pf ppf "p%d = cmp.unc.%s %a, %a" p (string_of_icmp c) pp_operand a
      pp_operand b
  | Exit l -> Fmt.pf ppf "exit %s" l

let pp ppf i =
  if i.guard = p_true then pp_kind ppf i.kind
  else Fmt.pf ppf "(p%d) %a" i.guard pp_kind i.kind
