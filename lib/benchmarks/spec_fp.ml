(* SPEC92/95-style floating-point benchmarks used by the prefetching
   study.  They stream over arrays larger than the L1 cache with known
   strides, so software prefetching has both something to win (miss
   latency) and something to lose (slots, pollution, queue pressure). *)

let tomcatv : Bench.t =
  {
    name = "101.tomcatv";
    suite = Bench.Spec92;
    fp = true;
    description = "Mesh relaxation: 2D five-point sweep with residual";
    source =
      {|
global float x[16384];
global float y[16384];

int main() {
  int dim = 128;
  int iters = 6;
  int it;
  float resid = 0.0;
  for (it = 0; it < iters; it = it + 1) {
    int i;
    resid = 0.0;
    for (i = 1; i < dim - 1; i = i + 1) {
      int j;
      for (j = 1; j < dim - 1; j = j + 1) {
        int o = i * 128 + j;
        float rx = x[o - 1] + x[o + 1] + x[o - 128] + x[o + 128] - 4.0 * x[o];
        float ry = y[o - 1] + y[o + 1] + y[o - 128] + y[o + 128] - 4.0 * y[o];
        x[o] = x[o] + 0.18 * rx;
        y[o] = y[o] + 0.18 * ry;
        float ar = rx;
        if (ar < 0.0) { ar = 0.0 - ar; }
        resid = resid + ar;
      }
    }
  }
  emit(resid);
  return 0;
}
|};
    train = [ ("x", Data.floats ~seed:50 ~n:16384 ~lo:0.0 ~hi:1.0);
              ("y", Data.floats ~seed:51 ~n:16384 ~lo:0.0 ~hi:1.0) ];
    novel = [ ("x", Data.floats ~seed:120 ~n:16384 ~lo:0.0 ~hi:2.0);
              ("y", Data.floats ~seed:121 ~n:16384 ~lo:0.0 ~hi:2.0) ];
  }

let swim : Bench.t =
  {
    name = "102.swim";
    suite = Bench.Spec92;
    fp = true;
    description = "Shallow-water stencil over three fields";
    source =
      {|
global float u[16384];
global float v[16384];
global float p[16384];

int main() {
  int dim = 128;
  int iters = 5;
  int it;
  float check = 0.0;
  for (it = 0; it < iters; it = it + 1) {
    int i;
    for (i = 1; i < dim - 1; i = i + 1) {
      int j;
      for (j = 1; j < dim - 1; j = j + 1) {
        int o = i * 128 + j;
        float du = p[o + 1] - p[o - 1] + v[o];
        float dv = p[o + 128] - p[o - 128] - u[o];
        float dp = u[o + 1] - u[o - 1] + v[o + 128] - v[o - 128];
        u[o] = u[o] + 0.05 * du;
        v[o] = v[o] + 0.05 * dv;
        p[o] = p[o] - 0.02 * dp;
      }
    }
    check = check + p[it * 100 + 65];
  }
  emit(check);
  return 0;
}
|};
    train = [ ("u", Data.floats ~seed:52 ~n:16384 ~lo:(-1.0) ~hi:1.0);
              ("v", Data.floats ~seed:53 ~n:16384 ~lo:(-1.0) ~hi:1.0);
              ("p", Data.floats ~seed:54 ~n:16384 ~lo:0.0 ~hi:1.0) ];
    novel = [ ("u", Data.floats ~seed:122 ~n:16384 ~lo:(-1.0) ~hi:1.0);
              ("v", Data.floats ~seed:123 ~n:16384 ~lo:(-1.0) ~hi:1.0);
              ("p", Data.floats ~seed:124 ~n:16384 ~lo:0.0 ~hi:1.0) ];
  }

let su2cor : Bench.t =
  {
    name = "103.su2cor";
    suite = Bench.Spec92;
    fp = true;
    description = "Lattice gauge kernel: complex 2x2 matrix products over links";
    source =
      {|
global float links[16384];
global float prop[4096];

int main() {
  int nsites = 2048;
  int sweeps = 4;
  int s;
  float check = 0.0;
  for (s = 0; s < sweeps; s = s + 1) {
    int i;
    for (i = 0; i < nsites; i = i + 1) {
      int lo = i * 8;
      /* complex 2x2 times 2-vector */
      float ar = links[lo];     float ai = links[lo + 1];
      float br = links[lo + 2]; float bi = links[lo + 3];
      float cr = links[lo + 4]; float ci = links[lo + 5];
      float dr = links[lo + 6]; float di = links[lo + 7];
      int po = (i * 2) % 4096;
      float xr = prop[po];
      float xi = prop[po + 1];
      float yr = ar * xr - ai * xi + br * xr - bi * xi;
      float yi = ar * xi + ai * xr + br * xi + bi * xr;
      float zr = cr * xr - ci * xi + dr * xr - di * xi;
      float zi = cr * xi + ci * xr + dr * xi + di * xr;
      prop[po] = 0.9 * yr + 0.1 * zr;
      prop[po + 1] = 0.9 * yi + 0.1 * zi;
      check = check + yr * 0.001 - zi * 0.001;
    }
  }
  emit(check);
  return 0;
}
|};
    train = [ ("links", Data.floats ~seed:55 ~n:16384 ~lo:(-1.0) ~hi:1.0);
              ("prop", Data.floats ~seed:56 ~n:4096 ~lo:(-1.0) ~hi:1.0) ];
    novel = [ ("links", Data.floats ~seed:125 ~n:16384 ~lo:(-1.0) ~hi:1.0);
              ("prop", Data.floats ~seed:126 ~n:4096 ~lo:(-1.0) ~hi:1.0) ];
  }

let turb3d : Bench.t =
  {
    name = "125.turb3d";
    suite = Bench.Spec95;
    fp = true;
    description = "3D turbulence kernel: strided column sweeps";
    source =
      {|
global float field[16384];

int main() {
  int dim = 25;                  /* 25x25x25 = 15625 */
  int iters = 3;
  int it;
  float check = 0.0;
  for (it = 0; it < iters; it = it + 1) {
    /* x-sweep: unit stride */
    int z;
    for (z = 1; z < dim - 1; z = z + 1) {
      int y;
      for (y = 1; y < dim - 1; y = y + 1) {
        int x;
        for (x = 1; x < dim - 1; x = x + 1) {
          int o = (z * 25 + y) * 25 + x;
          field[o] = 0.5 * field[o] + 0.25 * (field[o - 1] + field[o + 1]);
        }
      }
    }
    /* z-sweep: stride dim*dim = 625 (cache-hostile) */
    int y2;
    for (y2 = 1; y2 < dim - 1; y2 = y2 + 1) {
      int x2;
      for (x2 = 1; x2 < dim - 1; x2 = x2 + 1) {
        int z2;
        for (z2 = 1; z2 < dim - 1; z2 = z2 + 1) {
          int o = (z2 * 25 + y2) * 25 + x2;
          field[o] = 0.5 * field[o] + 0.25 * (field[o - 625] + field[o + 625]);
        }
      }
    }
    check = check + field[(it + 3) * 600 + 13];
  }
  emit(check);
  return 0;
}
|};
    train = [ ("field", Data.floats ~seed:57 ~n:16384 ~lo:(-1.0) ~hi:1.0) ];
    novel = [ ("field", Data.floats ~seed:127 ~n:16384 ~lo:(-2.0) ~hi:2.0) ];
  }

let wave5 : Bench.t =
  {
    name = "146.wave5";
    suite = Bench.Spec92;
    fp = true;
    description = "Particle-in-cell wave kernel: gather/scatter + field solve";
    source =
      {|
global float efield[8192];
global float pos[4096];
global float vel[4096];

int main() {
  int nparticles = 4096;
  int steps = 6;
  int s;
  float check = 0.0;
  for (s = 0; s < steps; s = s + 1) {
    int i;
    /* particle push: indirect gather from the field */
    for (i = 0; i < nparticles; i = i + 1) {
      int cell = int(pos[i]);
      if (cell < 0) { cell = 0; }
      if (cell > 8190) { cell = 8190; }
      float e = efield[cell] + (pos[i] - float(cell)) * (efield[cell + 1] - efield[cell]);
      vel[i] = vel[i] + 0.1 * e;
      pos[i] = pos[i] + vel[i];
      if (pos[i] < 0.0)    { pos[i] = pos[i] + 8190.0; }
      if (pos[i] > 8190.0) { pos[i] = pos[i] - 8190.0; }
    }
    /* field relaxation: unit stride */
    for (i = 1; i < 8191; i = i + 1) {
      efield[i] = 0.9 * efield[i] + 0.05 * (efield[i - 1] + efield[i + 1]);
    }
    check = check + vel[s * 500 + 3];
  }
  emit(check);
  return 0;
}
|};
    train = [ ("efield", Data.floats ~seed:58 ~n:8192 ~lo:(-1.0) ~hi:1.0);
              ("pos", Data.floats ~seed:59 ~n:4096 ~lo:0.0 ~hi:8000.0);
              ("vel", Data.floats ~seed:60 ~n:4096 ~lo:(-2.0) ~hi:2.0) ];
    novel = [ ("efield", Data.floats ~seed:128 ~n:8192 ~lo:(-1.0) ~hi:1.0);
              ("pos", Data.floats ~seed:129 ~n:4096 ~lo:0.0 ~hi:8000.0);
              ("vel", Data.floats ~seed:130 ~n:4096 ~lo:(-2.0) ~hi:2.0) ];
  }

let nasa7 : Bench.t =
  {
    name = "093.nasa7";
    suite = Bench.Spec92;
    fp = true;
    description = "NASA kernels: blocked matrix multiply + dot products";
    source =
      {|
global float a[4096];
global float b[4096];
global float c[4096];

int main() {
  int dim = 64;
  int i;
  float check = 0.0;
  /* C = A * B, 64x64 */
  for (i = 0; i < dim; i = i + 1) {
    int j;
    for (j = 0; j < dim; j = j + 1) {
      float sum = 0.0;
      int k;
      for (k = 0; k < dim; k = k + 1) {
        sum = sum + a[i * 64 + k] * b[k * 64 + j];
      }
      c[i * 64 + j] = sum;
    }
  }
  /* row/column dots */
  for (i = 0; i < dim; i = i + 1) {
    float d = 0.0;
    int k;
    for (k = 0; k < dim; k = k + 1) {
      d = d + c[i * 64 + k] * c[k * 64 + i];
    }
    check = check + d * 0.0001;
  }
  emit(check);
  return 0;
}
|};
    train = [ ("a", Data.floats ~seed:61 ~n:4096 ~lo:(-1.0) ~hi:1.0);
              ("b", Data.floats ~seed:62 ~n:4096 ~lo:(-1.0) ~hi:1.0) ];
    novel = [ ("a", Data.floats ~seed:131 ~n:4096 ~lo:(-1.0) ~hi:1.0);
              ("b", Data.floats ~seed:132 ~n:4096 ~lo:(-1.0) ~hi:1.0) ];
  }

let doduc : Bench.t =
  {
    name = "015.doduc";
    suite = Bench.Spec92;
    fp = true;
    description = "Monte-Carlo reactor kernel: table lookups + exponentials";
    source =
      {|
global float xsect[8192];
global float energy[4096];

int main() {
  int nparticles = 4096;
  int i;
  float absorbed = 0.0;
  float escaped = 0.0;
  for (i = 0; i < nparticles; i = i + 1) {
    float e = energy[i];
    int hops = 0;
    while (hops < 8 && e > 0.05) {
      int bin = int(e * 800.0);
      if (bin < 0) { bin = 0; }
      if (bin > 8191) { bin = 8191; }
      float sigma = xsect[bin];
      /* collision: lose energy proportional to cross-section */
      float loss = e * (0.2 + 0.3 * sigma);
      e = e - loss;
      absorbed = absorbed + loss * exp(0.0 - sigma);
      hops = hops + 1;
    }
    if (e > 0.05) { escaped = escaped + e; }
  }
  emit(absorbed);
  emit(escaped);
  return 0;
}
|};
    train = [ ("xsect", Data.floats ~seed:63 ~n:8192 ~lo:0.0 ~hi:1.0);
              ("energy", Data.floats ~seed:64 ~n:4096 ~lo:0.1 ~hi:10.0) ];
    novel = [ ("xsect", Data.floats ~seed:133 ~n:8192 ~lo:0.0 ~hi:1.0);
              ("energy", Data.floats ~seed:134 ~n:4096 ~lo:0.1 ~hi:10.0) ];
  }

let mdljdp2 : Bench.t =
  {
    name = "034.mdljdp2";
    suite = Bench.Spec92;
    fp = true;
    description = "Molecular dynamics: pairwise Lennard-Jones forces";
    source =
      {|
global float px[512];
global float py[512];
global float pz[512];
global float fx[512];
global float fy[512];
global float fz[512];

int main() {
  int natoms = 320;
  int steps = 3;
  int s;
  float check = 0.0;
  for (s = 0; s < steps; s = s + 1) {
    int i;
    for (i = 0; i < natoms; i = i + 1) { fx[i] = 0.0; fy[i] = 0.0; fz[i] = 0.0; }
    for (i = 0; i < natoms; i = i + 1) {
      int j;
      for (j = i + 1; j < natoms; j = j + 1) {
        float dx = px[i] - px[j];
        float dy = py[i] - py[j];
        float dz = pz[i] - pz[j];
        float r2 = dx * dx + dy * dy + dz * dz + 0.01;
        if (r2 < 6.25) {                /* cutoff branch */
          float inv2 = 1.0 / r2;
          float inv6 = inv2 * inv2 * inv2;
          float f = inv6 * (inv6 - 0.5) * inv2;
          fx[i] = fx[i] + f * dx;  fx[j] = fx[j] - f * dx;
          fy[i] = fy[i] + f * dy;  fy[j] = fy[j] - f * dy;
          fz[i] = fz[i] + f * dz;  fz[j] = fz[j] - f * dz;
        }
      }
    }
    for (i = 0; i < natoms; i = i + 1) {
      px[i] = px[i] + 0.001 * fx[i];
      py[i] = py[i] + 0.001 * fy[i];
      pz[i] = pz[i] + 0.001 * fz[i];
    }
    check = check + px[17] + py[200] + pz[55];
  }
  emit(check);
  return 0;
}
|};
    train = [ ("px", Data.floats ~seed:65 ~n:512 ~lo:0.0 ~hi:10.0);
              ("py", Data.floats ~seed:66 ~n:512 ~lo:0.0 ~hi:10.0);
              ("pz", Data.floats ~seed:67 ~n:512 ~lo:0.0 ~hi:10.0) ];
    novel = [ ("px", Data.floats ~seed:135 ~n:512 ~lo:0.0 ~hi:10.0);
              ("py", Data.floats ~seed:136 ~n:512 ~lo:0.0 ~hi:10.0);
              ("pz", Data.floats ~seed:137 ~n:512 ~lo:0.0 ~hi:10.0) ];
  }

let mgrid : Bench.t =
  {
    name = "107.mgrid";
    suite = Bench.Spec95;
    fp = true;
    description = "Multigrid V-cycle: relax / restrict / prolong";
    source =
      {|
global float fine[16384];
global float coarse[4096];

int main() {
  int dim = 128;
  int cycles = 3;
  int c;
  float check = 0.0;
  for (c = 0; c < cycles; c = c + 1) {
    int i;
    /* relax on the fine grid */
    for (i = 1; i < dim - 1; i = i + 1) {
      int j;
      for (j = 1; j < dim - 1; j = j + 1) {
        int o = i * 128 + j;
        fine[o] = 0.5 * fine[o]
          + 0.125 * (fine[o - 1] + fine[o + 1] + fine[o - 128] + fine[o + 128]);
      }
    }
    /* restrict to the coarse grid (stride-2 gather) */
    for (i = 0; i < 64; i = i + 1) {
      int j;
      for (j = 0; j < 64; j = j + 1) {
        coarse[i * 64 + j] = fine[(2 * i) * 128 + 2 * j];
      }
    }
    /* relax coarse */
    for (i = 1; i < 63; i = i + 1) {
      int j;
      for (j = 1; j < 63; j = j + 1) {
        int o = i * 64 + j;
        coarse[o] = 0.5 * coarse[o]
          + 0.125 * (coarse[o - 1] + coarse[o + 1] + coarse[o - 64] + coarse[o + 64]);
      }
    }
    /* prolong back */
    for (i = 0; i < 64; i = i + 1) {
      int j;
      for (j = 0; j < 64; j = j + 1) {
        fine[(2 * i) * 128 + 2 * j] =
          0.7 * fine[(2 * i) * 128 + 2 * j] + 0.3 * coarse[i * 64 + j];
      }
    }
    check = check + fine[c * 1000 + 129];
  }
  emit(check);
  return 0;
}
|};
    train = [ ("fine", Data.floats ~seed:68 ~n:16384 ~lo:(-1.0) ~hi:1.0) ];
    novel = [ ("fine", Data.floats ~seed:138 ~n:16384 ~lo:(-1.0) ~hi:1.0) ];
  }

let apsi : Bench.t =
  {
    name = "141.apsi";
    suite = Bench.Spec95;
    fp = true;
    description = "Pollutant transport: advection-diffusion sweeps";
    source =
      {|
global float conc[16384];
global float wind[16384];

int main() {
  int dim = 128;
  int steps = 5;
  int s;
  float check = 0.0;
  for (s = 0; s < steps; s = s + 1) {
    int i;
    for (i = 1; i < dim - 1; i = i + 1) {
      int j;
      for (j = 1; j < dim - 1; j = j + 1) {
        int o = i * 128 + j;
        float w = wind[o];
        float adv = 0.0;
        if (w > 0.0) { adv = w * (conc[o] - conc[o - 1]); }
        else         { adv = w * (conc[o + 1] - conc[o]); }
        float diff = conc[o - 128] + conc[o + 128] - 2.0 * conc[o];
        conc[o] = conc[o] - 0.1 * adv + 0.05 * diff;
      }
    }
    check = check + conc[s * 700 + 200];
  }
  emit(check);
  return 0;
}
|};
    train = [ ("conc", Data.floats ~seed:69 ~n:16384 ~lo:0.0 ~hi:1.0);
              ("wind", Data.floats ~seed:70 ~n:16384 ~lo:(-1.0) ~hi:1.0) ];
    novel = [ ("conc", Data.floats ~seed:139 ~n:16384 ~lo:0.0 ~hi:1.0);
              ("wind", Data.floats ~seed:140 ~n:16384 ~lo:(-1.0) ~hi:1.0) ];
  }

let all : Bench.t list =
  [ tomcatv; swim; su2cor; turb3d; wave5; nasa7; doduc; mdljdp2; mgrid; apsi ]
