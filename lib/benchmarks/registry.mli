(** The benchmark registry: lookup by name and the suite groupings of the
    paper's experiments (see DESIGN.md's per-experiment index). *)

val all : Bench.t list

val find : string -> Bench.t
(** @raise Invalid_argument on an unknown name. *)

val names : string list

val integer_benchmarks : Bench.t list
val fp_benchmarks : Bench.t list

(** Figure 4 / 6 / 7 suites. *)

val hyperblock_specialize : string list
val hyperblock_train : string list
val hyperblock_test : string list

(** Figure 9 / 11 / 12 suites. *)

val regalloc_specialize : string list
val regalloc_train : string list
val regalloc_test : string list

(** Figure 13 / 15 / 16 suites. *)

val prefetch_specialize : string list
val prefetch_train : string list
val prefetch_test : string list
