(** Benchmark definitions; see {!Registry} for lookup and suites. *)

val all : Bench.t list
