(* Mediabench-style image / video / signal benchmarks. *)

let djpeg : Bench.t =
  {
    name = "djpeg";
    suite = Bench.Mediabench;
    fp = false;
    description = "JPEG-style decode: dequantize + separable 8x8 IDCT + clamp";
    source =
      {|
global int coefs[4096];
global int quant[64];
global int blockbuf[64];
global int tmp[64];

int main() {
  int nblocks = 64;
  int b;
  int check = 0;
  int q;
  for (q = 0; q < 64; q = q + 1) {
    quant[q] = 4 + ((q * 3) >> 2);
  }
  for (b = 0; b < nblocks; b = b + 1) {
    int base = b * 64;
    int i;
    /* dequantize with zero-skip branches */
    for (i = 0; i < 64; i = i + 1) {
      int c = coefs[base + i];
      if (c == 0) { blockbuf[i] = 0; }
      else { blockbuf[i] = (c - 8) * quant[i]; }
    }
    /* rows: integer butterfly approximation */
    int r;
    for (r = 0; r < 8; r = r + 1) {
      int o = r * 8;
      int s0 = blockbuf[o] + blockbuf[o + 4];
      int s1 = blockbuf[o] - blockbuf[o + 4];
      int s2 = blockbuf[o + 2] + (blockbuf[o + 6] >> 1);
      int s3 = (blockbuf[o + 2] >> 1) - blockbuf[o + 6];
      int t0 = s0 + s2;
      int t1 = s1 + s3;
      int t2 = s1 - s3;
      int t3 = s0 - s2;
      int u0 = blockbuf[o + 1] + (blockbuf[o + 7] >> 2);
      int u1 = blockbuf[o + 3] + (blockbuf[o + 5] >> 1);
      int u2 = (blockbuf[o + 3] >> 1) - blockbuf[o + 5];
      int u3 = (blockbuf[o + 1] >> 2) - blockbuf[o + 7];
      tmp[o]     = t0 + u0;
      tmp[o + 1] = t1 + u1;
      tmp[o + 2] = t2 + u2;
      tmp[o + 3] = t3 + u3;
      tmp[o + 4] = t3 - u3;
      tmp[o + 5] = t2 - u2;
      tmp[o + 6] = t1 - u1;
      tmp[o + 7] = t0 - u0;
    }
    /* columns + clamp */
    int c2;
    for (c2 = 0; c2 < 8; c2 = c2 + 1) {
      int s0 = tmp[c2] + tmp[c2 + 32];
      int s1 = tmp[c2] - tmp[c2 + 32];
      int s2 = tmp[c2 + 16] + (tmp[c2 + 48] >> 1);
      int s3 = (tmp[c2 + 16] >> 1) - tmp[c2 + 48];
      int v0 = (s0 + s2) >> 3;
      int v1 = (s1 + s3) >> 3;
      int v2 = (s1 - s3) >> 3;
      int v3 = (s0 - s2) >> 3;
      if (v0 > 255) { v0 = 255; }  if (v0 < 0) { v0 = 0; }
      if (v1 > 255) { v1 = 255; }  if (v1 < 0) { v1 = 0; }
      if (v2 > 255) { v2 = 255; }  if (v2 < 0) { v2 = 0; }
      if (v3 > 255) { v3 = 255; }  if (v3 < 0) { v3 = 0; }
      check = (check * 31 + v0 + v1 * 3 + v2 * 5 + v3 * 7) % 1000003;
    }
  }
  emit(check);
  return 0;
}
|};
    train = [ ("coefs", Data.skewed ~seed:21 ~n:4096 ~bound:17) ];
    novel = [ ("coefs", Data.skewed ~seed:87 ~n:4096 ~bound:17) ];
  }

let ijpeg : Bench.t =
  {
    name = "132.ijpeg";
    suite = Bench.Spec95;
    fp = false;
    description = "JPEG-style encode: forward DCT approximation + quantize";
    source =
      {|
global int pixels[4096];
global int quant[64];
global int blockbuf[64];

int main() {
  int nblocks = 64;
  int b;
  int check = 0;
  int zeros = 0;
  int q;
  for (q = 0; q < 64; q = q + 1) {
    quant[q] = 6 + ((q * 5) >> 2);
  }
  for (b = 0; b < nblocks; b = b + 1) {
    int base = b * 64;
    int r;
    /* rows */
    for (r = 0; r < 8; r = r + 1) {
      int o = base + r * 8;
      int a0 = pixels[o]     + pixels[o + 7];
      int a1 = pixels[o + 1] + pixels[o + 6];
      int a2 = pixels[o + 2] + pixels[o + 5];
      int a3 = pixels[o + 3] + pixels[o + 4];
      int d0 = pixels[o]     - pixels[o + 7];
      int d1 = pixels[o + 1] - pixels[o + 6];
      int d2 = pixels[o + 2] - pixels[o + 5];
      int d3 = pixels[o + 3] - pixels[o + 4];
      blockbuf[r * 8]     = a0 + a1 + a2 + a3;
      blockbuf[r * 8 + 4] = a0 - a1 - a2 + a3;
      blockbuf[r * 8 + 2] = a0 - a3 + ((a1 - a2) >> 1);
      blockbuf[r * 8 + 6] = ((a0 - a3) >> 1) - a1 + a2;
      blockbuf[r * 8 + 1] = d0 + (d1 >> 1) + (d2 >> 2);
      blockbuf[r * 8 + 3] = d1 - d3 + (d0 >> 2);
      blockbuf[r * 8 + 5] = d2 + (d3 >> 1) - (d1 >> 2);
      blockbuf[r * 8 + 7] = d3 - (d0 >> 1) + (d2 >> 1);
    }
    /* quantize with dead-zone branches */
    int i;
    for (i = 0; i < 64; i = i + 1) {
      int v = blockbuf[i] / quant[i];
      if (v > 0 - 2 && v < 2) { v = 0; zeros = zeros + 1; }
      check = (check * 29 + (v & 1023)) % 1000003;
    }
  }
  emit(check);
  emit(zeros);
  return 0;
}
|};
    train = [ ("pixels", Data.ints ~seed:22 ~n:4096 ~bound:256) ];
    novel = [ ("pixels", Data.runs ~seed:88 ~n:4096 ~bound:256 ~max_run:6) ];
  }

let mpeg2dec : Bench.t =
  {
    name = "mpeg2dec";
    suite = Bench.Mediabench;
    fp = false;
    description = "MPEG-2-style decode: motion compensation + saturation";
    source =
      {|
global int refframe[6144];
global int mvx[96];
global int mvy[96];
global int resid[6144];

int main() {
  int width = 64;
  int height = 96;
  int mb;
  int check = 0;
  /* 8x8 macroblocks, motion-compensated from the reference frame */
  for (mb = 0; mb < 96; mb = mb + 1) {
    int bx = (mb % 8) * 8;
    int by = (mb / 8) * 8;
    int vx = mvx[mb] % 5 - 2;
    int vy = mvy[mb] % 5 - 2;
    int y;
    for (y = 0; y < 8; y = y + 1) {
      int x;
      for (x = 0; x < 8; x = x + 1) {
        int sx = bx + x + vx;
        int sy = by + y + vy;
        if (sx < 0)       { sx = 0; }
        if (sx >= width)  { sx = width - 1; }
        if (sy < 0)       { sy = 0; }
        if (sy >= height) { sy = height - 1; }
        int p = refframe[sy * width + sx];
        int v = p + resid[(by + y) * width + bx + x] - 128;
        if (v < 0)   { v = 0; }
        if (v > 255) { v = 255; }
        check = (check * 31 + v) % 1000003;
      }
    }
  }
  emit(check);
  return 0;
}
|};
    train =
      [
        ("refframe", Data.ints ~seed:23 ~n:6144 ~bound:256);
        ("mvx", Data.ints ~seed:24 ~n:96 ~bound:100);
        ("mvy", Data.ints ~seed:25 ~n:96 ~bound:100);
        ("resid", Data.ints ~seed:26 ~n:6144 ~bound:256);
      ];
    novel =
      [
        ("refframe", Data.ints ~seed:89 ~n:6144 ~bound:256);
        ("mvx", Data.ints ~seed:90 ~n:96 ~bound:100);
        ("mvy", Data.ints ~seed:91 ~n:96 ~bound:100);
        ("resid", Data.runs ~seed:92 ~n:6144 ~bound:256 ~max_run:12);
      ];
  }

let unepic : Bench.t =
  {
    name = "unepic";
    suite = Bench.Mediabench;
    fp = false;
    description = "EPIC-style image decode: inverse Haar pyramid + clamp";
    source =
      {|
global int coef[4096];
global int img[4096];

int main() {
  int n = 4096;
  int i;
  for (i = 0; i < n; i = i + 1) { img[i] = coef[i] - 128; }
  /* three inverse pyramid levels over a 64x64 image */
  int level;
  for (level = 3; level >= 1; level = level - 1) {
    int size = 64 >> level;       /* low band is size x size */
    int y;
    for (y = 0; y < size; y = y + 1) {
      int x;
      for (x = 0; x < size; x = x + 1) {
        int lo = img[y * 64 + x];
        int h1 = img[y * 64 + x + size];
        int h2 = img[(y + size) * 64 + x];
        int h3 = img[(y + size) * 64 + x + size];
        int a = lo + h1 + h2 + h3;
        int b = lo + h1 - h2 - h3;
        int c = lo - h1 + h2 - h3;
        int d = lo - h1 - h2 + h3;
        img[(2 * y) * 64 + 2 * x]         = a >> 1;
        img[(2 * y) * 64 + 2 * x + 1]     = b >> 1;
        img[(2 * y + 1) * 64 + 2 * x]     = c >> 1;
        img[(2 * y + 1) * 64 + 2 * x + 1] = d >> 1;
      }
    }
  }
  int check = 0;
  for (i = 0; i < n; i = i + 1) {
    int v = img[i] + 128;
    if (v < 0)   { v = 0; }
    if (v > 255) { v = 255; }
    check = (check * 31 + v) % 1000003;
  }
  emit(check);
  return 0;
}
|};
    train = [ ("coef", Data.skewed ~seed:27 ~n:4096 ~bound:256) ];
    novel = [ ("coef", Data.skewed ~seed:93 ~n:4096 ~bound:256) ];
  }

let rasta : Bench.t =
  {
    name = "rasta";
    suite = Bench.Mediabench;
    fp = true;
    description = "RASTA-style speech front end: DFT filterbank + log compression";
    source =
      {|
global float samples[2048];
global float bank[16];

int main() {
  int nframes = 16;
  int flen = 128;
  int f;
  float check = 0.0;
  for (f = 0; f < nframes; f = f + 1) {
    int base = f * flen;
    /* 16-band DFT magnitude filterbank */
    int k;
    for (k = 0; k < 16; k = k + 1) {
      float re = 0.0;
      float im = 0.0;
      float w = 0.0491 * float(k + 1);
      int t;
      for (t = 0; t < flen; t = t + 1) {
        float s = samples[base + t];
        float ang = w * float(t);
        re = re + s * cos(ang);
        im = im + s * sin(ang);
      }
      float mag = re * re + im * im;
      /* cube-root-style compression via log */
      if (mag < 0.0001) { mag = 0.0001; }
      bank[k] = log(mag);
    }
    /* RASTA band filtering across frames (simple IIR) */
    for (k = 0; k < 16; k = k + 1) {
      check = 0.98 * check + bank[k];
    }
  }
  emit(check);
  return 0;
}
|};
    train = [ ("samples", Data.signal ~seed:28 ~n:2048) ];
    novel = [ ("samples", Data.signal ~seed:94 ~n:2048) ];
  }

let osdemo : Bench.t =
  {
    name = "osdemo";
    suite = Bench.Mediabench;
    fp = true;
    description = "Mesa-style 3D pipeline: transform, perspective, clip";
    source =
      {|
global float verts[3072];
global float mat[16];

int main() {
  int nverts = 1024;
  int i;
  /* a fixed model-view-projection matrix */
  mat[0] = 0.8;  mat[1] = 0.1;  mat[2] = 0.0;   mat[3] = 0.2;
  mat[4] = 0.0;  mat[5] = 0.9;  mat[6] = 0.15;  mat[7] = 0.1;
  mat[8] = 0.1;  mat[9] = 0.05; mat[10] = 1.1;  mat[11] = 2.5;
  mat[12] = 0.0; mat[13] = 0.0; mat[14] = 0.3;  mat[15] = 1.0;
  int accepted = 0;
  float checksum = 0.0;
  for (i = 0; i < nverts; i = i + 1) {
    float x = verts[i * 3];
    float y = verts[i * 3 + 1];
    float z = verts[i * 3 + 2];
    float tx = mat[0] * x + mat[1] * y + mat[2] * z + mat[3];
    float ty = mat[4] * x + mat[5] * y + mat[6] * z + mat[7];
    float tz = mat[8] * x + mat[9] * y + mat[10] * z + mat[11];
    float tw = mat[12] * x + mat[13] * y + mat[14] * z + mat[15];
    if (tw < 0.001) { tw = 0.001; }
    float sx = tx / tw;
    float sy = ty / tw;
    /* frustum clip branches */
    int visible = 1;
    if (sx < 0.0 - 1.0) { visible = 0; }
    if (sx > 1.0)       { visible = 0; }
    if (sy < 0.0 - 1.0) { visible = 0; }
    if (sy > 1.0)       { visible = 0; }
    if (tz < 0.0)       { visible = 0; }
    if (visible) {
      accepted = accepted + 1;
      checksum = checksum + sx * 31.0 + sy * 7.0 + tz;
    }
  }
  emit(accepted);
  emit(checksum);
  return 0;
}
|};
    train = [ ("verts", Data.floats ~seed:29 ~n:3072 ~lo:(-2.0) ~hi:2.0) ];
    novel = [ ("verts", Data.floats ~seed:95 ~n:3072 ~lo:(-3.0) ~hi:3.0) ];
  }

let mipmap : Bench.t =
  {
    name = "mipmap";
    suite = Bench.Mediabench;
    fp = true;
    description = "Texture sampling with level-of-detail selection";
    source =
      {|
global float texture[5464];
global float queries[3072];

int main() {
  /* mip chain: 64x64 at 0, 32x32 at 4096, 16x16 at 5120, 8x8 at 5376 */
  int nqueries = 1024;
  int i;
  float checksum = 0.0;
  for (i = 0; i < nqueries; i = i + 1) {
    float u = queries[i * 3];
    float v = queries[i * 3 + 1];
    float lod = queries[i * 3 + 2];
    int level = 0;
    if (lod > 1.0) { level = 1; }
    if (lod > 2.0) { level = 2; }
    if (lod > 3.0) { level = 3; }
    int size = 64 >> level;
    int base = 0;
    if (level == 1) { base = 4096; }
    if (level == 2) { base = 5120; }
    if (level == 3) { base = 5376; }
    float fu = u * float(size - 1);
    float fv = v * float(size - 1);
    int iu = int(fu);
    int iv = int(fv);
    if (iu < 0) { iu = 0; }
    if (iv < 0) { iv = 0; }
    if (iu >= size - 1) { iu = size - 2; }
    if (iv >= size - 1) { iv = size - 2; }
    float du = fu - float(iu);
    float dv = fv - float(iv);
    /* bilinear */
    float t00 = texture[base + iv * size + iu];
    float t01 = texture[base + iv * size + iu + 1];
    float t10 = texture[base + (iv + 1) * size + iu];
    float t11 = texture[base + (iv + 1) * size + iu + 1];
    float a = t00 + du * (t01 - t00);
    float b = t10 + du * (t11 - t10);
    checksum = checksum + a + dv * (b - a);
  }
  emit(checksum);
  return 0;
}
|};
    train =
      [
        ("texture", Data.floats ~seed:30 ~n:5464 ~lo:0.0 ~hi:1.0);
        ("queries", Data.floats ~seed:31 ~n:3072 ~lo:0.0 ~hi:1.0);
      ];
    novel =
      [
        ("texture", Data.floats ~seed:96 ~n:5464 ~lo:0.0 ~hi:1.0);
        ("queries", Data.floats ~seed:97 ~n:3072 ~lo:0.0 ~hi:4.0);
      ];
  }

let all : Bench.t list =
  [ djpeg; ijpeg; mpeg2dec; unepic; rasta; osdemo; mipmap ]
