(* The benchmark record type and suite tags. *)

type suite = Mediabench | Spec92 | Spec95 | Spec2000 | Misc

let string_of_suite = function
  | Mediabench -> "Mediabench"
  | Spec92 -> "SPEC92"
  | Spec95 -> "SPEC95"
  | Spec2000 -> "SPEC2000"
  | Misc -> "misc"

type t = {
  name : string;
  suite : suite;
  fp : bool;                               (* floating-point dominated *)
  description : string;
  source : string;                         (* MiniC program text *)
  train : (string * float array) list;     (* global overrides *)
  novel : (string * float array) list;
}

type dataset = Train | Novel

let overrides b = function Train -> b.train | Novel -> b.novel
