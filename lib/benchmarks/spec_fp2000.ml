(* SPEC2000-style floating-point benchmarks: the prefetching study's
   cross-validation set (Figure 16).  Deliberately different memory
   behaviour from the training set — some of these reward aggressive
   prefetching, which is exactly the generalization caveat the paper
   discusses. *)

let wupwise : Bench.t =
  {
    name = "168.wupwise";
    suite = Bench.Spec2000;
    fp = true;
    description = "Lattice QCD BiCGStab kernel: complex matrix-vector";
    source =
      {|
global float m[8192];
global float vec[2048];
global float res[2048];

int main() {
  int nsites = 1024;
  int sweeps = 4;
  int s;
  float check = 0.0;
  for (s = 0; s < sweeps; s = s + 1) {
    int i;
    for (i = 0; i < nsites; i = i + 1) {
      int mo = i * 8;
      int vo = i * 2;
      float ar = m[mo];     float ai = m[mo + 1];
      float br = m[mo + 2]; float bi = m[mo + 3];
      float xr = vec[vo];   float xi = vec[vo + 1];
      int nb = ((i * 7 + 3) % 1024) * 2;   /* neighbour gather */
      float yr = vec[nb];
      float yi = vec[nb + 1];
      res[vo]     = ar * xr - ai * xi + br * yr - bi * yi;
      res[vo + 1] = ar * xi + ai * xr + br * yi + bi * yr;
    }
    for (i = 0; i < nsites * 2; i = i + 1) {
      vec[i] = 0.95 * vec[i] + 0.05 * res[i];
    }
    check = check + vec[s * 71 + 5];
  }
  emit(check);
  return 0;
}
|};
    train = [ ("m", Data.floats ~seed:150 ~n:8192 ~lo:(-1.0) ~hi:1.0);
              ("vec", Data.floats ~seed:151 ~n:2048 ~lo:(-1.0) ~hi:1.0) ];
    novel = [ ("m", Data.floats ~seed:250 ~n:8192 ~lo:(-1.0) ~hi:1.0);
              ("vec", Data.floats ~seed:251 ~n:2048 ~lo:(-1.0) ~hi:1.0) ];
  }

let swim2000 : Bench.t =
  {
    name = "171.swim";
    suite = Bench.Spec2000;
    fp = true;
    description = "Shallow water, leapfrog time stepping on a larger grid";
    source =
      {|
global float h[20000];
global float hu[20000];
global float hold[20000];

int main() {
  int nx = 200;
  int ny = 100;
  int steps = 4;
  int s;
  float check = 0.0;
  for (s = 0; s < steps; s = s + 1) {
    int i;
    for (i = 1; i < ny - 1; i = i + 1) {
      int j;
      for (j = 1; j < nx - 1; j = j + 1) {
        int o = i * 200 + j;
        float flux = hu[o + 1] - hu[o - 1] + hu[o + 200] - hu[o - 200];
        float hnew = hold[o] - 0.05 * flux;
        hold[o] = h[o];
        h[o] = hnew;
        hu[o] = 0.98 * hu[o] - 0.02 * (h[o + 1] - h[o - 1]);
      }
    }
    check = check + h[s * 3000 + 427];
  }
  emit(check);
  return 0;
}
|};
    train = [ ("h", Data.floats ~seed:152 ~n:20000 ~lo:0.5 ~hi:1.5);
              ("hu", Data.floats ~seed:153 ~n:20000 ~lo:(-0.2) ~hi:0.2);
              ("hold", Data.floats ~seed:154 ~n:20000 ~lo:0.5 ~hi:1.5) ];
    novel = [ ("h", Data.floats ~seed:252 ~n:20000 ~lo:0.5 ~hi:1.5);
              ("hu", Data.floats ~seed:253 ~n:20000 ~lo:(-0.2) ~hi:0.2);
              ("hold", Data.floats ~seed:254 ~n:20000 ~lo:0.5 ~hi:1.5) ];
  }

let mgrid2000 : Bench.t =
  {
    name = "172.mgrid";
    suite = Bench.Spec2000;
    fp = true;
    description = "3D multigrid smoother: 7-point relaxation on 32^3";
    source =
      {|
global float grid[32768];

int main() {
  int dim = 32;
  int iters = 4;
  int it;
  float check = 0.0;
  for (it = 0; it < iters; it = it + 1) {
    int z;
    for (z = 1; z < dim - 1; z = z + 1) {
      int y;
      for (y = 1; y < dim - 1; y = y + 1) {
        int x;
        for (x = 1; x < dim - 1; x = x + 1) {
          int o = (z * 32 + y) * 32 + x;
          grid[o] = 0.4 * grid[o]
            + 0.1 * (grid[o - 1] + grid[o + 1]
                     + grid[o - 32] + grid[o + 32]
                     + grid[o - 1024] + grid[o + 1024]);
        }
      }
    }
    check = check + grid[it * 5000 + 1057];
  }
  emit(check);
  return 0;
}
|};
    train = [ ("grid", Data.floats ~seed:155 ~n:32768 ~lo:(-1.0) ~hi:1.0) ];
    novel = [ ("grid", Data.floats ~seed:255 ~n:32768 ~lo:(-1.0) ~hi:1.0) ];
  }

let applu : Bench.t =
  {
    name = "173.applu";
    suite = Bench.Spec2000;
    fp = true;
    description = "SSOR: forward and backward wavefront sweeps";
    source =
      {|
global float rhs[16384];

int main() {
  int dim = 128;
  int iters = 4;
  int it;
  float check = 0.0;
  for (it = 0; it < iters; it = it + 1) {
    int i;
    /* lower solve */
    for (i = 1; i < dim; i = i + 1) {
      int j;
      for (j = 1; j < dim; j = j + 1) {
        int o = i * 128 + j;
        rhs[o] = rhs[o] - 0.3 * rhs[o - 1] - 0.3 * rhs[o - 128];
      }
    }
    /* upper solve */
    for (i = dim - 2; i >= 0; i = i - 1) {
      int j;
      for (j = dim - 2; j >= 0; j = j - 1) {
        int o = i * 128 + j;
        rhs[o] = 0.8 * rhs[o] - 0.15 * rhs[o + 1] - 0.15 * rhs[o + 128];
      }
    }
    check = check + rhs[it * 2000 + 777];
  }
  emit(check);
  return 0;
}
|};
    train = [ ("rhs", Data.floats ~seed:156 ~n:16384 ~lo:(-1.0) ~hi:1.0) ];
    novel = [ ("rhs", Data.floats ~seed:256 ~n:16384 ~lo:(-1.0) ~hi:1.0) ];
  }

let galgel : Bench.t =
  {
    name = "178.galgel";
    suite = Bench.Spec2000;
    fp = true;
    description = "Galerkin spectral method: dense modal interactions";
    source =
      {|
global float modes[4096];
global float coupling[16384];

int main() {
  int nmodes = 96;
  int steps = 5;
  int s;
  float check = 0.0;
  for (s = 0; s < steps; s = s + 1) {
    int i;
    for (i = 0; i < nmodes; i = i + 1) {
      float sum = 0.0;
      int j;
      for (j = 0; j < nmodes; j = j + 1) {
        sum = sum + coupling[i * 96 + j] * modes[j];
      }
      modes[i + 2048] = modes[i] + 0.01 * sum - 0.002 * modes[i] * modes[i] * modes[i];
    }
    for (i = 0; i < nmodes; i = i + 1) {
      modes[i] = modes[i + 2048];
    }
    check = check + modes[s * 13 + 1];
  }
  emit(check);
  return 0;
}
|};
    train = [ ("modes", Data.floats ~seed:157 ~n:4096 ~lo:(-0.5) ~hi:0.5);
              ("coupling", Data.floats ~seed:158 ~n:16384 ~lo:(-0.1) ~hi:0.1) ];
    novel = [ ("modes", Data.floats ~seed:257 ~n:4096 ~lo:(-0.5) ~hi:0.5);
              ("coupling", Data.floats ~seed:258 ~n:16384 ~lo:(-0.1) ~hi:0.1) ];
  }

let equake : Bench.t =
  {
    name = "183.equake";
    suite = Bench.Spec2000;
    fp = true;
    description = "Earthquake simulation: sparse matrix-vector (CSR)";
    source =
      {|
global int rowptr[2049];
global int colidx[14336];
global float vals[14336];
global float x[2048];
global float y[2048];

int main() {
  int nrows = 2048;
  int nnz_per_row = 7;
  int i;
  /* synthesize a banded sparse structure */
  for (i = 0; i <= nrows; i = i + 1) { rowptr[i] = i * nnz_per_row; }
  for (i = 0; i < nrows; i = i + 1) {
    int k;
    for (k = 0; k < nnz_per_row; k = k + 1) {
      int col = i + (k - 3) * 37;
      if (col < 0) { col = col + nrows; }
      if (col >= nrows) { col = col - nrows; }
      colidx[i * nnz_per_row + k] = col;
    }
  }
  int steps = 6;
  int s;
  float check = 0.0;
  for (s = 0; s < steps; s = s + 1) {
    for (i = 0; i < nrows; i = i + 1) {
      float sum = 0.0;
      int k;
      for (k = rowptr[i]; k < rowptr[i + 1]; k = k + 1) {
        sum = sum + vals[k] * x[colidx[k]];
      }
      y[i] = sum;
    }
    for (i = 0; i < nrows; i = i + 1) {
      x[i] = 0.9 * x[i] + 0.1 * y[i];
    }
    check = check + x[s * 300 + 17];
  }
  emit(check);
  return 0;
}
|};
    train = [ ("vals", Data.floats ~seed:159 ~n:14336 ~lo:(-1.0) ~hi:1.0);
              ("x", Data.floats ~seed:160 ~n:2048 ~lo:(-1.0) ~hi:1.0) ];
    novel = [ ("vals", Data.floats ~seed:259 ~n:14336 ~lo:(-1.0) ~hi:1.0);
              ("x", Data.floats ~seed:260 ~n:2048 ~lo:(-1.0) ~hi:1.0) ];
  }

let facerec : Bench.t =
  {
    name = "187.facerec";
    suite = Bench.Spec2000;
    fp = true;
    description = "Face recognition: template correlation over an image";
    source =
      {|
global float image[16384];
global float templ[64];

int main() {
  int dim = 128;
  int tsize = 8;
  int stride = 4;
  float best = 0.0 - 1000000.0;
  int bestpos = 0;
  int y;
  for (y = 0; y < dim - tsize; y = y + stride) {
    int x;
    for (x = 0; x < dim - tsize; x = x + stride) {
      float corr = 0.0;
      float norm = 0.0001;
      int ty;
      for (ty = 0; ty < tsize; ty = ty + 1) {
        int tx;
        for (tx = 0; tx < tsize; tx = tx + 1) {
          float p = image[(y + ty) * 128 + x + tx];
          corr = corr + p * templ[ty * 8 + tx];
          norm = norm + p * p;
        }
      }
      float score = corr * corr / norm;
      if (score > best) {
        best = score;
        bestpos = y * 128 + x;
      }
    }
  }
  emit(bestpos);
  emit(best);
  return 0;
}
|};
    train = [ ("image", Data.floats ~seed:161 ~n:16384 ~lo:0.0 ~hi:1.0);
              ("templ", Data.floats ~seed:162 ~n:64 ~lo:0.0 ~hi:1.0) ];
    novel = [ ("image", Data.floats ~seed:261 ~n:16384 ~lo:0.0 ~hi:1.0);
              ("templ", Data.floats ~seed:262 ~n:64 ~lo:0.0 ~hi:1.0) ];
  }

let ammp : Bench.t =
  {
    name = "188.ammp";
    suite = Bench.Spec2000;
    fp = true;
    description = "Molecular mechanics with a neighbour list (indirect)";
    source =
      {|
global float coord[3072];
global int nbr[8192];
global float force[3072];

int main() {
  int natoms = 1024;
  int nnbr = 8;
  int steps = 3;
  int s;
  float check = 0.0;
  for (s = 0; s < steps; s = s + 1) {
    int i;
    for (i = 0; i < natoms * 3; i = i + 1) { force[i] = 0.0; }
    for (i = 0; i < natoms; i = i + 1) {
      int k;
      for (k = 0; k < nnbr; k = k + 1) {
        int j = nbr[i * 8 + k] % 1024;
        float dx = coord[i * 3] - coord[j * 3];
        float dy = coord[i * 3 + 1] - coord[j * 3 + 1];
        float dz = coord[i * 3 + 2] - coord[j * 3 + 2];
        float r2 = dx * dx + dy * dy + dz * dz + 0.01;
        float f = (1.0 - r2) / (r2 * r2 + 0.1);
        force[i * 3]     = force[i * 3] + f * dx;
        force[i * 3 + 1] = force[i * 3 + 1] + f * dy;
        force[i * 3 + 2] = force[i * 3 + 2] + f * dz;
      }
    }
    for (i = 0; i < natoms * 3; i = i + 1) {
      coord[i] = coord[i] + 0.001 * force[i];
    }
    check = check + coord[s * 900 + 33];
  }
  emit(check);
  return 0;
}
|};
    train = [ ("coord", Data.floats ~seed:163 ~n:3072 ~lo:0.0 ~hi:5.0);
              ("nbr", Data.ints ~seed:164 ~n:8192 ~bound:1024) ];
    novel = [ ("coord", Data.floats ~seed:263 ~n:3072 ~lo:0.0 ~hi:5.0);
              ("nbr", Data.ints ~seed:264 ~n:8192 ~bound:1024) ];
  }

let lucas : Bench.t =
  {
    name = "189.lucas";
    suite = Bench.Spec2000;
    fp = true;
    description = "Lucas-Lehmer style: FFT butterfly passes with rounding";
    source =
      {|
global float re[8192];
global float im[8192];

int main() {
  int n = 8192;
  int passes = 5;
  int p;
  float check = 0.0;
  for (p = 0; p < passes; p = p + 1) {
    int half = n >> (p + 1);
    if (half < 1) { half = 1; }
    int i;
    for (i = 0; i < n - half; i = i + 1) {
      float ar = re[i];
      float ai = im[i];
      float br = re[i + half];
      float bi = im[i + half];
      re[i] = ar + br;
      im[i] = ai + bi;
      float wr = cos(0.0007 * float(i));
      float wi = sin(0.0007 * float(i));
      float dr = ar - br;
      float di = ai - bi;
      re[i + half] = dr * wr - di * wi;
      im[i + half] = dr * wi + di * wr;
    }
    check = check + re[p * 1000 + 11];
  }
  emit(check);
  return 0;
}
|};
    train = [ ("re", Data.floats ~seed:165 ~n:8192 ~lo:(-1.0) ~hi:1.0);
              ("im", Data.floats ~seed:166 ~n:8192 ~lo:(-1.0) ~hi:1.0) ];
    novel = [ ("re", Data.floats ~seed:265 ~n:8192 ~lo:(-1.0) ~hi:1.0);
              ("im", Data.floats ~seed:266 ~n:8192 ~lo:(-1.0) ~hi:1.0) ];
  }

let sixtrack : Bench.t =
  {
    name = "200.sixtrack";
    suite = Bench.Spec2000;
    fp = true;
    description = "Accelerator tracking: 6D particle state through elements";
    source =
      {|
global float part[6144];
global float elements[512];

int main() {
  int nparticles = 1024;
  int nelems = 64;
  int turns = 2;
  int t;
  int alive = 0;
  float check = 0.0;
  for (t = 0; t < turns; t = t + 1) {
    int i;
    alive = 0;
    for (i = 0; i < nparticles; i = i + 1) {
      int o = i * 6;
      float x = part[o];
      float xp = part[o + 1];
      float y = part[o + 2];
      float yp = part[o + 3];
      float z = part[o + 4];
      float dp = part[o + 5];
      int e;
      for (e = 0; e < nelems; e = e + 1) {
        float k = elements[e * 8 % 512];
        /* alternate drift and quadrupole kicks */
        if (e % 2 == 0) {
          x = x + 0.1 * xp;
          y = y + 0.1 * yp;
          z = z + 0.01 * dp;
        } else {
          xp = xp - k * x;
          yp = yp + k * y;
        }
      }
      float amp = x * x + y * y;
      if (amp < 100.0) {
        alive = alive + 1;
        part[o] = x;  part[o + 1] = xp;
        part[o + 2] = y;  part[o + 3] = yp;
        part[o + 4] = z;  part[o + 5] = dp;
      }
      check = check + z * 0.001;
    }
  }
  emit(alive);
  emit(check);
  return 0;
}
|};
    train = [ ("part", Data.floats ~seed:167 ~n:6144 ~lo:(-1.0) ~hi:1.0);
              ("elements", Data.floats ~seed:168 ~n:512 ~lo:0.0 ~hi:0.3) ];
    novel = [ ("part", Data.floats ~seed:267 ~n:6144 ~lo:(-1.0) ~hi:1.0);
              ("elements", Data.floats ~seed:268 ~n:512 ~lo:0.0 ~hi:0.3) ];
  }

let apsi2000 : Bench.t =
  {
    name = "301.apsi";
    suite = Bench.Spec2000;
    fp = true;
    description = "Mesoscale pollutant model: 3D advection + vertical mixing";
    source =
      {|
global float q[24576];
global float wfield[24576];

int main() {
  /* 32 x 32 x 24 grid */
  int nx = 32;
  int ny = 32;
  int nz = 24;
  int steps = 3;
  int s;
  float check = 0.0;
  for (s = 0; s < steps; s = s + 1) {
    int z;
    for (z = 1; z < nz - 1; z = z + 1) {
      int y;
      for (y = 1; y < ny - 1; y = y + 1) {
        int x;
        for (x = 1; x < nx - 1; x = x + 1) {
          int o = (z * 32 + y) * 32 + x;
          float w = wfield[o];
          float vert = q[o + 1024] - 2.0 * q[o] + q[o - 1024];
          float horiz = 0.0;
          if (w > 0.0) { horiz = w * (q[o] - q[o - 1]); }
          else         { horiz = w * (q[o + 1] - q[o]); }
          q[o] = q[o] - 0.08 * horiz + 0.04 * vert;
        }
      }
    }
    check = check + q[s * 4000 + 1100];
  }
  emit(check);
  return 0;
}
|};
    train = [ ("q", Data.floats ~seed:169 ~n:24576 ~lo:0.0 ~hi:1.0);
              ("wfield", Data.floats ~seed:170 ~n:24576 ~lo:(-1.0) ~hi:1.0) ];
    novel = [ ("q", Data.floats ~seed:269 ~n:24576 ~lo:0.0 ~hi:1.0);
              ("wfield", Data.floats ~seed:270 ~n:24576 ~lo:(-1.0) ~hi:1.0) ];
  }

let fma3d : Bench.t =
  {
    name = "191.fma3d";
    suite = Bench.Spec2000;
    fp = true;
    description = "Explicit FEM: element stress + indirect nodal scatter";
    source =
      {|
global float nodes[6144];
global int elems[8192];
global float disp[6144];

int main() {
  int nelems = 2048;
  int steps = 3;
  int s;
  float check = 0.0;
  for (s = 0; s < steps; s = s + 1) {
    int e;
    for (e = 0; e < nelems; e = e + 1) {
      int n0 = elems[e * 4] % 2048;
      int n1 = elems[e * 4 + 1] % 2048;
      int n2 = elems[e * 4 + 2] % 2048;
      int n3 = elems[e * 4 + 3] % 2048;
      float ux = nodes[n1 * 3] - nodes[n0 * 3];
      float uy = nodes[n2 * 3 + 1] - nodes[n0 * 3 + 1];
      float uz = nodes[n3 * 3 + 2] - nodes[n0 * 3 + 2];
      float strain = ux + uy + uz;
      float stress = 2.0 * strain + 0.5 * strain * strain;
      disp[n0 * 3]     = disp[n0 * 3] - 0.001 * stress * ux;
      disp[n1 * 3]     = disp[n1 * 3] + 0.001 * stress * ux;
      disp[n2 * 3 + 1] = disp[n2 * 3 + 1] + 0.001 * stress * uy;
      disp[n3 * 3 + 2] = disp[n3 * 3 + 2] + 0.001 * stress * uz;
    }
    int i;
    for (i = 0; i < 6144; i = i + 1) {
      nodes[i] = nodes[i] + disp[i];
      disp[i] = disp[i] * 0.9;
    }
    check = check + nodes[s * 2000 + 99];
  }
  emit(check);
  return 0;
}
|};
    train = [ ("nodes", Data.floats ~seed:171 ~n:6144 ~lo:0.0 ~hi:1.0);
              ("elems", Data.ints ~seed:172 ~n:8192 ~bound:2048) ];
    novel = [ ("nodes", Data.floats ~seed:271 ~n:6144 ~lo:0.0 ~hi:1.0);
              ("elems", Data.ints ~seed:272 ~n:8192 ~bound:2048) ];
  }

let all : Bench.t list =
  [
    wupwise; swim2000; mgrid2000; applu; galgel; equake; facerec; ammp; lucas;
    sixtrack; apsi2000; fma3d;
  ]
