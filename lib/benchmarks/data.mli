(** Deterministic dataset synthesis: seeded xorshift generators for the
    benchmark suite's train/novel inputs, so the repository is fully
    self-contained and runs reproduce exactly. *)

type rng

val rng : int -> rng
val next : rng -> int64
val int : rng -> int -> int
val float01 : rng -> float

val ints : seed:int -> n:int -> bound:int -> float array
(** Uniform integers in [0, bound). *)

val floats : seed:int -> n:int -> lo:float -> hi:float -> float array

val runs : seed:int -> n:int -> bound:int -> max_run:int -> float array
(** Runs of repeated values (RLE-friendly, biased branches). *)

val skewed : seed:int -> n:int -> bound:int -> float array
(** Zipf-ish skew: small values dominate (entropy-coder-friendly). *)

val ramp : seed:int -> n:int -> step:int -> float array
(** Sorted ramp with noise. *)

val signal : seed:int -> n:int -> float array
(** Sinusoid with harmonics and noise, for DSP workloads. *)
