(* Mediabench-style codec benchmarks: RLE, entropy coding, ADPCM/speech.
   Each program mirrors the computational character of its namesake in
   Table 5 of the paper: data-dependent branches in tight loops, the shape
   hyperblock formation feeds on. *)

let n_rle = 3072

let codrle4 : Bench.t =
  {
    name = "codrle4";
    suite = Bench.Misc;
    fp = false;
    description = "RLE type-4 encoder over run-structured bytes";
    source =
      {|
global int input[3072];
global int output[6144];

int main() {
  int n = 3072;
  int out = 0;
  int i = 0;
  while (i < n) {
    int v = input[i];
    int run = 1;
    while (i + run < n && run < 66) {
      if (input[i + run] == v) { run = run + 1; }
      else { break; }
    }
    if (run >= 3) {
      output[out] = 257;
      output[out + 1] = run;
      output[out + 2] = v;
      out = out + 3;
    } else {
      int k;
      for (k = 0; k < run; k = k + 1) {
        if (v == 257) {
          output[out] = 257;
          output[out + 1] = 0;
          out = out + 2;
        } else {
          output[out] = v;
          out = out + 1;
        }
      }
    }
    i = i + run;
  }
  int s = 0;
  int j;
  for (j = 0; j < out; j = j + 1) {
    s = (s * 31 + output[j]) % 1000003;
  }
  emit(out);
  emit(s);
  return 0;
}
|};
    train = [ ("input", Data.runs ~seed:11 ~n:n_rle ~bound:256 ~max_run:9) ];
    novel = [ ("input", Data.runs ~seed:77 ~n:n_rle ~bound:256 ~max_run:14) ];
  }

let decodrle4 : Bench.t =
  {
    name = "decodrle4";
    suite = Bench.Misc;
    fp = false;
    description = "RLE type-4 decoder (encode then decode, verify)";
    source =
      {|
global int input[2048];
global int coded[4096];
global int decoded[2048];

int main() {
  int n = 2048;
  int out = 0;
  int i = 0;
  /* encode */
  while (i < n) {
    int v = input[i];
    int run = 1;
    while (i + run < n && run < 60) {
      if (input[i + run] == v) { run = run + 1; }
      else { break; }
    }
    if (run >= 3) {
      coded[out] = 300 + run;
      coded[out + 1] = v;
      out = out + 2;
    } else {
      int k;
      for (k = 0; k < run; k = k + 1) {
        coded[out] = v;
        out = out + 1;
      }
    }
    i = i + run;
  }
  /* decode */
  int p = 0;
  int d = 0;
  while (p < out) {
    int c = coded[p];
    if (c >= 300) {
      int run = c - 300;
      int v = coded[p + 1];
      int k;
      for (k = 0; k < run; k = k + 1) {
        decoded[d] = v;
        d = d + 1;
      }
      p = p + 2;
    } else {
      decoded[d] = c;
      d = d + 1;
      p = p + 1;
    }
  }
  /* verify */
  int bad = 0;
  int j;
  for (j = 0; j < n; j = j + 1) {
    if (decoded[j] != input[j]) { bad = bad + 1; }
  }
  emit(bad);
  emit(d);
  return 0;
}
|};
    train = [ ("input", Data.runs ~seed:12 ~n:2048 ~bound:250 ~max_run:8) ];
    novel = [ ("input", Data.runs ~seed:78 ~n:2048 ~bound:250 ~max_run:5) ];
  }

let huff_enc : Bench.t =
  {
    name = "huff_enc";
    suite = Bench.Misc;
    fp = false;
    description = "Huffman-style encoder: histogram, code lengths, bit pack";
    source =
      {|
global int input[4096];
global int freq[64];
global int lens[64];
global int codes[64];

int main() {
  int n = 4096;
  int i;
  for (i = 0; i < 64; i = i + 1) { freq[i] = 0; }
  for (i = 0; i < n; i = i + 1) {
    int s = input[i];
    freq[s] = freq[s] + 1;
  }
  /* code length ~ -log2(p), approximated by frequency buckets */
  for (i = 0; i < 64; i = i + 1) {
    int f = freq[i];
    int len = 12;
    if (f > 2)    { len = 11; }
    if (f > 4)    { len = 10; }
    if (f > 8)    { len = 9; }
    if (f > 16)   { len = 8; }
    if (f > 32)   { len = 7; }
    if (f > 64)   { len = 6; }
    if (f > 128)  { len = 5; }
    if (f > 256)  { len = 4; }
    if (f > 512)  { len = 3; }
    lens[i] = len;
  }
  /* canonical-ish code assignment */
  int next = 0;
  int l;
  for (l = 3; l <= 12; l = l + 1) {
    for (i = 0; i < 64; i = i + 1) {
      if (lens[i] == l) {
        codes[i] = next;
        next = next + 1;
      }
    }
    next = next * 2;
  }
  /* bit packing */
  int acc = 0;
  int nbits = 0;
  int packed = 0;
  int words = 0;
  for (i = 0; i < n; i = i + 1) {
    int s = input[i];
    acc = (acc << lens[s]) | (codes[s] & ((1 << lens[s]) - 1));
    nbits = nbits + lens[s];
    if (nbits >= 16) {
      packed = (packed * 31 + (acc & 65535)) % 1000003;
      words = words + 1;
      nbits = nbits - 16;
    }
  }
  emit(words);
  emit(packed);
  return 0;
}
|};
    train = [ ("input", Data.skewed ~seed:13 ~n:4096 ~bound:64) ];
    novel = [ ("input", Data.skewed ~seed:79 ~n:4096 ~bound:64) ];
  }

let huff_dec : Bench.t =
  {
    name = "huff_dec";
    suite = Bench.Misc;
    fp = false;
    description = "Huffman-style decoder with linear code search";
    source =
      {|
global int input[2048];
global int lens[16];
global int bits[20480];

int main() {
  int n = 2048;
  int i;
  /* fixed small code table: symbol s has length lens[s] and code s */
  for (i = 0; i < 16; i = i + 1) {
    int len = 3;
    if (i >= 2)  { len = 4; }
    if (i >= 6)  { len = 5; }
    if (i >= 12) { len = 6; }
    lens[i] = len;
  }
  /* encode into a bit array */
  int nb = 0;
  for (i = 0; i < n; i = i + 1) {
    int s = input[i];
    int l = lens[s];
    int k;
    for (k = l - 1; k >= 0; k = k - 1) {
      bits[nb] = (s >> k) & 1;
      nb = nb + 1;
    }
  }
  /* decode: accumulate bits, linear-search the table */
  int p = 0;
  int decoded = 0;
  int check = 0;
  while (p < nb) {
    int acc = 0;
    int l = 0;
    int found = 0 - 1;
    while (found < 0 && l < 7 && p < nb) {
      acc = (acc << 1) | bits[p];
      p = p + 1;
      l = l + 1;
      int s;
      for (s = 0; s < 16; s = s + 1) {
        if (lens[s] == l && s == acc) { found = s; }
      }
    }
    if (found >= 0) {
      decoded = decoded + 1;
      check = (check * 17 + found) % 1000003;
    }
  }
  emit(decoded);
  emit(check);
  return 0;
}
|};
    train = [ ("input", Data.skewed ~seed:14 ~n:2048 ~bound:16) ];
    novel = [ ("input", Data.skewed ~seed:80 ~n:2048 ~bound:16) ];
  }

(* IMA-style ADPCM tables are built in-program to keep sources
   self-contained. *)
let rawcaudio : Bench.t =
  {
    name = "rawcaudio";
    suite = Bench.Mediabench;
    fp = false;
    description = "IMA ADPCM audio encoder (adaptive step, clamping)";
    source =
      {|
global int pcm[4096];
global int step_tab[89];
global int idx_adj[16];

int main() {
  int n = 4096;
  int i;
  /* step table: geometric growth, integer arithmetic */
  int s = 7;
  for (i = 0; i < 89; i = i + 1) {
    step_tab[i] = s;
    s = s + (s >> 3) + 1;
  }
  for (i = 0; i < 16; i = i + 1) {
    if (i < 4)  { idx_adj[i] = 0 - 1; }
    else        { idx_adj[i] = (i - 3) * 2; }
    if (i >= 8) { idx_adj[i] = idx_adj[i - 8]; }
  }
  int pred = 0;
  int index = 0;
  int check = 0;
  for (i = 0; i < n; i = i + 1) {
    int sample = pcm[i] - 2048;
    int diff = sample - pred;
    int sign = 0;
    if (diff < 0) { sign = 8; diff = 0 - diff; }
    int step = step_tab[index];
    int code = 0;
    if (diff >= step)        { code = 4; diff = diff - step; }
    if (diff >= (step >> 1)) { code = code | 2; diff = diff - (step >> 1); }
    if (diff >= (step >> 2)) { code = code | 1; }
    code = code | sign;
    /* reconstruct */
    int delta = step >> 3;
    if (code & 4) { delta = delta + step; }
    if (code & 2) { delta = delta + (step >> 1); }
    if (code & 1) { delta = delta + (step >> 2); }
    if (sign)     { pred = pred - delta; }
    else          { pred = pred + delta; }
    if (pred > 2047)        { pred = 2047; }
    else { if (pred < 0 - 2048) { pred = 0 - 2048; } }
    index = index + idx_adj[code & 15];
    if (index < 0)  { index = 0; }
    if (index > 88) { index = 88; }
    check = (check * 13 + code) % 1000003;
  }
  emit(check);
  emit(pred);
  return 0;
}
|};
    train = [ ("pcm", Data.ints ~seed:15 ~n:4096 ~bound:4096) ];
    novel = [ ("pcm", Data.ints ~seed:81 ~n:4096 ~bound:4096) ];
  }

let rawdaudio : Bench.t =
  {
    name = "rawdaudio";
    suite = Bench.Mediabench;
    fp = false;
    description = "IMA ADPCM audio decoder";
    source =
      {|
global int codes[8192];
global int step_tab[89];
global int idx_adj[16];

int main() {
  int n = 8192;
  int i;
  int s = 7;
  for (i = 0; i < 89; i = i + 1) {
    step_tab[i] = s;
    s = s + (s >> 3) + 1;
  }
  for (i = 0; i < 16; i = i + 1) {
    if (i < 4)  { idx_adj[i] = 0 - 1; }
    else        { idx_adj[i] = (i - 3) * 2; }
    if (i >= 8) { idx_adj[i] = idx_adj[i - 8]; }
  }
  int pred = 0;
  int index = 0;
  int check = 0;
  for (i = 0; i < n; i = i + 1) {
    int code = codes[i] & 15;
    int step = step_tab[index];
    int delta = step >> 3;
    if (code & 4) { delta = delta + step; }
    if (code & 2) { delta = delta + (step >> 1); }
    if (code & 1) { delta = delta + (step >> 2); }
    if (code & 8) { pred = pred - delta; }
    else          { pred = pred + delta; }
    if (pred > 2047)        { pred = 2047; }
    else { if (pred < 0 - 2048) { pred = 0 - 2048; } }
    index = index + idx_adj[code];
    if (index < 0)  { index = 0; }
    if (index > 88) { index = 88; }
    check = (check * 13 + (pred & 255)) % 1000003;
  }
  emit(check);
  emit(index);
  return 0;
}
|};
    train = [ ("codes", Data.ints ~seed:16 ~n:8192 ~bound:16) ];
    novel = [ ("codes", Data.ints ~seed:82 ~n:8192 ~bound:16) ];
  }

let g721encode : Bench.t =
  {
    name = "g721encode";
    suite = Bench.Mediabench;
    fp = false;
    description = "G.721-style ADPCM with a pole-zero predictor";
    source =
      {|
global int pcm[3072];
global int b[6];
global int dq[6];

int main() {
  int n = 3072;
  int i;
  for (i = 0; i < 6; i = i + 1) { b[i] = 0; dq[i] = 0; }
  int a1 = 0;
  int a2 = 0;
  int sr1 = 0;
  int sr2 = 0;
  int step = 32;
  int check = 0;
  for (i = 0; i < n; i = i + 1) {
    /* zero predictor: FIR over past quantized differences */
    int sez = 0;
    int k;
    for (k = 0; k < 6; k = k + 1) {
      sez = sez + (b[k] * dq[k]) / 16384;
    }
    /* pole predictor */
    int se = sez + (a1 * sr1) / 16384 + (a2 * sr2) / 16384;
    int d = pcm[i] - 2048 - se;
    /* 4-level adaptive quantizer */
    int sign = 0;
    if (d < 0) { sign = 1; d = 0 - d; }
    int code = 0;
    if (d >= step)     { code = 1; }
    if (d >= step * 2) { code = 2; }
    if (d >= step * 4) { code = 3; }
    int dqv = (step >> 1) + step * code;
    if (sign) { dqv = 0 - dqv; }
    /* adapt step */
    if (code >= 2) { step = step + (step >> 3); }
    else           { step = step - (step >> 4); }
    if (step < 8)    { step = 8; }
    if (step > 2048) { step = 2048; }
    /* update predictor state with leakage and sign-sign LMS */
    for (k = 5; k >= 1; k = k - 1) { dq[k] = dq[k - 1]; b[k] = b[k] - (b[k] >> 6); }
    dq[0] = dqv;
    b[0] = b[0] - (b[0] >> 6);
    for (k = 0; k < 6; k = k + 1) {
      int up = 32;
      int prod = dqv * dq[k];
      if (prod < 0) { up = 0 - 32; }
      b[k] = b[k] + up;
    }
    int sr0 = se + dqv;
    int p1 = sr0 * sr1;
    a1 = a1 - (a1 >> 6);
    if (p1 > 0) { a1 = a1 + 48; }
    if (p1 < 0) { a1 = a1 - 48; }
    int p2 = sr0 * sr2;
    a2 = a2 - (a2 >> 7);
    if (p2 > 0) { a2 = a2 + 24; }
    if (p2 < 0) { a2 = a2 - 24; }
    sr2 = sr1;
    sr1 = sr0;
    check = (check * 11 + code + sign * 4) % 1000003;
  }
  emit(check);
  emit(step);
  return 0;
}
|};
    train = [ ("pcm", Data.ints ~seed:17 ~n:3072 ~bound:4096) ];
    novel = [ ("pcm", Data.ints ~seed:83 ~n:3072 ~bound:4096) ];
  }

let g721decode : Bench.t =
  {
    name = "g721decode";
    suite = Bench.Mediabench;
    fp = false;
    description = "G.721-style ADPCM decoder";
    source =
      {|
global int codes[4096];

int main() {
  int n = 4096;
  int i;
  int step = 32;
  int pred = 0;
  int check = 0;
  for (i = 0; i < n; i = i + 1) {
    int c = codes[i] & 7;
    int sign = (c >> 2) & 1;
    int mag = c & 3;
    int dqv = (step >> 1) + step * mag;
    if (sign) { dqv = 0 - dqv; }
    pred = pred + dqv - (pred >> 7);
    if (mag >= 2) { step = step + (step >> 3); }
    else          { step = step - (step >> 4); }
    if (step < 8)    { step = 8; }
    if (step > 2048) { step = 2048; }
    if (pred > 8191)        { pred = 8191; }
    else { if (pred < 0 - 8192) { pred = 0 - 8192; } }
    check = (check * 7 + (pred & 1023)) % 1000003;
  }
  emit(check);
  emit(pred);
  return 0;
}
|};
    train = [ ("codes", Data.ints ~seed:18 ~n:4096 ~bound:8) ];
    novel = [ ("codes", Data.skewed ~seed:84 ~n:4096 ~bound:8) ];
  }

let toast : Bench.t =
  {
    name = "toast";
    suite = Bench.Mediabench;
    fp = false;
    description = "GSM-style speech transcoder: autocorrelation + LPC lattice";
    source =
      {|
global int frame[2560];
global int ac[9];
global int refl[8];

int main() {
  int nframes = 16;
  int flen = 160;
  int f;
  int check = 0;
  for (f = 0; f < nframes; f = f + 1) {
    int base = f * flen;
    /* preemphasis + autocorrelation */
    int k;
    for (k = 0; k < 9; k = k + 1) {
      int sum = 0;
      int t;
      for (t = k; t < flen; t = t + 1) {
        int a = frame[base + t] - 128;
        int bb = frame[base + t - k] - 128;
        sum = sum + (a * bb) / 64;
      }
      ac[k] = sum;
    }
    /* Schur-style reflection coefficients (integer, branchy) */
    int err = ac[0];
    if (err < 1) { err = 1; }
    for (k = 1; k < 9; k = k + 1) {
      int r = (ac[k] * 256) / err;
      if (r > 255)       { r = 255; }
      if (r < 0 - 255)   { r = 0 - 255; }
      refl[k - 1] = r;
      err = err - (r * r * err) / 65536;
      if (err < 1) { err = 1; }
      check = (check * 5 + (r & 511)) % 1000003;
    }
  }
  emit(check);
  return 0;
}
|};
    train = [ ("frame", Data.ints ~seed:19 ~n:2560 ~bound:256) ];
    novel = [ ("frame", Data.ints ~seed:85 ~n:2560 ~bound:256) ];
  }

let all : Bench.t list =
  [
    codrle4; decodrle4; huff_enc; huff_dec; rawcaudio; rawdaudio; g721encode;
    g721decode; toast;
  ]
