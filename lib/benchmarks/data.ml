(* Deterministic dataset synthesis.

   Each benchmark runs on a *train* dataset (used for profiling and for
   fitness evaluation during evolution) and a *novel* dataset (used only
   for the light-colored bars of the paper's figures).  Datasets are
   arrays of numbers produced by a seeded xorshift generator, so the repo
   is self-contained and runs are reproducible. *)

type rng = { mutable state : int64 }

let rng seed =
  { state = Int64.of_int (if seed = 0 then 0x9E3779B9 else seed) }

let next (r : rng) : int64 =
  (* xorshift64* *)
  let x = r.state in
  let x = Int64.logxor x (Int64.shift_left x 13) in
  let x = Int64.logxor x (Int64.shift_right_logical x 7) in
  let x = Int64.logxor x (Int64.shift_left x 17) in
  r.state <- x;
  Int64.mul x 0x2545F4914F6CDD1DL

(* Uniform int in [0, bound). *)
let int r bound =
  if bound <= 0 then 0
  else
    Int64.to_int (Int64.rem (Int64.shift_right_logical (next r) 2)
                    (Int64.of_int bound))

(* Uniform float in [0, 1). *)
let float01 r =
  float_of_int (int r 1_000_000) /. 1_000_000.0

(* Array of uniform ints in [0, bound), stored as floats. *)
let ints ~seed ~n ~bound : float array =
  let r = rng seed in
  Array.init n (fun _ -> float_of_int (int r bound))

(* Array of uniform floats in [lo, hi). *)
let floats ~seed ~n ~lo ~hi : float array =
  let r = rng seed in
  Array.init n (fun _ -> lo +. ((hi -. lo) *. float01 r))

(* Array with runs of repeated values (compresses well; exercises RLE and
   entropy-coder branch behaviour). *)
let runs ~seed ~n ~bound ~max_run : float array =
  let r = rng seed in
  let out = Array.make n 0.0 in
  let i = ref 0 in
  while !i < n do
    let v = float_of_int (int r bound) in
    let len = 1 + int r max_run in
    let stop = min n (!i + len) in
    while !i < stop do
      out.(!i) <- v;
      incr i
    done
  done;
  out

(* Skewed integers (Zipf-ish): small values are much more common, giving
   entropy coders and branch predictors realistic bias. *)
let skewed ~seed ~n ~bound : float array =
  let r = rng seed in
  Array.init n (fun _ ->
      let a = int r bound and b = int r bound in
      float_of_int (min a b))

(* Sorted ramp with noise, for search/merge workloads. *)
let ramp ~seed ~n ~step : float array =
  let r = rng seed in
  let acc = ref 0 in
  Array.init n (fun _ ->
      acc := !acc + int r step;
      float_of_int !acc)

(* Sinusoid with harmonics, for signal-processing workloads. *)
let signal ~seed ~n : float array =
  let r = rng seed in
  let f1 = 0.02 +. (0.05 *. float01 r) in
  let f2 = 0.11 +. (0.2 *. float01 r) in
  let ph = 6.28 *. float01 r in
  Array.init n (fun i ->
      let t = float_of_int i in
      sin ((f1 *. t) +. ph) +. (0.35 *. sin (f2 *. t)) +. (0.1 *. float01 r))
