(* Additional benchmarks with several functions per program: small helpers
   (inlined by the classic pipeline) and larger ones that survive as real
   calls — the "unsafe jsr" hazards the hyperblock heuristic reasons
   about.  These are not part of the paper's figure suites; they widen the
   suite for the CLI, the tests and the scheduling extension. *)

let epic : Bench.t =
  {
    name = "epic";
    suite = Bench.Mediabench;
    fp = false;
    description = "EPIC-style image coder: pyramid + quantize + RLE bits";
    source =
      {|
global int image[4096];
global int coded[8192];

int quantize(int v, int level) {
  int step = 1 << level;
  int q = v / step;
  if (q > 127)       { q = 127; }
  if (q < 0 - 127)   { q = 0 - 127; }
  return q;
}

int emit_run(int pos, int len, int val) {
  coded[pos] = len;
  coded[pos + 1] = val;
  return pos + 2;
}

int main() {
  int n = 4096;
  int i;
  /* forward Haar-ish passes over rows of 64 */
  int level;
  for (level = 0; level < 3; level = level + 1) {
    int half = 32 >> level;
    int row;
    for (row = 0; row < 64; row = row + 1) {
      int k;
      for (k = 0; k < half; k = k + 1) {
        int a = image[row * 64 + 2 * k];
        int b = image[row * 64 + 2 * k + 1];
        image[row * 64 + k] = (a + b) / 2;
        image[row * 64 + half + k] = a - b;
      }
    }
  }
  /* quantize + run-length encode zero runs */
  int out = 0;
  int run = 0;
  for (i = 0; i < n; i = i + 1) {
    int q = quantize(image[i], 2 + i / 2048);
    if (q == 0) {
      run = run + 1;
    } else {
      if (run > 0) { out = emit_run(out, run, 0); run = 0; }
      out = emit_run(out, 1, q);
    }
  }
  if (run > 0) { out = emit_run(out, run, 0); }
  int check = 0;
  for (i = 0; i < out; i = i + 1) {
    check = (check * 31 + coded[i]) % 1000003;
  }
  emit(out);
  emit(check);
  return 0;
}
|};
    train = [ ("image", Data.skewed ~seed:180 ~n:4096 ~bound:256) ];
    novel = [ ("image", Data.runs ~seed:280 ~n:4096 ~bound:256 ~max_run:10) ];
  }

let pegwit : Bench.t =
  {
    name = "pegwit";
    suite = Bench.Mediabench;
    fp = false;
    description = "Public-key-ish kernel: ARX mixing + polynomial MAC";
    source =
      {|
global int message[4096];
global int state[16];

int rotl(int x, int r) {
  int m = 16777215;                      /* 24-bit lanes */
  x = x & m;
  return ((x << r) | (x >> (24 - r))) & m;
}

int mix(int a, int b) {
  a = (a + b) & 16777215;
  b = rotl(b, 5) ^ a;
  a = rotl(a, 11) + (b & 1023);
  return (a ^ (b >> 3)) & 16777215;
}

int main() {
  int i;
  for (i = 0; i < 16; i = i + 1) { state[i] = i * 2654435 % 16777216; }
  int mac = 1;
  for (i = 0; i < 4096; i = i + 1) {
    int w = message[i];
    int s = state[i & 15];
    int mixed = mix(s, w);
    state[i & 15] = mixed;
    /* polynomial MAC mod a prime */
    mac = (mac * 31 + (mixed & 65535)) % 999983;
    if ((mixed & 7) == 0) {
      /* occasional extra round: data-dependent branch */
      state[(i + 1) & 15] = mix(mixed, mac);
    }
  }
  int check = 0;
  for (i = 0; i < 16; i = i + 1) {
    check = (check * 17 + state[i]) % 1000003;
  }
  emit(mac);
  emit(check);
  return 0;
}
|};
    train = [ ("message", Data.ints ~seed:181 ~n:4096 ~bound:16777216) ];
    novel = [ ("message", Data.ints ~seed:281 ~n:4096 ~bound:16777216) ];
  }

let espresso : Bench.t =
  {
    name = "008.espresso";
    suite = Bench.Spec92;
    fp = false;
    description = "Two-level logic minimization: cube containment + merge";
    source =
      {|
global int cubes[4096];
global int alive[512];

/* Each cube is 8 ints of 2-bit literals: 0 empty, 1 pos, 2 neg, 3 both. */
int contains(int a, int b) {
  /* does cube a contain cube b? every literal of a must cover b's */
  int k;
  for (k = 0; k < 8; k = k + 1) {
    int la = cubes[a * 8 + k];
    int lb = cubes[b * 8 + k];
    if ((la & lb) != lb) { return 0; }
  }
  return 1;
}

int distance(int a, int b) {
  int d = 0;
  int k;
  for (k = 0; k < 8; k = k + 1) {
    int la = cubes[a * 8 + k];
    int lb = cubes[b * 8 + k];
    if ((la & lb) == 0 && (la | lb) != 0) { d = d + 1; }
  }
  return d;
}

int main() {
  int ncubes = 512;
  int i;
  for (i = 0; i < ncubes; i = i + 1) { alive[i] = 1; }
  /* single-cube containment removal */
  int removed = 0;
  for (i = 0; i < ncubes; i = i + 1) {
    if (alive[i]) {
      int j;
      for (j = 0; j < ncubes; j = j + 1) {
        if (j != i && alive[j] && contains(i, j)) {
          alive[j] = 0;
          removed = removed + 1;
        }
      }
    }
  }
  /* merge distance-1 pairs (consensus) */
  int merged = 0;
  for (i = 0; i < ncubes; i = i + 1) {
    if (alive[i]) {
      int j;
      for (j = i + 1; j < ncubes; j = j + 1) {
        if (alive[j] && distance(i, j) == 1) {
          int k;
          for (k = 0; k < 8; k = k + 1) {
            cubes[i * 8 + k] = cubes[i * 8 + k] | cubes[j * 8 + k];
          }
          alive[j] = 0;
          merged = merged + 1;
        }
      }
    }
  }
  int check = 0;
  for (i = 0; i < ncubes * 8; i = i + 1) {
    check = (check * 5 + cubes[i]) % 1000003;
  }
  emit(removed);
  emit(merged);
  emit(check);
  return 0;
}
|};
    train = [ ("cubes", Data.ints ~seed:182 ~n:4096 ~bound:4) ];
    novel = [ ("cubes", Data.skewed ~seed:282 ~n:4096 ~bound:4) ];
  }

let sc : Bench.t =
  {
    name = "072.sc";
    suite = Bench.Spec92;
    fp = true;
    description = "Spreadsheet recalculation: formula DAG evaluation";
    source =
      {|
global int optab[1024];
global int arg1[1024];
global int arg2[1024];
global float cells[1024];

float apply(int op, float a, float b) {
  if (op == 0) { return a + b; }
  if (op == 1) { return a - b; }
  if (op == 2) { return a * b; }
  if (op == 3) {
    if (b == 0.0) { return 0.0; }
    return a / b;
  }
  if (op == 4) { return fmax(a, b); }
  return fmin(a, b);
}

int main() {
  int ncells = 1024;
  int rounds = 12;
  int r;
  float check = 0.0;
  for (r = 0; r < rounds; r = r + 1) {
    int i;
    for (i = 0; i < ncells; i = i + 1) {
      int op = optab[i] % 6;
      /* references point strictly backwards: a DAG, like a spreadsheet */
      int a = arg1[i] % (i + 1);
      int b = arg2[i] % (i + 1);
      cells[i] = apply(op, cells[a], cells[b]) * 0.5 + cells[i] * 0.5;
    }
    check = check + cells[(r * 97 + 31) % 1024];
  }
  emit(check);
  return 0;
}
|};
    train =
      [
        ("optab", Data.ints ~seed:183 ~n:1024 ~bound:6);
        ("arg1", Data.ints ~seed:184 ~n:1024 ~bound:1024);
        ("arg2", Data.ints ~seed:185 ~n:1024 ~bound:1024);
        ("cells", Data.floats ~seed:186 ~n:1024 ~lo:(-1.0) ~hi:1.0);
      ];
    novel =
      [
        ("optab", Data.skewed ~seed:283 ~n:1024 ~bound:6);
        ("arg1", Data.ints ~seed:284 ~n:1024 ~bound:1024);
        ("arg2", Data.ints ~seed:285 ~n:1024 ~bound:1024);
        ("cells", Data.floats ~seed:286 ~n:1024 ~lo:(-1.0) ~hi:1.0);
      ];
  }

let go : Bench.t =
  {
    name = "099.go";
    suite = Bench.Spec95;
    fp = false;
    description = "Game engine kernel: board scan + liberty counting";
    source =
      {|
global int board[512];
global int moves[1024];

/* 19x19 board padded to 20x25; 0 empty, 1 black, 2 white, 3 edge */
int liberties(int pos) {
  int libs = 0;
  if (board[pos - 1] == 0)  { libs = libs + 1; }
  if (board[pos + 1] == 0)  { libs = libs + 1; }
  if (board[pos - 20] == 0) { libs = libs + 1; }
  if (board[pos + 20] == 0) { libs = libs + 1; }
  return libs;
}

int score_move(int pos, int color) {
  if (board[pos] != 0) { return 0 - 1; }
  int other = 3 - color;
  int score = liberties(pos);
  /* capture bonus: adjacent enemy stones in atari.  MiniC has no
     short-circuit &&, so guard the liberty probe with a nested if (the
     probe itself reads two cells beyond the stone). */
  if (board[pos - 1] == other)  { if (liberties(pos - 1) == 1)  { score = score + 10; } }
  if (board[pos + 1] == other)  { if (liberties(pos + 1) == 1)  { score = score + 10; } }
  if (board[pos - 20] == other) { if (liberties(pos - 20) == 1) { score = score + 10; } }
  if (board[pos + 20] == other) { if (liberties(pos + 20) == 1) { score = score + 10; } }
  /* connection bonus */
  if (board[pos - 1] == color)  { score = score + 2; }
  if (board[pos + 1] == color)  { score = score + 2; }
  return score;
}

int main() {
  int i;
  /* set up edges */
  for (i = 0; i < 512; i = i + 1) {
    int row = i / 20;
    int col = i % 20;
    if (row < 1 || row > 19 || col < 1 || col > 19) { board[i] = 3; }
  }
  int color = 1;
  int placed = 0;
  int check = 0;
  for (i = 0; i < 1024; i = i + 1) {
    int cand = 21 + (moves[i] % 19) * 20 + (moves[i] / 19) % 19;
    int s = score_move(cand, color);
    if (s > 2) {
      board[cand] = color;
      placed = placed + 1;
      color = 3 - color;
    }
    check = (check * 7 + s + 2) % 1000003;
  }
  emit(placed);
  emit(check);
  return 0;
}
|};
    train = [ ("moves", Data.ints ~seed:187 ~n:1024 ~bound:361) ];
    novel = [ ("moves", Data.skewed ~seed:287 ~n:1024 ~bound:361) ];
  }

let untoast : Bench.t =
  {
    name = "untoast";
    suite = Bench.Mediabench;
    fp = false;
    description = "GSM-style decoder: LPC lattice synthesis filter";
    source =
      {|
global int residual[2560];
global int refl[128];
global int hist[9];

int saturate(int v) {
  if (v > 32767)        { return 32767; }
  if (v < 0 - 32768)    { return 0 - 32768; }
  return v;
}

int main() {
  int nframes = 16;
  int flen = 160;
  int f;
  int check = 0;
  for (f = 0; f < nframes; f = f + 1) {
    int base = f * flen;
    int k;
    for (k = 0; k < 9; k = k + 1) { hist[k] = 0; }
    int t;
    for (t = 0; t < flen; t = t + 1) {
      /* lattice synthesis: run residual through 8 reflection stages */
      int acc = residual[base + t] - 128;
      int s;
      for (s = 7; s >= 0; s = s - 1) {
        int r = refl[f * 8 + s] - 128;
        acc = saturate(acc - (r * hist[s]) / 256);
        hist[s + 1] = saturate(hist[s] + (r * acc) / 256);
      }
      hist[0] = acc;
      check = (check * 3 + (acc & 255)) % 1000003;
    }
  }
  emit(check);
  return 0;
}
|};
    train =
      [
        ("residual", Data.ints ~seed:188 ~n:2560 ~bound:256);
        ("refl", Data.ints ~seed:189 ~n:128 ~bound:256);
      ];
    novel =
      [
        ("residual", Data.signal ~seed:288 ~n:2560
                     |> Array.map (fun v -> Float.of_int (128 + int_of_float (v *. 60.0))));
        ("refl", Data.ints ~seed:289 ~n:128 ~bound:256);
      ];
  }

let all : Bench.t list = [ epic; pegwit; espresso; sc; go; untoast ]
