(* The benchmark registry: lookup by name and the suite groupings used by
   the paper's experiments (see DESIGN.md's per-experiment index). *)

let all : Bench.t list =
  Media_codecs.all @ Media_image.all @ Spec_int.all @ Spec_fp.all
  @ Spec_fp2000.all @ Misc_extra.all

let find (name : string) : Bench.t =
  match List.find_opt (fun b -> b.Bench.name = name) all with
  | Some b -> b
  | None -> invalid_arg ("Registry.find: unknown benchmark " ^ name)

let names = List.map (fun b -> b.Bench.name) all

let integer_benchmarks = List.filter (fun b -> not b.Bench.fp) all
let fp_benchmarks = List.filter (fun b -> b.Bench.fp) all

(* --- Experiment suites (mirroring Figures 4-16) ------------------------ *)

(* Hyperblock specialization set (Figure 4). *)
let hyperblock_specialize =
  [
    "codrle4"; "decodrle4"; "g721decode"; "g721encode"; "rawdaudio";
    "rawcaudio"; "toast"; "mpeg2dec"; "124.m88ksim"; "129.compress";
    "huff_enc"; "huff_dec";
  ]

(* Hyperblock general-purpose training set (Figure 6). *)
let hyperblock_train =
  [
    "129.compress"; "g721encode"; "g721decode"; "huff_dec"; "huff_enc";
    "rawcaudio"; "rawdaudio"; "toast"; "mpeg2dec";
  ]

(* Hyperblock cross-validation set (Figure 7). *)
let hyperblock_test =
  [
    "unepic"; "djpeg"; "rasta"; "023.eqntott"; "132.ijpeg"; "052.alvinn";
    "147.vortex"; "085.cc1"; "art"; "130.li"; "osdemo"; "mipmap";
  ]

(* Register allocation sets (Figures 9, 11, 12). *)
let regalloc_specialize =
  [
    "mpeg2dec"; "rawcaudio"; "129.compress"; "huff_enc"; "huff_dec";
    "g721decode";
  ]

let regalloc_train =
  [
    "129.compress"; "g721decode"; "g721encode"; "huff_enc"; "huff_dec";
    "rawcaudio"; "rawdaudio"; "mpeg2dec";
  ]

let regalloc_test =
  [
    "decodrle4"; "codrle4"; "124.m88ksim"; "unepic"; "djpeg"; "023.eqntott";
    "132.ijpeg"; "147.vortex"; "085.cc1"; "130.li";
  ]

(* Prefetching sets (Figures 13, 15, 16). *)
let prefetch_specialize =
  [
    "101.tomcatv"; "102.swim"; "103.su2cor"; "125.turb3d"; "146.wave5";
    "093.nasa7"; "015.doduc"; "034.mdljdp2"; "107.mgrid"; "141.apsi";
  ]

let prefetch_train = prefetch_specialize

let prefetch_test =
  [
    "168.wupwise"; "171.swim"; "172.mgrid"; "173.applu"; "178.galgel";
    "183.equake"; "187.facerec"; "188.ammp"; "189.lucas"; "200.sixtrack";
    "301.apsi"; "191.fma3d";
  ]
