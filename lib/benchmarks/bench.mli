(** The benchmark record type and suite tags. *)

type suite = Mediabench | Spec92 | Spec95 | Spec2000 | Misc

val string_of_suite : suite -> string

type t = {
  name : string;
  suite : suite;
  fp : bool;                               (** floating-point dominated *)
  description : string;
  source : string;                         (** MiniC program text *)
  train : (string * float array) list;     (** global overrides *)
  novel : (string * float array) list;
}

type dataset = Train | Novel

val overrides : t -> dataset -> (string * float array) list
