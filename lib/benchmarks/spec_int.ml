(* SPEC-integer-style benchmarks: interpreters, simulators, compilers,
   databases — irregular control flow and pointer-chasing-like indirect
   array accesses. *)

let cc1 : Bench.t =
  {
    name = "085.cc1";
    suite = Bench.Spec92;
    fp = false;
    description = "Compiler front-end kernel: tokenize + precedence fold";
    source =
      {|
global int src[4096];
global int toks[4096];
global int vals[4096];

int main() {
  int n = 4096;
  int i = 0;
  int ntok = 0;
  /* tokenize a synthetic character stream:
     0-9 digits, 10-35 letters, 36 + 37 - 38 * 39 / 40 ( 41 ) 42 ; */
  while (i < n) {
    int c = src[i];
    if (c < 10) {
      int v = 0;
      while (i < n && src[i] < 10) {
        v = v * 10 + src[i];
        v = v % 100000;
        i = i + 1;
      }
      toks[ntok] = 1;
      vals[ntok] = v;
      ntok = ntok + 1;
    } else {
      if (c < 36) {
        int h = 0;
        while (i < n && src[i] >= 10 && src[i] < 36) {
          h = (h * 37 + src[i]) % 4093;
          i = i + 1;
        }
        toks[ntok] = 2;
        vals[ntok] = h;
        ntok = ntok + 1;
      } else {
        toks[ntok] = c;
        vals[ntok] = 0;
        ntok = ntok + 1;
        i = i + 1;
      }
    }
  }
  /* constant-fold additive/multiplicative runs over the token stream */
  int acc = 0;
  int cur = 0;
  int op = 36;
  int t;
  for (t = 0; t < ntok; t = t + 1) {
    if (toks[t] == 1) {
      int v = vals[t];
      if (op == 36) { cur = cur + v; }
      if (op == 37) { cur = cur - v; }
      if (op == 38) { cur = cur * v % 65521; }
      if (op == 39) {
        if (v != 0) { cur = cur / v; }
      }
    } else {
      if (toks[t] >= 36 && toks[t] <= 39) { op = toks[t]; }
      if (toks[t] == 42) {
        acc = (acc * 31 + cur) % 1000003;
        cur = 0;
        op = 36;
      }
    }
  }
  emit(ntok);
  emit(acc);
  return 0;
}
|};
    train = [ ("src", Data.ints ~seed:33 ~n:4096 ~bound:43) ];
    novel = [ ("src", Data.skewed ~seed:99 ~n:4096 ~bound:43) ];
  }

let compress : Bench.t =
  {
    name = "129.compress";
    suite = Bench.Spec95;
    fp = false;
    description = "LZW-style compressor: hashed dictionary of digrams";
    source =
      {|
global int input[4096];
global int hash_key[8192];
global int hash_val[8192];

int main() {
  int n = 4096;
  int i;
  for (i = 0; i < 8192; i = i + 1) { hash_key[i] = 0 - 1; }
  int next_code = 256;
  int w = input[0];
  int check = 0;
  int emitted = 0;
  for (i = 1; i < n; i = i + 1) {
    int k = input[i];
    int key = w * 256 + k;
    int h = (key * 2654435 + 12345) % 8192;
    if (h < 0) { h = 0 - h; }
    int found = 0 - 1;
    int probes = 0;
    while (probes < 12 && found < 0) {
      if (hash_key[h] == key) { found = hash_val[h]; }
      else {
        if (hash_key[h] < 0) { break; }
        h = (h + 1) % 8192;
        probes = probes + 1;
      }
    }
    if (found >= 0) {
      w = found;
    } else {
      check = (check * 31 + w) % 1000003;
      emitted = emitted + 1;
      if (hash_key[h] < 0 && next_code < 4096) {
        hash_key[h] = key;
        hash_val[h] = next_code;
        next_code = next_code + 1;
      }
      w = k;
    }
  }
  emit(emitted);
  emit(check);
  return 0;
}
|};
    train = [ ("input", Data.skewed ~seed:34 ~n:4096 ~bound:256) ];
    novel = [ ("input", Data.runs ~seed:100 ~n:4096 ~bound:256 ~max_run:4) ];
  }

let li : Bench.t =
  {
    name = "130.li";
    suite = Bench.Spec95;
    fp = false;
    description = "Lisp-interpreter kernel: stack-machine dispatch loop";
    source =
      {|
global int code[2048];
global int stack[256];
global int env[64];

int main() {
  int iters = 24;
  int it;
  int check = 0;
  for (it = 0; it < iters; it = it + 1) {
    int pc = 0;
    int sp = 0;
    int steps = 0;
    while (pc < 2048 && steps < 4000) {
      int op = code[pc] % 10;
      int arg = code[pc] / 10 % 64;
      steps = steps + 1;
      pc = pc + 1;
      if (op == 0) {            /* push const */
        if (sp < 255) { stack[sp] = arg; sp = sp + 1; }
      }
      if (op == 1) {            /* load env */
        if (sp < 255) { stack[sp] = env[arg]; sp = sp + 1; }
      }
      if (op == 2) {            /* store env */
        if (sp > 0) { sp = sp - 1; env[arg] = stack[sp]; }
      }
      if (op == 3) {            /* add */
        if (sp > 1) { stack[sp - 2] = stack[sp - 2] + stack[sp - 1]; sp = sp - 1; }
      }
      if (op == 4) {            /* sub */
        if (sp > 1) { stack[sp - 2] = stack[sp - 2] - stack[sp - 1]; sp = sp - 1; }
      }
      if (op == 5) {            /* mul mod */
        if (sp > 1) { stack[sp - 2] = stack[sp - 2] * stack[sp - 1] % 65521; sp = sp - 1; }
      }
      if (op == 6) {            /* branch if zero */
        if (sp > 0) {
          sp = sp - 1;
          if (stack[sp] == 0) { pc = pc + arg % 16; }
        }
      }
      if (op == 7) {            /* dup */
        if (sp > 0 && sp < 255) { stack[sp] = stack[sp - 1]; sp = sp + 1; }
      }
      if (op == 8) {            /* cons-cell hash (memory mix) */
        if (sp > 0) { stack[sp - 1] = (stack[sp - 1] * 31 + arg) % 65521; }
      }
      if (op == 9) {            /* gc tick: checksum and pop */
        if (sp > 0) { sp = sp - 1; check = (check * 7 + stack[sp]) % 1000003; }
      }
    }
    check = (check + sp) % 1000003;
  }
  emit(check);
  return 0;
}
|};
    train = [ ("code", Data.ints ~seed:35 ~n:2048 ~bound:640) ];
    novel = [ ("code", Data.skewed ~seed:101 ~n:2048 ~bound:640) ];
  }

let m88ksim : Bench.t =
  {
    name = "124.m88ksim";
    suite = Bench.Spec95;
    fp = false;
    description = "CPU simulator: fetch/decode/execute with a register file";
    source =
      {|
global int imem[1024];
global int regs[32];
global int dmem[1024];

int main() {
  int iters = 20;
  int it;
  int check = 0;
  for (it = 0; it < iters; it = it + 1) {
    int r;
    for (r = 0; r < 32; r = r + 1) { regs[r] = r * 3 + it; }
    int pc = 0;
    int steps = 0;
    while (steps < 3000) {
      int insn = imem[pc % 1024];
      int opc = insn % 8;
      int rd = insn / 8 % 32;
      int rs1 = insn / 256 % 32;
      int rs2 = insn / 8192 % 32;
      steps = steps + 1;
      pc = pc + 1;
      if (opc == 0) { regs[rd] = regs[rs1] + regs[rs2]; }
      if (opc == 1) { regs[rd] = regs[rs1] - regs[rs2]; }
      if (opc == 2) { regs[rd] = regs[rs1] & regs[rs2]; }
      if (opc == 3) { regs[rd] = regs[rs1] ^ regs[rs2]; }
      if (opc == 4) {                       /* load */
        int a = regs[rs1] % 1024;
        if (a < 0) { a = 0 - a; }
        regs[rd] = dmem[a];
      }
      if (opc == 5) {                       /* store */
        int a = regs[rs1] % 1024;
        if (a < 0) { a = 0 - a; }
        dmem[a] = regs[rs2];
      }
      if (opc == 6) {                       /* conditional branch */
        if (regs[rs1] > regs[rs2]) { pc = pc + rd % 7; }
      }
      if (opc == 7) {                       /* mul step */
        regs[rd] = regs[rs1] * regs[rs2] % 65521;
      }
      regs[0] = 0;
    }
    check = (check * 31 + regs[5] + regs[17]) % 1000003;
  }
  emit(check);
  return 0;
}
|};
    train = [ ("imem", Data.ints ~seed:36 ~n:1024 ~bound:262144) ];
    novel = [ ("imem", Data.ints ~seed:102 ~n:1024 ~bound:262144) ];
  }

let vortex : Bench.t =
  {
    name = "147.vortex";
    suite = Bench.Spec95;
    fp = false;
    description = "Object database: hashed insert / lookup / delete mix";
    source =
      {|
global int ops[4096];
global int keys[4096];
global int tbl_key[4096];
global int tbl_val[4096];

int main() {
  int n = 4096;
  int i;
  for (i = 0; i < 4096; i = i + 1) { tbl_key[i] = 0 - 1; }
  int stored = 0;
  int hits = 0;
  int check = 0;
  for (i = 0; i < n; i = i + 1) {
    int op = ops[i] % 3;
    int key = keys[i];
    int h = (key * 40503) % 4096;
    if (h < 0) { h = 0 - h; }
    int probes = 0;
    int slot = 0 - 1;
    int found = 0 - 1;
    while (probes < 16) {
      int k = tbl_key[h];
      if (k == key) { found = h; break; }
      if (k < 0) { slot = h; break; }
      h = (h + probes + 1) % 4096;
      probes = probes + 1;
    }
    if (op == 0) {                 /* insert */
      if (found < 0 && slot >= 0) {
        tbl_key[slot] = key;
        tbl_val[slot] = key * 7 % 65521;
        stored = stored + 1;
      }
    }
    if (op == 1) {                 /* lookup */
      if (found >= 0) {
        hits = hits + 1;
        check = (check * 31 + tbl_val[found]) % 1000003;
      }
    }
    if (op == 2) {                 /* delete */
      if (found >= 0) {
        tbl_key[found] = 0 - 2;    /* tombstone */
        stored = stored - 1;
      }
    }
  }
  emit(stored);
  emit(hits);
  emit(check);
  return 0;
}
|};
    train =
      [
        ("ops", Data.ints ~seed:37 ~n:4096 ~bound:3);
        ("keys", Data.skewed ~seed:38 ~n:4096 ~bound:3000);
      ];
    novel =
      [
        ("ops", Data.skewed ~seed:103 ~n:4096 ~bound:3);
        ("keys", Data.ints ~seed:104 ~n:4096 ~bound:3000);
      ];
  }

let eqntott : Bench.t =
  {
    name = "023.eqntott";
    suite = Bench.Spec92;
    fp = false;
    description = "Truth-table generation: bit-vector compare-heavy sort";
    source =
      {|
global int terms[2048];
global int perm[256];

int main() {
  int nterms = 256;
  int width = 8;                    /* ints per term */
  int i;
  for (i = 0; i < nterms; i = i + 1) { perm[i] = i; }
  /* insertion sort of bit-vector terms by lexicographic compare */
  for (i = 1; i < nterms; i = i + 1) {
    int j = i;
    while (j > 0) {
      /* compare terms perm[j-1] and perm[j] */
      int a = perm[j - 1];
      int b = perm[j];
      int cmp = 0;
      int k = 0;
      while (k < width && cmp == 0) {
        int va = terms[a * width + k];
        int vb = terms[b * width + k];
        if (va < vb) { cmp = 0 - 1; }
        if (va > vb) { cmp = 1; }
        k = k + 1;
      }
      if (cmp > 0) {
        perm[j - 1] = b;
        perm[j] = a;
        j = j - 1;
      } else {
        break;
      }
    }
  }
  /* checksum sorted order and count distinct adjacent pairs */
  int check = 0;
  int distinct = 0;
  for (i = 1; i < nterms; i = i + 1) {
    int a = perm[i - 1];
    int b = perm[i];
    int same = 1;
    int k;
    for (k = 0; k < width; k = k + 1) {
      if (terms[a * width + k] != terms[b * width + k]) { same = 0; }
    }
    if (same == 0) { distinct = distinct + 1; }
    check = (check * 31 + perm[i]) % 1000003;
  }
  emit(distinct);
  emit(check);
  return 0;
}
|};
    train = [ ("terms", Data.ints ~seed:39 ~n:2048 ~bound:4) ];
    novel = [ ("terms", Data.skewed ~seed:105 ~n:2048 ~bound:4) ];
  }

let alvinn : Bench.t =
  {
    name = "052.alvinn";
    suite = Bench.Spec92;
    fp = true;
    description = "Neural net training step: forward + backward pass";
    source =
      {|
global float inputs[960];
global float w1[1920];
global float w2[64];
global float hidden[32];
global float targets[32];

int main() {
  int npatterns = 32;
  int nin = 30;
  int nhid = 32;
  int p;
  float err = 0.0;
  for (p = 0; p < npatterns; p = p + 1) {
    int base = p * nin;
    /* forward: hidden layer */
    int h;
    for (h = 0; h < nhid; h = h + 1) {
      float sum = 0.0;
      int i;
      for (i = 0; i < nin; i = i + 1) {
        sum = sum + inputs[base + i] * w1[h * 30 + i];
      }
      /* fast sigmoid */
      float a = sum;
      if (a < 0.0) { a = 0.0 - a; }
      hidden[h] = sum / (1.0 + a);
    }
    /* output neuron + delta rule */
    float out = 0.0;
    for (h = 0; h < nhid; h = h + 1) {
      out = out + hidden[h] * w2[h];
    }
    float delta = targets[p] - out;
    err = err + delta * delta;
    for (h = 0; h < nhid; h = h + 1) {
      w2[h] = w2[h] + 0.05 * delta * hidden[h];
      int i;
      for (i = 0; i < nin; i = i + 1) {
        w1[h * 30 + i] = w1[h * 30 + i]
          + 0.01 * delta * w2[h] * inputs[base + i];
      }
    }
  }
  emit(err);
  return 0;
}
|};
    train =
      [
        ("inputs", Data.floats ~seed:40 ~n:960 ~lo:(-1.0) ~hi:1.0);
        ("w1", Data.floats ~seed:41 ~n:1920 ~lo:(-0.3) ~hi:0.3);
        ("w2", Data.floats ~seed:42 ~n:64 ~lo:(-0.3) ~hi:0.3);
        ("targets", Data.floats ~seed:43 ~n:32 ~lo:(-1.0) ~hi:1.0);
      ];
    novel =
      [
        ("inputs", Data.floats ~seed:106 ~n:960 ~lo:(-1.0) ~hi:1.0);
        ("w1", Data.floats ~seed:107 ~n:1920 ~lo:(-0.3) ~hi:0.3);
        ("w2", Data.floats ~seed:108 ~n:64 ~lo:(-0.3) ~hi:0.3);
        ("targets", Data.floats ~seed:109 ~n:32 ~lo:(-1.0) ~hi:1.0);
      ];
  }

let art : Bench.t =
  {
    name = "art";
    suite = Bench.Spec2000;
    fp = true;
    description = "Adaptive resonance: winner-take-all with vigilance reset";
    source =
      {|
global float patterns[2048];
global float weights[1024];

int main() {
  int npatterns = 64;
  int dim = 32;
  int ncats = 32;
  int p;
  int resets = 0;
  float check = 0.0;
  for (p = 0; p < npatterns; p = p + 1) {
    int base = p * dim;
    /* winner-take-all search with vigilance */
    int tried = 0;
    int winner = 0 - 1;
    while (tried < 4 && winner < 0) {
      float best = 0.0 - 1000000.0;
      int bestc = 0;
      int c;
      for (c = 0; c < ncats; c = c + 1) {
        float act = 0.0;
        int i;
        for (i = 0; i < dim; i = i + 1) {
          float w = weights[c * dim + i];
          float x = patterns[base + i];
          act = act + w * x - 0.02 * w * w;
        }
        if (act > best) { best = act; bestc = c; }
      }
      /* vigilance test */
      float match = 0.0;
      float norm = 0.0;
      int i;
      for (i = 0; i < dim; i = i + 1) {
        float w = weights[bestc * dim + i];
        float x = patterns[base + i];
        float m = w;
        if (x < w) { m = x; }
        match = match + m;
        norm = norm + x;
      }
      if (norm < 0.01) { norm = 0.01; }
      if (match / norm > 0.5) {
        winner = bestc;
      } else {
        resets = resets + 1;
        tried = tried + 1;
        /* punish the failed category */
        for (i = 0; i < dim; i = i + 1) {
          weights[bestc * dim + i] = weights[bestc * dim + i] * 0.7;
        }
      }
    }
    if (winner < 0) { winner = 0; }
    /* learn */
    int i;
    for (i = 0; i < dim; i = i + 1) {
      int wi = winner * dim + i;
      weights[wi] = 0.8 * weights[wi] + 0.2 * patterns[base + i];
    }
    check = check + float(winner);
  }
  emit(resets);
  emit(check);
  return 0;
}
|};
    train =
      [
        ("patterns", Data.floats ~seed:44 ~n:2048 ~lo:0.0 ~hi:1.0);
        ("weights", Data.floats ~seed:45 ~n:1024 ~lo:0.0 ~hi:1.0);
      ];
    novel =
      [
        ("patterns", Data.floats ~seed:110 ~n:2048 ~lo:0.0 ~hi:1.0);
        ("weights", Data.floats ~seed:111 ~n:1024 ~lo:0.0 ~hi:1.0);
      ];
  }

let all : Bench.t list =
  [ cc1; compress; li; m88ksim; vortex; eqntott; alvinn; art ]
