(** Hyperblock-selection features (the paper's Table 4), plus the min /
    mean / max / standard deviation of every real-valued path
    characteristic over the region's paths, and [num_paths] /
    [total_ops] — the global context the paper gives the greedy local
    heuristic. *)

val feature_set : Gp.Feature_set.t

(** Raw per-path measurements, before normalization into a feature
    environment. *)
type path_features = {
  exec_ratio : float;       (** profile path frequency, relative *)
  dep_height : float;       (** latency-weighted critical path *)
  num_ops : float;
  num_branches : float;
  predict_product : float;  (** product of branch predictabilities *)
  mem_hazard : bool;
  has_unsafe_jsr : bool;
  has_pointer_deref : bool;
}

val environments :
  path_features list -> total_ops:int -> Gp.Feature_set.env list
(** Environments for all paths of one region at once, sharing the
    aggregate features. *)
