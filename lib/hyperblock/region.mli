(** Discovery of predicatable regions and enumeration of their paths of
    control [Park & Schlansker 91, simplified].

    Two region shapes: hammocks (a conditional branch to its immediate
    postdominator) and innermost loop bodies (merging one produces a
    self-looping hyperblock, the shape Trimaran gets from unrolled
    loops).  A block is mergeable if all its predecessors are inside the
    region, it is not already predicated, and it is not in a nested loop;
    only complete entry-to-stop paths through mergeable blocks are
    candidates for inclusion. *)

type path = { labels : Ir.Types.label list  (** entry .. last *) }

type t = {
  fname : string;
  entry : Ir.Types.label;
  stop : Ir.Types.label;  (** paths end on an edge to this label *)
  kind : [ `Hammock | `Loop_body ];
  mergeable : Ir.Types.label list;  (** reverse postorder, entry first *)
  paths : path list;
}

type limits = {
  max_blocks : int;
  max_paths : int;
  max_path_len : int;
}

val default_limits : limits

val is_predicated : Ir.Func.block -> bool
(** Already contains guarded instructions, predicate defines or side
    exits — cannot participate in another region. *)

val discover : ?limits:limits -> Ir.Func.t -> t list
(** All candidate regions of a function, loop bodies first. *)
