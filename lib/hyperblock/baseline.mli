(** Trimaran/IMPACT's baseline hyperblock-selection priority function,
    Equation (1) of the paper:

    priority_i = exec_ratio_i * h_i * (2.1 - d_ratio_i - o_ratio_i)

    with h_i = 0.25 on paths containing a hazard and 1 otherwise. *)

val source : string
(** Equation (1) in the GP expression syntax; the seed expression for the
    initial population. *)

val expr : Gp.Expr.rexpr
val genome : Gp.Expr.genome
