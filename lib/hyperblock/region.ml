(* Discovery of predicatable regions and enumeration of their paths of
   control [Park & Schlansker 91, simplified].

   Two region shapes are recognized:

   - Hammocks: a block ending in a conditional branch, together with the
     acyclic subgraph between it and its immediate postdominator (the
     join).  Paths run from the entry to the join.

   - Innermost loop bodies: the body of an innermost natural loop, with
     the back edge as the path terminus.  Merging a loop body produces a
     single self-looping hyperblock, the shape Trimaran obtains from
     unrolled loops.

   A block is mergeable if all its predecessors lie inside the region
   (single-entry requirement), it is not already predicated, and it does
   not belong to a nested loop.  Only complete entry-to-stop paths through
   mergeable blocks are candidates for inclusion; everything else is
   reachable from the hyperblock only through predicated side exits. *)

type path = { labels : Ir.Types.label list (* entry .. last *) }

type t = {
  fname : string;
  entry : Ir.Types.label;
  stop : Ir.Types.label;
  kind : [ `Hammock | `Loop_body ];
  mergeable : Ir.Types.label list;     (* reverse-postorder, entry first *)
  paths : path list;
}

type limits = {
  max_blocks : int;
  max_paths : int;
  max_path_len : int;
}

let default_limits = { max_blocks = 24; max_paths = 16; max_path_len = 12 }

let is_predicated (b : Ir.Func.block) =
  List.exists
    (fun (i : Ir.Instr.t) ->
      i.Ir.Instr.guard <> Ir.Types.p_true
      ||
      match i.Ir.Instr.kind with
      | Ir.Instr.Exit _ | Ir.Instr.Pdef _ | Ir.Instr.Pclear _ | Ir.Instr.Por _
        ->
        true
      | _ -> false)
    b.Ir.Func.instrs

(* Depth-first path enumeration from [entry] through [mergeable] blocks,
   ending on an edge to [stop]. *)
let enumerate_paths (g : Ir.Cfg.t) ~limits ~mergeable ~entry ~stop :
    path list =
  let paths = ref [] and count = ref 0 in
  let rec go path_rev bi =
    if !count < limits.max_paths then
      List.iter
        (fun s ->
          let l = g.Ir.Cfg.labels.(s) in
          if l = stop then begin
            if !count < limits.max_paths then begin
              incr count;
              paths := List.rev path_rev :: !paths
            end
          end
          else if
            Hashtbl.mem mergeable l
            && (not (List.mem l path_rev))
            && List.length path_rev < limits.max_path_len
          then go (l :: path_rev) s)
        g.Ir.Cfg.succ.(bi)
  in
  go [ g.Ir.Cfg.labels.(entry) ] entry;
  List.rev_map (fun labels -> { labels }) !paths

(* All region blocks reachable from [entry] without passing through
   [stop]. *)
let region_blocks (g : Ir.Cfg.t) ~entry ~stop : int list =
  let n = Ir.Cfg.n_blocks g in
  let seen = Array.make n false in
  let rec dfs i =
    if (not seen.(i)) && i <> stop then begin
      seen.(i) <- true;
      List.iter dfs g.Ir.Cfg.succ.(i)
    end
  in
  dfs entry;
  List.filter (fun i -> seen.(i)) (List.init n Fun.id)

let mergeable_of (f : Ir.Func.t) (g : Ir.Cfg.t) ~region ~entry ~loop_depth :
    (Ir.Types.label, unit) Hashtbl.t =
  let in_region = Hashtbl.create 16 in
  List.iter (fun i -> Hashtbl.replace in_region i ()) region;
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun i ->
      let b = Ir.Cfg.block_of g i in
      let single_entry =
        i = entry || List.for_all (fun p -> Hashtbl.mem in_region p) g.Ir.Cfg.pred.(i)
      in
      let same_depth = loop_depth.(i) = loop_depth.(entry) in
      if single_entry && same_depth && not (is_predicated b) then
        Hashtbl.replace tbl b.Ir.Func.blabel ())
    region;
  ignore f;
  tbl

(* Reject regions whose induced subgraph contains a retreating edge. *)
let acyclic (g : Ir.Cfg.t) region =
  let in_region = Hashtbl.create 16 in
  List.iter (fun i -> Hashtbl.replace in_region i ()) region;
  List.for_all
    (fun i ->
      List.for_all
        (fun s -> (not (Hashtbl.mem in_region s)) || s > i)
        g.Ir.Cfg.succ.(i))
    region

let contains_loop_header (loops : Ir.Cfg.loop list) region =
  List.exists (fun (l : Ir.Cfg.loop) -> List.mem l.Ir.Cfg.header region) loops

let discover ?(limits = default_limits) (f : Ir.Func.t) : t list =
  let g = Ir.Cfg.build f in
  let n = Ir.Cfg.n_blocks g in
  if n = 0 then []
  else begin
    let ipdom = Ir.Cfg.postdominators g in
    let loops = Ir.Cfg.loops g in
    let loop_depth = Ir.Cfg.loop_depth g in
    let innermost l =
      not
        (List.exists
           (fun (l' : Ir.Cfg.loop) ->
             l'.Ir.Cfg.header <> l.Ir.Cfg.header
             && List.mem l'.Ir.Cfg.header l.Ir.Cfg.body)
           loops)
    in
    let hammocks =
      List.filter_map
        (fun bi ->
          let b = Ir.Cfg.block_of g bi in
          match b.Ir.Func.term with
          | Ir.Func.Br _ when not (is_predicated b) ->
            let j = ipdom.(bi) in
            if j < 0 || j = bi then None
            else begin
              let region = region_blocks g ~entry:bi ~stop:j in
              if
                List.length region > limits.max_blocks
                || (not (acyclic g region))
                || contains_loop_header loops region
              then None
              else begin
                let mergeable =
                  mergeable_of f g ~region ~entry:bi ~loop_depth
                in
                let stop = g.Ir.Cfg.labels.(j) in
                let paths =
                  enumerate_paths g ~limits ~mergeable ~entry:bi ~stop
                in
                if List.length paths >= 2 then
                  Some
                    {
                      fname = f.Ir.Func.fname;
                      entry = g.Ir.Cfg.labels.(bi);
                      stop;
                      kind = `Hammock;
                      mergeable =
                        List.filter_map
                          (fun i ->
                            let l = g.Ir.Cfg.labels.(i) in
                            if Hashtbl.mem mergeable l then Some l else None)
                          (List.sort compare region);
                      paths;
                    }
                else None
              end
            end
          | _ -> None)
        (List.init n Fun.id)
    in
    let loop_regions =
      List.filter_map
        (fun (l : Ir.Cfg.loop) ->
          if not (innermost l) then None
          else begin
            let entry = l.Ir.Cfg.header in
            let entry_label = g.Ir.Cfg.labels.(entry) in
            if is_predicated (Ir.Cfg.block_of g entry) then None
            else if List.length l.Ir.Cfg.body > limits.max_blocks then None
            else begin
              let in_body = Hashtbl.create 16 in
              List.iter (fun i -> Hashtbl.replace in_body i ()) l.Ir.Cfg.body;
              let mergeable = Hashtbl.create 16 in
              List.iter
                (fun i ->
                  let b = Ir.Cfg.block_of g i in
                  let single_entry =
                    i = entry
                    || List.for_all
                         (fun p -> Hashtbl.mem in_body p)
                         g.Ir.Cfg.pred.(i)
                  in
                  if single_entry && not (is_predicated b) then
                    Hashtbl.replace mergeable b.Ir.Func.blabel ())
                l.Ir.Cfg.body;
              let paths =
                enumerate_paths g ~limits ~mergeable ~entry ~stop:entry_label
              in
              (* A single multi-block path is still worth merging (it
                 straightens the loop body); a lone single-block path is
                 already a hyperblock-shaped loop. *)
              let worthwhile =
                match paths with
                | [] -> false
                | [ p ] -> List.length p.labels >= 2
                | _ -> true
              in
              if worthwhile then
                Some
                  {
                    fname = f.Ir.Func.fname;
                    entry = entry_label;
                    stop = entry_label;
                    kind = `Loop_body;
                    mergeable =
                      List.filter_map
                        (fun i ->
                          let l' = g.Ir.Cfg.labels.(i) in
                          if Hashtbl.mem mergeable l' then Some l' else None)
                        (List.sort compare l.Ir.Cfg.body);
                    paths;
                  }
              else None
            end
          end)
        loops
    in
    loop_regions @ hammocks
  end
