(* Hyperblock formation: feature extraction, priority-driven path
   selection, and if-conversion.

   The priority function under study (baseline Equation (1) or a GP
   expression) scores each enumerated path of a region; paths are merged
   in priority order until the estimated machine resources are consumed
   [Mahlke 96].  Selected paths are if-converted into a single predicated
   block: every merged block's instructions are guarded by a block
   predicate computed with or-form compares over the region's edges, and
   edges leaving the selected set become predicated side exits. *)

type config = {
  limits : Region.limits;
  resource_slack : float;      (* multiplier on the issue-width budget *)
  max_merged_ops : int;
  max_selected_paths : int;
  (* A path is eligible only if its priority exceeds this fraction of the
     region's best path priority; a region whose best priority is not
     positive is not if-converted at all.  This is where the priority
     function's magnitudes (not just its ordering) decide inclusion. *)
  priority_cutoff : float;
}

let default_config =
  {
    limits = Region.default_limits;
    resource_slack = 1.0;
    max_merged_ops = 220;
    max_selected_paths = 12;
    priority_cutoff = 0.10;
  }

(* --- Feature extraction ------------------------------------------------ *)

let path_instrs (f : Ir.Func.t) (p : Region.path) : Ir.Instr.t array =
  Array.of_list
    (List.concat_map
       (fun l -> (Ir.Func.find_block f l).Ir.Func.instrs)
       p.Region.labels)

let path_features (f : Ir.Func.t) (prof : Profile.Prof.t) (p : Region.path) :
    Features.path_features =
  let instrs = path_instrs f p in
  let dep_height =
    float_of_int (Sched.Depgraph.critical_path (Sched.Depgraph.build instrs))
  in
  let num_ops = float_of_int (Array.length instrs) in
  let blocks = List.map (Ir.Func.find_block f) p.Region.labels in
  let num_branches =
    float_of_int
      (List.fold_left (fun acc b -> acc + Ir.Func.branch_count b) 0 blocks)
  in
  (* Path execution ratio: product of profile edge probabilities along the
     path (all paths start at the region entry, so ratios are
     comparable). *)
  let fname = f.Ir.Func.fname in
  let rec edge_product = function
    | a :: (b :: _ as rest) ->
      Profile.Prof.edge_prob prof ~fname ~from_label:a ~to_label:b
      *. edge_product rest
    | [ _ ] | [] -> 1.0
  in
  let exec_ratio = edge_product p.Region.labels in
  let predict_product =
    List.fold_left
      (fun acc (b : Ir.Func.block) ->
        match
          Profile.Prof.term_branch_stats prof ~fname ~label:b.Ir.Func.blabel
        with
        | Some bs -> acc *. Profile.Prof.predictability bs
        | None -> acc)
      1.0 blocks
  in
  let has_pointer_deref = ref false
  and has_unsafe_jsr = ref false in
  Array.iter
    (fun (i : Ir.Instr.t) ->
      match i.Ir.Instr.kind with
      | Ir.Instr.Load (_, a) | Ir.Instr.Store (a, _) ->
        if a.Ir.Instr.hazard || a.Ir.Instr.space = Ir.Instr.Unknown then
          has_pointer_deref := true
      | Ir.Instr.Call (_, _, _, Ir.Instr.Impure) -> has_unsafe_jsr := true
      | _ -> ())
    instrs;
  {
    Features.exec_ratio;
    dep_height;
    num_ops;
    num_branches;
    predict_product;
    mem_hazard = !has_pointer_deref || !has_unsafe_jsr;
    has_unsafe_jsr = !has_unsafe_jsr;
    has_pointer_deref = !has_pointer_deref;
  }

(* --- Selection ---------------------------------------------------------- *)

type scored_path = {
  path : Region.path;
  feats : Features.path_features;
  priority : float;
}

let union_labels (paths : Region.path list) : Ir.Types.label list =
  List.sort_uniq compare (List.concat_map (fun p -> p.Region.labels) paths)

let ops_of_labels (f : Ir.Func.t) labels =
  List.fold_left
    (fun acc l -> acc + List.length (Ir.Func.find_block f l).Ir.Func.instrs)
    0 labels

(* Greedy selection in priority order with an IMPACT-style resource
   estimate: the merged block's instruction count must not exceed the
   machine's issue slots over the (tallest) selected path's dependence
   height.  The top-priority path is always taken. *)
let select ~(config : config) ~(machine : Machine.Config.t) (f : Ir.Func.t)
    (scored : scored_path list) : scored_path list =
  let issue = float_of_int (Machine.Config.issue_width machine) in
  let sorted =
    List.stable_sort (fun a b -> compare b.priority a.priority) scored
  in
  match sorted with
  | [] -> []
  | first :: _ when first.priority <= 0.0 -> []
  | first :: rest ->
    let threshold = config.priority_cutoff *. first.priority in
    let rest = List.filter (fun c -> c.priority > threshold) rest in
    let selected = ref [ first ] in
    List.iter
      (fun cand ->
        if List.length !selected < config.max_selected_paths then begin
          let tentative = cand :: !selected in
          let ops =
            ops_of_labels f (union_labels (List.map (fun s -> s.path) tentative))
          in
          let height =
            List.fold_left
              (fun acc s -> Float.max acc s.feats.Features.dep_height)
              0.0 tentative
          in
          let budget = issue *. height *. config.resource_slack in
          if float_of_int ops <= budget && ops <= config.max_merged_ops then
            selected := tentative
        end)
      rest;
    List.rev !selected

(* --- If-conversion ------------------------------------------------------ *)

(* Convert the selected sub-DAG of [region] into a single predicated block
   replacing the region entry.  Returns the number of blocks merged in
   (0 = nothing done). *)
let convert (f : Ir.Func.t) (region : Region.t) (selected : Region.path list)
    : int =
  let s_labels = union_labels selected in
  let merged = List.filter (fun l -> l <> region.Region.entry) s_labels in
  if merged = [] then 0
  else begin
    (* Topological order: region.mergeable is already in reverse
       postorder; restrict it to the selected set. *)
    let topo =
      List.filter (fun l -> List.mem l s_labels) region.Region.mergeable
    in
    assert (List.length topo = List.length s_labels);
    (match topo with
    | e :: _ -> assert (e = region.Region.entry)
    | [] -> assert false);
    let in_s l = List.mem l s_labels in
    (* Classify each non-entry selected block by its in-edges within the
       selected sub-DAG:
         - a single unconditional in-edge: the block predicate aliases its
           source's guard (no instruction at all);
         - a single conditional in-edge: defined by one unconditional-form
           compare (cmp.unc, no up-front clear); a branch both of whose
           targets are such blocks collapses to one two-target cmpp when
           the branch itself is unpredicated;
         - several in-edges (reconvergence): cleared up front and
           or-accumulated with cmp.or at every edge. *)
    let in_edges : (Ir.Types.label, (Ir.Types.label * Ir.Types.operand option) list)
        Hashtbl.t =
      Hashtbl.create 16
    in
    let add_in_edge target source cond =
      if in_s target && target <> region.Region.entry then
        Hashtbl.replace in_edges target
          ((source, cond)
          :: Option.value ~default:[] (Hashtbl.find_opt in_edges target))
    in
    List.iter
      (fun l ->
        let b = Ir.Func.find_block f l in
        match b.Ir.Func.term with
        | Ir.Func.Br (c, l1, l2) ->
          add_in_edge l1 l (Some c);
          add_in_edge l2 l (Some c)
        | Ir.Func.Jmp l' -> add_in_edge l' l None
        | Ir.Func.Ret _ -> ())
      topo;
    let block_pred = Hashtbl.create 16 in
    let multi_entry = Hashtbl.create 4 in
    Hashtbl.replace block_pred region.Region.entry Ir.Types.p_true;
    List.iter
      (fun l ->
        if l <> region.Region.entry then
          match Option.value ~default:[] (Hashtbl.find_opt in_edges l) with
          | [ (src, None) ] ->
            (* Alias: the source appears earlier in topo order, so its
               predicate is already assigned. *)
            Hashtbl.replace block_pred l (Hashtbl.find block_pred src)
          | [ (_, Some _) ] ->
            Hashtbl.replace block_pred l (Ir.Func.fresh_pred f)
          | _ ->
            Hashtbl.replace block_pred l (Ir.Func.fresh_pred f);
            Hashtbl.replace multi_entry l ())
      topo;
    let single_conditional l =
      match Hashtbl.find_opt in_edges l with
      | Some [ (_, Some _) ] -> true
      | _ -> false
    in
    let out = ref [] in
    let emit ?(guard = Ir.Types.p_true) kind =
      out := { Ir.Instr.id = Ir.Func.fresh_instr_id f; guard; kind } :: !out
    in
    (* Up-front clears only for or-accumulated (reconvergent) predicates. *)
    List.iter
      (fun l ->
        if Hashtbl.mem multi_entry l then
          emit (Ir.Instr.Pclear (Hashtbl.find block_pred l)))
      topo;
    let body = ref [] in
    let emit_body ?(guard = Ir.Types.p_true) kind =
      body := { Ir.Instr.id = Ir.Func.fresh_instr_id f; guard; kind } :: !body
    in
    List.iter
      (fun l ->
        let b = Ir.Func.find_block f l in
        let guard_b = Hashtbl.find block_pred l in
        (* The block's own instructions, re-guarded. *)
        List.iter
          (fun (i : Ir.Instr.t) ->
            assert (i.Ir.Instr.guard = Ir.Types.p_true);
            body := { i with Ir.Instr.guard = guard_b } :: !body)
          b.Ir.Func.instrs;
        (* Lower the terminator into predicate defines / side exits. *)
        let edge target cmp cond =
          if target = region.Region.stop then ()
          else if in_s target then begin
            let p = Hashtbl.find block_pred target in
            if Hashtbl.mem multi_entry target then
              emit_body ~guard:guard_b
                (Ir.Instr.Por (cmp, p, cond, Ir.Types.Imm 0))
            else if p <> guard_b then
              (* Single conditional in-edge: unconditional-form compare. *)
              emit_body ~guard:guard_b
                (Ir.Instr.Pset (cmp, p, cond, Ir.Types.Imm 0))
            (* [p = guard_b]: aliased unconditional edge, nothing to emit. *)
          end
          else begin
            match cond with
            | Ir.Types.Imm 1 ->
              (* Unconditional edge out of the region. *)
              emit_body ~guard:guard_b (Ir.Instr.Exit target)
            | _ ->
              let q = Ir.Func.fresh_pred f in
              emit_body ~guard:guard_b
                (Ir.Instr.Pset (cmp, q, cond, Ir.Types.Imm 0));
              emit_body ~guard:q (Ir.Instr.Exit target)
          end
        in
        match b.Ir.Func.term with
        | Ir.Func.Br (c, l1, l2)
          when guard_b = Ir.Types.p_true
               && l1 <> l2
               && in_s l1 && in_s l2
               && single_conditional l1
               && single_conditional l2 ->
          (* Unpredicated diamond: one cmpp defines both sides. *)
          emit_body
            (Ir.Instr.Pdef
               (Ir.Types.Cne, Hashtbl.find block_pred l1,
                Hashtbl.find block_pred l2, c, Ir.Types.Imm 0))
        | Ir.Func.Br (c, l1, l2) ->
          edge l1 Ir.Types.Cne c;
          edge l2 Ir.Types.Ceq c
        | Ir.Func.Jmp l' -> edge l' Ir.Types.Cne (Ir.Types.Imm 1)
        | Ir.Func.Ret _ ->
          (* Blocks ending in Ret are never on a path to the stop label,
             so they cannot be selected. *)
          assert false)
      topo;
    let entry_block = Ir.Func.find_block f region.Region.entry in
    entry_block.Ir.Func.instrs <- List.rev !out @ List.rev !body;
    entry_block.Ir.Func.term <- Ir.Func.Jmp region.Region.stop;
    (* Tail duplication [Mahlke 96]: a merged block that is still targeted
       by a surviving block (a side entrance from outside the selected
       set, e.g. the side exit of an earlier hyperblock) must keep its
       original copy.  Survival is a fixpoint because a kept block's own
       targets must then also survive. *)
    let removable = Hashtbl.create 16 in
    List.iter (fun l -> Hashtbl.replace removable l ()) merged;
    let changed = ref true in
    while !changed do
      changed := false;
      List.iter
        (fun (b : Ir.Func.block) ->
          if not (Hashtbl.mem removable b.Ir.Func.blabel) then
            List.iter
              (fun succ ->
                if Hashtbl.mem removable succ then begin
                  Hashtbl.remove removable succ;
                  changed := true
                end)
              (Ir.Func.successors b))
        f.Ir.Func.blocks
    done;
    f.Ir.Func.blocks <-
      List.filter
        (fun (b : Ir.Func.block) -> not (Hashtbl.mem removable b.Ir.Func.blabel))
        f.Ir.Func.blocks;
    List.length merged
  end

(* --- Driver ------------------------------------------------------------- *)

type stats = {
  mutable regions_seen : int;
  mutable regions_formed : int;
  mutable blocks_merged : int;
  mutable paths_selected : int;
  mutable paths_total : int;
}

let new_stats () =
  {
    regions_seen = 0;
    regions_formed = 0;
    blocks_merged = 0;
    paths_selected = 0;
    paths_total = 0;
  }

(* Score a region's paths with the priority function.  A scorer maps all
   of a region's path environments to priorities at once: the compiled
   instance is [Gp.Evalc.run_batch] over one pre-compiled program (no
   per-path re-dispatch); the reference instance tree-walks per path. *)
let score_region_with (scorer : Gp.Feature_set.env list -> float list)
    (f : Ir.Func.t) (prof : Profile.Prof.t) (region : Region.t) :
    scored_path list =
  let feats = List.map (path_features f prof) region.Region.paths in
  let total_ops = ops_of_labels f region.Region.mergeable in
  let envs = Features.environments feats ~total_ops in
  List.map2
    (fun (path, fe) pr -> { path; feats = fe; priority = pr })
    (List.combine region.Region.paths feats)
    (scorer envs)

let scorer_of ~compiled (priority : Gp.Expr.rexpr) =
  if compiled then begin
    let prog = Gp.Evalc.compile_real priority in
    fun envs ->
      Array.to_list (Gp.Evalc.run_batch prog (Array.of_list envs))
  end
  else fun envs -> List.map (fun env -> Gp.Eval.real env priority) envs

let score_region ?(compiled = true) (f : Ir.Func.t) (prof : Profile.Prof.t)
    (priority : Gp.Expr.rexpr) (region : Region.t) : scored_path list =
  score_region_with (scorer_of ~compiled priority) f prof region

let run_func ?(config = default_config) ?(compiled = true)
    ~(machine : Machine.Config.t) ~(prof : Profile.Prof.t)
    ~(priority : Gp.Expr.rexpr) (f : Ir.Func.t) (stats : stats) : unit =
  let scorer = scorer_of ~compiled priority in
  (* Regions are re-discovered after each conversion; entries already
     attempted are skipped. *)
  let attempted = Hashtbl.create 16 in
  let continue_ = ref true in
  while !continue_ do
    let regions = Region.discover ~limits:config.limits f in
    let candidate =
      List.find_opt
        (fun (r : Region.t) -> not (Hashtbl.mem attempted r.Region.entry))
        regions
    in
    match candidate with
    | None -> continue_ := false
    | Some region ->
      Hashtbl.replace attempted region.Region.entry ();
      stats.regions_seen <- stats.regions_seen + 1;
      stats.paths_total <- stats.paths_total + List.length region.Region.paths;
      let scored = score_region_with scorer f prof region in
      let selected = select ~config ~machine f scored in
      let merged =
        convert f region (List.map (fun s -> s.path) selected)
      in
      if merged > 0 then begin
        stats.regions_formed <- stats.regions_formed + 1;
        stats.blocks_merged <- stats.blocks_merged + merged;
        stats.paths_selected <- stats.paths_selected + List.length selected
      end
  done

let run ?(config = default_config) ?(compiled = true) ~machine ~prof
    ~priority (p : Ir.Func.program) : stats =
  let stats = new_stats () in
  List.iter
    (fun f ->
      run_func ~config ~compiled ~machine ~prof ~priority f stats;
      Opt.Simplify_cfg.remove_unreachable f;
      Ir.Func.renumber f)
    p.Ir.Func.funcs;
  stats
