(* Hyperblock-selection features (Table 4 of the paper).

   Per-path features are extracted for every enumerated path of a region;
   following the paper, the min, mean, max and standard deviation of each
   real-valued path characteristic over all paths in the region are also
   provided, giving the greedy local heuristic some global information. *)

let path_reals =
  [ "exec_ratio"; "dep_height"; "num_ops"; "num_branches"; "predict_product" ]

let aggregates = [ "mean"; "min"; "max"; "std" ]

let feature_set : Gp.Feature_set.t =
  let reals =
    path_reals
    @ [ "d_ratio"; "o_ratio" ]
    @ List.concat_map
        (fun f -> List.map (fun a -> f ^ "_" ^ a) aggregates)
        path_reals
    @ [ "num_paths"; "total_ops" ]
  in
  let bools = [ "mem_hazard"; "has_unsafe_jsr"; "has_pointer_deref" ] in
  Gp.Feature_set.make ~reals ~bools

(* Raw per-path measurements, prior to normalization into a feature
   environment. *)
type path_features = {
  exec_ratio : float;
  dep_height : float;
  num_ops : float;
  num_branches : float;
  predict_product : float;
  mem_hazard : bool;
  has_unsafe_jsr : bool;
  has_pointer_deref : bool;
}

let mean xs =
  match xs with
  | [] -> 0.0
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let std xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
    let m = mean xs in
    sqrt (mean (List.map (fun x -> (x -. m) ** 2.0) xs))

let fmin xs = List.fold_left Float.min infinity xs
let fmax xs = List.fold_left Float.max neg_infinity xs

(* Build the feature environments for all paths of one region at once, so
   the aggregate features are shared. *)
let environments (paths : path_features list) ~total_ops :
    Gp.Feature_set.env list =
  let fs = feature_set in
  let n_paths = float_of_int (List.length paths) in
  let stats_of name select =
    let values = List.map select paths in
    [
      (name ^ "_mean", mean values);
      (name ^ "_min", fmin values);
      (name ^ "_max", fmax values);
      (name ^ "_std", std values);
    ]
  in
  let agg =
    stats_of "exec_ratio" (fun p -> p.exec_ratio)
    @ stats_of "dep_height" (fun p -> p.dep_height)
    @ stats_of "num_ops" (fun p -> p.num_ops)
    @ stats_of "num_branches" (fun p -> p.num_branches)
    @ stats_of "predict_product" (fun p -> p.predict_product)
  in
  let max_height = fmax (List.map (fun p -> p.dep_height) paths) in
  let max_ops = fmax (List.map (fun p -> p.num_ops) paths) in
  List.map
    (fun p ->
      let env = Gp.Feature_set.empty_env fs in
      let set = Gp.Feature_set.set_real fs env in
      set "exec_ratio" p.exec_ratio;
      set "dep_height" p.dep_height;
      set "num_ops" p.num_ops;
      set "num_branches" p.num_branches;
      set "predict_product" p.predict_product;
      set "d_ratio" (if max_height > 0.0 then p.dep_height /. max_height else 0.0);
      set "o_ratio" (if max_ops > 0.0 then p.num_ops /. max_ops else 0.0);
      List.iter (fun (name, v) -> set name v) agg;
      set "num_paths" n_paths;
      set "total_ops" (float_of_int total_ops);
      let setb = Gp.Feature_set.set_bool fs env in
      setb "mem_hazard" p.mem_hazard;
      setb "has_unsafe_jsr" p.has_unsafe_jsr;
      setb "has_pointer_deref" p.has_pointer_deref;
      env)
    paths
