(** Hyperblock formation: feature extraction, priority-driven path
    selection, and if-conversion [Mahlke 96].

    The priority function under study — Equation (1) or a GP expression —
    scores each enumerated path; paths are merged in priority order until
    the estimated machine resources are consumed.  Selected paths are
    if-converted into one predicated block; edges leaving the selected
    set become predicated side exits; merged blocks still reachable from
    outside keep their original copies (tail duplication). *)

type config = {
  limits : Region.limits;
  resource_slack : float;   (** multiplier on the issue-width budget *)
  max_merged_ops : int;
  max_selected_paths : int;
  priority_cutoff : float;
      (** a path must exceed this fraction of the best path's priority;
          a region whose best priority is non-positive is not converted *)
}

val default_config : config

val path_instrs : Ir.Func.t -> Region.path -> Ir.Instr.t array

val path_features :
  Ir.Func.t -> Profile.Prof.t -> Region.path -> Features.path_features
(** Table 4 features of one path, from static analysis and the profile. *)

type scored_path = {
  path : Region.path;
  feats : Features.path_features;
  priority : float;
}

val score_region :
  ?compiled:bool ->
  Ir.Func.t -> Profile.Prof.t -> Gp.Expr.rexpr -> Region.t ->
  scored_path list
(** Evaluate the priority function on every path of a region (aggregate
    features are shared across the region).  By default the expression is
    compiled once through {!Gp.Evalc} and run as a batch over the region's
    path environments; [~compiled:false] keeps the {!Gp.Eval} tree-walker,
    the bit-identical executable reference. *)

val select :
  config:config -> machine:Machine.Config.t -> Ir.Func.t ->
  scored_path list -> scored_path list
(** Greedy selection in priority order under the cutoff and the
    IMPACT-style resource estimate; the top path is always taken (when
    its priority is positive). *)

val convert : Ir.Func.t -> Region.t -> Region.path list -> int
(** If-convert the selected paths into the region entry; returns the
    number of blocks merged (0 = nothing done). *)

type stats = {
  mutable regions_seen : int;
  mutable regions_formed : int;
  mutable blocks_merged : int;
  mutable paths_selected : int;
  mutable paths_total : int;
}

val run :
  ?config:config -> ?compiled:bool -> machine:Machine.Config.t ->
  prof:Profile.Prof.t -> priority:Gp.Expr.rexpr -> Ir.Func.program -> stats
(** Form hyperblocks over every function, re-discovering regions after
    each conversion; prunes unreachable blocks and renumbers.  [compiled]
    selects the {!Gp.Evalc} path (default) versus the {!Gp.Eval}
    tree-walker for priority evaluation; see {!score_region}. *)
