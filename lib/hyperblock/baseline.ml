(* Trimaran/IMPACT's baseline hyperblock-selection priority function,
   Equation (1) of the paper:

     h_i        = 0.25 if path_i contains a hazard, 1 otherwise
     d_ratio_i  = dep_height_i / max_j dep_height_j
     o_ratio_i  = num_ops_i / max_j num_ops_j
     priority_i = exec_ratio_i * h_i * (2.1 - d_ratio_i - o_ratio_i)

   Expressed in the GP expression language so it can seed the initial
   population, and so baseline and evolved heuristics run through exactly
   the same evaluator. *)

let source =
  "(mul exec_ratio (mul (tern (or has_pointer_deref has_unsafe_jsr) 0.25 \
   1.0) (sub (sub 2.1 d_ratio) o_ratio)))"

let expr : Gp.Expr.rexpr =
  Gp.Sexp.parse_real Features.feature_set source

let genome : Gp.Expr.genome = Gp.Expr.Real expr
