(* Memory layout and pre-resolution of an IR program for execution.

   The interpreter and the trace-driven simulator both execute prepared
   programs: labels resolved to block indices, blocks to arrays, globals
   and per-function spill frames assigned disjoint word addresses.  Every
   block and every static branch site gets a dense global id so observers
   can use plain arrays. *)

(* Pre-decoded instruction forms: everything the interpreter would
   otherwise look up per dynamic execution — the [Gaddr] hashtable probe,
   [Frame] base resolution through [func], callee resolution, the
   allocating variable-arity intrinsic dispatch, and the linear
   exit-site scan — is resolved once at prepare time.  Name-resolution
   failures decode to [Draise_*]/[Dtrap_arity] markers that raise the
   exact exception the reference interpreter would raise, and only when
   the instruction actually executes under a true guard. *)

type daddr = {
  dframe : int;   (* pre-resolved frame base; 0 for global/unknown space *)
  dbase : Ir.Types.operand;
  doffset : Ir.Types.operand;
}

type dinstr =
  | Dibin of Ir.Types.ibinop * int * Ir.Types.operand * Ir.Types.operand
  | Dfbin of Ir.Types.fbinop * int * Ir.Types.operand * Ir.Types.operand
  | Dfunop of Ir.Types.funop * int * Ir.Types.operand
  | Dicmp of Ir.Types.icmp * int * Ir.Types.operand * Ir.Types.operand
  | Dfcmp of Ir.Types.icmp * int * Ir.Types.operand * Ir.Types.operand
  | Dmov of int * Ir.Types.operand
  | Ditof of int * Ir.Types.operand
  | Dftoi of int * Ir.Types.operand
  | Dintrin1 of Ir.Types.intrinsic * int * Ir.Types.operand
  | Dintrin2 of Ir.Types.intrinsic * int * Ir.Types.operand * Ir.Types.operand
  | Dgaddr of int * float              (* pre-resolved global base *)
  | Dload of int * daddr
  | Dstore of daddr * Ir.Types.operand
  | Dprefetch of daddr
  | Dcall of int * int * Ir.Types.operand array  (* dest (-1: none), findex *)
  | Demit of Ir.Types.operand
  | Dpdef of Ir.Types.icmp * int * int * Ir.Types.operand * Ir.Types.operand
  | Dpclear of int
  | Dpset of Ir.Types.icmp * int * Ir.Types.operand * Ir.Types.operand
  | Dpor of Ir.Types.icmp * int * Ir.Types.operand * Ir.Types.operand
  | Dexit of int * int                 (* branch site uid, target index *)
  | Draise_notfound                    (* unknown global *)
  | Draise_invalid of string           (* unknown function/frame *)
  | Dtrap_arity                        (* intrinsic arity mismatch *)

type pblock = {
  uid : int;                         (* global block id *)
  label : Ir.Types.label;
  instrs : Ir.Instr.t array;
  term : Ir.Func.terminator;
  (* Resolved targets: index within the owning function's blocks. *)
  mutable term_targets : int * int;  (* (then/jmp, else); -1 when unused *)
  (* Exit instruction position -> target block index *)
  exit_targets : (int * int) array;
  (* Branch site id of the terminator, -1 if the terminator is not a
     conditional branch.  Exit instructions have their own site ids,
     aligned with [exit_targets]. *)
  branch_site : int;
  exit_sites : int array;
  (* Pre-decoded mirror of [instrs]; filled by a second pass of
     [prepare] once all frame bases, global bases and function indices
     are known. *)
  mutable dinstrs : dinstr array;
  mutable dguards : int array;
}

type pfunc = {
  f : Ir.Func.t;
  findex : int;
  blocks : pblock array;
  block_index : (Ir.Types.label, int) Hashtbl.t;
  n_regs : int;
  n_preds : int;
  frame_base : int;
}

type t = {
  prog : Ir.Func.program;
  funcs : pfunc array;
  func_index : (string, int) Hashtbl.t;
  global_base : (string, int) Hashtbl.t;
  memory_words : int;
  n_blocks : int;                    (* total across functions *)
  n_branch_sites : int;
  (* Reverse maps for reporting *)
  block_name : (string * Ir.Types.label) array;
  branch_name : (string * Ir.Types.label * int) array;
    (* (func, block, -1 for terminator | instr id for exits) *)
}

(* Second prepare pass: pre-decode a block's instructions.  Needs the
   completed [t] because frame bases, global bases and function indices
   span the whole program. *)
let decode_block (t : t) (b : pblock) =
  let n = Array.length b.instrs in
  let daddr (a : Ir.Instr.address) =
    match a.Ir.Instr.space with
    | Ir.Instr.Frame fname -> (
      match Hashtbl.find_opt t.func_index fname with
      | Some i ->
        Ok
          {
            dframe = t.funcs.(i).frame_base;
            dbase = a.Ir.Instr.base;
            doffset = a.Ir.Instr.offset;
          }
      | None -> Error ("Layout.func: unknown function " ^ fname))
    | Ir.Instr.Global _ | Ir.Instr.Unknown ->
      Ok { dframe = 0; dbase = a.Ir.Instr.base; doffset = a.Ir.Instr.offset }
  in
  let exit_of pos =
    let rec find k =
      if k >= Array.length b.exit_targets then
        invalid_arg "Layout.decode_block: exit without a recorded target"
      else if fst b.exit_targets.(k) = pos then
        (b.exit_sites.(k), snd b.exit_targets.(k))
      else find (k + 1)
    in
    find 0
  in
  let dinstrs = Array.make n Draise_notfound in
  let dguards = Array.make n 0 in
  Array.iteri
    (fun pos (i : Ir.Instr.t) ->
      dguards.(pos) <- i.Ir.Instr.guard;
      dinstrs.(pos) <-
        (match i.Ir.Instr.kind with
        | Ir.Instr.Ibin (op, d, a, bb) -> Dibin (op, d, a, bb)
        | Ir.Instr.Fbin (op, d, a, bb) -> Dfbin (op, d, a, bb)
        | Ir.Instr.Funop (op, d, a) -> Dfunop (op, d, a)
        | Ir.Instr.Icmp (c, d, a, bb) -> Dicmp (c, d, a, bb)
        | Ir.Instr.Fcmp (c, d, a, bb) -> Dfcmp (c, d, a, bb)
        | Ir.Instr.Mov (d, a) -> Dmov (d, a)
        | Ir.Instr.Itof (d, a) -> Ditof (d, a)
        | Ir.Instr.Ftoi (d, a) -> Dftoi (d, a)
        | Ir.Instr.Intrin (intr, d, args) -> (
          match (intr, args) with
          | (Ir.Types.Isin | Icos | Iexp | Ilog), [ a ] -> Dintrin1 (intr, d, a)
          | (Ir.Types.Imin | Imax | Ifmin | Ifmax), [ a; bb ] ->
            Dintrin2 (intr, d, a, bb)
          | _ -> Dtrap_arity)
        | Ir.Instr.Gaddr (d, g) -> (
          match Hashtbl.find_opt t.global_base g with
          | Some base -> Dgaddr (d, float_of_int base)
          | None -> Draise_notfound)
        | Ir.Instr.Load (d, a) -> (
          match daddr a with Ok da -> Dload (d, da) | Error m -> Draise_invalid m)
        | Ir.Instr.Store (a, v) -> (
          match daddr a with Ok da -> Dstore (da, v) | Error m -> Draise_invalid m)
        | Ir.Instr.Prefetch a -> (
          match daddr a with Ok da -> Dprefetch da | Error m -> Draise_invalid m)
        | Ir.Instr.Call (d, name, args, _) -> (
          match Hashtbl.find_opt t.func_index name with
          | Some fi ->
            Dcall
              ((match d with Some d -> d | None -> -1), fi, Array.of_list args)
          | None -> Draise_invalid ("Layout.func: unknown function " ^ name))
        | Ir.Instr.Emit v -> Demit v
        | Ir.Instr.Pdef (c, pt, pf, a, bb) -> Dpdef (c, pt, pf, a, bb)
        | Ir.Instr.Pclear p -> Dpclear p
        | Ir.Instr.Pset (c, p, a, bb) -> Dpset (c, p, a, bb)
        | Ir.Instr.Por (c, p, a, bb) -> Dpor (c, p, a, bb)
        | Ir.Instr.Exit _ ->
          let site, target = exit_of pos in
          Dexit (site, target)))
    b.instrs;
  b.dinstrs <- dinstrs;
  b.dguards <- dguards

let prepare (prog : Ir.Func.program) : t =
  let global_base = Hashtbl.create 16 in
  let next_addr = ref 0 in
  List.iter
    (fun (g : Ir.Func.global) ->
      Hashtbl.replace global_base g.gname !next_addr;
      next_addr := !next_addr + g.gsize)
    prog.globals;
  let block_uid = ref 0 in
  let branch_uid = ref 0 in
  let block_names = ref [] and branch_names = ref [] in
  let func_index = Hashtbl.create 16 in
  let funcs =
    Array.of_list
      (List.mapi
         (fun findex (f : Ir.Func.t) ->
           Hashtbl.replace func_index f.fname findex;
           let block_index = Hashtbl.create 16 in
           List.iteri
             (fun i (b : Ir.Func.block) ->
               Hashtbl.replace block_index b.blabel i)
             f.blocks;
           let frame_base = !next_addr in
           next_addr := !next_addr + max 0 f.frame_size;
           let blocks =
             Array.of_list
               (List.map
                  (fun (b : Ir.Func.block) ->
                    let uid = !block_uid in
                    incr block_uid;
                    block_names := (f.fname, b.blabel) :: !block_names;
                    let instrs = Array.of_list b.instrs in
                    let resolve l =
                      match Hashtbl.find_opt block_index l with
                      | Some i -> i
                      | None ->
                        invalid_arg
                          (Printf.sprintf "Layout.prepare: %s: unknown label %s"
                             f.fname l)
                    in
                    let term_targets =
                      match b.term with
                      | Ir.Func.Jmp l -> (resolve l, -1)
                      | Ir.Func.Br (_, l1, l2) -> (resolve l1, resolve l2)
                      | Ir.Func.Ret _ -> (-1, -1)
                    in
                    let branch_site =
                      match b.term with
                      | Ir.Func.Br _ ->
                        let s = !branch_uid in
                        incr branch_uid;
                        branch_names := (f.fname, b.blabel, -1) :: !branch_names;
                        s
                      | _ -> -1
                    in
                    let exits = ref [] in
                    Array.iteri
                      (fun pos (i : Ir.Instr.t) ->
                        match i.Ir.Instr.kind with
                        | Ir.Instr.Exit l ->
                          let s = !branch_uid in
                          incr branch_uid;
                          branch_names :=
                            (f.fname, b.blabel, i.Ir.Instr.id) :: !branch_names;
                          exits := (pos, resolve l, s) :: !exits
                        | _ -> ())
                      instrs;
                    let exits = List.rev !exits in
                    {
                      uid;
                      label = b.blabel;
                      instrs;
                      term = b.term;
                      term_targets;
                      exit_targets =
                        Array.of_list (List.map (fun (p, t, _) -> (p, t)) exits);
                      branch_site;
                      exit_sites =
                        Array.of_list (List.map (fun (_, _, s) -> s) exits);
                      dinstrs = [||];
                      dguards = [||];
                    })
                  f.blocks)
           in
           {
             f;
             findex;
             blocks;
             block_index;
             n_regs = f.next_reg;
             n_preds = f.next_pred;
             frame_base;
           })
         prog.funcs)
  in
  let t =
    {
      prog;
      funcs;
      func_index;
      global_base;
      memory_words = !next_addr;
      n_blocks = !block_uid;
      n_branch_sites = !branch_uid;
      block_name = Array.of_list (List.rev !block_names);
      branch_name = Array.of_list (List.rev !branch_names);
    }
  in
  Array.iter (fun pf -> Array.iter (decode_block t) pf.blocks) t.funcs;
  t

let func t name =
  match Hashtbl.find_opt t.func_index name with
  | Some i -> t.funcs.(i)
  | None -> invalid_arg ("Layout.func: unknown function " ^ name)

(* Dense id of a block identified by function name and label. *)
let block_uid_of t fname label =
  let pf = func t fname in
  match Hashtbl.find_opt pf.block_index label with
  | Some i -> pf.blocks.(i).uid
  | None ->
    invalid_arg
      (Printf.sprintf "Layout.block_uid_of: %s has no block %s" fname label)
