(* Memory layout and pre-resolution of an IR program for execution.

   The interpreter and the trace-driven simulator both execute prepared
   programs: labels resolved to block indices, blocks to arrays, globals
   and per-function spill frames assigned disjoint word addresses.  Every
   block and every static branch site gets a dense global id so observers
   can use plain arrays. *)

type pblock = {
  uid : int;                         (* global block id *)
  label : Ir.Types.label;
  instrs : Ir.Instr.t array;
  term : Ir.Func.terminator;
  (* Resolved targets: index within the owning function's blocks. *)
  mutable term_targets : int * int;  (* (then/jmp, else); -1 when unused *)
  (* Exit instruction position -> target block index *)
  exit_targets : (int * int) array;
  (* Branch site id of the terminator, -1 if the terminator is not a
     conditional branch.  Exit instructions have their own site ids,
     aligned with [exit_targets]. *)
  branch_site : int;
  exit_sites : int array;
}

type pfunc = {
  f : Ir.Func.t;
  findex : int;
  blocks : pblock array;
  block_index : (Ir.Types.label, int) Hashtbl.t;
  n_regs : int;
  n_preds : int;
  frame_base : int;
}

type t = {
  prog : Ir.Func.program;
  funcs : pfunc array;
  func_index : (string, int) Hashtbl.t;
  global_base : (string, int) Hashtbl.t;
  memory_words : int;
  n_blocks : int;                    (* total across functions *)
  n_branch_sites : int;
  (* Reverse maps for reporting *)
  block_name : (string * Ir.Types.label) array;
  branch_name : (string * Ir.Types.label * int) array;
    (* (func, block, -1 for terminator | instr id for exits) *)
}

let prepare (prog : Ir.Func.program) : t =
  let global_base = Hashtbl.create 16 in
  let next_addr = ref 0 in
  List.iter
    (fun (g : Ir.Func.global) ->
      Hashtbl.replace global_base g.gname !next_addr;
      next_addr := !next_addr + g.gsize)
    prog.globals;
  let block_uid = ref 0 in
  let branch_uid = ref 0 in
  let block_names = ref [] and branch_names = ref [] in
  let func_index = Hashtbl.create 16 in
  let funcs =
    Array.of_list
      (List.mapi
         (fun findex (f : Ir.Func.t) ->
           Hashtbl.replace func_index f.fname findex;
           let block_index = Hashtbl.create 16 in
           List.iteri
             (fun i (b : Ir.Func.block) ->
               Hashtbl.replace block_index b.blabel i)
             f.blocks;
           let frame_base = !next_addr in
           next_addr := !next_addr + max 0 f.frame_size;
           let blocks =
             Array.of_list
               (List.map
                  (fun (b : Ir.Func.block) ->
                    let uid = !block_uid in
                    incr block_uid;
                    block_names := (f.fname, b.blabel) :: !block_names;
                    let instrs = Array.of_list b.instrs in
                    let resolve l =
                      match Hashtbl.find_opt block_index l with
                      | Some i -> i
                      | None ->
                        invalid_arg
                          (Printf.sprintf "Layout.prepare: %s: unknown label %s"
                             f.fname l)
                    in
                    let term_targets =
                      match b.term with
                      | Ir.Func.Jmp l -> (resolve l, -1)
                      | Ir.Func.Br (_, l1, l2) -> (resolve l1, resolve l2)
                      | Ir.Func.Ret _ -> (-1, -1)
                    in
                    let branch_site =
                      match b.term with
                      | Ir.Func.Br _ ->
                        let s = !branch_uid in
                        incr branch_uid;
                        branch_names := (f.fname, b.blabel, -1) :: !branch_names;
                        s
                      | _ -> -1
                    in
                    let exits = ref [] in
                    Array.iteri
                      (fun pos (i : Ir.Instr.t) ->
                        match i.Ir.Instr.kind with
                        | Ir.Instr.Exit l ->
                          let s = !branch_uid in
                          incr branch_uid;
                          branch_names :=
                            (f.fname, b.blabel, i.Ir.Instr.id) :: !branch_names;
                          exits := (pos, resolve l, s) :: !exits
                        | _ -> ())
                      instrs;
                    let exits = List.rev !exits in
                    {
                      uid;
                      label = b.blabel;
                      instrs;
                      term = b.term;
                      term_targets;
                      exit_targets =
                        Array.of_list (List.map (fun (p, t, _) -> (p, t)) exits);
                      branch_site;
                      exit_sites =
                        Array.of_list (List.map (fun (_, _, s) -> s) exits);
                    })
                  f.blocks)
           in
           {
             f;
             findex;
             blocks;
             block_index;
             n_regs = f.next_reg;
             n_preds = f.next_pred;
             frame_base;
           })
         prog.funcs)
  in
  {
    prog;
    funcs;
    func_index;
    global_base;
    memory_words = !next_addr;
    n_blocks = !block_uid;
    n_branch_sites = !branch_uid;
    block_name = Array.of_list (List.rev !block_names);
    branch_name = Array.of_list (List.rev !branch_names);
  }

let func t name =
  match Hashtbl.find_opt t.func_index name with
  | Some i -> t.funcs.(i)
  | None -> invalid_arg ("Layout.func: unknown function " ^ name)

(* Dense id of a block identified by function name and label. *)
let block_uid_of t fname label =
  let pf = func t fname in
  match Hashtbl.find_opt pf.block_index label with
  | Some i -> pf.blocks.(i).uid
  | None ->
    invalid_arg
      (Printf.sprintf "Layout.block_uid_of: %s has no block %s" fname label)
