(** Per-site 2-bit saturating-counter branch predictor, the predictor the
    paper adds to Trimaran's simulator.  Counters start weakly taken. *)

type t = {
  counters : int array;
  mutable branches : int;
  mutable mispredicts : int;
}

val create : n_sites:int -> t

val observe : t -> site:int -> taken:bool -> bool
(** Record an outcome; returns whether the prediction was wrong. *)

val mispredict_rate : t -> float
