(* Per-site 2-bit saturating-counter branch predictor (the predictor the
   paper adds to Trimaran's simulator).  Counter states 0-1 predict
   not-taken, 2-3 predict taken; counters start weakly taken. *)

type t = {
  counters : int array;      (* one per static branch site *)
  mutable branches : int;
  mutable mispredicts : int;
}

let create ~n_sites = { counters = Array.make (max 1 n_sites) 2; branches = 0;
                        mispredicts = 0 }

let observe (t : t) ~site ~taken : bool (* mispredicted? *) =
  t.branches <- t.branches + 1;
  let c = t.counters.(site) in
  let predicted_taken = c >= 2 in
  let mispredict = predicted_taken <> taken in
  if mispredict then t.mispredicts <- t.mispredicts + 1;
  t.counters.(site) <-
    (if taken then min 3 (c + 1) else max 0 (c - 1));
  mispredict

let mispredict_rate t =
  if t.branches = 0 then 0.0
  else float_of_int t.mispredicts /. float_of_int t.branches
