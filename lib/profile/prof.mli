(** Execution profiling: block and edge counts, branch bias, and the
    per-branch 2-bit-predictor predictability statistics the paper adds to
    Trimaran's profiler. *)

type branch_stats = {
  executions : int;
  taken : int;
  mispredicts : int;   (** under an online 2-bit counter *)
}

type t = {
  layout : Layout.t;
  block_counts : int array;                  (** by global block uid *)
  edge_counts : (int * int, int) Hashtbl.t;  (** (from uid, to uid) *)
  branch : branch_stats array;               (** by branch site *)
  total_steps : int;
}

val collect :
  ?fuel:int -> ?overrides:(string * float array) list -> Layout.t -> t
(** One profiling run on the given dataset. *)

val block_count : t -> fname:string -> label:Ir.Types.label -> int

val edge_count :
  t -> fname:string -> from_label:Ir.Types.label -> to_label:Ir.Types.label -> int

val edge_prob :
  t -> fname:string -> from_label:Ir.Types.label -> to_label:Ir.Types.label ->
  float
(** Probability of the edge given control reaches [from_label]; 0.5 when
    the source block never executed. *)

val term_branch_stats :
  t -> fname:string -> label:Ir.Types.label -> branch_stats option
(** Stats of a block's conditional terminator, if it has one. *)

val predictability : branch_stats -> float
(** Fraction of executions the 2-bit counter predicted correctly; 1.0 for
    never-executed branches. *)

val taken_bias : branch_stats -> float
