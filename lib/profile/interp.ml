(* Reference interpreter for the predicated IR.

   Registers and memory cells hold floats; integer values are stored as
   exact floats (benchmark integers stay far below 2^53).  Integer
   division and remainder by zero yield zero, so every well-formed program
   is total — candidate compilations may only differ from the baseline in
   speed, never in definedness.

   An [observer] receives the dynamic events the profiler and the machine
   simulator need: block entries, branch outcomes at static branch sites,
   and memory accesses with resolved word addresses. *)

type mem_kind = Mload | Mstore | Mprefetch

type observer = {
  block_enter : int -> unit;             (* global block uid *)
  branch : int -> bool -> unit;          (* branch site uid, taken *)
  mem : mem_kind -> int -> unit;         (* resolved word address *)
  call : int -> unit;                    (* callee function index *)
}

let null_observer =
  {
    block_enter = ignore;
    branch = (fun _ _ -> ());
    mem = (fun _ _ -> ());
    call = ignore;
  }

type result = {
  output : float list;                   (* emitted values, in order *)
  return_value : float;
  steps : int;
      (* dynamic instruction slots issued: every entered block charges its
         full instruction count, whether or not a taken side exit cuts the
         visit short.  Block composition is schedule-invariant (the
         scheduler only permutes within blocks), so this count is
         identical across schedules of the same program — which is what
         lets a recorded trace report it during cross-schedule replay. *)
}

exception Out_of_fuel
exception Trap of string

let checksum output =
  (* An order-sensitive checksum of the emitted values, for comparing
     baseline and transformed compilations. *)
  List.fold_left
    (fun acc v ->
      let bits = Int64.to_int (Int64.of_float (v *. 65536.0)) in
      (acc * 31) + bits land 0x3FFFFFFFFFFFFF)
    17 output

type state = {
  layout : Layout.t;
  memory : float array;
  obs : observer;
  mutable fuel : int;
  mutable out_rev : float list;
  mutable steps : int;
  tok : Gp.Cancel.token;  (* the supervising pool's cancellation token *)
  mutable poll : int;  (* block entries until the next token check *)
}

let ( .%() ) m a =
  if a < 0 || a >= Array.length m then
    raise (Trap (Printf.sprintf "memory access out of bounds: %d" a))
  else m.(a)

let ( .%()<- ) m a v =
  if a < 0 || a >= Array.length m then
    raise (Trap (Printf.sprintf "memory store out of bounds: %d" a))
  else m.(a) <- v

let eval_ibin op a b =
  match op with
  | Ir.Types.Add -> a + b
  | Ir.Types.Sub -> a - b
  | Ir.Types.Mul -> a * b
  | Ir.Types.Div -> if b = 0 then 0 else a / b
  | Ir.Types.Rem -> if b = 0 then 0 else a mod b
  | Ir.Types.Band -> a land b
  | Ir.Types.Bor -> a lor b
  | Ir.Types.Bxor -> a lxor b
  | Ir.Types.Shl -> a lsl (b land 63)
  | Ir.Types.Shr -> a asr (b land 63)

let eval_icmp c a b =
  match c with
  | Ir.Types.Ceq -> a = b
  | Ir.Types.Cne -> a <> b
  | Ir.Types.Clt -> a < b
  | Ir.Types.Cle -> a <= b
  | Ir.Types.Cgt -> a > b
  | Ir.Types.Cge -> a >= b

let eval_fcmp c (a : float) (b : float) =
  match c with
  | Ir.Types.Ceq -> a = b
  | Ir.Types.Cne -> a <> b
  | Ir.Types.Clt -> a < b
  | Ir.Types.Cle -> a <= b
  | Ir.Types.Cgt -> a > b
  | Ir.Types.Cge -> a >= b

let eval_fbin op a b =
  match op with
  | Ir.Types.Fadd -> a +. b
  | Ir.Types.Fsub -> a -. b
  | Ir.Types.Fmul -> a *. b
  | Ir.Types.Fdiv -> if b = 0.0 then 0.0 else a /. b

let eval_intrin i (args : float list) =
  match (i, args) with
  | Ir.Types.Isin, [ x ] -> sin x
  | Ir.Types.Icos, [ x ] -> cos x
  | Ir.Types.Iexp, [ x ] -> exp (Float.min x 700.0)
  | Ir.Types.Ilog, [ x ] -> if x <= 0.0 then 0.0 else log x
  | Ir.Types.Imin, [ a; b ] ->
    float_of_int (min (int_of_float a) (int_of_float b))
  | Ir.Types.Imax, [ a; b ] ->
    float_of_int (max (int_of_float a) (int_of_float b))
  | Ir.Types.Ifmin, [ a; b ] -> Float.min a b
  | Ir.Types.Ifmax, [ a; b ] -> Float.max a b
  | _ -> raise (Trap "intrinsic arity mismatch")

(* Execute one function; returns its return value. *)
let rec exec_func (st : state) (pf : Layout.pfunc) (args : float array) : float
    =
  let regs = Array.make (max 1 pf.Layout.n_regs) 0.0 in
  let preds = Array.make (max 1 pf.Layout.n_preds) false in
  preds.(Ir.Types.p_true) <- true;
  Array.iteri (fun i v -> regs.(i + 1) <- v) args;
  let ev = function
    | Ir.Types.Reg r -> regs.(r)
    | Ir.Types.Imm k -> float_of_int k
    | Ir.Types.Fimm f -> f
  in
  let evi o = int_of_float (ev o) in
  let addr_of (a : Ir.Instr.address) =
    let base =
      match a.Ir.Instr.space with
      | Ir.Instr.Frame fname ->
        (Layout.func st.layout fname).Layout.frame_base + evi a.Ir.Instr.base
      | Ir.Instr.Global _ | Ir.Instr.Unknown -> evi a.Ir.Instr.base
    in
    base + evi a.Ir.Instr.offset
  in
  let return_value = ref 0.0 in
  let rec run_block (bi : int) : unit =
    let b = pf.Layout.blocks.(bi) in
    (* Charge fuel per block entry as well as per instruction, so empty
       infinite loops still run out of fuel. *)
    st.fuel <- st.fuel - 1;
    if st.fuel <= 0 then raise Out_of_fuel;
    (* Cancellation safepoint, identical in both engines (a decrement
       and a compare; the token is really checked every
       [Cancel.poll_interval] block entries). *)
    st.poll <- st.poll - 1;
    if st.poll <= 0 then begin
      st.poll <- Gp.Cancel.poll_interval;
      Gp.Cancel.check st.tok
    end;
    st.obs.block_enter b.Layout.uid;
    let n = Array.length b.Layout.instrs in
    (* Whole-block issue count: schedule-invariant (see [result.steps]),
       unlike counting only the slots visited before a taken exit. *)
    st.steps <- st.steps + n;
    let next = ref `Fallthrough in
    let pc = ref 0 in
    while !next = `Fallthrough && !pc < n do
      let i = b.Layout.instrs.(!pc) in
      st.fuel <- st.fuel - 1;
      if st.fuel <= 0 then raise Out_of_fuel;
      if preds.(i.Ir.Instr.guard) then begin
        (match i.Ir.Instr.kind with
        | Ir.Instr.Ibin (op, d, a, bb) ->
          regs.(d) <- float_of_int (eval_ibin op (evi a) (evi bb))
        | Ir.Instr.Fbin (op, d, a, bb) -> regs.(d) <- eval_fbin op (ev a) (ev bb)
        | Ir.Instr.Funop (op, d, a) ->
          regs.(d) <-
            (match op with
            | Ir.Types.Fneg -> -.ev a
            | Ir.Types.Fabs -> Float.abs (ev a)
            | Ir.Types.Fsqrt -> sqrt (Float.abs (ev a)))
        | Ir.Instr.Icmp (c, d, a, bb) ->
          regs.(d) <- (if eval_icmp c (evi a) (evi bb) then 1.0 else 0.0)
        | Ir.Instr.Fcmp (c, d, a, bb) ->
          regs.(d) <- (if eval_fcmp c (ev a) (ev bb) then 1.0 else 0.0)
        | Ir.Instr.Mov (d, a) -> regs.(d) <- ev a
        | Ir.Instr.Itof (d, a) -> regs.(d) <- ev a
        | Ir.Instr.Ftoi (d, a) -> regs.(d) <- Float.of_int (int_of_float (ev a))
        | Ir.Instr.Intrin (intr, d, args) ->
          regs.(d) <- eval_intrin intr (List.map ev args)
        | Ir.Instr.Gaddr (d, g) ->
          regs.(d) <-
            float_of_int (Hashtbl.find st.layout.Layout.global_base g)
        | Ir.Instr.Load (d, a) ->
          let addr = addr_of a in
          st.obs.mem Mload addr;
          regs.(d) <- st.memory.%(addr)
        | Ir.Instr.Store (a, v) ->
          let addr = addr_of a in
          st.obs.mem Mstore addr;
          st.memory.%(addr) <- ev v
        | Ir.Instr.Prefetch a ->
          (* No architectural effect; the cache model sees the access. *)
          let addr = addr_of a in
          if addr >= 0 && addr < Array.length st.memory then
            st.obs.mem Mprefetch addr
        | Ir.Instr.Call (d, name, args, _) ->
          let argv = Array.of_list (List.map ev args) in
          let callee = Layout.func st.layout name in
          st.obs.call callee.Layout.findex;
          let res = exec_func st callee argv in
          (match d with Some d -> regs.(d) <- res | None -> ())
        | Ir.Instr.Emit v -> st.out_rev <- ev v :: st.out_rev
        | Ir.Instr.Pdef (c, pt, pf_, a, bb) ->
          let v = eval_icmp c (evi a) (evi bb) in
          preds.(pt) <- v;
          preds.(pf_) <- not v
        | Ir.Instr.Pclear p -> preds.(p) <- false
        | Ir.Instr.Pset (c, p, a, bb) ->
          preds.(p) <- eval_icmp c (evi a) (evi bb)
        | Ir.Instr.Por (c, p, a, bb) ->
          if eval_icmp c (evi a) (evi bb) then preds.(p) <- true
        | Ir.Instr.Exit _ -> ());
        (* Taken side exits transfer control. *)
        match i.Ir.Instr.kind with
        | Ir.Instr.Exit _ ->
          let site =
            let rec find k =
              if k >= Array.length b.Layout.exit_targets then -1
              else if fst b.Layout.exit_targets.(k) = !pc then k
              else find (k + 1)
            in
            find 0
          in
          assert (site >= 0);
          st.obs.branch b.Layout.exit_sites.(site) true;
          next := `Goto (snd b.Layout.exit_targets.(site))
        | _ -> incr pc
      end
      else begin
        (* Nullified instruction; unconditional-form compares still clear
           their target, and a predicated-off exit is a not-taken branch
           for the predictor. *)
        (match i.Ir.Instr.kind with
        | Ir.Instr.Pset (_, p, _, _) -> preds.(p) <- false
        | Ir.Instr.Exit _ ->
          let site =
            let rec find k =
              if k >= Array.length b.Layout.exit_targets then -1
              else if fst b.Layout.exit_targets.(k) = !pc then k
              else find (k + 1)
            in
            find 0
          in
          if site >= 0 then st.obs.branch b.Layout.exit_sites.(site) false
        | _ -> ());
        incr pc
      end
    done;
    match !next with
    | `Goto bi' -> run_block bi'
    | `Fallthrough -> (
      match b.Layout.term with
      | Ir.Func.Jmp _ -> run_block (fst b.Layout.term_targets)
      | Ir.Func.Br (c, _, _) ->
        let taken = ev c <> 0.0 in
        st.obs.branch b.Layout.branch_site taken;
        run_block
          (if taken then fst b.Layout.term_targets
           else snd b.Layout.term_targets)
      | Ir.Func.Ret v ->
        return_value := (match v with Some v -> ev v | None -> 0.0))
  in
  run_block 0;
  !return_value

(* Fast engine: executes the pre-decoded mirror that [Layout.prepare]
   builds.  Must stay observably bit-identical to [exec_func] above —
   same register/predicate/memory updates, same observer event order,
   same fuel and step accounting, same exceptions at the same points. *)
let rec exec_fast (st : state) (pf : Layout.pfunc) (args : float array) : float
    =
  let regs = Array.make (max 1 pf.Layout.n_regs) 0.0 in
  let preds = Array.make (max 1 pf.Layout.n_preds) false in
  preds.(Ir.Types.p_true) <- true;
  Array.iteri (fun i v -> regs.(i + 1) <- v) args;
  let ev = function
    | Ir.Types.Reg r -> regs.(r)
    | Ir.Types.Imm k -> float_of_int k
    | Ir.Types.Fimm f -> f
  in
  let evi o = int_of_float (ev o) in
  let return_value = ref 0.0 in
  let bi = ref 0 in
  let running = ref true in
  while !running do
    let b = pf.Layout.blocks.(!bi) in
    st.fuel <- st.fuel - 1;
    if st.fuel <= 0 then raise Out_of_fuel;
    (* Cancellation safepoint — same cadence and position as the
       tree-walking engine's, so both engines observe a deadline at the
       same block entry. *)
    st.poll <- st.poll - 1;
    if st.poll <= 0 then begin
      st.poll <- Gp.Cancel.poll_interval;
      Gp.Cancel.check st.tok
    end;
    st.obs.block_enter b.Layout.uid;
    let dinstrs = b.Layout.dinstrs and dguards = b.Layout.dguards in
    let n = Array.length dinstrs in
    (* Whole-block issue count, matching the tree-walking engine. *)
    st.steps <- st.steps + n;
    let next = ref (-1) in
    let pc = ref 0 in
    while !next < 0 && !pc < n do
      st.fuel <- st.fuel - 1;
      if st.fuel <= 0 then raise Out_of_fuel;
      (if preds.(dguards.(!pc)) then
         match dinstrs.(!pc) with
         | Layout.Dibin (op, d, a, bb) ->
           regs.(d) <- float_of_int (eval_ibin op (evi a) (evi bb))
         | Layout.Dfbin (op, d, a, bb) -> regs.(d) <- eval_fbin op (ev a) (ev bb)
         | Layout.Dfunop (op, d, a) ->
           regs.(d) <-
             (match op with
             | Ir.Types.Fneg -> -.ev a
             | Ir.Types.Fabs -> Float.abs (ev a)
             | Ir.Types.Fsqrt -> sqrt (Float.abs (ev a)))
         | Layout.Dicmp (c, d, a, bb) ->
           regs.(d) <- (if eval_icmp c (evi a) (evi bb) then 1.0 else 0.0)
         | Layout.Dfcmp (c, d, a, bb) ->
           regs.(d) <- (if eval_fcmp c (ev a) (ev bb) then 1.0 else 0.0)
         | Layout.Dmov (d, a) -> regs.(d) <- ev a
         | Layout.Ditof (d, a) -> regs.(d) <- ev a
         | Layout.Dftoi (d, a) -> regs.(d) <- Float.of_int (int_of_float (ev a))
         | Layout.Dintrin1 (intr, d, a) ->
           regs.(d) <-
             (match intr with
             | Ir.Types.Isin -> sin (ev a)
             | Ir.Types.Icos -> cos (ev a)
             | Ir.Types.Iexp -> exp (Float.min (ev a) 700.0)
             | Ir.Types.Ilog ->
               let x = ev a in
               if x <= 0.0 then 0.0 else log x
             | _ -> raise (Trap "intrinsic arity mismatch"))
         | Layout.Dintrin2 (intr, d, a, bb) ->
           regs.(d) <-
             (match intr with
             | Ir.Types.Imin ->
               float_of_int (min (int_of_float (ev a)) (int_of_float (ev bb)))
             | Ir.Types.Imax ->
               float_of_int (max (int_of_float (ev a)) (int_of_float (ev bb)))
             | Ir.Types.Ifmin -> Float.min (ev a) (ev bb)
             | Ir.Types.Ifmax -> Float.max (ev a) (ev bb)
             | _ -> raise (Trap "intrinsic arity mismatch"))
         | Layout.Dgaddr (d, base) -> regs.(d) <- base
         | Layout.Dload (d, a) ->
           let addr = a.Layout.dframe + evi a.Layout.dbase + evi a.Layout.doffset in
           st.obs.mem Mload addr;
           regs.(d) <- st.memory.%(addr)
         | Layout.Dstore (a, v) ->
           let addr = a.Layout.dframe + evi a.Layout.dbase + evi a.Layout.doffset in
           st.obs.mem Mstore addr;
           st.memory.%(addr) <- ev v
         | Layout.Dprefetch a ->
           let addr = a.Layout.dframe + evi a.Layout.dbase + evi a.Layout.doffset in
           if addr >= 0 && addr < Array.length st.memory then
             st.obs.mem Mprefetch addr
         | Layout.Dcall (d, fi, cargs) ->
           let argv = Array.map ev cargs in
           st.obs.call fi;
           let res = exec_fast st st.layout.Layout.funcs.(fi) argv in
           if d >= 0 then regs.(d) <- res
         | Layout.Demit v -> st.out_rev <- ev v :: st.out_rev
         | Layout.Dpdef (c, pt, pf_, a, bb) ->
           let v = eval_icmp c (evi a) (evi bb) in
           preds.(pt) <- v;
           preds.(pf_) <- not v
         | Layout.Dpclear p -> preds.(p) <- false
         | Layout.Dpset (c, p, a, bb) -> preds.(p) <- eval_icmp c (evi a) (evi bb)
         | Layout.Dpor (c, p, a, bb) ->
           if eval_icmp c (evi a) (evi bb) then preds.(p) <- true
         | Layout.Dexit (site, target) ->
           st.obs.branch site true;
           next := target
         | Layout.Draise_notfound -> raise Not_found
         | Layout.Draise_invalid m -> invalid_arg m
         | Layout.Dtrap_arity -> raise (Trap "intrinsic arity mismatch")
       else
         match dinstrs.(!pc) with
         | Layout.Dpset (_, p, _, _) -> preds.(p) <- false
         | Layout.Dexit (site, _) -> st.obs.branch site false
         | _ -> ());
      if !next < 0 then incr pc
    done;
    if !next >= 0 then bi := !next
    else
      match b.Layout.term with
      | Ir.Func.Jmp _ -> bi := fst b.Layout.term_targets
      | Ir.Func.Br (c, _, _) ->
        let taken = ev c <> 0.0 in
        st.obs.branch b.Layout.branch_site taken;
        bi :=
          (if taken then fst b.Layout.term_targets
           else snd b.Layout.term_targets)
      | Ir.Func.Ret v ->
        return_value := (match v with Some v -> ev v | None -> 0.0);
        running := false
  done;
  !return_value

(* Run a program.  [overrides] replaces the initial contents of named
   globals (benchmark datasets).  [fuel] bounds dynamic instructions. *)
let run_with exec ?(observer = null_observer) ?(fuel = 30_000_000)
    ?(overrides : (string * float array) list = []) (layout : Layout.t) :
    result =
  let memory = Array.make (max 1 layout.Layout.memory_words) 0.0 in
  List.iter
    (fun (g : Ir.Func.global) ->
      let base = Hashtbl.find layout.Layout.global_base g.gname in
      Array.iteri (fun i v -> memory.(base + i) <- v) g.ginit)
    layout.Layout.prog.Ir.Func.globals;
  List.iter
    (fun (name, data) ->
      match Hashtbl.find_opt layout.Layout.global_base name with
      | None -> invalid_arg ("Interp.run: override of unknown global " ^ name)
      | Some base ->
        let g = Ir.Func.find_global layout.Layout.prog name in
        if Array.length data > g.Ir.Func.gsize then
          invalid_arg ("Interp.run: override too large for " ^ name);
        Array.iteri (fun i v -> memory.(base + i) <- v) data)
    overrides;
  let st =
    {
      layout;
      memory;
      obs = observer;
      fuel;
      out_rev = [];
      steps = 0;
      tok = Gp.Cancel.current ();
      poll = Gp.Cancel.poll_interval;
    }
  in
  let main = Layout.func layout layout.Layout.prog.Ir.Func.main in
  let ret = exec st main [||] in
  { output = List.rev st.out_rev; return_value = ret; steps = st.steps }

let run ?observer ?fuel ?overrides layout =
  run_with exec_fast ?observer ?fuel ?overrides layout

let run_reference ?observer ?fuel ?overrides layout =
  run_with exec_func ?observer ?fuel ?overrides layout
