(* Execution profiling.

   Runs a program once on its training input and collects the statistics
   the optimization passes consume: block execution counts, edge counts
   (for path frequency estimation), per-branch taken bias, and per-branch
   2-bit-predictor mispredict rates (the "branch predictability statistics"
   the paper adds to Trimaran's profiler). *)

type branch_stats = {
  executions : int;
  taken : int;
  mispredicts : int;
}

type t = {
  layout : Layout.t;
  block_counts : int array;                   (* by global block uid *)
  edge_counts : (int * int, int) Hashtbl.t;   (* (from uid, to uid) *)
  branch : branch_stats array;                (* by branch site *)
  total_steps : int;
}

let collect ?(fuel = 30_000_000) ?(overrides = []) (layout : Layout.t) : t =
  let block_counts = Array.make (max 1 layout.Layout.n_blocks) 0 in
  let edge_counts = Hashtbl.create 256 in
  let n_sites = max 1 layout.Layout.n_branch_sites in
  let executions = Array.make n_sites 0 in
  let taken_counts = Array.make n_sites 0 in
  let predictor = Predictor.create ~n_sites in
  let mispredict_counts = Array.make n_sites 0 in
  let last_block = ref (-1) in
  let observer =
    {
      Interp.block_enter =
        (fun uid ->
          block_counts.(uid) <- block_counts.(uid) + 1;
          if !last_block >= 0 then begin
            let key = (!last_block, uid) in
            Hashtbl.replace edge_counts key
              (1 + Option.value ~default:0 (Hashtbl.find_opt edge_counts key))
          end;
          last_block := uid);
      branch =
        (fun site taken ->
          executions.(site) <- executions.(site) + 1;
          if taken then taken_counts.(site) <- taken_counts.(site) + 1;
          if Predictor.observe predictor ~site ~taken then
            mispredict_counts.(site) <- mispredict_counts.(site) + 1);
      mem = (fun _ _ -> ());
      call = ignore;
    }
  in
  let res = Interp.run ~observer ~fuel ~overrides layout in
  {
    layout;
    block_counts;
    edge_counts;
    branch =
      Array.init n_sites (fun i ->
          {
            executions = executions.(i);
            taken = taken_counts.(i);
            mispredicts = mispredict_counts.(i);
          });
    total_steps = res.Interp.steps;
  }

let block_count (t : t) ~fname ~label =
  t.block_counts.(Layout.block_uid_of t.layout fname label)

let edge_count (t : t) ~fname ~from_label ~to_label =
  let a = Layout.block_uid_of t.layout fname from_label
  and b = Layout.block_uid_of t.layout fname to_label in
  Option.value ~default:0 (Hashtbl.find_opt t.edge_counts (a, b))

(* Probability that control flows [from_label] -> [to_label] given it
   reaches [from_label]; 0.5 when the block was never executed. *)
let edge_prob (t : t) ~fname ~from_label ~to_label =
  let from_count = block_count t ~fname ~label:from_label in
  if from_count = 0 then 0.5
  else
    float_of_int (edge_count t ~fname ~from_label ~to_label)
    /. float_of_int from_count

(* Stats of a block's terminating conditional branch, if any. *)
let term_branch_stats (t : t) ~fname ~label : branch_stats option =
  let pf = Layout.func t.layout fname in
  match Hashtbl.find_opt pf.Layout.block_index label with
  | None -> None
  | Some bi ->
    let b = pf.Layout.blocks.(bi) in
    if b.Layout.branch_site >= 0 then Some t.branch.(b.Layout.branch_site)
    else None

(* Predictability of a branch: fraction of executions correctly predicted
   by the 2-bit counter; 1.0 for never-executed branches. *)
let predictability (bs : branch_stats) =
  if bs.executions = 0 then 1.0
  else
    1.0 -. (float_of_int bs.mispredicts /. float_of_int bs.executions)

let taken_bias (bs : branch_stats) =
  if bs.executions = 0 then 0.5
  else float_of_int bs.taken /. float_of_int bs.executions
