(** Reference interpreter for the predicated IR.

    Registers and memory hold floats; integers are stored exactly.
    Integer division and remainder by zero yield zero, so well-formed
    programs are total: candidate compilations may differ from the
    baseline only in speed, never in definedness. *)

type mem_kind = Mload | Mstore | Mprefetch

(** Dynamic-event callbacks consumed by the profiler and the timing
    simulator. *)
type observer = {
  block_enter : int -> unit;       (** global block uid *)
  branch : int -> bool -> unit;    (** branch site uid, taken *)
  mem : mem_kind -> int -> unit;   (** resolved word address *)
  call : int -> unit;              (** callee function index, after the
                                       arguments are evaluated and before
                                       the callee's first block *)
}

val null_observer : observer

type result = {
  output : float list;   (** emitted values, in order *)
  return_value : float;
  steps : int;           (** dynamic instructions executed *)
}

exception Out_of_fuel
exception Trap of string
(** Out-of-bounds memory access or intrinsic misuse. *)

val checksum : float list -> int
(** Order-sensitive checksum of a program's output, used to compare
    baseline and transformed compilations. *)

val run :
  ?observer:observer -> ?fuel:int ->
  ?overrides:(string * float array) list -> Layout.t -> result
(** Execute a prepared program from [main] with the pre-decoded fast
    engine (bit-identical to {!run_reference} in results, observer event
    stream, fuel and step accounting, and raised exceptions).
    [overrides] replaces the initial contents of named globals (benchmark
    datasets); [fuel] bounds dynamic instructions and block entries.

    @raise Out_of_fuel when the fuel budget is exhausted.
    @raise Trap on out-of-bounds accesses. *)

val run_reference :
  ?observer:observer -> ?fuel:int ->
  ?overrides:(string * float array) list -> Layout.t -> result
(** The original tree-walking interpreter over [Ir.Instr.t]; the golden
    semantics the fast engine is checked against. *)
