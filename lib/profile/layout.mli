(** Memory layout and pre-resolution of an IR program for execution.

    The interpreter and the timing simulator execute prepared programs:
    labels resolved to block indices, globals and per-function spill
    frames assigned disjoint word addresses, and every block and static
    branch site given a dense global id so observers can use arrays. *)

(** Pre-decoded instruction forms.  Everything the interpreter would
    otherwise resolve per dynamic instruction — global bases, frame
    bases, callee indices, intrinsic arity, exit sites — is folded in at
    prepare time.  Unresolvable names decode to markers that raise the
    reference interpreter's exact exception, and only on execution. *)

type daddr = {
  dframe : int;  (** pre-resolved frame base; 0 for global/unknown space *)
  dbase : Ir.Types.operand;
  doffset : Ir.Types.operand;
}

type dinstr =
  | Dibin of Ir.Types.ibinop * int * Ir.Types.operand * Ir.Types.operand
  | Dfbin of Ir.Types.fbinop * int * Ir.Types.operand * Ir.Types.operand
  | Dfunop of Ir.Types.funop * int * Ir.Types.operand
  | Dicmp of Ir.Types.icmp * int * Ir.Types.operand * Ir.Types.operand
  | Dfcmp of Ir.Types.icmp * int * Ir.Types.operand * Ir.Types.operand
  | Dmov of int * Ir.Types.operand
  | Ditof of int * Ir.Types.operand
  | Dftoi of int * Ir.Types.operand
  | Dintrin1 of Ir.Types.intrinsic * int * Ir.Types.operand
  | Dintrin2 of Ir.Types.intrinsic * int * Ir.Types.operand * Ir.Types.operand
  | Dgaddr of int * float              (** pre-resolved global base *)
  | Dload of int * daddr
  | Dstore of daddr * Ir.Types.operand
  | Dprefetch of daddr
  | Dcall of int * int * Ir.Types.operand array
      (** dest reg (-1: none), callee function index, args *)
  | Demit of Ir.Types.operand
  | Dpdef of Ir.Types.icmp * int * int * Ir.Types.operand * Ir.Types.operand
  | Dpclear of int
  | Dpset of Ir.Types.icmp * int * Ir.Types.operand * Ir.Types.operand
  | Dpor of Ir.Types.icmp * int * Ir.Types.operand * Ir.Types.operand
  | Dexit of int * int                 (** branch site uid, target index *)
  | Draise_notfound                    (** unknown global *)
  | Draise_invalid of string           (** unknown function/frame *)
  | Dtrap_arity                        (** intrinsic arity mismatch *)

type pblock = {
  uid : int;                          (** global block id *)
  label : Ir.Types.label;
  instrs : Ir.Instr.t array;
  term : Ir.Func.terminator;
  mutable term_targets : int * int;   (** resolved; -1 when unused *)
  exit_targets : (int * int) array;   (** (instr position, target) *)
  branch_site : int;                  (** -1 if the terminator is not Br *)
  exit_sites : int array;             (** aligned with [exit_targets] *)
  mutable dinstrs : dinstr array;     (** pre-decoded mirror of [instrs] *)
  mutable dguards : int array;        (** guards aligned with [dinstrs] *)
}

type pfunc = {
  f : Ir.Func.t;
  findex : int;
  blocks : pblock array;
  block_index : (Ir.Types.label, int) Hashtbl.t;
  n_regs : int;
  n_preds : int;
  frame_base : int;
}

type t = {
  prog : Ir.Func.program;
  funcs : pfunc array;
  func_index : (string, int) Hashtbl.t;
  global_base : (string, int) Hashtbl.t;
  memory_words : int;
  n_blocks : int;
  n_branch_sites : int;
  block_name : (string * Ir.Types.label) array;        (** uid -> name *)
  branch_name : (string * Ir.Types.label * int) array;
      (** site -> (function, block, -1 for terminator | instr id) *)
}

val prepare : Ir.Func.program -> t
(** Snapshot; invalidated by any transformation of the program. *)

val func : t -> string -> pfunc
(** @raise Invalid_argument on an unknown function. *)

val block_uid_of : t -> string -> Ir.Types.label -> int
(** @raise Invalid_argument on an unknown block. *)
