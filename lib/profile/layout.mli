(** Memory layout and pre-resolution of an IR program for execution.

    The interpreter and the timing simulator execute prepared programs:
    labels resolved to block indices, globals and per-function spill
    frames assigned disjoint word addresses, and every block and static
    branch site given a dense global id so observers can use arrays. *)

type pblock = {
  uid : int;                          (** global block id *)
  label : Ir.Types.label;
  instrs : Ir.Instr.t array;
  term : Ir.Func.terminator;
  mutable term_targets : int * int;   (** resolved; -1 when unused *)
  exit_targets : (int * int) array;   (** (instr position, target) *)
  branch_site : int;                  (** -1 if the terminator is not Br *)
  exit_sites : int array;             (** aligned with [exit_targets] *)
}

type pfunc = {
  f : Ir.Func.t;
  findex : int;
  blocks : pblock array;
  block_index : (Ir.Types.label, int) Hashtbl.t;
  n_regs : int;
  n_preds : int;
  frame_base : int;
}

type t = {
  prog : Ir.Func.program;
  funcs : pfunc array;
  func_index : (string, int) Hashtbl.t;
  global_base : (string, int) Hashtbl.t;
  memory_words : int;
  n_blocks : int;
  n_branch_sites : int;
  block_name : (string * Ir.Types.label) array;        (** uid -> name *)
  branch_name : (string * Ir.Types.label * int) array;
      (** site -> (function, block, -1 for terminator | instr id) *)
}

val prepare : Ir.Func.program -> t
(** Snapshot; invalidated by any transformation of the program. *)

val func : t -> string -> pfunc
(** @raise Invalid_argument on an unknown function. *)

val block_uid_of : t -> string -> Ir.Types.label -> int
(** @raise Invalid_argument on an unknown block. *)
