(** Resource-constrained VLIW list scheduling with the latency-weighted
    depth priority.

    Each cycle offers the functional-unit slots of the machine (Table 3:
    4 integer, 2 floating-point, 2 memory, 1 branch, fully pipelined).
    Blocks are rewritten into issue order; the schedule length — the
    cycle in which the last result becomes available — feeds the timing
    simulator. *)

type unit_class = U_int | U_fp | U_mem | U_branch

val class_of : Ir.Instr.kind -> unit_class

type block_schedule = {
  order : Ir.Instr.t list;   (** issue order; respects all dependences *)
  length : int;
}

val schedule_instrs :
  ?priority:(Depgraph.t -> float array) -> config:Machine.Config.t ->
  Ir.Instr.t array -> block_schedule
(** [priority] overrides the latency-weighted-depth ranking (see
    {!Priority}). *)

val schedule_func :
  ?priority:(Depgraph.t -> float array) -> config:Machine.Config.t ->
  Ir.Func.t -> (Ir.Types.label * int) list
(** Schedules every block in place; returns per-block lengths.  A
    conditional terminator costs one extra branch-slot cycle. *)

val schedule_program :
  ?priority:(Depgraph.t -> float array) -> config:Machine.Config.t ->
  Ir.Func.program -> (string * Ir.Types.label, int) Hashtbl.t
(** Lengths keyed by (function name, block label). *)

val schedule_program_cycles :
  ?priority:(Depgraph.t -> float array) -> config:Machine.Config.t ->
  Ir.Func.program -> int array
(** Like {!schedule_program}, but lengths are indexed by the dense global
    block uid [Profile.Layout.prepare] assigns (functions in program
    order, blocks in list order) — the layout both walk identically, so
    no per-candidate label hashing is needed. *)
