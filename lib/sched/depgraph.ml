(* Dependence graph over the instructions of one basic block (or one
   candidate hyperblock path).

   Edges carry latencies: RAW edges the producer's latency, WAR/WAW and
   ordering edges zero (the consumer may issue in the same cycle but must
   stay after the producer in program order).  Memory dependences are
   space-based: accesses to distinct named spaces never alias; [Unknown]
   aliases everything.  Impure calls and emits are ordered among
   themselves and with all memory operations.  A predicated side exit is a
   scheduling barrier in both directions. *)

type edge = { src : int; dst : int; lat : int }

type t = {
  instrs : Ir.Instr.t array;
  succs : (int * int) list array;   (* (dst, lat) *)
  preds : (int * int) list array;   (* (src, lat) *)
  n_preds : int array;              (* indegree, for list scheduling *)
}

let spaces_may_alias (a : Ir.Instr.space) (b : Ir.Instr.space) =
  match (a, b) with
  | Ir.Instr.Unknown, _ | _, Ir.Instr.Unknown -> true
  | Ir.Instr.Global x, Ir.Instr.Global y -> x = y
  | Ir.Instr.Frame x, Ir.Instr.Frame y -> x = y
  | Ir.Instr.Global _, Ir.Instr.Frame _ | Ir.Instr.Frame _, Ir.Instr.Global _
    -> false

let mem_space (k : Ir.Instr.kind) : Ir.Instr.space option =
  match k with
  | Ir.Instr.Load (_, a) | Ir.Instr.Store (a, _) | Ir.Instr.Prefetch a ->
    Some a.Ir.Instr.space
  | _ -> None

let build (instrs : Ir.Instr.t array) : t =
  let n = Array.length instrs in
  let succs = Array.make n [] and preds = Array.make n [] in
  let n_preds = Array.make n 0 in
  let edge_set = Hashtbl.create (4 * n) in
  let add_edge src dst lat =
    if src <> dst then begin
      match Hashtbl.find_opt edge_set (src, dst) with
      | Some l when l >= lat -> ()
      | _ ->
        if not (Hashtbl.mem edge_set (src, dst)) then begin
          succs.(src) <- (dst, lat) :: succs.(src);
          preds.(dst) <- (src, lat) :: preds.(dst);
          n_preds.(dst) <- n_preds.(dst) + 1
        end
        else begin
          (* Raise the latency of an existing edge in place. *)
          succs.(src) <-
            List.map (fun (d, l) -> if d = dst then (d, max l lat) else (d, l))
              succs.(src);
          preds.(dst) <-
            List.map (fun (s, l) -> if s = src then (s, max l lat) else (s, l))
              preds.(dst)
        end;
        Hashtbl.replace edge_set (src, dst) lat
    end
  in
  (* Register dependences: scan backwards for each use/def. *)
  let last_def : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let last_uses : (int, int list) Hashtbl.t = Hashtbl.create 16 in
  let last_pdef : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let last_puses : (int, int list) Hashtbl.t = Hashtbl.create 16 in
  let last_mem : int list ref = ref [] in        (* stores/loads/prefetches *)
  let last_effect : int ref = ref (-1) in        (* impure call / emit *)
  let last_barrier : int ref = ref (-1) in       (* exit *)
  for i = 0 to n - 1 do
    let ins = instrs.(i) in
    let k = ins.Ir.Instr.kind in
    (* RAW on registers *)
    List.iter
      (fun u ->
        match Hashtbl.find_opt last_def u with
        | Some j -> add_edge j i (Ir.Instr.latency instrs.(j).Ir.Instr.kind)
        | None -> ())
      (Ir.Instr.uses k);
    (* WAR / WAW on registers *)
    (match Ir.Instr.def k with
    | Some d ->
      (match Hashtbl.find_opt last_def d with
      | Some j -> add_edge j i 0
      | None -> ());
      List.iter
        (fun j -> add_edge j i 0)
        (Option.value ~default:[] (Hashtbl.find_opt last_uses d))
    | None -> ());
    (* Predicate RAW (guard + pdef operand regs handled above), WAR/WAW *)
    List.iter
      (fun p ->
        match Hashtbl.find_opt last_pdef p with
        | Some j -> add_edge j i (Ir.Instr.latency instrs.(j).Ir.Instr.kind)
        | None -> ())
      (Ir.Instr.pred_uses ins);
    List.iter
      (fun p ->
        (match Hashtbl.find_opt last_pdef p with
        | Some j -> add_edge j i 0
        | None -> ());
        List.iter
          (fun j -> add_edge j i 0)
          (Option.value ~default:[] (Hashtbl.find_opt last_puses p)))
      (Ir.Instr.pred_defs k);
    (* Memory ordering *)
    (match k with
    | Ir.Instr.Load (_, a) ->
      List.iter
        (fun j ->
          match mem_space instrs.(j).Ir.Instr.kind with
          | Some s
            when Ir.Instr.is_store instrs.(j).Ir.Instr.kind
                 && spaces_may_alias s a.Ir.Instr.space ->
            add_edge j i 1
          | _ -> ())
        !last_mem
    | Ir.Instr.Store (a, _) | Ir.Instr.Prefetch a ->
      List.iter
        (fun j ->
          match mem_space instrs.(j).Ir.Instr.kind with
          | Some s when spaces_may_alias s a.Ir.Instr.space -> add_edge j i 0
          | _ -> ())
        !last_mem
    | _ -> ());
    (* Effects: impure calls and emits are totally ordered among
       themselves; impure calls also order against all memory ops. *)
    let is_effect =
      Ir.Instr.is_impure_call k
      || (match k with Ir.Instr.Emit _ -> true | _ -> false)
    in
    if is_effect then begin
      if !last_effect >= 0 then add_edge !last_effect i 1;
      if Ir.Instr.is_impure_call k then
        List.iter (fun j -> add_edge j i 0) !last_mem
    end;
    if Ir.Instr.is_mem k && !last_effect >= 0 then
      if Ir.Instr.is_impure_call instrs.(!last_effect).Ir.Instr.kind then
        add_edge !last_effect i 1;
    (* Side exits: an exit must stay after every earlier instruction (a
       definition moved below it would be missing on the exit path), but
       only side-effecting later instructions must stay after the exit —
       a pure guarded instruction moved above it is nullified whenever the
       exit fires, because block predicates always describe a consistent
       prefix of the original control path. *)
    let effectful =
      match k with
      | Ir.Instr.Store _ | Ir.Instr.Emit _ | Ir.Instr.Exit _ -> true
      | Ir.Instr.Call (_, _, _, Ir.Instr.Impure) -> true
      | _ -> false
    in
    if !last_barrier >= 0 && effectful then add_edge !last_barrier i 0;
    (match k with
    | Ir.Instr.Exit _ ->
      for j = 0 to i - 1 do
        add_edge j i 0
      done;
      last_barrier := i
    | _ -> ());
    (* Update scanning state. *)
    (match Ir.Instr.def k with
    | Some d ->
      Hashtbl.replace last_def d i;
      Hashtbl.replace last_uses d []
    | None -> ());
    List.iter
      (fun u ->
        let cur = Option.value ~default:[] (Hashtbl.find_opt last_uses u) in
        Hashtbl.replace last_uses u (i :: cur))
      (Ir.Instr.uses k);
    List.iter
      (fun p ->
        Hashtbl.replace last_pdef p i;
        Hashtbl.replace last_puses p [])
      (Ir.Instr.pred_defs k);
    List.iter
      (fun p ->
        let cur = Option.value ~default:[] (Hashtbl.find_opt last_puses p) in
        Hashtbl.replace last_puses p (i :: cur))
      (Ir.Instr.pred_uses ins);
    if Ir.Instr.is_mem k then last_mem := i :: !last_mem;
    if is_effect then last_effect := i
  done;
  { instrs; succs; preds; n_preds }

(* Latency-weighted depth [Gibbons & Muchnick 86]: the longest
   latency-weighted path from each node to any sink.  This is both the
   baseline list-scheduling priority and the source of the [dep_height]
   hyperblock feature. *)
let latency_weighted_depth (g : t) : int array =
  let n = Array.length g.instrs in
  let depth = Array.make n (-1) in
  let rec compute i =
    if depth.(i) >= 0 then depth.(i)
    else begin
      let lat = Ir.Instr.latency g.instrs.(i).Ir.Instr.kind in
      let d =
        List.fold_left
          (fun acc (j, _) -> max acc (lat + compute j))
          lat g.succs.(i)
      in
      depth.(i) <- d;
      d
    end
  in
  for i = 0 to n - 1 do
    ignore (compute i)
  done;
  depth

(* Critical path length of the whole graph, in cycles. *)
let critical_path (g : t) : int =
  Array.fold_left max 0 (latency_weighted_depth g)
