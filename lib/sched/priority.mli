(** Evolvable list-scheduling priority functions — a fourth heuristic slot
    beyond the paper's three case studies, motivated by its Section 2
    (list scheduling as the canonical priority-function example).

    A priority function scores each instruction of a block's dependence
    graph; the list scheduler issues ready instructions in descending
    score order. *)

val feature_set : Gp.Feature_set.t

val baseline_source : string
(** The latency-weighted depth itself. *)

val baseline_expr : Gp.Expr.rexpr
val baseline_genome : Gp.Expr.genome

type fn = Depgraph.t -> float array
(** Instruction index -> score. *)

val baseline : fn
(** Latency-weighted depth without the expression interpreter. *)

val height_above : Depgraph.t -> int array
(** Earliest possible issue cycle of each node (longest latency-weighted
    path from any source, excluding the node's own latency). *)

val of_expr : ?compiled:bool -> Gp.Expr.rexpr -> fn
(** [of_expr expr] compiles [expr] once through {!Gp.Evalc} (default) and
    scores instructions by array-indexed bytecode; [~compiled:false]
    keeps the {!Gp.Eval} tree-walker — the executable reference the
    compiled path is bit-identical to. *)
