(** Dependence graph over the instructions of one basic block (or one
    candidate hyperblock path).

    Edges carry latencies: RAW edges the producer's latency; WAR/WAW and
    ordering edges zero (same-cycle issue allowed, program order kept).
    Memory dependences are space-based; impure calls and emits are
    totally ordered.  A side exit must stay after every earlier
    instruction, while only side-effecting later instructions must stay
    after it (pure guarded instructions crossing upward are nullified
    whenever the exit fires). *)

type edge = { src : int; dst : int; lat : int }

type t = {
  instrs : Ir.Instr.t array;
  succs : (int * int) list array;   (** (consumer, latency) *)
  preds : (int * int) list array;
  n_preds : int array;              (** indegrees, for list scheduling *)
}

val spaces_may_alias : Ir.Instr.space -> Ir.Instr.space -> bool

val build : Ir.Instr.t array -> t

val latency_weighted_depth : t -> int array
(** The longest latency-weighted path from each node to any sink
    [Gibbons & Muchnick 86]: the baseline list-scheduling priority and
    the source of the [dep_height] hyperblock feature. *)

val critical_path : t -> int
(** Critical path of the whole graph, in cycles. *)
