(* Resource-constrained VLIW list scheduling with the latency-weighted
   depth priority.

   Each cycle offers the functional-unit slots of the machine config
   (Table 3: 4 integer, 2 floating-point, 2 memory, 1 branch).  Ready
   instructions are issued in priority order into free slots of their
   resource class; a fully-pipelined model lets every unit accept one
   instruction per cycle.  The block's instruction list is rewritten in
   issue order (which preserves all dependences) and the block's schedule
   length — the cycle in which the last result becomes available — is
   returned for the timing simulator. *)

type unit_class = U_int | U_fp | U_mem | U_branch

let class_of (k : Ir.Instr.kind) : unit_class =
  match k with
  | Ir.Instr.Ibin _ | Ir.Instr.Icmp _ | Ir.Instr.Mov _ | Ir.Instr.Gaddr _
  | Ir.Instr.Pdef _ | Ir.Instr.Pclear _ | Ir.Instr.Por _ | Ir.Instr.Pset _ ->
    U_int
  | Ir.Instr.Fbin _ | Ir.Instr.Funop _ | Ir.Instr.Fcmp _ | Ir.Instr.Itof _
  | Ir.Instr.Ftoi _ | Ir.Instr.Intrin _ ->
    U_fp
  | Ir.Instr.Load _ | Ir.Instr.Store _ | Ir.Instr.Prefetch _ | Ir.Instr.Emit _
    ->
    U_mem
  | Ir.Instr.Call _ | Ir.Instr.Exit _ -> U_branch

type block_schedule = {
  order : Ir.Instr.t list;   (* issue order *)
  length : int;              (* cycles until all results available *)
}

let schedule_instrs ?priority ~(config : Machine.Config.t)
    (instrs : Ir.Instr.t array) : block_schedule =
  let n = Array.length instrs in
  if n = 0 then { order = []; length = 1 }
  else begin
    let g = Depgraph.build instrs in
    let priority =
      match priority with
      | Some (f : Depgraph.t -> float array) -> f g
      | None -> Array.map float_of_int (Depgraph.latency_weighted_depth g)
    in
    let remaining_preds = Array.copy g.Depgraph.n_preds in
    (* Earliest cycle each instruction may issue, updated as predecessors
       are scheduled. *)
    let earliest = Array.make n 0 in
    let issued = Array.make n false in
    let issue_cycle = Array.make n 0 in
    let order = ref [] in
    let n_issued = ref 0 in
    let cycle = ref 0 in
    let slots = [| config.Machine.Config.int_units;
                   config.Machine.Config.fp_units;
                   config.Machine.Config.mem_units;
                   config.Machine.Config.branch_units |] in
    let slot_index = function
      | U_int -> 0
      | U_fp -> 1
      | U_mem -> 2
      | U_branch -> 3
    in
    let free = Array.make 4 0 in
    let max_cycles = (8 * n) + 64 in
    while !n_issued < n && !cycle < max_cycles do
      Array.blit slots 0 free 0 4;
      (* Ready set: all predecessors issued and data available. *)
      let ready =
        List.filter
          (fun i ->
            (not issued.(i))
            && remaining_preds.(i) = 0
            && earliest.(i) <= !cycle)
          (List.init n Fun.id)
      in
      let ready =
        List.sort (fun a b -> compare priority.(b) priority.(a)) ready
      in
      List.iter
        (fun i ->
          let c = slot_index (class_of instrs.(i).Ir.Instr.kind) in
          if free.(c) > 0 then begin
            free.(c) <- free.(c) - 1;
            issued.(i) <- true;
            issue_cycle.(i) <- !cycle;
            incr n_issued;
            order := i :: !order;
            List.iter
              (fun (j, lat) ->
                remaining_preds.(j) <- remaining_preds.(j) - 1;
                earliest.(j) <- max earliest.(j) (!cycle + lat))
              g.Depgraph.succs.(i)
          end)
        ready;
      incr cycle
    done;
    if !n_issued < n then
      invalid_arg "List_sched.schedule_instrs: scheduling did not converge";
    let length =
      Array.to_list (Array.init n Fun.id)
      |> List.fold_left
           (fun acc i ->
             max acc
               (issue_cycle.(i) + Ir.Instr.latency instrs.(i).Ir.Instr.kind))
           1
    in
    { order = List.rev_map (fun i -> instrs.(i)) !order; length }
  end

(* Schedule every block of a function in place; returns schedule lengths
   keyed by block label.  A conditional terminator consumes one extra
   branch-slot cycle. *)
let schedule_func ?priority ~config (f : Ir.Func.t) :
    (Ir.Types.label * int) list =
  List.map
    (fun (b : Ir.Func.block) ->
      let s =
        schedule_instrs ?priority ~config (Array.of_list b.Ir.Func.instrs)
      in
      b.Ir.Func.instrs <- s.order;
      let term_cost = match b.Ir.Func.term with
        | Ir.Func.Br _ -> 1
        | Ir.Func.Jmp _ | Ir.Func.Ret _ -> 0
      in
      (b.Ir.Func.blabel, s.length + term_cost))
    f.Ir.Func.blocks

(* Schedule a whole program; returns lengths keyed by (function, label). *)
let schedule_program ?priority ~config (p : Ir.Func.program) :
    (string * Ir.Types.label, int) Hashtbl.t =
  let tbl = Hashtbl.create 256 in
  List.iter
    (fun (f : Ir.Func.t) ->
      List.iter
        (fun (l, len) -> Hashtbl.replace tbl (f.Ir.Func.fname, l) len)
        (schedule_func ?priority ~config f))
    p.Ir.Func.funcs;
  tbl

(* Schedule a whole program; returns lengths indexed by the dense global
   block uid [Profile.Layout.prepare] will assign to the scheduled
   program.  Both walk functions in program order and blocks in list
   order, so position in this array IS the uid — no per-candidate
   (fname, label) hashing. *)
let schedule_program_cycles ?priority ~config (p : Ir.Func.program) : int array
    =
  let acc = ref [] in
  List.iter
    (fun (f : Ir.Func.t) ->
      List.iter
        (fun (_, len) -> acc := len :: !acc)
        (schedule_func ?priority ~config f))
    p.Ir.Func.funcs;
  let lens = Array.of_list !acc in
  let n = Array.length lens in
  Array.init n (fun i -> lens.(n - 1 - i))
