(* Evolvable list-scheduling priority functions.

   Section 2 of the paper presents list scheduling as the canonical
   priority-function example (Gibbons & Muchnick's latency-weighted depth)
   and lists scheduling variants among the heuristics Meta Optimization
   applies to.  This module exposes the scheduler's ranking as a fourth
   evolvable slot, an extension beyond the paper's three case studies.

   The priority function scores each instruction of a block's dependence
   graph; the list scheduler issues ready instructions in descending
   score order. *)

let feature_set : Gp.Feature_set.t =
  Gp.Feature_set.make
    ~reals:
      [
        "lwd";            (* latency-weighted depth to any sink *)
        "latency";
        "height_above";   (* earliest possible issue cycle *)
        "slack";          (* critical_path - height_above - lwd *)
        "n_succs";        (* direct dependents *)
        "n_preds";
        "block_ops";
        "critical_path";
      ]
    ~bools:[ "is_mem"; "is_fp"; "is_branch"; "is_call"; "is_guarded" ]

(* The baseline is the latency-weighted depth itself. *)
let baseline_source = "lwd"
let baseline_expr : Gp.Expr.rexpr = Gp.Sexp.parse_real feature_set baseline_source
let baseline_genome : Gp.Expr.genome = Gp.Expr.Real baseline_expr

(* A ranking: instruction index -> score, derived from the dependence
   graph.  [of_expr] is the GP-driven instance; [baseline] avoids the
   expression interpreter in the common case. *)
type fn = Depgraph.t -> float array

let baseline : fn =
 fun g -> Array.map float_of_int (Depgraph.latency_weighted_depth g)

(* Longest latency-weighted path from any source to each node, excluding
   the node's own latency: its earliest possible issue cycle. *)
let height_above (g : Depgraph.t) : int array =
  let n = Array.length g.Depgraph.instrs in
  let above = Array.make n (-1) in
  let rec compute i =
    if above.(i) >= 0 then above.(i)
    else begin
      let h =
        List.fold_left
          (fun acc (j, lat) -> max acc (compute j + lat))
          0 g.Depgraph.preds.(i)
      in
      above.(i) <- h;
      h
    end
  in
  for i = 0 to n - 1 do
    ignore (compute i)
  done;
  above

(* One feature vector per instruction of the graph, in index order. *)
let envs_of_graph (g : Depgraph.t) : Gp.Feature_set.env array =
  let n = Array.length g.Depgraph.instrs in
  let lwd = Depgraph.latency_weighted_depth g in
  let above = height_above g in
  let critical = Array.fold_left max 0 lwd in
  Array.init n (fun i ->
      let env = Gp.Feature_set.empty_env feature_set in
      let set = Gp.Feature_set.set_real feature_set env in
      let setb = Gp.Feature_set.set_bool feature_set env in
      let instr = g.Depgraph.instrs.(i) in
      let k = instr.Ir.Instr.kind in
      set "lwd" (float_of_int lwd.(i));
      set "latency" (float_of_int (Ir.Instr.latency k));
      set "height_above" (float_of_int above.(i));
      set "slack" (float_of_int (critical - above.(i) - lwd.(i)));
      set "n_succs" (float_of_int (List.length g.Depgraph.succs.(i)));
      set "n_preds" (float_of_int (List.length g.Depgraph.preds.(i)));
      set "block_ops" (float_of_int n);
      set "critical_path" (float_of_int critical);
      setb "is_mem" (Ir.Instr.is_mem k);
      setb "is_fp"
        (match k with
        | Ir.Instr.Fbin _ | Ir.Instr.Funop _ | Ir.Instr.Fcmp _
        | Ir.Instr.Intrin _ ->
          true
        | _ -> false);
      setb "is_branch" (Ir.Instr.is_branch_like k);
      setb "is_call" (Ir.Instr.is_call k);
      setb "is_guarded" (instr.Ir.Instr.guard <> Ir.Types.p_true);
      env)

let of_expr ?(compiled = true) (expr : Gp.Expr.rexpr) : fn =
  (* Compile once per [of_expr].  The compiled instance scores a whole
     block with one [Evalc.run_batch] call over per-instruction feature
     vectors — instruction dispatch amortised across the block — and is
     bit-identical to the per-point tree walk, which stays selectable
     as the executable reference. *)
  if compiled then begin
    let p = Gp.Evalc.compile_real expr in
    fun g -> Gp.Evalc.run_batch p (envs_of_graph g)
  end
  else
    fun g -> Array.map (fun env -> Gp.Eval.real env expr) (envs_of_graph g)
