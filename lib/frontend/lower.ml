(* Lowering from the MiniC AST to the predicated three-address IR.

   Every scalar variable maps to one virtual register (the IR is not SSA;
   liveness-based register allocation handles it downstream).  Logical &&
   and || evaluate both operands (MiniC expressions are effect-free apart
   from calls, and benchmark sources use explicit ifs where shortcutting
   matters); comparisons produce 0/1 ints.

   An array access whose index expression itself loaded from memory is
   marked as a hazard: its address is data-dependent, the moral equivalent
   of the pointer dereferences the paper's hyperblock heuristic
   penalizes. *)

open Ast

type ctx = {
  b : Ir.Builder.t;
  vars : (string, Ir.Types.reg * ty) Hashtbl.t;
  global_tys : (string, ty) Hashtbl.t;
  func_rets : (string, ty option) Hashtbl.t;
  (* (continue_label, break_label) stack *)
  mutable loop_stack : (string * string) list;
}

(* Lowered expression: where the value lives, its type, and whether its
   computation loaded from memory (for hazard marking). *)
type lowered = { op : Ir.Types.operand; ty : ty; loaded : bool }

let to_float ctx (l : lowered) : lowered =
  match l.ty with
  | Tfloat -> l
  | Tint -> (
    match l.op with
    | Ir.Types.Imm k ->
      { op = Ir.Types.Fimm (float_of_int k); ty = Tfloat; loaded = l.loaded }
    | _ ->
      let r = Ir.Builder.emit_r ctx.b (fun r -> Ir.Instr.Itof (r, l.op)) in
      { op = Ir.Types.Reg r; ty = Tfloat; loaded = l.loaded })

let promote ctx a b =
  if a.ty = Tfloat || b.ty = Tfloat then (to_float ctx a, to_float ctx b, Tfloat)
  else (a, b, Tint)

let ibinop_of = function
  | Badd -> Ir.Types.Add
  | Bsub -> Ir.Types.Sub
  | Bmul -> Ir.Types.Mul
  | Bdiv -> Ir.Types.Div
  | Bmod -> Ir.Types.Rem
  | Bband -> Ir.Types.Band
  | Bbor -> Ir.Types.Bor
  | Bbxor -> Ir.Types.Bxor
  | Bshl -> Ir.Types.Shl
  | Bshr -> Ir.Types.Shr
  | _ -> invalid_arg "ibinop_of"

let fbinop_of = function
  | Badd -> Ir.Types.Fadd
  | Bsub -> Ir.Types.Fsub
  | Bmul -> Ir.Types.Fmul
  | Bdiv -> Ir.Types.Fdiv
  | _ -> invalid_arg "fbinop_of"

let icmp_of = function
  | Beq -> Ir.Types.Ceq
  | Bne -> Ir.Types.Cne
  | Blt -> Ir.Types.Clt
  | Ble -> Ir.Types.Cle
  | Bgt -> Ir.Types.Cgt
  | Bge -> Ir.Types.Cge
  | _ -> invalid_arg "icmp_of"

let intrinsic_of = function
  | "sin" -> Ir.Types.Isin
  | "cos" -> Ir.Types.Icos
  | "exp" -> Ir.Types.Iexp
  | "log" -> Ir.Types.Ilog
  | "min" -> Ir.Types.Imin
  | "max" -> Ir.Types.Imax
  | "fmin" -> Ir.Types.Ifmin
  | "fmax" -> Ir.Types.Ifmax
  | n -> invalid_arg ("intrinsic_of: " ^ n)

let rec lower_expr (ctx : ctx) (ex : expr) : lowered =
  match ex.e with
  | Int k -> { op = Ir.Types.Imm k; ty = Tint; loaded = false }
  | Float f -> { op = Ir.Types.Fimm f; ty = Tfloat; loaded = false }
  | Var v ->
    let r, ty = Hashtbl.find ctx.vars v in
    { op = Ir.Types.Reg r; ty; loaded = false }
  | Index (a, idx) ->
    let i = lower_expr ctx idx in
    let base = Ir.Builder.emit_r ctx.b (fun r -> Ir.Instr.Gaddr (r, a)) in
    let addr =
      Ir.Builder.global_addr ~base:(Ir.Types.Reg base) ~offset:i.op ~name:a
        ~hazard:i.loaded
    in
    let r = Ir.Builder.emit_r ctx.b (fun r -> Ir.Instr.Load (r, addr)) in
    { op = Ir.Types.Reg r; ty = Hashtbl.find ctx.global_tys a; loaded = true }
  | Cast (t, e) -> (
    let l = lower_expr ctx e in
    match (l.ty, t) with
    | a, b when a = b -> l
    | Tint, Tfloat -> to_float ctx l
    | Tfloat, Tint ->
      let r = Ir.Builder.emit_r ctx.b (fun r -> Ir.Instr.Ftoi (r, l.op)) in
      { op = Ir.Types.Reg r; ty = Tint; loaded = l.loaded }
    | _ -> assert false)
  | Un (Uneg, e) -> (
    let l = lower_expr ctx e in
    match l.ty with
    | Tint ->
      let r =
        Ir.Builder.emit_r ctx.b (fun r ->
            Ir.Instr.Ibin (Ir.Types.Sub, r, Ir.Types.Imm 0, l.op))
      in
      { op = Ir.Types.Reg r; ty = Tint; loaded = l.loaded }
    | Tfloat ->
      let r =
        Ir.Builder.emit_r ctx.b (fun r -> Ir.Instr.Funop (Ir.Types.Fneg, r, l.op))
      in
      { op = Ir.Types.Reg r; ty = Tfloat; loaded = l.loaded })
  | Un (Unot, e) ->
    let l = lower_expr ctx e in
    let r =
      Ir.Builder.emit_r ctx.b (fun r ->
          Ir.Instr.Icmp (Ir.Types.Ceq, r, l.op, Ir.Types.Imm 0))
    in
    { op = Ir.Types.Reg r; ty = Tint; loaded = l.loaded }
  | Bin ((Bland | Blor) as op, a, b) ->
    (* Normalize both sides to 0/1, then bitwise combine. *)
    let la = lower_expr ctx a and lb = lower_expr ctx b in
    let norm l =
      Ir.Builder.emit_r ctx.b (fun r ->
          Ir.Instr.Icmp (Ir.Types.Cne, r, l.op, Ir.Types.Imm 0))
    in
    let ra = norm la and rb = norm lb in
    let bop = if op = Bland then Ir.Types.Band else Ir.Types.Bor in
    let r =
      Ir.Builder.emit_r ctx.b (fun r ->
          Ir.Instr.Ibin (bop, r, Ir.Types.Reg ra, Ir.Types.Reg rb))
    in
    { op = Ir.Types.Reg r; ty = Tint; loaded = la.loaded || lb.loaded }
  | Bin ((Beq | Bne | Blt | Ble | Bgt | Bge) as op, a, b) ->
    let la = lower_expr ctx a and lb = lower_expr ctx b in
    let la, lb, t = promote ctx la lb in
    let c = icmp_of op in
    let r =
      Ir.Builder.emit_r ctx.b (fun r ->
          match t with
          | Tint -> Ir.Instr.Icmp (c, r, la.op, lb.op)
          | Tfloat -> Ir.Instr.Fcmp (c, r, la.op, lb.op))
    in
    { op = Ir.Types.Reg r; ty = Tint; loaded = la.loaded || lb.loaded }
  | Bin ((Bmod | Bband | Bbor | Bbxor | Bshl | Bshr) as op, a, b) ->
    let la = lower_expr ctx a and lb = lower_expr ctx b in
    let r =
      Ir.Builder.emit_r ctx.b (fun r -> Ir.Instr.Ibin (ibinop_of op, r, la.op, lb.op))
    in
    { op = Ir.Types.Reg r; ty = Tint; loaded = la.loaded || lb.loaded }
  | Bin (op, a, b) ->
    (* + - * / with promotion *)
    let la = lower_expr ctx a and lb = lower_expr ctx b in
    let la, lb, t = promote ctx la lb in
    let r =
      Ir.Builder.emit_r ctx.b (fun r ->
          match t with
          | Tint -> Ir.Instr.Ibin (ibinop_of op, r, la.op, lb.op)
          | Tfloat -> Ir.Instr.Fbin (fbinop_of op, r, la.op, lb.op))
    in
    { op = Ir.Types.Reg r; ty = t; loaded = la.loaded || lb.loaded }
  | Call (name, args) -> lower_call ctx ex.pos name args

and lower_call ctx _pos name args : lowered =
  let lowered_args = List.map (lower_expr ctx) args in
  let loaded = List.exists (fun l -> l.loaded) lowered_args in
  match name with
  | "sqrt" | "fabs" ->
    let a = to_float ctx (List.nth lowered_args 0) in
    let op = if name = "sqrt" then Ir.Types.Fsqrt else Ir.Types.Fabs in
    let r = Ir.Builder.emit_r ctx.b (fun r -> Ir.Instr.Funop (op, r, a.op)) in
    { op = Ir.Types.Reg r; ty = Tfloat; loaded }
  | "abs" ->
    (* |x| = max(x, -x) on ints *)
    let a = List.nth lowered_args 0 in
    let neg =
      Ir.Builder.emit_r ctx.b (fun r ->
          Ir.Instr.Ibin (Ir.Types.Sub, r, Ir.Types.Imm 0, a.op))
    in
    let r =
      Ir.Builder.emit_r ctx.b (fun r ->
          Ir.Instr.Intrin (Ir.Types.Imax, r, [ a.op; Ir.Types.Reg neg ]))
    in
    { op = Ir.Types.Reg r; ty = Tint; loaded }
  | "sin" | "cos" | "exp" | "log" | "fmin" | "fmax" ->
    let fargs = List.map (fun l -> (to_float ctx l).op) lowered_args in
    let r =
      Ir.Builder.emit_r ctx.b (fun r ->
          Ir.Instr.Intrin (intrinsic_of name, r, fargs))
    in
    { op = Ir.Types.Reg r; ty = Tfloat; loaded }
  | "min" | "max" ->
    let iargs = List.map (fun l -> l.op) lowered_args in
    let r =
      Ir.Builder.emit_r ctx.b (fun r ->
          Ir.Instr.Intrin (intrinsic_of name, r, iargs))
    in
    { op = Ir.Types.Reg r; ty = Tint; loaded }
  | _ ->
    let ret = Hashtbl.find ctx.func_rets name in
    (* Promotions for float parameters are resolved by the callee's
       signature recorded in [func_param_tys]; MiniC's typechecker already
       validated compatibility, so only int->float needs an Itof here.
       The signature is carried through [ctx.func_rets]'s sibling table. *)
    let ops = List.map (fun l -> l.op) lowered_args in
    (match ret with
    | Some t ->
      let r =
        Ir.Builder.emit_r ctx.b (fun r ->
            Ir.Instr.Call (Some r, name, ops, Ir.Instr.Impure))
      in
      { op = Ir.Types.Reg r; ty = t; loaded }
    | None ->
      Ir.Builder.emit ctx.b (Ir.Instr.Call (None, name, ops, Ir.Instr.Impure));
      { op = Ir.Types.Imm 0; ty = Tint; loaded })

(* Coerce a lowered value to a variable/array slot of type [dst]. *)
let coerce ctx (l : lowered) (dst : ty) : Ir.Types.operand =
  match (l.ty, dst) with
  | a, b when a = b -> l.op
  | Tint, Tfloat -> (to_float ctx l).op
  | Tfloat, Tint ->
    Ir.Types.Reg (Ir.Builder.emit_r ctx.b (fun r -> Ir.Instr.Ftoi (r, l.op)))
  | _ -> assert false

let rec lower_stmt (ctx : ctx) (st : stmt) : unit =
  match st.s with
  | Assign (v, e) ->
    let l = lower_expr ctx e in
    let r, ty = Hashtbl.find ctx.vars v in
    let op = coerce ctx l ty in
    Ir.Builder.emit ctx.b (Ir.Instr.Mov (r, op))
  | Store (a, idx, e) ->
    let i = lower_expr ctx idx in
    let l = lower_expr ctx e in
    let v = coerce ctx l (Hashtbl.find ctx.global_tys a) in
    let base = Ir.Builder.emit_r ctx.b (fun r -> Ir.Instr.Gaddr (r, a)) in
    let addr =
      Ir.Builder.global_addr ~base:(Ir.Types.Reg base) ~offset:i.op ~name:a
        ~hazard:i.loaded
    in
    Ir.Builder.emit ctx.b (Ir.Instr.Store (addr, v))
  | Emit e ->
    let l = lower_expr ctx e in
    Ir.Builder.emit ctx.b (Ir.Instr.Emit l.op)
  | Expr e -> ignore (lower_expr ctx e)
  | Return None ->
    Ir.Builder.terminate ctx.b (Ir.Func.Ret None);
    Ir.Builder.start_block ctx.b (Ir.Builder.fresh_label ctx.b "dead")
  | Return (Some e) ->
    let l = lower_expr ctx e in
    Ir.Builder.terminate ctx.b (Ir.Func.Ret (Some l.op));
    Ir.Builder.start_block ctx.b (Ir.Builder.fresh_label ctx.b "dead")
  | Break -> (
    match ctx.loop_stack with
    | (_, brk) :: _ ->
      Ir.Builder.terminate ctx.b (Ir.Func.Jmp brk);
      Ir.Builder.start_block ctx.b (Ir.Builder.fresh_label ctx.b "dead")
    | [] -> assert false)
  | Continue -> (
    match ctx.loop_stack with
    | (cont, _) :: _ ->
      Ir.Builder.terminate ctx.b (Ir.Func.Jmp cont);
      Ir.Builder.start_block ctx.b (Ir.Builder.fresh_label ctx.b "dead")
    | [] -> assert false)
  | If (c, then_, else_) ->
    let l = lower_expr ctx c in
    let lt = Ir.Builder.fresh_label ctx.b "then"
    and le = Ir.Builder.fresh_label ctx.b "else"
    and lj = Ir.Builder.fresh_label ctx.b "join" in
    let else_target = if else_ = [] then lj else le in
    Ir.Builder.terminate ctx.b (Ir.Func.Br (l.op, lt, else_target));
    Ir.Builder.start_block ctx.b lt;
    List.iter (lower_stmt ctx) then_;
    Ir.Builder.terminate ctx.b (Ir.Func.Jmp lj);
    if else_ <> [] then begin
      Ir.Builder.start_block ctx.b le;
      List.iter (lower_stmt ctx) else_;
      Ir.Builder.terminate ctx.b (Ir.Func.Jmp lj)
    end;
    Ir.Builder.start_block ctx.b lj
  | While (c, body) ->
    let lh = Ir.Builder.fresh_label ctx.b "loop"
    and lb = Ir.Builder.fresh_label ctx.b "body"
    and lx = Ir.Builder.fresh_label ctx.b "exit" in
    Ir.Builder.terminate ctx.b (Ir.Func.Jmp lh);
    Ir.Builder.start_block ctx.b lh;
    let l = lower_expr ctx c in
    Ir.Builder.terminate ctx.b (Ir.Func.Br (l.op, lb, lx));
    Ir.Builder.start_block ctx.b lb;
    ctx.loop_stack <- (lh, lx) :: ctx.loop_stack;
    List.iter (lower_stmt ctx) body;
    ctx.loop_stack <- List.tl ctx.loop_stack;
    Ir.Builder.terminate ctx.b (Ir.Func.Jmp lh);
    Ir.Builder.start_block ctx.b lx
  | For (init, c, step, body) ->
    Option.iter (lower_stmt ctx) init;
    let lh = Ir.Builder.fresh_label ctx.b "for"
    and lb = Ir.Builder.fresh_label ctx.b "fbody"
    and lc = Ir.Builder.fresh_label ctx.b "fstep"
    and lx = Ir.Builder.fresh_label ctx.b "fexit" in
    Ir.Builder.terminate ctx.b (Ir.Func.Jmp lh);
    Ir.Builder.start_block ctx.b lh;
    let l = lower_expr ctx c in
    Ir.Builder.terminate ctx.b (Ir.Func.Br (l.op, lb, lx));
    Ir.Builder.start_block ctx.b lb;
    ctx.loop_stack <- (lc, lx) :: ctx.loop_stack;
    List.iter (lower_stmt ctx) body;
    ctx.loop_stack <- List.tl ctx.loop_stack;
    Ir.Builder.terminate ctx.b (Ir.Func.Jmp lc);
    Ir.Builder.start_block ctx.b lc;
    Option.iter (lower_stmt ctx) step;
    Ir.Builder.terminate ctx.b (Ir.Func.Jmp lh);
    Ir.Builder.start_block ctx.b lx

let lower_func (p : program) (fd : func_decl) : Ir.Func.t =
  let b =
    Ir.Builder.create ~name:fd.fname ~params:(List.map (fun pa -> pa.pname) fd.params)
  in
  let vars = Hashtbl.create 16 in
  List.iteri
    (fun i pa -> Hashtbl.replace vars pa.pname (i + 1, pa.pty))
    fd.params;
  let global_tys = Hashtbl.create 16 in
  List.iter (fun g -> Hashtbl.replace global_tys g.gname g.gty) p.globals;
  let func_rets = Hashtbl.create 16 in
  List.iter (fun f -> Hashtbl.replace func_rets f.fname f.ret) p.funcs;
  let ctx = { b; vars; global_tys; func_rets; loop_stack = [] } in
  Ir.Builder.start_block b "entry";
  (* Allocate registers for locals up front. *)
  List.iter
    (fun (n, t) -> Hashtbl.replace vars n (Ir.Builder.fresh_reg b, t))
    fd.locals;
  List.iter (lower_stmt ctx) fd.body;
  (* Fall-through return. *)
  Ir.Builder.terminate b
    (match fd.ret with
    | None -> Ir.Func.Ret None
    | Some Tint -> Ir.Func.Ret (Some (Ir.Types.Imm 0))
    | Some Tfloat -> Ir.Func.Ret (Some (Ir.Types.Fimm 0.0)));
  Ir.Builder.finish b

(* Remove blocks unreachable from the entry (dead blocks synthesized after
   return/break/continue). *)
let prune_unreachable (f : Ir.Func.t) : unit =
  let g = Ir.Cfg.build f in
  let reachable = Hashtbl.create 16 in
  let rec dfs i =
    let l = g.Ir.Cfg.labels.(i) in
    if not (Hashtbl.mem reachable l) then begin
      Hashtbl.replace reachable l ();
      List.iter dfs g.Ir.Cfg.succ.(i)
    end
  in
  dfs 0;
  f.Ir.Func.blocks <-
    List.filter
      (fun (blk : Ir.Func.block) -> Hashtbl.mem reachable blk.Ir.Func.blabel)
      f.Ir.Func.blocks

(* Mark calls to functions that touch no memory and perform no output as
   pure, so the scheduler and hazard analysis treat them accurately. *)
let mark_pure_calls (prog : Ir.Func.program) : unit =
  let impure = Hashtbl.create 16 in
  let directly_impure (f : Ir.Func.t) =
    let found = ref false in
    Ir.Func.iter_instrs f (fun _ (i : Ir.Instr.t) ->
        match i.Ir.Instr.kind with
        | Ir.Instr.Store _ | Ir.Instr.Emit _ | Ir.Instr.Load _
        | Ir.Instr.Prefetch _ ->
          found := true
        | _ -> ());
    !found
  in
  let calls_of (f : Ir.Func.t) =
    let acc = ref [] in
    Ir.Func.iter_instrs f (fun _ (i : Ir.Instr.t) ->
        match i.Ir.Instr.kind with
        | Ir.Instr.Call (_, n, _, _) -> acc := n :: !acc
        | _ -> ());
    !acc
  in
  (* Fixed point: impure if directly impure or calls an impure function. *)
  let changed = ref true in
  List.iter
    (fun f ->
      if directly_impure f then Hashtbl.replace impure f.Ir.Func.fname ())
    prog.Ir.Func.funcs;
  while !changed do
    changed := false;
    List.iter
      (fun f ->
        if not (Hashtbl.mem impure f.Ir.Func.fname) then
          if List.exists (Hashtbl.mem impure) (calls_of f) then begin
            Hashtbl.replace impure f.Ir.Func.fname ();
            changed := true
          end)
      prog.Ir.Func.funcs
  done;
  List.iter
    (fun (f : Ir.Func.t) ->
      List.iter
        (fun (blk : Ir.Func.block) ->
          blk.Ir.Func.instrs <-
            List.map
              (fun (i : Ir.Instr.t) ->
                match i.Ir.Instr.kind with
                | Ir.Instr.Call (d, n, args, _) when not (Hashtbl.mem impure n)
                  ->
                  { i with Ir.Instr.kind = Ir.Instr.Call (d, n, args, Ir.Instr.Pure) }
                | _ -> i)
              blk.Ir.Func.instrs)
        f.Ir.Func.blocks)
    prog.Ir.Func.funcs

let lower_program (p : program) : Ir.Func.program =
  let globals =
    List.map
      (fun g ->
        {
          Ir.Func.gname = g.gname;
          gsize = g.gsize;
          ginit = Array.of_list g.ginit;
        })
      p.globals
  in
  let funcs = List.map (lower_func p) p.funcs in
  List.iter prune_unreachable funcs;
  let prog = { Ir.Func.funcs; globals; main = "main" } in
  mark_pure_calls prog;
  prog
