(** Type checking for MiniC: [int] promotes implicitly to [float]; [float]
    narrows only through an explicit cast; conditions and bitwise/logical
    operators are over ints. *)

exception Type_error of string * Ast.pos

type intrinsic_sig = { args : Ast.ty list; ret_ty : Ast.ty }

val intrinsics : (string * intrinsic_sig) list
(** The built-in math functions (sqrt, sin, cos, exp, log, abs, fabs,
    min/max, fmin/fmax). *)

val check_program : Ast.program -> unit
(** @raise Type_error *)
