(** Abstract syntax for MiniC (see {!Minic} for the language summary). *)

type pos = { line : int; col : int }

type ty = Tint | Tfloat

val string_of_ty : ty -> string

type binop =
  | Badd | Bsub | Bmul | Bdiv | Bmod
  | Bband | Bbor | Bbxor | Bshl | Bshr
  | Beq | Bne | Blt | Ble | Bgt | Bge
  | Bland | Blor

type unop = Uneg | Unot

type expr = { e : expr_node; pos : pos }

and expr_node =
  | Int of int
  | Float of float
  | Var of string
  | Index of string * expr
  | Bin of binop * expr * expr
  | Un of unop * expr
  | Call of string * expr list
  | Cast of ty * expr

type stmt = { s : stmt_node; spos : pos }

and stmt_node =
  | Assign of string * expr
  | Store of string * expr * expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of stmt option * expr * stmt option * stmt list
  | Expr of expr
  | Return of expr option
  | Emit of expr
  | Break
  | Continue

type param = { pname : string; pty : ty }

type func_decl = {
  fname : string;
  params : param list;
  ret : ty option;
  locals : (string * ty) list;
  body : stmt list;
}

type global_decl = {
  gname : string;
  gty : ty;
  gsize : int;
  ginit : float list;
}

type program = {
  globals : global_decl list;
  funcs : func_decl list;
}
