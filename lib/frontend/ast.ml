(* Abstract syntax for MiniC, the small imperative language the benchmark
   suite is written in.  Scalars are [int] or [float]; arrays are
   one-dimensional globals.  Functions may not recurse (checked after
   lowering) because each function owns a single static spill frame. *)

type pos = { line : int; col : int }

type ty = Tint | Tfloat

let string_of_ty = function Tint -> "int" | Tfloat -> "float"

type binop =
  | Badd | Bsub | Bmul | Bdiv | Bmod
  | Bband | Bbor | Bbxor | Bshl | Bshr
  | Beq | Bne | Blt | Ble | Bgt | Bge
  | Bland | Blor                       (* short-circuit *)

type unop = Uneg | Unot

type expr = {
  e : expr_node;
  pos : pos;
}

and expr_node =
  | Int of int
  | Float of float
  | Var of string
  | Index of string * expr             (* A[e] *)
  | Bin of binop * expr * expr
  | Un of unop * expr
  | Call of string * expr list         (* user function or intrinsic *)
  | Cast of ty * expr                  (* int(e) / float(e) *)

type stmt = {
  s : stmt_node;
  spos : pos;
}

and stmt_node =
  | Assign of string * expr
  | Store of string * expr * expr      (* A[e1] = e2 *)
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of stmt option * expr * stmt option * stmt list
  | Expr of expr                       (* call for effect *)
  | Return of expr option
  | Emit of expr
  | Break
  | Continue

type param = { pname : string; pty : ty }

type func_decl = {
  fname : string;
  params : param list;
  ret : ty option;
  locals : (string * ty) list;         (* declarations collected in body *)
  body : stmt list;
}

type global_decl = {
  gname : string;
  gty : ty;                            (* element type *)
  gsize : int;
  ginit : float list;                  (* optional initial prefix *)
}

type program = {
  globals : global_decl list;
  funcs : func_decl list;
}
