(** Recursive-descent parser for MiniC with precedence climbing.

    Local declarations share one flat function scope; redeclaring a local
    with the same type reuses it (the C block-scope idiom), a different
    type is an error. *)

exception Parse_error of string * Ast.pos

val parse : string -> Ast.program
(** @raise Parse_error
    @raise Lexer.Lex_error *)
