(** Lowering from the MiniC AST to the predicated three-address IR.

    Scalars map to virtual registers (non-SSA); logical && and || evaluate
    both operands; array accesses whose index itself loaded from memory
    are marked as hazards.  Unreachable blocks are pruned, and calls to
    functions that touch no memory are marked pure. *)

val lower_program : Ast.program -> Ir.Func.program
