(* Facade: compile MiniC source text to a validated IR program. *)

exception Compile_error of string

let compile (src : string) : Ir.Func.program =
  let ast =
    try Parser.parse src with
    | Lexer.Lex_error (m, p) ->
      raise (Compile_error (Printf.sprintf "lex error at %d:%d: %s" p.Ast.line p.Ast.col m))
    | Parser.Parse_error (m, p) ->
      raise
        (Compile_error (Printf.sprintf "parse error at %d:%d: %s" p.Ast.line p.Ast.col m))
  in
  (try Typecheck.check_program ast with
  | Typecheck.Type_error (m, p) ->
    raise
      (Compile_error (Printf.sprintf "type error at %d:%d: %s" p.Ast.line p.Ast.col m)));
  let prog = Lower.lower_program ast in
  (match Ir.Validate.check_program prog with
  | [] -> ()
  | errs ->
    let msg =
      String.concat "; "
        (List.map (fun e -> Fmt.str "%a" Ir.Validate.pp_error e) errs)
    in
    raise (Compile_error ("lowering produced invalid IR: " ^ msg)));
  prog
