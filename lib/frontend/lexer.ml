(* Hand-written lexer for MiniC. *)

type token =
  | INT_LIT of int
  | FLOAT_LIT of float
  | IDENT of string
  | KW of string      (* int float global if else while for return emit break continue void *)
  | PUNCT of string   (* ( ) { } [ ] ; , = + - * / % == != < <= > >= && || ! & | ^ << >> *)
  | EOF

type tok = { t : token; pos : Ast.pos }

exception Lex_error of string * Ast.pos

let keywords =
  [ "int"; "float"; "global"; "if"; "else"; "while"; "for"; "return";
    "emit"; "break"; "continue"; "void" ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize (src : string) : tok list =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 and bol = ref 0 in
  let pos i = { Ast.line = !line; col = i - !bol + 1 } in
  let i = ref 0 in
  let push t p = toks := { t; pos = p } :: !toks in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      incr line;
      incr i;
      bol := !i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '/' then begin
      while !i < n && src.[!i] <> '\n' do incr i done
    end
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '*' then begin
      let p = pos !i in
      i := !i + 2;
      let closed = ref false in
      while (not !closed) && !i + 1 < n do
        if src.[!i] = '*' && src.[!i + 1] = '/' then begin
          closed := true;
          i := !i + 2
        end
        else begin
          if src.[!i] = '\n' then begin
            incr line;
            bol := !i + 1
          end;
          incr i
        end
      done;
      if not !closed then raise (Lex_error ("unterminated comment", p))
    end
    else if is_digit c then begin
      let p = pos !i in
      let start = !i in
      while !i < n && is_digit src.[!i] do incr i done;
      if !i < n && (src.[!i] = '.' || src.[!i] = 'e' || src.[!i] = 'E') then begin
        if !i < n && src.[!i] = '.' then begin
          incr i;
          while !i < n && is_digit src.[!i] do incr i done
        end;
        if !i < n && (src.[!i] = 'e' || src.[!i] = 'E') then begin
          incr i;
          if !i < n && (src.[!i] = '+' || src.[!i] = '-') then incr i;
          while !i < n && is_digit src.[!i] do incr i done
        end;
        let s = String.sub src start (!i - start) in
        match float_of_string_opt s with
        | Some f -> push (FLOAT_LIT f) p
        | None -> raise (Lex_error ("bad float literal " ^ s, p))
      end
      else
        let s = String.sub src start (!i - start) in
        match int_of_string_opt s with
        | Some k -> push (INT_LIT k) p
        | None -> raise (Lex_error ("bad int literal " ^ s, p))
    end
    else if is_ident_start c then begin
      let p = pos !i in
      let start = !i in
      while !i < n && is_ident_char src.[!i] do incr i done;
      let s = String.sub src start (!i - start) in
      if List.mem s keywords then push (KW s) p else push (IDENT s) p
    end
    else begin
      let p = pos !i in
      let two =
        if !i + 1 < n then Some (String.sub src !i 2) else None
      in
      match two with
      | Some (("==" | "!=" | "<=" | ">=" | "&&" | "||" | "<<" | ">>") as op) ->
        push (PUNCT op) p;
        i := !i + 2
      | _ -> (
        match c with
        | '(' | ')' | '{' | '}' | '[' | ']' | ';' | ',' | '=' | '+' | '-'
        | '*' | '/' | '%' | '<' | '>' | '!' | '&' | '|' | '^' ->
          push (PUNCT (String.make 1 c)) p;
          incr i
        | _ ->
          raise (Lex_error (Printf.sprintf "unexpected character %C" c, p)))
    end
  done;
  push EOF (pos !i);
  List.rev !toks
