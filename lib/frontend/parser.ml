(* Recursive-descent parser for MiniC with precedence climbing for
   expressions.  Local declarations may appear anywhere in a function body
   and share a single flat function scope. *)

open Ast

exception Parse_error of string * pos

type state = {
  toks : Lexer.tok array;
  mutable cur : int;
  mutable locals : (string * ty) list;  (* collected per function, reversed *)
}

let peek st = st.toks.(st.cur)
let advance st = st.cur <- st.cur + 1

let fail st fmt =
  let p = (peek st).Lexer.pos in
  Printf.ksprintf (fun m -> raise (Parse_error (m, p))) fmt

let expect_punct st s =
  match (peek st).Lexer.t with
  | Lexer.PUNCT p when p = s -> advance st
  | _ -> fail st "expected %s" s

let expect_kw st s =
  match (peek st).Lexer.t with
  | Lexer.KW k when k = s -> advance st
  | _ -> fail st "expected keyword %s" s

let accept_punct st s =
  match (peek st).Lexer.t with
  | Lexer.PUNCT p when p = s ->
    advance st;
    true
  | _ -> false

let expect_ident st =
  match (peek st).Lexer.t with
  | Lexer.IDENT s ->
    advance st;
    s
  | _ -> fail st "expected identifier"

let expect_int st =
  match (peek st).Lexer.t with
  | Lexer.INT_LIT k ->
    advance st;
    k
  | _ -> fail st "expected integer literal"

let parse_ty st =
  match (peek st).Lexer.t with
  | Lexer.KW "int" ->
    advance st;
    Tint
  | Lexer.KW "float" ->
    advance st;
    Tfloat
  | _ -> fail st "expected a type"

(* --- Expressions -------------------------------------------------------- *)

(* Binding powers; higher binds tighter. *)
let binop_of_punct = function
  | "||" -> Some (Blor, 1)
  | "&&" -> Some (Bland, 2)
  | "|" -> Some (Bbor, 3)
  | "^" -> Some (Bbxor, 4)
  | "&" -> Some (Bband, 5)
  | "==" -> Some (Beq, 6)
  | "!=" -> Some (Bne, 6)
  | "<" -> Some (Blt, 7)
  | "<=" -> Some (Ble, 7)
  | ">" -> Some (Bgt, 7)
  | ">=" -> Some (Bge, 7)
  | "<<" -> Some (Bshl, 8)
  | ">>" -> Some (Bshr, 8)
  | "+" -> Some (Badd, 9)
  | "-" -> Some (Bsub, 9)
  | "*" -> Some (Bmul, 10)
  | "/" -> Some (Bdiv, 10)
  | "%" -> Some (Bmod, 10)
  | _ -> None

let rec parse_expr st = parse_bin st 0

and parse_bin st min_bp =
  let lhs = ref (parse_unary st) in
  let continue_ = ref true in
  while !continue_ do
    match (peek st).Lexer.t with
    | Lexer.PUNCT p -> (
      match binop_of_punct p with
      | Some (op, bp) when bp >= min_bp ->
        let pos = (peek st).Lexer.pos in
        advance st;
        let rhs = parse_bin st (bp + 1) in
        lhs := { e = Bin (op, !lhs, rhs); pos }
      | _ -> continue_ := false)
    | _ -> continue_ := false
  done;
  !lhs

and parse_unary st =
  let pos = (peek st).Lexer.pos in
  match (peek st).Lexer.t with
  | Lexer.PUNCT "-" ->
    advance st;
    { e = Un (Uneg, parse_unary st); pos }
  | Lexer.PUNCT "!" ->
    advance st;
    { e = Un (Unot, parse_unary st); pos }
  | _ -> parse_primary st

and parse_primary st =
  let pos = (peek st).Lexer.pos in
  match (peek st).Lexer.t with
  | Lexer.INT_LIT k ->
    advance st;
    { e = Int k; pos }
  | Lexer.FLOAT_LIT f ->
    advance st;
    { e = Float f; pos }
  | Lexer.KW ("int" | "float") ->
    let ty = parse_ty st in
    expect_punct st "(";
    let e = parse_expr st in
    expect_punct st ")";
    { e = Cast (ty, e); pos }
  | Lexer.IDENT name -> (
    advance st;
    match (peek st).Lexer.t with
    | Lexer.PUNCT "(" ->
      advance st;
      let args = parse_args st in
      { e = Call (name, args); pos }
    | Lexer.PUNCT "[" ->
      advance st;
      let idx = parse_expr st in
      expect_punct st "]";
      { e = Index (name, idx); pos }
    | _ -> { e = Var name; pos })
  | Lexer.PUNCT "(" ->
    advance st;
    let e = parse_expr st in
    expect_punct st ")";
    e
  | _ -> fail st "expected an expression"

and parse_args st =
  if accept_punct st ")" then []
  else begin
    let rec more acc =
      if accept_punct st "," then more (parse_expr st :: acc)
      else begin
        expect_punct st ")";
        List.rev acc
      end
    in
    more [ parse_expr st ]
  end

(* --- Statements --------------------------------------------------------- *)

let rec parse_stmt st : stmt =
  let spos = (peek st).Lexer.pos in
  match (peek st).Lexer.t with
  | Lexer.KW ("int" | "float") ->
    (* Local declaration, optionally initialized. *)
    let ty = parse_ty st in
    let name = expect_ident st in
    (* Function-flat scope: redeclaring a local with the same type (the C
       block-scope idiom `int i;` in several loop bodies) reuses the
       variable; changing its type is an error. *)
    (match List.assoc_opt name st.locals with
    | Some ty' when ty' <> ty ->
      raise
        (Parse_error ("local " ^ name ^ " redeclared with a different type",
                      spos))
    | Some _ -> ()
    | None -> st.locals <- (name, ty) :: st.locals);
    if accept_punct st "=" then begin
      let e = parse_expr st in
      expect_punct st ";";
      { s = Assign (name, e); spos }
    end
    else begin
      expect_punct st ";";
      (* Declaration without initialization: zero-initialize for
         deterministic semantics. *)
      let zero =
        match ty with
        | Tint -> { e = Int 0; pos = spos }
        | Tfloat -> { e = Float 0.0; pos = spos }
      in
      { s = Assign (name, zero); spos }
    end
  | Lexer.KW "if" ->
    advance st;
    expect_punct st "(";
    let cond = parse_expr st in
    expect_punct st ")";
    let then_ = parse_block st in
    let else_ =
      match (peek st).Lexer.t with
      | Lexer.KW "else" ->
        advance st;
        (match (peek st).Lexer.t with
        | Lexer.KW "if" -> [ parse_stmt st ]
        | _ -> parse_block st)
      | _ -> []
    in
    { s = If (cond, then_, else_); spos }
  | Lexer.KW "while" ->
    advance st;
    expect_punct st "(";
    let cond = parse_expr st in
    expect_punct st ")";
    let body = parse_block st in
    { s = While (cond, body); spos }
  | Lexer.KW "for" ->
    advance st;
    expect_punct st "(";
    let init =
      if (peek st).Lexer.t = Lexer.PUNCT ";" then None
      else Some (parse_simple st)
    in
    expect_punct st ";";
    let cond = parse_expr st in
    expect_punct st ";";
    let step =
      if (peek st).Lexer.t = Lexer.PUNCT ")" then None
      else Some (parse_simple st)
    in
    expect_punct st ")";
    let body = parse_block st in
    { s = For (init, cond, step, body); spos }
  | Lexer.KW "return" ->
    advance st;
    if accept_punct st ";" then { s = Return None; spos }
    else begin
      let e = parse_expr st in
      expect_punct st ";";
      { s = Return (Some e); spos }
    end
  | Lexer.KW "emit" ->
    advance st;
    expect_punct st "(";
    let e = parse_expr st in
    expect_punct st ")";
    expect_punct st ";";
    { s = Emit e; spos }
  | Lexer.KW "break" ->
    advance st;
    expect_punct st ";";
    { s = Break; spos }
  | Lexer.KW "continue" ->
    advance st;
    expect_punct st ";";
    { s = Continue; spos }
  | _ ->
    let s = parse_simple st in
    expect_punct st ";";
    s

(* Assignment or expression statement, without the trailing semicolon
   (shared by for-headers and plain statements). *)
and parse_simple st : stmt =
  let spos = (peek st).Lexer.pos in
  match (peek st).Lexer.t with
  | Lexer.IDENT name -> (
    advance st;
    match (peek st).Lexer.t with
    | Lexer.PUNCT "=" ->
      advance st;
      let e = parse_expr st in
      { s = Assign (name, e); spos }
    | Lexer.PUNCT "[" ->
      advance st;
      let idx = parse_expr st in
      expect_punct st "]";
      (match (peek st).Lexer.t with
      | Lexer.PUNCT "=" ->
        advance st;
        let e = parse_expr st in
        { s = Store (name, idx, e); spos }
      | _ -> fail st "expected = after array index")
    | Lexer.PUNCT "(" ->
      advance st;
      let args = parse_args st in
      { s = Expr { e = Call (name, args); pos = spos }; spos }
    | _ -> fail st "expected =, [ or ( after identifier")
  | _ -> fail st "expected a statement"

and parse_block st : stmt list =
  if accept_punct st "{" then begin
    let rec stmts acc =
      if accept_punct st "}" then List.rev acc
      else stmts (parse_stmt st :: acc)
    in
    stmts []
  end
  else [ parse_stmt st ]

(* --- Top level ----------------------------------------------------------- *)

let parse_global st : global_decl =
  expect_kw st "global";
  let gty = parse_ty st in
  let gname = expect_ident st in
  expect_punct st "[";
  let gsize = expect_int st in
  expect_punct st "]";
  let ginit =
    if accept_punct st "=" then begin
      expect_punct st "{";
      let rec nums acc =
        let v =
          match (peek st).Lexer.t with
          | Lexer.INT_LIT k ->
            advance st;
            float_of_int k
          | Lexer.FLOAT_LIT f ->
            advance st;
            f
          | Lexer.PUNCT "-" ->
            advance st;
            (match (peek st).Lexer.t with
            | Lexer.INT_LIT k ->
              advance st;
              -.float_of_int k
            | Lexer.FLOAT_LIT f ->
              advance st;
              -.f
            | _ -> fail st "expected a number")
          | _ -> fail st "expected a number"
        in
        if accept_punct st "," then nums (v :: acc)
        else begin
          expect_punct st "}";
          List.rev (v :: acc)
        end
      in
      nums []
    end
    else []
  in
  expect_punct st ";";
  { gname; gty; gsize; ginit }

let parse_func st : func_decl =
  let ret =
    match (peek st).Lexer.t with
    | Lexer.KW "void" ->
      advance st;
      None
    | _ -> Some (parse_ty st)
  in
  let fname = expect_ident st in
  expect_punct st "(";
  let params =
    if accept_punct st ")" then []
    else begin
      let one () =
        let pty = parse_ty st in
        let pname = expect_ident st in
        { pname; pty }
      in
      let rec more acc =
        if accept_punct st "," then more (one () :: acc)
        else begin
          expect_punct st ")";
          List.rev acc
        end
      in
      more [ one () ]
    end
  in
  st.locals <- [];
  expect_punct st "{";
  let rec stmts acc =
    if accept_punct st "}" then List.rev acc
    else stmts (parse_stmt st :: acc)
  in
  let body = stmts [] in
  { fname; params; ret; locals = List.rev st.locals; body }

let parse (src : string) : program =
  let st = { toks = Array.of_list (Lexer.tokenize src); cur = 0; locals = [] } in
  let rec top globals funcs =
    match (peek st).Lexer.t with
    | Lexer.EOF -> { globals = List.rev globals; funcs = List.rev funcs }
    | Lexer.KW "global" -> top (parse_global st :: globals) funcs
    | _ -> top globals (parse_func st :: funcs)
  in
  top [] []
