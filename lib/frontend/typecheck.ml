(* Type checking for MiniC.  Int promotes implicitly to float in mixed
   arithmetic and on assignment; float narrows to int only through an
   explicit cast.  Conditions, logical and bitwise operators are over
   ints. *)

open Ast

exception Type_error of string * pos

let fail pos fmt = Printf.ksprintf (fun m -> raise (Type_error (m, pos))) fmt

type intrinsic_sig = { args : ty list; ret_ty : ty }

let intrinsics : (string * intrinsic_sig) list =
  [
    ("sqrt", { args = [ Tfloat ]; ret_ty = Tfloat });
    ("sin", { args = [ Tfloat ]; ret_ty = Tfloat });
    ("cos", { args = [ Tfloat ]; ret_ty = Tfloat });
    ("exp", { args = [ Tfloat ]; ret_ty = Tfloat });
    ("log", { args = [ Tfloat ]; ret_ty = Tfloat });
    ("fabs", { args = [ Tfloat ]; ret_ty = Tfloat });
    ("abs", { args = [ Tint ]; ret_ty = Tint });
    ("min", { args = [ Tint; Tint ]; ret_ty = Tint });
    ("max", { args = [ Tint; Tint ]; ret_ty = Tint });
    ("fmin", { args = [ Tfloat; Tfloat ]; ret_ty = Tfloat });
    ("fmax", { args = [ Tfloat; Tfloat ]; ret_ty = Tfloat });
  ]

type env = {
  vars : (string, ty) Hashtbl.t;
  globals : (string, ty) Hashtbl.t;                 (* element types *)
  funcs : (string, ty list * ty option) Hashtbl.t;  (* params, return *)
  ret : ty option;
}

let rec type_of_expr (env : env) (ex : expr) : ty =
  match ex.e with
  | Int _ -> Tint
  | Float _ -> Tfloat
  | Var v -> (
    match Hashtbl.find_opt env.vars v with
    | Some t -> t
    | None -> fail ex.pos "unknown variable %s" v)
  | Index (a, idx) -> (
    (match type_of_expr env idx with
    | Tint -> ()
    | Tfloat -> fail idx.pos "array index must be int");
    match Hashtbl.find_opt env.globals a with
    | Some t -> t
    | None -> fail ex.pos "unknown array %s" a)
  | Cast (t, e) ->
    ignore (type_of_expr env e);
    t
  | Un (Uneg, e) -> type_of_expr env e
  | Un (Unot, e) -> (
    match type_of_expr env e with
    | Tint -> Tint
    | Tfloat -> fail ex.pos "! expects an int operand")
  | Bin (op, a, b) -> (
    let ta = type_of_expr env a and tb = type_of_expr env b in
    match op with
    | Badd | Bsub | Bmul | Bdiv ->
      if ta = Tfloat || tb = Tfloat then Tfloat else Tint
    | Bmod | Bband | Bbor | Bbxor | Bshl | Bshr | Bland | Blor ->
      if ta = Tint && tb = Tint then Tint
      else fail ex.pos "integer operator applied to float operands"
    | Beq | Bne | Blt | Ble | Bgt | Bge -> Tint)
  | Call (name, args) -> (
    match List.assoc_opt name intrinsics with
    | Some si ->
      if List.length args <> List.length si.args then
        fail ex.pos "intrinsic %s expects %d arguments" name
          (List.length si.args);
      List.iter2
        (fun a expected ->
          let got = type_of_expr env a in
          match (got, expected) with
          | t, u when t = u -> ()
          | Tint, Tfloat -> ()  (* promoted *)
          | _ -> fail a.pos "intrinsic %s: argument type mismatch" name)
        args si.args;
      si.ret_ty
    | None -> (
      match Hashtbl.find_opt env.funcs name with
      | None -> fail ex.pos "call to unknown function %s" name
      | Some (ptys, ret) ->
        if List.length args <> List.length ptys then
          fail ex.pos "function %s expects %d arguments" name
            (List.length ptys);
        List.iter2
          (fun a expected ->
            let got = type_of_expr env a in
            match (got, expected) with
            | t, u when t = u -> ()
            | Tint, Tfloat -> ()
            | _ -> fail a.pos "function %s: argument type mismatch" name)
          args ptys;
        (match ret with
        | Some t -> t
        | None -> fail ex.pos "void function %s used in an expression" name)))

let check_assignable pos ~src ~dst =
  match (src, dst) with
  | t, u when t = u -> ()
  | Tint, Tfloat -> ()
  | Tfloat, Tint ->
    fail pos "cannot assign float to int without an explicit int(...) cast"
  | _ -> ()

let rec check_stmt (env : env) (in_loop : bool) (st : stmt) : unit =
  match st.s with
  | Assign (v, e) -> (
    let te = type_of_expr env e in
    match Hashtbl.find_opt env.vars v with
    | Some tv -> check_assignable st.spos ~src:te ~dst:tv
    | None -> fail st.spos "assignment to unknown variable %s" v)
  | Store (a, idx, e) -> (
    (match type_of_expr env idx with
    | Tint -> ()
    | Tfloat -> fail idx.pos "array index must be int");
    let te = type_of_expr env e in
    match Hashtbl.find_opt env.globals a with
    | Some ta -> check_assignable st.spos ~src:te ~dst:ta
    | None -> fail st.spos "store to unknown array %s" a)
  | If (c, t, e) ->
    (match type_of_expr env c with
    | Tint -> ()
    | Tfloat -> fail c.pos "condition must be int");
    List.iter (check_stmt env in_loop) t;
    List.iter (check_stmt env in_loop) e
  | While (c, body) ->
    (match type_of_expr env c with
    | Tint -> ()
    | Tfloat -> fail c.pos "condition must be int");
    List.iter (check_stmt env true) body
  | For (init, c, step, body) ->
    Option.iter (check_stmt env in_loop) init;
    (match type_of_expr env c with
    | Tint -> ()
    | Tfloat -> fail c.pos "condition must be int");
    Option.iter (check_stmt env true) step;
    List.iter (check_stmt env true) body
  | Expr e -> (
    match e.e with
    | Call (name, _) when not (List.mem_assoc name intrinsics) -> (
      match Hashtbl.find_opt env.funcs name with
      | Some (_, None) ->
        (* A void call: re-check arguments only. *)
        let args_of ex =
          match ex.e with Call (_, a) -> a | _ -> []
        in
        List.iter (fun a -> ignore (type_of_expr env a)) (args_of e)
      | _ -> ignore (type_of_expr env e))
    | _ -> ignore (type_of_expr env e))
  | Return None -> (
    match env.ret with
    | None -> ()
    | Some t -> fail st.spos "missing return value of type %s" (string_of_ty t))
  | Return (Some e) -> (
    let te = type_of_expr env e in
    match env.ret with
    | None -> fail st.spos "void function returns a value"
    | Some t -> check_assignable st.spos ~src:te ~dst:t)
  | Emit e -> ignore (type_of_expr env e)
  | Break | Continue ->
    if not in_loop then fail st.spos "break/continue outside a loop"

let check_program (p : program) : unit =
  let globals = Hashtbl.create 16 and funcs = Hashtbl.create 16 in
  List.iter
    (fun g ->
      if Hashtbl.mem globals g.gname then
        fail { line = 0; col = 0 } "duplicate global %s" g.gname;
      if g.gsize <= 0 then
        fail { line = 0; col = 0 } "global %s has non-positive size" g.gname;
      if List.length g.ginit > g.gsize then
        fail { line = 0; col = 0 } "global %s initializer too long" g.gname;
      Hashtbl.replace globals g.gname g.gty)
    p.globals;
  List.iter
    (fun f ->
      if Hashtbl.mem funcs f.fname || List.mem_assoc f.fname intrinsics then
        fail { line = 0; col = 0 } "duplicate function %s" f.fname;
      Hashtbl.replace funcs f.fname
        (List.map (fun pa -> pa.pty) f.params, f.ret))
    p.funcs;
  if not (Hashtbl.mem funcs "main") then
    fail { line = 0; col = 0 } "program has no main function";
  List.iter
    (fun f ->
      let vars = Hashtbl.create 16 in
      List.iter
        (fun pa ->
          if Hashtbl.mem vars pa.pname then
            fail { line = 0; col = 0 } "%s: duplicate parameter %s" f.fname
              pa.pname;
          Hashtbl.replace vars pa.pname pa.pty)
        f.params;
      List.iter
        (fun (n, t) ->
          if Hashtbl.mem vars n then
            fail { line = 0; col = 0 } "%s: duplicate local %s" f.fname n;
          Hashtbl.replace vars n t)
        f.locals;
      let env = { vars; globals; funcs; ret = f.ret } in
      List.iter (check_stmt env false) f.body)
    p.funcs
