(** Hand-written lexer for MiniC. *)

type token =
  | INT_LIT of int
  | FLOAT_LIT of float
  | IDENT of string
  | KW of string
  | PUNCT of string
  | EOF

type tok = { t : token; pos : Ast.pos }

exception Lex_error of string * Ast.pos

val keywords : string list

val tokenize : string -> tok list
(** @raise Lex_error on malformed literals, stray characters, or an
    unterminated comment. *)
