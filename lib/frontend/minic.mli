(** Facade: compile MiniC source text to a validated IR program.

    MiniC is the small imperative language the benchmark suite is written
    in: [int] and [float] scalars, one-dimensional global arrays,
    functions without recursion, [for]/[while]/[if] control flow, and an
    [emit(e)] statement that appends to the program's output. *)

exception Compile_error of string
(** Lexical, syntactic, type or lowering errors, with positions. *)

val compile : string -> Ir.Func.program
(** @raise Compile_error *)
