(** The three case studies, wired to the evolution driver.

    A study fixes the heuristic slot the genome occupies, the machine
    model (Table 3 / 32-register Table 3 / Itanium-like), and whether
    simulated measurement noise is injected (the paper's prefetching
    study ran on a real machine).  Fitness is the paper's definition:
    execution-time speedup over the compiler's baseline heuristic.  A
    candidate whose compiled program produces wrong output gets fitness 0
    — "our system can also be used to uncover bugs!".

    All candidate evaluation goes through the batch {!Evaluator} engine:
    the experiment drivers below share a uniform
    [?params ?jobs ?cache_dir] prefix controlling GP scale, the process
    pool width and the persistent fitness cache. *)

type kind =
  | Hyperblock_study
  | Regalloc_study
  | Prefetch_study
  | Sched_study
      (** extension: the list scheduler's ranking, motivated by the
          paper's Section 2 *)

val kind_name : kind -> string
(** ["hyperblock" | "regalloc" | "prefetch" | "sched"]. *)

val machine_of : kind -> Machine.Config.t
val feature_set_of : kind -> Gp.Feature_set.t
val sort_of : kind -> [ `Real | `Bool ]
val baseline_genome_of : kind -> Gp.Expr.genome
val noise_of : kind -> float option

val heuristics_with : kind -> Gp.Expr.genome -> Compiler.heuristics
(** @raise Invalid_argument on a genome of the wrong sort. *)

(** One record for everything an experiment run shares: GP scale, machine
    override, {!Gp.Parmap} pool shape, caches, supervision, and the two
    reference-vs-fast switches.  Build it in one place (the CLI does) and
    hand it to the [_with] drivers; the per-driver optional-argument
    prefixes survive as thin wrappers for existing callers. *)
type config = {
  params : Gp.Params.t;          (** GP scale (population, generations) *)
  machine : Machine.Config.t option;  (** [None] = the study's default *)
  backend : Gp.Parmap.backend;   (** pool flavor, default [`Fork] *)
  jobs : int;                    (** pool width, default 1 *)
  cache_dir : string option;     (** persistent fitness cache *)
  cache_shards : int;
      (** shard count of the fitness cache (see {!Shardstore}); default
          {!Shardstore.default_shards}, only meaningful with [cache_dir] *)
  checkpoint_dir : string option;  (** per-generation checkpointing *)
  timeout_s : float option;      (** per-evaluation deadline (fork only) *)
  retries : int;                 (** re-runs of a crashed/hung task *)
  chunk_target_ms : float option;
      (** target per-chunk wall clock of the pool's adaptive dispatch
          (see {!Gp.Parmap.pool}); [None] = the pool's default *)
  chunk_min : int option;        (** chunk-length floor; [None] = default *)
  chunk_max : int option;        (** chunk-length ceiling; [None] = default *)
  fast_sim : bool;               (** {!Simcache} fast paths, default on *)
  compiled_eval : bool;
      (** evaluate heuristic expressions through the {!Gp.Evalc} bytecode
          compiler (default) rather than the {!Gp.Eval} tree-walker;
          fitness is bit-identical either way *)
  remote : string option;
      (** socket path of a [metaopt serve] daemon ([--connect]): cache
          misses are shipped there instead of any local pool, and
          [backend]/[jobs]/[cache_dir] stop applying to candidate
          evaluation (the daemon owns the pool and the store).  Requires
          the serve client's dialer to be registered (see
          {!set_remote_dialer}); results are bit-identical to a local
          run of the same study. *)
}

val default_config : config
(** Sequential [`Fork]-backed run at {!Gp.Params.scaled}, no caches, no
    deadline, 1 retry, fast-sim and compiled-eval on, not remote. *)

(** {1 Served evaluation}

    [lib/serve] sits above this library, so the client is injected: the
    daemon client registers a dialer once at startup and a [config] with
    [remote = Some socket] dials through it. *)

(** What a client ships to the daemon to identify a study shape: the
    resolved machine travels whole (pure data), so client-side [--machine]
    overrides are honored by the daemon's workers. *)
type remote_desc = {
  rd_kind : kind;
  rd_benches : string list;
  rd_machine : Machine.Config.t;
  rd_fast_sim : bool;
  rd_compiled_eval : bool;
}

type remote_handle = {
  rh_eval : Benchmarks.Bench.dataset -> Evaluator.remote;
      (** per-dataset miss dispatcher, plugged into the evaluators *)
  rh_close : unit -> unit;
      (** drop the connection; a later [rh_eval] redials *)
}

val set_remote_dialer : (socket:string -> remote_desc -> remote_handle) -> unit

(** The daemon-side evaluation closure for one study shape. *)
type service = {
  svc_n_cases : int;
  svc_case_name : int -> string;
  svc_eval : Benchmarks.Bench.dataset -> Gp.Expr.genome -> int -> float;
}

val service_of :
  ?machine:Machine.Config.t -> ?fast_sim:bool -> ?compiled_eval:bool ->
  kind -> string list -> service
(** Prepare the benchmarks, compute sequential baselines on both
    datasets, and return the exact evaluation pipeline a local context's
    engines would dispatch.  Genomes passed to [svc_eval] must already be
    canonical (the client canonicalized before digesting); they are
    evaluated as given.  Safe to call lazily inside a pool worker — it
    spawns no pools of its own. *)

val service_of_desc : remote_desc -> service
(** {!service_of} over a wire-received description. *)

type context = {
  kind : kind;
  machine : Machine.Config.t;
  compiled_eval : bool;  (** how heuristic expressions are evaluated *)
  prepared : Compiler.prepared array;
  baseline_train : (float * int) array;  (** cycles, checksum per case *)
  baseline_novel : (float * int) array;
  eval_train : Evaluator.t;  (** cached batch engine, training dataset *)
  eval_novel : Evaluator.t;  (** cached batch engine, novel dataset *)
  sim : Simcache.t;  (** shared artifact/trace simulation cache *)
  remote : remote_handle option;  (** the served connection, if any *)
}

val create_with : config -> kind -> string list -> context
(** Prepare the named benchmarks, compile + simulate the baseline on both
    datasets (over the configured pool), and build one cached batch
    evaluator per dataset.  Each evaluator keeps a persistent worker pool
    alive across its batches (spawned lazily on first use); callers that
    build a context directly own its lifetime and should {!close} it —
    the [_with] experiment drivers below do so on every exit path.  [timeout_s] and [retries] configure the
    evaluators' supervision (see {!Evaluator.create}): a candidate
    compile that hangs or crashes its worker is killed, retried, and
    ultimately scored 0 without poisoning the persistent cache.
    [fast_sim] (default true) enables the {!Simcache} fast paths —
    artifact-keyed result sharing, trace replay, and the pre-decoded
    interpreter; disabling it routes every measurement through a fresh
    reference-engine simulation.  [compiled_eval] selects {!Gp.Evalc}
    bytecode (default) versus the {!Gp.Eval} tree-walker for heuristic
    expressions.  Results are bit-identical across all of these
    switches. *)

val create :
  ?machine:Machine.Config.t -> ?jobs:int -> ?cache_dir:string ->
  ?timeout_s:float -> ?retries:int -> ?fast_sim:bool ->
  kind -> string list -> context
(** [create ...] is {!create_with} over {!default_config} with the given
    overrides.
    @deprecated new callers should build a {!config} and use
    {!create_with}. *)

val evaluator_of : context -> Benchmarks.Bench.dataset -> Evaluator.t

val faults : context -> Evaluator.fault_stats
(** Combined fault counters of both dataset evaluators. *)

val close : context -> unit
(** Shut down the persistent worker pools behind both dataset engines
    (see {!Evaluator.shutdown}).  Idempotent, and the context stays
    usable — a later supervised batch spawns a fresh pool.  The [_with]
    drivers call this themselves; only direct {!create_with} /
    {!create} callers need to. *)

val speedup :
  context -> Gp.Expr.genome -> case:int ->
  dataset:Benchmarks.Bench.dataset -> float
(** A raw, uncached single measurement (diagnostics and tests); prefer
    the context's evaluators for anything repeated. *)

val problem_of : context -> Gp.Evolve.problem
(** The evolution problem over the context's training-dataset engine; no
    caller builds a raw per-(genome, case) closure anymore. *)

type specialization = {
  bench : string;
  train_speedup : float;
  novel_speedup : float;
  best_expr : string;
  history : Gp.Evolve.generation_stats list;
  faults : Evaluator.fault_stats;  (** infra failures during the run *)
}

val specialize_with :
  ?on_generation:(Gp.Evolve.generation_stats -> unit) ->
  config -> kind -> string -> specialization
(** Figures 4 / 9 / 13: evolve for a single benchmark, measure on both
    datasets.  [config.checkpoint_dir] enables per-generation
    checkpointing and resume, and [on_generation] is forwarded to the
    evolution loop (see {!Gp.Evolve.run}).  With {!Gp.Telemetry} enabled,
    emits one [kind = "run_summary"] record (evaluations, cache hit
    counts, fault counters, elapsed seconds, best expression) at the end
    of the run, as does {!evolve_general_with}. *)

val specialize :
  ?params:Gp.Params.t -> ?jobs:int -> ?cache_dir:string ->
  ?timeout_s:float -> ?retries:int -> ?checkpoint_dir:string ->
  ?on_generation:(Gp.Evolve.generation_stats -> unit) -> ?fast_sim:bool ->
  kind -> string -> specialization
(** {!specialize_with} over {!default_config} with the given overrides.
    @deprecated new callers should build a {!config} and use
    {!specialize_with}. *)

type general = {
  best : Gp.Expr.genome;
  best_expr : string;
  train_rows : (string * float * float) list;  (** bench, train, novel *)
  history : Gp.Evolve.generation_stats list;
  faults : Evaluator.fault_stats;  (** infra failures during the run *)
}

val evolve_general_with :
  ?on_generation:(Gp.Evolve.generation_stats -> unit) ->
  config -> kind -> string list -> general
(** Figures 6 / 11 / 15: one priority function over a training suite with
    dynamic subset selection.  [config.checkpoint_dir] enables
    per-generation checkpointing and resume, and [on_generation] is
    forwarded to the evolution loop (see {!Gp.Evolve.run}). *)

val evolve_general :
  ?params:Gp.Params.t -> ?jobs:int -> ?cache_dir:string ->
  ?timeout_s:float -> ?retries:int -> ?checkpoint_dir:string ->
  ?on_generation:(Gp.Evolve.generation_stats -> unit) -> ?fast_sim:bool ->
  kind -> string list -> general
(** {!evolve_general_with} over {!default_config} with the given
    overrides.
    @deprecated new callers should build a {!config} and use
    {!evolve_general_with}. *)

val cross_validate_with :
  config -> kind -> Gp.Expr.genome -> string list ->
  (string * float * float) list
(** Figures 7 / 12 / 16: a fixed evolved function applied to benchmarks
    it was not trained on.  [config.params] and [config.checkpoint_dir]
    are ignored — no evolution happens here. *)

val cross_validate :
  ?params:Gp.Params.t -> ?jobs:int -> ?cache_dir:string ->
  ?timeout_s:float -> ?retries:int ->
  ?machine:Machine.Config.t -> ?fast_sim:bool ->
  kind -> Gp.Expr.genome -> string list ->
  (string * float * float) list
(** {!cross_validate_with} over {!default_config} with the given
    overrides.
    @deprecated new callers should build a {!config} and use
    {!cross_validate_with}. *)
