(** The three case studies, wired to the evolution driver.

    A study fixes the heuristic slot the genome occupies, the machine
    model (Table 3 / 32-register Table 3 / Itanium-like), and whether
    simulated measurement noise is injected (the paper's prefetching
    study ran on a real machine).  Fitness is the paper's definition:
    execution-time speedup over the compiler's baseline heuristic.  A
    candidate whose compiled program produces wrong output gets fitness 0
    — "our system can also be used to uncover bugs!".

    All candidate evaluation goes through the batch {!Evaluator} engine:
    the experiment drivers below share a uniform
    [?params ?jobs ?cache_dir] prefix controlling GP scale, the process
    pool width and the persistent fitness cache. *)

type kind =
  | Hyperblock_study
  | Regalloc_study
  | Prefetch_study
  | Sched_study
      (** extension: the list scheduler's ranking, motivated by the
          paper's Section 2 *)

val kind_name : kind -> string
(** ["hyperblock" | "regalloc" | "prefetch" | "sched"]. *)

val machine_of : kind -> Machine.Config.t
val feature_set_of : kind -> Gp.Feature_set.t
val sort_of : kind -> [ `Real | `Bool ]
val baseline_genome_of : kind -> Gp.Expr.genome
val noise_of : kind -> float option

val heuristics_with : kind -> Gp.Expr.genome -> Compiler.heuristics
(** @raise Invalid_argument on a genome of the wrong sort. *)

type context = {
  kind : kind;
  machine : Machine.Config.t;
  prepared : Compiler.prepared array;
  baseline_train : (float * int) array;  (** cycles, checksum per case *)
  baseline_novel : (float * int) array;
  eval_train : Evaluator.t;  (** cached batch engine, training dataset *)
  eval_novel : Evaluator.t;  (** cached batch engine, novel dataset *)
  sim : Simcache.t;  (** shared artifact/trace simulation cache *)
}

val create :
  ?machine:Machine.Config.t -> ?jobs:int -> ?cache_dir:string ->
  ?timeout_s:float -> ?retries:int -> ?fast_sim:bool ->
  kind -> string list -> context
(** Prepare the named benchmarks, compile + simulate the baseline on both
    datasets ([jobs]-wide), and build one cached batch evaluator per
    dataset.  [timeout_s] and [retries] configure the evaluators'
    supervision (see {!Evaluator.create}): a candidate compile that hangs
    or crashes its worker is killed, retried, and ultimately scored 0
    without poisoning the persistent cache.  [fast_sim] (default true)
    enables the {!Simcache} fast paths — artifact-keyed result sharing,
    trace replay, and the pre-decoded interpreter; disabling it routes
    every measurement through a fresh reference-engine simulation.
    Results are bit-identical either way. *)

val evaluator_of : context -> Benchmarks.Bench.dataset -> Evaluator.t

val faults : context -> Evaluator.fault_stats
(** Combined fault counters of both dataset evaluators. *)

val speedup :
  context -> Gp.Expr.genome -> case:int ->
  dataset:Benchmarks.Bench.dataset -> float
(** A raw, uncached single measurement (diagnostics and tests); prefer
    the context's evaluators for anything repeated. *)

val problem_of : context -> Gp.Evolve.problem
(** The evolution problem over the context's training-dataset engine; no
    caller builds a raw per-(genome, case) closure anymore. *)

type specialization = {
  bench : string;
  train_speedup : float;
  novel_speedup : float;
  best_expr : string;
  history : Gp.Evolve.generation_stats list;
  faults : Evaluator.fault_stats;  (** infra failures during the run *)
}

val specialize :
  ?params:Gp.Params.t -> ?jobs:int -> ?cache_dir:string ->
  ?timeout_s:float -> ?retries:int -> ?checkpoint_dir:string ->
  ?on_generation:(Gp.Evolve.generation_stats -> unit) -> ?fast_sim:bool ->
  kind -> string -> specialization
(** Figures 4 / 9 / 13: evolve for a single benchmark, measure on both
    datasets.  [checkpoint_dir] enables per-generation checkpointing and
    resume, and [on_generation] is forwarded to the evolution loop (see
    {!Gp.Evolve.run}).  With {!Gp.Telemetry} enabled, emits one
    [kind = "run_summary"] record (evaluations, cache hit counts, fault
    counters, elapsed seconds, best expression) at the end of the run,
    as does {!evolve_general}. *)

type general = {
  best : Gp.Expr.genome;
  best_expr : string;
  train_rows : (string * float * float) list;  (** bench, train, novel *)
  history : Gp.Evolve.generation_stats list;
  faults : Evaluator.fault_stats;  (** infra failures during the run *)
}

val evolve_general :
  ?params:Gp.Params.t -> ?jobs:int -> ?cache_dir:string ->
  ?timeout_s:float -> ?retries:int -> ?checkpoint_dir:string ->
  ?on_generation:(Gp.Evolve.generation_stats -> unit) -> ?fast_sim:bool ->
  kind -> string list -> general
(** Figures 6 / 11 / 15: one priority function over a training suite with
    dynamic subset selection.  [checkpoint_dir] enables per-generation
    checkpointing and resume, and [on_generation] is forwarded to the
    evolution loop (see {!Gp.Evolve.run}). *)

val cross_validate :
  ?params:Gp.Params.t -> ?jobs:int -> ?cache_dir:string ->
  ?timeout_s:float -> ?retries:int ->
  ?machine:Machine.Config.t -> ?fast_sim:bool ->
  kind -> Gp.Expr.genome -> string list ->
  (string * float * float) list
(** Figures 7 / 12 / 16: a fixed evolved function applied to benchmarks
    it was not trained on.  [?params] is accepted only for prefix
    uniformity. *)
