(** The evaluator's persistent fitness store, content-addressed and
    sharded by digest prefix.

    One {!open_store} per cache directory: entries ("digest value"
    lines, hex floats for exact round-trips) are spread over [shards]
    append-only files by the first byte of their digest, each file under
    its own advisory [lockf].  Concurrent studies sharing a --cache-dir
    therefore only contend when they touch the same shard, and a shard
    whose filesystem fails (ENOSPC, a revoked mount) degrades alone —
    the other shards keep persisting.

    Opening the store loads every shard plus the legacy single-file
    cache (fitness-cache.tsv, read-only) into one in-memory table, and
    {e compacts} any shard holding torn or superseded lines: the shard
    is rewritten in place under its exclusive lock (truncate + rewrite,
    never rename, so a concurrent appender cannot be stranded on an
    unlinked inode) and every dropped line is counted as an eviction
    ([evaluator.cache_evictions] in telemetry).  Compaction is
    idempotent — a clean shard is never rewritten.

    Failed shard writes are counted under [evaluator.cache_write_errors]
    and warned about once per shard; the chaos site
    [evaluator.cache_write] fires once per shard write, keyed by the
    store-wide append counter, and [evaluator.cache_lock] fires around
    the per-shard append lock with the same key.

    Every lockf/open/write on the append and compaction paths restarts
    on EINTR ({!Gp.Parmap.retry_eintr}): signals from the supervised
    pools never degrade a shard.  A {e persistent} lock failure skips
    that one append (counted, warned, values stay memo-only) rather than
    writing unlocked, and does not degrade the shard.  All descriptors
    are opened [O_CLOEXEC] so pre-forked pool workers and daemon
    children never inherit store fds. *)

type t

val default_shards : int
(** 16. *)

val open_store : ?shards:int -> string -> t
(** [open_store ~shards dir] creates [dir] if needed, loads legacy +
    shard files, and compacts damaged shards.  The shard count is part
    of the store's addressing: open a directory with the same count it
    was written with, or entries land in (and are looked up from) the
    wrong shard files — they are still found on load, which reads every
    shard, but append-time dedup across counts is not attempted.
    @raise Invalid_argument unless [1 <= shards <= 256]. *)

val find : t -> string -> float option
(** Lookup by 32-hex-char digest in the merged in-memory table. *)

val append : t -> (string * float) list -> unit
(** Persist a batch: entries are grouped by shard and each group is
    appended under its shard's exclusive lock in one write.  Non-finite
    values are refused (warned, skipped).  Appends to a degraded shard
    are silently dropped; the entries still enter the in-memory table,
    so the running process keeps its hits either way. *)

val shard_of : t -> string -> int
(** The shard index a digest lives in (pure function of content). *)

val shard_file : t -> int -> string
(** The path of shard [i]'s file. *)

val legacy_file : string -> string
(** [legacy_file dir] is the pre-shard single-file cache path
    ([dir/fitness-cache.tsv]); read on open, never written. *)

val shards : t -> int
(** The configured shard count. *)

val mem_any_degraded : t -> bool
(** Whether at least one shard has stopped persisting (sticky). *)

val all_degraded : t -> bool
(** Whether every shard has stopped persisting. *)

val evictions : t -> int
(** Lines dropped by compaction on load. *)

val write_errors : t -> int
(** Failed or skipped shard writes since open.  A genuine write error
    also degrades its shard; a persistent lock failure only skips the
    one append. *)
