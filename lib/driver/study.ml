(* The three case studies, wired to the evolution driver.

   A study picks which heuristic slot the genome occupies, the machine
   model, and whether simulated measurement noise is injected (the
   prefetching study ran on a real Itanium in the paper, so its fitness
   signal is noisy).  Fitness of a candidate on a benchmark is the paper's
   definition: execution-time speedup over the compiler's baseline
   heuristic on the training dataset. *)

type kind = Hyperblock_study | Regalloc_study | Prefetch_study | Sched_study

let machine_of = function
  | Hyperblock_study -> Machine.Config.table3
  | Sched_study -> Machine.Config.table3_narrow
  | Regalloc_study -> Machine.Config.table3_regalloc
  | Prefetch_study -> Machine.Config.itanium1

let feature_set_of = function
  | Hyperblock_study -> Hyperblock.Features.feature_set
  | Regalloc_study -> Regalloc.Features.feature_set
  | Prefetch_study -> Prefetch.Features.feature_set
  | Sched_study -> Sched.Priority.feature_set

let sort_of = function
  | Hyperblock_study | Regalloc_study | Sched_study -> `Real
  | Prefetch_study -> `Bool

let baseline_genome_of = function
  | Hyperblock_study -> Hyperblock.Baseline.genome
  | Regalloc_study -> Regalloc.Features.baseline_genome
  | Prefetch_study -> Prefetch.Features.baseline_genome
  | Sched_study -> Sched.Priority.baseline_genome

(* Noise amplitude for the prefetch study: +/-1.5% multiplicative, well
   below attainable speedups, as the paper requires of a usable fitness
   signal. *)
let noise_of = function
  | Hyperblock_study | Regalloc_study | Sched_study -> None
  | Prefetch_study -> Some 0.015

let heuristics_with (kind : kind) (g : Gp.Expr.genome) : Compiler.heuristics =
  let base = Compiler.baseline ~prefetch:(kind = Prefetch_study) () in
  match (kind, g) with
  | (Hyperblock_study | Regalloc_study | Sched_study), Gp.Expr.Bool _
  | Prefetch_study, Gp.Expr.Real _ ->
    invalid_arg "Study.heuristics_with: genome sort mismatch"
  | Hyperblock_study, Gp.Expr.Real e -> { base with Compiler.hb_priority = e }
  | Regalloc_study, Gp.Expr.Real e -> { base with Compiler.ra_savings = e }
  | Sched_study, Gp.Expr.Real e -> { base with Compiler.sched_priority = e }
  | Prefetch_study, Gp.Expr.Bool e ->
    { base with Compiler.pf_confidence = Some e }

(* --- Evaluation context -------------------------------------------------- *)

type context = {
  kind : kind;
  machine : Machine.Config.t;
  prepared : Compiler.prepared array;
  (* Baseline results per (case, dataset): cycles and output checksum. *)
  baseline_train : (float * int) array;
  baseline_novel : (float * int) array;
  mutable evaluations : int;
}

let noise_rng_of kind genome case =
  match noise_of kind with
  | None -> None
  | Some amp ->
    (* Deterministic per (genome, case) so memoized fitnesses are stable,
       but different candidates see different noise draws. *)
    let seed = Hashtbl.hash (genome, case) in
    Some (Random.State.make [| seed |], amp)

let run_one (ctx : context) (g : Gp.Expr.genome) ~case
    ~(dataset : Benchmarks.Bench.dataset) : float * int =
  let p = ctx.prepared.(case) in
  let compiled =
    Compiler.compile ~machine:ctx.machine
      ~heuristics:(heuristics_with ctx.kind g)
      p
  in
  let noise = noise_rng_of ctx.kind g case in
  let res = Compiler.simulate ?noise ~machine:ctx.machine ~dataset p compiled in
  (res.Machine.Simulate.cycles, res.Machine.Simulate.checksum)

let create ?machine (kind : kind) (bench_names : string list) : context =
  let machine = Option.value ~default:(machine_of kind) machine in
  (* The prefetching study compiles without unrolling (ORC's prefetch
     phase runs on clean loop nests; unrolled loops defeat the
     induction-variable analysis exactly as they would ORC's). *)
  let opt_config =
    match kind with
    | Prefetch_study -> Opt.Pipeline.no_unroll
    | Hyperblock_study | Regalloc_study | Sched_study -> Opt.Pipeline.default
  in
  let prepared =
    Array.of_list
      (List.map
         (fun n -> Compiler.prepare ~opt_config (Benchmarks.Registry.find n))
         bench_names)
  in
  let base = baseline_genome_of kind in
  let baseline_for dataset =
    Array.mapi
      (fun case _ -> run_one
           { kind; machine; prepared; baseline_train = [||];
             baseline_novel = [||]; evaluations = 0 }
           base ~case ~dataset)
      prepared
  in
  {
    kind;
    machine;
    prepared;
    baseline_train = baseline_for Benchmarks.Bench.Train;
    baseline_novel = baseline_for Benchmarks.Bench.Novel;
    evaluations = 0;
  }

(* Speedup of a candidate over the baseline on one case.  A candidate whose
   compiled program produces different output than the baseline is a
   compiler-correctness bug; it receives fitness 0 so evolution discards
   it (the paper: "Our system can also be used to uncover bugs!"). *)
let speedup (ctx : context) (g : Gp.Expr.genome) ~case
    ~(dataset : Benchmarks.Bench.dataset) : float =
  ctx.evaluations <- ctx.evaluations + 1;
  let base_cycles, base_sum =
    match dataset with
    | Benchmarks.Bench.Train -> ctx.baseline_train.(case)
    | Benchmarks.Bench.Novel -> ctx.baseline_novel.(case)
  in
  let cycles, sum = run_one ctx g ~case ~dataset in
  if sum <> base_sum then begin
    Logs.warn (fun m ->
        m "candidate heuristic broke %s (checksum mismatch)"
          ctx.prepared.(case).Compiler.bench.Benchmarks.Bench.name);
    0.0
  end
  else if cycles <= 0.0 then 0.0
  else base_cycles /. cycles

let problem_of (ctx : context) : Gp.Evolve.problem =
  {
    Gp.Evolve.fs = feature_set_of ctx.kind;
    sort = sort_of ctx.kind;
    baseline = Some (baseline_genome_of ctx.kind);
    n_cases = Array.length ctx.prepared;
    case_name =
      (fun i -> ctx.prepared.(i).Compiler.bench.Benchmarks.Bench.name);
    evaluate =
      (fun g case -> speedup ctx g ~case ~dataset:Benchmarks.Bench.Train);
  }

(* --- Experiment drivers --------------------------------------------------- *)

type specialization = {
  bench : string;
  train_speedup : float;
  novel_speedup : float;
  best_expr : string;
  history : Gp.Evolve.generation_stats list;
}

(* Figure 4 / 9 / 13: evolve a priority function for one benchmark, then
   measure on the training and the novel datasets. *)
let specialize ?(params = Gp.Params.scaled) (kind : kind) (bench : string) :
    specialization =
  let ctx = create kind [ bench ] in
  let result = Gp.Evolve.run ~params (problem_of ctx) in
  let train_speedup =
    speedup ctx result.Gp.Evolve.best ~case:0 ~dataset:Benchmarks.Bench.Train
  in
  let novel_speedup =
    speedup ctx result.Gp.Evolve.best ~case:0 ~dataset:Benchmarks.Bench.Novel
  in
  {
    bench;
    train_speedup;
    novel_speedup;
    best_expr =
      Gp.Sexp.to_string (feature_set_of kind)
        (Gp.Simplify.genome result.Gp.Evolve.best);
    history = result.Gp.Evolve.history;
  }

type general = {
  best : Gp.Expr.genome;
  best_expr : string;
  train_rows : (string * float * float) list;  (* bench, train, novel *)
  history : Gp.Evolve.generation_stats list;
}

(* Figure 6 / 11 / 15: evolve one priority function over a training suite
   with DSS, then measure every training benchmark on both datasets. *)
let evolve_general ?(params = Gp.Params.scaled) (kind : kind)
    (benches : string list) : general =
  let ctx = create kind benches in
  let result = Gp.Evolve.run ~params (problem_of ctx) in
  let rows =
    List.mapi
      (fun case name ->
        ( name,
          speedup ctx result.Gp.Evolve.best ~case
            ~dataset:Benchmarks.Bench.Train,
          speedup ctx result.Gp.Evolve.best ~case
            ~dataset:Benchmarks.Bench.Novel ))
      benches
  in
  {
    best = result.Gp.Evolve.best;
    best_expr =
      Gp.Sexp.to_string (feature_set_of kind)
        (Gp.Simplify.genome result.Gp.Evolve.best);
    train_rows = rows;
    history = result.Gp.Evolve.history;
  }

(* Figure 7 / 12 / 16: apply a fixed evolved priority function to a suite
   it was not trained on. *)
let cross_validate ?machine (kind : kind) (g : Gp.Expr.genome)
    (benches : string list) : (string * float * float) list =
  let ctx = create ?machine kind benches in
  List.mapi
    (fun case name ->
      ( name,
        speedup ctx g ~case ~dataset:Benchmarks.Bench.Train,
        speedup ctx g ~case ~dataset:Benchmarks.Bench.Novel ))
    benches
