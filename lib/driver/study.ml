(* The three case studies, wired to the evolution driver.

   A study picks which heuristic slot the genome occupies, the machine
   model, and whether simulated measurement noise is injected (the
   prefetching study ran on a real Itanium in the paper, so its fitness
   signal is noisy).  Fitness of a candidate on a benchmark is the paper's
   definition: execution-time speedup over the compiler's baseline
   heuristic on the training dataset.

   All candidate evaluation is routed through the batch Evaluator engine:
   one engine per (context, dataset), sharing the context's jobs and
   cache-dir settings, so evolution, the final measurements and
   cross-validation all benefit from the same canonicalization, caching
   and process pool. *)

type kind = Hyperblock_study | Regalloc_study | Prefetch_study | Sched_study

let kind_name = function
  | Hyperblock_study -> "hyperblock"
  | Regalloc_study -> "regalloc"
  | Prefetch_study -> "prefetch"
  | Sched_study -> "sched"

let machine_of = function
  | Hyperblock_study -> Machine.Config.table3
  | Sched_study -> Machine.Config.table3_narrow
  | Regalloc_study -> Machine.Config.table3_regalloc
  | Prefetch_study -> Machine.Config.itanium1

let feature_set_of = function
  | Hyperblock_study -> Hyperblock.Features.feature_set
  | Regalloc_study -> Regalloc.Features.feature_set
  | Prefetch_study -> Prefetch.Features.feature_set
  | Sched_study -> Sched.Priority.feature_set

let sort_of = function
  | Hyperblock_study | Regalloc_study | Sched_study -> `Real
  | Prefetch_study -> `Bool

let baseline_genome_of = function
  | Hyperblock_study -> Hyperblock.Baseline.genome
  | Regalloc_study -> Regalloc.Features.baseline_genome
  | Prefetch_study -> Prefetch.Features.baseline_genome
  | Sched_study -> Sched.Priority.baseline_genome

(* Noise amplitude for the prefetch study: +/-1.5% multiplicative, well
   below attainable speedups, as the paper requires of a usable fitness
   signal. *)
let noise_of = function
  | Hyperblock_study | Regalloc_study | Sched_study -> None
  | Prefetch_study -> Some 0.015

let heuristics_with (kind : kind) (g : Gp.Expr.genome) : Compiler.heuristics =
  let base = Compiler.baseline ~prefetch:(kind = Prefetch_study) () in
  match (kind, g) with
  | (Hyperblock_study | Regalloc_study | Sched_study), Gp.Expr.Bool _
  | Prefetch_study, Gp.Expr.Real _ ->
    invalid_arg "Study.heuristics_with: genome sort mismatch"
  | Hyperblock_study, Gp.Expr.Real e -> { base with Compiler.hb_priority = e }
  | Regalloc_study, Gp.Expr.Real e -> { base with Compiler.ra_savings = e }
  | Sched_study, Gp.Expr.Real e -> { base with Compiler.sched_priority = e }
  | Prefetch_study, Gp.Expr.Bool e ->
    { base with Compiler.pf_confidence = Some e }

(* --- Run configuration ---------------------------------------------------- *)

(* One record for everything an experiment run shares: GP scale, machine
   override, pool shape, caches, supervision, and the two
   reference-vs-fast switches.  Built in one place by the CLI; the
   legacy per-driver optional arguments are thin wrappers over this. *)
type config = {
  params : Gp.Params.t;
  machine : Machine.Config.t option;
  backend : Gp.Parmap.backend;
  jobs : int;
  cache_dir : string option;
  cache_shards : int;
  checkpoint_dir : string option;
  timeout_s : float option;
  retries : int;
  chunk_target_ms : float option;
  chunk_min : int option;
  chunk_max : int option;
  fast_sim : bool;
  compiled_eval : bool;
  remote : string option;  (* serve daemon socket path (--connect) *)
}

let default_config =
  {
    params = Gp.Params.scaled;
    machine = None;
    backend = `Fork;
    jobs = 1;
    cache_dir = None;
    cache_shards = Shardstore.default_shards;
    checkpoint_dir = None;
    timeout_s = None;
    retries = 1;
    chunk_target_ms = None;
    chunk_min = None;
    chunk_max = None;
    fast_sim = true;
    compiled_eval = true;
    remote = None;
  }

(* Legacy optional-argument prefix -> config, for the deprecated driver
   wrappers below. *)
let config_of ?params ?machine ?jobs ?cache_dir ?timeout_s ?retries
    ?checkpoint_dir ?fast_sim () =
  let d = default_config in
  {
    params = Option.value ~default:d.params params;
    machine;
    backend = d.backend;
    jobs = Option.value ~default:d.jobs jobs;
    cache_dir;
    cache_shards = d.cache_shards;
    checkpoint_dir;
    timeout_s;
    retries = Option.value ~default:d.retries retries;
    chunk_target_ms = d.chunk_target_ms;
    chunk_min = d.chunk_min;
    chunk_max = d.chunk_max;
    fast_sim = Option.value ~default:d.fast_sim fast_sim;
    compiled_eval = d.compiled_eval;
    remote = d.remote;
  }

(* --- Served evaluation (metaopt serve) ------------------------------------ *)

(* The study shape a client ships to the evaluation daemon: enough for
   the far side to rebuild the identical evaluation closure.  The
   resolved machine rides along whole (it is pure data) so a --machine
   override on the client is honored by the daemon's workers. *)
type remote_desc = {
  rd_kind : kind;
  rd_benches : string list;
  rd_machine : Machine.Config.t;
  rd_fast_sim : bool;
  rd_compiled_eval : bool;
}

type remote_handle = {
  rh_eval : Benchmarks.Bench.dataset -> Evaluator.remote;
  rh_close : unit -> unit;
}

(* The serve client lives above this library (it needs studies to
   describe itself); it injects its dialer here at startup.  [Study]
   itself never dials — with no dialer registered, [remote] configs
   fail loudly. *)
let remote_dialer : (socket:string -> remote_desc -> remote_handle) option ref
    =
  ref None

let set_remote_dialer d = remote_dialer := Some d

let dial_remote ~socket desc =
  match !remote_dialer with
  | Some d -> d ~socket desc
  | None ->
    failwith
      "Study: config.remote is set but no serve client is registered \
       (Serve.Client.register () installs the dialer)"

(* --- Evaluation context -------------------------------------------------- *)

type context = {
  kind : kind;
  machine : Machine.Config.t;
  compiled_eval : bool;
  prepared : Compiler.prepared array;
  (* Baseline results per (case, dataset): cycles and output checksum. *)
  baseline_train : (float * int) array;
  baseline_novel : (float * int) array;
  eval_train : Evaluator.t;
  eval_novel : Evaluator.t;
  sim : Simcache.t;
  remote : remote_handle option;
}

let noise_rng_of kind genome case =
  match noise_of kind with
  | None -> None
  | Some amp ->
    (* Deterministic per (genome, case) so memoized fitnesses are stable,
       but different candidates see different noise draws.  The Evaluator
       always passes the canonical genome here, which keeps the draw
       independent of evaluation order and worker count. *)
    let seed = Hashtbl.hash (genome, case) in
    Some (Random.State.make [| seed |], amp)

(* The compile, simulate and replay spans land in the [study.compile_s] /
   [study.simulate_s] / [study.replay_s] histograms.  In a supervised
   (forked) pool they are recorded in the worker and die with it — the
   parent-side per-task latency from [Gp.Parmap] covers that path
   instead; the sequential path (tests, [-j 1], bench report) gets the
   full split.

   Simulation goes through the [Simcache] fast paths: artifact-identical
   compilations share one noise-free measurement, and schedule-only
   variations replay the recorded event trace.  The noise jitter is
   layered on top here, per (genome, case), with the exact float
   operations the direct simulation would perform — so sharing is sound
   under noise and a candidate whose artifact equals the baseline's
   scores speedup exactly 1.0 in the noise-free studies. *)
let run_raw ?(compiled_eval = true) ~kind ~machine
    ~(prepared : Compiler.prepared array) ~(sim : Simcache.t)
    (g : Gp.Expr.genome) ~case ~(dataset : Benchmarks.Bench.dataset) :
    float * int =
  let p = prepared.(case) in
  let compiled =
    Gp.Telemetry.span "study.compile_s" (fun () ->
        Compiler.compile ~compiled_eval ~machine
          ~heuristics:(heuristics_with kind g) p)
  in
  let res = Simcache.simulate sim ~machine ~dataset p compiled in
  let noise = noise_rng_of kind g case in
  ( Machine.Simulate.jittered ?noise res.Machine.Simulate.cycles,
    res.Machine.Simulate.checksum )

(* Speedup over a precomputed baseline.  A candidate whose compiled
   program produces different output than the baseline is a
   compiler-correctness bug; it receives fitness 0 so evolution discards
   it (the paper: "Our system can also be used to uncover bugs!"). *)
let speedup_against ?compiled_eval ~kind ~machine ~prepared ~sim ~baselines g
    ~case ~dataset =
  let base_cycles, base_sum = baselines.(case) in
  let cycles, sum =
    run_raw ?compiled_eval ~kind ~machine ~prepared ~sim g ~case ~dataset
  in
  if sum <> base_sum then begin
    Logs.warn (fun m ->
        m "candidate heuristic broke %s (checksum mismatch)"
          prepared.(case).Compiler.bench.Benchmarks.Bench.name);
    0.0
  end
  else if cycles <= 0.0 then 0.0
  else base_cycles /. cycles

let dataset_name = function
  | Benchmarks.Bench.Train -> "train"
  | Benchmarks.Bench.Novel -> "novel"

(* --- Daemon-side evaluation service --------------------------------------- *)

type service = {
  svc_n_cases : int;
  svc_case_name : int -> string;
  svc_eval : Benchmarks.Bench.dataset -> Gp.Expr.genome -> int -> float;
}

(* Build the evaluation closure a daemon worker runs for one study
   shape: prepared benches, sequential baselines, and the exact
   [speedup_against] pipeline a local context's engines dispatch —
   called with the client's canonical genome, never re-canonicalized, so
   a served result is bit-identical to the local one.  Baselines here
   are sequential: the caller IS a pool worker (or lazily building in
   the daemon parent) and must not nest pools. *)
let service_of ?machine:machine_override ?(fast_sim = true)
    ?(compiled_eval = true) (kind : kind) (bench_names : string list) :
    service =
  let machine = Option.value ~default:(machine_of kind) machine_override in
  let sim = Simcache.create ~enabled:fast_sim () in
  let opt_config =
    match kind with
    | Prefetch_study -> Opt.Pipeline.no_unroll
    | Hyperblock_study | Regalloc_study | Sched_study -> Opt.Pipeline.default
  in
  let prepared =
    Array.of_list
      (List.map
         (fun n -> Compiler.prepare ~opt_config (Benchmarks.Registry.find n))
         bench_names)
  in
  let base = baseline_genome_of kind in
  let baseline_for dataset =
    Array.init (Array.length prepared) (fun case ->
        run_raw ~compiled_eval ~kind ~machine ~prepared ~sim base ~case
          ~dataset)
  in
  let baseline_train = baseline_for Benchmarks.Bench.Train in
  let baseline_novel = baseline_for Benchmarks.Bench.Novel in
  {
    svc_n_cases = Array.length prepared;
    svc_case_name =
      (fun i -> prepared.(i).Compiler.bench.Benchmarks.Bench.name);
    svc_eval =
      (fun dataset g case ->
        let baselines =
          match dataset with
          | Benchmarks.Bench.Train -> baseline_train
          | Benchmarks.Bench.Novel -> baseline_novel
        in
        speedup_against ~compiled_eval ~kind ~machine ~prepared ~sim
          ~baselines g ~case ~dataset);
  }

let service_of_desc (d : remote_desc) =
  service_of ~machine:d.rd_machine ~fast_sim:d.rd_fast_sim
    ~compiled_eval:d.rd_compiled_eval d.rd_kind d.rd_benches

let create_with (cfg : config) (kind : kind) (bench_names : string list) :
    context =
  let machine = Option.value ~default:(machine_of kind) cfg.machine in
  let compiled_eval = cfg.compiled_eval in
  let sim = Simcache.create ~enabled:cfg.fast_sim () in
  (* The prefetching study compiles without unrolling (ORC's prefetch
     phase runs on clean loop nests; unrolled loops defeat the
     induction-variable analysis exactly as they would ORC's). *)
  let opt_config =
    match kind with
    | Prefetch_study -> Opt.Pipeline.no_unroll
    | Hyperblock_study | Regalloc_study | Sched_study -> Opt.Pipeline.default
  in
  let prepared =
    Array.of_list
      (List.map
         (fun n -> Compiler.prepare ~opt_config (Benchmarks.Registry.find n))
         bench_names)
  in
  let base = baseline_genome_of kind in
  let remote_h =
    Option.map
      (fun socket ->
        dial_remote ~socket
          {
            rd_kind = kind;
            rd_benches = bench_names;
            rd_machine = machine;
            rd_fast_sim = cfg.fast_sim;
            rd_compiled_eval = compiled_eval;
          })
      cfg.remote
  in
  (* In served mode this process does no candidate evaluation, so the
     baselines (cheap, one genome) are computed sequentially rather
     than spinning up a local pool just for them. *)
  let baseline_pool =
    match remote_h with
    | Some _ -> Gp.Parmap.pool ~backend:`Seq ~jobs:1 ()
    | None -> Gp.Parmap.pool ~backend:cfg.backend ~jobs:cfg.jobs ()
  in
  let baseline_for dataset =
    (* Parallel like any other batch; a failed cell (worker crash) is
       recomputed sequentially because baselines must exist. *)
    let cells =
      Gp.Parmap.run baseline_pool ~fallback:(Float.nan, 0)
        (fun case ->
          run_raw ~compiled_eval ~kind ~machine ~prepared ~sim base ~case
            ~dataset)
        (Array.init (Array.length prepared) Fun.id)
    in
    Array.mapi
      (fun case cell ->
        if Float.is_nan (fst cell) then
          run_raw ~compiled_eval ~kind ~machine ~prepared ~sim base ~case
            ~dataset
        else cell)
      cells
  in
  let baseline_train = baseline_for Benchmarks.Bench.Train in
  let baseline_novel = baseline_for Benchmarks.Bench.Novel in
  let evaluator_for baselines dataset =
    Evaluator.create ~backend:cfg.backend ~jobs:cfg.jobs
      ?cache_dir:(if remote_h = None then cfg.cache_dir else None)
      ~cache_shards:cfg.cache_shards ?timeout_s:cfg.timeout_s
      ~retries:cfg.retries ?chunk_target_ms:cfg.chunk_target_ms
      ?chunk_min:cfg.chunk_min ?chunk_max:cfg.chunk_max
      ?remote:(Option.map (fun h -> h.rh_eval dataset) remote_h)
      ~fs:(feature_set_of kind)
      ~scope:
        (Printf.sprintf "%s/%s/%s" (kind_name kind)
           machine.Machine.Config.name (dataset_name dataset))
      ~case_name:(fun i ->
        prepared.(i).Compiler.bench.Benchmarks.Bench.name)
      ~eval:(fun g case ->
        speedup_against ~compiled_eval ~kind ~machine ~prepared ~sim
          ~baselines g ~case ~dataset)
      ()
  in
  {
    kind;
    machine;
    compiled_eval;
    prepared;
    baseline_train;
    baseline_novel;
    eval_train = evaluator_for baseline_train Benchmarks.Bench.Train;
    eval_novel = evaluator_for baseline_novel Benchmarks.Bench.Novel;
    sim;
    remote = remote_h;
  }

let create ?machine ?(jobs = 1) ?cache_dir ?timeout_s ?retries
    ?(fast_sim = true) (kind : kind) (bench_names : string list) : context =
  create_with
    (config_of ?machine ~jobs ?cache_dir ?timeout_s ?retries ~fast_sim ())
    kind bench_names

let evaluator_of (ctx : context) = function
  | Benchmarks.Bench.Train -> ctx.eval_train
  | Benchmarks.Bench.Novel -> ctx.eval_novel

let faults (ctx : context) =
  Evaluator.merge_faults
    (Evaluator.faults ctx.eval_train)
    (Evaluator.faults ctx.eval_novel)

(* Shut down the persistent worker pools behind both dataset engines.
   The experiment drivers below call this on every exit path; contexts
   handed out by [create_with] directly are the caller's to close.  Safe
   to call twice, and a context remains usable afterwards (the next
   supervised batch spawns a fresh pool). *)
let close (ctx : context) =
  Evaluator.shutdown ctx.eval_train;
  Evaluator.shutdown ctx.eval_novel;
  (* Closing the served connection is equally non-final: the client
     handle redials on the next batch. *)
  Option.iter (fun h -> h.rh_close ()) ctx.remote

(* A raw, uncached single measurement (diagnostics and tests).  Note the
   noise draw is keyed on the genome exactly as given; the cached engines
   canonicalize first. *)
let speedup (ctx : context) (g : Gp.Expr.genome) ~case
    ~(dataset : Benchmarks.Bench.dataset) : float =
  let baselines =
    match dataset with
    | Benchmarks.Bench.Train -> ctx.baseline_train
    | Benchmarks.Bench.Novel -> ctx.baseline_novel
  in
  speedup_against ~compiled_eval:ctx.compiled_eval ~kind:ctx.kind
    ~machine:ctx.machine ~prepared:ctx.prepared ~sim:ctx.sim ~baselines g
    ~case ~dataset

let problem_of (ctx : context) : Gp.Evolve.problem =
  {
    Gp.Evolve.fs = feature_set_of ctx.kind;
    sort = sort_of ctx.kind;
    baseline = Some (baseline_genome_of ctx.kind);
    n_cases = Array.length ctx.prepared;
    case_name =
      (fun i -> ctx.prepared.(i).Compiler.bench.Benchmarks.Bench.name);
    evaluator = Evaluator.evolve_evaluator ctx.eval_train;
  }

(* --- Experiment drivers --------------------------------------------------- *)

(* Measure one fixed genome on every case of both datasets, through the
   cached engines (the train row is usually a cache hit from evolution's
   final scoring). *)
let measure_rows (ctx : context) (g : Gp.Expr.genome) :
    (string * float * float) list =
  let cases = List.init (Array.length ctx.prepared) Fun.id in
  let train = (Evaluator.evaluate_batch ctx.eval_train [| g |] ~cases).(0) in
  let novel = (Evaluator.evaluate_batch ctx.eval_novel [| g |] ~cases).(0) in
  List.map
    (fun i ->
      ( ctx.prepared.(i).Compiler.bench.Benchmarks.Bench.name,
        train.(i),
        novel.(i) ))
    cases

type specialization = {
  bench : string;
  train_speedup : float;
  novel_speedup : float;
  best_expr : string;
  history : Gp.Evolve.generation_stats list;
  faults : Evaluator.fault_stats;
}

(* One [kind = "run_summary"] record per experiment driver call: the
   aggregate a run's JSONL stream is read backwards from. *)
let emit_run_summary ~driver ~kind ~benches ~ctx ~elapsed_s ~evaluations
    ~best_expr ~best_fitness =
  if Gp.Telemetry.enabled () then begin
    let f = faults ctx in
    let merge_cache (a : Evaluator.cache_stats) (b : Evaluator.cache_stats) =
      Evaluator.
        {
          memo_hits = a.memo_hits + b.memo_hits;
          disk_hits = a.disk_hits + b.disk_hits;
          misses = a.misses + b.misses;
        }
    in
    let cs =
      merge_cache
        (Evaluator.cache_stats ctx.eval_train)
        (Evaluator.cache_stats ctx.eval_novel)
    in
    Gp.Telemetry.emit ~kind:"run_summary"
      [
        ("driver", Gp.Telemetry.String driver);
        ("study", Gp.Telemetry.String (kind_name kind));
        ( "benches",
          Gp.Telemetry.List
            (List.map (fun b -> Gp.Telemetry.String b) benches) );
        ("elapsed_s", Gp.Telemetry.Float elapsed_s);
        ("evaluations", Gp.Telemetry.Int evaluations);
        ("memo_hits", Gp.Telemetry.Int cs.Evaluator.memo_hits);
        ("disk_hits", Gp.Telemetry.Int cs.Evaluator.disk_hits);
        ("misses", Gp.Telemetry.Int cs.Evaluator.misses);
        ("faults_crashed", Gp.Telemetry.Int f.crashed);
        ("faults_timed_out", Gp.Telemetry.Int f.timed_out);
        ("faults_gave_up", Gp.Telemetry.Int f.gave_up);
        ("faults_retried", Gp.Telemetry.Int f.retried);
        (* Where the sequential-path time went: heuristic-dependent
           compilation vs full simulation vs trace replay, plus the
           simulation-sharing counters. *)
        ( "compile_s",
          Gp.Telemetry.Float
            (Gp.Telemetry.Histogram.sum (Gp.Telemetry.histogram "study.compile_s")) );
        ( "simulate_s",
          Gp.Telemetry.Float
            (Gp.Telemetry.Histogram.sum (Gp.Telemetry.histogram "study.simulate_s")) );
        ( "replay_s",
          Gp.Telemetry.Float
            (Gp.Telemetry.Histogram.sum (Gp.Telemetry.histogram "study.replay_s")) );
        ( "artifact_hits",
          Gp.Telemetry.Int (Simcache.stats ctx.sim).Simcache.artifact_hits );
        ("replayed", Gp.Telemetry.Int (Simcache.stats ctx.sim).Simcache.replays);
        ( "simulations",
          Gp.Telemetry.Int (Simcache.stats ctx.sim).Simcache.simulations );
        ("best_fitness", Gp.Telemetry.Float best_fitness);
        ("best_expr", Gp.Telemetry.String best_expr);
      ]
  end

(* Figure 4 / 9 / 13: evolve a priority function for one benchmark, then
   measure on the training and the novel datasets. *)
let specialize_with ?on_generation (cfg : config) (kind : kind)
    (bench : string) : specialization =
  let t0 = if Gp.Telemetry.enabled () then Gp.Telemetry.now_s () else 0.0 in
  let ctx = create_with cfg kind [ bench ] in
  Fun.protect
    ~finally:(fun () -> close ctx)
    (fun () ->
      let result =
        Gp.Evolve.run ~params:cfg.params ?on_generation
          ?checkpoint_dir:cfg.checkpoint_dir (problem_of ctx)
      in
      let train_speedup =
        Evaluator.evaluate ctx.eval_train result.Gp.Evolve.best 0
      in
      let novel_speedup =
        Evaluator.evaluate ctx.eval_novel result.Gp.Evolve.best 0
      in
      let best_expr =
        Gp.Sexp.to_string (feature_set_of kind)
          (Gp.Simplify.genome result.Gp.Evolve.best)
      in
      emit_run_summary ~driver:"specialize" ~kind ~benches:[ bench ] ~ctx
        ~elapsed_s:
          (if Gp.Telemetry.enabled () then Gp.Telemetry.now_s () -. t0 else 0.0)
        ~evaluations:result.Gp.Evolve.evaluations ~best_expr
        ~best_fitness:result.Gp.Evolve.best_fitness;
      {
        bench;
        train_speedup;
        novel_speedup;
        best_expr;
        history = result.Gp.Evolve.history;
        faults = faults ctx;
      })

let specialize ?params ?jobs ?cache_dir ?timeout_s ?retries ?checkpoint_dir
    ?on_generation ?fast_sim (kind : kind) (bench : string) : specialization =
  specialize_with ?on_generation
    (config_of ?params ?jobs ?cache_dir ?timeout_s ?retries ?checkpoint_dir
       ?fast_sim ())
    kind bench

type general = {
  best : Gp.Expr.genome;
  best_expr : string;
  train_rows : (string * float * float) list;  (* bench, train, novel *)
  history : Gp.Evolve.generation_stats list;
  faults : Evaluator.fault_stats;
}

(* Figure 6 / 11 / 15: evolve one priority function over a training suite
   with DSS, then measure every training benchmark on both datasets. *)
let evolve_general_with ?on_generation (cfg : config) (kind : kind)
    (benches : string list) : general =
  let t0 = if Gp.Telemetry.enabled () then Gp.Telemetry.now_s () else 0.0 in
  let ctx = create_with cfg kind benches in
  Fun.protect
    ~finally:(fun () -> close ctx)
    (fun () ->
      let result =
        Gp.Evolve.run ~params:cfg.params ?on_generation
          ?checkpoint_dir:cfg.checkpoint_dir (problem_of ctx)
      in
      let best_expr =
        Gp.Sexp.to_string (feature_set_of kind)
          (Gp.Simplify.genome result.Gp.Evolve.best)
      in
      let train_rows = measure_rows ctx result.Gp.Evolve.best in
      emit_run_summary ~driver:"evolve_general" ~kind ~benches ~ctx
        ~elapsed_s:
          (if Gp.Telemetry.enabled () then Gp.Telemetry.now_s () -. t0 else 0.0)
        ~evaluations:result.Gp.Evolve.evaluations ~best_expr
        ~best_fitness:result.Gp.Evolve.best_fitness;
      {
        best = result.Gp.Evolve.best;
        best_expr;
        train_rows;
        history = result.Gp.Evolve.history;
        faults = faults ctx;
      })

let evolve_general ?params ?jobs ?cache_dir ?timeout_s ?retries
    ?checkpoint_dir ?on_generation ?fast_sim (kind : kind)
    (benches : string list) : general =
  evolve_general_with ?on_generation
    (config_of ?params ?jobs ?cache_dir ?timeout_s ?retries ?checkpoint_dir
       ?fast_sim ())
    kind benches

(* Figure 7 / 12 / 16: apply a fixed evolved priority function to a suite
   it was not trained on.  [cfg.params] and [cfg.checkpoint_dir] are
   ignored; no evolution happens here. *)
let cross_validate_with (cfg : config) (kind : kind) (g : Gp.Expr.genome)
    (benches : string list) : (string * float * float) list =
  let ctx = create_with cfg kind benches in
  Fun.protect ~finally:(fun () -> close ctx) (fun () -> measure_rows ctx g)

let cross_validate ?params ?jobs ?cache_dir ?timeout_s ?retries ?machine
    ?fast_sim (kind : kind) (g : Gp.Expr.genome) (benches : string list) :
    (string * float * float) list =
  cross_validate_with
    (config_of ?params ?machine ?jobs ?cache_dir ?timeout_s ?retries
       ?fast_sim ())
    kind g benches
