(** Artifact-keyed simulation sharing and trace replay.

    Most candidate heuristics compile to artifacts the run has already
    measured.  This cache keys noise-free simulation results on a digest
    of everything cycle-relevant (canonical transformed program,
    event-instruction order, bench + dataset, machine config, schedule
    lengths) so identical artifacts share one simulation, and keeps the
    recorded dynamic-event trace of recent programs so artifacts that
    differ only in schedule lengths (the scheduling study) are re-timed
    by replaying the event array instead of re-interpreting.  Both paths
    return bit-identical cycles and checksums to a fresh simulation;
    noise is never stored — layer {!Machine.Simulate.jittered} on top. *)

type stats = {
  mutable artifact_hits : int;
  mutable replays : int;
  mutable simulations : int;  (** full interpreter runs *)
}

type t

val create :
  ?enabled:bool -> ?max_artifacts:int -> ?max_traces:int ->
  ?max_trace_events:int -> unit -> t
(** [enabled = false] turns every {!simulate} into a fresh
    reference-engine simulation — the golden slow path the fast paths
    are tested against.  Table sizes are bounded: artifacts reset at
    [max_artifacts] (default 8192), traces evict oldest-first past
    [max_traces] (default 8).  [max_trace_events] caps the per-trace
    event budget (default {!Machine.Trace.default_max_events}); a run
    that overflows it is still measured exactly but yields no stored
    trace — incomplete traces never enter the table. *)

val stats : t -> stats

val trace_key :
  dataset:Benchmarks.Bench.dataset -> Compiler.prepared -> Compiler.compiled ->
  string
(** Digest identifying the dynamic event stream: canonical program (each
    block's instructions sorted by scheduling-invariant id) plus the
    actual program order of event-emitting instructions, bench and
    dataset.  Exposed for tests. *)

val artifact_key : machine:Machine.Config.t -> string -> int array -> string
(** [artifact_key ~machine trace_key schedule_cycles]: the result-sharing
    key; same key implies the same noise-free simulation result. *)

val store_trace : t -> string -> Machine.Trace.t -> unit
(** Insert a recorded trace under its trace key, evicting oldest-first
    past the table bound.  Exposed for tests.
    @raise Invalid_argument on an incomplete trace — an overflowed event
    stream must never be replayed. *)

val simulate :
  t -> machine:Machine.Config.t -> dataset:Benchmarks.Bench.dataset ->
  Compiler.prepared -> Compiler.compiled -> Machine.Simulate.result
(** One noise-free measurement, through artifact sharing, then trace
    replay, then a full (traced) fast-engine simulation.  Telemetry:
    bumps [evaluator.artifact_hits] / [study.replayed] counters and
    records [study.simulate_s] / [study.replay_s] spans. *)
