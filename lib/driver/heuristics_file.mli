(** Persistence for evolved heuristics: the product of an evolution is a
    small text file (one `slot: expression` line per heuristic) that can
    be applied to later compilations — the "toolset" usage the paper
    anticipates. *)

exception Bad_file of string

val slot_names : string list
(** ["hyperblock"; "regalloc"; "prefetch"; "sched"]. *)

val save : string -> Compiler.heuristics -> unit

val load : ?base:Compiler.heuristics -> string -> Compiler.heuristics
(** Missing slots keep [base]'s expression (default: the stock compiler
    with prefetching on); [prefetch: off] disables prefetching.
    @raise Bad_file on malformed contents. *)
