(* Persistence for evolved heuristics — the "toolset" side of the paper:
   an evolution's product is a file a compiler user can apply later.

   Format: one slot per line, `slot: expression`, expressions in the
   Table 1 S-expression syntax.  Missing slots mean "use the stock
   compiler's heuristic"; a `prefetch:` line of `off` disables prefetching
   entirely.  Lines starting with '#' are comments. *)

let slot_names = [ "hyperblock"; "regalloc"; "prefetch"; "sched" ]

exception Bad_file of string

let to_lines (h : Compiler.heuristics) : string list =
  [
    "# metaopt heuristics file";
    "hyperblock: "
    ^ Gp.Sexp.real_to_string Hyperblock.Features.feature_set
        h.Compiler.hb_priority;
    "regalloc: "
    ^ Gp.Sexp.real_to_string Regalloc.Features.feature_set
        h.Compiler.ra_savings;
    (match h.Compiler.pf_confidence with
    | Some c ->
      "prefetch: "
      ^ Gp.Sexp.bool_to_string Prefetch.Features.feature_set c
    | None -> "prefetch: off");
    "sched: "
    ^ Gp.Sexp.real_to_string Sched.Priority.feature_set
        h.Compiler.sched_priority;
  ]

let save (path : string) (h : Compiler.heuristics) : unit =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter (fun l -> output_string oc (l ^ "\n")) (to_lines h))

let parse_line (h : Compiler.heuristics) (line : string) :
    Compiler.heuristics =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then h
  else
    match String.index_opt line ':' with
    | None -> raise (Bad_file ("missing ':' in line: " ^ line))
    | Some i ->
      let slot = String.trim (String.sub line 0 i) in
      let body =
        String.trim (String.sub line (i + 1) (String.length line - i - 1))
      in
      (try
         match slot with
         | "hyperblock" ->
           { h with
             Compiler.hb_priority =
               Gp.Sexp.parse_real Hyperblock.Features.feature_set body }
         | "regalloc" ->
           { h with
             Compiler.ra_savings =
               Gp.Sexp.parse_real Regalloc.Features.feature_set body }
         | "prefetch" ->
           if body = "off" then { h with Compiler.pf_confidence = None }
           else
             { h with
               Compiler.pf_confidence =
                 Some (Gp.Sexp.parse_bool Prefetch.Features.feature_set body) }
         | "sched" ->
           { h with
             Compiler.sched_priority =
               Gp.Sexp.parse_real Sched.Priority.feature_set body }
         | other -> raise (Bad_file ("unknown heuristic slot: " ^ other))
       with Gp.Sexp.Parse_error m ->
         raise (Bad_file (Printf.sprintf "slot %s: %s" slot m)))

(* Load over a given base (default: the stock compiler with prefetching
   enabled so a `prefetch:` line is meaningful either way). *)
let load ?(base : Compiler.heuristics option) (path : string) :
    Compiler.heuristics =
  let base =
    match base with
    | Some b -> b
    | None -> Compiler.baseline ~prefetch:true ()
  in
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go h =
        match input_line ic with
        | line -> go (parse_line h line)
        | exception End_of_file -> h
      in
      go base)
