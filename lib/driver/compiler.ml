(* The full compilation pipeline, parameterized by the three heuristics
   under study.  Mirrors the Trimaran setup of the paper: classic scalar
   optimizations and unrolling, profiling, hyperblock formation, register
   allocation, optional data prefetching, VLIW scheduling, and trace-driven
   simulation. *)

type heuristics = {
  hb_priority : Gp.Expr.rexpr;       (* hyperblock path priority *)
  ra_savings : Gp.Expr.rexpr;        (* regalloc per-block savings *)
  pf_confidence : Gp.Expr.bexpr option;  (* None = prefetching disabled *)
  sched_priority : Gp.Expr.rexpr;    (* list-scheduling rank (extension) *)
}

let baseline ?(prefetch = false) () : heuristics =
  {
    hb_priority = Hyperblock.Baseline.expr;
    ra_savings = Regalloc.Features.baseline_expr;
    pf_confidence =
      (if prefetch then Some Prefetch.Features.baseline_expr else None);
    sched_priority = Sched.Priority.baseline_expr;
  }

(* A benchmark after the heuristic-independent work: lowering, scalar
   optimization, and profiling on the training dataset.  Shared across all
   candidate heuristics via copy-on-compile. *)
type prepared = {
  bench : Benchmarks.Bench.t;
  optimized : Ir.Func.program;
  prof : Profile.Prof.t;
}

let prepare ?(opt_config = Opt.Pipeline.default) (bench : Benchmarks.Bench.t) :
    prepared =
  let prog = Frontend.Minic.compile bench.Benchmarks.Bench.source in
  Opt.Pipeline.run ~config:opt_config prog;
  let layout = Profile.Layout.prepare prog in
  let prof =
    Profile.Prof.collect ~overrides:bench.Benchmarks.Bench.train layout
  in
  { bench; optimized = prog; prof }

type compiled = {
  prog : Ir.Func.program;
  layout : Profile.Layout.t;
  schedule_cycles : int array;
  hb_stats : Hyperblock.Form.stats;
  spills : int;
  prefetches : Prefetch.Insert.stats;
}

let compile ?(hb_config = Hyperblock.Form.default_config)
    ?(compiled_eval = true) ~(machine : Machine.Config.t)
    ~(heuristics : heuristics) (p : prepared) : compiled =
  let compiled = compiled_eval in
  let prog = Ir.Func.copy_program p.optimized in
  (* Prefetch insertion runs first (mirroring ORC, where prefetching is an
     early loop-nest phase): induction-variable analysis sees clean loop
     structure, and inserted prefetches then flow through if-conversion,
     allocation and scheduling like any other instruction. *)
  (* Both the compiled and the walker paths batch per function: the
     batched entry points take the same per-point interpreter when
     [compiled] is off, so toggling [compiled_eval] compares evaluators,
     not pass structure — and both are bit-identical anyway. *)
  let prefetches =
    match heuristics.pf_confidence with
    | None -> { Prefetch.Insert.candidates = 0; inserted = 0 }
    | Some conf ->
      Prefetch.Insert.run_batched
        ~decision_batch:
          (Prefetch.Insert.decision_batch_of_expr ~compiled ~machine prog conf)
        prog
  in
  let hb_stats =
    Hyperblock.Form.run ~config:hb_config ~compiled ~machine ~prof:p.prof
      ~priority:heuristics.hb_priority prog
  in
  let spills =
    Regalloc.Alloc.run
      ~savings_batch:
        (Regalloc.Alloc.savings_batch_of_expr ~compiled heuristics.ra_savings)
      ~machine prog
  in
  (* The baseline ranking skips the expression interpreter. *)
  let sched_pri =
    if heuristics.sched_priority = Sched.Priority.baseline_expr then
      Sched.Priority.baseline
    else Sched.Priority.of_expr ~compiled heuristics.sched_priority
  in
  (* The scheduler emits lengths in the same traversal order Layout.prepare
     assigns block uids, so the array needs no per-candidate label hashing. *)
  let schedule_cycles =
    Sched.List_sched.schedule_program_cycles ~priority:sched_pri
      ~config:machine prog
  in
  let layout = Profile.Layout.prepare prog in
  assert (Array.length schedule_cycles = layout.Profile.Layout.n_blocks);
  { prog; layout; schedule_cycles; hb_stats; spills; prefetches }

let simulate ?noise ~(machine : Machine.Config.t)
    ~(dataset : Benchmarks.Bench.dataset) (p : prepared) (c : compiled) :
    Machine.Simulate.result =
  Machine.Simulate.run ?noise ~config:machine
    ~schedule_cycles:c.schedule_cycles
    ~overrides:(Benchmarks.Bench.overrides p.bench dataset)
    c.layout
