(** The parallel, cached fitness engine behind {!Gp.Evolve.evaluator}.

    A batch request is served in four steps:

    + every genome is canonicalized through {!Gp.Simplify} and keyed by
      its printed canonical form, so semantically identical candidates —
      crossover products that reduce to an already-seen expression —
      share one compile;
    + (key, case) pairs already known to the in-memory memo or the
      optional on-disk cache are answered without compiling;
    + the remaining unique tasks fan out over a {!Gp.Parmap} process pool
      ([jobs] workers; sequential at 1) with per-worker failure
      isolation: a crashed candidate compile scores fitness 0 instead of
      killing the run, the paper's "wrong output gets fitness 0" rule;
    + fresh results are folded back into both caches.

    The on-disk cache is a flat append-only file under [cache_dir], keyed
    by a digest of (scope, case name, canonical expression), so it
    survives across runs and is shared by any study pointing at the same
    directory.  It assumes one writing process per directory. *)

type t

val create :
  ?jobs:int ->
  ?cache_dir:string ->
  fs:Gp.Feature_set.t ->
  scope:string ->
  case_name:(int -> string) ->
  eval:(Gp.Expr.genome -> int -> float) ->
  unit -> t
(** [create ~jobs ~cache_dir ~fs ~scope ~case_name ~eval ()] builds an
    engine over the raw single evaluation [eval] (one compile-and-simulate
    cycle; called on the canonical genome, in a worker process when
    [jobs > 1], so it must not rely on observable global mutation).
    [scope] namespaces the persistent cache — include everything the
    fitness depends on besides the genome and case: study, machine,
    dataset.  Results are sanitized: non-finite or negative values, and
    evaluations that raise or crash their worker, score 0. *)

val jobs : t -> int

val evaluate_batch :
  t -> Gp.Expr.genome array -> cases:int list -> float array array
(** One row per genome, one column per case, in the order given. *)

val evaluate : t -> Gp.Expr.genome -> int -> float
(** A batch of one; same caching and sanitization. *)

val evaluations : t -> int
(** Non-memoized evaluations performed so far (disk hits don't count). *)

val evolve_evaluator : t -> Gp.Evolve.evaluator
(** The engine as an {!Gp.Evolve.evaluator}, for {!Gp.Evolve.problem}. *)
