(** The parallel, cached fitness engine behind {!Gp.Evolve.evaluator}.

    A batch request is served in four steps:

    + every genome is canonicalized through {!Gp.Simplify} and keyed by
      its printed canonical form, so semantically identical candidates —
      crossover products that reduce to an already-seen expression —
      share one compile;
    + (key, case) pairs already known to the in-memory memo or the
      optional on-disk cache are answered without compiling;
    + the remaining unique tasks fan out over a persistent
      {!Gp.Parmap.handle} ([jobs] workers) — supervised whenever
      [jobs > 1] or a [timeout_s] is set.  The pool is created on the
      first supervised batch and its workers then stay resident for the
      engine's lifetime, keeping warm state (decoded layout artifacts,
      simulation-cache entries) between batches; a worker that crashes
      or exceeds the wall-clock deadline has its slot respawned and the
      task retried there (exponential backoff) without disturbing the
      rest of the pool;
    + fresh results are folded back into both caches.

    The fault model separates candidate failures from infrastructure
    failures.  A candidate whose compiled program produces wrong output
    or non-finite cycles {e returns} 0 from [eval] — a real, cacheable
    result.  An evaluation that crashes its worker, times out, or
    exhausts its retries {e scores} 0 so evolution discards it, is
    counted in {!fault_stats}, is memoized for this run only, and is
    never written to the disk cache — a transient OOM or hang must not
    poison future runs.  Only real results increment {!evaluations}.

    The on-disk cache is a {!Shardstore}: a content-addressed store
    under [cache_dir], keyed by a digest of (scope, case name, canonical
    expression) and sharded by digest prefix over [cache_shards]
    append-only files (default 16), each under its own advisory [lockf].
    It survives across runs and is shared by any study pointing at the
    same directory; concurrent runs only contend when a batch touches
    the same shard, and each shard group goes out in one locked write,
    so torn interleavings are impossible.  Loading validates every line
    (32-hex digest, finite value) and {e compacts} a shard holding torn
    or superseded lines in place, counting the dropped lines as
    evictions.  A {e failed} shard append (ENOSPC, EACCES, a revoked
    mount) degrades {e that shard} to memo-only operation: one warning,
    an [evaluator.cache_write_errors] telemetry count, no further
    appends to that shard ({!disk_degraded}) — the other shards keep
    persisting, and never an abort — a full disk must not kill a
    week-long campaign.  The pre-shard single-file cache
    (fitness-cache.tsv) is still read on open, so old cache directories
    keep serving hits.

    With {!Gp.Telemetry} enabled, every batch emits one [kind = "cache"]
    record (memo/disk hit counts, misses, hit rate, evaluations, faults,
    wall clock) and feeds the [evaluator.batch_s] histogram; cumulative
    classification is also available in-process via {!cache_stats}. *)

type t

(** Counts of evaluation-level faults since {!create}: tasks whose final
    outcome was a crash, a timeout, or retry exhaustion, plus the number
    of retry attempts made.  Faulted tasks score fitness 0 but are not
    evaluations and are not persisted. *)
type fault_stats = {
  crashed : int;
  timed_out : int;
  gave_up : int;
  retried : int;
}

val no_faults : fault_stats
val merge_faults : fault_stats -> fault_stats -> fault_stats

(** Request-level cache classification accumulated over this engine's
    lifetime, counted once per (genome, case) request at batch-collection
    time: answered by the in-memory memo, by the on-disk cache, or
    needing a fresh evaluation. *)
type cache_stats = { memo_hits : int; disk_hits : int; misses : int }

val cache_stats : t -> cache_stats

val disk_degraded : t -> bool
(** Whether at least one shard of the disk cache has stopped persisting
    after a failed append (see the failure model above).  Reads and the
    remaining shards are unaffected; the flag never resets for the
    engine's lifetime. *)

val total_faults : fault_stats -> int
(** [crashed + timed_out + gave_up] (retries are attempts, not tasks). *)

val sanitize : float -> float
(** The engine's result policy: non-finite or non-positive fitness
    scores 0.  Exposed so the serve daemon stores exactly what a local
    engine would. *)

type remote =
  (string * Gp.Expr.genome * int) array -> float Gp.Parmap.outcome array
(** A remote dispatcher for served evaluation ([metaopt serve]): called
    with every cache miss of a batch as [(digest, canonical genome,
    case)] — [digest] is exactly the persistent store key this engine
    would use locally, so the far side can share hits across clients —
    and must return one outcome per task, in order.  The far side
    evaluates the canonical genome as sent (re-canonicalizing would
    perturb noise seeding and break the served-vs-local determinism
    contract).  Non-[Ok] outcomes are recorded as infrastructure faults
    exactly as a local pool's would be. *)

val create :
  ?backend:Gp.Parmap.backend ->
  ?jobs:int ->
  ?cache_dir:string ->
  ?cache_shards:int ->
  ?timeout_s:float ->
  ?retries:int ->
  ?chunk_target_ms:float ->
  ?chunk_min:int ->
  ?chunk_max:int ->
  ?remote:remote ->
  fs:Gp.Feature_set.t ->
  scope:string ->
  case_name:(int -> string) ->
  eval:(Gp.Expr.genome -> int -> float) ->
  unit -> t
(** [create ~backend ~jobs ~cache_dir ~cache_shards ~timeout_s ~retries
    ~fs ~scope ~case_name ~eval ()] builds an engine over the raw single
    evaluation
    [eval] (one compile-and-simulate cycle; called on the canonical
    genome, in a worker process or domain when supervised, so it must not
    rely on observable global mutation).  [backend] (default [`Fork])
    selects the {!Gp.Parmap} pool flavor: [`Fork] gives per-task fault
    isolation and kill-based deadlines, [`Domains] shared-memory
    parallelism with cooperative (safepoint-polled) deadlines and worker
    quarantine, [`Seq] the in-process sequential reference.
    [scope] namespaces the persistent cache — include everything the
    fitness depends on besides the genome and case: study, machine,
    dataset.  [cache_shards] (default {!Shardstore.default_shards})
    sets the store's shard count and only matters with [cache_dir].
    [timeout_s] (default: none) bounds one evaluation's wall
    clock; [retries] (default 1) is how many times a crashed or hung
    evaluation is re-run on a fresh worker before being abandoned.
    [chunk_target_ms] / [chunk_min] / [chunk_max] tune the pool's
    adaptive chunked dispatch (see {!Gp.Parmap.pool}); defaults are the
    pool's own.
    Results are sanitized: non-finite or negative values score 0.  With
    [jobs <= 1] and no [timeout_s] (or [`Seq]), evaluation is sequential
    in-process (side effects of [eval] remain observable; a raising
    [eval] is recorded as a crash fault).
    With [remote] (see {!type:remote}), misses are shipped to the
    dispatcher instead of any local pool — [eval] is then never called
    and no worker pool is spawned; the memo and hit accounting work
    unchanged.

    @raise Invalid_argument if [jobs < 1] or the pool parameters are
    rejected by {!Gp.Parmap.pool}. *)

val jobs : t -> int

val backend : t -> Gp.Parmap.backend

val faults : t -> fault_stats
(** Fault counters accumulated over this engine's lifetime. *)

val evaluate_batch :
  t -> Gp.Expr.genome array -> cases:int list -> float array array
(** One row per genome, one column per case, in the order given. *)

val evaluate : t -> Gp.Expr.genome -> int -> float
(** A batch of one; same caching and sanitization. *)

val evaluations : t -> int
(** Non-memoized evaluations that produced a real result so far (disk
    hits and faulted tasks don't count). *)

val evolve_evaluator : t -> Gp.Evolve.evaluator
(** The engine as an {!Gp.Evolve.evaluator}, for {!Gp.Evolve.problem}. *)

val shutdown : t -> unit
(** Tear down the engine's persistent worker pool, if one was spawned
    (see {!Gp.Parmap.shutdown}).  Idempotent; a later supervised batch
    spawns a fresh pool.  Caches and counters are unaffected. *)
