(** The full compilation pipeline, parameterized by the three heuristics
    under study, mirroring the paper's Trimaran setup: scalar
    optimizations and unrolling, profiling, prefetch insertion,
    hyperblock formation, register allocation, VLIW scheduling and
    trace-driven simulation. *)

type heuristics = {
  hb_priority : Gp.Expr.rexpr;           (** hyperblock path priority *)
  ra_savings : Gp.Expr.rexpr;            (** regalloc per-block savings *)
  pf_confidence : Gp.Expr.bexpr option;  (** None = prefetching off *)
  sched_priority : Gp.Expr.rexpr;
      (** list-scheduling rank; an extension slot beyond the paper's three
          case studies (its Section 2 motivates it) *)
}

val baseline : ?prefetch:bool -> unit -> heuristics
(** The stock compiler: Equation (1), Equation (2), and (optionally)
    ORC's trip-count confidence. *)

(** A benchmark after the heuristic-independent work: lowering, scalar
    optimization, profiling on the training dataset.  Shared across all
    candidate heuristics via copy-on-compile. *)
type prepared = {
  bench : Benchmarks.Bench.t;
  optimized : Ir.Func.program;
  prof : Profile.Prof.t;
}

val prepare :
  ?opt_config:Opt.Pipeline.config -> Benchmarks.Bench.t -> prepared

type compiled = {
  prog : Ir.Func.program;
  layout : Profile.Layout.t;
  schedule_cycles : int array;
  hb_stats : Hyperblock.Form.stats;
  spills : int;
  prefetches : Prefetch.Insert.stats;
}

val compile :
  ?hb_config:Hyperblock.Form.config -> ?compiled_eval:bool ->
  machine:Machine.Config.t -> heuristics:heuristics -> prepared -> compiled
(** [compiled_eval] (default [true]) evaluates all four heuristic
    expressions through the {!Gp.Evalc} bytecode compiler — each pass
    compiles its expression once and amortizes it over every decision
    point.  [~compiled_eval:false] routes every evaluation through the
    {!Gp.Eval} tree-walker instead, the bit-identical executable
    reference ([--no-compiled-eval] at the CLI). *)

val simulate :
  ?noise:Random.State.t * float -> machine:Machine.Config.t ->
  dataset:Benchmarks.Bench.dataset -> prepared -> compiled ->
  Machine.Simulate.result
