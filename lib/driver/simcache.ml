(* Artifact-keyed simulation sharing and trace replay.

   Small mutations of a priority function usually compile to the very
   same artifact, so most of the evaluator's time re-simulates programs
   it has already measured.  Two stacked fast paths exploit that without
   ever changing a measured value:

   - artifact sharing: the digest of everything cycle-relevant — the
     canonical transformed program, the dynamic-event instruction order,
     bench + dataset, machine config and schedule lengths — keys a table
     of finished (noise-free) simulation results.  Genomes that compile
     to the same artifact share one simulation; a candidate whose
     artifact equals the baseline's hits the baseline's entry and scores
     speedup exactly 1.0 without simulating.

   - trace replay: the trace key drops the machine config and schedule
     lengths, i.e. it identifies runs whose dynamic *event stream* is
     provably identical even though their timing differs (the scheduling
     study: pure intra-block permutations that keep every event-emitting
     instruction in the same relative order).  The first simulation of a
     trace key records the event stream into a compact int array
     (Machine.Trace); later artifact misses with the same trace key
     replay it through a fresh Cache/Predictor as a tight array walk
     instead of re-interpreting tens of millions of steps.  Replay
     performs the identical float operations in the identical order, so
     cycles stay bit-identical.

   Keys are conservative: any textual difference in the canonical
   program or in the order of event-emitting instructions produces a
   different key and a full simulation.  Noise is *never* stored —
   callers layer the per-genome jitter on top (Simulate.jittered).

   In a forked worker pool the tables fill in the parent (baseline
   measurement during Study.create) and are inherited read-only through
   fork; worker-side inserts die with the worker.  Hit rates drop but
   results cannot diverge, so bit-identity holds at any -j.

   In a domains pool the tables are shared memory, so every table and
   stats access goes through one mutex.  Simulation and replay run
   outside the lock; two domains racing on the same key at worst both
   simulate (deterministically, to the same result) and the second store
   overwrites the first with an equal value — slower, never divergent. *)

type stats = {
  mutable artifact_hits : int;
  mutable replays : int;
  mutable simulations : int;  (* full interpreter runs *)
}

type t = {
  enabled : bool;
  max_artifacts : int;
  max_traces : int;
  max_trace_events : int option;  (* None = Trace.default_max_events *)
  artifacts : (string, Machine.Simulate.result) Hashtbl.t;
  traces : (string, Machine.Trace.t) Hashtbl.t;
  mutable trace_order : string list;  (* newest first, for eviction *)
  stats : stats;
  lock : Mutex.t;  (* guards the tables, trace_order and stats *)
}

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let create ?(enabled = true) ?(max_artifacts = 8192) ?(max_traces = 8)
    ?max_trace_events () =
  {
    enabled;
    max_artifacts;
    max_traces;
    max_trace_events;
    artifacts = Hashtbl.create 256;
    traces = Hashtbl.create 8;
    trace_order = [];
    stats = { artifact_hits = 0; replays = 0; simulations = 0 };
    lock = Mutex.create ();
  }

let stats t = t.stats

let dataset_tag = function
  | Benchmarks.Bench.Train -> "train"
  | Benchmarks.Bench.Novel -> "novel"

(* The canonical digest of a compiled artifact's dynamic behaviour: the
   transformed program with each block's instructions sorted by their
   (scheduling-invariant) ids, plus the *actual* order of the
   event-emitting instructions, which the scheduler may legally permute
   (independent loads) and which replay must therefore discriminate. *)
let trace_key ~(dataset : Benchmarks.Bench.dataset) (p : Compiler.prepared)
    (c : Compiler.compiled) : string =
  let buf = Buffer.create 8192 in
  let ppf = Format.formatter_of_buffer buf in
  Buffer.add_string buf p.Compiler.bench.Benchmarks.Bench.name;
  Buffer.add_char buf '/';
  Buffer.add_string buf (dataset_tag dataset);
  Buffer.add_char buf '\n';
  List.iter
    (fun (f : Ir.Func.t) ->
      Format.fprintf ppf "func %s frame=%d params=%d@\n" f.Ir.Func.fname
        f.Ir.Func.frame_size
        (List.length f.Ir.Func.params);
      List.iter
        (fun (b : Ir.Func.block) ->
          Format.fprintf ppf "%s:@\n" b.Ir.Func.blabel;
          let sorted =
            List.sort
              (fun (a : Ir.Instr.t) (b : Ir.Instr.t) ->
                compare a.Ir.Instr.id b.Ir.Instr.id)
              b.Ir.Func.instrs
          in
          List.iter
            (fun (i : Ir.Instr.t) ->
              Format.fprintf ppf "%a@\n" Ir.Instr.pp i)
            sorted;
          Format.fprintf ppf "-> %a@\n" Ir.Func.pp_terminator b.Ir.Func.term)
        f.Ir.Func.blocks)
    c.Compiler.prog.Ir.Func.funcs;
  Format.fprintf ppf "!events@\n";
  List.iter
    (fun (f : Ir.Func.t) ->
      List.iter
        (fun (b : Ir.Func.block) ->
          Format.fprintf ppf "%s.%s:@\n" f.Ir.Func.fname b.Ir.Func.blabel;
          List.iter
            (fun (i : Ir.Instr.t) ->
              match i.Ir.Instr.kind with
              | Ir.Instr.Load _ | Ir.Instr.Store _ | Ir.Instr.Prefetch _
              | Ir.Instr.Emit _ | Ir.Instr.Exit _ | Ir.Instr.Call _ ->
                Format.fprintf ppf "%a@\n" Ir.Instr.pp i
              | _ -> ())
            b.Ir.Func.instrs)
        f.Ir.Func.blocks)
    c.Compiler.prog.Ir.Func.funcs;
  Format.pp_print_flush ppf ();
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* Fold the timing-relevant rest on top: machine config and schedule
   lengths.  Same artifact key => same noise-free simulation result. *)
let artifact_key ~(machine : Machine.Config.t) (tk : string)
    (schedule_cycles : int array) : string =
  let buf = Buffer.create 512 in
  Buffer.add_string buf tk;
  Buffer.add_string buf (Marshal.to_string machine []);
  Array.iter
    (fun len ->
      Buffer.add_string buf (string_of_int len);
      Buffer.add_char buf ',')
    schedule_cycles;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let store_trace t key tr =
  (* Replaying a truncated event stream would under-count cycles for
     every later artifact sharing this trace key; an incomplete trace
     must never enter the table.  [simulate] below only ever passes
     complete traces (run_traced returns None on overflow) — this guard
     keeps the invariant local instead of relying on the caller. *)
  if not (Machine.Trace.complete tr) then
    invalid_arg "Simcache.store_trace: incomplete trace";
  if Hashtbl.length t.traces >= t.max_traces then begin
    match List.rev t.trace_order with
    | [] -> ()
    | oldest :: _ ->
      Hashtbl.remove t.traces oldest;
      t.trace_order <- List.filter (fun k -> k <> oldest) t.trace_order
  end;
  Hashtbl.replace t.traces key tr;
  t.trace_order <- key :: t.trace_order

let store_artifact t key res =
  if Hashtbl.length t.artifacts >= t.max_artifacts then
    (* Crude but bounded: restart the table.  Baseline artifacts get
       re-simulated via trace replay on the next miss. *)
    Hashtbl.reset t.artifacts;
  Hashtbl.replace t.artifacts key res

(* One noise-free measurement of a compiled artifact, through the fast
   paths when enabled; with [enabled = false] every call is a fresh
   reference-engine simulation (the golden slow path). *)
let simulate (t : t) ~(machine : Machine.Config.t)
    ~(dataset : Benchmarks.Bench.dataset) (p : Compiler.prepared)
    (c : Compiler.compiled) : Machine.Simulate.result =
  let overrides = Benchmarks.Bench.overrides p.Compiler.bench dataset in
  if not t.enabled then
    Gp.Telemetry.span "study.simulate_s" (fun () ->
        Machine.Simulate.run ~engine:`Reference ~config:machine
          ~schedule_cycles:c.Compiler.schedule_cycles ~overrides
          c.Compiler.layout)
  else begin
    let tk = trace_key ~dataset p c in
    let ak = artifact_key ~machine tk c.Compiler.schedule_cycles in
    (* One locked lookup classifies the call; the expensive work (full
       simulation or replay) then runs unlocked on the hashed-out values. *)
    let hit =
      locked t (fun () ->
          match Hashtbl.find_opt t.artifacts ak with
          | Some res ->
            t.stats.artifact_hits <- t.stats.artifact_hits + 1;
            `Artifact res
          | None -> (
            match Hashtbl.find_opt t.traces tk with
            | Some tr ->
              t.stats.replays <- t.stats.replays + 1;
              `Trace tr
            | None ->
              t.stats.simulations <- t.stats.simulations + 1;
              `Miss))
    in
    match hit with
    | `Artifact res ->
      Gp.Telemetry.incr "evaluator.artifact_hits";
      res
    | `Trace tr ->
      Gp.Telemetry.incr "study.replayed";
      let res =
        Gp.Telemetry.span "study.replay_s" (fun () ->
            Machine.Simulate.replay ~config:machine
              ~schedule_cycles:c.Compiler.schedule_cycles tr)
      in
      locked t (fun () -> store_artifact t ak res);
      res
    | `Miss ->
      let res, tr =
        Gp.Telemetry.span "study.simulate_s" (fun () ->
            Machine.Simulate.run_traced ~config:machine
              ?max_trace_events:t.max_trace_events
              ~schedule_cycles:c.Compiler.schedule_cycles ~overrides
              c.Compiler.layout)
      in
      locked t (fun () ->
          Option.iter (store_trace t tk) tr;
          store_artifact t ak res);
      res
  end
