(* The parallel, cached fitness engine.  See evaluator.mli for the
   batch-request pipeline: canonicalize -> cache lookup -> Parmap fan-out
   -> cache fill, and for the fault model: infrastructure failures
   (crashed, hung or abandoned evaluations) score 0 like a bad candidate
   but are counted separately and never persisted. *)

type fault_stats = {
  crashed : int;
  timed_out : int;
  gave_up : int;
  retried : int;
}

let no_faults = { crashed = 0; timed_out = 0; gave_up = 0; retried = 0 }

let merge_faults a b =
  {
    crashed = a.crashed + b.crashed;
    timed_out = a.timed_out + b.timed_out;
    gave_up = a.gave_up + b.gave_up;
    retried = a.retried + b.retried;
  }

let total_faults f = f.crashed + f.timed_out + f.gave_up

(* A remote dispatcher: receives (digest, canonical genome, case) for
   every miss and returns one Parmap-shaped outcome per task.  The
   digest is the same persistent key the local store would use, so the
   far side can serve shared hits; the canonical genome rides along so
   the far side evaluates exactly what a local pool would have (it must
   NOT re-canonicalize — noise seeding keys on the genome structure). *)
type remote =
  (string * Gp.Expr.genome * int) array -> float Gp.Parmap.outcome array

type t = {
  backend : Gp.Parmap.backend;
  pool : Gp.Parmap.pool;
  jobs : int;
  timeout_s : float option;
  retries : int;
  remote : remote option;
  fs : Gp.Feature_set.t;
  scope : string;
  case_name : int -> string;
  eval : Gp.Expr.genome -> int -> float;
  memo : (string * int, float) Hashtbl.t;   (* (canonical key, case) *)
  store : Shardstore.t option;              (* sharded digest -> fitness *)
  (* The persistent worker pool, spawned lazily on the first supervised
     batch and reused for the engine's lifetime — the warm state its
     workers accumulate (decoded layouts, simulation caches) is the
     whole point of keeping it alive between batches. *)
  mutable handle :
    (Gp.Expr.genome * string * int, float) Gp.Parmap.handle option;
  mutable evaluations : int;
  mutable f_crashed : int;
  mutable f_timed_out : int;
  mutable f_gave_up : int;
  mutable f_retried : int;
  (* Batch-time request classification (memo hit / disk hit / miss),
     cumulative since [create]. *)
  mutable h_memo : int;
  mutable h_disk : int;
  mutable h_miss : int;
}

type cache_stats = { memo_hits : int; disk_hits : int; misses : int }

let sanitize v = if Float.is_finite v && v > 0.0 then v else 0.0

(* The persistent key folds in everything fitness depends on besides the
   expression itself: the caller's scope (study, machine, dataset) and the
   case's benchmark name. *)
let digest_key t key case =
  Digest.to_hex
    (Digest.string (t.scope ^ "\x00" ^ t.case_name case ^ "\x00" ^ key))

(* Persistence lives in {!Shardstore}: "digest value" lines, hex floats
   for exact round-trips, sharded by digest prefix with per-shard
   locking, compaction-on-load and per-shard write degradation. *)

let create ?(backend = `Fork) ?(jobs = 1) ?cache_dir
    ?(cache_shards = Shardstore.default_shards) ?timeout_s ?(retries = 1)
    ?chunk_target_ms ?chunk_min ?chunk_max ?remote ~fs ~scope ~case_name ~eval
    () =
  if jobs < 1 then
    invalid_arg
      (Printf.sprintf
         "Evaluator.create: jobs must be a positive worker count (got %d)"
         jobs);
  let pool =
    Gp.Parmap.pool ~backend ~jobs ?timeout_s ~retries ?chunk_target_ms
      ?chunk_min ?chunk_max ()
  in
  let store =
    Option.map (fun dir -> Shardstore.open_store ~shards:cache_shards dir)
      cache_dir
  in
  {
    backend;
    pool;
    jobs;
    timeout_s;
    retries = max 0 retries;
    remote;
    fs;
    scope;
    case_name;
    eval;
    memo = Hashtbl.create 4096;
    store;
    handle = None;
    evaluations = 0;
    f_crashed = 0;
    f_timed_out = 0;
    f_gave_up = 0;
    f_retried = 0;
    h_memo = 0;
    h_disk = 0;
    h_miss = 0;
  }

let jobs t = t.jobs
let backend t = t.backend

let faults t =
  {
    crashed = t.f_crashed;
    timed_out = t.f_timed_out;
    gave_up = t.f_gave_up;
    retried = t.f_retried;
  }

let cache_stats t =
  { memo_hits = t.h_memo; disk_hits = t.h_disk; misses = t.h_miss }

let disk_degraded t =
  match t.store with
  | Some s -> Shardstore.mem_any_degraded s
  | None -> false

let shutdown t =
  match t.handle with
  | Some h ->
    Gp.Parmap.shutdown h;
    t.handle <- None
  | None -> ()

let canon t g =
  let cg = Gp.Simplify.genome g in
  (cg, Gp.Sexp.to_string t.fs cg)

(* Like [lookup], but classifies the request and bumps the hit/miss
   counters — used only during batch task collection, so the final
   result-assembly pass doesn't double-count every request as a memo
   hit. *)
let lookup_counted t key case =
  match Hashtbl.find_opt t.memo (key, case) with
  | Some _ ->
    t.h_memo <- t.h_memo + 1;
    true
  | None -> (
    match
      match t.store with
      | Some s -> Shardstore.find s (digest_key t key case)
      | None -> None
    with
    | Some v ->
      t.h_disk <- t.h_disk + 1;
      Hashtbl.replace t.memo (key, case) v;
      true
    | None ->
      t.h_miss <- t.h_miss + 1;
      false)

let lookup t key case =
  match Hashtbl.find_opt t.memo (key, case) with
  | Some _ as hit -> hit
  | None -> (
    match
      match t.store with
      | Some s -> Shardstore.find s (digest_key t key case)
      | None -> None
    with
    | Some v ->
      Hashtbl.replace t.memo (key, case) v;
      Some v
    | None -> None)

(* A task's worker is supervised whenever its failure would otherwise be
   invisible or fatal: any multi-worker run, or any run with a deadline.
   Plain sequential evaluation stays in-process (cheap, side effects
   observable — tests rely on it) with exception isolation only.  The
   [`Seq] backend is the always-sequential reference; [`Fork] degrades to
   in-process when fork is unavailable on the platform. *)
let supervision_on t =
  (match t.backend with
  | `Seq -> false
  | `Fork -> Gp.Parmap.available
  | `Domains -> true)
  && (t.jobs > 1 || t.timeout_s <> None)

let evaluate_batch t genomes ~cases =
  let tel = Gp.Telemetry.enabled () in
  let t_batch = if tel then Gp.Telemetry.now_s () else 0.0 in
  let evals0 = t.evaluations in
  let faults0 = t.f_crashed + t.f_timed_out + t.f_gave_up in
  let stats0 = cache_stats t in
  let keyed = Array.map (canon t) genomes in
  (* Unique (key, case) pairs not already cached, in first-seen order. *)
  let pending : (string * int, unit) Hashtbl.t = Hashtbl.create 64 in
  let tasks = ref [] in
  Array.iter
    (fun (cg, key) ->
      List.iter
        (fun case ->
          if
            (not (lookup_counted t key case))
            && not (Hashtbl.mem pending (key, case))
          then begin
            Hashtbl.add pending (key, case) ();
            tasks := (cg, key, case) :: !tasks
          end)
        cases)
    keyed;
  let tasks = Array.of_list (List.rev !tasks) in
  let entries = ref [] in
  (* A real result: sanitized, memoized, persisted, and counted as an
     evaluation.  Genuinely bad candidates (wrong output, non-finite
     cycles) come through here as 0 and are cached like any result. *)
  let record_ok (_, key, case) v =
    let v = sanitize v in
    t.evaluations <- t.evaluations + 1;
    Hashtbl.replace t.memo (key, case) v;
    if t.store <> None then entries := (digest_key t key case, v) :: !entries
  in
  (* An infrastructure failure: scores 0 so evolution discards the
     candidate, is memoized so one hung genome cannot stall every
     generation of this run, but is never written to the disk cache — a
     transient OOM or timeout must not poison future runs. *)
  let record_fault (_, key, case) what =
    (match what with
    | `Crashed msg ->
      t.f_crashed <- t.f_crashed + 1;
      Logs.warn (fun m ->
          m "evaluation on %s crashed (fitness 0, not cached): %s"
            (t.case_name case) msg)
    | `Timed_out ->
      t.f_timed_out <- t.f_timed_out + 1;
      Logs.warn (fun m ->
          m "evaluation on %s timed out (fitness 0, not cached)"
            (t.case_name case))
    | `Gave_up ->
      t.f_gave_up <- t.f_gave_up + 1;
      Logs.warn (fun m ->
          m "evaluation on %s abandoned after retries (fitness 0, not cached)"
            (t.case_name case)));
    Hashtbl.replace t.memo (key, case) 0.0
  in
  let record_outcomes outcomes =
    Array.iteri
      (fun i task ->
        match outcomes.(i) with
        | Gp.Parmap.Ok v -> record_ok task v
        | Gp.Parmap.Crashed msg -> record_fault task (`Crashed msg)
        | Gp.Parmap.Timed_out -> record_fault task `Timed_out
        | Gp.Parmap.Gave_up -> record_fault task `Gave_up)
      tasks
  in
  (match t.remote with
  | Some dispatch when Array.length tasks > 0 ->
    (* Served mode: the daemon owns the pool and the store; this side
       only ships digested misses and records the outcomes. *)
    let rtasks =
      Array.map (fun (cg, key, case) -> (digest_key t key case, cg, case)) tasks
    in
    let outcomes = dispatch rtasks in
    if Array.length outcomes <> Array.length tasks then
      failwith
        (Printf.sprintf
           "Evaluator: remote dispatcher returned %d outcomes for %d tasks"
           (Array.length outcomes) (Array.length tasks));
    record_outcomes outcomes
  | Some _ -> ()
  | None ->
  if supervision_on t then begin
    let handle =
      match t.handle with
      | Some h -> h
      | None ->
        let h =
          Gp.Parmap.create t.pool ~f:(fun (cg, _, case) -> t.eval cg case)
        in
        t.handle <- Some h;
        h
    in
    let outcomes, stats = Gp.Parmap.run_batch handle tasks in
    t.f_retried <- t.f_retried + stats.Gp.Parmap.retries;
    record_outcomes outcomes
  end
  else
    Array.iter
      (fun ((cg, _, case) as task) ->
        match t.eval cg case with
        | v -> record_ok task v
        | exception e -> record_fault task (`Crashed (Printexc.to_string e)))
      tasks);
  if !entries <> [] then
    Option.iter (fun s -> Shardstore.append s (List.rev !entries)) t.store;
  if tel then begin
    let wall = Gp.Telemetry.now_s () -. t_batch in
    let s = cache_stats t in
    let memo_hits = s.memo_hits - stats0.memo_hits in
    let disk_hits = s.disk_hits - stats0.disk_hits in
    let misses = s.misses - stats0.misses in
    let requests = memo_hits + disk_hits + misses in
    Gp.Telemetry.observe "evaluator.batch_s" wall;
    Gp.Telemetry.incr ~by:memo_hits "evaluator.memo_hits";
    Gp.Telemetry.incr ~by:disk_hits "evaluator.disk_hits";
    Gp.Telemetry.incr ~by:misses "evaluator.misses";
    Gp.Telemetry.emit ~kind:"cache"
      [
        ("scope", Gp.Telemetry.String t.scope);
        ("genomes", Gp.Telemetry.Int (Array.length genomes));
        ("cases", Gp.Telemetry.Int (List.length cases));
        ("requests", Gp.Telemetry.Int requests);
        ("memo_hits", Gp.Telemetry.Int memo_hits);
        ("disk_hits", Gp.Telemetry.Int disk_hits);
        ("misses", Gp.Telemetry.Int misses);
        ( "hit_rate",
          Gp.Telemetry.Float
            (if requests > 0 then
               float_of_int (memo_hits + disk_hits) /. float_of_int requests
             else 0.0) );
        ("evaluated", Gp.Telemetry.Int (t.evaluations - evals0));
        ( "faults",
          Gp.Telemetry.Int
            (t.f_crashed + t.f_timed_out + t.f_gave_up - faults0) );
        ("wall_s", Gp.Telemetry.Float wall);
      ]
  end;
  Array.map
    (fun (_, key) ->
      Array.of_list
        (List.map
           (fun case -> Option.value ~default:0.0 (lookup t key case))
           cases))
    keyed

let evaluate t g case = (evaluate_batch t [| g |] ~cases:[ case ]).(0).(0)

let evaluations t = t.evaluations

let evolve_evaluator t =
  {
    Gp.Evolve.evaluate_batch = (fun genomes ~cases -> evaluate_batch t genomes ~cases);
    evaluations = (fun () -> t.evaluations);
  }
