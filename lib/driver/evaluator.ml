(* The parallel, cached fitness engine.  See evaluator.mli for the
   batch-request pipeline: canonicalize -> cache lookup -> Parmap fan-out
   -> cache fill. *)

type t = {
  jobs : int;
  fs : Gp.Feature_set.t;
  scope : string;
  case_name : int -> string;
  eval : Gp.Expr.genome -> int -> float;
  memo : (string * int, float) Hashtbl.t;   (* (canonical key, case) *)
  disk : (string, float) Hashtbl.t;         (* digest -> fitness *)
  cache_file : string option;
  mutable evaluations : int;
}

let sanitize v = if Float.is_finite v && v > 0.0 then v else 0.0

(* The persistent key folds in everything fitness depends on besides the
   expression itself: the caller's scope (study, machine, dataset) and the
   case's benchmark name. *)
let digest_key t key case =
  Digest.to_hex
    (Digest.string (t.scope ^ "\x00" ^ t.case_name case ^ "\x00" ^ key))

(* One "digest value" pair per line, hex floats for exact round-trips.
   Unparsable lines (e.g. a torn write from a killed run) are skipped. *)
let load_disk path tbl =
  match open_in path with
  | exception Sys_error _ -> ()
  | ic ->
    (try
       while true do
         let line = input_line ic in
         match String.index_opt line ' ' with
         | Some i ->
           (try
              Hashtbl.replace tbl
                (String.sub line 0 i)
                (float_of_string
                   (String.sub line (i + 1) (String.length line - i - 1)))
            with _ -> ())
         | None -> ()
       done
     with End_of_file -> ());
    close_in ic

let append_disk t entries =
  match t.cache_file with
  | None -> ()
  | Some path ->
    (try
       let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
       List.iter
         (fun (digest, v) -> Printf.fprintf oc "%s %h\n" digest v)
         entries;
       close_out oc
     with Sys_error e ->
       Logs.warn (fun m -> m "fitness cache not written: %s" e))

let create ?(jobs = 1) ?cache_dir ~fs ~scope ~case_name ~eval () =
  let cache_file =
    Option.map
      (fun dir ->
        (try if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
         with Unix.Unix_error _ -> ());
        Filename.concat dir "fitness-cache.tsv")
      cache_dir
  in
  let disk = Hashtbl.create 1024 in
  Option.iter (fun p -> if Sys.file_exists p then load_disk p disk) cache_file;
  {
    jobs = max 1 jobs;
    fs;
    scope;
    case_name;
    eval;
    memo = Hashtbl.create 4096;
    disk;
    cache_file;
    evaluations = 0;
  }

let jobs t = t.jobs

let canon t g =
  let cg = Gp.Simplify.genome g in
  (cg, Gp.Sexp.to_string t.fs cg)

let lookup t key case =
  match Hashtbl.find_opt t.memo (key, case) with
  | Some _ as hit -> hit
  | None when t.cache_file <> None -> (
    match Hashtbl.find_opt t.disk (digest_key t key case) with
    | Some v ->
      Hashtbl.replace t.memo (key, case) v;
      Some v
    | None -> None)
  | None -> None

let evaluate_batch t genomes ~cases =
  let keyed = Array.map (canon t) genomes in
  (* Unique (key, case) pairs not already cached, in first-seen order. *)
  let pending : (string * int, unit) Hashtbl.t = Hashtbl.create 64 in
  let tasks = ref [] in
  Array.iter
    (fun (cg, key) ->
      List.iter
        (fun case ->
          if lookup t key case = None && not (Hashtbl.mem pending (key, case))
          then begin
            Hashtbl.add pending (key, case) ();
            tasks := (cg, key, case) :: !tasks
          end)
        cases)
    keyed;
  let tasks = Array.of_list (List.rev !tasks) in
  let results =
    Gp.Parmap.map ~jobs:t.jobs ~fallback:0.0
      (fun (cg, _, case) -> sanitize (t.eval cg case))
      tasks
  in
  let entries = ref [] in
  Array.iteri
    (fun i (_, key, case) ->
      t.evaluations <- t.evaluations + 1;
      Hashtbl.replace t.memo (key, case) results.(i);
      if t.cache_file <> None then
        entries := (digest_key t key case, results.(i)) :: !entries)
    tasks;
  if !entries <> [] then append_disk t (List.rev !entries);
  Array.map
    (fun (_, key) ->
      Array.of_list
        (List.map
           (fun case -> Option.value ~default:0.0 (lookup t key case))
           cases))
    keyed

let evaluate t g case = (evaluate_batch t [| g |] ~cases:[ case ]).(0).(0)

let evaluations t = t.evaluations

let evolve_evaluator t =
  {
    Gp.Evolve.evaluate_batch = (fun genomes ~cases -> evaluate_batch t genomes ~cases);
    evaluations = (fun () -> t.evaluations);
  }
