(* A content-addressed fitness store sharded by digest prefix.

   The evaluator's disk cache used to be one append-only file under one
   advisory lock, so every study sharing a --cache-dir serialized every
   batch append on that single lockf.  This module splits the store into
   [shards] append-only files (shard-00.tsv .. shard-0f.tsv by default),
   each under its own per-shard lockf: writers touching disjoint shards
   never contend, and a shard whose filesystem fails degrades alone
   instead of silencing the whole store.

   Layout is unchanged per line — "digest value\n", 32-hex-char digest,
   hex float — so lines are exact round-trips and strict validation can
   reject torn writes.  A digest's shard is its first byte (two hex
   chars) mod [shards], a pure function of content, so any process with
   the same shard count finds entries where any other left them.  The
   legacy single-file cache (fitness-cache.tsv) is still read on open,
   read-only, so stores written by older runs keep serving hits.

   Compaction happens on load: a shard whose file contains malformed
   lines (torn by a killed writer) or superseded duplicate digests is
   rewritten in place under its exclusive lock — truncate and rewrite
   through the same descriptor, never rename, so a concurrent appender
   holding the path cannot be left appending to an unlinked inode.
   Dropped lines are counted as evictions.  Compacting a clean shard is
   a no-op, so compaction is idempotent. *)

type t = {
  dir : string;
  shards : int;
  tbl : (string, float) Hashtbl.t; (* digest -> fitness, all shards merged *)
  degraded : bool array; (* per shard, sticky for the store's lifetime *)
  mutable appends : int; (* 1-based per-shard-write counter; chaos-site key *)
  mutable evictions : int; (* lines dropped by compaction *)
  mutable write_errors : int;
}

let default_shards = 16

let shard_file t i = Filename.concat t.dir (Printf.sprintf "shard-%02x.tsv" i)

let legacy_file dir = Filename.concat dir "fitness-cache.tsv"

(* Strict line validation, identical to the legacy loader's: the digest
   must be exactly the 32 lowercase hex characters [Digest.to_hex]
   produces and the value must parse to a finite float. *)
let is_hex_digest s =
  String.length s = 32
  && String.for_all
       (fun c -> (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))
       s

let parse_line line =
  match String.index_opt line ' ' with
  | None -> None
  | Some i ->
    let digest = String.sub line 0 i in
    let value = String.sub line (i + 1) (String.length line - i - 1) in
    if not (is_hex_digest digest) then None
    else (
      match float_of_string_opt value with
      | Some v when Float.is_finite v -> Some (digest, v)
      | _ -> None)

let hex_val c =
  if c >= '0' && c <= '9' then Char.code c - Char.code '0'
  else Char.code c - Char.code 'a' + 10

let shard_of t digest = ((hex_val digest.[0] * 16) + hex_val digest.[1]) mod t.shards

let render entries =
  let buf = Buffer.create 256 in
  List.iter
    (fun (digest, v) -> Buffer.add_string buf (Printf.sprintf "%s %h\n" digest v))
    entries;
  Buffer.to_bytes buf

(* Every syscall on the append/compact path goes through
   [Parmap.retry_eintr]: the supervised pools' SIGCHLD/SIGKILL traffic
   routinely interrupts a blocked lockf or write, and an EINTR is a
   retryable non-event, not a reason to degrade a shard. *)
let retry_eintr = Gp.Parmap.retry_eintr

let write_fully fd b len =
  let off = ref 0 in
  while !off < len do
    off := !off + retry_eintr (fun () -> Unix.write fd b !off (len - !off))
  done

(* Take the shard's exclusive lock, restarting interrupted waits.
   [Ok ()] means the lock is held; [Error e] is a persistent failure
   (ENOLCK and friends) and the caller must not touch the file —
   appending unlocked is exactly the torn-line interleaving the lock
   exists to prevent. *)
let lock_exclusive fd =
  match retry_eintr (fun () -> Unix.lockf fd Unix.F_LOCK 0) with
  | () -> Ok ()
  | exception Unix.Unix_error (e, _, _) -> Error e

(* Load one shard file, compacting it in place when it holds malformed
   or superseded lines.  The whole pass runs under the shard's exclusive
   lock so a concurrent appender can neither tear our read nor lose an
   append between our read and the rewrite. *)
let load_shard_path t path =
  match
    retry_eintr (fun () -> Unix.openfile path [ Unix.O_RDWR; Unix.O_CLOEXEC ] 0)
  with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        let locked = lock_exclusive fd = Ok () in
        let ic = Unix.in_channel_of_descr fd in
        let order = ref [] in (* first-seen order of digests *)
        let local : (string, float) Hashtbl.t = Hashtbl.create 64 in
        let lines = ref 0 in
        let malformed = ref 0 in
        let dups = ref 0 in
        (try
           while true do
             let line = input_line ic in
             if line <> "" then begin
               incr lines;
               match parse_line line with
               | Some (digest, v) ->
                 if Hashtbl.mem local digest then incr dups
                 else order := digest :: !order;
                 Hashtbl.replace local digest v (* last write wins *)
               | None -> incr malformed
             end
           done
         with End_of_file -> ());
        Hashtbl.iter (fun d v -> Hashtbl.replace t.tbl d v) local;
        (* Rewriting without the lock could drop a concurrent writer's
           append between our read and the truncate; an unlocked load
           still serves hits but leaves compaction to a later opener. *)
        if locked && (!malformed > 0 || !dups > 0) then begin
          (* Compact: rewrite the surviving entries through the same
             descriptor.  Anything dropped is an eviction. *)
          let survivors =
            List.rev_map (fun d -> (d, Hashtbl.find local d)) !order
          in
          let b = render (List.rev survivors) in
          (try
             retry_eintr (fun () -> Unix.ftruncate fd 0);
             ignore (Unix.lseek fd 0 Unix.SEEK_SET);
             write_fully fd b (Bytes.length b)
           with Unix.Unix_error _ -> ());
          t.evictions <- t.evictions + !malformed + !dups;
          Logs.warn (fun m ->
              m
                "fitness shard %s: compacted on load (%d malformed, %d \
                 superseded of %d lines)"
                path !malformed !dups !lines)
        end)

(* The legacy single-file store is only ever read (shared lock), never
   compacted or appended: new results go to the shards. *)
let load_legacy t =
  let path = legacy_file t.dir in
  match
    retry_eintr (fun () ->
        Unix.openfile path [ Unix.O_RDONLY; Unix.O_CLOEXEC ] 0)
  with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    (try retry_eintr (fun () -> Unix.lockf fd Unix.F_RLOCK 0)
     with Unix.Unix_error _ -> ());
    let ic = Unix.in_channel_of_descr fd in
    let malformed = ref 0 in
    (try
       while true do
         let line = input_line ic in
         if line <> "" then
           match parse_line line with
           | Some (digest, v) -> Hashtbl.replace t.tbl digest v
           | None -> incr malformed
       done
     with End_of_file -> ());
    if !malformed > 0 then
      Logs.warn (fun m ->
          m "fitness cache %s: skipped %d malformed line%s" path !malformed
            (if !malformed = 1 then "" else "s"));
    close_in ic

let open_store ?(shards = default_shards) dir =
  if shards < 1 || shards > 256 then
    invalid_arg
      (Printf.sprintf "Shardstore.open_store: shards must be in 1..256 (got %d)"
         shards);
  (try if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
   with Unix.Unix_error _ -> ());
  let t =
    {
      dir;
      shards;
      tbl = Hashtbl.create 1024;
      degraded = Array.make shards false;
      appends = 0;
      evictions = 0;
      write_errors = 0;
    }
  in
  load_legacy t;
  for i = 0 to shards - 1 do
    load_shard_path t (shard_file t i)
  done;
  (* Shard files left by a run with a larger shard count sit above this
     store's addressing range; load them too so their entries keep
     serving hits (new appends of those digests land in range). *)
  Array.iter
    (fun f ->
      if
        String.length f = 12
        && String.sub f 0 6 = "shard-"
        && Filename.check_suffix f ".tsv"
      then
        match int_of_string_opt ("0x" ^ String.sub f 6 2) with
        | Some i when i >= shards ->
          load_shard_path t (Filename.concat dir f)
        | _ -> ())
    (try Sys.readdir dir with Sys_error _ -> [||]);
  if t.evictions > 0 then
    Gp.Telemetry.incr ~by:t.evictions "evaluator.cache_evictions";
  t

let find t digest = Hashtbl.find_opt t.tbl digest

let mem_any_degraded t = Array.exists Fun.id t.degraded

let all_degraded t = Array.for_all Fun.id t.degraded

let evictions t = t.evictions

let write_errors t = t.write_errors

let shards t = t.shards

let degrade t i reason =
  t.degraded.(i) <- true;
  t.write_errors <- t.write_errors + 1;
  Gp.Telemetry.incr "evaluator.cache_write_errors";
  Logs.warn (fun m ->
      m
        "fitness shard %s not writable (%s); that shard continues \
         memo-only — its results from this run will not be persisted"
        (shard_file t i) reason)

(* A persistent lockf failure is softer than an unwritable shard: this
   one group is skipped (the memo keeps serving its values) but the
   shard is not degraded — the next append tries the lock again. *)
let skip_unlocked t i err =
  t.write_errors <- t.write_errors + 1;
  Gp.Telemetry.incr "evaluator.cache_write_errors";
  Logs.warn (fun m ->
      m
        "fitness shard %s: could not take the append lock (%s); skipping \
         this append rather than writing unlocked — the values stay \
         memo-only"
        (shard_file t i) (Unix.error_message err))

(* The shard lock, with the chaos lock site in front: [raise:eintr]
   interrupts the first wait (the retry discipline must reacquire), any
   other [raise:MSG] simulates a persistent ENOLCK-class failure. *)
let lock_for_append t fd =
  match
    Gp.Chaos.fire ~site:Gp.Chaos.site_cache_lock ~key:t.appends ~attempt:1
  with
  | Some (Gp.Chaos.Raise msg) when String.lowercase_ascii msg = "eintr" ->
    let interrupted = ref false in
    (match
       retry_eintr (fun () ->
           if not !interrupted then begin
             interrupted := true;
             raise (Unix.Unix_error (Unix.EINTR, "lockf", ""))
           end;
           Unix.lockf fd Unix.F_LOCK 0)
     with
    | () -> Ok ()
    | exception Unix.Unix_error (e, _, _) -> Error e)
  | Some (Gp.Chaos.Raise _) -> Error Unix.ENOLCK
  | Some _ | None -> lock_exclusive fd

(* Append one shard's entries under its exclusive lock; the whole group
   goes out in one write so concurrent appenders never interleave torn
   lines.  The chaos site fires once per shard write with the store-wide
   append counter as its key, so plans can target the Nth write. *)
let append_shard t i entries =
  if entries = [] || t.degraded.(i) then ()
  else begin
    t.appends <- t.appends + 1;
    let fault =
      Gp.Chaos.fire ~site:Gp.Chaos.site_cache_write ~key:t.appends ~attempt:1
    in
    let path = shard_file t i in
    try
      (match fault with
      | Some (Gp.Chaos.Raise _) ->
        raise (Unix.Unix_error (Unix.ENOSPC, "write", path))
      | Some Gp.Chaos.Torn_write | Some _ | None -> ());
      let fd =
        retry_eintr (fun () ->
            Unix.openfile path
              [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT; Unix.O_CLOEXEC ]
              0o644)
      in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          match lock_for_append t fd with
          | Error e -> skip_unlocked t i e
          | Ok () ->
            let b = render entries in
            let len = Bytes.length b in
            (* A chaos-injected torn write persists only half the group,
               cut mid-line — the recoverable corruption compaction must
               evict on the next open. *)
            let len =
              match fault with Some Gp.Chaos.Torn_write -> len / 2 | _ -> len
            in
            write_fully fd b len)
    with
    | Unix.Unix_error (e, _, _) -> degrade t i (Unix.error_message e)
    | Sys_error msg -> degrade t i msg
  end

(* Entries arrive pre-validated for finiteness by the evaluator's write
   path; the filter here keeps the store self-defending no matter who
   calls it.  Grouping preserves first-seen order within each shard. *)
let append t entries =
  let entries =
    List.filter
      (fun (digest, v) ->
        if Float.is_finite v then true
        else begin
          Logs.warn (fun m ->
              m "fitness cache: refusing to persist non-finite value %h for %s"
                v digest);
          false
        end)
      entries
  in
  if entries <> [] then begin
    let groups = Array.make t.shards [] in
    List.iter
      (fun ((digest, v) as e) ->
        Hashtbl.replace t.tbl digest v;
        let i = shard_of t digest in
        groups.(i) <- e :: groups.(i))
      entries;
    Array.iteri (fun i g -> append_shard t i (List.rev g)) groups
  end
