(* Cooperative per-task cancellation for the domains pool.

   A domain cannot be killed, so the only way to bound a task running in
   one is for the task itself to notice the deadline.  A [token] carries
   an absolute wall-clock deadline plus a flag another domain can set;
   the hot loops of the evaluation stack (the interpreter's block loop,
   trace replay, Evalc's batch chunks, the Eval tree-walker) poll the
   current token at cheap safepoints and raise [Cancelled] past the
   deadline.  [Parmap]'s domains supervisor installs one token per task
   attempt and maps the exception to a [Timed_out] outcome.

   The token is threaded implicitly: the supervisor installs it into
   domain-local storage around the task ([with_token]), and the hot
   loops fetch it once per run ([current]).  Existing evaluation APIs
   keep their signatures; code running outside any supervised task sees
   the shared [never] token, whose poll is a single atomic load and
   float compare. *)

exception Cancelled

type token = {
  flag : bool Atomic.t;  (* set by [cancel]; checked at every poll *)
  deadline : float;      (* absolute Unix time; [infinity] = none *)
}

let never = { flag = Atomic.make false; deadline = infinity }

let create ?deadline_s () =
  let deadline =
    match deadline_s with
    | Some d when Float.is_finite d && d > 0.0 -> Unix.gettimeofday () +. d
    | Some _ -> invalid_arg "Cancel.create: deadline_s must be positive"
    | None -> infinity
  in
  { flag = Atomic.make false; deadline }

let active t = t != never

let cancel t = if active t then Atomic.set t.flag true

let deadline t = t.deadline

(* The clock is only read when a real deadline is set, so polling an
   inactive (or flag-only) token never costs a syscall. *)
let cancelled t =
  Atomic.get t.flag
  || (t.deadline < infinity && Unix.gettimeofday () > t.deadline)

let check t = if cancelled t then raise Cancelled

(* --- The current token, per domain -------------------------------------- *)

let key = Domain.DLS.new_key (fun () -> never)

let current () = Domain.DLS.get key

let with_token t f =
  let prev = Domain.DLS.get key in
  Domain.DLS.set key t;
  Fun.protect ~finally:(fun () -> Domain.DLS.set key prev) f

(* --- Safepoint helpers --------------------------------------------------- *)

(* Loop-grained polling: hot loops keep their own countdown and call
   [check] on the token they fetched at entry every [poll_interval]
   iterations.  At typical iteration costs this bounds cancellation
   latency to well under a millisecond while keeping the common case to
   a decrement and a compare. *)
let poll_interval = 1024

(* Call-grained polling for code without a natural loop counter (the
   [Eval] tree-walker, [Evalc]'s scalar closures): a domain-local fuel
   counter is spent one unit per call and the current token is really
   checked each time it runs out.  One DLS read per call; the token
   lookup and clock read are paid only every [tick_interval] calls. *)
let tick_interval = 256

type tick_state = { mutable left : int }

let tick_key = Domain.DLS.new_key (fun () -> { left = tick_interval })

let tick () =
  let s = Domain.DLS.get tick_key in
  s.left <- s.left - 1;
  if s.left <= 0 then begin
    s.left <- tick_interval;
    let t = Domain.DLS.get key in
    if active t then check t
  end
