(* Evaluation of GP expressions against a feature environment.

   Arithmetic is protected so that every expression is total: division by
   (near-)zero returns the numerator, sqrt takes the absolute value, and
   non-finite intermediate results collapse to 0.  This mirrors standard GP
   practice [Koza 92]: the search space must not contain crashing
   programs. *)

let div_epsilon = 1e-9

let protect x = if Float.is_finite x then x else 0.0

let rec real (env : Feature_set.env) (e : Expr.rexpr) : float =
  match e with
  | Expr.Radd (a, b) -> protect (real env a +. real env b)
  | Expr.Rsub (a, b) -> protect (real env a -. real env b)
  | Expr.Rmul (a, b) -> protect (real env a *. real env b)
  | Expr.Rdiv (a, b) ->
    let x = real env a and y = real env b in
    if Float.abs y < div_epsilon then x else protect (x /. y)
  | Expr.Rsqrt a -> protect (sqrt (Float.abs (real env a)))
  | Expr.Rtern (c, a, b) -> if bool env c then real env a else real env b
  | Expr.Rcmul (c, a, b) ->
    (* Table 1: Real1 * Real2 if Bool1, else Real2. *)
    if bool env c then protect (real env a *. real env b) else real env b
  | Expr.Rconst k -> k
  | Expr.Rarg i -> env.Feature_set.real_values.(i)

and bool (env : Feature_set.env) (e : Expr.bexpr) : bool =
  match e with
  | Expr.Band (a, b) -> bool env a && bool env b
  | Expr.Bor (a, b) -> bool env a || bool env b
  | Expr.Bnot a -> not (bool env a)
  | Expr.Blt (a, b) -> real env a < real env b
  | Expr.Bgt (a, b) -> real env a > real env b
  | Expr.Beq (a, b) -> Float.abs (real env a -. real env b) < div_epsilon
  | Expr.Bconst k -> k
  | Expr.Barg i -> env.Feature_set.bool_values.(i)

let genome env = function
  | Expr.Real e -> `Real (real env e)
  | Expr.Bool e -> `Bool (bool env e)
