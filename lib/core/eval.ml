(* Evaluation of GP expressions against a feature environment.

   Arithmetic is protected so that every expression is total: division by
   (near-)zero returns the numerator, sqrt takes the absolute value, and
   non-finite intermediate results collapse to 0.  This mirrors standard GP
   practice [Koza 92]: the search space must not contain crashing
   programs. *)

let div_epsilon = 1e-9

let protect x = if Float.is_finite x then x else 0.0

let rec real_rec (env : Feature_set.env) (e : Expr.rexpr) : float =
  match e with
  | Expr.Radd (a, b) -> protect (real_rec env a +. real_rec env b)
  | Expr.Rsub (a, b) -> protect (real_rec env a -. real_rec env b)
  | Expr.Rmul (a, b) -> protect (real_rec env a *. real_rec env b)
  | Expr.Rdiv (a, b) ->
    let x = real_rec env a and y = real_rec env b in
    if Float.abs y < div_epsilon then x else protect (x /. y)
  | Expr.Rsqrt a -> protect (sqrt (Float.abs (real_rec env a)))
  | Expr.Rtern (c, a, b) -> if bool_rec env c then real_rec env a else real_rec env b
  | Expr.Rcmul (c, a, b) ->
    (* Table 1: Real1 * Real2 if Bool1, else Real2. *)
    if bool_rec env c then protect (real_rec env a *. real_rec env b) else real_rec env b
  | Expr.Rconst k -> k
  | Expr.Rarg i -> env.Feature_set.real_values.(i)

and bool_rec (env : Feature_set.env) (e : Expr.bexpr) : bool =
  match e with
  | Expr.Band (a, b) -> bool_rec env a && bool_rec env b
  | Expr.Bor (a, b) -> bool_rec env a || bool_rec env b
  | Expr.Bnot a -> not (bool_rec env a)
  | Expr.Blt (a, b) -> real_rec env a < real_rec env b
  | Expr.Bgt (a, b) -> real_rec env a > real_rec env b
  | Expr.Beq (a, b) -> Float.abs (real_rec env a -. real_rec env b) < div_epsilon
  | Expr.Bconst k -> k
  | Expr.Barg i -> env.Feature_set.bool_values.(i)

(* The public entry points are call-grained cancellation safepoints: the
   tree-walker is invoked once per heuristic decision from loops the
   evaluation stack does not own, so a fuel-style tick per call keeps
   slow-path (uncompiled) runs killable without touching the recursion. *)
let real env e =
  Cancel.tick ();
  real_rec env e

let bool env e =
  Cancel.tick ();
  bool_rec env e

let genome env = function
  | Expr.Real e -> `Real (real env e)
  | Expr.Bool e -> `Bool (bool env e)
