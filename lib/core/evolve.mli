(** The evolutionary search driver (Figure 2 of the paper).

    Generic over the fitness evaluator: a {!problem} provides the feature
    set, the genome sort, an optional baseline seed, and a per-case
    evaluation returning the speedup of a candidate over the compiler's
    baseline heuristic.  Fitness is the average speedup over the cases
    considered in a generation, the paper's Table 2 definition.  Per-case
    evaluations are memoized — each one costs a compile-and-simulate
    cycle. *)

type problem = {
  fs : Feature_set.t;
  sort : [ `Real | `Bool ];
  baseline : Expr.genome option;
  n_cases : int;                          (** training benchmarks *)
  case_name : int -> string;
  evaluate : Expr.genome -> int -> float; (** speedup of genome on case *)
}

type individual = {
  genome : Expr.genome;
  mutable fitness : float;
  mutable size : int;
}

type generation_stats = {
  gen : int;
  best_fitness : float;
  mean_fitness : float;
  best_size : int;
  subset : int list;     (** cases evaluated this generation (DSS) *)
  best_expr : string;
}

type result = {
  best : Expr.genome;
  best_fitness : float;  (** mean speedup over all cases *)
  per_case : (string * float) array;
  history : generation_stats list;
  evaluations : int;     (** non-memoized fitness evaluations *)
}

val better : eps:float -> individual -> individual -> bool
(** Strictly-better ordering with parsimony pressure: higher fitness wins;
    ties within [eps] break towards the smaller expression. *)

val run :
  ?params:Params.t -> ?on_generation:(generation_stats -> unit) ->
  problem -> result
(** Runs the evolution of Figure 2: seeded + ramped initial population,
    per-generation (DSS-chosen) fitness evaluation, tournament selection,
    bounded depth-fair crossover, mutation, elitism, and a final scoring
    of the best individual on the full training set.

    @raise Invalid_argument if the problem has no training cases. *)
