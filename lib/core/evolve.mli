(** The evolutionary search driver (Figure 2 of the paper).

    Generic over the fitness evaluator: a {!problem} provides the feature
    set, the genome sort, an optional baseline seed, and a batch
    {!evaluator} returning the speedup of each candidate over the
    compiler's baseline heuristic on each requested case.  Fitness is the
    average speedup over the cases considered in a generation, the
    paper's Table 2 definition.

    The driver evaluates each population as one batch, so an evaluator
    backed by a process pool (see [Driver.Evaluator]) parallelizes a whole
    generation at once — the single-machine analogue of the paper's
    15-20 machine cluster. *)

(** A batch fitness engine.  Implementations are expected to memoize per
    (canonical genome, case) — each evaluation costs a compile-and-simulate
    cycle — and to return sanitized values: finite, non-negative, with any
    failure scoring 0 (the paper's "wrong output gets fitness 0" rule). *)
type evaluator = {
  evaluate_batch : Expr.genome array -> cases:int list -> float array array;
      (** [evaluate_batch pop ~cases] returns one row per genome, one
          column per case, in the order given. *)
  evaluations : unit -> int;
      (** Cumulative count of non-memoized evaluations performed. *)
}

val evaluator_of_fn : (Expr.genome -> int -> float) -> evaluator
(** A sequential, memoizing evaluator over a per-(genome, case) fitness
    function, for tests and synthetic problems.  Memoization is keyed on
    the {!Simplify.genome}-canonical form, so semantically identical
    candidates share one evaluation; [f] is invoked on the canonical
    genome and must be a function of the genome's value.  Non-finite and
    negative results are clamped to 0. *)

type problem = {
  fs : Feature_set.t;
  sort : [ `Real | `Bool ];
  baseline : Expr.genome option;
  n_cases : int;                          (** training benchmarks *)
  case_name : int -> string;
  evaluator : evaluator;                  (** batch fitness engine *)
}

type individual = {
  genome : Expr.genome;
  mutable fitness : float;
  mutable size : int;
}

type generation_stats = {
  gen : int;
  best_fitness : float;
  mean_fitness : float;
  best_size : int;
  subset : int list;     (** cases evaluated this generation (DSS) *)
  best_expr : string;
}

type result = {
  best : Expr.genome;
  best_fitness : float;  (** mean speedup over all cases *)
  per_case : (string * float) array;
  history : generation_stats list;
  evaluations : int;     (** non-memoized fitness evaluations this run *)
}

val better : eps:float -> individual -> individual -> bool
(** Strictly-better ordering with parsimony pressure: higher fitness wins;
    ties within [eps] break towards the smaller expression. *)

val sample_distinct : Random.State.t -> n:int -> k:int -> int array
(** [k] distinct indices in [0, n) by rejection sampling — the sampler
    behind tournament selection, exported for testability.  The first
    draw of each position matches the with-replacement sampler's draw, so
    collision-free paths consume the RNG identically; requires
    [0 <= k <= n].

    @raise Invalid_argument when [k > n] or [k < 0]. *)

val run :
  ?params:Params.t -> ?on_generation:(generation_stats -> unit) ->
  ?checkpoint_dir:string -> problem -> result
(** Runs the evolution of Figure 2: seeded + ramped initial population,
    per-generation (DSS-chosen) batch fitness evaluation, tournament
    selection over the evaluated generation, bounded depth-fair
    crossover, mutation, elitism, and a final batch scoring of the
    population on the full training set.

    With [checkpoint_dir], the engine writes one versioned checkpoint
    file ([gen-NNNNN.ckpt]) per completed generation, atomically
    (tmp + rename): RNG state, population s-expressions, generation
    number, stats history and DSS state.  A later [run] over the same
    directory with the same params and problem shape resumes from the
    newest valid checkpoint, skipping completed generations and producing
    a bit-identical result to an uninterrupted run (evaluations are pure
    per (genome, case); only the [evaluations] counter, which restarts
    with the process, may differ).  Each file carries an integrity
    footer (magic, payload length, payload digest), so the loader
    distinguishes damage — a truncated or bit-rotted file, warned as
    corrupt — from a healthy checkpoint of another version or run
    configuration, warned as a mismatch; both are skipped (walking
    newest-first to the next older file) and counted in the
    [evolve.checkpoints_skipped] telemetry counter, and checkpoint I/O
    failures degrade to warnings and never abort the run.  One run
    configuration per directory: files are named by generation and will
    be overwritten.

    With {!Telemetry} enabled, the driver emits one [kind = "generation"]
    record per generation (fitness best/mean/std, genome size
    min/mean/max, cumulative evaluations, elapsed seconds) and observes
    per-generation wall clock in the [evolve.generation_s] histogram.
    None of it reads the RNG: a telemetered run is bit-identical to a
    silent one.

    @raise Invalid_argument if the problem has no training cases. *)
