(* Concrete syntax for priority functions: the S-expression notation of
   Table 1 in the paper ((add R R), (cmul B R R), (lt R R), ...), extended
   with (div R R) which the paper's Figure 8 uses.

   Printing resolves feature indices back to their names through a
   [Feature_set.t]; parsing resolves names to indices.  Bare numbers parse
   as rconst, bare identifiers as feature references of the expected
   sort. *)

(* --- Tokenizer --------------------------------------------------------- *)

type token = Lparen | Rparen | Atom of string

let tokenize s =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
    | '(' ->
      toks := Lparen :: !toks;
      incr i
    | ')' ->
      toks := Rparen :: !toks;
      incr i
    | ' ' | '\t' | '\n' | '\r' -> incr i
    | _ ->
      let start = !i in
      while
        !i < n
        && (match s.[!i] with
           | '(' | ')' | ' ' | '\t' | '\n' | '\r' -> false
           | _ -> true)
      do
        incr i
      done;
      toks := Atom (String.sub s start (!i - start)) :: !toks);
  done;
  List.rev !toks

(* --- Generic S-expressions -------------------------------------------- *)

type sexp = A of string | L of sexp list

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

let parse_sexp tokens =
  let rec one = function
    | [] -> fail "unexpected end of input"
    | Atom a :: rest -> (A a, rest)
    | Lparen :: rest ->
      let items, rest = many rest in
      (L items, rest)
    | Rparen :: _ -> fail "unexpected )"
  and many = function
    | [] -> fail "missing )"
    | Rparen :: rest -> ([], rest)
    | toks ->
      let x, rest = one toks in
      let xs, rest = many rest in
      (x :: xs, rest)
  in
  let e, rest = one tokens in
  if rest <> [] then fail "trailing tokens after expression";
  e

(* --- Sexp -> Expr ------------------------------------------------------ *)

let real_feature fs name =
  match Feature_set.real_index fs name with
  | Some i -> i
  | None -> fail "unknown real feature %s" name

let bool_feature fs name =
  match Feature_set.bool_index fs name with
  | Some i -> i
  | None -> fail "unknown Boolean feature %s" name

let rec rexpr fs = function
  | A a -> (
    match float_of_string_opt a with
    | Some k -> Expr.Rconst k
    | None -> Expr.Rarg (real_feature fs a))
  | L [ A "add"; a; b ] -> Expr.Radd (rexpr fs a, rexpr fs b)
  | L [ A "sub"; a; b ] -> Expr.Rsub (rexpr fs a, rexpr fs b)
  | L [ A "mul"; a; b ] -> Expr.Rmul (rexpr fs a, rexpr fs b)
  | L [ A "div"; a; b ] -> Expr.Rdiv (rexpr fs a, rexpr fs b)
  | L [ A "sqrt"; a ] -> Expr.Rsqrt (rexpr fs a)
  | L [ A "tern"; c; a; b ] -> Expr.Rtern (bexpr fs c, rexpr fs a, rexpr fs b)
  | L [ A "cmul"; c; a; b ] -> Expr.Rcmul (bexpr fs c, rexpr fs a, rexpr fs b)
  | L [ A "rconst"; A k ] -> (
    match float_of_string_opt k with
    | Some k -> Expr.Rconst k
    | None -> fail "rconst expects a number, got %s" k)
  | L [ A "rarg"; A name ] -> Expr.Rarg (real_feature fs name)
  | L (A op :: _) -> fail "bad real-valued form (%s ...)" op
  | L _ -> fail "bad real-valued form"

and bexpr fs = function
  | A "true" -> Expr.Bconst true
  | A "false" -> Expr.Bconst false
  | A a -> Expr.Barg (bool_feature fs a)
  | L [ A "and"; a; b ] -> Expr.Band (bexpr fs a, bexpr fs b)
  | L [ A "or"; a; b ] -> Expr.Bor (bexpr fs a, bexpr fs b)
  | L [ A "not"; a ] -> Expr.Bnot (bexpr fs a)
  | L [ A "lt"; a; b ] -> Expr.Blt (rexpr fs a, rexpr fs b)
  | L [ A "gt"; a; b ] -> Expr.Bgt (rexpr fs a, rexpr fs b)
  | L [ A "eq"; a; b ] -> Expr.Beq (rexpr fs a, rexpr fs b)
  | L [ A "bconst"; A "true" ] -> Expr.Bconst true
  | L [ A "bconst"; A "false" ] -> Expr.Bconst false
  | L [ A "barg"; A name ] -> Expr.Barg (bool_feature fs name)
  | L (A op :: _) -> fail "bad Boolean-valued form (%s ...)" op
  | L _ -> fail "bad Boolean-valued form"

let parse_real fs s = rexpr fs (parse_sexp (tokenize s))
let parse_bool fs s = bexpr fs (parse_sexp (tokenize s))

let parse_genome fs ~sort s =
  match sort with
  | `Real -> Expr.Real (parse_real fs s)
  | `Bool -> Expr.Bool (parse_bool fs s)

(* --- Expr -> string ----------------------------------------------------- *)

let float_lit k =
  (* Keep the printing round-trippable and compact. *)
  let s = Printf.sprintf "%.4f" k in
  if float_of_string s = k then s else Printf.sprintf "%h" k

let rec print_real fs buf (e : Expr.rexpr) =
  let bin op a b =
    Buffer.add_string buf ("(" ^ op ^ " ");
    print_real fs buf a;
    Buffer.add_char buf ' ';
    print_real fs buf b;
    Buffer.add_char buf ')'
  in
  match e with
  | Expr.Radd (a, b) -> bin "add" a b
  | Expr.Rsub (a, b) -> bin "sub" a b
  | Expr.Rmul (a, b) -> bin "mul" a b
  | Expr.Rdiv (a, b) -> bin "div" a b
  | Expr.Rsqrt a ->
    Buffer.add_string buf "(sqrt ";
    print_real fs buf a;
    Buffer.add_char buf ')'
  | Expr.Rtern (c, a, b) | Expr.Rcmul (c, a, b) ->
    let op = (match e with Expr.Rtern _ -> "tern" | _ -> "cmul") in
    Buffer.add_string buf ("(" ^ op ^ " ");
    print_bool fs buf c;
    Buffer.add_char buf ' ';
    print_real fs buf a;
    Buffer.add_char buf ' ';
    print_real fs buf b;
    Buffer.add_char buf ')'
  | Expr.Rconst k -> Buffer.add_string buf (float_lit k)
  | Expr.Rarg i -> Buffer.add_string buf (Feature_set.real_name fs i)

and print_bool fs buf (e : Expr.bexpr) =
  let binb op a b =
    Buffer.add_string buf ("(" ^ op ^ " ");
    print_bool fs buf a;
    Buffer.add_char buf ' ';
    print_bool fs buf b;
    Buffer.add_char buf ')'
  and binr op a b =
    Buffer.add_string buf ("(" ^ op ^ " ");
    print_real fs buf a;
    Buffer.add_char buf ' ';
    print_real fs buf b;
    Buffer.add_char buf ')'
  in
  match e with
  | Expr.Band (a, b) -> binb "and" a b
  | Expr.Bor (a, b) -> binb "or" a b
  | Expr.Bnot a ->
    Buffer.add_string buf "(not ";
    print_bool fs buf a;
    Buffer.add_char buf ')'
  | Expr.Blt (a, b) -> binr "lt" a b
  | Expr.Bgt (a, b) -> binr "gt" a b
  | Expr.Beq (a, b) -> binr "eq" a b
  | Expr.Bconst k -> Buffer.add_string buf (string_of_bool k)
  | Expr.Barg i -> Buffer.add_string buf (Feature_set.bool_name fs i)

let to_string fs genome =
  let buf = Buffer.create 128 in
  (match genome with
  | Expr.Real e -> print_real fs buf e
  | Expr.Bool e -> print_bool fs buf e);
  Buffer.contents buf

let real_to_string fs e = to_string fs (Expr.Real e)
let bool_to_string fs e = to_string fs (Expr.Bool e)
