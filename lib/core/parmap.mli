(** A minimal [Unix.fork]-based process pool for fitness evaluation.

    The paper ran its fitness loop on a 15-20 machine cluster; this module
    is the single-machine analogue: [map] fans an array of independent
    tasks out over [jobs] forked workers and reassembles the results in
    input order.  Workers inherit the parent's heap, so tasks need no
    input serialization — only results cross a pipe, via [Marshal], and
    must therefore contain no closures.

    Failure isolation: a task that raises, or a worker that dies outright
    (segfault, [kill -9]), never takes the run down.  Every result the
    worker managed to flush before dying is kept; the missing ones become
    [fallback] — the paper's "wrong output gets fitness 0" rule at the
    process level.

    [supervised] adds the fault model long evolution runs need: per-task
    wall-clock deadlines enforced by the parent, retries with exponential
    backoff on a respawned worker, and a typed {!outcome} per task so the
    caller can tell an infrastructure failure from a genuinely bad
    candidate. *)

val available : bool
(** Whether forking is supported on this platform.  When [false], [map]
    always degrades to the sequential path and [supervised] runs
    in-process (exception isolation only — no timeouts). *)

val retry_eintr : (unit -> 'a) -> 'a
(** [retry_eintr f] runs [f], restarting it as long as it fails with
    [Unix.Unix_error (EINTR, _, _)].  Every blocking syscall in this
    module (reaping, pipe reads and writes) goes through it, so a signal
    delivered mid-call — SIGCHLD, an interval timer, a profiler — cannot
    misreport a healthy worker as lost.  Exported because callers doing
    their own [waitpid]/[read] around a pool need the same discipline. *)

val map : ?jobs:int -> fallback:'b -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~jobs ~fallback f xs] is [Array.map f xs], computed by [jobs]
    forked workers (tasks are dealt round-robin).  Results arrive in input
    order.  Any task whose result cannot be obtained — [f] raised, or its
    worker crashed — yields [fallback] instead.  A worker that exits
    abnormally (non-zero code or signal) or tears its result stream
    mid-write is reported through [Logs.warn].

    [jobs <= 1] (the default) runs sequentially in-process, with the same
    per-task exception isolation and no forking.  Results must be
    marshalable when [jobs > 1].  Not reentrant from inside a task. *)

(** The outcome of one supervised task.

    - [Ok v]: some attempt returned [v].
    - [Crashed msg]: [retries = 0] and the single attempt failed —
      the task raised, or its worker died ([msg] says how).
    - [Timed_out]: [retries = 0] and the single attempt exceeded
      [timeout_s].
    - [Gave_up]: [retries >= 1] and every one of the [1 + retries]
      attempts failed (each attempt's crash or timeout is logged and
      counted in {!stats}). *)
type 'b outcome = Ok of 'b | Crashed of string | Timed_out | Gave_up

(** Attempt-level telemetry for one [supervised] call: [completed] tasks
    returned a value; [crashes] and [timeouts] count {e attempts} (a task
    retried twice after crashing contributes 2 to [crashes]); [retries]
    counts rescheduled attempts. *)
type stats = {
  completed : int;
  crashes : int;
  timeouts : int;
  retries : int;
}

val supervised :
  ?jobs:int ->
  ?timeout_s:float ->
  ?retries:int ->
  ?backoff_s:float ->
  ('a -> 'b) ->
  'a array ->
  'b outcome array * stats
(** [supervised ~jobs ~timeout_s ~retries f xs] evaluates every task in a
    disposable forked worker (one fork per attempt; [jobs] concurrent
    workers, default 1) under a wall-clock deadline of [timeout_s] seconds
    (default: none), checked and enforced from the parent: a worker that
    hangs or dies is SIGKILLed and its task is retried on a fresh worker
    up to [retries] times (default 1) with exponential backoff starting at
    [backoff_s] seconds (default 0.05, doubling per attempt).

    Results arrive in input order as typed outcomes; no fallback value is
    ever invented.  [f] runs in a child process, so its side effects are
    invisible to the parent — even at [jobs = 1].  Deterministic for pure
    [f]: outcomes depend only on [f] and [xs], not on scheduling.

    With {!Telemetry} enabled, both pools emit one [kind = "pool"] record
    per call; [supervised] additionally observes parent-measured per-task
    latency ([parmap.task_s]) and dispatch queue wait
    ([parmap.queue_wait_s]), and reports worker utilization (busy time
    over [wall * jobs]).  Forked workers drop the inherited sink, so
    child-side instrumentation never reaches the parent's stream. *)
