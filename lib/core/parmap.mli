(** A minimal [Unix.fork]-based process pool for fitness evaluation.

    The paper ran its fitness loop on a 15-20 machine cluster; this module
    is the single-machine analogue: [map] fans an array of independent
    tasks out over [jobs] forked workers and reassembles the results in
    input order.  Workers inherit the parent's heap, so tasks need no
    input serialization — only results cross a pipe, via [Marshal], and
    must therefore contain no closures.

    Failure isolation: a task that raises, or a worker that dies outright
    (segfault, [kill -9]), never takes the run down.  Every result the
    worker managed to flush before dying is kept; the missing ones become
    [fallback] — the paper's "wrong output gets fitness 0" rule at the
    process level. *)

val available : bool
(** Whether forking is supported on this platform.  When [false], [map]
    always degrades to the sequential path. *)

val map : ?jobs:int -> fallback:'b -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~jobs ~fallback f xs] is [Array.map f xs], computed by [jobs]
    forked workers (tasks are dealt round-robin).  Results arrive in input
    order.  Any task whose result cannot be obtained — [f] raised, or its
    worker crashed — yields [fallback] instead.

    [jobs <= 1] (the default) runs sequentially in-process, with the same
    per-task exception isolation and no forking.  Results must be
    marshalable when [jobs > 1].  Not reentrant from inside a task. *)
