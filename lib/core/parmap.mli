(** A task pool for fitness evaluation, behind a first-class backend API.

    The paper ran its fitness loop on a 15-20 machine cluster; this
    module is the single-machine analogue.  A {!pool} names a backend and
    carries every knob the two entry points share:

    - [`Seq] runs in-process and sequentially — the bit-identity
      reference every parallel backend is tested against.
    - [`Fork] is the original [Unix.fork] process pool: full fault
      isolation (a segfaulting or [kill -9]ed worker never takes the run
      down) and the only backend that can enforce wall-clock deadlines,
      at the cost of a fork and a [Marshal] round-trip per batch or task.
    - [`Domains] is an OCaml 5 shared-memory work pool: [Domain.spawn]ed
      workers pull task indices from one atomic counter — no fork, no
      marshalling, results written in place.  A domain cannot be killed,
      so {!run_supervised} enforces deadlines {e cooperatively}: each
      attempt runs under a {!Cancel} token which the evaluation stack
      polls at safepoints, a poll past the deadline becomes a
      [Timed_out], and retries follow the fork supervisor's schedule.  A
      task that ignores its token past a grace period (half the timeout,
      min 50ms) has its worker quarantined — poisoned, abandoned, its
      slot respawned — so hangs are cut off within 1.5x the deadline
      even when no safepoint is ever reached.  Tasks must be thread-safe
      (the evaluation pipeline's shared caches are; see DESIGN.md §12).

    For pure tasks all backends produce bit-identical results at any job
    count: [`Fork] workers own disjoint round-robin index slices,
    [`Domains] workers write disjoint slots, and task functions receive
    the same inputs regardless of scheduling.

    One runtime rule couples the two parallel backends: the OCaml 5
    runtime forbids [Unix.fork] in any process that has ever spawned a
    domain — even one that has since been joined.  The first [`Domains]
    pool therefore {e retires} [`Fork] for the rest of the process:
    {!capabilities} stops listing it and later [`Fork] requests degrade
    to the in-process paths with a one-time warning.  Fork first and
    domains after, or pick one parallel backend per process. *)

type backend = [ `Seq | `Fork | `Domains ]

val available : bool
(** Whether forking is supported on this platform.  A static probe: it
    stays [true] even after domains have retired [`Fork] for this
    process — prefer {!capabilities}, which accounts for both.  When
    [false], [`Fork] degrades to the sequential / in-process paths. *)

val capabilities : unit -> backend list
(** The backends usable {e right now}.  [`Seq] and [`Domains] are always
    present (domains are part of the OCaml 5 runtime); [`Fork] requires
    Unix and disappears permanently once any [`Domains] pool has run in
    this process (see the fork-retirement rule above). *)

val backend_name : backend -> string
(** ["seq" | "fork" | "domains"]. *)

val backend_of_name : string -> backend option
(** Inverse of {!backend_name}. *)

(** The one configuration record shared by {!run} and {!run_supervised},
    replacing the [?jobs ?timeout_s ?retries ?backoff_s] sprawl that was
    duplicated across [map], [supervised], [Study] and the CLI. *)
type pool = private {
  backend : backend;
  jobs : int;
  timeout_s : float option;
      (** per-task deadline; parent-enforced on [`Fork], cooperatively
          enforced (safepoint polling + quarantine) on [`Domains] *)
  retries : int;  (** re-runs after crash/timeout; [`Fork] and [`Domains] *)
  backoff_s : float;  (** initial retry backoff, doubling *)
  chunk_target_ms : float;
      (** how much estimated work one dispatch round-trip should
          amortize: the supervised dispatchers group tasks into chunks
          of ~[chunk_target_ms] milliseconds, using an EWMA of observed
          per-task cost (seeded from [parmap.task_s] telemetry when
          available, re-estimated every batch) *)
  chunk_min : int;
      (** chunk-length floor.  The default, 1, makes an unseeded first
          batch dispatch single tasks — exactly the pre-chunking
          protocol and the [-j1]-compatible reference. *)
  chunk_max : int;  (** chunk-length ceiling *)
  ignored_limits : string list;
      (** supervision limits this backend cannot honor, recorded at
          construction time and warned about once per process.  After
          the domains supervisor, only [`Seq] populates this: a
          [timeout_s] or a deliberate [retries > 1] configured there
          will be silently inert at run time, and this field says so
          up front ([retries = 1] is the constructor default and is
          not flagged). *)
}

val pool :
  ?backend:backend ->
  ?jobs:int ->
  ?timeout_s:float ->
  ?retries:int ->
  ?backoff_s:float ->
  ?chunk_target_ms:float ->
  ?chunk_min:int ->
  ?chunk_max:int ->
  unit ->
  pool
(** Validating constructor (defaults: [`Fork], 1 job, no timeout, 1
    retry, 0.05s backoff, 2ms chunk target, chunk bounds [1, 64]).
    Rejects [jobs < 1] — a zero or negative worker count is a
    configuration error, not a request for sequential execution — as
    well as non-positive [timeout_s], negative [retries], negative
    [backoff_s], non-positive or non-finite [chunk_target_ms],
    [chunk_min < 1] and [chunk_max < chunk_min].  Force
    [~chunk_min:1 ~chunk_max:1] to pin the pre-chunking one-task
    protocol (useful when tasks are so coarse or so variable that any
    grouping risks imbalance the stealer must then undo).
    @raise Invalid_argument on any of the above. *)

val retry_eintr : (unit -> 'a) -> 'a
(** [retry_eintr f] runs [f], restarting it as long as it fails with
    [Unix.Unix_error (EINTR, _, _)].  Every blocking syscall in this
    module (reaping, pipe reads and writes) goes through it, so a signal
    delivered mid-call — SIGCHLD, an interval timer, a profiler — cannot
    misreport a healthy worker as lost.  Exported because callers doing
    their own [waitpid]/[read] around a pool need the same discipline. *)

val run : pool -> fallback:'b -> ('a -> 'b) -> 'a array -> 'b array
(** [run pool ~fallback f xs] is [Array.map f xs] computed by the pool's
    backend; results arrive in input order.  Any task whose result cannot
    be obtained — [f] raised, or its forked worker crashed — yields
    [fallback] instead.

    [`Fork]: tasks are dealt round-robin over forked workers; a worker
    that exits abnormally or tears its result stream is reported through
    [Logs.warn], and results must be marshalable.  [`Domains]: workers
    share the heap, so nothing is marshalled and crash isolation is
    exception-level only.  Both degrade to the sequential path when the
    batch is empty or effectively single-worker; [`Fork] also degrades
    when forking is unavailable.  Not reentrant from inside a task. *)

val map : ?jobs:int -> fallback:'b -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~jobs ~fallback f xs] is
    [run (pool ~backend:`Fork ~jobs ()) ~fallback f xs] — the historical
    fork-pool interface.  @raise Invalid_argument when [jobs < 1].
    @deprecated Build a {!pool} and use {!run}. *)

(** The outcome of one supervised task.

    - [Ok v]: some attempt returned [v].
    - [Crashed msg]: no retries were configured (or possible) and the
      attempt failed — the task raised, or its worker died ([msg] says
      how).
    - [Timed_out]: [retries = 0] and the single attempt exceeded
      [timeout_s] ([`Fork] and [`Domains]).
    - [Gave_up]: [retries >= 1] and every one of the [1 + retries]
      attempts failed (each attempt's crash or timeout is logged and
      counted in {!stats}). *)
type 'b outcome = Ok of 'b | Crashed of string | Timed_out | Gave_up

(** Attempt-level telemetry for one supervised call: [completed] tasks
    returned a value; [crashes] and [timeouts] count {e attempts} (a task
    retried twice after crashing contributes 2 to [crashes]); [retries]
    counts rescheduled attempts; [quarantined] counts domains workers
    poisoned and respawned because their task ignored its deadline past
    the grace period (each such attempt is also counted in [timeouts]).
    Always 0 outside the [`Domains] backend. *)
type stats = {
  completed : int;
  crashes : int;
  timeouts : int;
  retries : int;
  quarantined : int;
}

type ('a, 'b) handle
(** A long-lived worker pool bound to one task function.  Creating a
    handle is free; the workers are spawned lazily on the first
    {!run_batch} and then stay resident across batches: [`Domains]
    keeps its spawned domains parked on their deques, [`Fork] keeps
    pre-forked workers alive on pipes (the parent marshals task chunks
    down, the child streams one reply back per member).  Warm state
    in the workers — decoded layout artifacts, simulation-cache
    entries, anything the task function memoizes — survives from batch
    to batch instead of being re-derived per call, which is what makes
    the parallel path beat [-j1] on real workloads.  Worker death,
    deadline kills and quarantines respawn the affected slot without
    disturbing the rest of the pool.  Handles are not thread-safe and
    {!run_batch} is not reentrant; drive one batch at a time. *)

val create : pool -> f:('a -> 'b) -> ('a, 'b) handle
(** [create pool ~f] binds a pool configuration to a task function.  No
    worker exists until the first {!run_batch}; the spawn cost is then
    recorded once under [parmap.pool_spawn_s] instead of polluting the
    queue-wait histogram.  On [`Fork], [f] is captured by the workers at
    that first batch via [fork], so warm parent state (caches, an armed
    chaos plan) is inherited; task inputs and results must be
    marshalable.  A [`Fork] handle whose first batch runs after domains
    have retired fork degrades to the in-process path with a warning,
    like {!run}. *)

val run_batch : ('a, 'b) handle -> 'a array -> 'b outcome array * stats
(** [run_batch h xs] evaluates one batch on the handle's resident
    workers under exactly the fault model documented on
    {!run_supervised}; outcomes arrive in input order and [stats] covers
    this batch only.  An empty batch returns immediately without
    spawning anything.
    @raise Invalid_argument once the handle has been {!shutdown}. *)

val shutdown : ('a, 'b) handle -> unit
(** Tear the pool down: [`Fork] workers are EOFed (then killed after a
    short grace if unresponsive) and reaped, [`Domains] workers are
    joined (quarantined ones stay abandoned, as during a run).
    Idempotent; a fresh handle must be created to evaluate again. *)

val run_supervised :
  pool -> ('a -> 'b) -> 'a array -> 'b outcome array * stats
(** [run_supervised pool f xs] evaluates every task under the pool's
    fault model and returns typed outcomes in input order; no fallback
    value is ever invented.  Equivalent to {!create}, one {!run_batch}
    and a {!shutdown} — callers with more than one batch should hold a
    {!handle} instead and amortize the pool spawn.

    [`Fork]: one disposable forked worker per attempt under a wall-clock
    deadline of [timeout_s] seconds, checked and enforced from the parent
    — a worker that hangs or dies is SIGKILLed and its task retried on a
    fresh worker up to [retries] times with exponential backoff starting
    at [backoff_s].  [f]'s side effects stay in the child, even at one
    job.  [`Domains]: worker domains run each attempt under a {!Cancel}
    token carrying the deadline; the evaluation hot loops poll it at
    safepoints, so a timed-out attempt raises [Cancel.Cancelled] and is
    retried on the same schedule as [`Fork].  An attempt that reaches no
    safepoint for a grace period past its deadline gets its worker
    quarantined and the slot respawned (see {!stats.quarantined});
    hangs are thus bounded by 1.5x the deadline.  [f]'s side effects are
    shared-memory — tasks must be thread-safe — and a task's [Cancelled]
    must propagate to the worker (catching it swallows the deadline).
    [`Seq] (and [`Fork] without fork support): exception isolation only,
    sequentially, with [f]'s side effects observable; deadlines and
    retries are inert there (see {!pool.ignored_limits}).

    Both parallel dispatchers group tasks into chunks sized by
    {!pool.chunk_target_ms} and rebalance stragglers: [`Domains]
    workers steal the younger half of the fullest sibling deque when
    their own runs dry, and the [`Fork] parent re-dispatches the
    unfinished remainder of the slowest chunk to an idle worker (first
    reply per task wins, duplicates are discarded by task id).
    Supervision stays per task: deadlines reset member by member, a
    failure re-splits only the affected chunk, and retry attempt
    numbers are preserved across re-splits.  Deterministic for pure
    [f]: outcomes depend only on [f] and [xs] — not on scheduling,
    chunk size, or which copy of a stolen task replied first, because
    every copy computes the same value and results are reassembled in
    input order.

    With {!Telemetry} enabled, every supervised batch emits one
    [kind = "pool"] record (carrying ["backend"], ["chunk_len"],
    ["steals"] and ["dispatch_s"] fields), and both parallel
    supervisors observe per-task latency ([parmap.task_s],
    reply-to-reply within a chunk), queue wait ([parmap.queue_wait_s],
    enqueue-to-dispatch only — worker spawn cost is recorded separately
    under [parmap.pool_spawn_s] when a handle first populates its
    pool), dispatched chunk sizes ([parmap.chunk_size]), per-batch
    dispatch overhead ([parmap.dispatch_s]) and a process-wide steal
    count ([parmap.steals]).  Forked workers drop the inherited sink
    and domain workers suppress instrumentation domain-locally, so
    worker-side records never interleave into the parent's stream. *)

val supervised :
  ?jobs:int ->
  ?timeout_s:float ->
  ?retries:int ->
  ?backoff_s:float ->
  ('a -> 'b) ->
  'a array ->
  'b outcome array * stats
(** [supervised ~jobs ~timeout_s ~retries f xs] is {!run_supervised} over
    [pool ~backend:`Fork ...] — the historical interface.
    @raise Invalid_argument when [jobs < 1].
    @deprecated Build a {!pool} and use {!run_supervised}. *)
