(* GP run parameters.  [default] is Table 2 of the paper; the shipped
   benches use [scaled] so a full figure reproduction runs on one machine
   in minutes instead of the paper's one day on a 15–20 node cluster (see
   EXPERIMENTS.md). *)

type t = {
  population_size : int;
  generations : int;
  (* Fraction of the population replaced by offspring each generation
     ("generational replacement 22%"). *)
  replacement_frac : float;
  (* Fraction of new offspring that undergo mutation. *)
  mutation_rate : float;
  tournament_size : int;
  (* Best expression is guaranteed survival. *)
  elitism : bool;
  (* Parsimony: fitness ties within this tolerance are broken towards the
     smaller expression. *)
  parsimony_eps : float;
  (* Maximum initial tree depth (ramped half-and-half) and hard depth cap
     for offspring. *)
  init_depth : int;
  max_depth : int;
  (* Include the compiler writer's baseline priority function in the
     initial population. *)
  seed_baseline : bool;
  rng_seed : int;
}

let default =
  {
    population_size = 400;
    generations = 50;
    replacement_frac = 0.22;
    mutation_rate = 0.05;
    tournament_size = 7;
    elitism = true;
    parsimony_eps = 1e-4;
    init_depth = 6;
    max_depth = 12;
    seed_baseline = true;
    rng_seed = 42;
  }

(* A laptop-scale configuration preserving the ratios of Table 2. *)
let scaled =
  {
    default with
    population_size = 40;
    generations = 12;
  }

(* An even smaller configuration for unit tests. *)
let tiny =
  {
    default with
    population_size = 12;
    generations = 4;
    tournament_size = 3;
  }
