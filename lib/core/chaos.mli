(** Deterministic fault injection.

    A {!plan} names instrumented sites in the supervised pool, the
    evaluator's disk cache, and the checkpoint writer, and says which
    {!fault} to inject at which key/attempt.  Plans are armed globally
    ({!arm}/{!disarm}); with none armed every instrumented site costs a
    single atomic load.  Plans derived from a seed ({!seeded}) inject
    only recoverable faults, which is what the [chaos_vs_clean] fuzz
    oracle and [metaopt chaos] exercise: a run under such a plan must
    be bit-identical to the fault-free run. *)

type fault =
  | Hang  (** never return, never poll the cancel token: forces either
              SIGKILL (fork backend) or quarantine (domains backend) *)
  | Slow of float
      (** nap this many seconds in small slices, polling the cancel
          token between naps — cancelled cooperatively when the nap
          outlives the deadline *)
  | Raise of string  (** the task raises [Failure msg] *)
  | Exit of int  (** forked worker exits without replying *)
  | Kill of int  (** forked worker sends itself this signal *)
  | Torn_write  (** write site: emit a torn, partial record *)
  | Truncated  (** write site: truncate the finished artifact *)

val fault_to_string : fault -> string

val fault_of_string : string -> fault option
(** Inverse of {!fault_to_string}: accepts [hang], [slow:S], [raise:MSG],
    [exit:N], [kill:SIG], [torn], [truncate]. *)

(** {1 Sites} *)

val site_parmap_task : string
(** ["parmap.task"] — around one task attempt in a supervised fork or
    domains worker (key = task index, attempt = 1-based attempt). *)

val site_cache_write : string
(** ["evaluator.cache_write"] — before the evaluator's disk-cache
    append (key = 1-based append number within the process). *)

val site_cache_lock : string
(** ["evaluator.cache_lock"] — around the per-shard [lockf] guarding a
    disk-cache append (key = the same store-wide append counter as
    {!site_cache_write}).  [raise:eintr] interrupts the first lock wait
    with EINTR (must be retried, not written through unlocked); any
    other [raise:MSG] is a persistent lock failure (the append must be
    skipped, never performed unlocked). *)

val site_checkpoint_write : string
(** ["evolve.checkpoint_write"] — after a checkpoint file lands (key =
    the checkpoint's next_gen). *)

val sites : string list

(** {1 Plans} *)

type rule = {
  r_site : string;
  r_key : int option;  (** [None] matches any key *)
  r_attempt : int option;  (** 1-based; [None] matches any attempt *)
  r_fault : fault;
}

type plan = { seed : int; rules : rule list }

val plan_to_string : plan -> string
(** Rules as [SITE[:KEY][@ATTEMPT]=FAULT], comma-joined — the syntax of
    [metaopt chaos --plan]. *)

val plan_of_string : ?seed:int -> string -> (plan, string) result

val seeded : seed:int -> plan
(** The deterministic recoverable plan for [seed]: a first-attempt
    over-deadline [Slow] on one task, fast first-attempt failures on the
    rest, one torn cache append and one truncated checkpoint.  Any run
    with [retries >= 1] absorbs all of it. *)

(** {1 Arming and firing} *)

val arm : plan -> unit
val disarm : unit -> unit
val armed : unit -> plan option

val fire : site:string -> key:int -> attempt:int -> fault option
(** The matched fault for this pass of an instrumented site, if any
    rule of the armed plan applies (first match wins).  Records the hit
    in the in-process counters. *)

val fired : site:string -> key:int -> int
(** How many times {!fire} matched at (site, key) in this process —
    meaningful for domain workers and parent-side write sites; forked
    children count in their own copy (use {!Ledger} there). *)

val reset_counts : unit -> unit

val trigger : ?isolated:bool -> fault -> unit
(** Act on a task fault: hang, nap (polling the cancel token), raise,
    exit, or self-kill.  [Exit]/[Kill] are honored only when [isolated]
    (a disposable forked child, the default); a domain worker passes
    [~isolated:false] and gets an exception instead.  [Torn_write] and
    [Truncated] are writer-interpreted and no-ops here. *)

val task_point : isolated:bool -> key:int -> attempt:int -> unit
(** {!fire} + {!trigger} at {!site_parmap_task} — the one call a
    supervised worker makes around a task attempt. *)

(** Filesystem attempt ledger, promoted from the old test harness: one
    byte appended per attempt to a per-task file, so attempt counts
    survive forked workers and are visible from any process. *)
module Ledger : sig
  val fresh_dir : string -> string
  (** A fresh empty directory under the system temp dir, tagged and
      pid-stamped. *)

  val cleanup : string -> unit

  val record_attempt : string -> int -> int
  (** [record_attempt dir task] logs one attempt and returns its
      1-based number. *)

  val attempts : string -> int -> int

  val wrap :
    ?isolated:bool ->
    dir:string ->
    plan:(int -> int -> fault option) ->
    (int -> 'a) ->
    int ->
    'a
  (** [wrap ~dir ~plan f task] records the attempt, triggers
      [plan task attempt] when it yields a fault, then computes
      [f task]. *)
end
