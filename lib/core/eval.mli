(** Evaluation of GP expressions against a feature environment.

    Arithmetic is protected so every expression is total [Koza 92]:
    division by (near-)zero returns the numerator, square root takes the
    absolute value, non-finite intermediates collapse to 0. *)

val div_epsilon : float
(** Divisors smaller than this in magnitude trigger protected division. *)

val real : Feature_set.env -> Expr.rexpr -> float
(** Always returns a finite float. *)

val bool : Feature_set.env -> Expr.bexpr -> bool

val genome : Feature_set.env -> Expr.genome -> [ `Real of float | `Bool of bool ]
