(** Genetic operators: depth-fair subtree crossover and the mutation
    operators of [Banzhaf et al. 98]. *)

val crossover :
  Random.State.t -> Expr.genome -> Expr.genome -> Expr.genome
(** Swap a depth-fairly chosen subtree of the first parent with a
    same-sorted subtree of the second.  Returns the first parent unchanged
    when no compatible donor subtree exists. *)

val crossover_bounded :
  Random.State.t -> max_depth:int -> Expr.genome -> Expr.genome ->
  Expr.genome
(** Like {!crossover}, but offspring deeper than [max_depth] are replaced
    by the first parent (Koza-style depth ceiling). *)

val mutate_subtree :
  Gen.config -> Random.State.t -> Expr.genome -> Expr.genome
(** Replace a depth-fairly chosen subtree with a fresh random one. *)

val point_mutate : Random.State.t -> Expr.genome -> Expr.genome
(** Swap one operator for a same-arity operator, or jitter a constant. *)

val mutate :
  Gen.config -> Random.State.t -> max_depth:int -> Expr.genome ->
  Expr.genome
(** The mutation applied to offspring per Table 2's mutation rate: mostly
    subtree replacement, sometimes a point mutation; depth-capped. *)
