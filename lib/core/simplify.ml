(* Algebraic simplification of GP expressions.

   The paper notes that evolved expressions contain introns and presents
   its Figure 8 "hand simplified for ease of discussion"; this pass does
   the mechanical part automatically.  Every rewrite is semantics-
   preserving under the *protected* evaluation semantics of [Eval]
   (division by ~0 returns the numerator, sqrt takes |x|, non-finite
   intermediates collapse to 0), which rules out a few textbook rules:
   x/x is not 1 (it is x when x ~ 0), and constant folding must clamp
   non-finite results to 0 exactly as the evaluator would. *)

let protect x = if Float.is_finite x then x else 0.0

let rec rexpr (e : Expr.rexpr) : Expr.rexpr =
  match e with
  | Expr.Rconst _ | Expr.Rarg _ -> e
  | Expr.Radd (a, b) -> (
    match (rexpr a, rexpr b) with
    | Expr.Rconst x, Expr.Rconst y -> Expr.Rconst (protect (x +. y))
    | Expr.Rconst 0.0, b' -> b'
    | a', Expr.Rconst 0.0 -> a'
    | a', b' -> Expr.Radd (a', b'))
  | Expr.Rsub (a, b) -> (
    match (rexpr a, rexpr b) with
    | Expr.Rconst x, Expr.Rconst y -> Expr.Rconst (protect (x -. y))
    | a', Expr.Rconst 0.0 -> a'
    | a', b' when a' = b' -> Expr.Rconst 0.0
    | a', b' -> Expr.Rsub (a', b'))
  | Expr.Rmul (a, b) -> (
    match (rexpr a, rexpr b) with
    | Expr.Rconst x, Expr.Rconst y -> Expr.Rconst (protect (x *. y))
    | Expr.Rconst 1.0, b' -> b'
    | a', Expr.Rconst 1.0 -> a'
    | (Expr.Rconst 0.0 as z), _ | _, (Expr.Rconst 0.0 as z) -> z
    | a', b' -> Expr.Rmul (a', b'))
  | Expr.Rdiv (a, b) -> (
    match (rexpr a, rexpr b) with
    | Expr.Rconst x, Expr.Rconst y ->
      Expr.Rconst (if Float.abs y < Eval.div_epsilon then x else protect (x /. y))
    | a', Expr.Rconst 1.0 -> a'
    (* x/x is NOT 1 under protection (x ~ 0 yields x); leave it. *)
    | a', b' -> Expr.Rdiv (a', b'))
  | Expr.Rsqrt a -> (
    match rexpr a with
    | Expr.Rconst x -> Expr.Rconst (protect (sqrt (Float.abs x)))
    | a' -> Expr.Rsqrt a')
  | Expr.Rtern (c, a, b) -> (
    match (bexpr c, rexpr a, rexpr b) with
    | Expr.Bconst true, a', _ -> a'
    | Expr.Bconst false, _, b' -> b'
    | c', a', b' when a' = b' -> ignore c'; a'
    | c', a', b' -> Expr.Rtern (c', a', b'))
  | Expr.Rcmul (c, a, b) -> (
    (* Table 1: if c then a*b else b. *)
    match (bexpr c, rexpr a, rexpr b) with
    | Expr.Bconst true, a', b' -> rexpr (Expr.Rmul (a', b'))
    | Expr.Bconst false, _, b' -> b'
    | c', Expr.Rconst 1.0, b' -> ignore c'; b'
    | c', a', b' -> Expr.Rcmul (c', a', b'))

and bexpr (e : Expr.bexpr) : Expr.bexpr =
  match e with
  | Expr.Bconst _ | Expr.Barg _ -> e
  | Expr.Band (a, b) -> (
    match (bexpr a, bexpr b) with
    | Expr.Bconst false, _ | _, Expr.Bconst false -> Expr.Bconst false
    | Expr.Bconst true, b' -> b'
    | a', Expr.Bconst true -> a'
    | a', b' when a' = b' -> a'
    | a', b' -> Expr.Band (a', b'))
  | Expr.Bor (a, b) -> (
    match (bexpr a, bexpr b) with
    | Expr.Bconst true, _ | _, Expr.Bconst true -> Expr.Bconst true
    | Expr.Bconst false, b' -> b'
    | a', Expr.Bconst false -> a'
    | a', b' when a' = b' -> a'
    | a', b' -> Expr.Bor (a', b'))
  | Expr.Bnot a -> (
    match bexpr a with
    | Expr.Bconst k -> Expr.Bconst (not k)
    | Expr.Bnot inner -> inner
    | a' -> Expr.Bnot a')
  | Expr.Blt (a, b) -> (
    match (rexpr a, rexpr b) with
    | Expr.Rconst x, Expr.Rconst y -> Expr.Bconst (x < y)
    | a', b' when a' = b' -> Expr.Bconst false
    | a', b' -> Expr.Blt (a', b'))
  | Expr.Bgt (a, b) -> (
    match (rexpr a, rexpr b) with
    | Expr.Rconst x, Expr.Rconst y -> Expr.Bconst (x > y)
    | a', b' when a' = b' -> Expr.Bconst false
    | a', b' -> Expr.Bgt (a', b'))
  | Expr.Beq (a, b) -> (
    match (rexpr a, rexpr b) with
    | Expr.Rconst x, Expr.Rconst y ->
      Expr.Bconst (Float.abs (x -. y) < Eval.div_epsilon)
    | a', b' when a' = b' -> Expr.Bconst true
    | a', b' -> Expr.Beq (a', b'))

(* Iterate to a fixed point (each pass strictly shrinks or stabilizes). *)
let genome (g : Expr.genome) : Expr.genome =
  let step = function
    | Expr.Real e -> Expr.Real (rexpr e)
    | Expr.Bool e -> Expr.Bool (bexpr e)
  in
  let rec fix g n =
    if n = 0 then g
    else
      let g' = step g in
      if Expr.equal_genome g g' then g else fix g' (n - 1)
  in
  fix g 10
