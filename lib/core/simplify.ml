(* Algebraic simplification of GP expressions.

   The paper notes that evolved expressions contain introns and presents
   its Figure 8 "hand simplified for ease of discussion"; this pass does
   the mechanical part automatically.  Every rewrite preserves the exact
   bits [Eval] would produce on any finite feature environment — the
   evaluator cache keys on the simplified form, so even a sign-of-zero
   drift between a genome and its simplification would let one cache
   entry answer for two observably different values.

   Bit-exactness under IEEE-754 makes the zero rules subtle.  For finite
   w (the domain: finite constants, finite environments, and [Eval]
   protects every operator result):

     -0.0 + w  =  w                 always — droppable;
     +0.0 + w  =  w                 unless w = -0.0 (then it is +0.0);
     w - +0.0  =  w                 always — droppable;
     w - -0.0  =  w                 unless w = -0.0 (then it is +0.0);
     (+-0) * w =  +-0               only when w >= 0 and w is not -0.0
                                    (negative or -0.0 w flips the sign);
     w - w     =  +0.0              always, but only for *bit-identical*
                                    trees: structural equality via
                                    polymorphic (=) treats 0.0 and -0.0
                                    as equal, and sign-twin trees like
                                    (x + -0.0) vs (x + +0.0) evaluate to
                                    different zeros at x = -0.0;
     a + b     = -0.0               only when both a and b are -0.0.

   The conditional rules ([nonneg], [never_nzero]) prove the "unless"
   sides away syntactically; everything unprovable simply stays.  The
   other protected-semantics caveats from before remain: x/x is not 1
   (protected division returns the numerator near zero), and constant
   folding clamps non-finite results to 0 exactly as the evaluator
   would. *)

let protect x = if Float.is_finite x then x else 0.0

let bits = Int64.bits_of_float
let pzero c = bits c = 0L
let nzero c = bits c = Int64.min_int

(* [nonneg e]: evaluation provably yields a value >= 0 that is never
   -0.0, on every finite environment.  Conservative by construction. *)
let rec nonneg (e : Expr.rexpr) : bool =
  match e with
  | Expr.Rconst c -> Float.is_finite c && (c > 0.0 || pzero c)
  | Expr.Rsqrt _ -> true (* sqrt |x| >= +0.0, and protect keeps the sign *)
  | Expr.Radd (a, b) | Expr.Rmul (a, b) -> nonneg a && nonneg b
  | Expr.Rtern (_, a, b) | Expr.Rcmul (_, a, b) -> nonneg a && nonneg b
  | Expr.Rarg _ | Expr.Rsub _ | Expr.Rdiv _ -> false

(* [never_nzero e]: evaluation provably never yields -0.0 (it may still
   be negative).  A sum is -0.0 only when both operands are. *)
let never_nzero (e : Expr.rexpr) : bool =
  match e with
  | Expr.Rconst c -> not (nzero c)
  | Expr.Radd (a, b) -> nonneg a || nonneg b
  | Expr.Rtern (_, a, b) -> nonneg a && nonneg b
  | e -> nonneg e

(* Bit-exact structural equality: the polymorphic (=) on which the old
   [a' = b' -> Rconst 0.0] folds relied considers 0.0 equal to -0.0, so
   it folded sign-twin trees whose values differ bitwise. *)
let rec req (a : Expr.rexpr) (b : Expr.rexpr) : bool =
  match (a, b) with
  | Expr.Rconst x, Expr.Rconst y -> bits x = bits y
  | Expr.Rarg i, Expr.Rarg j -> i = j
  | Expr.Radd (a1, a2), Expr.Radd (b1, b2)
  | Expr.Rsub (a1, a2), Expr.Rsub (b1, b2)
  | Expr.Rmul (a1, a2), Expr.Rmul (b1, b2)
  | Expr.Rdiv (a1, a2), Expr.Rdiv (b1, b2) -> req a1 b1 && req a2 b2
  | Expr.Rsqrt a1, Expr.Rsqrt b1 -> req a1 b1
  | Expr.Rtern (ac, a1, a2), Expr.Rtern (bc, b1, b2)
  | Expr.Rcmul (ac, a1, a2), Expr.Rcmul (bc, b1, b2) ->
    beq ac bc && req a1 b1 && req a2 b2
  | _ -> false

and beq (a : Expr.bexpr) (b : Expr.bexpr) : bool =
  match (a, b) with
  | Expr.Bconst x, Expr.Bconst y -> x = y
  | Expr.Barg i, Expr.Barg j -> i = j
  | Expr.Band (a1, a2), Expr.Band (b1, b2)
  | Expr.Bor (a1, a2), Expr.Bor (b1, b2) -> beq a1 b1 && beq a2 b2
  | Expr.Bnot a1, Expr.Bnot b1 -> beq a1 b1
  | Expr.Blt (a1, a2), Expr.Blt (b1, b2)
  | Expr.Bgt (a1, a2), Expr.Bgt (b1, b2)
  | Expr.Beq (a1, a2), Expr.Beq (b1, b2) -> req a1 b1 && req a2 b2
  | _ -> false

let rec rexpr (e : Expr.rexpr) : Expr.rexpr =
  match e with
  | Expr.Rconst _ | Expr.Rarg _ -> e
  | Expr.Radd (a, b) -> (
    match (rexpr a, rexpr b) with
    | Expr.Rconst x, Expr.Rconst y -> Expr.Rconst (protect (x +. y))
    | Expr.Rconst z, b' when nzero z || (pzero z && never_nzero b') -> b'
    | a', Expr.Rconst z when nzero z || (pzero z && never_nzero a') -> a'
    | a', b' -> Expr.Radd (a', b'))
  | Expr.Rsub (a, b) -> (
    match (rexpr a, rexpr b) with
    | Expr.Rconst x, Expr.Rconst y -> Expr.Rconst (protect (x -. y))
    | a', Expr.Rconst z when pzero z || (nzero z && never_nzero a') -> a'
    | a', b' when req a' b' -> Expr.Rconst 0.0
    | a', b' -> Expr.Rsub (a', b'))
  | Expr.Rmul (a, b) -> (
    match (rexpr a, rexpr b) with
    | Expr.Rconst x, Expr.Rconst y -> Expr.Rconst (protect (x *. y))
    | Expr.Rconst 1.0, b' -> b'
    | a', Expr.Rconst 1.0 -> a'
    | (Expr.Rconst z as zc), w when (pzero z || nzero z) && nonneg w -> zc
    | w, (Expr.Rconst z as zc) when (pzero z || nzero z) && nonneg w -> zc
    | a', b' -> Expr.Rmul (a', b'))
  | Expr.Rdiv (a, b) -> (
    match (rexpr a, rexpr b) with
    | Expr.Rconst x, Expr.Rconst y ->
      Expr.Rconst (if Float.abs y < Eval.div_epsilon then x else protect (x /. y))
    | a', Expr.Rconst 1.0 -> a'
    (* x/x is NOT 1 under protection (x ~ 0 yields x); leave it. *)
    | a', b' -> Expr.Rdiv (a', b'))
  | Expr.Rsqrt a -> (
    match rexpr a with
    | Expr.Rconst x -> Expr.Rconst (protect (sqrt (Float.abs x)))
    | a' -> Expr.Rsqrt a')
  | Expr.Rtern (c, a, b) -> (
    match (bexpr c, rexpr a, rexpr b) with
    | Expr.Bconst true, a', _ -> a'
    | Expr.Bconst false, _, b' -> b'
    | c', a', b' when req a' b' -> ignore c'; a'
    | c', a', b' -> Expr.Rtern (c', a', b'))
  | Expr.Rcmul (c, a, b) -> (
    (* Table 1: if c then a*b else b. *)
    match (bexpr c, rexpr a, rexpr b) with
    | Expr.Bconst true, a', b' -> rexpr (Expr.Rmul (a', b'))
    | Expr.Bconst false, _, b' -> b'
    | c', Expr.Rconst 1.0, b' -> ignore c'; b'
    | c', a', b' -> Expr.Rcmul (c', a', b'))

and bexpr (e : Expr.bexpr) : Expr.bexpr =
  match e with
  | Expr.Bconst _ | Expr.Barg _ -> e
  | Expr.Band (a, b) -> (
    match (bexpr a, bexpr b) with
    | Expr.Bconst false, _ | _, Expr.Bconst false -> Expr.Bconst false
    | Expr.Bconst true, b' -> b'
    | a', Expr.Bconst true -> a'
    | a', b' when beq a' b' -> a'
    | a', b' -> Expr.Band (a', b'))
  | Expr.Bor (a, b) -> (
    match (bexpr a, bexpr b) with
    | Expr.Bconst true, _ | _, Expr.Bconst true -> Expr.Bconst true
    | Expr.Bconst false, b' -> b'
    | a', Expr.Bconst false -> a'
    | a', b' when beq a' b' -> a'
    | a', b' -> Expr.Bor (a', b'))
  | Expr.Bnot a -> (
    match bexpr a with
    | Expr.Bconst k -> Expr.Bconst (not k)
    | Expr.Bnot inner -> inner
    | a' -> Expr.Bnot a')
  | Expr.Blt (a, b) -> (
    match (rexpr a, rexpr b) with
    | Expr.Rconst x, Expr.Rconst y -> Expr.Bconst (x < y)
    | a', b' when req a' b' -> Expr.Bconst false
    | a', b' -> Expr.Blt (a', b'))
  | Expr.Bgt (a, b) -> (
    match (rexpr a, rexpr b) with
    | Expr.Rconst x, Expr.Rconst y -> Expr.Bconst (x > y)
    | a', b' when req a' b' -> Expr.Bconst false
    | a', b' -> Expr.Bgt (a', b'))
  | Expr.Beq (a, b) -> (
    match (rexpr a, rexpr b) with
    | Expr.Rconst x, Expr.Rconst y ->
      Expr.Bconst (Float.abs (x -. y) < Eval.div_epsilon)
    | a', b' when req a' b' -> Expr.Bconst true
    | a', b' -> Expr.Beq (a', b'))

(* Iterate to a fixed point (each pass strictly shrinks or stabilizes). *)
let genome (g : Expr.genome) : Expr.genome =
  let step = function
    | Expr.Real e -> Expr.Real (rexpr e)
    | Expr.Bool e -> Expr.Bool (bexpr e)
  in
  let rec fix g n = if n = 0 then g else
      let g' = step g in
      if g' = g then g else fix g' (n - 1)
  in
  fix g 10
