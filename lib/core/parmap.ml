(* A minimal task pool behind a first-class backend API.

   Three backends share one [pool] configuration record:

   - [`Seq]: in-process, sequential — the bit-identity reference.
   - [`Fork]: the original process pool.  [run] is the streaming pool:
     tasks are dealt round-robin, worker [w] owns indices w, w+jobs, ...
     Each worker writes [(index, result)] pairs to its pipe as they
     complete, flushing after every task, so a worker that dies mid-chunk
     loses only the tasks it had not yet flushed — the parent fills those
     with [fallback].  The parent drains the workers one at a time; pipes
     buffer in the kernel, so slower workers simply block on write until
     their turn, and no deadlock is possible with single-reader pipes.
     Supervised evaluation ([create]/[run_batch]/[shutdown], with
     [run_supervised] as the one-shot composition) adds the fault model
     long evolution runs need: pre-forked workers kept alive on pipes
     across batches, a wall-clock deadline enforced from the parent (a
     worker stuck in a tight loop or a blocking C call cannot be trusted
     to deliver its own SIGALRM), exponential-backoff retries on a
     respawned slot, and a typed outcome per task instead of a silent
     fallback.
   - [`Domains]: an OCaml 5 shared-memory work pool — [Domain.spawn]ed
     workers pulling task indices from one [Atomic] counter, no fork and
     no [Marshal] round-trip per task.  Each result is written to a
     distinct slot of the output array, so workers never race.  A domain
     cannot be killed, so [run_supervised] enforces deadlines
     cooperatively: the supervisor installs a [Cancel] token around each
     attempt, the evaluation stack polls it at safepoints and the
     resulting [Cancelled] becomes a [Timed_out], with the same retry /
     backoff schedule as the fork supervisor.  A task that ignores its
     token past a grace period gets its worker {e quarantined}: the
     domain is marked poisoned and abandoned (it exits on its own if the
     task ever returns) and a fresh domain takes over its slot, so one
     runaway cannot absorb the pool.

   The two parallel backends are mutually exclusive per process, in one
   direction: the OCaml 5 runtime permanently forbids [Unix.fork] once
   any domain has ever been spawned (even after [Domain.join]).  The
   first domains-pool run therefore retires [`Fork] for the rest of the
   process — [capabilities] reflects that, and later [`Fork] requests
   degrade to the sequential / in-process paths with a warning, exactly
   as on a platform without [fork].  Fork first, domains after, or pick
   one backend per process. *)

type backend = [ `Seq | `Fork | `Domains ]

let available = Sys.unix

(* Sticky: set before the first Domain.spawn, never cleared (terminated
   domains keep fork forbidden for the life of the process). *)
let domains_used = ref false

let fork_usable () = available && not !domains_used

let warned_fork_after_domains = ref false

let warn_fork_after_domains () =
  if not !warned_fork_after_domains then begin
    warned_fork_after_domains := true;
    Logs.warn (fun m ->
        m "parmap: the fork backend is retired once domains have run in \
           this process (the runtime forbids fork after Domain.spawn); \
           running in-process instead")
  end

let backend_name = function
  | `Seq -> "seq"
  | `Fork -> "fork"
  | `Domains -> "domains"

let backend_of_name = function
  | "seq" -> Some `Seq
  | "fork" -> Some `Fork
  | "domains" -> Some `Domains
  | _ -> None

(* Domains are part of the OCaml 5 runtime and exist on every platform;
   forking is Unix-only, and retired once a domains pool has run. *)
let capabilities () : backend list =
  if fork_usable () then [ `Seq; `Fork; `Domains ] else [ `Seq; `Domains ]

type pool = {
  backend : backend;
  jobs : int;
  timeout_s : float option;
  retries : int;
  backoff_s : float;
  chunk_target_ms : float;
  chunk_min : int;
  chunk_max : int;
  ignored_limits : string list;
}

let warned_ignored_limits = ref false

let pool ?(backend = `Fork) ?(jobs = 1) ?timeout_s ?(retries = 1)
    ?(backoff_s = 0.05) ?(chunk_target_ms = 2.0) ?(chunk_min = 1)
    ?(chunk_max = 64) () =
  if jobs < 1 then
    invalid_arg
      (Printf.sprintf
         "Parmap.pool: jobs must be a positive worker count (got %d)" jobs);
  (match timeout_s with
  | Some t when (not (Float.is_finite t)) || t <= 0.0 ->
    invalid_arg "Parmap.pool: timeout_s must be a positive number of seconds"
  | _ -> ());
  if retries < 0 then invalid_arg "Parmap.pool: retries must be >= 0";
  if (not (Float.is_finite backoff_s)) || backoff_s < 0.0 then
    invalid_arg "Parmap.pool: backoff_s must be >= 0";
  if (not (Float.is_finite chunk_target_ms)) || chunk_target_ms <= 0.0 then
    invalid_arg "Parmap.pool: chunk_target_ms must be a positive number";
  if chunk_min < 1 then invalid_arg "Parmap.pool: chunk_min must be >= 1";
  if chunk_max < chunk_min then
    invalid_arg "Parmap.pool: chunk_max must be >= chunk_min";
  (* Supervision limits the chosen backend cannot honor.  Both parallel
     backends now enforce deadlines and retries; only [`Seq] runs
     unsupervised.  [retries = 1] is the constructor default, so only a
     value that must have been chosen deliberately is flagged. *)
  let ignored_limits =
    match backend with
    | `Seq ->
      (if timeout_s <> None then [ "timeout_s" ] else [])
      @ (if retries > 1 then [ "retries" ] else [])
    | `Fork | `Domains -> []
  in
  if ignored_limits <> [] && not !warned_ignored_limits then begin
    warned_ignored_limits := true;
    Logs.warn (fun m ->
        m
          "parmap: %s configured on the seq backend, which runs \
           unsupervised (no deadlines, no retries); the limits will be \
           ignored"
          (String.concat "/" ignored_limits))
  end;
  {
    backend;
    jobs;
    timeout_s;
    retries;
    backoff_s;
    chunk_target_ms;
    chunk_min;
    chunk_max;
    ignored_limits;
  }

(* Every blocking syscall goes through here: a signal delivered while the
   parent is reaping or draining (SIGCHLD, a profiler's SIGPROF, an
   interval timer) makes the call fail with EINTR, and treating that as a
   real failure misreports a healthy worker as lost.  Restart the call
   instead. *)
let rec retry_eintr f =
  match f () with
  | v -> v
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> retry_eintr f

let describe_status = function
  | Unix.WEXITED c -> Printf.sprintf "exited with code %d" c
  | Unix.WSIGNALED s -> Printf.sprintf "killed by signal %d" s
  | Unix.WSTOPPED s -> Printf.sprintf "stopped by signal %d" s

let sequential ~fallback f xs =
  Array.map (fun x -> try f x with _ -> fallback) xs

let emit_map_record ~backend ~jobs ~tasks ~t_start =
  let wall = Telemetry.now_s () -. t_start in
  Telemetry.observe "parmap.map_wall_s" wall;
  Telemetry.emit ~kind:"pool"
    [
      ("mode", Telemetry.String "map");
      ("backend", Telemetry.String (backend_name backend));
      ("jobs", Telemetry.Int jobs);
      ("tasks", Telemetry.Int tasks);
      ("wall_s", Telemetry.Float wall);
    ]

let fork_map ~jobs ~fallback f xs =
  let n = Array.length xs in
  let jobs = min jobs (max 1 n) in
  if n = 0 || jobs <= 1 then sequential ~fallback f xs
  else begin
    (* Anything buffered in the parent must not be replayed by children
       (children exit through [Unix._exit], which skips flushing). *)
    flush stdout;
    flush stderr;
    let tel = Telemetry.enabled () in
    let t_start = if tel then Telemetry.now_s () else 0.0 in
    let results = Array.make n fallback in
    let spawn w =
      let rd, wr = Unix.pipe () in
      match Unix.fork () with
      | 0 ->
        (* The child inherits the parent's sink descriptor; writing to it
           would interleave torn lines into the parent's stream. *)
        Telemetry.set_sink None;
        Unix.close rd;
        let oc = Unix.out_channel_of_descr wr in
        (try
           let i = ref w in
           while !i < n do
             let v = try f xs.(!i) with _ -> fallback in
             Marshal.to_channel oc (!i, v) [];
             flush oc;
             i := !i + jobs
           done;
           close_out oc
         with _ -> ());
        Unix._exit 0
      | pid ->
        Unix.close wr;
        (pid, rd)
    in
    let workers = Array.init jobs spawn in
    Array.iter
      (fun (pid, rd) ->
        let ic = Unix.in_channel_of_descr rd in
        (try
           while true do
             let (i, v) : int * _ = Marshal.from_channel ic in
             if i >= 0 && i < n then results.(i) <- v
           done
         with
        | End_of_file -> ()
        | Failure msg ->
          (* A truncated [Marshal] header or payload: the worker died
             mid-write.  Clean EOF ends at a message boundary; a torn
             stream means in-flight work was lost. *)
          Logs.warn (fun m ->
              m "parmap: torn result stream from worker %d (%s)" pid msg));
        (try close_in ic with _ -> ());
        (match retry_eintr (fun () -> Unix.waitpid [] pid) with
        | _, Unix.WEXITED 0 -> ()
        | _, status ->
          Logs.warn (fun m ->
              m "parmap: worker %d %s" pid (describe_status status))
        | exception Unix.Unix_error _ -> ()))
      workers;
    if tel then emit_map_record ~backend:`Fork ~jobs ~tasks:n ~t_start;
    results
  end

(* Run [body] as one of the pool's workers on the calling domain, with
   telemetry suppressed exactly as it is in the spawned workers (and in
   forked children), then restore. *)
let as_suppressed_worker body =
  Telemetry.suppress_in_domain true;
  Fun.protect
    ~finally:(fun () -> Telemetry.suppress_in_domain false)
    body

let domains_map ~jobs ~fallback f xs =
  let n = Array.length xs in
  let jobs = min jobs (max 1 n) in
  if n = 0 || jobs <= 1 then sequential ~fallback f xs
  else begin
    let tel = Telemetry.enabled () in
    let t_start = if tel then Telemetry.now_s () else 0.0 in
    let results = Array.make n fallback in
    let next = Atomic.make 0 in
    let body () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          results.(i) <- (try f xs.(i) with _ -> fallback);
          loop ()
        end
      in
      loop ()
    in
    let worker () =
      Telemetry.suppress_in_domain true;
      body ()
    in
    domains_used := true;
    let spawned = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    as_suppressed_worker body;
    Array.iter Domain.join spawned;
    if tel then emit_map_record ~backend:`Domains ~jobs ~tasks:n ~t_start;
    results
  end

let run pool ~fallback f xs =
  match pool.backend with
  | `Seq -> sequential ~fallback f xs
  | `Fork ->
    if fork_usable () then fork_map ~jobs:pool.jobs ~fallback f xs
    else begin
      if available then warn_fork_after_domains ();
      sequential ~fallback f xs
    end
  | `Domains -> domains_map ~jobs:pool.jobs ~fallback f xs

let map ?(jobs = 1) ~fallback f xs =
  if jobs < 1 then
    invalid_arg
      (Printf.sprintf
         "Parmap.map: jobs must be a positive worker count (got %d)" jobs);
  run (pool ~backend:`Fork ~jobs ()) ~fallback f xs

(* --- Supervised evaluation ---------------------------------------------- *)

type 'b outcome = Ok of 'b | Crashed of string | Timed_out | Gave_up

type stats = {
  completed : int;
  crashes : int;
  timeouts : int;
  retries : int;
  quarantined : int;
}

(* Worker -> parent message.  A worker that dies before writing a full
   message (signal, [exit], runaway allocation) is detected by the parent
   as a truncated buffer at EOF. *)
type 'b reply = Value of 'b | Raised of string

let insert_delayed ((t, _, _) as entry) l =
  let rec go = function
    | [] -> [ entry ]
    | ((t', _, _) as e) :: rest ->
      if t <= t' then entry :: e :: rest else e :: go rest
  in
  go l

(* --- Adaptive chunk sizing ----------------------------------------------- *)

(* The dispatcher amortizes one round-trip (a Marshal write on the fork
   pool, a mutex/condition handoff on the domains pool) over a chunk of
   tasks sized so a chunk is worth ~[chunk_target_ms] of work, using an
   EWMA of observed per-task cost.  The estimate is seeded from the
   process-wide [parmap.task_s] telemetry when available, refined on
   every completed task, and kept per pool so batches re-estimate as the
   workload drifts.  With no estimate at all the first batch runs at
   [chunk_min] — the default, 1, is exactly the pre-chunking protocol
   and the [`Seq]/-j1-compatible reference. *)

let seed_ewma () =
  if Telemetry.enabled () then begin
    let h = Telemetry.histogram "parmap.task_s" in
    if Telemetry.Histogram.count h > 0 then
      Telemetry.Histogram.percentile h 50.0
    else 0.0
  end
  else 0.0

let ewma_update cur sample =
  if (not (Float.is_finite sample)) || sample <= 0.0 then cur
  else if cur <= 0.0 then sample
  else (0.7 *. cur) +. (0.3 *. sample)

(* Chunk length for a batch of [tasks] over [jobs] workers: the adaptive
   estimate clamped to the pool's floor/ceiling, then capped so the
   batch still splits into at least [jobs] chunks — a floor above that
   cap would serialize the whole batch onto one worker. *)
let chunk_length ~target_s ~cmin ~cmax ~jobs ~ewma ~tasks =
  let base =
    if ewma > 0.0 then int_of_float (Float.round (target_s /. ewma)) else cmin
  in
  let c = max cmin (min base cmax) in
  let cap = max 1 ((tasks + jobs - 1) / jobs) in
  max 1 (min c cap)

(* Task ids [0, n) as consecutive chunks of at most [len]. *)
let partition_chunks n len =
  let out = ref [] in
  let i = ref 0 in
  while !i < n do
    let l = min len (n - !i) in
    let base = !i in
    out := Array.init l (fun k -> base + k) :: !out;
    i := !i + l
  done;
  List.rev !out

(* No fork (or [`Seq] requested): in-process evaluation.  Exceptions
   still isolate per task, but hangs cannot be interrupted and retries
   are pointless against a deterministic in-process failure. *)
let inprocess_supervised f xs =
  let n = Array.length xs in
  let outcomes = Array.make n Gave_up in
  let completed = ref 0 in
  let crashes = ref 0 in
  Array.iteri
    (fun i x ->
      outcomes.(i) <-
        (match f x with
        | v ->
          incr completed;
          Ok v
        | exception e ->
          incr crashes;
          Crashed (Printexc.to_string e)))
    xs;
  ( outcomes,
    {
      completed = !completed;
      crashes = !crashes;
      timeouts = 0;
      retries = 0;
      quarantined = 0;
    } )

(* Shared-memory supervision.  A domain cannot be SIGKILLed, so the
   fault model is cooperative: the calling domain acts as the
   supervisor, worker domains pull chunks — [(task ids, attempt,
   enqueue time)] — from per-worker deques and run each member under
   its own [Cancel] token carrying the per-task deadline.  The
   evaluation stack polls the token at safepoints and raises
   [Cancelled] past the deadline, which the worker records as that
   member's timeout and moves on to the chunk's next member; retries
   and exponential backoff then follow exactly the fork supervisor's
   schedule, per task.

   A worker whose own deque runs dry steals the younger half of the
   fullest other deque (Chase–Lev in spirit; the deques share the pool
   mutex rather than a lock-free protocol because chunks change hands
   a few times per batch, not per task), so one slow worker cannot
   strand the chunks queued behind it.

   Tasks that never reach a safepoint (a blocking C call, a chaos
   [Hang]) get the quarantine path: the running chunk publishes a
   wall-clock quarantine time for its current member — deadline plus a
   grace period of half the timeout (min 50ms), so a hung task is cut
   off within 1.5x its deadline no matter how long its chunk is.  The
   supervisor sweeps for overdue members, wins the chunk's [settled]
   CAS so any late worker result is discarded, salvages the chunk —
   members with a recorded partial result keep it, the hung member is
   charged a timeout, members never started are re-enqueued uncharged
   as singleton chunks — marks the worker poisoned and spawns a fresh
   domain in its slot.  A poisoned domain is abandoned, never joined:
   it exits on its own if the hung task ever returns (its next dequeue
   sees the poison flag), and a domain parked in a blocking section
   does not obstruct the runtime.

   Results travel back through a settled-CAS-guarded record plus a
   mutex-protected done-queue; a self-pipe wakes the supervisor's
   [select], whose timeout is the nearest of the pending quarantine
   times and retry wake-ups. *)

type 'b attempt_result = Done of 'b | Failed of string | Deadline

(* One dispatched chunk.  [r_partial.(k)] is written before
   [r_progress] advances past member [k], so when the quarantine sweep
   wins the CAS it can trust every recorded partial: member values are
   deterministic, so a partial observed mid-race equals what a re-run
   would compute. *)
type 'b running = {
  r_tasks : int array;
  r_attempt : int; (* 0-based; one chunk is all one attempt *)
  r_enq : float; (* absolute enqueue time; 0 when telemetry is off *)
  r_dispatched : float; (* absolute take-time *)
  mutable r_done : float; (* absolute; 0 until settled by the worker *)
  r_qat : float Atomic.t; (* current member's quarantine time *)
  r_settled : bool Atomic.t; (* CAS-won by worker or quarantine sweep *)
  r_progress : int Atomic.t; (* index of the member being evaluated *)
  r_partial : 'b attempt_result option array; (* per-member results *)
}

type 'b wstate = {
  w_poisoned : bool Atomic.t;
  w_current : 'b running option Atomic.t;
}

let now () = Unix.gettimeofday ()

(* Persistent domains pool: the worker domains, the deques, the done
   queue and the notify pipe outlive any single batch.  Workers read
   the current batch's input array out of [d_xs] under the pool mutex,
   so the supervisor's assignment is visible before any of that batch's
   chunks can be taken. *)
type ('a, 'b) dom_state = {
  d_m : Mutex.t;
  d_c : Condition.t;
  d_deques : (int array * int * float) list ref array; (* per-slot chunks *)
  d_done : 'b running Queue.t;
  mutable d_stop : bool;
  mutable d_xs : 'a array;
  d_note_r : Unix.file_descr;
  d_note_w : Unix.file_descr;
  mutable d_live : ('b wstate * unit Domain.t) array;
  d_f : 'a -> 'b;
  d_jobs : int;
  d_timeout_s : float option;
  d_retries : int;
  d_backoff_s : float;
  d_grace : float;
  d_target_s : float; (* chunk budget, seconds *)
  d_cmin : int;
  d_cmax : int;
  d_steals : int Atomic.t;
  mutable d_ewma : float; (* per-task cost estimate, seconds *)
}

(* Take the next chunk: own deque first, then steal the younger half of
   the fullest other deque (the first stolen chunk is run, the rest
   land on the taker's deque), else wait. *)
let dom_take st idx =
  Mutex.lock st.d_m;
  let rec go () =
    if st.d_stop then None
    else begin
      let dq = st.d_deques.(idx) in
      match !dq with
      | c :: rest ->
        dq := rest;
        Some (c, st.d_xs)
      | [] ->
        let best = ref (-1) and blen = ref 0 in
        Array.iteri
          (fun j q ->
            if j <> idx then begin
              let l = List.length !q in
              if l > !blen then begin
                best := j;
                blen := l
              end
            end)
          st.d_deques;
        if !best >= 0 then begin
          let q = st.d_deques.(!best) in
          let keep = !blen - ((!blen + 1) / 2) in
          let rec split i acc rest =
            if i = keep then (List.rev acc, rest)
            else
              match rest with
              | x :: tl -> split (i + 1) (x :: acc) tl
              | [] -> (List.rev acc, [])
          in
          let kept, stolen = split 0 [] !q in
          q := kept;
          Atomic.incr st.d_steals;
          match stolen with
          | c :: mine ->
            st.d_deques.(idx) := mine;
            Some (c, st.d_xs)
          | [] -> go ()
        end
        else begin
          Condition.wait st.d_c st.d_m;
          go ()
        end
    end
  in
  let t = go () in
  Mutex.unlock st.d_m;
  t

let dom_worker st ws idx () =
  Telemetry.suppress_in_domain true;
  let rec loop () =
    if not (Atomic.get ws.w_poisoned) then
      match dom_take st idx with
      | None -> ()
      | Some ((tasks, attempt, enq), xs) ->
        let len = Array.length tasks in
        let r =
          {
            r_tasks = tasks;
            r_attempt = attempt;
            r_enq = enq;
            r_dispatched = now ();
            r_done = 0.0;
            r_qat = Atomic.make infinity;
            r_settled = Atomic.make false;
            r_progress = Atomic.make 0;
            r_partial = Array.make len None;
          }
        in
        Atomic.set ws.w_current (Some r);
        Array.iteri
          (fun k task ->
            Atomic.set r.r_progress k;
            (* One token per member: a chunk does not widen any single
               task's deadline, and one timed-out member does not
               abort the rest of its chunk. *)
            let tok = Cancel.create ?deadline_s:st.d_timeout_s () in
            Atomic.set r.r_qat (Cancel.deadline tok +. st.d_grace);
            r.r_partial.(k) <-
              Some
                (match
                   Cancel.with_token tok (fun () ->
                       Chaos.task_point ~isolated:false ~key:task
                         ~attempt:(attempt + 1);
                       st.d_f xs.(task))
                 with
                | v -> Done v
                | exception Cancel.Cancelled ->
                  (* Only a cancelled token makes [Cancelled] a
                     timeout; a task raising it spuriously is a
                     crash. *)
                  if Cancel.cancelled tok then Deadline
                  else Failed "task raised Cancelled"
                | exception e -> Failed (Printexc.to_string e)))
          tasks;
        Atomic.set r.r_progress len;
        Atomic.set ws.w_current None;
        r.r_done <- now ();
        if Atomic.compare_and_set r.r_settled false true then begin
          Mutex.lock st.d_m;
          Queue.add r st.d_done;
          Mutex.unlock st.d_m;
          let b = Bytes.make 1 '!' in
          ignore (retry_eintr (fun () -> Unix.write st.d_note_w b 0 1))
        end;
        (* A lost CAS means the sweep quarantined this chunk — the
           poison flag ends the loop above. *)
        loop ()
  in
  loop ()

let dom_spawn_worker st idx =
  let ws = { w_poisoned = Atomic.make false; w_current = Atomic.make None } in
  (ws, Domain.spawn (dom_worker st ws idx))

let init_domains (p : pool) f =
  let note_r, note_w = Unix.pipe () in
  let st =
    {
      d_m = Mutex.create ();
      d_c = Condition.create ();
      d_deques = Array.init p.jobs (fun _ -> ref []);
      d_done = Queue.create ();
      d_stop = false;
      d_xs = [||];
      d_note_r = note_r;
      d_note_w = note_w;
      d_live = [||];
      d_f = f;
      d_jobs = p.jobs;
      d_timeout_s = p.timeout_s;
      d_retries = p.retries;
      d_backoff_s = p.backoff_s;
      d_grace =
        (match p.timeout_s with
        | Some t -> Float.max 0.05 (0.5 *. t)
        | None -> infinity);
      d_target_s = p.chunk_target_ms /. 1000.0;
      d_cmin = p.chunk_min;
      d_cmax = p.chunk_max;
      d_steals = Atomic.make 0;
      d_ewma = seed_ewma ();
    }
  in
  domains_used := true;
  let tel = Telemetry.enabled () in
  let t0 = if tel then Telemetry.now_s () else 0.0 in
  st.d_live <- Array.init p.jobs (fun idx -> dom_spawn_worker st idx);
  if tel then Telemetry.observe "parmap.pool_spawn_s" (Telemetry.now_s () -. t0);
  st

let shutdown_domains st =
  Mutex.lock st.d_m;
  st.d_stop <- true;
  Condition.broadcast st.d_c;
  Mutex.unlock st.d_m;
  Array.iter
    (fun (ws, d) -> if not (Atomic.get ws.w_poisoned) then Domain.join d)
    st.d_live;
  st.d_live <- [||];
  (try Unix.close st.d_note_r with Unix.Unix_error _ -> ());
  (try Unix.close st.d_note_w with Unix.Unix_error _ -> ())

let domains_batch (st : ('a, 'b) dom_state) (xs : 'a array) =
  let n = Array.length xs in
  let outcomes = Array.make n Gave_up in
  let tel = Telemetry.enabled () in
  let t_start = if tel then Telemetry.now_s () else 0.0 in
  let completed = ref 0 in
  let crashes = ref 0 in
  let timeouts = ref 0 in
  let retried = ref 0 in
  let quarantined = ref 0 in
  let task_hist = Telemetry.Histogram.create () in
  let queue_hist = Telemetry.Histogram.create () in
  let busy = ref 0.0 in
  let timeout_s = st.d_timeout_s in
  let retries = st.d_retries in
  let backoff_s = st.d_backoff_s in
  let steals0 = Atomic.get st.d_steals in
  let dispatch_s = ref 0.0 in
  (* Size the batch's chunks from the running cost estimate and install
     them round-robin across the worker deques before the broadcast, so
     every worker finds local work first; imbalance from mis-estimation
     is what stealing corrects. *)
  if st.d_ewma <= 0.0 then st.d_ewma <- seed_ewma ();
  let clen =
    chunk_length ~target_s:st.d_target_s ~cmin:st.d_cmin ~cmax:st.d_cmax
      ~jobs:st.d_jobs ~ewma:st.d_ewma ~tasks:n
  in
  let chunks = partition_chunks n clen in
  let t_disp0 = now () in
  Mutex.lock st.d_m;
  st.d_xs <- xs;
  let enq0 = if tel then t_disp0 else 0.0 in
  List.iteri
    (fun i c ->
      if tel then
        Telemetry.observe "parmap.chunk_size" (float_of_int (Array.length c));
      let dq = st.d_deques.(i mod st.d_jobs) in
      dq := !dq @ [ (c, 0, enq0) ])
    chunks;
  Condition.broadcast st.d_c;
  Mutex.unlock st.d_m;
  dispatch_s := now () -. t_disp0;
  let delayed = ref [] in
  let remaining = ref n in
  (* Retries and salvage re-entries go to the shortest deque: they are
     late-batch work, and the emptiest worker reaches them soonest. *)
  let push_chunk tasks attempt enq =
    let t0 = now () in
    Mutex.lock st.d_m;
    let best = ref 0 and blen = ref max_int in
    Array.iteri
      (fun j q ->
        let l = List.length !q in
        if l < !blen then begin
          best := j;
          blen := l
        end)
      st.d_deques;
    let dq = st.d_deques.(!best) in
    dq := !dq @ [ (tasks, attempt, enq) ];
    Condition.broadcast st.d_c;
    Mutex.unlock st.d_m;
    dispatch_s := !dispatch_s +. (now () -. t0)
  in
  let handle_failure ~task ~attempt kind =
    (match kind with
    | `Crash msg ->
      incr crashes;
      Logs.warn (fun m ->
          m "parmap: task %d attempt %d crashed: %s" task (attempt + 1) msg)
    | `Timeout ->
      incr timeouts;
      Logs.warn (fun m ->
          m "parmap: task %d attempt %d timed out after %.1fs" task
            (attempt + 1)
            (Option.value ~default:0.0 timeout_s)));
    if attempt < retries then begin
      incr retried;
      let delay = backoff_s *. (2.0 ** float_of_int attempt) in
      delayed := insert_delayed (now () +. delay, task, attempt + 1) !delayed
    end
    else begin
      outcomes.(task) <-
        (if retries = 0 then
           match kind with `Crash msg -> Crashed msg | `Timeout -> Timed_out
         else Gave_up);
      decr remaining
    end
  in
  (* Settle a chunk whose CAS was won (by its worker or by the
     quarantine sweep).  Members with a recorded partial keep it —
     member values are deterministic, so a partial snapshotted mid-race
     equals what a re-run would compute.  Members never started are
     re-enqueued uncharged at the same attempt; only a forced quarantine
     charges the member it was stuck on. *)
  let salvage ?(forced_timeout = false) ?end_ (r : 'b running) =
    let len = Array.length r.r_tasks in
    let parts = Array.init len (fun k -> r.r_partial.(k)) in
    let progress = Atomic.get r.r_progress in
    let stop =
      match end_ with
      | Some t -> t
      | None -> if r.r_done > 0.0 then r.r_done else now ()
    in
    let dur = Float.max 0.0 (stop -. r.r_dispatched) in
    busy := !busy +. dur;
    let finished =
      Array.fold_left (fun a p -> if p <> None then a + 1 else a) 0 parts
    in
    let per = if finished > 0 then dur /. float_of_int finished else 0.0 in
    st.d_ewma <- ewma_update st.d_ewma per;
    if tel then begin
      if r.r_enq > 0.0 then begin
        let w = Float.max 0.0 (r.r_dispatched -. r.r_enq) in
        for _ = 1 to len do
          Telemetry.Histogram.add queue_hist w;
          Telemetry.observe "parmap.queue_wait_s" w
        done
      end;
      for _ = 1 to finished do
        Telemetry.Histogram.add task_hist per;
        Telemetry.observe "parmap.task_s" per
      done
    end;
    Array.iteri
      (fun k task ->
        match parts.(k) with
        | Some (Done v) ->
          outcomes.(task) <- Ok v;
          incr completed;
          decr remaining
        | Some (Failed msg) -> handle_failure ~task ~attempt:r.r_attempt (`Crash msg)
        | Some Deadline -> handle_failure ~task ~attempt:r.r_attempt `Timeout
        | None ->
          if forced_timeout && k = progress then
            handle_failure ~task ~attempt:r.r_attempt `Timeout
          else
            push_chunk [| task |] r.r_attempt (if tel then now () else 0.0))
      r.r_tasks
  in
  let drain_buf = Bytes.create 512 in
  while !remaining > 0 do
    let t = now () in
    (* Promote delayed retries whose backoff has elapsed. *)
    let rec promote () =
      match !delayed with
      | (nb, task, att) :: rest when nb <= t ->
        delayed := rest;
        push_chunk [| task |] att (if tel then t else 0.0);
        promote ()
      | _ -> ()
    in
    promote ();
    (* Sleep until the nearest quarantine time or retry wake-up, or
       until a worker pokes the pipe. *)
    let nearest_quarantine =
      Array.fold_left
        (fun acc (ws, _) ->
          match Atomic.get ws.w_current with
          | Some r when not (Atomic.get r.r_settled) ->
            Float.min acc (Atomic.get r.r_qat)
          | _ -> acc)
        infinity st.d_live
    in
    let nearest_retry =
      match !delayed with (nb, _, _) :: _ -> nb | [] -> infinity
    in
    let until = Float.min nearest_quarantine nearest_retry in
    let tmo =
      match timeout_s with
      | None -> if until = infinity then -1.0 else Float.max 0.0 (until -. now ())
      | Some _ ->
        (* A deadline is in force, and a worker may pick up a queued
           chunk and hang before the supervisor ever sees it — never
           sleep past a 50ms poll, or the quarantine sweep could miss
           it. *)
        Float.min 0.05 (Float.max 0.0 (until -. now ()))
    in
    (match Unix.select [ st.d_note_r ] [] [] tmo with
    | [], _, _ -> ()
    | _ ->
      ignore
        (retry_eintr (fun () ->
             Unix.read st.d_note_r drain_buf 0 (Bytes.length drain_buf)))
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
    (* Collect settled chunks. *)
    let finished = ref [] in
    Mutex.lock st.d_m;
    Queue.iter (fun r -> finished := r :: !finished) st.d_done;
    Queue.clear st.d_done;
    Mutex.unlock st.d_m;
    List.iter (fun r -> salvage r) (List.rev !finished);
    (* Quarantine sweep: any chunk whose current member is past its
       quarantine time and whose settled CAS we win is salvaged — the
       hung member charged, finished members kept, unstarted members
       re-enqueued — its worker poisoned and replaced.  The replacement
       joins the persistent pool and serves later batches too. *)
    let t = now () in
    Array.iteri
      (fun idx ((ws, _) as _w) ->
        match Atomic.get ws.w_current with
        | Some r
          when Atomic.get r.r_qat <= t
               && Atomic.compare_and_set r.r_settled false true ->
          incr quarantined;
          Atomic.set ws.w_poisoned true;
          let len = Array.length r.r_tasks in
          let progress = Atomic.get r.r_progress in
          let hung = if progress < len then r.r_tasks.(progress) else -1 in
          Logs.warn (fun m ->
              m
                "parmap: task %d attempt %d ignored its deadline past the \
                 grace period; quarantining its worker and respawning the \
                 slot"
                hung (r.r_attempt + 1));
          salvage ~forced_timeout:true ~end_:t r;
          st.d_live.(idx) <- dom_spawn_worker st idx
        | _ -> ())
      st.d_live
  done;
  let steals = Atomic.get st.d_steals - steals0 in
  if tel then begin
    let wall = Telemetry.now_s () -. t_start in
    Telemetry.incr ~by:!crashes "parmap.crashes";
    Telemetry.incr ~by:!timeouts "parmap.timeouts";
    Telemetry.incr ~by:!retried "parmap.retries";
    Telemetry.incr ~by:!quarantined "parmap.quarantined";
    Telemetry.incr ~by:steals "parmap.steals";
    Telemetry.observe "parmap.dispatch_s" !dispatch_s;
    let pct h p = Telemetry.Histogram.percentile h p in
    Telemetry.emit ~kind:"pool"
      [
        ("mode", Telemetry.String "supervised");
        ("backend", Telemetry.String "domains");
        ("jobs", Telemetry.Int st.d_jobs);
        ("tasks", Telemetry.Int n);
        ("completed", Telemetry.Int !completed);
        ("crashes", Telemetry.Int !crashes);
        ("timeouts", Telemetry.Int !timeouts);
        ("retries", Telemetry.Int !retried);
        ("quarantined", Telemetry.Int !quarantined);
        ("chunk_len", Telemetry.Int clen);
        ("steals", Telemetry.Int steals);
        ("dispatch_s", Telemetry.Float !dispatch_s);
        ("wall_s", Telemetry.Float wall);
        ("busy_s", Telemetry.Float !busy);
        ( "utilization",
          Telemetry.Float
            (if wall > 0.0 then
               !busy /. (wall *. float_of_int st.d_jobs)
             else 0.0) );
        ("task_p50_s", Telemetry.Float (pct task_hist 50.0));
        ("task_p95_s", Telemetry.Float (pct task_hist 95.0));
        ("task_max_s", Telemetry.Float (Telemetry.Histogram.max task_hist));
        ("queue_p50_s", Telemetry.Float (pct queue_hist 50.0));
        ("queue_p95_s", Telemetry.Float (pct queue_hist 95.0));
        ("queue_max_s", Telemetry.Float (Telemetry.Histogram.max queue_hist));
      ]
  end;
  ( outcomes,
    {
      completed = !completed;
      crashes = !crashes;
      timeouts = !timeouts;
      retries = !retried;
      quarantined = !quarantined;
    } )

(* --- Persistent fork pool ------------------------------------------------ *)

(* One pre-forked worker per slot, kept alive across batches on a pair
   of pipes: the parent marshals a length-prefixed [(task ids, attempt,
   inputs)] chunk down the task pipe, the child streams back one framed
   [(task, reply)] per member and blocks reading the next chunk.  At
   most one chunk is ever in flight per slot, members reply strictly in
   chunk order, so the parent frames replies with [Marshal.header_size]
   / [Marshal.data_size] out of a per-slot buffer and resets the slot's
   per-task deadline after every member — a chunk never widens any one
   task's deadline.  A worker that dies (crash, chaos kill, SIGKILL on
   deadline) is reaped and its slot respawned without disturbing the
   rest of the pool — warm state in the surviving children (decoded
   layouts, simulation caches) stays resident; the dead chunk's
   finished members keep their results, its unfinished tail is
   re-enqueued as uncharged singletons. *)
type fslot = {
  mutable s_pid : int;
  mutable s_to : Unix.file_descr; (* parent -> child task pipe *)
  mutable s_from : Unix.file_descr; (* child -> parent result pipe *)
  mutable s_alive : bool;
  s_buf : Buffer.t; (* partial reply bytes *)
  mutable s_busy : bool;
  mutable s_tasks : int array; (* in-flight chunk, dispatch order *)
  mutable s_done : int; (* members already replied *)
  mutable s_attempt : int; (* 0-based; a chunk is all one attempt *)
  mutable s_dup : bool; (* chunk involved in a steal *)
  mutable s_deadline : float; (* absolute; [infinity] when no timeout *)
  mutable s_last : float; (* dispatch / latest-reply time, absolute *)
}

type ('a, 'b) fork_state = {
  k_f : 'a -> 'b;
  k_slots : fslot array;
  k_jobs : int;
  k_timeout_s : float option;
  k_retries : int;
  k_backoff_s : float;
  k_target_s : float; (* chunk budget, seconds *)
  k_cmin : int;
  k_cmax : int;
  mutable k_ewma : float; (* per-task cost estimate, seconds *)
}

(* The parent writes to task pipes whose child may have died; without
   this, the resulting SIGPIPE would kill the whole run instead of
   surfacing as an EPIPE the dispatcher handles by respawning the slot.
   Set once, never restored: writers in this codebase check their write
   results. *)
let sigpipe_ignored = ref false

let ignore_sigpipe () =
  if not !sigpipe_ignored then begin
    sigpipe_ignored := true;
    try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ()
  end

let write_all fd b =
  let len = Bytes.length b in
  let off = ref 0 in
  while !off < len do
    off := !off + retry_eintr (fun () -> Unix.write fd b !off (len - !off))
  done

let wait_status pid =
  match retry_eintr (fun () -> Unix.waitpid [] pid) with
  | _, status -> Some status
  | exception Unix.Unix_error _ -> None

(* The worker loop run in each forked child: read one chunk, evaluate
   its members in order streaming one flushed reply each — so the parent
   sees progress (and can reset the deadline) per task, not per chunk —
   repeat until the parent closes the task pipe. *)
let fork_child_loop (type a b) (f : a -> b) rd wr =
  let ic = Unix.in_channel_of_descr rd in
  let oc = Unix.out_channel_of_descr wr in
  (try
     while true do
       let (tasks, attempt, inputs) : int array * int * a array =
         Marshal.from_channel ic
       in
       Array.iteri
         (fun k task ->
           let reply : b reply =
             match
               Chaos.task_point ~isolated:true ~key:task ~attempt:(attempt + 1);
               f inputs.(k)
             with
             | v -> Value v
             | exception e -> Raised (Printexc.to_string e)
           in
           Marshal.to_channel oc (task, reply) [];
           flush oc)
         tasks
     done
   with _ -> ());
  Unix._exit 0

let fork_spawn_into st slot =
  (* Anything buffered in the parent must not be replayed by children
     (children exit through [Unix._exit], which skips flushing). *)
  flush stdout;
  flush stderr;
  let t_r, t_w = Unix.pipe () in
  let r_r, r_w = Unix.pipe () in
  let rec do_fork tries =
    match Unix.fork () with
    | pid -> pid
    | exception Unix.Unix_error (Unix.EAGAIN, _, _) when tries > 0 ->
      (try Unix.sleepf 0.05 with Unix.Unix_error (Unix.EINTR, _, _) -> ());
      do_fork (tries - 1)
  in
  match do_fork 100 with
  | 0 ->
    (* The child inherits the parent's sink descriptor; writing to it
       would interleave torn lines into the parent's stream.  It also
       inherits the other slots' pipe ends, which would keep dead
       siblings' pipes open — close them all. *)
    Telemetry.set_sink None;
    Unix.close t_w;
    Unix.close r_r;
    Array.iter
      (fun s ->
        if s != slot && s.s_alive then begin
          (try Unix.close s.s_to with Unix.Unix_error _ -> ());
          (try Unix.close s.s_from with Unix.Unix_error _ -> ())
        end)
      st.k_slots;
    fork_child_loop st.k_f t_r r_w
  | pid ->
    Unix.close t_r;
    Unix.close r_w;
    slot.s_pid <- pid;
    slot.s_to <- t_w;
    slot.s_from <- r_r;
    slot.s_alive <- true;
    slot.s_busy <- false;
    Buffer.clear slot.s_buf;
    slot.s_tasks <- [||];
    slot.s_done <- 0;
    slot.s_dup <- false;
    slot.s_deadline <- infinity;
    slot.s_last <- 0.0

let init_fork (p : pool) f =
  ignore_sigpipe ();
  let fresh_slot () =
    {
      s_pid = -1;
      s_to = Unix.stdin;
      s_from = Unix.stdin;
      s_alive = false;
      s_buf = Buffer.create 256;
      s_busy = false;
      s_tasks = [||];
      s_done = 0;
      s_attempt = 0;
      s_dup = false;
      s_deadline = infinity;
      s_last = 0.0;
    }
  in
  let st =
    {
      k_f = f;
      k_slots = Array.init p.jobs (fun _ -> fresh_slot ());
      k_jobs = p.jobs;
      k_timeout_s = p.timeout_s;
      k_retries = p.retries;
      k_backoff_s = p.backoff_s;
      k_target_s = p.chunk_target_ms /. 1000.0;
      k_cmin = p.chunk_min;
      k_cmax = p.chunk_max;
      k_ewma = seed_ewma ();
    }
  in
  let tel = Telemetry.enabled () in
  let t0 = if tel then Telemetry.now_s () else 0.0 in
  Array.iter (fun s -> fork_spawn_into st s) st.k_slots;
  if tel then Telemetry.observe "parmap.pool_spawn_s" (Telemetry.now_s () -. t0);
  st

(* Close the slot's pipes and reap the child, returning its exit status.
   Used on worker death and deadline kills; the slot is left dead for
   [fork_spawn_into] to repopulate. *)
let retire_slot slot =
  (try Unix.close slot.s_to with Unix.Unix_error _ -> ());
  (try Unix.close slot.s_from with Unix.Unix_error _ -> ());
  slot.s_alive <- false;
  slot.s_busy <- false;
  Buffer.clear slot.s_buf;
  wait_status slot.s_pid

let shutdown_fork st =
  Array.iter
    (fun s ->
      if s.s_alive then begin
        s.s_alive <- false;
        (* Closing the task pipe EOFs the idle child's blocking read; it
           exits on its own.  A child that does not (wedged in a task no
           batch is waiting on) is killed after a short grace. *)
        (try Unix.close s.s_to with Unix.Unix_error _ -> ());
        (try Unix.close s.s_from with Unix.Unix_error _ -> ());
        let rec wait tries =
          match retry_eintr (fun () -> Unix.waitpid [ Unix.WNOHANG ] s.s_pid) with
          | 0, _ ->
            if tries > 0 then begin
              (try Unix.sleepf 0.01
               with Unix.Unix_error (Unix.EINTR, _, _) -> ());
              wait (tries - 1)
            end
            else begin
              (try Unix.kill s.s_pid Sys.sigkill with Unix.Unix_error _ -> ());
              ignore (wait_status s.s_pid)
            end
          | _ -> ()
          | exception Unix.Unix_error _ -> ()
        in
        wait 50
      end)
    st.k_slots

let fork_batch (st : ('a, 'b) fork_state) (xs : 'a array) =
  let n = Array.length xs in
  let outcomes = Array.make n Gave_up in
  let completed = ref 0 in
  let crashes = ref 0 in
  let timeouts = ref 0 in
  let retried = ref 0 in
  let steals = ref 0 in
  let timeout_s = st.k_timeout_s in
  let retries = st.k_retries in
  let backoff_s = st.k_backoff_s in
  (* Telemetry: per-task latency and queue wait are observed from the
     parent.  [queue_wait_s] is enqueue-to-dispatch only — pool spawn
     cost lives under [parmap.pool_spawn_s] — and [task_s] is the
     reply-to-reply wall clock within a chunk (dispatch-to-first-reply
     for its head).  The clock itself is read unconditionally: the
     chunk-size EWMA needs the samples whether or not telemetry records
     them, and neither chunking nor stealing can change a task's value,
     only when it is computed. *)
  let tel = Telemetry.enabled () in
  let t_start = if tel then Telemetry.now_s () else 0.0 in
  let task_hist = Telemetry.Histogram.create () in
  let queue_hist = Telemetry.Histogram.create () in
  let busy = ref 0.0 in
  let dispatch_s = ref 0.0 in
  (* Per-task supervision state, shared by every dispatched copy of the
     task: its current attempt, whether it settled, and how many live
     copies are in flight (2 while a stolen tail runs twice; the first
     reply wins, later ones are stale).  A copy from a superseded
     attempt is also stale: retries bump [cur_attempt]. *)
  let cur_attempt = Array.make n 0 in
  let acked = Array.make n false in
  let copies = Array.make n 0 in
  let stale task attempt = acked.(task) || attempt <> cur_attempt.(task) in
  if st.k_ewma <= 0.0 then st.k_ewma <- seed_ewma ();
  let clen =
    chunk_length ~target_s:st.k_target_s ~cmin:st.k_cmin ~cmax:st.k_cmax
      ~jobs:st.k_jobs ~ewma:st.k_ewma ~tasks:n
  in
  (* Chunks awaiting dispatch, FIFO, stamped with the time they became
     ready; failed attempts wait out their backoff in [delayed] (sorted
     by wake-up time) and return as singletons. *)
  let ready : (int array * int * float) Queue.t = Queue.create () in
  let enq0 = if tel then now () else 0.0 in
  List.iter (fun c -> Queue.add (c, 0, enq0) ready) (partition_chunks n clen);
  let delayed = ref [] in
  let remaining = ref n in
  let chunk = Bytes.create 65536 in
  let finish_failure ~task ~attempt kind =
    acked.(task) <- true;
    (match kind with
    | `Crash msg ->
      incr crashes;
      Logs.warn (fun m ->
          m "parmap: task %d attempt %d crashed: %s" task (attempt + 1) msg)
    | `Timeout ->
      incr timeouts;
      Logs.warn (fun m ->
          m "parmap: task %d attempt %d timed out after %.1fs" task
            (attempt + 1)
            (Option.value ~default:0.0 timeout_s)));
    if attempt < retries then begin
      incr retried;
      let delay = backoff_s *. (2.0 ** float_of_int attempt) in
      delayed := insert_delayed (now () +. delay, task, attempt + 1) !delayed
    end
    else begin
      outcomes.(task) <-
        (if retries = 0 then
           match kind with
           | `Crash msg -> Crashed msg
           | `Timeout -> Timed_out
         else Gave_up);
      decr remaining
    end
  in
  (* Extract one framed [(task, reply)] from the slot's buffer, if
     complete. *)
  let try_extract_reply slot : (int * 'b reply) option =
    let len = Buffer.length slot.s_buf in
    if len < Marshal.header_size then None
    else begin
      let hdr = Bytes.of_string (Buffer.sub slot.s_buf 0 Marshal.header_size) in
      let total = Marshal.header_size + Marshal.data_size hdr 0 in
      if len < total then None
      else begin
        let data = Bytes.of_string (Buffer.contents slot.s_buf) in
        let v = (Marshal.from_bytes data 0 : int * 'b reply) in
        Buffer.clear slot.s_buf;
        if len > total then Buffer.add_subbytes slot.s_buf data total (len - total);
        Some v
      end
    end
  in
  (* A member replied: feed the reply-to-reply gap to the EWMA, push the
     slot's deadline out for its next member, and settle the task unless
     a sibling copy got there first. *)
  let note_event slot =
    let t = now () in
    let d = Float.max 0.0 (t -. slot.s_last) in
    slot.s_last <- t;
    st.k_ewma <- ewma_update st.k_ewma d;
    if tel then begin
      Telemetry.Histogram.add task_hist d;
      Telemetry.observe "parmap.task_s" d;
      busy := !busy +. d
    end
  in
  let handle_reply slot (task, reply) =
    note_event slot;
    slot.s_done <- slot.s_done + 1;
    if slot.s_done >= Array.length slot.s_tasks then begin
      slot.s_busy <- false;
      slot.s_deadline <- infinity
    end
    else
      slot.s_deadline <-
        (match timeout_s with Some d -> slot.s_last +. d | None -> infinity);
    if not (stale task slot.s_attempt) then begin
      copies.(task) <- copies.(task) - 1;
      match reply with
      | Value v ->
        acked.(task) <- true;
        outcomes.(task) <- Ok v;
        incr completed;
        decr remaining
      | Raised msg ->
        finish_failure ~task ~attempt:slot.s_attempt
          (`Crash ("task raised: " ^ msg))
    end
  in
  (* The slot's chunk is dead (worker death or deadline kill).  The
     member it was executing is charged [kind] — unless a live sibling
     copy still covers it — and the never-started tail is re-enqueued
     uncharged as singletons at the same attempt, so a seeded chaos plan
     keyed on attempt numbers fires identically under any chunking. *)
  let salvage_members slot kind =
    let len = Array.length slot.s_tasks in
    for k = slot.s_done to len - 1 do
      let task = slot.s_tasks.(k) in
      if not (stale task slot.s_attempt) then begin
        copies.(task) <- copies.(task) - 1;
        if copies.(task) <= 0 then begin
          if k = slot.s_done then
            finish_failure ~task ~attempt:slot.s_attempt kind
          else
            Queue.add
              ([| task |], slot.s_attempt, if tel then now () else 0.0)
              ready
        end
      end
    done
  in
  (* The worker died mid-chunk: any partial reply is torn.  Classify by
     exit status, salvage the chunk, and respawn the slot so the pool
     keeps its capacity. *)
  let handle_death slot =
    note_event slot;
    let status = retire_slot slot in
    let msg =
      match status with
      | Some (Unix.WEXITED 0) -> "worker exited before writing a result"
      | Some status -> "worker " ^ describe_status status
      | None -> "worker vanished"
    in
    salvage_members slot (`Crash msg);
    fork_spawn_into st slot
  in
  let rec dispatch slot ((tasks, attempt, enq) as job) ~tries =
    let inputs = Array.map (fun t -> xs.(t)) tasks in
    let t0 = now () in
    let msg = Marshal.to_bytes (tasks, attempt, inputs) [] in
    match write_all slot.s_to msg with
    | () ->
      let t = now () in
      dispatch_s := !dispatch_s +. (t -. t0);
      if tel then begin
        Telemetry.observe "parmap.chunk_size"
          (float_of_int (Array.length tasks));
        if enq > 0.0 then begin
          let w = Float.max 0.0 (t -. enq) in
          Array.iter
            (fun _ ->
              Telemetry.Histogram.add queue_hist w;
              Telemetry.observe "parmap.queue_wait_s" w)
            tasks
        end
      end;
      Array.iter (fun task -> copies.(task) <- copies.(task) + 1) tasks;
      slot.s_busy <- true;
      slot.s_tasks <- tasks;
      slot.s_attempt <- attempt;
      slot.s_done <- 0;
      slot.s_dup <- false;
      slot.s_last <- t;
      slot.s_deadline <-
        (match timeout_s with Some d -> t +. d | None -> infinity)
    | exception Unix.Unix_error ((Unix.EPIPE | Unix.EBADF), _, _) ->
      (* The idle worker died since its last task (a chaos kill landing
         between batches, the OOM killer): reap it, respawn the slot and
         redispatch without charging the tasks an attempt. *)
      ignore (retire_slot slot);
      fork_spawn_into st slot;
      if tries > 0 then dispatch slot job ~tries:(tries - 1)
      else
        Array.iter
          (fun task ->
            if
              (not acked.(task))
              && cur_attempt.(task) = attempt
              && copies.(task) <= 0
            then finish_failure ~task ~attempt (`Crash "worker unavailable"))
          tasks
  in
  while !remaining > 0 do
    let t = now () in
    (* Promote delayed retries whose backoff has elapsed.  The
       promotion is what invalidates any still-running copy of the old
       attempt: [cur_attempt] moves on, [copies] restarts at zero. *)
    let rec promote () =
      match !delayed with
      | (nb, task, att) :: rest when nb <= t ->
        delayed := rest;
        cur_attempt.(task) <- att;
        acked.(task) <- false;
        copies.(task) <- 0;
        Queue.add ([| task |], att, if tel then t else 0.0) ready;
        promote ()
      | _ -> ()
    in
    promote ();
    Array.iter
      (fun s ->
        if s.s_alive && (not s.s_busy) && not (Queue.is_empty ready) then
          dispatch s (Queue.pop ready) ~tries:2)
      st.k_slots;
    (* Work stealing: with nothing left to dispatch and a slot sitting
       idle, re-dispatch the undone remainder of the slowest busy
       chunk — the member in the straggler's hands included, since that
       member is exactly the one a slow worker is sitting on — to the
       idle slot.  First reply per task wins; the loser's is stale.
       Guarded by the cost estimate (no steal before a chunk is ~4
       expected tasks late) so healthy in-progress chunks are not
       duplicated, and [s_dup] keeps any chunk from being stolen
       twice. *)
    if Queue.is_empty ready && !delayed = [] && !remaining > 0 then begin
      let idle =
        Array.fold_left
          (fun acc s ->
            match acc with
            | Some _ -> acc
            | None -> if s.s_alive && not s.s_busy then Some s else None)
          None st.k_slots
      in
      match idle with
      | None -> ()
      | Some idle ->
        let t = now () in
        let late = Float.max 0.002 (4.0 *. st.k_ewma) in
        let victim =
          Array.fold_left
            (fun acc s ->
              if
                s.s_busy && (not s.s_dup)
                && Array.length s.s_tasks > s.s_done
                && t -. s.s_last > late
              then
                match acc with
                | Some v when v.s_last <= s.s_last -> acc
                | _ -> Some s
              else acc)
            None st.k_slots
        in
        (match victim with
        | None -> ()
        | Some v ->
          let tail =
            Array.sub v.s_tasks v.s_done (Array.length v.s_tasks - v.s_done)
          in
          let tail =
            Array.of_list
              (List.filter
                 (fun task -> not (stale task v.s_attempt))
                 (Array.to_list tail))
          in
          if Array.length tail > 0 then begin
            incr steals;
            v.s_dup <- true;
            (* enq 0: a stolen copy's wait is not a fresh queue wait. *)
            dispatch idle (tail, v.s_attempt, 0.0) ~tries:2;
            if idle.s_busy then idle.s_dup <- true
          end)
    end;
    let pending =
      Array.fold_left
        (fun acc s -> if s.s_busy then (s, s.s_from) :: acc else acc)
        [] st.k_slots
    in
    if pending = [] then begin
      match !delayed with
      | (nb, _, _) :: _ ->
        let d = nb -. now () in
        if d > 0.0 then (
          (* An interrupted sleep just re-enters the loop, which
             recomputes the remaining backoff. *)
          try Unix.sleepf d
          with Unix.Unix_error (Unix.EINTR, _, _) -> ())
      | [] ->
        (* Unreachable: remaining > 0 implies work somewhere. *)
        remaining := 0
    end
    else begin
      let fds = List.map snd pending in
      let nearest_deadline =
        List.fold_left
          (fun acc (s, _) -> Float.min acc s.s_deadline)
          infinity pending
      in
      let nearest_retry =
        match !delayed with (nb, _, _) :: _ -> nb | [] -> infinity
      in
      let until = Float.min nearest_deadline nearest_retry in
      let tmo =
        if until = infinity then -1.0 else Float.max 0.0 (until -. now ())
      in
      let readable =
        match Unix.select fds [] [] tmo with
        | r, _, _ -> r
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
      in
      List.iter
        (fun fd ->
          match
            List.find_opt (fun (s, f) -> f = fd && s.s_busy && s.s_alive) pending
          with
          | None -> ()
          | Some (slot, _) -> (
            match
              retry_eintr (fun () -> Unix.read fd chunk 0 (Bytes.length chunk))
            with
            | 0 -> handle_death slot
            | k ->
              Buffer.add_subbytes slot.s_buf chunk 0 k;
              (* One read may carry several framed member replies. *)
              let rec drain () =
                if slot.s_busy then
                  match try_extract_reply slot with
                  | Some tr ->
                    handle_reply slot tr;
                    drain ()
                  | None -> ()
                  | exception _ ->
                    (* Garbage on the wire: treat as a worker fault. *)
                    handle_death slot
              in
              drain ()
            | exception Unix.Unix_error _ -> handle_death slot))
        readable;
      let t = now () in
      Array.iter
        (fun slot ->
          if slot.s_busy && slot.s_deadline <= t then begin
            note_event slot;
            (try Unix.kill slot.s_pid Sys.sigkill with Unix.Unix_error _ -> ());
            ignore (retire_slot slot);
            salvage_members slot `Timeout;
            fork_spawn_into st slot
          end)
        st.k_slots
    end
  done;
  (* Every task has settled, but a stolen chunk's slower copy may still
     be running stale members.  Its replies must not leak into the next
     batch's framing, so the slot is recycled rather than drained. *)
  Array.iter
    (fun slot ->
      if slot.s_busy then begin
        (try Unix.kill slot.s_pid Sys.sigkill with Unix.Unix_error _ -> ());
        ignore (retire_slot slot);
        fork_spawn_into st slot
      end)
    st.k_slots;
  if tel then begin
    let wall = Telemetry.now_s () -. t_start in
    Telemetry.incr ~by:!crashes "parmap.crashes";
    Telemetry.incr ~by:!timeouts "parmap.timeouts";
    Telemetry.incr ~by:!retried "parmap.retries";
    Telemetry.incr ~by:!steals "parmap.steals";
    Telemetry.observe "parmap.dispatch_s" !dispatch_s;
    let pct h p = Telemetry.Histogram.percentile h p in
    Telemetry.emit ~kind:"pool"
      [
        ("mode", Telemetry.String "supervised");
        ("backend", Telemetry.String "fork");
        ("jobs", Telemetry.Int st.k_jobs);
        ("tasks", Telemetry.Int n);
        ("completed", Telemetry.Int !completed);
        ("crashes", Telemetry.Int !crashes);
        ("timeouts", Telemetry.Int !timeouts);
        ("retries", Telemetry.Int !retried);
        ("chunk_len", Telemetry.Int clen);
        ("steals", Telemetry.Int !steals);
        ("dispatch_s", Telemetry.Float !dispatch_s);
        ("wall_s", Telemetry.Float wall);
        ("busy_s", Telemetry.Float !busy);
        ( "utilization",
          Telemetry.Float
            (if wall > 0.0 then
               !busy /. (wall *. float_of_int st.k_jobs)
             else 0.0) );
        ("task_p50_s", Telemetry.Float (pct task_hist 50.0));
        ("task_p95_s", Telemetry.Float (pct task_hist 95.0));
        ("task_max_s", Telemetry.Float (Telemetry.Histogram.max task_hist));
        ("queue_p50_s", Telemetry.Float (pct queue_hist 50.0));
        ("queue_p95_s", Telemetry.Float (pct queue_hist 95.0));
        ("queue_max_s", Telemetry.Float (Telemetry.Histogram.max queue_hist));
      ]
  end;
  ( outcomes,
    {
      completed = !completed;
      crashes = !crashes;
      timeouts = !timeouts;
      retries = !retried;
      quarantined = 0;
    } )

let empty_stats =
  { completed = 0; crashes = 0; timeouts = 0; retries = 0; quarantined = 0 }

(* --- Persistent pool handles --------------------------------------------- *)

type ('a, 'b) impl =
  | Uninit
  | Inproc
  | Forked of ('a, 'b) fork_state
  | Domained of ('a, 'b) dom_state

type ('a, 'b) handle = {
  h_pool : pool;
  h_f : 'a -> 'b;
  mutable h_impl : ('a, 'b) impl;
  mutable h_closed : bool;
}

let create pool ~f = { h_pool = pool; h_f = f; h_impl = Uninit; h_closed = false }

(* Workers are spawned lazily on the first batch, not at [create]: a
   handle for a study that never evaluates costs nothing, a [`Domains]
   handle does not retire [`Fork] until it actually runs, and state the
   workers must inherit (an armed chaos plan, the warmed caches of the
   creating process) is captured as late as possible. *)
let init_impl h =
  match h.h_pool.backend with
  | `Seq -> Inproc
  | `Domains -> Domained (init_domains h.h_pool h.h_f)
  | `Fork ->
    if fork_usable () then Forked (init_fork h.h_pool h.h_f)
    else begin
      if available then warn_fork_after_domains ();
      Inproc
    end

let run_batch h xs =
  if h.h_closed then invalid_arg "Parmap.run_batch: handle is shut down";
  if Array.length xs = 0 then ([||], empty_stats)
  else begin
    (match h.h_impl with Uninit -> h.h_impl <- init_impl h | _ -> ());
    match h.h_impl with
    | Uninit -> assert false
    | Inproc -> inprocess_supervised h.h_f xs
    | Forked st -> fork_batch st xs
    | Domained st -> domains_batch st xs
  end

let shutdown h =
  if not h.h_closed then begin
    h.h_closed <- true;
    (match h.h_impl with
    | Uninit | Inproc -> ()
    | Forked st -> shutdown_fork st
    | Domained st -> shutdown_domains st);
    h.h_impl <- Uninit
  end

let run_supervised pool f xs =
  if Array.length xs = 0 then ([||], empty_stats)
  else begin
    let h = create pool ~f in
    Fun.protect ~finally:(fun () -> shutdown h) (fun () -> run_batch h xs)
  end

let supervised ?(jobs = 1) ?timeout_s ?(retries = 1) ?(backoff_s = 0.05) f xs =
  if jobs < 1 then
    invalid_arg
      (Printf.sprintf
         "Parmap.supervised: jobs must be a positive worker count (got %d)"
         jobs);
  run_supervised (pool ~backend:`Fork ~jobs ?timeout_s ~retries ~backoff_s ())
    f xs
