(* A minimal fork-based process pool.

   Tasks are dealt round-robin: worker [w] owns indices w, w+jobs, ...
   Each worker writes [(index, result)] pairs to its pipe as they
   complete, flushing after every task, so a worker that dies mid-chunk
   loses only the tasks it had not yet flushed — the parent fills those
   with [fallback].  The parent drains the workers one at a time; pipes
   buffer in the kernel, so slower workers simply block on write until
   their turn, and no deadlock is possible with single-reader pipes. *)

let available = Sys.unix

let sequential ~fallback f xs =
  Array.map (fun x -> try f x with _ -> fallback) xs

let map ?(jobs = 1) ~fallback f xs =
  let n = Array.length xs in
  let jobs = if available then min jobs (max 1 n) else 1 in
  if n = 0 || jobs <= 1 then sequential ~fallback f xs
  else begin
    (* Anything buffered in the parent must not be replayed by children
       (children exit through [Unix._exit], which skips flushing). *)
    flush stdout;
    flush stderr;
    let results = Array.make n fallback in
    let spawn w =
      let rd, wr = Unix.pipe () in
      match Unix.fork () with
      | 0 ->
        Unix.close rd;
        let oc = Unix.out_channel_of_descr wr in
        (try
           let i = ref w in
           while !i < n do
             let v = try f xs.(!i) with _ -> fallback in
             Marshal.to_channel oc (!i, v) [];
             flush oc;
             i := !i + jobs
           done;
           close_out oc
         with _ -> ());
        Unix._exit 0
      | pid ->
        Unix.close wr;
        (pid, rd)
    in
    let workers = Array.init jobs spawn in
    Array.iter
      (fun (pid, rd) ->
        let ic = Unix.in_channel_of_descr rd in
        (try
           while true do
             let (i, v) : int * _ = Marshal.from_channel ic in
             if i >= 0 && i < n then results.(i) <- v
           done
         with End_of_file | Failure _ -> ());
        (try close_in ic with _ -> ());
        (try ignore (Unix.waitpid [] pid) with _ -> ()))
      workers;
    results
  end
